// Command simbench runs the SimBench suite — the paper's Fig. 7
// experiment — or any subset of benchmarks, engines and guest
// architectures.
//
// Usage:
//
//	simbench                         # full Fig. 7 matrix at default scale
//	simbench -scale 500              # longer runs (paper iters / 500)
//	simbench -bench exc.syscall -engines dbt,interp -arch arm
//	simbench -engines v2.2.0,v2.5.0-rc2 -bench ctrl.intrapage-direct
//	simbench -list                   # list benchmarks and engines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/figures"
	"simbench/internal/report"
	"simbench/internal/versions"
)

func main() {
	var (
		scale    = flag.Int64("scale", 2000, "divide paper iteration counts by this")
		minIters = flag.Int64("min-iters", 32, "minimum iterations after scaling")
		benchSel = flag.String("bench", "", "comma-separated benchmark names (default: all)")
		engSel   = flag.String("engines", "", "comma-separated engines: dbt, interp, detailed, virt, native, or a release tag (default: all five platforms)")
		archSel  = flag.String("arch", "", "guest architecture: arm or x86 (default: both)")
		list     = flag.Bool("list", false, "list benchmarks, engines and releases, then exit")
		verbose  = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks:")
		for _, b := range bench.Suite() {
			fmt.Printf("  %-26s %-12s %s\n", b.Name, b.Category, b.Description)
		}
		fmt.Println("Extensions:")
		for _, b := range bench.ExtSuite() {
			fmt.Printf("  %-26s %-12s %s\n", b.Name, b.Category, b.Description)
		}
		fmt.Println("Engines: dbt interp detailed virt native")
		fmt.Println("Releases:", strings.Join(versions.Names(), " "))
		return
	}

	opts := figures.Options{Out: os.Stdout, Scale: *scale, MinIters: *minIters}
	if *verbose {
		opts.Progress = os.Stderr
	}

	// Default invocation: the whole Fig. 7 matrix.
	if *benchSel == "" && *engSel == "" && *archSel == "" {
		if err := figures.Fig7(opts); err != nil {
			fail(err)
		}
		return
	}

	benches := bench.Suite()
	if *benchSel != "" {
		benches = benches[:0]
		for _, name := range strings.Split(*benchSel, ",") {
			b, err := bench.ByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			benches = append(benches, b)
		}
	}
	engNames := []string{"dbt", "interp", "detailed", "virt", "native"}
	if *engSel != "" {
		engNames = strings.Split(*engSel, ",")
	}
	sups := arch.All()
	if *archSel != "" {
		sups = nil
		for _, name := range strings.Split(*archSel, ",") {
			found := false
			for _, s := range arch.All() {
				if s.Name() == strings.TrimSpace(name) {
					sups = append(sups, s)
					found = true
				}
			}
			if !found {
				fail(fmt.Errorf("unknown architecture %q (want arm or x86)", name))
			}
		}
	}

	for _, sup := range sups {
		t := report.Table{
			Title:   fmt.Sprintf("SimBench, %s guest (kernel seconds; scale 1/%d)", sup.Name(), *scale),
			Columns: append([]string{"benchmark", "iters"}, engNames...),
		}
		for _, b := range benches {
			iters := opts.Iters(b)
			row := []string{b.Name, fmt.Sprint(iters)}
			for _, engName := range engNames {
				eng, err := figures.EngineByName(strings.TrimSpace(engName))
				if err != nil {
					fail(err)
				}
				res, err := core.NewRunner(eng, sup).Run(b, iters)
				if err != nil {
					fail(err)
				}
				row = append(row, report.Seconds(res.Kernel))
				if *verbose {
					fmt.Fprintf(os.Stderr, "%s %s %s: %s (%d insns)\n",
						sup.Name(), b.Name, engName, res.Kernel, res.Stats.Instructions)
				}
			}
			t.AddRow(row...)
		}
		t.Fprint(os.Stdout)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
