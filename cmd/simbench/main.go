// Command simbench runs the SimBench suite — the paper's Fig. 7
// experiment — or any subset of benchmarks, engines and guest
// architectures. Matrix cells run concurrently on a worker pool
// (-jobs); results are collated in matrix order, so the table is
// independent of completion order.
//
// Usage:
//
//	simbench                         # full Fig. 7 matrix at default scale
//	simbench -scale 500 -jobs 8      # longer runs, eight cells at a time
//	simbench -bench exc.syscall -engines dbt,interp -arch arm
//	simbench -engines v2.2.0,v2.5.0-rc2 -bench ctrl.intrapage-direct
//	simbench -json > results.json    # machine-readable result set
//	simbench -cache-dir .simcache    # incremental: reuse identical cells
//	simbench -spec myexp.json        # run a user-defined experiment spec
//	simbench -list                   # list benchmarks and engines
//
// A failed cell prints as ERR in its table position; all failures are
// reported together at the end and the exit status is nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/experiment"
	"simbench/internal/machine"
	"simbench/internal/obs"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/stats"
	"simbench/internal/store"
	"simbench/internal/versions"
)

// reportCache flushes the store (pending remote uploads must land
// before exit, or the fleet never sees this run's cells) and prints
// its hit/miss line to stderr; a nil store prints nothing.
func reportCache(tool string, st *store.Store) {
	if st == nil {
		return
	}
	st.Close()
	store.FprintStats(os.Stderr, tool, st)
}

func main() {
	var (
		scale     = flag.Int64("scale", 2000, "divide paper iteration counts by this")
		minIters  = flag.Int64("min-iters", 32, "minimum iterations after scaling")
		benchSel  = flag.String("bench", "", "comma-separated benchmark names or selectors (suite:simbench, suite:spec, suite:ext, suite:smp, cat:<category>; default: all)")
		engSel    = flag.String("engines", "", "comma-separated engines: dbt, interp, detailed, virt, native, or a release tag (default: all five platforms)")
		archSel   = flag.String("arch", "", "guest architecture: arm or x86 (default: both)")
		coresSel  = flag.String("cores", "", "comma-separated guest core counts, e.g. 1,2,4 (default: 1)")
		jobs      = flag.Int("jobs", 0, "matrix cells run concurrently (default GOMAXPROCS; use 1 for minimum-noise timings)")
		repeats   = flag.Int("repeats", 0, "measurements per cell; the minimum kernel time is reported (0 = auto: 2 for the full Fig. 7 run, 1 for subsets)")
		specFile  = flag.String("spec", "", "run this experiment spec JSON file (recorded in history under the spec's own label); excludes -bench/-engines/-arch/-json")
		jsonOut   = flag.Bool("json", false, "write the result set as JSON to stdout instead of a table")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured, and every run is appended to its history (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL (e.g. http://ci-cache:8347): a shared remote cache tier behind -cache-dir — remote hits are promoted to the local cache, fresh results upload asynchronously, and run history lands on the server")
		remoteTok = flag.String("remote-token", os.Getenv("SIMBENCH_REMOTE_TOKEN"), "bearer token for a -remote server started with -token (default $SIMBENCH_REMOTE_TOKEN)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file (per-cell spans: key computation, store get/put, measure, remote round trips) to this path; written after the tables render, loadable in chrome://tracing or Perfetto")
		cpuOut    = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path; pair with -jobs 1 so engine hot paths dominate the samples instead of scheduler contention")
		memOut    = flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this path; written after the tables render, like -trace")
		list      = flag.Bool("list", false, "list benchmarks, engines and releases, then exit")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks:")
		for _, b := range bench.Suite() {
			fmt.Printf("  %-26s %-12s %s\n", b.Name, b.Category, b.Description)
		}
		fmt.Println("Extensions:")
		for _, b := range bench.ExtSuite() {
			fmt.Printf("  %-26s %-12s %s\n", b.Name, b.Category, b.Description)
		}
		fmt.Println("SMP:")
		for _, b := range bench.SMPSuite() {
			fmt.Printf("  %-26s %-12s %s\n", b.Name, b.Category, b.Description)
		}
		fmt.Println("Engines: dbt interp detailed virt native profile")
		fmt.Println("Releases:", strings.Join(versions.Names(), " "))
		fmt.Println("Specs:", strings.Join(experiment.Names(), " "))
		return
	}

	// First Ctrl-C stops feeding new cells (in-flight ones finish and
	// are reported); a second Ctrl-C kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	// Profiling brackets the whole run — cell scheduling included — so
	// a -cpuprofile of a hot-path campaign shows engine exec loops next
	// to the harness cost they amortise. Both writers run on every
	// return path, after the tables render, like -trace.
	stopCPU := startCPUProfile(*cpuOut)
	writeProfiles := func() {
		stopCPU()
		writeMemProfile(*memOut)
	}

	// The tracer rides the run context into the scheduler; the
	// experiment and report layers never see it, keeping the
	// byte-identity surface observability-free.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	// Every selection-flag invocation — including the default table
	// run, which goes through the registered fig7 spec — records
	// history as "simbench", so `simbase -label simbench` selects by
	// tool, not output mode. A -spec run is the exception: the spec's
	// own label is its identity in history, so other tools (simreport
	// -offline, simbase -label) can find it by name.
	opts := experiment.Options{Out: os.Stdout, Scale: *scale, MinIters: *minIters, Jobs: *jobs, Repeats: *repeats, Context: ctx, HistoryLabel: "simbench"}
	if *verbose {
		opts.Progress = os.Stderr
	}
	var st *store.Store
	if *cacheDir != "" || *remote != "" {
		var err error
		if st, err = store.OpenTiered(*cacheDir, *remote, store.WithToken(*remoteTok)); err != nil {
			fail(err)
		}
		opts.Store = st
		st.SetTracer(tracer)
		if n := store.IdentityNote("simbench"); n != "" {
			fmt.Fprintln(os.Stderr, n)
		}
	}

	// A user-defined spec replaces the whole selection-flag surface.
	if *specFile != "" {
		if *benchSel != "" || *engSel != "" || *archSel != "" || *coresSel != "" || *jsonOut {
			fail(fmt.Errorf("-spec describes the whole experiment; it excludes -bench, -engines, -arch, -cores and -json"))
		}
		sp, err := experiment.LoadFile(*specFile)
		if err != nil {
			fail(err)
		}
		opts.HistoryLabel = ""
		err = experiment.Run(sp, opts)
		reportCache("simbench", st)
		writeTrace(tracer, *traceOut)
		writeProfiles()
		if err != nil {
			fail(err)
		}
		return
	}

	// Default invocation: the whole Fig. 7 matrix.
	if *benchSel == "" && *engSel == "" && *archSel == "" && *coresSel == "" && !*jsonOut {
		err := experiment.RunNamed("fig7", opts)
		reportCache("simbench", st)
		writeTrace(tracer, *traceOut)
		writeProfiles()
		if err != nil {
			fail(err)
		}
		return
	}

	benches := bench.Suite()
	if *benchSel != "" {
		// The spec file's selector grammar, verbatim: names expand
		// through the same resolver, so suite:smp or cat:SMP select a
		// family here exactly as they would on a benches axis.
		var sels []string
		for _, name := range strings.Split(*benchSel, ",") {
			sels = append(sels, strings.TrimSpace(name))
		}
		var err error
		if benches, err = experiment.ExpandBenches(sels); err != nil {
			fail(err)
		}
	}

	// Resolve every engine name before any cell runs, so a typo fails
	// fast instead of aborting a minutes-long matrix mid-run.
	engines := experiment.SchedEngines()
	if *engSel != "" {
		engines = engines[:0]
		for _, raw := range strings.Split(*engSel, ",") {
			name := strings.TrimSpace(raw)
			if _, err := experiment.EngineByName(name); err != nil {
				fail(err)
			}
			engines = append(engines, sched.Engine{
				Name: name,
				New:  func() engine.Engine { e, _ := experiment.EngineByName(name); return e },
			})
		}
	}

	// Core counts must be valid before any cell runs; the empty axis
	// means single-core and keeps every existing cell identity.
	var coreCounts []int
	if *coresSel != "" {
		for i, raw := range strings.Split(*coresSel, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(raw))
			if err != nil {
				fail(fmt.Errorf("-cores[%d]: %q is not a core count", i, strings.TrimSpace(raw)))
			}
			switch {
			case c < 1:
				fail(fmt.Errorf("-cores[%d]: core count %d must be >= 1", i, c))
			case c > machine.MaxHarts:
				fail(fmt.Errorf("-cores[%d]: core count %d exceeds the platform maximum %d", i, c, machine.MaxHarts))
			case len(coreCounts) > 0 && c <= coreCounts[len(coreCounts)-1]:
				fail(fmt.Errorf("-cores[%d]: core count %d must be strictly increasing (follows %d)", i, c, coreCounts[len(coreCounts)-1]))
			}
			coreCounts = append(coreCounts, c)
		}
	}

	sups := arch.All()
	if *archSel != "" {
		sups = nil
		for _, name := range strings.Split(*archSel, ",") {
			found := false
			for _, s := range arch.All() {
				if s.Name() == strings.TrimSpace(name) {
					sups = append(sups, s)
					found = true
				}
			}
			if !found {
				fail(fmt.Errorf("unknown architecture %q (want arm or x86)", name))
			}
		}
	}

	rep := *repeats
	if rep <= 0 {
		// Auto: the full matrix (only reachable here via -json) gets
		// the same noise suppression as the Fig. 7 table run.
		if *benchSel == "" && *engSel == "" && *archSel == "" && *coresSel == "" {
			rep = 2
		} else {
			rep = 1
		}
	}
	m := sched.Matrix{
		Arches:  sups,
		Benches: benches,
		Engines: engines,
		Cores:   coreCounts,
		Iters:   opts.Iters,
		Repeats: rep,
	}
	s := sched.Scheduler{Workers: *jobs, Warmup: true}
	if st != nil {
		s.Store = st
	}
	if *verbose {
		s.Progress = func(r sched.Result) { sched.FprintProgress(os.Stderr, "", r) }
	}

	results := s.Run(ctx, m.Jobs())
	// The noise lookup is built from history as it stood before this
	// run: a measurement must not vouch for its own normality.
	var noise func(report.Record) *stats.Band
	if st != nil {
		if runs, err := st.History(); err == nil && len(runs) > 0 {
			noise = store.NoiseLookup(runs, store.StatGate{})
		} else if err != nil {
			// Unreadable history only costs the ± annotations, but
			// silently is how downstream noise consumers go blind.
			fmt.Fprintln(os.Stderr, "simbench:", err)
		}
		if err := st.AppendHistory("simbench", results); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
		}
	}

	if *jsonOut {
		recs := report.Records(results)
		store.Annotate(recs, noise)
		if err := report.FprintRecords(os.Stdout, recs); err != nil {
			fail(err)
		}
	} else {
		printTables(results, sups, benches, engines, coreCounts, &opts, *scale, noise)
	}
	reportCache("simbench", st)
	writeTrace(tracer, *traceOut)
	writeProfiles()

	// Errors already collapses cancelled cells into one summary line.
	if err := sched.Errors(results); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %d of %d cells failed:\n%v\n",
			len(sched.Failed(results)), len(results), err)
		os.Exit(1)
	}
}

// printTables collates the result set into one table per guest
// architecture through the shared matrix renderer, so failed,
// cancelled, cached and noise-annotated cells read exactly as they do
// in the fig7 spec.
func printTables(results []sched.Result, sups []arch.Support, benches []*core.Benchmark,
	engines []sched.Engine, cores []int, opts *experiment.Options, scale int64, noise func(report.Record) *stats.Band) {
	cols := make([]string, len(engines))
	for i, e := range engines {
		cols[i] = e.Name
	}
	archNames := make([]string, len(sups))
	for i, sup := range sups {
		archNames[i] = sup.Name()
	}
	mt := report.MatrixTable{
		Title: func(a string) string {
			return fmt.Sprintf("SimBench, %s guest (kernel seconds; scale 1/%d)", a, scale)
		},
		EngineCols: cols,
		Arches:     archNames,
		Benches:    benches,
		Cores:      cores,
		Iters:      opts.Iters,
		Noise:      noise,
	}
	mt.Fprint(os.Stdout, results)
}

// writeTrace exports the run's trace only after every table and cache
// line has been flushed — the trace file must never sequence before
// (or interleave with) the output it describes. A nil tracer no-ops.
func writeTrace(tracer *obs.Tracer, path string) {
	if tracer == nil {
		return
	}
	if err := tracer.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "simbench: write trace:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "simbench: trace written to", path)
}

// startCPUProfile begins a CPU profile and returns the stop function;
// both are no-ops for an empty path. A profile that cannot be opened
// aborts the run up front — discovering it after a minutes-long matrix
// would waste the measurement.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fail(err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "simbench: write cpu profile:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "simbench: cpu profile written to", path)
	}
}

// writeMemProfile snapshots the heap after a final GC, so the profile
// shows live retention (translation caches, store indexes) rather than
// garbage awaiting collection.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: write mem profile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "simbench: write mem profile:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "simbench: mem profile written to", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
