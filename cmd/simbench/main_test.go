package main

import (
	"errors"
	"os"
	"strings"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/figures"
	"simbench/internal/sched"
)

// TestPrintTablesERRCell checks that a failed cell renders as ERR in
// its matrix position while healthy cells keep their timings.
func TestPrintTablesERRCell(t *testing.T) {
	b, err := bench.ByName("exc.syscall")
	if err != nil {
		t.Fatal(err)
	}
	sups := []arch.Support{arch.ARM{}}
	engines := []sched.Engine{{Name: "interp"}, {Name: "dbt"}}
	results := []sched.Result{
		{Job: sched.Job{Bench: b, Engine: engines[0], Arch: sups[0], Iters: 8}, Run: &core.Result{}},
		{Job: sched.Job{Bench: b, Engine: engines[1], Arch: sups[0], Iters: 8}, Err: errors.New("boom")},
	}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout := os.Stdout
	os.Stdout = w
	opts := figures.Options{Scale: 1 << 40, MinIters: 8}
	printTables(results, sups, []*core.Benchmark{b}, engines, nil, &opts, 2000, nil)
	os.Stdout = stdout
	w.Close()
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	out := string(buf[:n])

	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "exc.syscall") {
			row = line
		}
	}
	f := strings.Fields(row)
	if len(f) != 4 || f[2] != "0.000" || f[3] != "ERR" {
		t.Errorf("row = %q, want timing then ERR", row)
	}
	if !strings.Contains(out, "interp") || !strings.Contains(out, "dbt") {
		t.Errorf("missing engine columns:\n%s", out)
	}
}
