package main

import (
	"strings"
	"testing"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/interp"
	"simbench/internal/sched"
	"simbench/internal/store"
)

// appendRun writes a fabricated three-cell run into the store's
// history, with per-cell kernel times chosen by the caller.
func appendRun(t *testing.T, dir, label string, kernel func(i int) time.Duration) {
	appendRunIters(t, dir, label, 64, kernel)
}

// fabResults fabricates the three-cell result set the history helpers
// record, so tests can both append it as history and Put its blobs.
func fabResults(iters int64, kernel func(i int) time.Duration) []sched.Result {
	var results []sched.Result
	for i := 0; i < 3; i++ {
		j := sched.Job{
			Bench:  &core.Benchmark{Name: []string{"mem.hot", "exc.syscall", "io.device"}[i]},
			Engine: sched.Engine{Name: "interp", New: func() engine.Engine { return interp.New() }},
			Arch:   arch.ARM{},
			Iters:  iters,
		}
		k := kernel(i)
		results = append(results, sched.Result{
			Job:    j,
			Kernel: k,
			Run:    &core.Result{Benchmark: j.Bench, Engine: "interp", Arch: "arm", Iters: iters, Kernel: k, Total: k},
		})
	}
	return results
}

func appendRunIters(t *testing.T, dir, label string, iters int64, kernel func(i int) time.Duration) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendHistory(label, fabResults(iters, kernel)); err != nil {
		t.Fatal(err)
	}
}

func TestSaveDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	appendRun(t, dir, "simbench", func(i int) time.Duration { return 100 * time.Millisecond })

	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "save", "nightly"}, &out, &errOut); code != 0 {
		t.Fatalf("save exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `saved baseline "nightly"`) {
		t.Errorf("save output: %s", out.String())
	}

	// Identical latest run: clean diff, exit 0.
	out.Reset()
	if code := run([]string{"-cache-dir", dir, "diff", "nightly"}, &out, &errOut); code != 0 {
		t.Fatalf("clean diff exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "result: ok") {
		t.Errorf("clean diff output: %s", out.String())
	}

	// One cell 50% slower: regression, exit 1, named in the output.
	appendRun(t, dir, "simbench", func(i int) time.Duration {
		if i == 1 {
			return 150 * time.Millisecond
		}
		return 100 * time.Millisecond
	})
	out.Reset()
	code := run([]string{"-cache-dir", dir, "-threshold", "0.10", "diff", "nightly"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("regressed diff exit %d, want 1: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "exc.syscall") {
		t.Errorf("regressed diff output: %s", out.String())
	}
	if !strings.Contains(out.String(), "+50.0%") {
		t.Errorf("missing delta in output: %s", out.String())
	}

	// A threshold above the regression: exit 0 again.
	out.Reset()
	if code := run([]string{"-cache-dir", dir, "-threshold", "0.60", "diff", "nightly"}, &out, &errOut); code != 0 {
		t.Errorf("tolerant diff exit %d: %s", code, out.String())
	}

	// A latest run sharing no cell with the baseline (different scale)
	// must not pass as a vacuous "nothing regressed": exit 2.
	appendRunIters(t, dir, "simbench", 128, func(int) time.Duration { return 100 * time.Millisecond })
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cache-dir", dir, "diff", "nightly"}, &out, &errOut); code != 2 {
		t.Errorf("disjoint diff exit %d, want 2: %s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "nothing was compared") {
		t.Errorf("disjoint diff stderr: %s", errOut.String())
	}
	// Re-align history so the remaining checks see matching cells.
	appendRun(t, dir, "simbench", func(i int) time.Duration {
		if i == 1 {
			return 150 * time.Millisecond
		}
		return 100 * time.Millisecond
	})

	// list shows both runs and the baseline.
	out.Reset()
	if code := run([]string{"-cache-dir", dir, "list"}, &out, &errOut); code != 0 {
		t.Fatalf("list exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Run history (4 runs)") || !strings.Contains(out.String(), "nightly") {
		t.Errorf("list output: %s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	for _, args := range [][]string{
		{}, // no cache dir
		{"-cache-dir", t.TempDir() + "/typo", "list"}, // nonexistent dir must not be created
		{"-cache-dir", t.TempDir()},                   // no verb
		{"-cache-dir", t.TempDir(), "save"},           // no name
		{"-cache-dir", t.TempDir(), "diff"},           // no name
		{"-cache-dir", t.TempDir(), "bogus"},          // unknown verb
		{"-cache-dir", t.TempDir(), "diff", "absent"}, // unknown baseline
	} {
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
