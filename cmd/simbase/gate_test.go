package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simbench/internal/store"
)

// mus builds a duration from fractional milliseconds, for scripted
// histories with sub-millisecond structure.
func mus(msv float64) time.Duration { return time.Duration(msv * float64(time.Millisecond)) }

// scriptHistory writes the canonical gate scenario into a fresh cache
// dir: a baseline run, then five more history runs in which cell 0
// (mem.hot) scatters ±15 %, cell 1 (exc.syscall) holds within ±1 %,
// and cell 2 (io.device) never moves at all. Everything is scripted —
// no clocks, no real measurements — so the gate's verdicts are exact.
func scriptHistory(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	noisy := []float64{100, 115, 85, 112, 90, 108}
	quiet := []float64{100, 101, 99, 100.5, 99.5, 100}
	for r := range noisy {
		r := r
		appendRun(t, dir, "simbench", func(i int) time.Duration {
			switch i {
			case 0:
				return mus(noisy[r])
			case 1:
				return mus(quiet[r])
			default:
				return mus(100)
			}
		})
		if r == 0 {
			var out, errOut strings.Builder
			if code := run([]string{"-cache-dir", dir, "save", "nightly"}, &out, &errOut); code != 0 {
				t.Fatalf("save exit %d: %s", code, errOut.String())
			}
		}
	}
	return dir
}

// TestStatGateEndToEnd is the acceptance test for -gate=stat: the
// statistical gate passes a noisy-but-stable cell the fixed threshold
// false-alarms on, and fails an injected regression the fixed
// threshold misses — both against the same baseline, deterministic.
func TestStatGateEndToEnd(t *testing.T) {
	dir := scriptHistory(t)

	// Latest run: the noisy cell lands at +12 % of baseline — outside
	// the fixed 10 % threshold, comfortably inside its own ±15 %
	// history.
	appendRun(t, dir, "simbench", func(i int) time.Duration {
		if i == 0 {
			return mus(112)
		}
		return mus(100)
	})

	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "-threshold", "0.10", "diff", "nightly"}, &out, &errOut); code != 1 {
		t.Fatalf("fixed gate exit %d, want 1 (false alarm on the noisy cell): %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "mem.hot") {
		t.Errorf("fixed gate did not name the noisy cell: %s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cache-dir", dir, "-gate", "stat", "diff", "nightly"}, &out, &errOut); code != 0 {
		t.Fatalf("stat gate exit %d, want 0 (noisy-but-stable must pass): %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "gate stat") || !strings.Contains(out.String(), "noise band") {
		t.Errorf("stat diff output: %s", out.String())
	}

	// Next run: the quiet cell regresses by +5 % — invisible to the
	// fixed 10 % threshold, far outside its ±1 % history.
	appendRun(t, dir, "simbench", func(i int) time.Duration {
		if i == 1 {
			return mus(105)
		}
		return mus(100)
	})

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cache-dir", dir, "-threshold", "0.10", "diff", "nightly"}, &out, &errOut); code != 0 {
		t.Fatalf("fixed gate exit %d, want 0 (a +5%% move is under its threshold): %s%s", code, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code := run([]string{"-cache-dir", dir, "-gate", "stat", "diff", "nightly"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("stat gate exit %d, want 1 (quiet cell regressed): %s%s", code, out.String(), errOut.String())
	}
	o := out.String()
	if !strings.Contains(o, "REGRESSED") || !strings.Contains(o, "exc.syscall") {
		t.Errorf("stat gate did not flag the quiet cell: %s", o)
	}
	if strings.Contains(o, "REGRESSED (2") || !strings.Contains(o, "REGRESSED (1 cells)") {
		t.Errorf("stat gate flagged more than the quiet cell: %s", o)
	}
	if !strings.Contains(o, "n=7") {
		t.Errorf("regression row missing its noise band: %s", o)
	}

	// Determinism: the same invocation renders byte-identical output —
	// the bootstrap is seeded, nothing depends on the clock.
	var again strings.Builder
	if code := run([]string{"-cache-dir", dir, "-gate", "stat", "diff", "nightly"}, &again, &errOut); code != 1 {
		t.Fatalf("repeat stat gate exit %d", code)
	}
	if again.String() != o {
		t.Errorf("stat diff not deterministic:\n--- first\n%s\n--- second\n%s", o, again.String())
	}
}

// TestStatGateFallsBackOnShortHistory: with too few runs, -gate=stat
// must behave like the fixed gate and say so.
func TestStatGateFallsBackOnShortHistory(t *testing.T) {
	dir := t.TempDir()
	appendRun(t, dir, "simbench", func(int) time.Duration { return mus(100) })
	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "save", "nightly"}, &out, &errOut); code != 0 {
		t.Fatalf("save exit %d: %s", code, errOut.String())
	}
	appendRun(t, dir, "simbench", func(i int) time.Duration {
		if i == 0 {
			return mus(150)
		}
		return mus(100)
	})
	out.Reset()
	code := run([]string{"-cache-dir", dir, "-gate", "stat", "diff", "nightly"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("fallback exit %d, want 1: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "fixed (history n=") {
		t.Errorf("fallback did not announce itself: %s", out.String())
	}
}

// TestStatGateLabelRestrictsPool: -label restricts the gate's sample
// pool as well as the run under test, matching show — six runs under
// another label must not lend the labelled view a noise model it has
// not earned.
func TestStatGateLabelRestrictsPool(t *testing.T) {
	dir := scriptHistory(t) // six runs labelled "simbench"
	appendRun(t, dir, "fig7", func(int) time.Duration { return mus(100) })
	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "-label", "fig7", "save", "fig7base"}, &out, &errOut); code != 0 {
		t.Fatalf("save exit %d: %s", code, errOut.String())
	}
	appendRun(t, dir, "fig7", func(i int) time.Duration {
		if i == 0 {
			return mus(150)
		}
		return mus(100)
	})
	out.Reset()
	code := run([]string{"-cache-dir", dir, "-label", "fig7", "-gate", "stat", "diff", "fig7base"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("labelled stat diff exit %d, want 1: %s%s", code, out.String(), errOut.String())
	}
	// Only one fig7 run precedes the one under test, so the gate must
	// fall back — were the pool unfiltered, six simbench runs would
	// have produced a statistical verdict here.
	if !strings.Contains(out.String(), "fixed (history n=1)") {
		t.Errorf("labelled pool not restricted: %s", out.String())
	}
}

func TestShowCell(t *testing.T) {
	dir := scriptHistory(t)
	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "show", "mem.hot"}, &out, &errOut); code != 0 {
		t.Fatalf("show exit %d: %s", code, errOut.String())
	}
	o := out.String()
	for _, want := range []string{"Cell arm/mem.hot/interp@64", "6 runs recorded", "noise: n=6", "median=0.104s", "gate: statistical"} {
		if !strings.Contains(o, want) {
			t.Errorf("show output missing %q:\n%s", want, o)
		}
	}

	// The zero-spread cell reports its threshold floor.
	out.Reset()
	if code := run([]string{"-cache-dir", dir, "show", "io.device"}, &out, &errOut); code != 0 {
		t.Fatalf("show exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "gate: threshold floor") {
		t.Errorf("degenerate cell did not report its floor: %s", out.String())
	}

	// No match is a usage error, not a silent success.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cache-dir", dir, "show", "no.such.bench"}, &out, &errOut); code != 2 {
		t.Errorf("show of unknown cell exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no recorded cell") {
		t.Errorf("show stderr: %s", errOut.String())
	}
}

// TestGCEndToEnd: blobs referenced only by runs outside the -keep-runs
// window are pruned; -dry-run deletes nothing.
func TestGCEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two runs at different scales: distinct cells, distinct blobs.
	for _, iters := range []int64{64, 128} {
		appendRunIters(t, dir, "simbench", iters, func(int) time.Duration { return mus(100) })
		for _, rr := range fabResults(iters, func(int) time.Duration { return mus(100) }) {
			st.Put(st.Key(rr.Job), rr)
		}
	}
	// Backdate the blobs past gc's in-flight grace period, or nothing
	// is old enough to prune.
	old := time.Now().Add(-48 * time.Hour)
	if err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.Chtimes(path, old, old)
	}); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", dir, "-keep-runs", "1", "-dry-run", "gc"}, &out, &errOut); code != 0 {
		t.Fatalf("dry-run gc exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "would prune 3 blobs") {
		t.Errorf("dry-run gc output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-cache-dir", dir, "-keep-runs", "1", "gc"}, &out, &errOut); code != 0 {
		t.Fatalf("gc exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "pruned 3 blobs") || !strings.Contains(out.String(), "kept 3") {
		t.Errorf("gc output: %s", out.String())
	}

	// Idempotent.
	out.Reset()
	if code := run([]string{"-cache-dir", dir, "-keep-runs", "1", "gc"}, &out, &errOut); code != 0 {
		t.Fatalf("second gc exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "pruned 0 blobs") {
		t.Errorf("second gc output: %s", out.String())
	}
}

func TestGateFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-cache-dir", t.TempDir(), "-gate", "bayesian", "diff", "x"}, &out, &errOut); code != 2 {
		t.Errorf("bogus -gate exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -gate") {
		t.Errorf("stderr: %s", errOut.String())
	}
	// Values the gate would silently replace with defaults are rejected
	// up front, so show and diff can never disagree about what a flag
	// meant.
	for _, args := range [][]string{
		{"-threshold", "0"},
		{"-threshold", "-0.1"},
		{"-min-history", "0"},
		{"-resamples", "0"},
		{"-keep-runs", "0"},
		{"-window", "0"},
		{"-window", "3"}, // below the default -min-history: gate could never engage
	} {
		all := append([]string{"-cache-dir", t.TempDir()}, append(args, "list")...)
		errOut.Reset()
		if code := run(all, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}
