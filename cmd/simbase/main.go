// Command simbase manages the run history and baselines of a simbench
// result cache (-cache-dir, as written by simbench, simsweep and
// simreport): it saves a named baseline from the recorded history,
// lists history and baselines, diffs the latest run against a baseline
// with a nonzero exit status on regression for CI, inspects one cell's
// measurement history with its noise statistics, and garbage-collects
// blobs no recent run references.
//
// Two regression gates are available. The fixed gate (-gate=fixed,
// the default) flags any cell whose kernel time moved more than
// -threshold relative to the baseline. The statistical gate
// (-gate=stat) models each cell's noise from its run history — median,
// MAD, and a deterministic bootstrap confidence interval — and flags a
// cell only when the new measurement falls outside that noise band:
// noisy cells stop false-alarming, quiet cells catch regressions well
// under the fixed threshold. The fixed -threshold remains as fallback
// (cells with fewer than -min-history samples) and floor (a
// zero-spread history is widened to median±threshold).
//
// Usage:
//
//	simbase -cache-dir .simcache list
//	simbase -cache-dir .simcache save nightly
//	simbase -cache-dir .simcache -threshold 0.15 diff nightly
//	simbase -cache-dir .simcache -gate=stat diff nightly
//	simbase -cache-dir .simcache show mem.hot
//	simbase -cache-dir .simcache -keep-runs 10 gc
//	simbase -remote http://ci-cache:8347 diff nightly   # fleet store
//
// With -remote, history and baselines are read from and written to a
// simstored server — the fleet-wide view every host appends to —
// instead of a local cache directory (gc still operates on the local
// -cache-dir only).
//
// Exit status: 0 on success (diff: no regression), 1 when diff finds
// a regression, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"simbench/internal/report"
	"simbench/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: simbase (-cache-dir DIR | -remote URL) [flags] list | save NAME | diff NAME | show CELL | gc")
	fs.SetOutput(stderr)
	fs.PrintDefaults()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simbase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cacheDir   = fs.String("cache-dir", "", "result cache directory (as passed to simbench/simsweep/simreport)")
		remote     = fs.String("remote", "", "simstored server URL: history and baselines are read from and written to the fleet store instead of the local cache (gc still needs -cache-dir)")
		remoteTok  = fs.String("remote-token", os.Getenv("SIMBENCH_REMOTE_TOKEN"), "bearer token for a -remote server started with -token (default $SIMBENCH_REMOTE_TOKEN)")
		threshold  = fs.Float64("threshold", 0.10, "relative kernel-time slowdown tolerated as noise by the fixed gate — and by the stat gate's fallback and floor (0.10 = 10%)")
		label      = fs.String("label", "", "restrict history to runs with this label (e.g. fig7, simbench)")
		gate       = fs.String("gate", "fixed", "regression gate for diff: fixed (threshold) or stat (per-cell noise band from history)")
		minHistory = fs.Int("min-history", 5, "stat gate: minimum historical samples before a cell is judged by its noise band instead of the threshold")
		resamples  = fs.Int("resamples", 1000, "stat gate: bootstrap resamples behind each cell's confidence interval (-1 disables the bootstrap)")
		window     = fs.Int("window", 20, "stat gate: most recent fresh measurements per cell the noise model considers; older samples age out so accepted performance changes stop inflating the band")
		seed       = fs.Int64("seed", 0, "stat gate: bootstrap seed; equal seeds reproduce identical bands (0 is the default stream simbench table annotations use)")
		keepRuns   = fs.Int("keep-runs", 10, "gc: keep blobs referenced by this many most-recent runs (baselines always pin theirs)")
		dryRun     = fs.Bool("dry-run", false, "gc: report what would be pruned without deleting anything")
	)
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cacheDir == "" && *remote == "" {
		fmt.Fprintln(stderr, "simbase: -cache-dir or -remote is required")
		return 2
	}
	if *gate != "fixed" && *gate != "stat" {
		fmt.Fprintf(stderr, "simbase: unknown -gate %q (want fixed or stat)\n", *gate)
		return 2
	}
	// Reject values the gate would silently replace with its defaults:
	// a CLI that reads "-threshold 0" as "10%" is lying to its caller.
	switch {
	case *threshold <= 0:
		fmt.Fprintln(stderr, "simbase: -threshold must be positive")
		return 2
	case *minHistory < 1:
		fmt.Fprintln(stderr, "simbase: -min-history must be at least 1")
		return 2
	case *resamples == 0:
		fmt.Fprintln(stderr, "simbase: -resamples 0 is ambiguous; use -1 to disable the bootstrap")
		return 2
	case *window < 1:
		fmt.Fprintln(stderr, "simbase: -window must be at least 1")
		return 2
	case *window < *minHistory:
		// The pool never holds more than -window samples, so a window
		// below -min-history would pin every cell on the fixed
		// fallback — silently disabling the gate the user asked for.
		fmt.Fprintf(stderr, "simbase: -window %d is below -min-history %d; the statistical gate could never engage\n", *window, *minHistory)
		return 2
	case *keepRuns < 1:
		fmt.Fprintln(stderr, "simbase: -keep-runs must be at least 1")
		return 2
	}
	// simbase only inspects an existing store; opening one would
	// create the directory and mask a mistyped -cache-dir.
	if *cacheDir != "" {
		if _, err := os.Stat(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "simbase: no result cache at %s: %v\n", *cacheDir, err)
			return 2
		}
	}
	st, err := store.OpenTiered(*cacheDir, *remote, store.WithToken(*remoteTok))
	if err != nil {
		fmt.Fprintln(stderr, "simbase:", err)
		return 2
	}
	if *remote != "" {
		defer st.Close()
	}
	sg := store.StatGate{
		Threshold:  *threshold,
		MinHistory: *minHistory,
		Resamples:  *resamples,
		Seed:       *seed,
		Window:     *window,
	}

	switch verb, name := fs.Arg(0), fs.Arg(1); verb {
	case "list":
		if err := list(stdout, st); err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		return 0
	case "save":
		if name == "" {
			fmt.Fprintln(stderr, "simbase: save needs a baseline name")
			return 2
		}
		if err := save(stdout, st, name, *label); err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		return 0
	case "diff":
		if name == "" {
			fmt.Fprintln(stderr, "simbase: diff needs a baseline name")
			return 2
		}
		regressed, err := diff(stdout, st, name, *label, *gate, sg)
		if err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		if regressed {
			return 1
		}
		return 0
	case "show":
		if name == "" {
			fmt.Fprintln(stderr, "simbase: show needs a cell name (or substring), e.g. arm/mem.hot/interp@64")
			return 2
		}
		if err := show(stdout, st, name, *label, sg); err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		return 0
	case "gc":
		stats, err := st.GC(*keepRuns, *dryRun)
		if err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		fmt.Fprintf(stdout, "gc: %s\n", stats)
		return 0
	default:
		usage(fs, stderr)
		return 2
	}
}

// list prints the recorded history and the saved baselines.
func list(w io.Writer, st *store.Store) error {
	runs, err := st.History()
	if err != nil {
		return err
	}
	t := report.Table{
		Title:   fmt.Sprintf("Run history (%d runs)", len(runs)),
		Columns: []string{"time", "label", "host", "cells", "errors"},
	}
	for _, rr := range runs {
		errs := 0
		for _, c := range rr.Cells {
			if c.Error != "" {
				errs++
			}
		}
		t.AddRow(rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, rr.Host,
			fmt.Sprint(len(rr.Cells)), fmt.Sprint(errs))
	}
	t.Fprint(w)

	names, err := st.Baselines()
	if err != nil {
		return err
	}
	bt := report.Table{
		Title:   fmt.Sprintf("Baselines (%d)", len(names)),
		Columns: []string{"name", "time", "label", "cells"},
	}
	for _, name := range names {
		rr, err := st.LoadBaseline(name)
		if err != nil {
			return err
		}
		bt.AddRow(name, rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, fmt.Sprint(len(rr.Cells)))
	}
	bt.Fprint(w)
	return nil
}

// save stores the latest (optionally label-filtered) history run under
// a baseline name.
func save(w io.Writer, st *store.Store, name, label string) error {
	rr, err := st.LatestRun(label)
	if err != nil {
		return err
	}
	if err := st.SaveBaseline(name, rr); err != nil {
		return err
	}
	fmt.Fprintf(w, "saved baseline %q: %s run %q, %d cells\n",
		name, rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, len(rr.Cells))
	errs := 0
	for _, c := range rr.Cells {
		if c.Error != "" {
			errs++
		}
	}
	if errs > 0 {
		fmt.Fprintf(w, "warning: %d of %d baseline cells are errored and will not be comparable in diffs\n", errs, len(rr.Cells))
	}
	return nil
}

// diff compares the latest run against a baseline and reports whether
// anything regressed past the active gate.
func diff(w io.Writer, st *store.Store, name, label, gate string, sg store.StatGate) (bool, error) {
	base, err := st.LoadBaseline(name)
	if err != nil {
		return false, err
	}
	runs, err := st.History()
	if err != nil {
		return false, err
	}
	cur, prior, err := store.LatestWithPrior(runs, label)
	if err != nil {
		return false, err
	}
	var d store.Diff
	if gate == "stat" {
		d = store.DiffRunsStat(base, cur, prior, sg)
	} else {
		d = store.DiffRuns(base, cur, sg.Threshold)
	}
	if compared := d.Stable + len(d.Regressions) + len(d.Improvements) + len(d.Broken); compared == 0 {
		// A gate that compared nothing must not pass: the latest run
		// and the baseline describe disjoint matrices (different
		// benchmarks, scale, or tool — use -label to pick the right
		// history entries).
		return false, fmt.Errorf("no cell of the latest run %q (%d cells) matches baseline %q (%d cells); nothing was compared",
			cur.Label, len(cur.Cells), name, len(base.Cells))
	}

	fmt.Fprintf(w, "baseline %q (%s, %d cells) vs latest run %q (%s, %d cells), gate %s, threshold %.0f%%\n\n",
		name, base.Time.Format("2006-01-02T15:04:05Z"), len(base.Cells),
		cur.Label, cur.Time.Format("2006-01-02T15:04:05Z"), len(cur.Cells), d.Mode, d.Threshold*100)

	printCells := func(title string, cells []store.CellDiff) {
		cols := []string{"cell", "baseline", "current", "delta"}
		if d.Mode == "stat" {
			cols = append(cols, "noise band", "gate")
		}
		t := report.Table{Title: title, Columns: cols}
		for _, c := range cells {
			row := []string{c.Cell(), fmt.Sprintf("%.3fs", c.BaseSeconds),
				fmt.Sprintf("%.3fs", c.CurrentSeconds), fmt.Sprintf("%+.1f%%", c.Delta*100)}
			if d.Mode == "stat" {
				band := "-"
				if c.Noise != nil {
					band = fmt.Sprintf("[%.3fs, %.3fs] n=%d", c.Noise.Lo, c.Noise.Hi, c.Noise.N)
				}
				row = append(row, band, c.Gate)
			}
			t.AddRow(row...)
		}
		t.Fprint(w)
	}
	if len(d.Regressions) > 0 {
		printCells(fmt.Sprintf("REGRESSED (%d cells)", len(d.Regressions)), d.Regressions)
	}
	if len(d.Improvements) > 0 {
		printCells(fmt.Sprintf("Improved (%d cells)", len(d.Improvements)), d.Improvements)
	}
	if len(d.Broken) > 0 {
		t := report.Table{Title: fmt.Sprintf("BROKEN (%d cells measured in baseline, errored now)", len(d.Broken)),
			Columns: []string{"cell"}}
		for _, id := range d.Broken {
			t.AddRow(id)
		}
		t.Fprint(w)
	}
	if d.Mode == "stat" {
		fmt.Fprintf(w, "%d cells stable within their noise bands (threshold fallback ±%.0f%%)", d.Stable, d.Threshold*100)
	} else {
		fmt.Fprintf(w, "%d cells stable within ±%.0f%%", d.Stable, d.Threshold*100)
	}
	if len(d.OnlyBase) > 0 || len(d.OnlyCurrent) > 0 {
		fmt.Fprintf(w, "; %d baseline and %d current cells without a measured counterpart (not compared)",
			len(d.OnlyBase), len(d.OnlyCurrent))
	}
	fmt.Fprintln(w)
	if d.Regressed() {
		fmt.Fprintf(w, "result: REGRESSION — %d cells outside what baseline %q allows, %d broken\n",
			len(d.Regressions), name, len(d.Broken))
	} else if d.Mode == "stat" {
		fmt.Fprintln(w, "result: ok — no cell left its historical noise band")
	} else {
		fmt.Fprintf(w, "result: ok — no cell regressed past %.0f%%\n", d.Threshold*100)
	}
	return d.Regressed(), nil
}

// cellEntry is one historical measurement of one cell.
type cellEntry struct {
	time  string
	label string
	rec   report.Record
}

// show prints the measurement history and noise statistics of every
// cell whose name contains the pattern. The full recorded history is
// listed; the noise model, like the gate's, pools only fresh samples
// from the most recent -window runs.
func show(w io.Writer, st *store.Store, pattern, label string, sg store.StatGate) error {
	all, err := st.History()
	if err != nil {
		return err
	}
	var runs []store.RunRecord
	for _, rr := range all {
		if label == "" || rr.Label == label {
			runs = append(runs, rr)
		}
	}
	byCell := make(map[string][]cellEntry)
	names := make(map[string]string)
	for _, rr := range runs {
		for _, c := range rr.Cells {
			name := store.CellName(c)
			if !strings.Contains(name, pattern) {
				continue
			}
			id := store.CellID(c)
			names[id] = name
			byCell[id] = append(byCell[id], cellEntry{
				time:  rr.Time.Format("2006-01-02T15:04:05Z"),
				label: rr.Label,
				rec:   c,
			})
		}
	}
	if len(byCell) == 0 {
		return fmt.Errorf("no recorded cell matches %q (names look like arm/mem.hot/interp@64)", pattern)
	}
	ids := make([]string, 0, len(byCell))
	for id := range byCell {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// The gate's own pool construction — fresh samples, per-cell
	// window — so show's n/band/gate can never diverge from diff's.
	allSamples := store.Samples(runs)
	for _, id := range ids {
		entries := byCell[id]
		samples := sg.Pool(allSamples[id])
		band := sg.Band(id, samples)
		t := report.Table{
			Title:   fmt.Sprintf("Cell %s — %d runs recorded", names[id], len(entries)),
			Columns: []string{"time", "label", "kernel", "vs median"},
		}
		for _, e := range entries {
			if e.rec.Error != "" {
				t.AddRow(e.time, e.label, "ERR", e.rec.Error)
				continue
			}
			vs := "-"
			if band.Median > 0 {
				vs = fmt.Sprintf("%+.1f%%", (e.rec.KernelSeconds/band.Median-1)*100)
			}
			kernel := fmt.Sprintf("%.3fs", e.rec.KernelSeconds)
			if e.rec.Cached {
				kernel += " (cached)"
			}
			t.AddRow(e.time, e.label, kernel, vs)
		}
		t.Fprint(w)
		fmt.Fprintf(w, "noise: n=%d median=%.3fs mad=%.4fs band=[%.3fs, %.3fs]\n",
			band.N, band.Median, band.MAD, band.Lo, band.Hi)
		// The prediction below is for the *next* recorded measurement:
		// when diff judges it, its sample pool is exactly the runs
		// recorded now (diff always excludes the run under test).
		switch {
		case len(samples) < sg.MinHistory:
			fmt.Fprintf(w, "gate: the next diff falls back to the fixed threshold — history n=%d below -min-history %d\n\n", len(samples), sg.MinHistory)
		case band.Degenerate():
			fmt.Fprintf(w, "gate: threshold floor — history has zero spread, band widens to median±%.0f%%\n\n", sg.Threshold*100)
		default:
			fmt.Fprintf(w, "gate: statistical — the next measurement flags if it leaves the band\n\n")
		}
	}
	return nil
}
