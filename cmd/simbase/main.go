// Command simbase manages the run history and baselines of a simbench
// result cache (-cache-dir, as written by simbench, simsweep and
// simreport): it saves a named baseline from the recorded history,
// lists history and baselines, and diffs the latest run against a
// baseline — flagging every cell whose kernel time regressed beyond a
// noise threshold, with a nonzero exit status on regression so it
// slots directly into CI.
//
// Usage:
//
//	simbase -cache-dir .simcache list
//	simbase -cache-dir .simcache save nightly
//	simbase -cache-dir .simcache -threshold 0.15 diff nightly
//	simbase -cache-dir .simcache -label fig7 diff nightly
//
// Exit status: 0 on success (diff: no regression), 1 when diff finds
// a regression, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simbench/internal/report"
	"simbench/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: simbase -cache-dir DIR [-threshold T] [-label L] list | save NAME | diff NAME")
	fs.SetOutput(stderr)
	fs.PrintDefaults()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simbase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cacheDir  = fs.String("cache-dir", "", "result cache directory (as passed to simbench/simsweep/simreport)")
		threshold = fs.Float64("threshold", 0.10, "relative kernel-time slowdown tolerated as noise before a cell counts as regressed (0.10 = 10%)")
		label     = fs.String("label", "", "restrict history to runs with this label (e.g. fig7, simbench)")
	)
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cacheDir == "" {
		fmt.Fprintln(stderr, "simbase: -cache-dir is required")
		return 2
	}
	// simbase only inspects an existing store; opening one would
	// create the directory and mask a mistyped -cache-dir.
	if _, err := os.Stat(*cacheDir); err != nil {
		fmt.Fprintf(stderr, "simbase: no result cache at %s: %v\n", *cacheDir, err)
		return 2
	}
	st, err := store.Open(*cacheDir)
	if err != nil {
		fmt.Fprintln(stderr, "simbase:", err)
		return 2
	}

	switch verb, name := fs.Arg(0), fs.Arg(1); verb {
	case "list":
		if err := list(stdout, st); err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		return 0
	case "save":
		if name == "" {
			fmt.Fprintln(stderr, "simbase: save needs a baseline name")
			return 2
		}
		if err := save(stdout, st, name, *label); err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		return 0
	case "diff":
		if name == "" {
			fmt.Fprintln(stderr, "simbase: diff needs a baseline name")
			return 2
		}
		regressed, err := diff(stdout, st, name, *label, *threshold)
		if err != nil {
			fmt.Fprintln(stderr, "simbase:", err)
			return 2
		}
		if regressed {
			return 1
		}
		return 0
	default:
		usage(fs, stderr)
		return 2
	}
}

// list prints the recorded history and the saved baselines.
func list(w io.Writer, st *store.Store) error {
	runs, err := st.History()
	if err != nil {
		return err
	}
	t := report.Table{
		Title:   fmt.Sprintf("Run history (%d runs)", len(runs)),
		Columns: []string{"time", "label", "host", "cells", "errors"},
	}
	for _, rr := range runs {
		errs := 0
		for _, c := range rr.Cells {
			if c.Error != "" {
				errs++
			}
		}
		t.AddRow(rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, rr.Host,
			fmt.Sprint(len(rr.Cells)), fmt.Sprint(errs))
	}
	t.Fprint(w)

	names, err := st.Baselines()
	if err != nil {
		return err
	}
	bt := report.Table{
		Title:   fmt.Sprintf("Baselines (%d)", len(names)),
		Columns: []string{"name", "time", "label", "cells"},
	}
	for _, name := range names {
		rr, err := st.LoadBaseline(name)
		if err != nil {
			return err
		}
		bt.AddRow(name, rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, fmt.Sprint(len(rr.Cells)))
	}
	bt.Fprint(w)
	return nil
}

// save stores the latest (optionally label-filtered) history run under
// a baseline name.
func save(w io.Writer, st *store.Store, name, label string) error {
	rr, err := st.LatestRun(label)
	if err != nil {
		return err
	}
	if err := st.SaveBaseline(name, rr); err != nil {
		return err
	}
	fmt.Fprintf(w, "saved baseline %q: %s run %q, %d cells\n",
		name, rr.Time.Format("2006-01-02T15:04:05Z"), rr.Label, len(rr.Cells))
	errs := 0
	for _, c := range rr.Cells {
		if c.Error != "" {
			errs++
		}
	}
	if errs > 0 {
		fmt.Fprintf(w, "warning: %d of %d baseline cells are errored and will not be comparable in diffs\n", errs, len(rr.Cells))
	}
	return nil
}

// diff compares the latest run against a baseline and reports whether
// anything regressed past the threshold.
func diff(w io.Writer, st *store.Store, name, label string, threshold float64) (bool, error) {
	base, err := st.LoadBaseline(name)
	if err != nil {
		return false, err
	}
	cur, err := st.LatestRun(label)
	if err != nil {
		return false, err
	}
	d := store.DiffRuns(base, cur, threshold)
	if compared := d.Stable + len(d.Regressions) + len(d.Improvements) + len(d.Broken); compared == 0 {
		// A gate that compared nothing must not pass: the latest run
		// and the baseline describe disjoint matrices (different
		// benchmarks, scale, or tool — use -label to pick the right
		// history entries).
		return false, fmt.Errorf("no cell of the latest run %q (%d cells) matches baseline %q (%d cells); nothing was compared",
			cur.Label, len(cur.Cells), name, len(base.Cells))
	}

	fmt.Fprintf(w, "baseline %q (%s, %d cells) vs latest run %q (%s, %d cells), threshold %.0f%%\n\n",
		name, base.Time.Format("2006-01-02T15:04:05Z"), len(base.Cells),
		cur.Label, cur.Time.Format("2006-01-02T15:04:05Z"), len(cur.Cells), threshold*100)

	printCells := func(title string, cells []store.CellDiff) {
		t := report.Table{Title: title, Columns: []string{"cell", "baseline", "current", "delta"}}
		for _, c := range cells {
			t.AddRow(c.Cell(), fmt.Sprintf("%.3fs", c.BaseSeconds),
				fmt.Sprintf("%.3fs", c.CurrentSeconds), fmt.Sprintf("%+.1f%%", c.Delta*100))
		}
		t.Fprint(w)
	}
	if len(d.Regressions) > 0 {
		printCells(fmt.Sprintf("REGRESSED (%d cells)", len(d.Regressions)), d.Regressions)
	}
	if len(d.Improvements) > 0 {
		printCells(fmt.Sprintf("Improved (%d cells)", len(d.Improvements)), d.Improvements)
	}
	if len(d.Broken) > 0 {
		t := report.Table{Title: fmt.Sprintf("BROKEN (%d cells measured in baseline, errored now)", len(d.Broken)),
			Columns: []string{"cell"}}
		for _, id := range d.Broken {
			t.AddRow(id)
		}
		t.Fprint(w)
	}
	fmt.Fprintf(w, "%d cells stable within ±%.0f%%", d.Stable, threshold*100)
	if len(d.OnlyBase) > 0 || len(d.OnlyCurrent) > 0 {
		fmt.Fprintf(w, "; %d baseline and %d current cells without a measured counterpart (not compared)",
			len(d.OnlyBase), len(d.OnlyCurrent))
	}
	fmt.Fprintln(w)
	if d.Regressed() {
		fmt.Fprintf(w, "result: REGRESSION — %d cells slower than baseline %q allows, %d broken\n",
			len(d.Regressions), name, len(d.Broken))
	} else {
		fmt.Fprintf(w, "result: ok — no cell regressed past %.0f%%\n", threshold*100)
	}
	return d.Regressed(), nil
}
