// Command simsweep runs the QEMU-version sweep experiments: the
// paper's Fig. 2 (SPEC-like speedups per release), Fig. 6 (per-category
// SimBench speedups per release, both guests) and Fig. 8 (geomean of
// SPEC vs SimBench per release). The release × workload matrix runs on
// the concurrent scheduler (-jobs).
//
// Usage:
//
//	simsweep -fig 2
//	simsweep -fig 6 -scale 5000 -jobs 8
//	simsweep -fig 8 -v
//	simsweep -fig 8 -cache-dir .simcache   # reuse cells across invocations
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simbench/internal/figures"
	"simbench/internal/store"
)

func main() {
	var (
		fig       = flag.Int("fig", 8, "figure to regenerate: 2, 6 or 8")
		scale     = flag.Int64("scale", 4000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 40, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		jobs      = flag.Int("jobs", 0, "matrix cells run concurrently (default GOMAXPROCS; use 1 for minimum-noise timings)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured, and every sweep is appended to its history (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL: a shared remote cache tier behind -cache-dir (see simbench -remote)")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	// First Ctrl-C stops feeding new cells; a second kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	opts := figures.Options{
		Out:       os.Stdout,
		Scale:     *scale,
		SpecScale: *specScale,
		MinIters:  *minIters,
		Jobs:      *jobs,
		Context:   ctx,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" || *remote != "" {
		st, err := store.OpenTiered(*cacheDir, *remote)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simsweep:", err)
			os.Exit(1)
		}
		opts.Store = st
		if n := store.IdentityNote("simsweep"); n != "" {
			fmt.Fprintln(os.Stderr, n)
		}
	}

	var err error
	switch *fig {
	case 2:
		err = figures.Fig2(opts)
	case 6:
		err = figures.Fig6(opts)
	case 8:
		err = figures.Fig8(opts)
	default:
		err = fmt.Errorf("unknown figure %d (want 2, 6 or 8)", *fig)
	}
	if opts.Store != nil {
		// Flush pending remote uploads before reporting: the fleet can
		// only share this sweep's cells once they have landed.
		opts.Store.Close()
	}
	store.FprintStats(os.Stderr, "simsweep", opts.Store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simsweep:", err)
		os.Exit(1)
	}
}
