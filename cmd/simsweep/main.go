// Command simsweep runs the QEMU-version sweep experiments: the
// paper's Fig. 2 (SPEC-like speedups per release), Fig. 6 (per-category
// SimBench speedups per release, both guests) and Fig. 8 (geomean of
// SPEC vs SimBench per release) — or any user-defined experiment spec
// (-spec file.json). The release × workload matrix runs on the
// concurrent scheduler (-jobs).
//
// Usage:
//
//	simsweep -fig 2
//	simsweep -fig 6 -scale 5000 -jobs 8
//	simsweep -fig 8 -v
//	simsweep -fig 8 -cache-dir .simcache   # reuse cells across invocations
//	simsweep -spec myexp.json -cache-dir .simcache
//
// A spec run with -cache-dir lands in run history under the spec's
// own label; `simreport -spec myexp.json -offline` then renders it
// again without measuring anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simbench/internal/experiment"
	"simbench/internal/obs"
	"simbench/internal/store"
)

func main() {
	var (
		fig       = flag.Int("fig", 8, "figure to regenerate: 2, 6 or 8")
		specFile  = flag.String("spec", "", "run this experiment spec JSON file instead of a built-in figure")
		scale     = flag.Int64("scale", 4000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 40, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		repeats   = flag.Int("repeats", 0, "measurements per cell; the minimum kernel time is reported (0 = the spec's pin, else 2)")
		jobs      = flag.Int("jobs", 0, "matrix cells run concurrently (default GOMAXPROCS; use 1 for minimum-noise timings)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured, and every sweep is appended to its history (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL: a shared remote cache tier behind -cache-dir (see simbench -remote)")
		remoteTok = flag.String("remote-token", os.Getenv("SIMBENCH_REMOTE_TOKEN"), "bearer token for a -remote server started with -token (default $SIMBENCH_REMOTE_TOKEN)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's per-cell spans to this path after the tables render (see simbench -trace)")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	// First Ctrl-C stops feeding new cells; a second kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	// The tracer rides the run context into the scheduler; the
	// experiment layer never sees it.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	opts := experiment.Options{
		Out:       os.Stdout,
		Scale:     *scale,
		SpecScale: *specScale,
		MinIters:  *minIters,
		Repeats:   *repeats,
		Jobs:      *jobs,
		Context:   ctx,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" || *remote != "" {
		st, err := store.OpenTiered(*cacheDir, *remote, store.WithToken(*remoteTok))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simsweep:", err)
			os.Exit(1)
		}
		opts.Store = st
		st.SetTracer(tracer)
		if n := store.IdentityNote("simsweep"); n != "" {
			fmt.Fprintln(os.Stderr, n)
		}
	}

	figSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figSet = true
		}
	})
	var err error
	if *specFile != "" {
		if figSet {
			// Mirrors simbench rejecting -spec alongside its selection
			// flags: silently preferring one would run a different
			// experiment than the command line reads.
			fmt.Fprintln(os.Stderr, "simsweep: -spec describes the whole experiment; it excludes -fig")
			os.Exit(1)
		}
		var sp experiment.Spec
		if sp, err = experiment.LoadFile(*specFile); err == nil {
			err = experiment.Run(sp, opts)
		}
	} else {
		switch *fig {
		case 2, 6, 8:
			err = experiment.RunNamed(fmt.Sprintf("fig%d", *fig), opts)
		default:
			err = fmt.Errorf("unknown figure %d (want 2, 6 or 8)", *fig)
		}
	}
	if opts.Store != nil {
		// Flush pending remote uploads before reporting: the fleet can
		// only share this sweep's cells once they have landed.
		opts.Store.Close()
	}
	store.FprintStats(os.Stderr, "simsweep", opts.Store)
	// After every table and cache line: the trace must never sequence
	// before the output it describes.
	if tracer != nil {
		if terr := tracer.WriteFile(*traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, "simsweep: write trace:", terr)
		} else {
			fmt.Fprintln(os.Stderr, "simsweep: trace written to", *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simsweep:", err)
		os.Exit(1)
	}
}
