// Command simstored serves a result store over HTTP — the remote tier
// behind the simbench/simsweep/simreport -remote flag. One instance in
// front of one directory turns a fleet of CI hosts into a single
// incremental suite: a cell measured once on any host is a remote hit
// everywhere else, run history aggregates across hosts, and simbase
// diffs any host's latest run against fleet-wide baselines.
//
// Usage:
//
//	simstored -dir /var/cache/simbench                # default addr
//	simstored -dir /tmp/store -addr 127.0.0.1:8347
//	simstored -dir /tmp/store -pprof -access-log /var/log/simstored.jsonl
//	simstored -dir /tmp/store -token s3cret -quota-req 200 -quota-bytes 50e6
//
// The directory layout is exactly a local -cache-dir, so pointing
// simstored at an existing cache directory publishes its cells as-is.
//
// Observability: every request is counted and timed on the server's
// metric registry, scraped at GET /metrics in Prometheus text format,
// and logged as one JSON line to -access-log ("-" for stdout, ""
// to disable). -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on the same listener — off by default, since profile
// endpoints on a fleet-shared cache are opt-in surface.
//
// Caveat: the store keys cells by the client binary's build identity.
// go test / go run builds and dirty-tree builds cannot tell engine-code
// edits apart (see the identity note those tools print) — on a shared
// store such a client can poison the cache for the whole fleet, not
// just one machine. Fleets should run clean, stamped builds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"simbench/internal/simstored"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8347", "listen address")
		dir       = flag.String("dir", "", "store directory to serve (created if missing; same layout as a local -cache-dir)")
		accessLog = flag.String("access-log", "-", `access log destination: "-" for stdout, a file path to append to, "" to disable`)
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener")
		token     = flag.String("token", os.Getenv("SIMSTORED_TOKEN"), "comma-separated bearer tokens; when set, every endpoint but /healthz requires one (default $SIMSTORED_TOKEN). Clients pass theirs via -remote-token")
		quotaReq  = flag.Float64("quota-req", 0, "per-client request quota in requests/second (0 = unlimited); past it the server answers 429 with a Retry-After")
		quotaBy   = flag.Float64("quota-bytes", 0, "per-client transfer quota in bytes/second across request and response bodies (0 = unlimited)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "simstored: -dir is required")
		os.Exit(2)
	}

	srv, err := simstored.New(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simstored:", err)
		os.Exit(1)
	}
	for _, t := range strings.Split(*token, ",") {
		if t = strings.TrimSpace(t); t != "" {
			srv.Tokens = append(srv.Tokens, t)
		}
	}
	srv.ReqPerSec = *quotaReq
	srv.BytesPerSec = *quotaBy
	srv.Logf = log.New(os.Stderr, "simstored: ", log.LstdFlags).Printf
	switch *accessLog {
	case "":
	case "-":
		srv.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simstored: open access log:", err)
			os.Exit(1)
		}
		defer f.Close()
		srv.AccessLog = f
	}

	handler := http.Handler(srv)
	if *pprofOn {
		// An explicit mux rather than a blank pprof import: the profile
		// handlers must exist only when asked for, and only here — the
		// package's DefaultServeMux registration is never served.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("simstored: serving %s on http://%s", *dir, *addr)
	err = hs.ListenAndServe()
	// Shutdown makes ListenAndServe return immediately; wait for
	// in-flight requests to drain before exiting, or the "graceful"
	// shutdown would reset a client mid-PUT anyway.
	stop()
	<-drained
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "simstored:", err)
		os.Exit(1)
	}
}
