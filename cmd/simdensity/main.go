// Command simdensity regenerates the paper's Fig. 3: the SimBench
// benchmark table with per-benchmark operation densities, measured on
// the profiling interpreter, against both the benchmark itself and the
// aggregated SPEC-like application suite. The density cells run on the
// concurrent scheduler (-jobs), honour Ctrl-C, and cache like any
// other cells (-cache-dir), so a repeated table costs nothing.
//
// Usage:
//
//	simdensity
//	simdensity -scale 500 -v
//	simdensity -jobs 8 -cache-dir .simcache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simbench/internal/experiment"
	"simbench/internal/obs"
	"simbench/internal/store"
)

func main() {
	var (
		scale     = flag.Int64("scale", 2000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 20, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		jobs      = flag.Int("jobs", 0, "density cells run concurrently (default GOMAXPROCS; densities are deterministic counts, so parallelism is free)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL: a shared remote cache tier behind -cache-dir (see simbench -remote)")
		remoteTok = flag.String("remote-token", os.Getenv("SIMBENCH_REMOTE_TOKEN"), "bearer token for a -remote server started with -token (default $SIMBENCH_REMOTE_TOKEN)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's per-cell spans to this path after the table renders (see simbench -trace)")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	// First Ctrl-C stops feeding new cells (in-flight ones finish); a
	// second Ctrl-C kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	// The tracer rides the run context into the scheduler; the
	// experiment layer never sees it.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	opts := experiment.Options{Out: os.Stdout, Scale: *scale, SpecScale: *specScale, MinIters: *minIters, Jobs: *jobs, Context: ctx}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" || *remote != "" {
		st, err := store.OpenTiered(*cacheDir, *remote, store.WithToken(*remoteTok))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simdensity:", err)
			os.Exit(1)
		}
		opts.Store = st
		st.SetTracer(tracer)
		if n := store.IdentityNote("simdensity"); n != "" {
			fmt.Fprintln(os.Stderr, n)
		}
	}

	err := experiment.RunNamed("fig3", opts)
	if opts.Store != nil {
		opts.Store.Close()
	}
	store.FprintStats(os.Stderr, "simdensity", opts.Store)
	// After the table and cache line: the trace must never sequence
	// before the output it describes.
	if tracer != nil {
		if terr := tracer.WriteFile(*traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, "simdensity: write trace:", terr)
		} else {
			fmt.Fprintln(os.Stderr, "simdensity: trace written to", *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdensity:", err)
		os.Exit(1)
	}
}
