// Command simdensity regenerates the paper's Fig. 3: the SimBench
// benchmark table with per-benchmark operation densities, measured on
// the profiling interpreter, against both the benchmark itself and the
// aggregated SPEC-like application suite.
//
// Usage:
//
//	simdensity
//	simdensity -scale 500 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"simbench/internal/figures"
)

func main() {
	var (
		scale     = flag.Int64("scale", 2000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 20, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	opts := figures.Options{Out: os.Stdout, Scale: *scale, SpecScale: *specScale, MinIters: *minIters}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if err := figures.Fig3(opts); err != nil {
		fmt.Fprintln(os.Stderr, "simdensity:", err)
		os.Exit(1)
	}
}
