// Command simlint machine-checks simbench's operational invariants:
// cache-key soundness (keymaterial), byte-identical rendering
// (determinism), cancellable dispatch (ctxflow) and serialized history
// appends (lockedappend). It runs two ways:
//
//	go vet -vettool=$(which simlint) ./...   # cmd/go drives, cached per package
//	simlint ./...                            # standalone, self-driven via go list
//
// The vettool form is what CI runs: cmd/go hands simlint one package
// at a time with compiled export data and the fact files of its
// dependencies, and caches the results like any other build step.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"simbench/internal/analysis/driver"
	"simbench/internal/analysis/simlint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(1)
	}
	switch {
	case args[0] == "-V=full":
		// cmd/go's tool-version handshake: the reported build ID keys
		// vet's result cache, so it must change whenever the binary does.
		fmt.Printf("simlint version devel buildID=%s\n", selfHash())
		return
	case args[0] == "-flags":
		// cmd/go asks which flags the tool accepts before forwarding any.
		fmt.Println(flagsJSON())
		return
	case args[0] == "-help" || args[0] == "--help" || args[0] == "help":
		usage()
		return
	case strings.HasSuffix(args[len(args)-1], ".cfg"):
		os.Exit(driver.RunVetTool(args[len(args)-1], simlint.Suite()))
	default:
		os.Exit(driver.RunStandalone(args, simlint.Suite()))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simlint <packages>   (or: go vet -vettool=simlint <packages>)")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, e := range simlint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", e.Analyzer.Name, e.Analyzer.Doc)
		if len(e.Scope) > 0 {
			fmt.Fprintf(os.Stderr, "  %-14s scope: %s\n", "", strings.Join(e.Scope, ", "))
		}
	}
	fmt.Fprintln(os.Stderr, "\nwaive a finding with: //simlint:allow <analyzer> -- <reason>")
}

// selfHash hashes the executable so vet's cache invalidates on rebuild.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	// Degrade to an uncacheable-but-correct constant.
	return "0000000000000000"
}

func flagsJSON() string {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	data, _ := json.Marshal([]flagDef{})
	return string(data)
}
