// Command simreport prints the static evaluation tables: the paper's
// Fig. 4 (how each platform implements each mechanism, from live
// engine metadata) and Fig. 5 (evaluation platform details). With
// -all it regenerates every figure in sequence — the full paper
// evaluation. The matrix figures (7 and the sweeps 2, 6, 8) run on
// the concurrent scheduler (-jobs) and share a result store, so the
// sweep figures reuse their overlapping cells instead of re-measuring
// them; with -cache-dir the store persists, making repeated
// invocations incremental, and once a cell has enough recorded runs
// the Fig. 7 table annotates its measurement with a ± noise band
// derived from that history (see simbase -gate=stat). (Fig. 3
// profiles operation densities on a dedicated instrumented
// interpreter and always re-runs.)
//
// Usage:
//
//	simreport                          # Fig. 4 + Fig. 5
//	simreport -all                     # Figs. 4, 5, 3, 7, 2, 6, 8 (long)
//	simreport -all -jobs 8 -cache-dir .simcache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simbench/internal/figures"
	"simbench/internal/store"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate every figure (long)")
		scale     = flag.Int64("scale", 2000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 20, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		jobs      = flag.Int("jobs", 0, "matrix cells run concurrently (default GOMAXPROCS; use 1 for minimum-noise timings)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured, and every figure run is appended to its history (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL: a shared remote cache tier behind -cache-dir (see simbench -remote)")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	// First Ctrl-C stops feeding new cells (in-flight ones finish and
	// are reported); a second Ctrl-C kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	opts := figures.Options{Out: os.Stdout, Scale: *scale, SpecScale: *specScale, MinIters: *minIters, Jobs: *jobs, Context: ctx}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" || *remote != "" || *all {
		// Even without -cache-dir, an in-process store lets Figs. 2, 6
		// and 8 share their overlapping sweep cells within this run.
		st, err := store.OpenTiered(*cacheDir, *remote)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simreport:", err)
			os.Exit(1)
		}
		opts.Store = st
		if *cacheDir != "" || *remote != "" {
			if n := store.IdentityNote("simreport"); n != "" {
				fmt.Fprintln(os.Stderr, n)
			}
		}
	}

	// Flushes pending remote uploads before the stats line: the fleet
	// can only share this run's cells once they have landed.
	report := func() {
		if opts.Store != nil {
			opts.Store.Close()
		}
		store.FprintStats(os.Stderr, "simreport", opts.Store)
	}
	steps := []func(figures.Options) error{figures.Fig4, figures.Fig5}
	if *all {
		steps = append(steps, figures.Fig3, figures.Fig7, figures.Fig2, figures.Fig6, figures.Fig8)
	}
	for _, step := range steps {
		if err := step(opts); err != nil {
			report()
			fmt.Fprintln(os.Stderr, "simreport:", err)
			os.Exit(1)
		}
	}
	report()
}
