// Command simreport prints the static evaluation tables: the paper's
// Fig. 4 (how each platform implements each mechanism, from live
// engine metadata) and Fig. 5 (evaluation platform details). With
// -all it regenerates every figure in sequence — the full paper
// evaluation.
//
// Usage:
//
//	simreport           # Fig. 4 + Fig. 5
//	simreport -all      # Figs. 4, 5, 3, 7, 2, 6, 8 (long)
package main

import (
	"flag"
	"fmt"
	"os"

	"simbench/internal/figures"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate every figure (long)")
		scale     = flag.Int64("scale", 2000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 20, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	opts := figures.Options{Out: os.Stdout, Scale: *scale, SpecScale: *specScale, MinIters: *minIters}
	if *verbose {
		opts.Progress = os.Stderr
	}

	steps := []func(figures.Options) error{figures.Fig4, figures.Fig5}
	if *all {
		steps = append(steps, figures.Fig3, figures.Fig7, figures.Fig2, figures.Fig6, figures.Fig8)
	}
	for _, step := range steps {
		if err := step(opts); err != nil {
			fmt.Fprintln(os.Stderr, "simreport:", err)
			os.Exit(1)
		}
	}
}
