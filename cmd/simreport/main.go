// Command simreport prints the static evaluation tables: the paper's
// Fig. 4 (how each platform implements each mechanism, from live
// engine metadata) and Fig. 5 (evaluation platform details). With
// -all it additionally runs every registered experiment spec in
// registry order — the full paper evaluation, plus any spec the build
// registers. The matrix specs run on the concurrent scheduler (-jobs)
// and share a result store, so overlapping cells are reused instead
// of re-measured; with -cache-dir the store persists, making repeated
// invocations incremental.
//
// With -offline nothing is measured at all: each spec renders
// straight from the store's recorded history — byte-identical to a
// warm online run — and a spec with cells missing from the store
// fails with a per-cell report instead of silently measuring them.
// -spec file.json substitutes a user-defined spec for the built-ins,
// online or offline.
//
// Usage:
//
//	simreport                          # Fig. 4 + Fig. 5
//	simreport -all                     # Figs. 4, 5, 3, 7, 2, 6, 8 (long)
//	simreport -all -jobs 8 -cache-dir .simcache
//	simreport -all -offline -cache-dir .simcache   # render, measure nothing
//	simreport -spec myexp.json -cache-dir .simcache
//	simreport -spec myexp.json -offline -cache-dir .simcache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simbench/internal/experiment"
	"simbench/internal/figures"
	"simbench/internal/obs"
	"simbench/internal/store"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every registered experiment spec (long)")
		specFile  = flag.String("spec", "", "run (or with -offline, render) this experiment spec JSON file instead of the built-ins")
		offline   = flag.Bool("offline", false, "render specs from the store alone: no engine constructed, no cell measured; missing cells are an error (needs -cache-dir or -remote)")
		scale     = flag.Int64("scale", 2000, "divide SimBench paper iteration counts by this")
		specScale = flag.Int64("spec-scale", 20, "divide SPEC-like workload iteration counts by this")
		minIters  = flag.Int64("min-iters", 2000, "minimum iterations after scaling")
		repeats   = flag.Int("repeats", 0, "measurements per cell; the minimum kernel time is reported (0 = the spec's pin, else 2). Repeats are cell identity: offline rendering must match the measuring run's value")
		jobs      = flag.Int("jobs", 0, "matrix cells run concurrently (default GOMAXPROCS; use 1 for minimum-noise timings)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache: identical cells are served from here instead of re-measured, and every spec run is appended to its history (see simbase)")
		remote    = flag.String("remote", "", "simstored server URL: a shared remote cache tier behind -cache-dir (see simbench -remote)")
		remoteTok = flag.String("remote-token", os.Getenv("SIMBENCH_REMOTE_TOKEN"), "bearer token for a -remote server started with -token (default $SIMBENCH_REMOTE_TOKEN)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's per-cell spans to this path after the tables render (see simbench -trace)")
		verbose   = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	var userSpec *experiment.Spec
	if *specFile != "" {
		// Mirrors simbench and simsweep rejecting -spec alongside their
		// selection flags: silently preferring one would run a
		// different evaluation than the command line reads.
		if *all {
			fail(fmt.Errorf("-spec replaces the built-in evaluation; it excludes -all"))
		}
		sp, err := experiment.LoadFile(*specFile)
		if err != nil {
			fail(err)
		}
		userSpec = &sp
	}
	if *offline {
		if *cacheDir == "" && *remote == "" {
			fail(fmt.Errorf("-offline renders from a store; give it -cache-dir or -remote"))
		}
		if !*all && userSpec == nil {
			fail(fmt.Errorf("-offline needs -all or -spec file.json to know what to render"))
		}
	}

	// First Ctrl-C stops feeding new cells (in-flight ones finish and
	// are reported); a second Ctrl-C kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	// The tracer rides the run context into the scheduler; the
	// experiment and figures layers never see it.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	opts := experiment.Options{Out: os.Stdout, Scale: *scale, SpecScale: *specScale, MinIters: *minIters, Repeats: *repeats, Jobs: *jobs, Context: ctx}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" || *remote != "" || *all || userSpec != nil {
		// Even without -cache-dir, an in-process store lets the sweep
		// specs share their overlapping cells within this run.
		st, err := store.OpenTiered(*cacheDir, *remote, store.WithToken(*remoteTok))
		if err != nil {
			fail(err)
		}
		opts.Store = st
		st.SetTracer(tracer)
		if (*cacheDir != "" || *remote != "") && !*offline {
			if n := store.IdentityNote("simreport"); n != "" {
				fmt.Fprintln(os.Stderr, n)
			}
		}
	}

	// Flushes pending remote uploads before the stats line, then the
	// trace: the fleet can only share this run's cells once they have
	// landed, and the trace must never sequence before the tables it
	// describes.
	report := func() {
		if opts.Store != nil {
			opts.Store.Close()
		}
		store.FprintStats(os.Stderr, "simreport", opts.Store)
		if tracer != nil {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "simreport: write trace:", err)
			} else {
				fmt.Fprintln(os.Stderr, "simreport: trace written to", *traceOut)
			}
		}
	}

	var specs []experiment.Spec
	switch {
	case userSpec != nil:
		specs = []experiment.Spec{*userSpec}
	case *all:
		// The registry, in registration order: the built-in figures,
		// then anything else the build registered.
		specs = experiment.All()
	}
	var steps []func(experiment.Options) error
	if userSpec == nil {
		steps = append(steps, figures.Fig4, figures.Fig5)
	}
	if *offline {
		// One batch: the history is fetched and parsed once for every
		// spec's coverage (with -remote that is one fleet download,
		// not one per spec).
		steps = append(steps, func(o experiment.Options) error {
			return experiment.RenderOfflineAll(specs, o)
		})
	} else {
		for _, sp := range specs {
			sp := sp
			steps = append(steps, func(o experiment.Options) error { return experiment.Run(sp, o) })
		}
	}
	for _, step := range steps {
		if err := step(opts); err != nil {
			report()
			fail(err)
		}
	}
	report()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simreport:", err)
	os.Exit(1)
}
