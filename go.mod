module simbench

go 1.21
