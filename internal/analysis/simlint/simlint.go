// Package simlint assembles the analyzer suite cmd/simlint runs: each
// analyzer paired with the package scope it applies to. The table
// lives here, apart from the analyzers (which stay policy-free and
// individually testable) and apart from the framework (which the
// analyzers import, so the table cannot live there without a cycle).
package simlint

import (
	"simbench/internal/analysis"
	"simbench/internal/analysis/ctxflow"
	"simbench/internal/analysis/determinism"
	"simbench/internal/analysis/keymaterial"
	"simbench/internal/analysis/lockedappend"
)

// Suite returns the full analyzer suite in reporting order. keymaterial
// and lockedappend are global — a cache-key hole or a raw history
// write is a bug wherever it appears — while determinism and ctxflow
// pin to the byte-identity and dispatch surfaces where their rules are
// invariants rather than noise.
func Suite() []analysis.Entry {
	return []analysis.Entry{
		{Analyzer: keymaterial.Analyzer},
		{Analyzer: lockedappend.Analyzer},
		{Analyzer: determinism.Analyzer, Scope: analysis.DeterministicScope},
		{Analyzer: ctxflow.Analyzer, Scope: analysis.CtxScope},
	}
}
