// Compliant job fingerprint: every //simlint:keyaxis accessor the
// jobdef facts carry is read here, so the analyzer must stay silent.
package jobfp

import (
	"fmt"

	"jobdef"
)

func Fingerprint(j jobdef.Job) string {
	return fmt.Sprintf("job=%s cores=%d raw=%d", j.Name, j.EffectiveCores(), j.Cores)
}
