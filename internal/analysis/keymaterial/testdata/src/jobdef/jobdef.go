// Fixture analog of simbench/internal/sched: the Job type whose
// marked axes the fingerprint coverage check protects. The directives
// publish JobKeyAxes facts from here; the jobfp/jobfpbad fixtures
// consume them across the package boundary.
package jobdef

type Job struct {
	Name string
	// Cores is the guest core count; <=0 means 1.
	//simlint:keyaxis
	Cores int
}

// EffectiveCores normalizes the core-count axis.
//
//simlint:keyaxis
func (j Job) EffectiveCores() int {
	if j.Cores < 1 {
		return 1
	}
	return j.Cores
}
