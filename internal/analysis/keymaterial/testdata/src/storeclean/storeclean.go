// Compliant twin of storefix: every tunable engine has a fingerprint
// case and nothing nondeterministic is formatted, so the analyzer must
// stay silent here.
package storeclean

import (
	"fmt"

	"engine"
	"tunables"
)

func engineFingerprint(e engine.Engine) string {
	switch c := e.(type) {
	case *tunables.Covered:
		return fmt.Sprintf("covered %+v", c.Config())
	case *tunables.Uncovered:
		return fmt.Sprintf("uncovered %+v", c.Config())
	case *tunables.DirtyEngine:
		return fmt.Sprintf("dirty %d", c.Config().N)
	}
	return e.Name()
}
