// Job fingerprint with the seeded violation: the core-count axis is
// marked cache-key material at jobdef but never read here, so two
// cells at different core counts would share one content address.
package jobfpbad

import (
	"fmt"

	"jobdef"
)

func Fingerprint(j jobdef.Job) string { // want "does not read jobdef.Job.Cores" "does not read jobdef.Job.EffectiveCores"
	return fmt.Sprintf("job=%s", j.Name)
}
