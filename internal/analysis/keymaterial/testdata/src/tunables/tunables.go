// Fixture engines with configuration structs. Coverage findings for
// the uncovered ones are reported where a fingerprint function is
// visible (storefix), not here; the config-hygiene finding fires here,
// at the defining package.
package tunables

import "engine"

type Config struct {
	Depth int
	Mode  string
}

// Covered is fingerprinted by both storefix and storeclean.
type Covered struct{ cfg Config }

func (c *Covered) Name() string            { return "covered" }
func (c *Covered) Meta() map[string]string { return nil }
func (c *Covered) Config() Config          { return c.cfg }

var _ engine.Engine = (*Covered)(nil)

// Uncovered reports tunables but storefix's fingerprint has no case
// for it — the seeded coverage violation.
type Uncovered struct{ cfg Config }

func (u *Uncovered) Name() string            { return "uncovered" }
func (u *Uncovered) Meta() map[string]string { return nil }
func (u *Uncovered) Config() Config          { return u.cfg }

type DirtyConfig struct {
	N       int
	Weights map[string]int // want "not deterministically formattable"
}

// DirtyEngine's config struct carries a map field — the seeded
// config-hygiene violation, reported on the field above.
type DirtyEngine struct{ cfg DirtyConfig }

func (d *DirtyEngine) Name() string            { return "dirty" }
func (d *DirtyEngine) Meta() map[string]string { return nil }
func (d *DirtyEngine) Config() DirtyConfig     { return d.cfg }
