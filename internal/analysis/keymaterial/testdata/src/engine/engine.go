// Fixture analog of simbench/internal/engine: the interface that makes
// a concrete type an engine. Two methods, so the analyzer's
// trivial-interface guard does not dismiss it.
package engine

type Engine interface {
	Name() string
	Meta() map[string]string
}
