// Fixture analog of simbench/internal/store with seeded violations:
// its fingerprint covers only tunables.Covered, so the other two
// tunable engines are reported at the import that brings them in, and
// its generic branch formats a map with %+v.
package storefix

import (
	"fmt"

	"engine"
	"tunables" // want "tunables.Uncovered" "tunables.DirtyEngine"
)

func engineFingerprint(e engine.Engine) string {
	if c, ok := e.(*tunables.Covered); ok {
		return fmt.Sprintf("covered %+v", c.Config())
	}
	return fmt.Sprintf("generic %+v", e.Meta()) // want "not deterministically formattable"
}
