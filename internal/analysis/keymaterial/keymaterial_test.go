package keymaterial_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/keymaterial"
)

// Fixture order matters: tunables' facts must be on record before the
// packages that import it are analyzed, mirroring how cmd/go feeds
// dependency facts under the vettool protocol.
func TestKeymaterial(t *testing.T) {
	analysistest.Run(t, keymaterial.Analyzer, "engine", "tunables", "storefix", "storeclean")
}
