package keymaterial_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/keymaterial"
)

// Fixture order matters: tunables' facts must be on record before the
// packages that import it are analyzed, mirroring how cmd/go feeds
// dependency facts under the vettool protocol.
func TestKeymaterial(t *testing.T) {
	analysistest.Run(t, keymaterial.Analyzer, "engine", "tunables", "storefix", "storeclean")
}

// TestJobAxisCoverage exercises the //simlint:keyaxis loop across
// packages: jobdef publishes its marked axes as facts, jobfp reads
// them all (silent), and jobfpbad omits the core-count axis from its
// Fingerprint — the exact removal that must fail simlint.
func TestJobAxisCoverage(t *testing.T) {
	analysistest.Run(t, keymaterial.Analyzer, "jobdef", "jobfp", "jobfpbad")
}
