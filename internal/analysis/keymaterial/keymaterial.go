// Package keymaterial guards the store's content-address soundness:
// every engine whose instances carry a configuration struct must be
// explicitly covered by the store's engineFingerprint function, and
// everything the fingerprint formats must format deterministically.
//
// The fingerprint is the fleet cache key. An engine that reports
// tunables but falls through to the generic name+features branch would
// fingerprint two differently-configured instances identically — every
// host of a fleet would then serve the other's measurements for the
// wrong configuration, silently. That is the exact bug shape the
// upcoming external-simulator adapters (exec-driven QEMU/gem5 engines
// with per-adapter invocation config) would ship without a mechanical
// check, because nothing at compile time connects a new engine's
// Config struct to the type switch in internal/store/key.go.
//
// Three checks:
//
//  1. Coverage: a concrete type implementing an Engine interface with
//     a `Config() T` method (T a non-empty struct) must appear as a
//     case in some visible engineFingerprint function. The check fires
//     in packages that see both sides — the package defining the
//     engine or directly importing it, with a fingerprint function in
//     its dependency closure — which in this repo is internal/store
//     (for dbt) and internal/experiment (for everything the registry
//     wires).
//  2. Config hygiene: the struct returned by a tunable engine's
//     Config method must contain only deterministically-formattable
//     fields — no maps, funcs, channels or pointers, whose %+v output
//     depends on allocation addresses or is simply not key material.
//  3. Fingerprint hygiene: values formatted with %v/%+v/%#v inside an
//     engineFingerprint function must satisfy the same field rules.
package keymaterial

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"simbench/internal/analysis"
)

// formattingFunc names the fmt functions whose format-string verbs the
// fingerprint hygiene check inspects.
var formattingFunc = map[string]bool{
	"Sprintf": true, "Fprintf": true, "Printf": true,
	"Errorf": true, "Appendf": true,
}

// FingerprintFunc is the conventional name of the fingerprint
// function the suite anchors on. The store's canonical encoder is
// named exactly this; a renamed encoder must keep the name (or the
// suite updated) — the analyzer doc in README says so.
const FingerprintFunc = "engineFingerprint"

// JobFingerprintFunc is the conventional name of the job fingerprint
// function — the full-cell content-address encoder whose parameter is
// the scheduler's Job. The job-axis coverage check anchors on it.
const JobFingerprintFunc = "Fingerprint"

// KeyAxisDirective marks a job accessor (method or struct field) as
// cache-key material at its defining package. The defining package
// publishes the marked accessors as facts; every visible
// JobFingerprintFunc taking that job type must read each one, or cells
// differing on that axis would share one content address.
const KeyAxisDirective = "//simlint:keyaxis"

var Analyzer = &analysis.Analyzer{
	Name: "keymaterial",
	Doc: "engines with tunables must be covered by store.engineFingerprint, " +
		"fingerprinted structs must format deterministically (no maps, " +
		"pointers, funcs or channels under %+v), and job axes marked " +
		"//simlint:keyaxis must be read by the job Fingerprint function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Fact production: tunable engines defined here, fingerprint cases
	// declared here.
	engines := tunableEngines(pass)
	for _, e := range engines {
		pass.Facts.TunableEngines = append(pass.Facts.TunableEngines, analysis.RefOf(e.named))
	}
	fps := fingerprintFuncs(pass)
	if len(fps) > 0 {
		pass.Facts.FingerprintPkgs = append(pass.Facts.FingerprintPkgs, pass.Pkg.Path())
		for _, fd := range fps {
			for _, ref := range caseTypes(pass, fd) {
				pass.Facts.FingerprintCases = append(pass.Facts.FingerprintCases, ref)
			}
			checkFingerprintBody(pass, fd)
		}
	}
	pass.Facts.JobKeyAxes = append(pass.Facts.JobKeyAxes, keyAxes(pass)...)
	checkJobFingerprints(pass)

	// Config hygiene at the defining package: the earliest point the
	// violation exists, independent of registry wiring.
	for _, e := range engines {
		checkConfigStruct(pass, e)
	}

	// Coverage: union the fact views this package can see.
	visible := &analysis.Facts{}
	visible.Merge(pass.Facts)
	direct := make(map[string]bool)
	for _, imp := range pass.Pkg.Imports() {
		direct[imp.Path()] = true
		if f := pass.Dep(imp.Path()); f != nil {
			visible.Merge(f)
		}
	}
	if len(visible.FingerprintPkgs) == 0 {
		return nil // no fingerprint function in sight; nothing to cover
	}
	for _, ref := range visible.TunableEngines {
		if visible.HasFingerprintCase(ref) {
			continue
		}
		// Report where the engine is proximate: its defining package,
		// or a package directly importing it. Indirect importers stay
		// silent so one violation is one finding, not one per
		// downstream package.
		switch {
		case ref.Pkg == pass.Pkg.Path():
			for _, e := range engines {
				if analysis.RefOf(e.named) == ref {
					pass.Reportf(e.named.Obj().Pos(),
						"engine %s reports tunables via Config() but has no case in %s; its cells would share a cache key across configurations (add a case in internal/store/key.go)",
						ref, FingerprintFunc)
				}
			}
		case direct[ref.Pkg]:
			pass.Reportf(importPos(pass, ref.Pkg),
				"imported engine %s reports tunables via Config() but has no case in %s; its cells would share a cache key across configurations (add a case in internal/store/key.go)",
				ref, FingerprintFunc)
		}
	}
	return nil
}

// tunableEngine is a concrete type that implements an Engine-shaped
// interface and reports a configuration struct.
type tunableEngine struct {
	named  *types.Named
	config *types.Struct // Config() result type
}

// tunableEngines finds the package's tunable engine types: named
// types T where T or *T implements an interface named "Engine" (of at
// least two methods, to dodge trivial same-named interfaces) defined
// in this package or one it imports, with a niladic Config method
// returning a non-empty struct.
func tunableEngines(pass *analysis.Pass) []tunableEngine {
	ifaces := engineInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return nil
	}
	var out []tunableEngine
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if ok && !types.IsInterface(named) {
			if e, ok := asTunableEngine(named, ifaces); ok {
				out = append(out, e)
			}
		}
	}
	return out
}

// engineInterfaces collects interface types named "Engine" visible to
// the package: its own and its direct imports'.
func engineInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	consider := func(p *types.Package) {
		obj := p.Scope().Lookup("Engine")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() >= 2 {
			out = append(out, iface)
		}
	}
	consider(pkg)
	for _, imp := range pkg.Imports() {
		consider(imp)
	}
	return out
}

func asTunableEngine(named *types.Named, ifaces []*types.Interface) (tunableEngine, bool) {
	ptr := types.NewPointer(named)
	implements := false
	for _, iface := range ifaces {
		if types.Implements(named, iface) || types.Implements(ptr, iface) {
			implements = true
			break
		}
	}
	if !implements {
		return tunableEngine{}, false
	}
	ms := types.NewMethodSet(ptr)
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj().(*types.Func)
		if fn.Name() != "Config" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if st, ok := sig.Results().At(0).Type().Underlying().(*types.Struct); ok && st.NumFields() > 0 {
			return tunableEngine{named: named, config: st}, true
		}
	}
	return tunableEngine{}, false
}

// keyAxes collects the package's //simlint:keyaxis-marked accessors:
// methods whose doc carries the directive (the axis type is the
// receiver's), and struct fields whose doc or line comment does (the
// axis type is the enclosing named struct's).
func keyAxes(pass *analysis.Pass) []analysis.AxisRef {
	var out []analysis.AxisRef
	hasDirective := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if c.Text == KeyAxisDirective || strings.HasPrefix(c.Text, KeyAxisDirective+" ") {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) != 1 || !hasDirective(d.Doc) {
					continue
				}
				if n := namedOf(pass.Info.Types[d.Recv.List[0].Type].Type); n != nil {
					out = append(out, analysis.AxisRef{Type: analysis.RefOf(n), Accessor: d.Name.Name})
				}
			case *ast.GenDecl:
				for _, sp := range d.Specs {
					ts, ok := sp.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					named, _ := pass.Info.Defs[ts.Name].Type().(*types.Named)
					if named == nil {
						continue
					}
					for _, field := range st.Fields.List {
						if !hasDirective(field.Doc, field.Comment) {
							continue
						}
						for _, name := range field.Names {
							out = append(out, analysis.AxisRef{Type: analysis.RefOf(named), Accessor: name.Name})
						}
					}
				}
			}
		}
	}
	return out
}

// namedOf unwraps a (possibly pointer) type expression to its named
// type, nil otherwise.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && !types.IsInterface(n) {
		return n
	}
	return nil
}

// checkJobFingerprints enforces job-axis coverage: every function in
// this package named JobFingerprintFunc whose parameter is a job type
// with visible //simlint:keyaxis facts must read each marked accessor
// of that type somewhere in its body.
func checkJobFingerprints(pass *analysis.Pass) {
	visible := &analysis.Facts{}
	visible.Merge(pass.Facts)
	for _, imp := range pass.Pkg.Imports() {
		if f := pass.Dep(imp.Path()); f != nil {
			visible.Merge(f)
		}
	}
	if len(visible.JobKeyAxes) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != JobFingerprintFunc || fd.Body == nil {
				continue
			}
			params := map[analysis.TypeRef]bool{}
			for _, p := range fd.Type.Params.List {
				if n := namedOf(pass.Info.Types[p.Type].Type); n != nil {
					params[analysis.RefOf(n)] = true
				}
			}
			for _, axis := range visible.JobKeyAxes {
				if !params[axis.Type] {
					continue
				}
				if !readsAxis(pass, fd, axis) {
					pass.Reportf(fd.Name.Pos(),
						"%s does not read %s, which is marked cache-key material (%s); cells differing on that axis would share one content address",
						JobFingerprintFunc, axis, KeyAxisDirective)
				}
			}
		}
	}
}

// readsAxis reports whether fd's body selects axis.Accessor on an
// expression of the axis type (directly or through a pointer).
func readsAxis(pass *analysis.Pass, fd *ast.FuncDecl, axis analysis.AxisRef) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != axis.Accessor {
			return true
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok {
			return true
		}
		if named := namedOf(tv.Type); named != nil && analysis.RefOf(named) == axis.Type {
			found = true
			return false
		}
		return true
	})
	return found
}

// fingerprintFuncs returns the package's fingerprint function
// declarations.
func fingerprintFuncs(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == FingerprintFunc && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// caseTypes collects the concrete named types the fingerprint function
// explicitly dispatches on: type-switch cases and type assertions,
// through pointers.
func caseTypes(pass *analysis.Pass, fd *ast.FuncDecl) []analysis.TypeRef {
	var out []analysis.TypeRef
	add := func(e ast.Expr) {
		tv, ok := pass.Info.Types[e]
		if !ok {
			return
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && !types.IsInterface(n) {
			out = append(out, analysis.RefOf(n))
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeAssertExpr:
			if n.Type != nil {
				add(n.Type)
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				add(e)
			}
		}
		return true
	})
	return out
}

// checkFingerprintBody enforces deterministic formatting inside the
// fingerprint function: every argument matched to a %v/%+v/%#v verb of
// a fmt call must be a deterministically-formattable type.
func checkFingerprintBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || !formattingFunc[fn.Name()] {
			return true
		}
		args, format := formatArgs(pass, call)
		if format == "" || len(args) == 0 {
			return true
		}
		verbs := vVerbCount(format)
		// Conservative pairing: if the format uses any %v family verb,
		// vet every variadic argument's type; indexing verbs to args
		// buys little here since fingerprint lines are all-or-nothing
		// key material.
		if verbs == 0 {
			return true
		}
		for _, a := range args {
			tv, ok := pass.Info.Types[a]
			if !ok {
				continue
			}
			if path := nondeterministicPath(tv.Type, nil); path != "" {
				pass.Reportf(a.Pos(),
					"%s formats %s with a %%v-family verb, but %s is not deterministically formattable; key material must be address-free and ordered",
					FingerprintFunc, tv.Type, path)
			}
		}
		return true
	})
}

// checkConfigStruct enforces deterministic formatting of a tunable
// engine's Config struct at its defining package.
func checkConfigStruct(pass *analysis.Pass, e tunableEngine) {
	for i := 0; i < e.config.NumFields(); i++ {
		f := e.config.Field(i)
		if path := nondeterministicPath(f.Type(), nil); path != "" {
			pos := e.named.Obj().Pos()
			if f.Pkg() == pass.Pkg {
				pos = f.Pos()
			}
			pass.Reportf(pos,
				"engine %s: Config field %s (%s) is not deterministically formattable under %%+v; every config field is cache-key material and must be address-free and ordered",
				e.named.Obj().Name(), f.Name(), path)
		}
	}
}

// nondeterministicPath reports the first field path within t whose %+v
// formatting is not deterministic — maps (ordered since Go 1.12, but
// NaN keys and reference identity still leak), pointers (addresses),
// funcs and channels (addresses), interfaces (dynamic values of any of
// those) — or "" if t is clean. seen guards recursion.
func nondeterministicPath(t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if types.Identical(s, t) {
			return ""
		}
	}
	seen = append(seen, t)
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return ""
	case *types.Map:
		return t.String() + " (map)"
	case *types.Signature:
		return t.String() + " (func)"
	case *types.Chan:
		return t.String() + " (chan)"
	case *types.Pointer:
		return t.String() + " (pointer)"
	case *types.Interface:
		return t.String() + " (interface)"
	case *types.Slice:
		if p := nondeterministicPath(u.Elem(), seen); p != "" {
			return p
		}
		return ""
	case *types.Array:
		return nondeterministicPath(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := nondeterministicPath(f.Type(), seen); p != "" {
				return "field " + f.Name() + ": " + p
			}
		}
		return ""
	default:
		return ""
	}
}

// calleeFunc resolves a call's static callee, nil for dynamic calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// formatArgs splits a fmt call into its variadic args and the format
// string literal, "" when the format is not a literal.
func formatArgs(pass *analysis.Pass, call *ast.CallExpr) ([]ast.Expr, string) {
	// Sprintf(format, ...) vs Fprintf(w, format, ...): find the first
	// string-literal argument and treat the rest as operands.
	for i, a := range call.Args {
		lit, ok := a.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return nil, ""
		}
		return call.Args[i+1:], s
	}
	return nil, ""
}

// vVerbCount counts %v-family verbs in a format string.
func vVerbCount(format string) int {
	n := 0
	for i := 0; i < len(format)-1; i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'v' {
			n++
		}
		i = j
	}
	return n
}

// importPos returns the position of the import spec for path, falling
// back to the package clause (should not happen for direct imports).
func importPos(pass *analysis.Pass, path string) token.Pos {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
				return imp.Pos()
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Name.Pos()
	}
	return token.NoPos
}
