// Package determinism guards the repo's byte-identity surface: the
// packages whose rendered output CI compares byte-for-byte across
// runs, hosts and cache states (content-address fingerprints, matrix
// and series tables, noise annotations). Three sources of silent
// nondeterminism are flagged:
//
//   - wall-clock reads (time.Now, time.Since, time.Until): a timestamp
//     folded into a fingerprint or a rendered line makes every replay
//     a miss or a diff;
//   - the global math/rand source (rand.Intn and friends without an
//     explicit seeded *rand.Rand): bootstrap confidence intervals and
//     any sampled output must derive from per-cell seeds, or the same
//     history renders two different tables;
//   - map iteration that writes output from inside the loop: map order
//     is randomized per run, so the bytes differ even when the data do
//     not (collect into a slice and sort instead — sorting after the
//     loop is fine and is what the analyzer's rule deliberately
//     permits);
//   - importing simbench/internal/obs at all: metrics and spans carry
//     timings and counts that differ every run, so the only safe
//     relationship a byte-identity package can have with observability
//     is none — or a provably write-only one, centralized in a single
//     waived file (internal/store/obs.go is the template).
//
// Legitimately time-dependent code inside a scoped package (history
// timestamps, gc age grace, lock staleness) carries an explicit
// waiver: `//simlint:allow determinism -- reason`, enforced to carry a
// reason by the driver.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"simbench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "no wall clocks, unseeded global rand, map-order output, or obs " +
		"imports in the byte-identity packages (fingerprints, renderers, noise model)",
	Run: run,
}

// timeFuncs are the wall-clock reads; time.Parse etc. are pure.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randExempt are the math/rand package-level functions that do not
// touch the global source: constructors for explicitly seeded ones.
var randExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			checkImport(pass, imp)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// obsPath is the observability package: metrics registries and
// tracers. Its values are per-run by construction (timings, counts,
// goroutine interleavings), so a byte-identity package may only import
// it behind a waiver that argues the usage is write-only — nothing
// read back into keys, blobs, or rendered bytes.
const obsPath = "simbench/internal/obs"

// checkImport flags any import of the obs package. The report anchors
// on the ImportSpec so a waiver on the import line (or the line above
// it, inside the import block) covers it — which keeps the sanctioned
// shape honest: one waived import in one file that centralizes every
// obs reference, not a silent package-wide exemption.
func checkImport(pass *analysis.Pass, imp *ast.ImportSpec) {
	path, err := strconv.Unquote(imp.Path.Value)
	if err != nil || path != obsPath {
		return
	}
	pass.Reportf(imp.Pos(),
		"import of %s in a byte-identity package: metrics and spans are per-run values, so observability must stay out of packages whose output CI compares byte-for-byte (centralize write-only usage in one file and waive with //simlint:allow determinism -- reason)",
		obsPath)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on an explicit *rand.Rand
	// or a caller-supplied clock value are exactly the sanctioned
	// alternatives.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s in a byte-identity package: rendered bytes and key material must not depend on the wall clock (inject a clock, or waive with //simlint:allow determinism -- reason)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randExempt[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s uses the process-global rand source: derive a seeded rand.New(rand.NewSource(...)) so replays are byte-identical",
				fn.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body writes output
// directly — fmt printing or io.Writer-style Write methods. Iteration
// that merely collects (then sorts) is allowed.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var bad ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if emitsOutput(pass, call) {
			bad = call
			return false
		}
		return true
	})
	if bad != nil {
		pass.Reportf(rng.Pos(),
			"map iteration writes output inside the loop; map order is randomized per process, so the bytes differ run to run — collect keys, sort, then emit")
	}
}

// emitsOutput reports whether the call writes user-visible bytes: a
// fmt print function or a Write/WriteString/WriteByte/WriteRune
// method.
func emitsOutput(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Print" || fn.Name() == "Println" || fn.Name() == "Printf" ||
				fn.Name() == "Fprint" || fn.Name() == "Fprintln" || fn.Name() == "Fprintf")
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}
