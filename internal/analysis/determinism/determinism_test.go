package determinism_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "detbad", "detclean")
}
