package determinism_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "detbad", "detclean")
}

// TestObsImportBan exercises the fourth rule separately: obsbad holds
// the seeded bare import, obsclean the sanctioned centralized-and-
// waived shape (mirroring internal/store/obs.go). Both resolve their
// obs import against the fixture stub under testdata/src/simbench.
func TestObsImportBan(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "obsbad", "obsclean")
}
