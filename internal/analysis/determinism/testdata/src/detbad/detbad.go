// Seeded determinism violations: wall-clock reads, the global rand
// source, and map-order output.
package detbad

import (
	"fmt"
	"math/rand"
	"time"
)

func Stamp() string {
	return time.Now().String() // want "time.Now"
}

func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since"
}

func Pick(n int) int {
	return rand.Intn(n) // want "process-global rand source"
}

func Render(m map[string]int) {
	for k, v := range m { // want "map iteration writes output"
		fmt.Printf("%s=%d\n", k, v)
	}
}
