// Compliant twin of obsbad: the sanctioned shape for observability
// inside a byte-identity package. One file owns the single waived obs
// import — the waiver rides the line above the import, inside the
// import block, exactly as internal/store/obs.go carries it — and the
// justification argues the write-only contract the waiver exists to
// document. Everything else in the package calls helpers from here and
// never sees an obs type.
package obsclean

import (
	//simlint:allow determinism -- fixture: write-only observability, values flow out of this package and never back into rendered bytes
	"simbench/internal/obs"
)

var hits = obs.NewCounter()

// NoteHit is the helper the rest of the package calls; obs stays
// confined to this file.
func NoteHit() { hits.Inc() }
