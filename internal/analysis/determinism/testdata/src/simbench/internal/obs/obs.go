// Package obs is a fixture stub standing in for the real
// simbench/internal/obs so the import-ban fixtures typecheck: the
// analyzer matches the import path alone, so the stub needs only
// enough surface for the fixtures to use plausibly.
package obs

// Counter is a write-only count, as in the real package.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// NewCounter returns a fresh counter.
func NewCounter() *Counter { return &Counter{} }
