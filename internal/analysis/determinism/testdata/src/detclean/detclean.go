// Compliant twin of detbad, plus the waiver machinery: the sanctioned
// alternatives (seeded rand, collect-sort-emit, pure time functions)
// are silent, a well-formed waiver silences a real finding, and
// malformed waivers are themselves findings.
package detclean

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Seeded rand is the sanctioned source: same seed, same bytes.
func Seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Collecting inside the map loop and emitting after the sort is the
// pattern the map-order rule deliberately permits.
func RenderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// time.Parse is pure; only the wall-clock reads are flagged.
func Parse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}

// A waiver on the preceding line silences the finding on the next.
//
//simlint:allow determinism -- fixture: this timestamp is operational metadata, never rendered
func Waived() int64 { return time.Now().Unix() }

// A waiver at the end of the offending line works too.
var Started = time.Now() //simlint:allow determinism -- fixture: module init time is not key material

// A waiver without a reason cannot silence anything — it is a finding.
//
//simlint:allow determinism want "has no reason"
var _ = 0

// Neither can one naming an analyzer that does not exist.
//
//simlint:allow clockwise -- sounds plausible. want "unknown analyzer"
var _ = 1
