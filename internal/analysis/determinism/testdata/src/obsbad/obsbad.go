// Seeded violation of the obs import ban: a byte-identity package
// reaching for metrics directly, no waiver, no centralization. The
// usage below is even "harmless" (a bare counter bump) — the ban is on
// the import itself, because once the package can see obs nothing
// stops a later edit from folding a timing into a rendered byte.
package obsbad

import (
	"simbench/internal/obs" // want "import of simbench/internal/obs in a byte-identity package"
)

var lookups = obs.NewCounter()

// Hit bumps a per-run counter from inside the byte-identity surface.
func Hit() { lookups.Inc() }
