package analysis

import "strings"

// Entry is one analyzer of the simlint suite together with its scope:
// the package paths it applies to. An empty scope means every analyzed
// package — the invariant is global (nobody may write history.jsonl
// raw, no engine may dodge the fingerprint). A non-empty scope pins an
// analyzer to the packages whose behaviour CI asserts byte-for-byte or
// cancellation-for-cancellation; applying it wider would drown real
// findings in legitimate uses (measuring wall time is the product).
type Entry struct {
	Analyzer *Analyzer
	// Scope lists package import paths the analyzer runs on; empty
	// means all. A path covers exactly that package, not its subtree.
	Scope []string
}

// InScope reports whether the analyzer applies to a package path.
func (e Entry) InScope(pkgPath string) bool {
	if len(e.Scope) == 0 {
		return true
	}
	// Vet IDs can carry a test-variant suffix ("p [p.test]"); match on
	// the bare path.
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, p := range e.Scope {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// DeterministicScope is the repo's byte-identity surface: the packages
// whose output CI compares byte-for-byte across runs, hosts and cache
// states (content-address fingerprints, rendered tables, noise
// annotations). time.Now, the global rand source, and map-order output
// in these packages break cached-replay identity.
var DeterministicScope = []string{
	"simbench/internal/store",
	"simbench/internal/report",
	"simbench/internal/experiment",
	"simbench/internal/stats",
	"simbench/internal/figures",
}

// CtxScope is the dispatch surface: the packages that fan work out to
// goroutines and channels on the measurement path, where a ctx-blind
// blocking send turns Ctrl-C into a hang.
var CtxScope = []string{
	"simbench/internal/sched",
	"simbench/internal/store",
	"simbench/internal/experiment",
}
