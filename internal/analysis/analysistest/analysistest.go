// Package analysistest runs one analyzer over source fixtures and
// checks its diagnostics against `// want "regex"` comments, in the
// shape of golang.org/x/tools/go/analysis/analysistest (reimplemented
// on the standard library for the same reason the framework is — the
// module builds offline with zero dependencies).
//
// Fixtures live under the calling test's testdata/src/<pkg>/. Run
// analyzes the named fixture packages in order, so a package listed
// after another sees its facts — list dependencies first to exercise
// cross-package fact flow. Fixture imports resolve against sibling
// fixtures by path, then the standard library (typechecked from GOROOT
// source, which needs no compiled export data).
//
// Each diagnostic must be matched by a want comment on its line, and
// every want comment must be matched by a diagnostic; either leftover
// fails the test. Waiver directives (//simlint:allow) are live in
// fixtures too — they run through the same driver — so fixtures can
// assert both that a waiver silences a finding and that a malformed
// waiver is itself reported.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"simbench/internal/analysis"
	"simbench/internal/analysis/driver"
)

// Run analyzes each fixture package under testdata/src in order and
// reports mismatches between diagnostics and want comments as test
// errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(filepath.Join(wd, "testdata", "src"))
	suite := []analysis.Entry{{Analyzer: a}}
	facts := map[string]*analysis.Facts{}
	for _, path := range pkgs {
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkg := &driver.Package{
			Path:     path,
			Fset:     l.fset,
			Files:    lp.files,
			Types:    lp.types,
			Info:     lp.info,
			DepFacts: func(p string) *analysis.Facts { return facts[p] },
		}
		findings, f, err := driver.Analyze(pkg, suite)
		if err != nil {
			t.Fatalf("analyzing fixture %s: %v", path, err)
		}
		facts[path] = f
		checkWants(t, l.fset, path, lp.files, findings)
	}
}

// checkWants matches findings against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, findings []driver.Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				tail := ""
				if strings.HasPrefix(text, "want ") {
					tail = text[len("want "):]
				} else if i := strings.Index(text, `want "`); i >= 0 {
					// A want embedded later in the comment: this is how a
					// fixture asserts a diagnostic *about a directive
					// comment itself* (e.g. a malformed waiver), where the
					// directive necessarily owns the start of the comment.
					tail = text[i+len("want "):]
				} else {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range wantPatterns(tail) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pkg, f.Pos, f.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("%s: %s", pkg, l)
	}
}

// wantPatterns extracts the double-quoted regexps from a want comment
// tail: `"a" "b"` -> [a, b]. Escapes inside the quotes are kept
// verbatim for the regexp compiler.
func wantPatterns(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := -1
		for k := 0; k < len(s); k++ {
			if s[k] == '\\' {
				k++
				continue
			}
			if s[k] == '"' {
				j = k
				break
			}
		}
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}

// loaded is one typechecked fixture package.
type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*loaded
	errs   map[string]error
}

func newLoader(srcdir string) *loader {
	l := &loader{srcdir: srcdir, fset: token.NewFileSet(), pkgs: map[string]*loaded{}, errs: map[string]error{}}
	// The source importer typechecks stdlib dependencies from GOROOT
	// source; unlike the gc importer it needs no precompiled export
	// data, which offline test environments may not have.
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// load parses and typechecks testdata/src/<path>, caching results so a
// fixture imported by several others typechecks once and all importers
// share one *types.Package identity.
func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	lp, err := l.loadUncached(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = lp
	return lp, nil
}

func (l *loader) loadUncached(path string) (*loaded, error) {
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	return &loaded{files: files, types: tpkg, info: info}, nil
}

// Import resolves fixture-sibling imports from testdata/src, then
// falls back to the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return l.std.Import(path)
}
