package driver

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"testing"

	"simbench/internal/analysis"
	"simbench/internal/analysis/simlint"
)

// TestJobAxisFactFlowsToStore proves the core-count axis is cache-key
// covered in the real repo, not just in fixtures: analyzing the actual
// dependency closure of internal/store must (1) record the
// //simlint:keyaxis fact for sched.Job.EffectiveCores at its defining
// package, (2) propagate it into store's visible facts — which is what
// arms the coverage check there — and (3) report nothing in store,
// because its Fingerprint reads the axis. Deleting the
// j.EffectiveCores() read from store.Fingerprint flips (3) into a
// finding (the keymaterial jobfpbad fixture pins the message).
func TestJobAxisFactFlowsToStore(t *testing.T) {
	const (
		schedPath = "simbench/internal/sched"
		storePath = "simbench/internal/store"
	)
	closure, err := goList([]string{storePath}, true)
	if err != nil {
		t.Skipf("go list unavailable: %v", err)
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range closure {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if exports[path] == "" {
			return nil, os.ErrNotExist
		}
		return os.Open(exports[path])
	}).(types.ImporterFrom)

	// The full suite, so the store's existing waiver directives resolve
	// (a waiver naming an analyzer absent from the suite is itself a
	// finding).
	suite := simlint.Suite()
	factsByPath := map[string]*analysis.Facts{}
	axis := analysis.AxisRef{
		Type:     analysis.TypeRef{Pkg: schedPath, Name: "Job"},
		Accessor: "EffectiveCores",
	}
	for _, p := range closure {
		if p.Standard || p.Module == nil || p.Incomplete {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", p.ImportPath, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		tconf := types.Config{Importer: standaloneImporter{gc: gc, dir: p.Dir}, Error: func(error) {}}
		tpkg, err := tconf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			t.Fatalf("typechecking %s: %v", p.ImportPath, err)
		}
		findings, facts, err := Analyze(&Package{
			Path:     p.ImportPath,
			Fset:     fset,
			Files:    files,
			Types:    tpkg,
			Info:     info,
			DepFacts: func(path string) *analysis.Facts { return factsByPath[path] },
		}, suite)
		if err != nil {
			t.Fatalf("analyzing %s: %v", p.ImportPath, err)
		}
		factsByPath[p.ImportPath] = facts
		if p.ImportPath == storePath {
			for _, f := range findings {
				t.Errorf("store must be axis-covered, got finding: %s", f)
			}
		}
	}

	hasAxis := func(f *analysis.Facts) bool {
		if f == nil {
			return false
		}
		for _, a := range f.JobKeyAxes {
			if a == axis {
				return true
			}
		}
		return false
	}
	if !hasAxis(factsByPath[schedPath]) {
		t.Errorf("%s must publish the %s key-axis fact (is the //simlint:keyaxis directive still on EffectiveCores?)", schedPath, axis)
	}
	if !hasAxis(factsByPath[storePath]) {
		t.Errorf("the %s fact must propagate into %s's recorded facts; without it the coverage check is disarmed there", axis, storePath)
	}
}
