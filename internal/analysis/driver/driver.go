// Package driver runs the simlint analyzer suite over type-checked
// packages. It owns the policy that analyzers stay out of: which
// analyzers apply to which packages (scopes), which diagnostics are
// waived (`//simlint:allow <analyzer> -- reason` directives), and the
// exclusion of _test.go files. Two loaders feed it: the vettool
// protocol (vettool.go, driven by `go vet -vettool`) and a standalone
// go-list loader (standalone.go, for `simlint ./...` without vet).
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"simbench/internal/analysis"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path, possibly carrying vet's test-variant
	// suffix ("p [p.test]"); scope matching trims it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// DepFacts returns the recorded facts of a package in this one's
	// import closure, nil when none exist. Because every package's
	// recorded facts union its dependencies' (see Analyze), consulting
	// direct imports is enough to see the whole closure.
	DepFacts func(path string) *analysis.Facts
}

// Finding is one post-filter diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyze runs every in-scope suite entry over pkg. It returns the
// surviving findings (test files skipped, waivers applied) and the
// facts to record for pkg: the union of what its analyzers derived and
// everything its direct dependencies recorded, so downstream packages
// inherit transitively.
func Analyze(pkg *Package, suite []analysis.Entry) ([]Finding, *analysis.Facts, error) {
	waivers, waiverFindings := parseWaivers(pkg, suite)

	own := &analysis.Facts{}
	var findings []Finding
	findings = append(findings, waiverFindings...)
	for _, entry := range suite {
		if !entry.InScope(pkg.Path) {
			continue
		}
		a := entry.Analyzer
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    own,
			Dep:      pkg.DepFacts,
			Report: func(d analysis.Diagnostic) {
				if analysis.IsTestFile(pkg.Fset, d.Pos) {
					return
				}
				pos := pkg.Fset.Position(d.Pos)
				if waivers.covers(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}

	recorded := &analysis.Facts{}
	recorded.Merge(own)
	if pkg.Types != nil && pkg.DepFacts != nil {
		for _, imp := range pkg.Types.Imports() {
			recorded.Merge(pkg.DepFacts(imp.Path()))
		}
	}
	return findings, recorded, nil
}

// waiver is one parsed //simlint:allow directive.
type waiver struct {
	analyzer string
	line     int
}

type waiverSet map[string][]waiver // file name -> directives

// covers reports whether a directive for analyzer sits on the
// diagnostic's line or the line above it.
func (w waiverSet) covers(analyzer string, pos token.Position) bool {
	for _, wv := range w[pos.Filename] {
		if wv.analyzer == analyzer && (wv.line == pos.Line || wv.line == pos.Line-1) {
			return true
		}
	}
	return false
}

const waiverPrefix = "//simlint:allow"

// parseWaivers scans every comment for //simlint:allow directives. A
// well-formed directive names a known analyzer and carries a reason
// after " -- "; malformed ones are themselves findings, so a waiver
// can never silently rot (e.g. referencing a renamed analyzer) or
// suppress a check without saying why.
func parseWaivers(pkg *Package, suite []analysis.Entry) (waiverSet, []Finding) {
	known := make(map[string]bool, len(suite))
	for _, e := range suite {
		known[e.Analyzer.Name] = true
	}
	set := waiverSet{}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if analysis.IsTestFile(pkg.Fset, c.Pos()) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				name, reason, ok := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				switch {
				case !ok || strings.TrimSpace(reason) == "":
					findings = append(findings, Finding{Pos: pos, Analyzer: "simlint",
						Message: fmt.Sprintf("waiver for %q has no reason; write //simlint:allow <analyzer> -- <why this use is sound>", name)})
				case !known[name]:
					findings = append(findings, Finding{Pos: pos, Analyzer: "simlint",
						Message: fmt.Sprintf("waiver names unknown analyzer %q", name)})
				default:
					set[pos.Filename] = append(set[pos.Filename], waiver{analyzer: name, line: pos.Line})
				}
			}
		}
	}
	return set, findings
}
