package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"simbench/internal/analysis"
)

// listPackage is the subset of `go list -json` output the standalone
// loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Incomplete bool
}

// RunStandalone analyzes the packages matching patterns without cmd/go
// driving: `go list -export -deps` supplies the dependency closure in
// dependency order plus compiled export data, each in-module package
// is parsed and type-checked from source (so facts flow bottom-up
// exactly as under the vettool protocol), and findings are reported
// for the packages the patterns named. Returns a process exit code: 0
// clean, 1 operational failure, 2 findings.
func RunStandalone(patterns []string, suite []analysis.Entry) int {
	targets, err := goList(patterns, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	wanted := map[string]bool{}
	for _, p := range targets {
		wanted[p.ImportPath] = true
	}
	closure, err := goList(patterns, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range closure {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := exports[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)

	factsByPath := map[string]*analysis.Facts{}
	depFacts := func(path string) *analysis.Facts { return factsByPath[path] }

	exit := 0
	for _, p := range closure {
		// Dependencies outside the module contribute export data only;
		// the suite's invariants are simbench's own.
		if p.Standard || p.Module == nil || p.Incomplete {
			continue
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
				parseFailed = true
				break
			}
			files = append(files, f)
		}
		if parseFailed {
			exit = 1
			continue
		}
		info := newInfo()
		tconf := types.Config{Importer: standaloneImporter{gc: gc, dir: p.Dir}, Error: func(error) {}}
		tpkg, err := tconf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: typechecking %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		pkg := &Package{
			Path:     p.ImportPath,
			Fset:     fset,
			Files:    files,
			Types:    tpkg,
			Info:     info,
			DepFacts: depFacts,
		}
		findings, facts, err := Analyze(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			exit = 1
			continue
		}
		factsByPath[p.ImportPath] = facts
		if !wanted[p.ImportPath] {
			continue
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

type standaloneImporter struct {
	gc  types.ImporterFrom
	dir string
}

func (s standaloneImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return s.gc.ImportFrom(path, s.dir, 0)
}

func goList(patterns []string, deps bool) ([]*listPackage, error) {
	args := []string{"list", "-e", "-export", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, strings.TrimSpace(errBuf.String()))
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
