package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"simbench/internal/analysis"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when invoking a -vettool: the file set to analyze, the
// export data of every dependency (PackageFile, after ImportMap
// canonicalization), and the fact files of direct dependencies
// (PackageVetx). Field names must match cmd/go's encoding exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single package described by the vet.cfg file
// at cfgPath and returns a process exit code: 0 clean, 1 operational
// failure, 2 findings (printed to stderr, the convention cmd/go
// surfaces). The facts file at VetxOutput is written in every
// successful case — cmd/go caches it and feeds it to dependent
// packages' invocations — so even packages with nothing to say must
// produce one.
func RunVetTool(cfgPath string, suite []analysis.Entry) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite guards shipped behaviour; vet's test variants
		// re-present the package with its _test.go files, which are out
		// of scope wholesale.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput, &analysis.Facts{})
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// External test packages (pkg_test) are test files only.
		return writeVetx(cfg.VetxOutput, &analysis.Facts{})
	}

	info := newInfo()
	tconf := types.Config{
		Importer: &vetImporter{cfg: &cfg, fset: fset},
		Error:    func(error) {}, // collect via the returned error; keep going
	}
	if strings.HasPrefix(cfg.GoVersion, "go1") {
		tconf.GoVersion = cfg.GoVersion
	}
	pkgPath := cfg.ImportPath
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i] // "p [p.test]" -> "p"
	}
	tpkg, err := tconf.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, &analysis.Facts{})
		}
		fmt.Fprintf(os.Stderr, "simlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	factCache := map[string]*analysis.Facts{}
	depFacts := func(path string) *analysis.Facts {
		if f, ok := factCache[path]; ok {
			return f
		}
		factCache[path] = nil
		vetxFile := cfg.PackageVetx[path]
		if vetxFile == "" {
			return nil
		}
		data, err := os.ReadFile(vetxFile)
		if err != nil || len(data) == 0 {
			return nil
		}
		var f analysis.Facts
		if json.Unmarshal(data, &f) != nil {
			return nil
		}
		factCache[path] = &f
		return &f
	}

	pkg := &Package{
		Path:     cfg.ImportPath,
		Fset:     fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		DepFacts: depFacts,
	}
	findings, facts, err := Analyze(pkg, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 2
}

func writeVetx(path string, facts *analysis.Facts) int {
	if path == "" {
		return 0
	}
	data, err := json.Marshal(facts)
	if err == nil {
		err = os.WriteFile(path, data, 0o666)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: writing facts: %v\n", err)
		return 1
	}
	return 0
}

// vetImporter resolves imports against the export data cmd/go staged
// for this package: source path -> ImportMap canonical path ->
// PackageFile export file, read by the compiler's gc importer.
type vetImporter struct {
	cfg        *vetConfig
	fset       *token.FileSet
	underlying types.ImporterFrom
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	mapped := v.cfg.ImportMap[path]
	if mapped == "" {
		mapped = path
	}
	if mapped == "unsafe" {
		return types.Unsafe, nil
	}
	if v.underlying == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			file := v.cfg.PackageFile[p]
			if file == "" {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		}
		v.underlying = importer.ForCompiler(v.fset, "gc", lookup).(types.ImporterFrom)
	}
	return v.underlying.ImportFrom(mapped, v.cfg.Dir, 0)
}

// newInfo returns a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
