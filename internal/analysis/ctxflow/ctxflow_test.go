package ctxflow_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "ctxbad", "ctxclean")
}
