// Seeded cancellation violations: dispatch loops whose blocking sends
// cannot be interrupted.
package ctxbad

import "context"

// No context anywhere: cancellation cannot reach this loop at all.
func FeedNoCtx(ch chan int, jobs []int) {
	for _, j := range jobs {
		ch <- j // want "never observes a context"
	}
}

// A context is in hand but the select ignores it — the classic
// almost-right shape.
func FeedSelectNoDone(ctx context.Context, ch chan int, jobs []int) {
	for _, j := range jobs {
		select {
		case ch <- j: // want "without a <-ctx.Done"
		}
	}
}
