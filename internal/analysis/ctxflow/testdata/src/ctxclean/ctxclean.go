// Compliant twin of ctxbad: every shape internal/sched's feeders
// actually use, all silent.
package ctxclean

import "context"

// The canonical feeder: every send races a Done receive.
func FeedSelect(ctx context.Context, ch chan int, jobs []int) {
feed:
	for _, j := range jobs {
		select {
		case ch <- j:
		case <-ctx.Done():
			break feed
		}
	}
}

// An explicit ctx.Err() check in the loop body also counts as
// observing cancellation.
func FeedErrCheck(ctx context.Context, ch chan int, jobs []int) {
	for _, j := range jobs {
		if ctx.Err() != nil {
			return
		}
		ch <- j
	}
}

// A default case makes the send non-blocking by construction.
func FeedNonBlocking(ch chan int, jobs []int) {
	for _, j := range jobs {
		select {
		case ch <- j:
		default:
		}
	}
}

// Sends outside loops are out of scope: nothing accumulates.
func SendOnce(ch chan int) {
	ch <- 1
}
