// Package ctxflow guards cancellation on the dispatch surface: the
// scheduler, store and experiment layers fan cells out over channels,
// and a blocking send inside a loop that never consults the context
// turns Ctrl-C into a hang — the feeder keeps offering work to workers
// that have exited, or wedges forever on a full channel.
//
// The rule: inside a loop, a blocking channel send must either sit in
// a select with a `<-ctx.Done()` case (the ctx-aware primitive), have
// a default case (non-blocking by construction), or share the loop
// with an explicit ctx.Err()/ctx.Done() check. Sends outside loops,
// receives, and loops that merely compute are out of scope — the
// analyzer targets the dispatch shape specifically, which is how
// internal/sched's feeders are all written.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"simbench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "dispatch loops with blocking channel sends must observe ctx.Done() " +
		"or use a ctx-aware select, so cancellation actually cancels",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			checkLoop(pass, body)
			return true
		})
	}
	return nil
}

// checkLoop inspects one loop body for unguarded blocking sends. The
// walk does not descend into nested function literals or nested loops:
// a goroutine launched per iteration has its own control flow (and its
// own loops get their own visit), and an inner loop's sends are judged
// against the inner loop's own guards.
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt) {
	observes := loopObservesCtx(pass, body)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SelectStmt:
			checkSelect(pass, n, observes)
			return false // comm clauses judged as part of the select
		case *ast.SendStmt:
			if !observes {
				pass.Reportf(n.Pos(),
					"blocking send in a dispatch loop that never observes a context; on cancellation this loop cannot exit — select on the send with a <-ctx.Done() case")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkSelect judges sends inside one select statement: fine with a
// default case (non-blocking) or a ctx.Done receive case; otherwise
// each send is reported unless the surrounding loop observes ctx.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt, loopObserves bool) {
	hasDefault, hasDone := false, false
	var sends []*ast.SendStmt
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			hasDefault = true
			continue
		}
		switch c := comm.Comm.(type) {
		case *ast.SendStmt:
			sends = append(sends, c)
		case *ast.ExprStmt:
			if recvObservesCtx(pass, c.X) {
				hasDone = true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if recvObservesCtx(pass, rhs) {
					hasDone = true
				}
			}
		}
	}
	if hasDefault || hasDone || loopObserves {
		return
	}
	for _, s := range sends {
		pass.Reportf(s.Pos(),
			"blocking send in a select without a <-ctx.Done() case inside a dispatch loop; cancellation cannot interrupt it — add a ctx case or a default")
	}
}

// loopObservesCtx reports whether the loop body itself consults a
// context: a ctx.Err() call or a <-ctx.Done() receive anywhere in the
// body (including inside its selects, excluding nested funcs/loops
// which guard only themselves).
func loopObservesCtx(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if isCtxMethod(pass, n, "Err") {
				found = true
			}
		case *ast.UnaryExpr:
			if recvObservesCtx(pass, n) {
				found = true
			}
		}
		return true
	})
	return found
}

// recvObservesCtx reports whether expr is a receive from a context's
// Done channel: <-ctx.Done().
func recvObservesCtx(pass *analysis.Pass, expr ast.Expr) bool {
	u, ok := expr.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	call, ok := u.X.(*ast.CallExpr)
	return ok && isCtxMethod(pass, call, "Done")
}

// isCtxMethod reports whether call is method name on a
// context.Context-typed receiver.
func isCtxMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isContextType(tv.Type)
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
