// Package analysis is a small, dependency-free analysis framework in
// the shape of golang.org/x/tools/go/analysis: an Analyzer inspects
// one type-checked package and reports diagnostics, and may publish
// Facts about the package that analyzers of downstream packages
// consume. The repo's invariants — cache-key soundness, byte-identical
// rendering, cancellable dispatch, serialized history appends — are
// encoded as analyzers under this package and run by cmd/simlint.
//
// Why not golang.org/x/tools itself: simbench builds in offline,
// zero-dependency environments (the module deliberately has no
// requirements), so the framework is reimplemented on the standard
// library's go/ast, go/types and go/importer. The surface mirrors
// x/tools closely enough that migrating the analyzers onto the real
// framework — and bundling its standard analyzers (nilness, copylocks,
// unusedwrite, loopclosure) into the same multichecker — is a
// mechanical change once the dependency is permissible; until then CI
// pairs `go vet ./...` (the toolchain's own standard suite) with
// `go vet -vettool=simlint ./...` (this suite).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects the Pass's package and
// reports findings through Pass.Report; it may also record Facts for
// downstream packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, waiver directives
	// (`//simlint:allow <name> -- reason`) and flags. Lower-case, no
	// spaces.
	Name string
	// Doc is the one-paragraph description printed by `simlint -help`:
	// what invariant the analyzer guards and why it matters.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position in the analyzed package and a
// message stating the violated invariant.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, comments included.
	// Test files (_test.go) are excluded by every driver: the suite
	// guards shipped behaviour.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts receives the facts this analyzer derives from the package;
	// the driver unions them with dependency facts and publishes the
	// result to downstream passes.
	Facts *Facts
	// Dep returns the transitive facts of a package this one imports
	// (directly or indirectly), nil when none were recorded. Drivers
	// guarantee dependency passes ran first.
	Dep func(path string) *Facts

	// Report records one diagnostic. Waiver directives are applied by
	// the driver, not here.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeRef names a type across package boundaries — the serializable
// identity facts use instead of *types.Named, which cannot cross a
// process boundary (the vettool protocol runs one process per
// package).
type TypeRef struct {
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
}

func (r TypeRef) String() string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// RefOf returns the TypeRef of a named type.
func RefOf(n *types.Named) TypeRef {
	obj := n.Obj()
	ref := TypeRef{Name: obj.Name()}
	if obj.Pkg() != nil {
		ref.Pkg = obj.Pkg().Path()
	}
	return ref
}

// AxisRef names one cache-key axis of a job type across package
// boundaries: the named type carrying the axis and the accessor (field
// or method name) whose value is key material.
type AxisRef struct {
	Type     TypeRef `json:"type"`
	Accessor string  `json:"accessor"`
}

func (a AxisRef) String() string { return a.Type.String() + "." + a.Accessor }

// Facts is everything one package publishes to downstream analysis
// passes. It is one flat JSON-serializable struct rather than x/tools'
// typed fact streams because the suite's analyzers need so little:
// which types are tunable engines, and which types the store's
// fingerprint function explicitly covers. A package's recorded facts
// are the union of its own and all its dependencies' (so a consumer
// only needs its direct imports' files under the vettool protocol).
type Facts struct {
	// TunableEngines are concrete engine types whose instances report a
	// configuration struct — the types that must be explicitly covered
	// by the store's fingerprint function, or fleet cache keys would
	// silently ignore their tunables.
	TunableEngines []TypeRef `json:"tunable_engines,omitempty"`
	// FingerprintCases are the concrete types the fingerprint function
	// explicitly switches on.
	FingerprintCases []TypeRef `json:"fingerprint_cases,omitempty"`
	// FingerprintPkgs are the packages that define a fingerprint
	// function; their presence in a dependency closure is what arms the
	// keymaterial coverage check.
	FingerprintPkgs []string `json:"fingerprint_pkgs,omitempty"`
	// JobKeyAxes are the job accessors marked //simlint:keyaxis at
	// their defining package — the axes every visible job fingerprint
	// function must read, or cells differing on that axis would share
	// one content address.
	JobKeyAxes []AxisRef `json:"job_key_axes,omitempty"`
}

// Empty reports whether no facts were recorded.
func (f *Facts) Empty() bool {
	return f == nil || len(f.TunableEngines) == 0 && len(f.FingerprintCases) == 0 &&
		len(f.FingerprintPkgs) == 0 && len(f.JobKeyAxes) == 0
}

// Merge unions other into f, deduplicating. Drivers use it to build
// each package's transitive fact view.
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	f.TunableEngines = mergeRefs(f.TunableEngines, other.TunableEngines)
	f.FingerprintCases = mergeRefs(f.FingerprintCases, other.FingerprintCases)
	f.FingerprintPkgs = mergeStrings(f.FingerprintPkgs, other.FingerprintPkgs)
	f.JobKeyAxes = mergeAxes(f.JobKeyAxes, other.JobKeyAxes)
}

func mergeAxes(dst, src []AxisRef) []AxisRef {
	seen := make(map[AxisRef]bool, len(dst))
	for _, a := range dst {
		seen[a] = true
	}
	for _, a := range src {
		if !seen[a] {
			seen[a] = true
			dst = append(dst, a)
		}
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].Type != dst[j].Type {
			if dst[i].Type.Pkg != dst[j].Type.Pkg {
				return dst[i].Type.Pkg < dst[j].Type.Pkg
			}
			return dst[i].Type.Name < dst[j].Type.Name
		}
		return dst[i].Accessor < dst[j].Accessor
	})
	return dst
}

func mergeRefs(dst, src []TypeRef) []TypeRef {
	seen := make(map[TypeRef]bool, len(dst))
	for _, r := range dst {
		seen[r] = true
	}
	for _, r := range src {
		if !seen[r] {
			seen[r] = true
			dst = append(dst, r)
		}
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].Pkg != dst[j].Pkg {
			return dst[i].Pkg < dst[j].Pkg
		}
		return dst[i].Name < dst[j].Name
	})
	return dst
}

func mergeStrings(dst, src []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, s := range dst {
		seen[s] = true
	}
	for _, s := range src {
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	sort.Strings(dst)
	return dst
}

// HasFingerprintCase reports whether ref is covered by a fingerprint
// case.
func (f *Facts) HasFingerprintCase(ref TypeRef) bool {
	for _, c := range f.FingerprintCases {
		if c == ref {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the position's file is a _test.go file.
// The suite analyzes shipped behaviour; tests may freely use wall
// clocks, unsorted maps and raw files.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
