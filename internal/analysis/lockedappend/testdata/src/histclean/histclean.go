// Compliant twin of histbad: the sanctioned writer itself, readers,
// callers of the sanctioned writer, and writes to other files — all
// silent.
package histclean

import (
	"os"
	"path/filepath"
)

// LockedAppend is the one function allowed to open the history for
// writing; the exemption is by name, matching the real store's.
func LockedAppend(dir string, line []byte) error {
	f, err := os.OpenFile(filepath.Join(dir, "history.jsonl"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Reading the history is unrestricted.
func Read(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, "history.jsonl"))
}

// Calling the sanctioned writer with a history path is the point.
func Append(dir string, line []byte) error {
	return LockedAppend(dir, line)
}

// Writes to non-history files are unrestricted.
func WriteOther(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "results.json"), data, 0o644)
}
