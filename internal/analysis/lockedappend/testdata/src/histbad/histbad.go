// Seeded history-durability violations: raw writes to history.jsonl
// paths, through each sink and each taint route (literal, named
// constant, Join, local variable).
package histbad

import (
	"os"
	"path/filepath"
)

const historyFile = "history.jsonl"

func RawAppend(dir string, line []byte) error {
	path := filepath.Join(dir, historyFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644) // want "outside store.LockedAppend"
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func Clobber(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "history.jsonl"), data, 0o644) // want "outside store.LockedAppend"
}

func Swap(dir, tmp string) error {
	return os.Rename(tmp, filepath.Join(dir, historyFile)) // want "outside store.LockedAppend"
}

func Publish(data []byte) error {
	p := filepath.Join("cache", historyFile)
	return AtomicWrite(p, data) // want "outside store.LockedAppend"
}

func AtomicWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
