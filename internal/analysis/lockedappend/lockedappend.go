// Package lockedappend guards history durability: history.jsonl is a
// multi-process append-only log, and POSIX only guarantees atomic
// appends under an exclusive lock — which store.LockedAppend takes.
// Any other write to a history.jsonl path (os.OpenFile, os.WriteFile,
// os.Rename over it, AtomicWrite of the whole file) can interleave
// with a concurrent appender and tear or drop lines, which the run
// history's corruption-tolerant reader would then silently skip.
//
// The analyzer taints string values that mention "history.jsonl" —
// literals, constants (store's historyFileName), filepath.Join results
// and single-assignment locals holding them — and reports any tainted
// path reaching a write-capable file operation outside a function
// named LockedAppend. Reads (os.Open, os.ReadFile) are unrestricted.
package lockedappend

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"simbench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockedappend",
	Doc: "history.jsonl may only be written through store.LockedAppend; raw " +
		"file writes to it race concurrent appenders and tear the log",
	Run: run,
}

const historyName = "history.jsonl"

// sinkArg maps write-capable os functions to the index of their path
// argument. os.Rename's destination is index 1: renaming a temp file
// over history.jsonl replaces the log wholesale, losing concurrent
// appends.
var sinkArg = map[string]int{
	"OpenFile":  0,
	"Create":    0,
	"WriteFile": 0,
	"Rename":    1,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// LockedAppend is the sanctioned writer; its own OpenFile is
			// the whole point.
			if fn.Name.Name == "LockedAppend" {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc taints history.jsonl path values within one function body
// and reports tainted paths reaching write sinks. Taint is a fixpoint
// over local assignments so declaration order does not matter.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := map[*types.Var]bool{}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if v := localVar(pass, lhs); v != nil && !tainted[v] && taintedExpr(pass, tainted, n.Rhs[i]) {
							tainted[v] = true
							grew = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if v := localVar(pass, name); v != nil && !tainted[v] && taintedExpr(pass, tainted, n.Values[i]) {
							tainted[v] = true
							grew = true
						}
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		argIdx, isSink := sinkOf(pass, call)
		if !isSink || argIdx >= len(call.Args) {
			return true
		}
		if taintedExpr(pass, tainted, call.Args[argIdx]) {
			pass.Reportf(call.Pos(),
				"write to a history.jsonl path outside store.LockedAppend; unlocked writes race concurrent appenders and tear the log — route the write through LockedAppend")
		}
		return true
	})
}

// sinkOf reports whether call is a write-capable file operation and
// which argument is the path: the os functions in sinkArg, or any
// function named AtomicWrite (whole-file replacement of the log is as
// destructive as a raw write, whichever package defines it).
func sinkOf(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "AtomicWrite" {
			return 0, true
		}
		return 0, false
	}
	if sel.Sel.Name == "AtomicWrite" {
		return 0, true
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return 0, false
	}
	idx, ok := sinkArg[fn.Name()]
	return idx, ok
}

// taintedExpr reports whether expr evaluates to a history.jsonl path:
// a constant string mentioning it (literal or named constant), a
// filepath.Join/path.Join over a tainted component, or a local
// variable already marked tainted.
func taintedExpr(pass *analysis.Pass, tainted map[*types.Var]bool, expr ast.Expr) bool {
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		if strings.Contains(constant.StringVal(tv.Value), historyName) {
			return true
		}
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if v := localVar(pass, e); v != nil {
			return tainted[v]
		}
	case *ast.ParenExpr:
		return taintedExpr(pass, tainted, e.X)
	case *ast.BinaryExpr:
		return taintedExpr(pass, tainted, e.X) || taintedExpr(pass, tainted, e.Y)
	case *ast.CallExpr:
		if isPathJoin(pass, e) {
			for _, arg := range e.Args {
				if taintedExpr(pass, tainted, arg) {
					return true
				}
			}
		}
	}
	return false
}

func isPathJoin(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Join" || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "path/filepath" || p == "path"
}

// localVar resolves expr to the *types.Var it names, nil when expr is
// not a plain identifier for a variable (fields and indexes are not
// tracked — the repo's history paths are all simple locals).
func localVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := pass.Info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}
