package lockedappend_test

import (
	"testing"

	"simbench/internal/analysis/analysistest"
	"simbench/internal/analysis/lockedappend"
)

func TestLockedAppend(t *testing.T) {
	analysistest.Run(t, lockedappend.Analyzer, "histbad", "histclean")
}
