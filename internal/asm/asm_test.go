package asm

import (
	"testing"

	"simbench/internal/isa"
)

func mustAssemble(t *testing.T, a *Assembler) *Program {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func word(p *Program, addr uint32) uint32 {
	for _, s := range p.Segments {
		if addr >= s.Addr && addr+4 <= s.Addr+uint32(len(s.Data)) {
			return leRead(s.Data, addr-s.Addr)
		}
	}
	return 0xDEADBEEF
}

func TestForwardAndBackwardBranch(t *testing.T) {
	a := New()
	a.Label("back")
	a.NOP()                // 0x0
	a.B(isa.CondAL, "fwd") // 0x4
	a.NOP()                // 0x8
	a.Label("fwd")
	a.B(isa.CondNE, "back") // 0xC
	p := mustAssemble(t, a)

	fwd := isa.Decode(word(p, 4))
	if fwd.Op != isa.OpB || fwd.Off != 4 { // 0xC - (0x4+4)
		t.Errorf("forward branch decoded to %+v", fwd)
	}
	back := isa.Decode(word(p, 0xC))
	if back.Off != -16 { // 0x0 - (0xC+4)
		t.Errorf("backward branch offset = %d, want -16", back.Off)
	}
}

func TestOrgPlacesSections(t *testing.T) {
	a := New()
	a.NOP()
	a.Org(0x2000)
	a.Label("hi")
	a.MOVI(isa.R1, 7)
	p := mustAssemble(t, a)
	if got := p.Symbol("hi"); got != 0x2000 {
		t.Fatalf("hi = %#x, want 0x2000", got)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("want 2 segments, got %d", len(p.Segments))
	}
	i := isa.Decode(word(p, 0x2000))
	if i.Op != isa.OpMOVI || i.Rd != isa.R1 || i.Imm != 7 {
		t.Errorf("movi decoded to %+v", i)
	}
}

func TestLAResolvesAddress(t *testing.T) {
	a := New()
	a.LA(isa.R2, "data")
	a.HALT()
	a.Org(0x12345678 & 0xFFFFFF00) // within 32 bits, aligned
	a.Label("data")
	a.Word(42)
	p := mustAssemble(t, a)
	lo := isa.Decode(word(p, 0))
	hi := isa.Decode(word(p, 4))
	addr := p.Symbol("data")
	if uint32(lo.Imm) != addr&0xFFFF {
		t.Errorf("LA low half = %#x, want %#x", lo.Imm, addr&0xFFFF)
	}
	if uint32(hi.Imm) != addr>>16 {
		t.Errorf("LA high half = %#x, want %#x", hi.Imm, addr>>16)
	}
}

func TestWordAddr(t *testing.T) {
	a := New()
	a.Label("_start")
	a.WordAddr("tbl")
	a.Org(0x4000)
	a.Label("tbl")
	a.Word(1)
	p := mustAssemble(t, a)
	if got := word(p, 0); got != 0x4000 {
		t.Errorf("word reloc = %#x, want 0x4000", got)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %#x, want 0 (start label)", p.Entry)
	}
}

func TestUndefinedLabel(t *testing.T) {
	a := New()
	a.B(isa.CondAL, "nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected undefined label error")
	}
}

func TestDuplicateLabel(t *testing.T) {
	a := New()
	a.Label("x")
	a.NOP()
	a.Label("x")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected duplicate label error")
	}
}

func TestOverlapDetected(t *testing.T) {
	a := New()
	a.NOP()
	a.NOP()
	a.Org(0x4)
	a.NOP()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestImmediateRangeChecked(t *testing.T) {
	a := New()
	a.ADDI(isa.R1, isa.R1, 40000) // out of signed 16-bit range
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected immediate range error")
	}
	a = New()
	a.ANDI(isa.R1, isa.R1, -1) // out of unsigned range
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected unsigned immediate error")
	}
}

func TestAlign(t *testing.T) {
	a := New()
	a.NOP()
	a.Align(16)
	a.Label("aligned")
	a.NOP()
	p := mustAssemble(t, a)
	if got := p.Symbol("aligned"); got != 16 {
		t.Errorf("aligned at %#x, want 0x10", got)
	}
}

func TestLoadImm32(t *testing.T) {
	a := New()
	a.LoadImm32(isa.R3, 0xCAFE0001)
	a.LoadImm32(isa.R4, 0x7FFF) // single-instruction case
	p := mustAssemble(t, a)
	i0 := isa.Decode(word(p, 0))
	i1 := isa.Decode(word(p, 4))
	if i0.Op != isa.OpMOVI || uint32(i0.Imm) != 1 {
		t.Errorf("movi low: %+v", i0)
	}
	if i1.Op != isa.OpMOVT || uint32(i1.Imm) != 0xCAFE {
		t.Errorf("movt high: %+v", i1)
	}
	i2 := isa.Decode(word(p, 8))
	if i2.Op != isa.OpMOVI || i2.Imm != 0x7FFF {
		t.Errorf("single movi: %+v", i2)
	}
	// 0x7FFF fits: next word must not be a MOVT for R4
	if len(p.Segments[0].Data) != 12 {
		t.Errorf("expected 3 instructions, got %d bytes", len(p.Segments[0].Data))
	}
}

func TestEntryDefaultsToLowestSegment(t *testing.T) {
	a := New()
	a.Org(0x8000)
	a.NOP()
	p := mustAssemble(t, a)
	if p.Entry != 0x8000 {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestBytesPadsToWord(t *testing.T) {
	a := New()
	a.Bytes([]byte{1, 2, 3})
	a.Label("after")
	p := mustAssemble(t, a)
	if p.Symbol("after") != 4 {
		t.Errorf("after = %#x, want 4", p.Symbol("after"))
	}
}

func TestBranchOutOfRange(t *testing.T) {
	a := New()
	a.B(isa.CondAL, "far")
	a.Org(0x1000000) // 16 MB away, beyond ±8 MB
	a.Label("far")
	a.NOP()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("expected out-of-range branch error")
	}
}
