package asm

import (
	"math/rand"
	"testing"

	"simbench/internal/isa"
)

// TestEmitDecodeAgree cross-checks the assembler against the decoder:
// every mnemonic emitted through the builder must decode back to the
// instruction it names, for randomized operands.
func TestEmitDecodeAgree(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
	simm := func() int32 { return int32(r.Intn(65536) - 32768) }
	uimm := func() int32 { return int32(r.Intn(65536)) }

	type want struct {
		op isa.Op
		ck func(i isa.Inst) bool
	}
	for trial := 0; trial < 300; trial++ {
		a := New()
		var wants []want
		emit := func(op isa.Op, ck func(i isa.Inst) bool) {
			wants = append(wants, want{op, ck})
		}

		for n := 0; n < 20; n++ {
			switch r.Intn(12) {
			case 0:
				rd, ra, rb := reg(), reg(), reg()
				a.ADD(rd, ra, rb)
				emit(isa.OpADD, func(i isa.Inst) bool { return i.Rd == rd && i.Ra == ra && i.Rb == rb })
			case 1:
				rd, ra := reg(), reg()
				v := simm()
				a.ADDI(rd, ra, v)
				emit(isa.OpADDI, func(i isa.Inst) bool { return i.Rd == rd && i.Ra == ra && i.Imm == v })
			case 2:
				rd := reg()
				v := uimm()
				a.MOVI(rd, v)
				emit(isa.OpMOVI, func(i isa.Inst) bool { return i.Rd == rd && i.Imm == v })
			case 3:
				rd, ra := reg(), reg()
				v := simm()
				a.LDW(rd, ra, v)
				emit(isa.OpLDW, func(i isa.Inst) bool { return i.Rd == rd && i.Ra == ra && i.Imm == v })
			case 4:
				rd, ra := reg(), reg()
				v := simm()
				a.STB(rd, ra, v)
				emit(isa.OpSTB, func(i isa.Inst) bool { return i.Rd == rd && i.Ra == ra && i.Imm == v })
			case 5:
				ra := reg()
				a.CMPI(ra, 100)
				emit(isa.OpCMPI, func(i isa.Inst) bool { return i.Ra == ra && i.Imm == 100 })
			case 6:
				ra := reg()
				a.BR(ra)
				emit(isa.OpBR, func(i isa.Inst) bool { return i.Ra == ra })
			case 7:
				v := uimm()
				a.SVC(v)
				emit(isa.OpSVC, func(i isa.Inst) bool { return i.Imm == v })
			case 8:
				rd := reg()
				a.MRS(rd, isa.CtrlFAR)
				emit(isa.OpMRS, func(i isa.Inst) bool { return i.Rd == rd && isa.CtrlReg(i.Imm) == isa.CtrlFAR })
			case 9:
				rd := reg()
				a.CPRD(rd, isa.CPSafe, 2)
				emit(isa.OpCPRD, func(i isa.Inst) bool { return i.Rd == rd && i.Imm>>8 == isa.CPSafe && i.Imm&0xFF == 2 })
			case 10:
				a.TLBIA()
				emit(isa.OpTLBIA, func(i isa.Inst) bool { return true })
			case 11:
				ra := reg()
				v := simm()
				rd := reg()
				a.LDT(rd, ra, v)
				emit(isa.OpLDT, func(i isa.Inst) bool { return i.Rd == rd && i.Ra == ra && i.Imm == v })
			}
		}
		prog, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		data := prog.Segments[0].Data
		if len(data) != 4*len(wants) {
			t.Fatalf("trial %d: %d bytes for %d instructions", trial, len(data), len(wants))
		}
		for k, w := range wants {
			word := uint32(data[k*4]) | uint32(data[k*4+1])<<8 |
				uint32(data[k*4+2])<<16 | uint32(data[k*4+3])<<24
			in := isa.Decode(word)
			if in.Op != w.op {
				t.Fatalf("trial %d insn %d: decoded %v, want %v", trial, k, in.Op, w.op)
			}
			if !w.ck(in) {
				t.Fatalf("trial %d insn %d (%v): operands wrong: %+v", trial, k, w.op, in)
			}
		}
	}
}

// TestProgramSymbolPanicsOnUnknown documents the Symbol contract.
func TestProgramSymbolPanicsOnUnknown(t *testing.T) {
	a := New()
	a.NOP()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Symbol("missing")
}
