// Package asm implements a small two-pass assembler for the SV32 ISA.
// It stands in for the GCC cross-compiler used by the SimBench paper:
// benchmarks, the SPEC-like workloads and the architecture support
// packages all emit guest code through this package.
//
// The assembler is a builder: code and data are appended to the current
// section, sections are placed at explicit physical addresses with Org
// (the inter-page benchmarks rely on exact page placement), and labels
// plus relocations are resolved by Assemble.
package asm

import (
	"fmt"
	"sort"

	"simbench/internal/isa"
)

// Label names a position in the program. Forward references are allowed
// everywhere a Label is accepted.
type Label string

type relocKind uint8

const (
	relBranch relocKind = iota // 22-bit signed word offset from pc+4
	relLo16                    // absolute address low half (MOVI)
	relHi16                    // absolute address high half (MOVT)
	relWord                    // absolute 32-bit address in a data word
)

type reloc struct {
	section int
	offset  uint32 // within section
	target  Label
	kind    relocKind
}

type section struct {
	base uint32
	data []byte
}

func (s *section) pc() uint32 { return s.base + uint32(len(s.data)) }

// Assembler accumulates sections of code/data and resolves them into a
// Program. Methods record errors internally; the first error is
// returned by Assemble so emission code can stay unconditional.
type Assembler struct {
	sections []*section
	labels   map[Label]uint32
	relocs   []reloc
	errs     []error
}

// New returns an assembler with a single section based at addr 0.
func New() *Assembler {
	a := &Assembler{labels: make(map[Label]uint32)}
	a.sections = append(a.sections, &section{base: 0})
	return a
}

func (a *Assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf(format, args...))
}

func (a *Assembler) cur() *section { return a.sections[len(a.sections)-1] }

// PC returns the address that the next emitted byte will occupy.
func (a *Assembler) PC() uint32 { return a.cur().pc() }

// Org starts a new section at the given physical address. Sections may
// be created in any order but must not overlap once assembled.
func (a *Assembler) Org(addr uint32) {
	if addr%isa.WordBytes != 0 {
		a.errorf("org %#x: not word aligned", addr)
	}
	a.sections = append(a.sections, &section{base: addr})
}

// Label defines name at the current position.
func (a *Assembler) Label(name Label) {
	if _, dup := a.labels[name]; dup {
		a.errorf("label %q redefined", name)
	}
	a.labels[name] = a.PC()
}

// Align pads with NOP-encoding zero words until the pc is a multiple of n.
func (a *Assembler) Align(n uint32) {
	if n == 0 || n%isa.WordBytes != 0 {
		a.errorf("align %d: must be a positive multiple of 4", n)
		return
	}
	for a.PC()%n != 0 {
		a.Word(0)
	}
}

// Word appends a raw 32-bit little-endian word.
func (a *Assembler) Word(w uint32) {
	s := a.cur()
	s.data = append(s.data, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

// WordAddr appends a 32-bit data word holding the address of target.
func (a *Assembler) WordAddr(target Label) {
	a.relocs = append(a.relocs, reloc{len(a.sections) - 1, uint32(len(a.cur().data)), target, relWord})
	a.Word(0)
}

// Bytes appends raw bytes (padded to keep the pc word-aligned).
func (a *Assembler) Bytes(b []byte) {
	s := a.cur()
	s.data = append(s.data, b...)
	for len(s.data)%isa.WordBytes != 0 {
		s.data = append(s.data, 0)
	}
}

// Space appends n zero bytes (n must be a multiple of 4).
func (a *Assembler) Space(n uint32) {
	if n%isa.WordBytes != 0 {
		a.errorf("space %d: must be a multiple of 4", n)
		return
	}
	s := a.cur()
	s.data = append(s.data, make([]byte, n)...)
}

// Inst appends an encoded instruction.
func (a *Assembler) Inst(i isa.Inst) { a.Word(isa.Encode(i)) }

func (a *Assembler) rtype(op isa.Op, rd, ra, rb isa.Reg) {
	a.Inst(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

func (a *Assembler) itype(op isa.Op, rd, ra isa.Reg, imm int32) {
	if isa.SignedImm(op) {
		if imm < -32768 || imm > 32767 {
			a.errorf("%v: immediate %d out of signed 16-bit range", op, imm)
		}
	} else if imm < 0 || imm > 0xFFFF {
		a.errorf("%v: immediate %d out of unsigned 16-bit range", op, imm)
	}
	a.Inst(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// --- mnemonics ---

func (a *Assembler) NOP()                           { a.Inst(isa.Inst{Op: isa.OpNOP}) }
func (a *Assembler) HALT()                          { a.Inst(isa.Inst{Op: isa.OpHALT}) }
func (a *Assembler) ADD(rd, ra, rb isa.Reg)         { a.rtype(isa.OpADD, rd, ra, rb) }
func (a *Assembler) SUB(rd, ra, rb isa.Reg)         { a.rtype(isa.OpSUB, rd, ra, rb) }
func (a *Assembler) AND(rd, ra, rb isa.Reg)         { a.rtype(isa.OpAND, rd, ra, rb) }
func (a *Assembler) OR(rd, ra, rb isa.Reg)          { a.rtype(isa.OpOR, rd, ra, rb) }
func (a *Assembler) XOR(rd, ra, rb isa.Reg)         { a.rtype(isa.OpXOR, rd, ra, rb) }
func (a *Assembler) SHL(rd, ra, rb isa.Reg)         { a.rtype(isa.OpSHL, rd, ra, rb) }
func (a *Assembler) SHR(rd, ra, rb isa.Reg)         { a.rtype(isa.OpSHR, rd, ra, rb) }
func (a *Assembler) SRA(rd, ra, rb isa.Reg)         { a.rtype(isa.OpSRA, rd, ra, rb) }
func (a *Assembler) MUL(rd, ra, rb isa.Reg)         { a.rtype(isa.OpMUL, rd, ra, rb) }
func (a *Assembler) CMP(ra, rb isa.Reg)             { a.rtype(isa.OpCMP, 0, ra, rb) }
func (a *Assembler) MOV(rd, ra isa.Reg)             { a.rtype(isa.OpMOV, rd, ra, 0) }
func (a *Assembler) NOT(rd, ra isa.Reg)             { a.rtype(isa.OpNOT, rd, ra, 0) }
func (a *Assembler) ADDI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpADDI, rd, ra, imm) }
func (a *Assembler) SUBI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpSUBI, rd, ra, imm) }
func (a *Assembler) ANDI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpANDI, rd, ra, imm) }
func (a *Assembler) ORI(rd, ra isa.Reg, imm int32)  { a.itype(isa.OpORI, rd, ra, imm) }
func (a *Assembler) XORI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpXORI, rd, ra, imm) }
func (a *Assembler) SHLI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpSHLI, rd, ra, imm) }
func (a *Assembler) SHRI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpSHRI, rd, ra, imm) }
func (a *Assembler) SRAI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpSRAI, rd, ra, imm) }
func (a *Assembler) MULI(rd, ra isa.Reg, imm int32) { a.itype(isa.OpMULI, rd, ra, imm) }
func (a *Assembler) CMPI(ra isa.Reg, imm int32)     { a.itype(isa.OpCMPI, 0, ra, imm) }
func (a *Assembler) MOVI(rd isa.Reg, imm int32)     { a.itype(isa.OpMOVI, rd, 0, imm) }
func (a *Assembler) MOVT(rd isa.Reg, imm int32)     { a.itype(isa.OpMOVT, rd, 0, imm) }
func (a *Assembler) LDW(rd, ra isa.Reg, off int32)  { a.itype(isa.OpLDW, rd, ra, off) }
func (a *Assembler) STW(rd, ra isa.Reg, off int32)  { a.itype(isa.OpSTW, rd, ra, off) }
func (a *Assembler) LDB(rd, ra isa.Reg, off int32)  { a.itype(isa.OpLDB, rd, ra, off) }
func (a *Assembler) STB(rd, ra isa.Reg, off int32)  { a.itype(isa.OpSTB, rd, ra, off) }
func (a *Assembler) LDT(rd, ra isa.Reg, off int32)  { a.itype(isa.OpLDT, rd, ra, off) }
func (a *Assembler) STT(rd, ra isa.Reg, off int32)  { a.itype(isa.OpSTT, rd, ra, off) }
func (a *Assembler) BR(ra isa.Reg)                  { a.rtype(isa.OpBR, 0, ra, 0) }
func (a *Assembler) BLR(ra isa.Reg)                 { a.rtype(isa.OpBLR, 0, ra, 0) }
func (a *Assembler) SVC(code int32)                 { a.itype(isa.OpSVC, 0, 0, code) }
func (a *Assembler) ERET()                          { a.Inst(isa.Inst{Op: isa.OpERET}) }
func (a *Assembler) MRS(rd isa.Reg, c isa.CtrlReg)  { a.itype(isa.OpMRS, rd, 0, int32(c)) }
func (a *Assembler) MSR(c isa.CtrlReg, rd isa.Reg)  { a.itype(isa.OpMSR, rd, 0, int32(c)) }
func (a *Assembler) CPRD(rd isa.Reg, cp, reg int32) { a.itype(isa.OpCPRD, rd, 0, cp<<8|reg) }
func (a *Assembler) CPWR(cp, reg int32, rd isa.Reg) { a.itype(isa.OpCPWR, rd, 0, cp<<8|reg) }
func (a *Assembler) LDX(rd, ra isa.Reg)             { a.rtype(isa.OpLDX, rd, ra, 0) }
func (a *Assembler) STX(rd, rb, ra isa.Reg)         { a.rtype(isa.OpSTX, rd, ra, rb) }
func (a *Assembler) TLBI(ra isa.Reg)                { a.rtype(isa.OpTLBI, 0, ra, 0) }
func (a *Assembler) TLBIA()                         { a.Inst(isa.Inst{Op: isa.OpTLBIA}) }
func (a *Assembler) UD()                            { a.Inst(isa.Inst{Op: isa.OpUD}) }

// B emits a conditional branch to a label.
func (a *Assembler) B(cond isa.Cond, target Label) {
	a.relocs = append(a.relocs, reloc{len(a.sections) - 1, uint32(len(a.cur().data)), target, relBranch})
	a.Inst(isa.Inst{Op: isa.OpB, Cond: cond})
}

// BL emits a conditional call (LR = pc+4) to a label.
func (a *Assembler) BL(target Label) {
	a.relocs = append(a.relocs, reloc{len(a.sections) - 1, uint32(len(a.cur().data)), target, relBranch})
	a.Inst(isa.Inst{Op: isa.OpBL, Cond: isa.CondAL})
}

// RET returns via the link register.
func (a *Assembler) RET() { a.BR(isa.LR) }

// LoadImm32 materialises an arbitrary 32-bit constant in rd.
func (a *Assembler) LoadImm32(rd isa.Reg, v uint32) {
	a.MOVI(rd, int32(v&0xFFFF))
	if v>>16 != 0 {
		a.MOVT(rd, int32(v>>16))
	}
}

// LA loads the address of a label into rd (always two instructions, so
// layout is independent of the final address).
func (a *Assembler) LA(rd isa.Reg, target Label) {
	a.relocs = append(a.relocs, reloc{len(a.sections) - 1, uint32(len(a.cur().data)), target, relLo16})
	a.MOVI(rd, 0)
	a.relocs = append(a.relocs, reloc{len(a.sections) - 1, uint32(len(a.cur().data)), target, relHi16})
	a.MOVT(rd, 0)
}

// Program is the assembled image: a set of placed segments plus the
// resolved symbol table. Entry is the address of the `_start` symbol if
// defined, else the base of the lowest segment.
type Program struct {
	Segments []Segment
	Symbols  map[Label]uint32
	Entry    uint32
}

// Segment is a contiguous run of bytes at a fixed physical address.
type Segment struct {
	Addr uint32
	Data []byte
}

// Symbol returns the address of a label, which must exist.
func (p *Program) Symbol(name Label) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: unknown symbol %q", name))
	}
	return v
}

// Assemble resolves labels and relocations and returns the final image.
func (a *Assembler) Assemble() (*Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	for _, r := range a.relocs {
		target, ok := a.labels[r.target]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", r.target)
		}
		s := a.sections[r.section]
		at := s.base + r.offset
		w := leRead(s.data, r.offset)
		switch r.kind {
		case relBranch:
			delta := int64(target) - int64(at) - isa.WordBytes
			if delta%isa.WordBytes != 0 {
				return nil, fmt.Errorf("asm: branch to %q: misaligned target", r.target)
			}
			words := delta / isa.WordBytes
			if words < -(1<<21) || words >= 1<<21 {
				return nil, fmt.Errorf("asm: branch to %q out of range (%d bytes)", r.target, delta)
			}
			w |= uint32(words) & 0x3FFFFF
		case relLo16:
			w = w&0xFFFF0000 | target&0xFFFF
		case relHi16:
			w = w&0xFFFF0000 | target>>16
		case relWord:
			w = target
		}
		leWrite(s.data, r.offset, w)
	}

	var segs []Segment
	for _, s := range a.sections {
		if len(s.data) == 0 {
			continue
		}
		segs = append(segs, Segment{Addr: s.base, Data: s.data})
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("asm: empty program")
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := 1; i < len(segs); i++ {
		prevEnd := uint64(segs[i-1].Addr) + uint64(len(segs[i-1].Data))
		if uint64(segs[i].Addr) < prevEnd {
			return nil, fmt.Errorf("asm: segments overlap at %#x", segs[i].Addr)
		}
	}

	entry := segs[0].Addr
	if start, ok := a.labels["_start"]; ok {
		entry = start
	}
	syms := make(map[Label]uint32, len(a.labels))
	for k, v := range a.labels {
		syms[k] = v
	}
	return &Program{Segments: segs, Symbols: syms, Entry: entry}, nil
}

func leRead(b []byte, off uint32) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func leWrite(b []byte, off uint32, w uint32) {
	b[off] = byte(w)
	b[off+1] = byte(w >> 8)
	b[off+2] = byte(w >> 16)
	b[off+3] = byte(w >> 24)
}
