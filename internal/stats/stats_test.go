package stats

import (
	"math"
	"reflect"
	"testing"
)

const eps = 1e-12

func close(a, b float64) bool { return math.Abs(a-b) <= eps }

// TestSummarizeSyntheticHistories pins exact median/MAD/band values
// for the canonical history shapes the gate must handle. Bootstrap is
// disabled (Resamples: 0) so the expected band is exactly
// median ± Widen×MADScale×MAD.
func TestSummarizeSyntheticHistories(t *testing.T) {
	tests := []struct {
		name        string
		xs          []float64
		median, mad float64
		degenerate  bool
	}{
		{
			name:   "stable",
			xs:     []float64{0.100, 0.102, 0.098, 0.101, 0.099},
			median: 0.100,
			mad:    0.001,
		},
		{
			name:   "drifting",
			xs:     []float64{0.10, 0.11, 0.12, 0.13, 0.14},
			median: 0.12,
			mad:    0.01,
		},
		{
			name:   "bimodal",
			xs:     []float64{0.1, 0.1, 0.1, 0.2, 0.2, 0.2},
			median: 0.15000000000000002, // mean of the central pair
			mad:    0.05,
		},
		{
			name:       "single-sample",
			xs:         []float64{0.1},
			median:     0.1,
			mad:        0,
			degenerate: true,
		},
		{
			name:       "identical",
			xs:         []float64{0.25, 0.25, 0.25, 0.25},
			median:     0.25,
			mad:        0,
			degenerate: true,
		},
		{
			name:       "empty",
			xs:         nil,
			median:     0,
			mad:        0,
			degenerate: true,
		},
		{
			name:   "even-count",
			xs:     []float64{0.4, 0.1, 0.3, 0.2},
			median: 0.25, // input order must not matter
			mad:    0.1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Median(tc.xs); !close(got, tc.median) {
				t.Errorf("Median = %v, want %v", got, tc.median)
			}
			if got := MAD(tc.xs); !close(got, tc.mad) {
				t.Errorf("MAD = %v, want %v", got, tc.mad)
			}
			b := Summarize(tc.xs, Options{})
			if b.N != len(tc.xs) {
				t.Errorf("N = %d, want %d", b.N, len(tc.xs))
			}
			wantLo := tc.median - 3*MADScale*tc.mad
			wantHi := tc.median + 3*MADScale*tc.mad
			if len(tc.xs) == 0 {
				wantLo, wantHi = 0, 0
			}
			if !close(b.Lo, wantLo) || !close(b.Hi, wantHi) {
				t.Errorf("band = [%v, %v], want [%v, %v]", b.Lo, b.Hi, wantLo, wantHi)
			}
			if b.Degenerate() != tc.degenerate {
				t.Errorf("Degenerate = %v, want %v", b.Degenerate(), tc.degenerate)
			}
		})
	}
}

func TestSummarizeWidenOverride(t *testing.T) {
	xs := []float64{0.10, 0.11, 0.12, 0.13, 0.14}
	b := Summarize(xs, Options{Widen: 2})
	want := 2 * MADScale * 0.01
	if !close(b.Hi-b.Median, want) || !close(b.Median-b.Lo, want) {
		t.Errorf("band = [%v, %v] around %v, want ±%v", b.Lo, b.Hi, b.Median, want)
	}
}

func TestVerdict(t *testing.T) {
	b := Band{Median: 0.100, Lo: 0.095, Hi: 0.105}
	for _, tc := range []struct {
		x    float64
		want Verdict
	}{
		{0.100, Stable},
		{0.105, Stable}, // band edges are inclusive
		{0.095, Stable},
		{0.1051, Regressed},
		{0.0949, Improved},
	} {
		if got := b.Verdict(tc.x); got != tc.want {
			t.Errorf("Verdict(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	for v, s := range map[Verdict]string{Stable: "stable", Regressed: "regressed", Improved: "improved"} {
		if v.String() != s {
			t.Errorf("String(%d) = %q, want %q", v, v.String(), s)
		}
	}
}

func TestHalfWidth(t *testing.T) {
	b := Band{Median: 0.10, Lo: 0.09, Hi: 0.13}
	if got := b.HalfWidth(); !close(got, 0.03) {
		t.Errorf("HalfWidth = %v, want 0.03", got)
	}
}

// TestBootstrapDeterministic pins the seeded bootstrap: the same
// history and seed must reproduce the identical band (bit for bit),
// a different seed is allowed to move it, and the interval must be
// sane — inside the sample range and containing the median.
func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{0.100, 0.115, 0.085, 0.112, 0.090, 0.108, 0.095, 0.103}
	opt := Options{Resamples: 1000, Seed: 1}
	a := Summarize(xs, opt)
	b := Summarize(xs, opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different bands:\n%+v\n%+v", a, b)
	}
	if a.Degenerate() {
		t.Fatalf("band degenerate: %+v", a)
	}
	if a.Lo > a.Median || a.Hi < a.Median {
		t.Errorf("band [%v, %v] does not contain median %v", a.Lo, a.Hi, a.Median)
	}
	// The band is the union of the MAD margin and the bootstrap CI, so
	// it is at least as wide as the MAD margin alone.
	noBoot := Summarize(xs, Options{})
	if a.Lo > noBoot.Lo+eps || a.Hi < noBoot.Hi-eps {
		t.Errorf("bootstrap band [%v, %v] narrower than MAD margin [%v, %v]", a.Lo, a.Hi, noBoot.Lo, noBoot.Hi)
	}
	// The bootstrap CI of the median never leaves the sample range, so
	// any widening beyond the MAD margin stays within it too.
	c := Summarize(xs, Options{Resamples: 1000, Seed: 2})
	if c.N != a.N || !close(c.Median, a.Median) || !close(c.MAD, a.MAD) {
		t.Errorf("seed must not move median/MAD: %+v vs %+v", a, c)
	}
}

// TestBootstrapWidensTightMargin: with Widen tiny, the band is driven
// by the bootstrap CI, which must bracket the median between the
// sample extremes.
func TestBootstrapWidensTightMargin(t *testing.T) {
	xs := []float64{0.10, 0.11, 0.12, 0.13, 0.14}
	b := Summarize(xs, Options{Resamples: 500, Seed: 7, Widen: 1e-9})
	if b.Degenerate() {
		t.Fatalf("expected bootstrap to widen the band: %+v", b)
	}
	if b.Lo < 0.10-eps || b.Hi > 0.14+eps {
		t.Errorf("bootstrap CI [%v, %v] outside sample range", b.Lo, b.Hi)
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		if got := quantileSorted(s, tc.q); !close(got, tc.want) {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantileSorted(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
}
