// Package stats is the per-cell noise model behind variance-aware
// regression gating: robust location and spread estimates (median,
// median absolute deviation) over a cell's measurement history, and a
// noise band combining a deterministic seeded-bootstrap confidence
// interval of the median with a MAD-scaled spread margin. A new
// measurement inside the band is indistinguishable from the cell's
// historical noise; one outside it is a real change — the statistical
// grounding the fixed -threshold gate lacks (noisy cells false-alarm,
// quiet cells hide small regressions).
//
// Everything here is deterministic: the bootstrap runs on a caller-
// seeded PRNG, so the same history and options always yield the same
// band — a hard requirement for reproducible CI gates and for testing
// the gate itself.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// MADScale converts a median absolute deviation into a consistent
// estimate of the standard deviation under normal noise (1/Φ⁻¹(3/4)).
// The gate's spread margin is Widen×MADScale×MAD, the robust analogue
// of "k sigma".
const MADScale = 1.4826

// Band is the noise model of one cell: how many historical samples it
// summarizes, the robust center and spread, and the [Lo, Hi] interval
// outside which a new measurement counts as a real change.
type Band struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// Degenerate reports a band with no usable width — a single sample, or
// a history of identical values. A degenerate band cannot gate (any
// nonzero delta would flag); callers fall back to a fixed-threshold
// floor instead.
func (b Band) Degenerate() bool { return !(b.Hi > b.Lo) }

// HalfWidth returns the band's larger one-sided extent from the
// median, the "±" figure tables print next to a measurement.
func (b Band) HalfWidth() float64 {
	return math.Max(b.Hi-b.Median, b.Median-b.Lo)
}

// Verdict classifies a measurement against a band.
type Verdict int

const (
	Stable    Verdict = iota // inside the band: noise
	Regressed                // above Hi: slower than history explains
	Improved                 // below Lo: faster than history explains
)

func (v Verdict) String() string {
	switch v {
	case Regressed:
		return "regressed"
	case Improved:
		return "improved"
	}
	return "stable"
}

// Verdict classifies x against the band. Callers must not gate on a
// degenerate band (see Degenerate); this method still answers for one,
// treating only the exact historical value as stable.
func (b Band) Verdict(x float64) Verdict {
	switch {
	case x > b.Hi:
		return Regressed
	case x < b.Lo:
		return Improved
	}
	return Stable
}

// Options tune Summarize. The zero value is usable: no bootstrap, a
// 3×MADScale spread margin.
type Options struct {
	// Resamples is the bootstrap resample count for the confidence
	// interval of the median; 0 disables the bootstrap, leaving the
	// MAD margin alone (useful for exact-value tests).
	Resamples int
	// Seed seeds the bootstrap PRNG. Equal seeds give equal bands;
	// gates derive a per-cell seed so cells are independent streams.
	Seed int64
	// Confidence is the bootstrap interval's coverage; <=0 means 0.95.
	Confidence float64
	// Widen multiplies the MADScale-normalized MAD to form the spread
	// margin around the median; <=0 means 3 (the robust "3 sigma").
	Widen float64
}

func (o Options) fill() Options {
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	if o.Widen <= 0 {
		o.Widen = 3
	}
	return o
}

// Median returns the median of xs (mean of the central pair for even
// lengths), 0 for an empty input. xs is not modified.
func Median(xs []float64) float64 {
	return medianInPlace(append([]float64(nil), xs...))
}

// medianInPlace sorts s and returns its median — the allocation-free
// core for callers that own their slice (the bootstrap reuses one
// scratch buffer across a thousand resamples).
func medianInPlace(s []float64) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs from its median —
// the robust spread statistic: a single outlier run moves it barely,
// where it would blow up a standard deviation. Returns 0 for fewer
// than two samples.
func MAD(xs []float64) float64 {
	return mad(xs, Median(xs))
}

// mad is MAD with the median already known, so Summarize computes the
// median of a history once, not three times.
func mad(xs []float64, m float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return medianInPlace(devs)
}

// Summarize computes the noise band of a measurement history: median,
// MAD, and [Lo, Hi] as the union of the median±Widen×MADScale×MAD
// margin and (when Resamples > 0 and there are at least two samples)
// the seeded-bootstrap percentile confidence interval of the median.
// The union, not the intersection: the MAD margin models per-run
// scatter, the bootstrap models uncertainty in the center estimate,
// and a gate must tolerate both before calling a change real.
//
// An empty history returns the zero Band; a single sample or an
// all-identical history returns a Degenerate band.
func Summarize(xs []float64, o Options) Band {
	o = o.fill()
	m := Median(xs)
	b := Band{N: len(xs), Median: m, MAD: mad(xs, m)}
	if b.N == 0 {
		return b
	}
	margin := o.Widen * MADScale * b.MAD
	b.Lo, b.Hi = b.Median-margin, b.Median+margin
	if o.Resamples > 0 && b.N >= 2 {
		lo, hi := bootstrapCI(xs, o)
		b.Lo = math.Min(b.Lo, lo)
		b.Hi = math.Max(b.Hi, hi)
	}
	return b
}

// bootstrapCI returns the percentile confidence interval of the median
// under resampling with replacement, on a PRNG seeded from o.Seed —
// fully deterministic for a given (history, options) pair.
func bootstrapCI(xs []float64, o Options) (lo, hi float64) {
	rng := rand.New(rand.NewSource(o.Seed))
	meds := make([]float64, o.Resamples)
	resample := make([]float64, len(xs))
	for i := range meds {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		// In-place: resample is rebuilt from scratch next round, so
		// sorting it here costs nothing and saves a copy per resample.
		meds[i] = medianInPlace(resample)
	}
	sort.Float64s(meds)
	alpha := (1 - o.Confidence) / 2
	return quantileSorted(meds, alpha), quantileSorted(meds, 1-alpha)
}

// quantileSorted returns the q-quantile of an ascending slice by
// linear interpolation between closest ranks.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}
