// Package obs is the observability layer: a metrics registry rendered
// in Prometheus text exposition format, and a span tracer exported as
// Chrome trace-event JSON. It is stdlib-only (the module builds
// offline with zero dependencies) and strictly output-inert: nothing
// in this package feeds rendered tables, cache keys or history — it
// only records what the runtime did, for scraping (simstored
// /metrics) and post-hoc inspection (-trace). The determinism
// analyzer enforces the inertness from the other side: the
// byte-identity packages may not import obs without a reasoned
// waiver.
//
// Metrics follow the Prometheus object model: monotonically
// increasing Counters, settable Gauges, and Histograms with fixed
// cumulative buckets, each optionally fanned out over a fixed label
// set (CounterVec, GaugeVec, HistogramVec). A Registry renders its
// metrics sorted by name and label value, so two scrapes of identical
// state are byte-identical.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. The instrumented runtime
// packages (sched, store) register their metrics here at init; a
// server embedding them can expose the lot with one WriteExposition.
var Default = NewRegistry()

// DefBuckets are the default latency histogram bounds, in seconds —
// the Prometheus defaults, which span sub-millisecond store lookups
// through multi-second matrix cells.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one registered name: it knows its TYPE line and how to
// write its samples.
type metric interface {
	typeName() string // "counter", "gauge", "histogram"
	// writeSamples appends exposition sample lines for the metric
	// under its registered name.
	writeSamples(sb *strings.Builder, name string)
}

// Registry holds named metrics and renders them in exposition format.
// All methods are safe for concurrent use; registration panics on a
// duplicate or invalid name (metrics are registered once, at init or
// construction time — a collision is a programming error).
type Registry struct {
	mu      sync.Mutex
	help    map[string]string
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{help: map[string]string{}, metrics: map[string]metric{}}
}

func (r *Registry) register(name, help string, m metric) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
	r.help[name] = help
}

// Counter registers a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// Histogram registers a histogram with the given cumulative upper
// bounds (ascending; the implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, h)
	return h
}

// CounterVec registers a counter family over a fixed label set.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{vec: newVec(name, labels, func() metric { return &Counter{} })}
	r.register(name, help, v)
	return v
}

// GaugeVec registers a gauge family over a fixed label set.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{vec: newVec(name, labels, func() metric { return &Gauge{} })}
	r.register(name, help, v)
	return v
}

// HistogramVec registers a histogram family over a fixed label set.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	bs := append([]float64(nil), buckets...)
	v := &HistogramVec{vec: newVec(name, labels, func() metric { return newHistogram(bs) })}
	r.register(name, help, v)
	return v
}

// Counter is a monotonically increasing float64. The zero value is
// usable but unregistered; normally obtained from a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) typeName() string { return "counter" }

func (c *Counter) writeSamples(sb *strings.Builder, name string) {
	sb.WriteString(name)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(c.Value()))
	sb.WriteByte('\n')
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) typeName() string { return "gauge" }

func (g *Gauge) writeSamples(sb *strings.Builder, name string) {
	sb.WriteString(name)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(g.Value()))
	sb.WriteByte('\n')
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf

	mu     sync.Mutex
	counts []uint64 // per-bound (non-cumulative), len == len(bounds)+1 (+Inf last)
	sum    float64
	total  uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) typeName() string { return "histogram" }

func (h *Histogram) writeSamples(sb *strings.Builder, name string) {
	base, labels := splitLabels(name)
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		writeSample(sb, base+"_bucket", joinLabels(labels, `le="`+formatValue(bound)+`"`), formatValue(float64(cum)))
	}
	writeSample(sb, base+"_bucket", joinLabels(labels, `le="+Inf"`), formatValue(float64(total)))
	writeSample(sb, base+"_sum", labels, formatValue(sum))
	writeSample(sb, base+"_count", labels, formatValue(float64(total)))
}

// vec fans one metric out over a fixed label set, creating children on
// first use. Children render sorted by label values, so exposition
// order is deterministic.
type vec struct {
	name   string
	labels []string
	make   func() metric

	mu       sync.RWMutex
	children map[string]metric // key: exposition label block
}

func newVec(name string, labels []string, mk func() metric) *vec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	return &vec{name: name, labels: append([]string(nil), labels...), make: mk, children: map[string]metric{}}
}

// child returns (creating if needed) the metric for one label-value
// tuple. len(values) must equal the label set.
func (v *vec) child(values []string) metric {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q: got %d label values for %d labels", v.name, len(values), len(v.labels)))
	}
	parts := make([]string, len(values))
	for i, val := range values {
		parts[i] = v.labels[i] + `="` + escapeLabelValue(val) + `"`
	}
	key := strings.Join(parts, ",")
	v.mu.RLock()
	m, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok = v.children[key]; ok {
		return m
	}
	m = v.make()
	v.children[key] = m
	return m
}

func (v *vec) typeName() string {
	return v.make().typeName()
}

func (v *vec) writeSamples(sb *strings.Builder, name string) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		m := v.children[k]
		v.mu.RUnlock()
		m.writeSamples(sb, name+"{"+k+"}")
	}
}

// CounterVec is a counter family over a fixed label set.
type CounterVec struct{ *vec }

// With returns the counter for the label values, in label order.
func (v *CounterVec) With(values ...string) *Counter { return v.child(values).(*Counter) }

// GaugeVec is a gauge family over a fixed label set.
type GaugeVec struct{ *vec }

// With returns the gauge for the label values, in label order.
func (v *GaugeVec) With(values ...string) *Gauge { return v.child(values).(*Gauge) }

// HistogramVec is a histogram family over a fixed label set.
type HistogramVec struct{ *vec }

// With returns the histogram for the label values, in label order.
func (v *HistogramVec) With(values ...string) *Histogram { return v.child(values).(*Histogram) }

// splitLabels separates "name{a="b"}" into name and its label block
// (without braces; "" when unlabeled). Histograms need this to splice
// the le label into an already-labeled family member.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

func writeSample(sb *strings.Builder, name, labels, value string) {
	sb.WriteString(name)
	if labels != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
