package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 9.5 {
		t.Fatalf("gauge = %v, want 9.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative: <=0.1 holds 0.05 and 0.1 (boundary inclusive), <=1
	// adds 0.5, <=10 adds 5, +Inf adds 50.
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 55.65`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "method")
	v.With("/b", "GET").Inc()
	v.With("/a", "GET").Add(2)
	v.With(`q"uote`+"\n", "PUT").Inc()
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	ia := strings.Index(out, `req_total{route="/a",method="GET"} 2`)
	ib := strings.Index(out, `req_total{route="/b",method="GET"} 1`)
	iq := strings.Index(out, `req_total{route="q\"uote\n",method="PUT"} 1`)
	if ia < 0 || ib < 0 || iq < 0 {
		t.Fatalf("missing samples in:\n%s", out)
	}
	if !(ia < ib) {
		t.Errorf("samples not sorted by label value:\n%s", out)
	}
}

func TestHistogramVecCarriesLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_seconds", "latency", []float64{1}, "route")
	v.With("/objects").Observe(0.5)
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{route="/objects",le="1"} 1`,
		`lat_seconds_bucket{route="/objects",le="+Inf"} 1`,
		`lat_seconds_sum{route="/objects"} 0.5`,
		`lat_seconds_count{route="/objects"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministicAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b").Add(3)
	r.Gauge("a", "help with\nnewline and \\ backslash").Set(1)
	v := r.HistogramVec("c_seconds", "c", DefBuckets, "op")
	v.With("get").Observe(0.003)
	v.With("put").Observe(7)

	var one, two strings.Builder
	if err := r.WriteExposition(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteExposition(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("two renders of identical state differ:\n%s\n---\n%s", one.String(), two.String())
	}
	if err := ValidateExposition(strings.NewReader(one.String())); err != nil {
		t.Fatalf("own exposition does not validate: %v\n%s", err, one.String())
	}
	if !strings.Contains(one.String(), `# HELP a help with\nnewline and \\ backslash`) {
		t.Errorf("help not escaped:\n%s", one.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad name":         "9bad 1\n",
		"no value":         "a_total\n",
		"bad value":        "a_total x\n",
		"no type":          "a_total 1\n",
		"dup type":         "# TYPE a counter\n# TYPE a counter\na 1\n",
		"unknown type":     "# TYPE a countermaybe\na 1\n",
		"unterminated lbl": "# TYPE a counter\na{x=\"y 1\n",
		"unquoted lbl":     "# TYPE a counter\na{x=y} 1\n",
		"bucket sans le":   "# TYPE h histogram\nh_bucket 3\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", name, in)
		}
	}
	good := "# HELP h latency\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n" +
		"# TYPE up gauge\nup 1 1700000000\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("good exposition rejected: %v", err)
	}
}

func TestRegistryPanicsOnDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	for name, fn := range map[string]func(){
		"duplicate": func() { r.Gauge("x_total", "") },
		"invalid":   func() { r.Counter("9x", "") },
		"bad label": func() { r.CounterVec("y_total", "", "__reserved") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "who")
	h := r.Histogram("h_seconds", "", DefBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				v.With("a").Inc()
				v.With("b").Add(2)
				h.Observe(float64(i) / 100)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Errorf("counter = %v, want %d", c.Value(), 8*500)
	}
	if v.With("a").Value() != 8*500 || v.With("b").Value() != 8*500*2 {
		t.Errorf("vec = %v/%v", v.With("a").Value(), v.With("b").Value())
	}
	if h.Count() != 8*500 {
		t.Errorf("histogram count = %d", h.Count())
	}
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
}
