// Command obscheck validates observability artifacts in CI: Prometheus
// text exposition (as served by simstored /metrics) and Chrome
// trace-event JSON (as written by -trace). It reads stdin, or a file
// argument, and exits nonzero with a diagnostic when the input
// violates the format — the smoke jobs pipe curl and -trace output
// through it so a malformed exposition or an empty trace fails the
// build instead of silently scraping as garbage.
//
// Usage:
//
//	curl -fsS http://host:8347/metrics | go run ./internal/obs/obscheck -format prom -require simstored_requests_total
//	go run ./internal/obs/obscheck -format trace -require cell trace.json
//
// -require (repeatable) asserts that a named metric has at least one
// sample with a nonzero value (prom), or that at least one span with
// that name exists (trace).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"simbench/internal/obs"
)

type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var (
		format  = flag.String("format", "prom", "input format: prom (Prometheus text exposition) or trace (Chrome trace-event JSON)")
		require requireList
	)
	flag.Var(&require, "require", "require a nonzero sample of this metric (prom) or at least one span with this name (trace); repeatable")
	flag.Parse()

	in := io.Reader(os.Stdin)
	what := "stdin"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		what = flag.Arg(0)
	} else if flag.NArg() > 1 {
		fail(fmt.Errorf("at most one input file (default stdin)"))
	}

	data, err := io.ReadAll(in)
	if err != nil {
		fail(err)
	}
	switch *format {
	case "prom":
		err = checkProm(data, require)
	case "trace":
		err = checkTrace(data, require)
	default:
		err = fmt.Errorf("unknown -format %q (want prom or trace)", *format)
	}
	if err != nil {
		fail(fmt.Errorf("%s: %w", what, err))
	}
	fmt.Printf("obscheck: %s ok (%s, %d bytes)\n", what, *format, len(data))
}

func checkProm(data []byte, require []string) error {
	if err := obs.ValidateExposition(strings.NewReader(string(data))); err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	for _, name := range require {
		if !hasNonzeroSample(string(data), name) {
			return fmt.Errorf("no nonzero sample of required metric %s", name)
		}
	}
	return nil
}

// hasNonzeroSample scans sample lines for the metric (exact name, any
// labels) with a value other than 0.
func hasNonzeroSample(exposition, name string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v != 0 {
			return true
		}
	}
	return false
}

func checkTrace(data []byte, require []string) error {
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	spans := map[string]int{}
	complete := 0
	for i, ev := range tf.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			return fmt.Errorf("event %d lacks ph or name", i)
		}
		if ev.Ph == "X" {
			complete++
			spans[ev.Name]++
		}
	}
	if complete == 0 {
		return fmt.Errorf("trace has no complete (ph=X) spans")
	}
	for _, name := range require {
		if spans[name] == 0 {
			return fmt.Errorf("no span named %q (have %d complete spans)", name, complete)
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
