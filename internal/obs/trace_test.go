package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps one millisecond per call, so span timestamps and
// durations are fully deterministic.
func fakeClock() func() time.Duration {
	var mu sync.Mutex
	var ticks int64
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		ticks++
		return time.Duration(ticks) * time.Millisecond
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.NameThread(1, "x")
	tr.Instant(1, "boom", "cat")
	sp := tr.Begin(1, "span", "cat")
	sp.Arg("k", "v").Arg("k2", "v2")
	sp.End()
	if sp != nil {
		t.Fatal("Begin on nil tracer must return nil span")
	}
	if got := TracerFrom(context.Background()); got != nil {
		t.Fatalf("TracerFrom(plain ctx) = %v, want nil", got)
	}
	if got := TracerFrom(nil); got != nil {
		t.Fatalf("TracerFrom(nil) = %v, want nil", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if got := TracerFrom(ctx); got != tr {
		t.Fatalf("TracerFrom = %p, want %p", got, tr)
	}
}

func TestTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock())
	tr.NameThread(TidScheduler, "scheduler")
	tr.NameThread(0, "worker 0")

	tr.Begin(TidScheduler, "key", "sched").Arg("cell", "a/1").End()
	sp := tr.Begin(0, "cell", "sched").Arg("bench", "a")
	tr.Begin(0, "measure", "sched").End()
	sp.End()
	tr.Instant(TidWriteback, "drop", "store")

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "worker 0"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 9000,
   "args": {
    "name": "scheduler"
   }
  },
  {
   "name": "key",
   "cat": "sched",
   "ph": "X",
   "ts": 1000,
   "dur": 1000,
   "pid": 1,
   "tid": 9000,
   "args": {
    "cell": "a/1"
   }
  },
  {
   "name": "measure",
   "cat": "sched",
   "ph": "X",
   "ts": 4000,
   "dur": 1000,
   "pid": 1,
   "tid": 0
  },
  {
   "name": "cell",
   "cat": "sched",
   "ph": "X",
   "ts": 3000,
   "dur": 3000,
   "pid": 1,
   "tid": 0,
   "args": {
    "bench": "a"
   }
  },
  {
   "name": "drop",
   "cat": "store",
   "ph": "i",
   "ts": 7000,
   "pid": 1,
   "tid": 9101
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if buf.String() != want {
		t.Errorf("trace JSON mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}

	// Two exports of the same tracer must be byte-identical.
	var again bytes.Buffer
	if err := tr.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("second WriteJSON differs from first")
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.Begin(3, "work", "cat").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) != 1 || tf.TraceEvents[0].Name != "work" || tf.TraceEvents[0].Ph != "X" || tf.TraceEvents[0].Tid != 3 {
		t.Errorf("unexpected events: %+v", tf.TraceEvents)
	}
}

func TestWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.Begin(0, "w", "c").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "w"`) {
		t.Errorf("span missing from export:\n%s", buf.String())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Begin(w, "s", "c").Arg("i", "x").End()
				tr.Instant(w, "i", "c")
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 8*200*2 {
		t.Errorf("events = %d, want %d", len(tf.TraceEvents), 8*200*2)
	}
}
