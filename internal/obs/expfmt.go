package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteExposition renders every registered metric in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// metric, then its samples. Metrics render sorted by name and label
// value, so two scrapes of identical state are byte-identical.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	metrics := make(map[string]metric, len(r.metrics))
	help := make(map[string]string, len(r.help))
	for name, m := range r.metrics {
		metrics[name] = m
		help[name] = r.help[name]
	}
	r.mu.Unlock()

	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		m := metrics[name]
		if h := help[name]; h != "" {
			sb.WriteString("# HELP ")
			sb.WriteString(name)
			sb.WriteByte(' ')
			sb.WriteString(escapeHelp(h))
			sb.WriteByte('\n')
		}
		sb.WriteString("# TYPE ")
		sb.WriteString(name)
		sb.WriteByte(' ')
		sb.WriteString(m.typeName())
		sb.WriteByte('\n')
		m.writeSamples(&sb, name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ValidateExposition checks a Prometheus text-format stream for the
// structural rules a scraper depends on: well-formed comment and
// sample lines, valid metric and label names, parseable values, every
// sample preceded by its family's # TYPE line (histogram samples
// resolve through their _bucket/_sum/_count suffixes, and _bucket
// lines must carry an le label), and no duplicate TYPE declarations.
// It is the simple validator behind the CI metrics smoke and the
// server's own tests — not a full parser, but strict enough that
// output passing it scrapes cleanly.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{} // family -> counter|gauge|histogram|summary|untyped
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sawSample = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("no samples (empty exposition)")
	}
	return nil
}

func validateComment(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment, fine
	}
	if len(fields) < 3 {
		return fmt.Errorf("# %s without a metric name", fields[1])
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("# %s names invalid metric %q", fields[1], name)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("# TYPE %s needs exactly one type", name)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("# TYPE %s has unknown type %q", name, fields[3])
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate # TYPE for %s", name)
		}
		types[name] = fields[3]
	}
	return nil
}

func validateSample(line string, types map[string]string) error {
	name, rest, err := splitSampleName(line)
	if err != nil {
		return err
	}
	labels := ""
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
	}
	if err := validateLabels(labels); err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %s: want `value [timestamp]`, got %q", name, strings.TrimSpace(rest))
	}
	if _, err := parseValue(fields[0]); err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %s: bad timestamp %q", name, fields[1])
		}
	}

	family, suffix := name, ""
	if _, ok := types[family]; !ok {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name {
				if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
					family, suffix = base, s
					break
				}
			}
		}
	}
	t, ok := types[family]
	if !ok {
		return fmt.Errorf("sample %s has no preceding # TYPE line", name)
	}
	if suffix == "_bucket" && t == "histogram" && !strings.Contains(labels, `le="`) {
		return fmt.Errorf("histogram sample %s lacks an le label", name)
	}
	return nil
}

// splitSampleName cuts the metric name off the front of a sample line.
func splitSampleName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// labelBlockEnd returns the index of the closing brace of a label
// block that starts at index 0, honouring escapes inside quoted label
// values. -1 when unterminated.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

func validateLabels(block string) error {
	rest := strings.TrimSpace(block)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label %q has no value", rest)
		}
		lname := strings.TrimSpace(rest[:eq])
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("label %s value is not quoted", lname)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %s value is unterminated", lname)
		}
		rest = strings.TrimSpace(rest[end+1:])
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return 0, nil
	case "-Inf":
		return 0, nil
	case "NaN", "nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
