package obs

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Well-known trace lanes (Chrome trace "thread" ids). Scheduler
// workers use their worker index directly (0..N-1); the fixed lanes
// sit far above any plausible worker count so the two never collide.
const (
	// TidScheduler is the dispatch lane: per-cell key computation and
	// other work the scheduler does before the worker pool spins up.
	TidScheduler = 9000
	// TidStoreRemote is the synchronous remote-read lane: the store's
	// GET round trips to a simstored server.
	TidStoreRemote = 9100
	// TidWriteback is the asynchronous upload lane: the store's
	// write-back PUTs, which happen off every worker's critical path.
	TidWriteback = 9101
)

// Tracer records spans and exports them as Chrome trace-event JSON
// (the chrome://tracing / Perfetto format: one complete "X" event per
// span, microsecond timestamps relative to the tracer's start).
//
// A nil *Tracer is valid everywhere: Begin returns a nil *Span, whose
// methods no-op — instrumented code calls the tracer unconditionally
// and tracing costs nothing when disabled. All methods are safe for
// concurrent use.
type Tracer struct {
	start time.Time
	clock func() time.Duration // offset since start; injectable for tests

	mu      sync.Mutex
	events  []traceEvent
	threads map[int]string // tid -> display name
}

// traceEvent is one Chrome trace event. Fields marshal in declaration
// order; args is a map, which encoding/json renders with sorted keys —
// so a given event sequence always serializes to the same bytes.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"` // microseconds since tracer start
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// NewTracer returns a tracer timestamping against the wall clock from
// now.
func NewTracer() *Tracer {
	t := &Tracer{start: time.Now(), threads: map[int]string{}}
	t.clock = func() time.Duration { return time.Since(t.start) }
	return t
}

// SetClock replaces the tracer's clock with fn, which returns the
// offset since tracer start. Tests inject a deterministic clock so
// trace bytes are reproducible.
func (t *Tracer) SetClock(fn func() time.Duration) { t.clock = fn }

// NameThread assigns a display name to a trace lane; exported as
// thread_name metadata so chrome://tracing labels the row.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Span is one in-progress span; created by Begin, closed by End.
type Span struct {
	t  *Tracer
	ev traceEvent
}

// Begin opens a span named name in category cat on lane tid. On a nil
// tracer it returns nil, and every Span method on nil no-ops.
func (t *Tracer) Begin(tid int, name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, ev: traceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: t.clock().Microseconds(), Pid: 1, Tid: tid,
	}}
}

// Arg attaches a key/value argument, returned for chaining. Safe any
// time between Begin and End (spans are goroutine-local until End
// publishes them).
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.ev.Args == nil {
		s.ev.Args = map[string]string{}
	}
	s.ev.Args[key] = value
	return s
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock().Microseconds()
	s.ev.Dur = end - s.ev.Ts
	if s.ev.Dur < 0 {
		s.ev.Dur = 0
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, s.ev)
	s.t.mu.Unlock()
}

// Instant records a zero-duration instant event (rendered as a marker
// in the trace viewer) — degrade events, queue drops.
func (t *Tracer) Instant(tid int, name, cat string) {
	if t == nil {
		return
	}
	ev := traceEvent{Name: name, Cat: cat, Ph: "i", Ts: t.clock().Microseconds(), Pid: 1, Tid: tid}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// traceFile is the exported JSON shape chrome://tracing and Perfetto
// load directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON exports the trace: thread-name metadata (sorted by lane),
// then every recorded event in recording order. With a deterministic
// clock and a serial schedule the bytes are fully reproducible.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.threads)+len(t.events))
	tids := make([]int, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": t.threads[tid]},
		})
	}
	events = append(events, t.events...)
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile exports the trace to path. Callers invoke it only after
// all rendered output is flushed — the trace file must never sequence
// before (or interleave with) the tables it describes.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// tracerKey carries a *Tracer through a context.
type tracerKey struct{}

// WithTracer returns a context carrying t; the scheduler picks it up
// from the run context, so tracing needs no plumbing through the
// byte-identity experiment layer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, nil when none is attached
// (and nil is safe to use — see Tracer).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
