package versions

import (
	"testing"

	"simbench/internal/engine/dbt"
)

func TestTwentyReleases(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("got %d releases, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.Name] {
			t.Errorf("duplicate release %s", r.Name)
		}
		seen[r.Name] = true
		if r.Config.Name != r.Name {
			t.Errorf("%s: config name %q", r.Name, r.Config.Name)
		}
		if r.Notes == "" {
			t.Errorf("%s: missing notes", r.Name)
		}
	}
}

func TestDeltasAreCumulative(t *testing.T) {
	all := All()
	byName := map[string]dbt.Config{}
	for _, r := range all {
		byName[r.Name] = r.Config
	}
	if byName["v1.7.2"].OptLevel != 0 || byName["v2.0.0"].OptLevel != 1 {
		t.Error("v2.0.0 optimiser delta wrong")
	}
	if byName["v2.0.2"].OptLevel != 1 {
		t.Error("v2.0.x stable releases must inherit the optimiser")
	}
	if byName["v2.2.0"].OptLevel != 2 {
		t.Error("v2.2.0 fusion delta wrong")
	}
	if byName["v2.3.0"].Chain != dbt.ChainChecked || byName["v2.2.1"].Chain != dbt.ChainDirect {
		t.Error("chaining policy transition wrong")
	}
	if byName["v2.4.1"].TLBBits != 7 || byName["v2.3.1"].TLBBits != 8 {
		t.Error("TLB geometry transition wrong")
	}
	if !byName["v2.5.0-rc0"].DataFaultFastPath || byName["v2.4.1"].DataFaultFastPath {
		t.Error("data-fault fast path transition wrong")
	}
	// Monotone creep.
	prev := -1
	for _, r := range all {
		if r.Config.ExcSyncWords < prev {
			t.Errorf("%s: ExcSyncWords decreased", r.Name)
		}
		prev = r.Config.ExcSyncWords
	}
}

func TestLatestMatchesDefaultConfig(t *testing.T) {
	latest := Latest().Config
	def := dbt.DefaultConfig()
	latest.Name = def.Name
	if latest != def {
		t.Errorf("Fig. 7 uses the default config, which must equal %s:\n got  %+v\n want %+v",
			Latest().Name, def, latest)
	}
}

func TestByName(t *testing.T) {
	r, err := ByName("v2.2.1")
	if err != nil || r.Name != "v2.2.1" {
		t.Errorf("ByName: %v %v", r, err)
	}
	if _, err := ByName("v9.9.9"); err == nil {
		t.Error("expected error")
	}
	if len(Names()) != 20 {
		t.Error("Names length")
	}
	if Baseline().Name != "v1.7.0" {
		t.Error("baseline")
	}
}
