// Package versions models the twenty QEMU releases the paper sweeps in
// its Figs. 2, 6 and 8 (v1.7.0 through v2.5.0-rc2) as configurations
// of the DBT engine. Each release differs from its predecessor by
// concrete implementation changes — optimiser level, chaining policy,
// lookup depth, page-cache geometry, exception bookkeeping, helper
// overhead, MMU-walk complexity — so the sweep experiments measure real
// wall-clock consequences of design decisions, reproducing the causal
// analysis of the paper: the v2.0.0 "TCG optimiser improvements"
// speedup, the v2.5.0-rc0 data-fault fast path, the post-2.2 control
// flow and exception regressions, and the v2.4 flush-path rework.
package versions

import (
	"fmt"

	"simbench/internal/engine/dbt"
)

// Release is one modelled QEMU release.
type Release struct {
	// Name is the release tag, e.g. "v2.0.0".
	Name string
	// Notes summarises the implementation deltas this release carries
	// relative to its predecessor.
	Notes string
	// Config is the DBT engine configuration for the release.
	Config dbt.Config
}

// Engine builds a DBT engine configured as this release.
func (r Release) Engine() *dbt.Engine { return dbt.New(r.Config) }

func (r Release) String() string { return r.Name }

// All returns the twenty modelled releases in chronological order.
func All() []Release {
	mk := func(name, notes string, mut func(*dbt.Config)) Release {
		cfg := dbt.Config{
			Name:              name,
			OptLevel:          0,
			Chain:             dbt.ChainDirect,
			LookupDepth:       1,
			LazyFlush:         false,
			TLBBits:           8,
			VictimTLB:         false,
			DataFaultFastPath: false,
			ExcSyncWords:      8,
			HelperSaveWords:   12,
			WalkExtraChecks:   48,
			BlockCap:          64,
		}
		if mut != nil {
			mut(&cfg)
		}
		return Release{Name: name, Notes: notes, Config: cfg}
	}

	// Cumulative mutation chains: each entry applies everything its
	// predecessors applied plus its own delta.
	type delta struct {
		name, notes string
		mut         func(*dbt.Config)
	}
	deltas := []delta{
		{"v1.7.0", "baseline", nil},
		{"v1.7.1", "bug fixes only", nil},
		{"v1.7.2", "bug fixes only", nil},
		{"v2.0.0", "TCG optimiser improvements: constant folding + dead-op elimination",
			func(c *dbt.Config) { c.OptLevel = 1 }},
		{"v2.0.1", "stable branch", nil},
		{"v2.0.2", "stable branch", nil},
		{"v2.1.0", "more per-exception state synchronised; heavier helper prologues",
			func(c *dbt.Config) { c.ExcSyncWords = 16; c.HelperSaveWords = 20; c.WalkExtraChecks = 56 }},
		{"v2.1.1", "stable branch", nil},
		{"v2.1.2", "stable branch", nil},
		{"v2.1.3", "stable branch", nil},
		{"v2.2.0", "compare/branch fusion in the optimiser (sjeng-class peak)",
			func(c *dbt.Config) { c.OptLevel = 2; c.ExcSyncWords = 24; c.HelperSaveWords = 24 }},
		{"v2.2.1", "stable branch", nil},
		{"v2.3.0", "safer chaining (revalidated links) and a second lookup probe layer",
			func(c *dbt.Config) {
				c.Chain = dbt.ChainChecked
				c.LookupDepth = 2
				c.ExcSyncWords = 32
				c.HelperSaveWords = 32
				c.WalkExtraChecks = 64
			}},
		{"v2.3.1", "stable branch", nil},
		{"v2.4.0", "TLB rework: smaller L1 page cache + victim cache + lazy jump-cache flush",
			func(c *dbt.Config) {
				c.TLBBits = 7
				c.VictimTLB = true
				c.LazyFlush = true
				c.ExcSyncWords = 40
				c.HelperSaveWords = 40
				c.WalkExtraChecks = 72
			}},
		{"v2.4.0.1", "stable branch", nil},
		{"v2.4.1", "stable branch", nil},
		{"v2.5.0-rc0", "data-abort fast path (skip translate-back state recovery); deep lookup validation",
			func(c *dbt.Config) {
				c.DataFaultFastPath = true
				c.LookupDepth = 3
				c.ExcSyncWords = 48
				c.HelperSaveWords = 44
				c.WalkExtraChecks = 76
			}},
		{"v2.5.0-rc1", "continued state-sync growth",
			func(c *dbt.Config) { c.ExcSyncWords = 56; c.HelperSaveWords = 46; c.WalkExtraChecks = 82 }},
		{"v2.5.0-rc2", "continued state-sync growth",
			func(c *dbt.Config) { c.ExcSyncWords = 64; c.HelperSaveWords = 48; c.WalkExtraChecks = 88 }},
	}

	releases := make([]Release, 0, len(deltas))
	var muts []func(*dbt.Config)
	for _, d := range deltas {
		if d.mut != nil {
			muts = append(muts, d.mut)
		}
		applied := make([]func(*dbt.Config), len(muts))
		copy(applied, muts)
		releases = append(releases, mk(d.name, d.notes, func(c *dbt.Config) {
			for _, m := range applied {
				m(c)
			}
		}))
	}
	return releases
}

// Baseline returns the sweep baseline release (v1.7.0).
func Baseline() Release { return All()[0] }

// Latest returns the newest modelled release (v2.5.0-rc2), the
// configuration used for the paper's Fig. 7 measurements.
func Latest() Release {
	all := All()
	return all[len(all)-1]
}

// ByName returns the named release.
func ByName(name string) (Release, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Release{}, fmt.Errorf("versions: unknown release %q", name)
}

// Names returns all release names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, r := range all {
		names[i] = r.Name
	}
	return names
}
