// Package platform assembles a concrete simulated board — the "VexBoard"
// — from the machine and device packages: RAM at physical 0, a UART, an
// interrupt controller with a software-raisable line, a timer, the safe
// benchmark device and the benchmark-control port. It is the analogue of
// the paper's platform support package: everything a SimBench port needs
// to know about the board (memory layout, how to raise a software
// interrupt, where the safe device lives) is defined here.
package platform

import (
	"bytes"
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// VexBoard physical memory map. RAM occupies [0, RAMSize); devices sit
// high in the address space, each in its own 4 KiB page so that the MMU
// can map them individually.
const (
	DefaultRAMSize = 32 << 20 // 32 MiB

	UARTBase  = 0xF0000000
	ICBase    = 0xF0010000
	TimerBase = 0xF0020000
	SafeBase  = 0xF0030000
	CtlBase   = 0xF0040000

	RegionSize = isa.PageSize
)

// Platform is a fully wired VexBoard: N harts over one shared
// physical bus and device map. M is the boot hart (Cores[0]); every
// hart shares the RAM, the devices, the coprocessors and the
// exclusive monitor, and has its own interrupt line on the IC.
type Platform struct {
	M       *machine.Machine
	Cores   []*machine.Machine
	UART    *device.UART
	IC      *device.IntController
	Timer   *device.Timer
	Safe    *device.SafeDev
	Ctl     *device.BenchCtl
	Coproc  *device.SafeCoproc
	Console bytes.Buffer
}

// New builds a single-core VexBoard around a new machine of the given
// profile.
func New(profile machine.Profile, ramSize uint32) *Platform {
	return NewSMP(profile, ramSize, 1)
}

// NewSMP builds a VexBoard hosting cores harts. Hart 0 is the boot
// hart; secondaries share its bus and identify themselves through the
// hart-id field of CPUID. The interrupt controller drives one IRQ line
// per hart (shared device lines route to hart 0, the software IPI
// doorbell reaches every hart), and guest TLB maintenance on any hart
// is broadcast to all of them.
func NewSMP(profile machine.Profile, ramSize uint32, cores int) *Platform {
	if cores < 1 {
		cores = 1
	}
	if cores > machine.MaxHarts {
		panic(fmt.Sprintf("platform: %d cores exceeds the %d-hart limit", cores, machine.MaxHarts))
	}
	m := machine.New(profile, ramSize)
	p := &Platform{M: m, Cores: []*machine.Machine{m}}
	p.UART = &device.UART{W: &p.Console}
	p.IC = device.NewIntController(m.SetIRQLine)
	p.Timer = device.NewTimer(p.IC)
	p.Safe = &device.SafeDev{}
	p.Ctl = &device.BenchCtl{}
	p.Coproc = &device.SafeCoproc{}

	m.Bus.Map(UARTBase, RegionSize, p.UART)
	m.Bus.Map(ICBase, RegionSize, p.IC)
	m.Bus.Map(TimerBase, RegionSize, p.Timer)
	m.Bus.Map(SafeBase, RegionSize, p.Safe)
	m.Bus.Map(CtlBase, RegionSize, p.Ctl)
	// The timer is instruction-clocked off the boot hart only, so its
	// behaviour — and every timer-driven benchmark — is independent of
	// how many other cores the board hosts.
	m.TickFn = p.Timer.Tick
	m.Coprocs[isa.CPSafe] = p.Coproc

	for hart := 1; hart < cores; hart++ {
		sec := machine.NewSecondary(m, hart)
		p.IC.AddOutput(sec.SetIRQLine)
		p.Cores = append(p.Cores, sec)
	}
	if cores > 1 {
		for _, c := range p.Cores {
			c.SetShootdown(p.shootPage, p.shootAll)
		}
	}
	return p
}

// shootPage broadcasts a guest TLBI to every hart's listeners.
func (p *Platform) shootPage(va uint32) {
	for _, c := range p.Cores {
		c.InvalidatePageTLBs(va)
	}
}

// shootAll broadcasts a guest TLBIA to every hart's listeners.
func (p *Platform) shootAll() {
	for _, c := range p.Cores {
		c.InvalidateAllTLBs()
	}
}

// LoadProgram loads an assembled image into the shared RAM and records
// its entry point on every hart, so a Reset starts them all at _start.
func (p *Platform) LoadProgram(prog *asm.Program) error {
	if err := p.M.LoadProgram(prog); err != nil {
		return err
	}
	for _, c := range p.Cores[1:] {
		c.SetEntry(prog.Entry)
	}
	return nil
}

// Reset resets every hart to the architectural reset state.
func (p *Platform) Reset() {
	for _, c := range p.Cores {
		c.Reset()
	}
}

// Harts returns all cores, boot hart first — the slice engines run.
func (p *Platform) Harts() []*machine.Machine { return p.Cores }

// Default builds a VexBoard with the default RAM size.
func Default(profile machine.Profile) *Platform {
	return New(profile, DefaultRAMSize)
}

// ConsoleString returns everything the guest printed to the UART.
func (p *Platform) ConsoleString() string { return p.Console.String() }
