// Package platform assembles a concrete simulated board — the "VexBoard"
// — from the machine and device packages: RAM at physical 0, a UART, an
// interrupt controller with a software-raisable line, a timer, the safe
// benchmark device and the benchmark-control port. It is the analogue of
// the paper's platform support package: everything a SimBench port needs
// to know about the board (memory layout, how to raise a software
// interrupt, where the safe device lives) is defined here.
package platform

import (
	"bytes"

	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// VexBoard physical memory map. RAM occupies [0, RAMSize); devices sit
// high in the address space, each in its own 4 KiB page so that the MMU
// can map them individually.
const (
	DefaultRAMSize = 32 << 20 // 32 MiB

	UARTBase  = 0xF0000000
	ICBase    = 0xF0010000
	TimerBase = 0xF0020000
	SafeBase  = 0xF0030000
	CtlBase   = 0xF0040000

	RegionSize = isa.PageSize
)

// Platform is a fully wired VexBoard.
type Platform struct {
	M       *machine.Machine
	UART    *device.UART
	IC      *device.IntController
	Timer   *device.Timer
	Safe    *device.SafeDev
	Ctl     *device.BenchCtl
	Coproc  *device.SafeCoproc
	Console bytes.Buffer
}

// New builds a VexBoard around a new machine of the given profile.
func New(profile machine.Profile, ramSize uint32) *Platform {
	m := machine.New(profile, ramSize)
	p := &Platform{M: m}
	p.UART = &device.UART{W: &p.Console}
	p.IC = device.NewIntController(m.SetIRQLine)
	p.Timer = device.NewTimer(p.IC)
	p.Safe = &device.SafeDev{}
	p.Ctl = &device.BenchCtl{}
	p.Coproc = &device.SafeCoproc{}

	m.Bus.Map(UARTBase, RegionSize, p.UART)
	m.Bus.Map(ICBase, RegionSize, p.IC)
	m.Bus.Map(TimerBase, RegionSize, p.Timer)
	m.Bus.Map(SafeBase, RegionSize, p.Safe)
	m.Bus.Map(CtlBase, RegionSize, p.Ctl)
	m.TickFn = p.Timer.Tick
	m.Coprocs[isa.CPSafe] = p.Coproc
	return p
}

// Default builds a VexBoard with the default RAM size.
func Default(profile machine.Profile) *Platform {
	return New(profile, DefaultRAMSize)
}

// ConsoleString returns everything the guest printed to the UART.
func (p *Platform) ConsoleString() string { return p.Console.String() }
