package platform

import (
	"testing"

	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

func TestWiring(t *testing.T) {
	p := Default(machine.ProfileARM)
	// Every device responds at its base address through the bus.
	if v, f := p.M.Bus.ReadPhys(SafeBase+device.SafeID, 4); f != isa.FaultNone || v != device.SafeIDValue {
		t.Errorf("safedev read: %#x %v", v, f)
	}
	if v, f := p.M.Bus.ReadPhys(CtlBase+device.CtlMagic, 4); f != isa.FaultNone || v != device.CtlMagicValue {
		t.Errorf("benchctl read: %#x %v", v, f)
	}
	if _, f := p.M.Bus.ReadPhys(UARTBase+device.UARTStatus, 4); f != isa.FaultNone {
		t.Errorf("uart read: %v", f)
	}
	if _, f := p.M.Bus.ReadPhys(ICBase+device.ICStatus, 4); f != isa.FaultNone {
		t.Errorf("intc read: %v", f)
	}
	if _, f := p.M.Bus.ReadPhys(TimerBase+device.TimerCount, 4); f != isa.FaultNone {
		t.Errorf("timer read: %v", f)
	}
}

func TestConsoleCapture(t *testing.T) {
	p := New(machine.ProfileX86, 1<<20)
	p.M.Bus.WritePhys(UARTBase+device.UARTTx, 4, 'h')
	p.M.Bus.WritePhys(UARTBase+device.UARTTx, 4, 'i')
	if p.ConsoleString() != "hi" {
		t.Errorf("console %q", p.ConsoleString())
	}
}

func TestIRQPathIntcToCPU(t *testing.T) {
	p := Default(machine.ProfileARM)
	p.M.CPU.IRQOn = true
	p.M.Bus.WritePhys(ICBase+device.ICEnable, 4, 1)
	p.M.Bus.WritePhys(ICBase+device.ICRaise, 4, device.LineSoftware)
	if !p.M.IRQPending() {
		t.Error("SWI raise did not reach the CPU line")
	}
	p.M.Bus.WritePhys(ICBase+device.ICClear, 4, device.LineSoftware)
	if p.M.IRQPending() {
		t.Error("clear did not drop the line")
	}
}

func TestTimerTickWiring(t *testing.T) {
	p := Default(machine.ProfileARM)
	if p.M.TickFn == nil {
		t.Fatal("TickFn not wired")
	}
	p.M.Bus.WritePhys(ICBase+device.ICEnable, 4, 1<<device.LineTimer)
	p.M.Bus.WritePhys(TimerBase+device.TimerCompare, 4, 10)
	p.M.Bus.WritePhys(TimerBase+device.TimerCtrl, 4, 1)
	p.M.TickFn(20)
	if !p.M.IRQLine() {
		t.Error("timer tick did not raise the line")
	}
}

func TestCoprocessorAttached(t *testing.T) {
	p := Default(machine.ProfileARM)
	p.M.CPU.Kernel = true
	if _, ok := p.M.CoprocRead(isa.CPSafe, device.CPRegDACR); !ok {
		t.Error("safe coprocessor not attached")
	}
}

func TestDeviceAddressesAreDistinctPages(t *testing.T) {
	bases := []uint32{UARTBase, ICBase, TimerBase, SafeBase, CtlBase}
	seen := map[uint32]bool{}
	for _, b := range bases {
		page := b >> isa.PageShift
		if seen[page] {
			t.Errorf("device pages overlap at %#x", b)
		}
		seen[page] = true
		if b&isa.PageMask != 0 {
			t.Errorf("device base %#x not page aligned", b)
		}
	}
}
