// Package core implements the SimBench methodology itself — the
// paper's primary contribution: a benchmark model with the three-phase
// protocol (untimed guest-side setup, timed kernel bracketed by
// benchmark-control writes, untimed cleanup), a portable build
// environment through which benchmarks emit guest code via the
// architecture support packages, a runner that boots the benchmark
// bare-metal on any execution engine, and a validated result model
// that reports both run time and iteration count, as the methodology
// requires.
package core

import (
	"fmt"
	"time"

	"simbench/internal/arch"
	"simbench/internal/asm"
	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// Category groups benchmarks as in the paper's Fig. 3.
type Category string

// The five SimBench categories, plus the SMP extension family.
const (
	CatCodeGen     Category = "Code Generation"
	CatControlFlow Category = "Control Flow"
	CatException   Category = "Exception Handling"
	CatIO          Category = "I/O"
	CatMemory      Category = "Memory System"
	CatSMP         Category = "SMP"
)

// Categories lists all categories in paper order, with the SMP
// extension family last.
func Categories() []Category {
	return []Category{CatCodeGen, CatControlFlow, CatException, CatIO, CatMemory, CatSMP}
}

// Benchmark is one SimBench micro-benchmark.
type Benchmark struct {
	// Name is the canonical identifier, e.g. "ctrl.interpage-direct".
	Name string
	// Title is the paper's display name, e.g. "Inter-Page Direct".
	Title string
	// Category is the Fig. 3 group.
	Category Category
	// Description says what mechanism the benchmark isolates.
	Description string
	// PaperIters is the default iteration count from Fig. 3; runs are
	// scaled down from it.
	PaperIters int64
	// Build emits the guest program for one run.
	Build func(*Env) error
	// TestedOps extracts the tested-operation count from a result (the
	// numerator of the paper's operation density).
	TestedOps func(*Result) uint64
	// Validate checks that a run exercised what it was meant to; nil
	// means only the generic protocol checks apply.
	Validate func(*Result) error
}

// Mapping is a virtual-to-physical range a benchmark wants established
// by the bootloader before it boots.
type Mapping struct {
	VA, PA, Size uint32
	W, U         bool
}

// Env is the build environment handed to Benchmark.Build: an assembler
// for emitting guest code, the architecture support package, and the
// address-space requests that the host-side bootloader will honour.
type Env struct {
	A     *asm.Assembler
	Arch  arch.Support
	Iters int64

	// Cores is the number of harts the platform will boot (0 and 1
	// both mean single-core). At one core the preamble is exactly the
	// single-core preamble, so existing images are bit-identical.
	Cores int

	// SecondaryEntry is the label secondary harts branch to out of the
	// preamble. Empty means secondaries park (HALT) immediately, which
	// lets any benchmark run unchanged on a multi-core platform.
	SecondaryEntry asm.Label

	// MMU requests that translation be enabled at boot (the preamble
	// emits the enable sequence; the bootloader builds the tables).
	MMU      bool
	mappings []Mapping
}

// EffectiveCores returns the hart count, treating 0 as 1.
func (e *Env) EffectiveCores() int {
	if e.Cores < 1 {
		return 1
	}
	return e.Cores
}

// Map requests a page-granular mapping.
func (e *Env) Map(va, pa, size uint32, w, u bool) {
	e.mappings = append(e.mappings, Mapping{va, pa, size, w, u})
}

// Mappings returns the requested mappings.
func (e *Env) Mappings() []Mapping { return e.mappings }

// Result is the outcome of one benchmark run. Both the kernel time and
// the iteration count are recorded, as the methodology requires.
type Result struct {
	Benchmark *Benchmark
	Engine    string
	Arch      string
	Iters     int64
	Cores     int // harts the platform booted (1 = single-core)

	// Kernel is the timed-kernel duration (between the guest's BEGIN
	// and END writes); Total is the whole run including setup,
	// cleanup, boot and translation warm-up.
	Kernel time.Duration
	Total  time.Duration

	Stats engine.Stats
	Exc   [isa.NumExcs]uint64

	// Device-side counters (architectural, engine-independent).
	SafeDevAccesses   uint64
	CoprocDevAccesses uint64
	SWIRaised         uint64

	GuestResults []uint32
	Console      string
}

// TestedOps returns the benchmark's tested-operation count for this run.
func (r *Result) TestedOps() uint64 {
	if r.Benchmark == nil || r.Benchmark.TestedOps == nil {
		return 0
	}
	return r.Benchmark.TestedOps(r)
}

// OpDensity is the paper's operation density: tested operations per
// retired instruction.
func (r *Result) OpDensity() float64 {
	if r.Stats.Instructions == 0 {
		return 0
	}
	return float64(r.TestedOps()) / float64(r.Stats.Instructions)
}

// PerIter returns the kernel time per iteration.
func (r *Result) PerIter() time.Duration {
	if r.Iters == 0 {
		return 0
	}
	return r.Kernel / time.Duration(r.Iters)
}

func (r *Result) String() string {
	return fmt.Sprintf("%-24s %-8s %-4s iters=%-10d kernel=%-12s ops=%d",
		r.Benchmark.Name, r.Engine, r.Arch, r.Iters, r.Kernel, r.TestedOps())
}

// validateProtocol checks the generic three-phase protocol outcomes.
func validateProtocol(r *Result, began, ended bool, abort *uint32) error {
	if abort != nil {
		return fmt.Errorf("%s: guest aborted with code %d", r.Benchmark.Name, *abort)
	}
	if !began || !ended {
		return fmt.Errorf("%s: kernel phase not bracketed (begin=%v end=%v)",
			r.Benchmark.Name, began, ended)
	}
	if r.Kernel < 0 {
		return fmt.Errorf("%s: negative kernel time", r.Benchmark.Name)
	}
	return nil
}

// engineProfileMismatch reports benchmarks that cannot run on a profile
// (none currently: the nonpriv benchmark degenerates to its loop
// skeleton on x86, as in the paper, rather than being skipped).
var _ = machine.ProfileARM
