package core

import (
	"strings"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/engine/interp"
	"simbench/internal/isa"
)

// miniBench builds a minimal valid benchmark: N iterations of a
// counted loop bracketed by BEGIN/END, reporting R8.
func miniBench() *Benchmark {
	return &Benchmark{
		Name:       "test.mini",
		Title:      "Mini",
		Category:   CatCodeGen,
		PaperIters: 1000,
		TestedOps:  func(r *Result) uint64 { return uint64(r.Iters) },
		Build: func(env *Env) error {
			a := env.A
			EmitPreamble(env)
			EmitLoadIters(env, isa.R11)
			a.MOVI(isa.R8, 0)
			EmitBegin(env, isa.R0)
			a.Label("loop")
			a.ADDI(isa.R8, isa.R8, 3)
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "loop")
			EmitEnd(env, isa.R0)
			EmitResult(env, isa.R8, isa.R0)
			EmitHalt(env)
			EmitVectors(env, Handlers{})
			return nil
		},
	}
}

func TestRunnerProtocol(t *testing.T) {
	r := NewRunner(interp.New(), arch.ARM{})
	res, err := r.Run(miniBench(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 50 {
		t.Errorf("iters %d", res.Iters)
	}
	if res.Kernel <= 0 || res.Total < res.Kernel {
		t.Errorf("times: kernel %v total %v", res.Kernel, res.Total)
	}
	if len(res.GuestResults) != 1 || res.GuestResults[0] != 150 {
		t.Errorf("guest results %v", res.GuestResults)
	}
	if res.Engine != "interp" || res.Arch != "arm" {
		t.Errorf("labels %s %s", res.Engine, res.Arch)
	}
	if res.TestedOps() != 50 {
		t.Errorf("tested ops %d", res.TestedOps())
	}
	if res.OpDensity() <= 0 {
		t.Error("density")
	}
	if res.PerIter() <= 0 {
		t.Error("per-iter")
	}
	if !strings.Contains(res.String(), "test.mini") {
		t.Error("String()")
	}
}

func TestRunnerDefaultIters(t *testing.T) {
	r := NewRunner(interp.New(), arch.ARM{})
	res, err := r.Run(miniBench(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 1000 {
		t.Errorf("default iters %d, want PaperIters", res.Iters)
	}
}

func TestRunnerRejectsAbort(t *testing.T) {
	b := miniBench()
	b.Build = func(env *Env) error {
		a := env.A
		EmitPreamble(env)
		EmitBegin(env, isa.R0)
		// Jump into the abort handler: simulates a self-detected error.
		a.B(isa.CondAL, "vec_abort")
		EmitVectors(env, Handlers{})
		return nil
	}
	r := NewRunner(interp.New(), arch.ARM{})
	if _, err := r.Run(b, 10); err == nil || !strings.Contains(err.Error(), "abort") {
		t.Errorf("err = %v, want abort", err)
	}
}

func TestRunnerRejectsMissingEnd(t *testing.T) {
	b := miniBench()
	b.Build = func(env *Env) error {
		EmitPreamble(env)
		EmitBegin(env, isa.R0)
		EmitHalt(env)
		EmitVectors(env, Handlers{})
		return nil
	}
	r := NewRunner(interp.New(), arch.ARM{})
	if _, err := r.Run(b, 10); err == nil || !strings.Contains(err.Error(), "bracketed") {
		t.Errorf("err = %v, want protocol failure", err)
	}
}

func TestRunnerValidatorFailure(t *testing.T) {
	b := miniBench()
	b.Validate = func(r *Result) error {
		return errSentinel
	}
	r := NewRunner(interp.New(), arch.ARM{})
	if _, err := r.Run(b, 10); err == nil || !strings.Contains(err.Error(), "sentinel") {
		t.Errorf("err = %v", err)
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel failure" }

var errSentinel = sentinelError{}

func TestRunnerBuildError(t *testing.T) {
	b := miniBench()
	b.Build = func(env *Env) error { return errSentinel }
	r := NewRunner(interp.New(), arch.ARM{})
	if _, err := r.Run(b, 10); err == nil || !strings.Contains(err.Error(), "build") {
		t.Errorf("err = %v", err)
	}
}

func TestRunnerMMUBootloader(t *testing.T) {
	for _, sup := range arch.All() {
		b := miniBench()
		inner := b.Build
		b.Build = func(env *Env) error {
			env.MMU = true
			env.Map(0x02000000, BenchPhysBase, isa.PageSize, true, false)
			return inner(env)
		}
		r := NewRunner(interp.New(), sup)
		res, err := r.Run(b, 20)
		if err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		if res.Stats.PageWalks == 0 {
			t.Errorf("%s: MMU apparently not enabled (no walks)", sup.Name())
		}
	}
}

func TestEnvMappings(t *testing.T) {
	env := &Env{}
	env.Map(0x1000, 0x2000, isa.PageSize, true, false)
	env.Map(0x3000, 0x4000, isa.PageSize, false, true)
	ms := env.Mappings()
	if len(ms) != 2 || ms[0].VA != 0x1000 || !ms[1].U {
		t.Errorf("mappings %+v", ms)
	}
}

func TestCategories(t *testing.T) {
	if len(Categories()) != 6 {
		t.Error("six categories")
	}
}

func TestGuestEmittersClobberContract(t *testing.T) {
	// The emitters must only clobber the registers they document:
	// run a program that checks R5 survives Begin/End.
	b := &Benchmark{
		Name: "test.clobber", Title: "clobber", Category: CatIO, PaperIters: 1,
		TestedOps: func(*Result) uint64 { return 1 },
		Build: func(env *Env) error {
			a := env.A
			EmitPreamble(env)
			a.MOVI(isa.R5, 77)
			EmitBegin(env, isa.R0)
			EmitEnd(env, isa.R0)
			EmitResult(env, isa.R5, isa.R0)
			EmitHalt(env)
			EmitVectors(env, Handlers{})
			return nil
		},
		Validate: func(r *Result) error {
			if r.GuestResults[0] != 77 {
				return errSentinel
			}
			return nil
		},
	}
	r := NewRunner(interp.New(), arch.ARM{})
	if _, err := r.Run(b, 1); err != nil {
		t.Fatal(err)
	}
}
