package core

import (
	"simbench/internal/asm"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/platform"
)

// Guest memory-layout conventions shared by every benchmark image.
const (
	// StackTop is the initial stack pointer.
	StackTop = 0x00070000
	// TableBase..TableLimit is the physical region the bootloader uses
	// for page tables. The root lands exactly at TableBase (it is
	// 16 KiB aligned), so guest code can load it as a constant.
	TableBase  = 0x00100000
	TableLimit = 0x00200000
	// BenchPhysBase is where benchmark-specific physical backing
	// starts.
	BenchPhysBase = 0x00400000
	// IdentityLimit is the extent of the identity mapping the
	// bootloader always establishes for code, data and stack.
	IdentityLimit = 0x00080000
	// SecondaryStackStride separates the per-hart stacks that the SMP
	// preamble carves out below StackTop (hart N's SP starts at
	// StackTop - N*stride).
	SecondaryStackStride = 0x1000
)

// Guest-code emission helpers. These are the runtime library that the
// paper's benchmarks get from their support packages: preamble, vector
// table, benchmark-control access. They deliberately clobber only the
// registers they name.

// Handlers names the labels of benchmark-provided exception handlers;
// empty labels fall back to the abort handler.
type Handlers struct {
	Undef     asm.Label
	Syscall   asm.Label
	InstFault asm.Label
	DataFault asm.Label
	IRQ       asm.Label
}

func orAbort(l asm.Label) asm.Label {
	if l == "" {
		return "vec_abort"
	}
	return l
}

// EmitPreamble emits _start: stack setup, vector installation and —
// when the environment requests it — MMU enablement. Clobbers R0/R1.
//
// With Cores > 1 a hart-dispatch sequence comes first: every hart reads
// its ID out of CPUID; hart 0 falls through to the usual single-core
// boot, secondaries get a private stack below StackTop plus the shared
// vector table, then branch to SecondaryEntry with their hart ID still
// in R0 — or park immediately when the benchmark declares no entry, so
// any benchmark runs unchanged on a multi-core platform. Secondaries
// never enable the MMU; SMP benchmarks run translation-off. At one core
// nothing extra is emitted, keeping single-core images bit-identical.
func EmitPreamble(env *Env) {
	a := env.A
	a.Label("_start")
	if env.EffectiveCores() > 1 {
		a.MRS(isa.R0, isa.CtrlCPUID)
		a.SHRI(isa.R0, isa.R0, isa.CPUIDHartShift)
		a.ANDI(isa.R0, isa.R0, 0xFF)
		a.CMPI(isa.R0, 0)
		a.B(isa.CondEQ, "smp_primary")
		if env.SecondaryEntry == "" {
			a.HALT()
		} else {
			a.LoadImm32(isa.SP, StackTop)
			a.MOVI(isa.R1, SecondaryStackStride)
			a.MUL(isa.R1, isa.R0, isa.R1)
			a.SUB(isa.SP, isa.SP, isa.R1)
			a.LA(isa.R1, "vectors")
			a.MSR(isa.CtrlVBAR, isa.R1)
			a.B(isa.CondAL, env.SecondaryEntry)
		}
		a.Label("smp_primary")
	}
	a.LoadImm32(isa.SP, StackTop)
	a.LA(isa.R0, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R0)
	if env.MMU {
		a.LoadImm32(isa.R0, TableBase)
		a.MSR(isa.CtrlTTBR, isa.R0)
		ctl := int32(isa.MMUEnable)
		if env.Arch.Profile().FormatB() {
			ctl |= int32(isa.MMUFormatB)
		}
		a.MOVI(isa.R1, ctl)
		a.MSR(isa.CtrlMMU, isa.R1)
	}
}

// EmitVectors emits the exception vector table and the default abort
// handler. Call it once per program, anywhere after the preamble.
func EmitVectors(env *Env, h Handlers) {
	a := env.A
	a.Align(32)
	a.Label("vectors")
	a.B(isa.CondAL, "vec_abort") // reset re-entry is always a bug
	a.B(isa.CondAL, orAbort(h.Undef))
	a.B(isa.CondAL, orAbort(h.Syscall))
	a.B(isa.CondAL, orAbort(h.InstFault))
	a.B(isa.CondAL, orAbort(h.DataFault))
	a.B(isa.CondAL, orAbort(h.IRQ))
	a.Label("vec_abort")
	a.LoadImm32(isa.R0, platform.CtlBase)
	a.MOVI(isa.R1, 0xDEAD)
	a.STW(isa.R1, isa.R0, device.CtlAbort)
	a.HALT()
}

// EmitLoadIters loads the configured iteration count into rd (the low
// word; scaled counts always fit). Clobbers rd only.
func EmitLoadIters(env *Env, rd isa.Reg) {
	a := env.A
	a.LoadImm32(rd, platform.CtlBase)
	a.LDW(rd, rd, device.CtlIterLo)
}

// EmitBegin marks the start of the timed kernel. Clobbers tmp.
func EmitBegin(env *Env, tmp isa.Reg) {
	a := env.A
	a.LoadImm32(tmp, platform.CtlBase)
	a.STW(tmp, tmp, device.CtlBegin)
}

// EmitEnd marks the end of the timed kernel. Clobbers tmp.
func EmitEnd(env *Env, tmp isa.Reg) {
	a := env.A
	a.LoadImm32(tmp, platform.CtlBase)
	a.STW(tmp, tmp, device.CtlEnd)
}

// EmitResult reports a checksum word to the harness. Clobbers tmp.
func EmitResult(env *Env, val, tmp isa.Reg) {
	a := env.A
	a.LoadImm32(tmp, platform.CtlBase)
	a.STW(val, tmp, device.CtlResult)
}

// EmitHalt ends the run.
func EmitHalt(env *Env) { env.A.HALT() }
