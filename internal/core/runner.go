package core

import (
	"fmt"
	"time"

	"simbench/internal/arch"
	"simbench/internal/asm"
	"simbench/internal/engine"
	"simbench/internal/mmu"
	"simbench/internal/platform"
)

// Default runner parameters.
const (
	DefaultRAMSize   = 32 << 20
	DefaultInsnLimit = 4_000_000_000
)

// Runner executes benchmarks on one engine and one architecture
// profile. The zero value is not usable; fill Engine and Arch.
type Runner struct {
	Engine engine.Engine
	Arch   arch.Support

	// Cores is the number of harts the platform boots (0 and 1 both
	// mean single-core, the default).
	Cores int

	// RAMSize defaults to 32 MiB, InsnLimit to 4e9 retired guest
	// instructions (runaway protection).
	RAMSize   uint32
	InsnLimit uint64
}

// NewRunner returns a runner with default sizing.
func NewRunner(eng engine.Engine, sup arch.Support) *Runner {
	return &Runner{Engine: eng, Arch: sup, RAMSize: DefaultRAMSize, InsnLimit: DefaultInsnLimit}
}

// Run builds, boots and executes one benchmark for the given iteration
// count (0 means the paper's default count — rarely what you want
// interactively; see Scale in the suite helpers).
func (r *Runner) Run(b *Benchmark, iters int64) (*Result, error) {
	if iters <= 0 {
		iters = b.PaperIters
	}
	cores := r.Cores
	if cores < 1 {
		cores = 1
	}
	env := &Env{A: asm.New(), Arch: r.Arch, Iters: iters, Cores: cores}
	if err := b.Build(env); err != nil {
		return nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	prog, err := env.A.Assemble()
	if err != nil {
		return nil, fmt.Errorf("%s: assemble: %w", b.Name, err)
	}

	ram := r.RAMSize
	if ram == 0 {
		ram = DefaultRAMSize
	}
	limit := r.InsnLimit
	if limit == 0 {
		limit = DefaultInsnLimit
	}
	p := platform.NewSMP(r.Arch.Profile(), ram, cores)
	if err := p.LoadProgram(prog); err != nil {
		return nil, fmt.Errorf("%s: load: %w", b.Name, err)
	}
	if env.MMU {
		if err := r.bootloader(p, env); err != nil {
			return nil, fmt.Errorf("%s: bootloader: %w", b.Name, err)
		}
	}
	p.Ctl.Iters = uint64(iters)
	p.Reset()

	start := time.Now()
	st, runErr := r.Engine.Run(p.Harts(), limit)
	total := time.Since(start)

	res := &Result{
		Benchmark:         b,
		Engine:            r.Engine.Name(),
		Arch:              r.Arch.Name(),
		Iters:             iters,
		Cores:             cores,
		Kernel:            p.Ctl.KernelTime(),
		Total:             total,
		Stats:             st,
		Exc:               p.M.ExcCount,
		SafeDevAccesses:   p.Safe.Accesses(),
		CoprocDevAccesses: p.Coproc.Accesses(),
		SWIRaised:         p.IC.RaisedCount(),
		GuestResults:      p.Ctl.Results,
		Console:           p.ConsoleString(),
	}
	if runErr != nil {
		return res, fmt.Errorf("%s on %s: %w", b.Name, r.Engine.Name(), runErr)
	}
	if err := validateProtocol(res, p.Ctl.Began, p.Ctl.Ended, p.Ctl.AbortedWith); err != nil {
		return res, err
	}
	if b.Validate != nil {
		if err := b.Validate(res); err != nil {
			return res, fmt.Errorf("%s on %s: %w", b.Name, r.Engine.Name(), err)
		}
	}
	return res, nil
}

// bootloader builds the initial page tables: an identity mapping for
// code/data/stack, the device pages, and every benchmark-requested
// region. On the arm profile the identity region uses a single section
// entry (the one-level translation path the paper contrasts with
// two-level lookups); on x86 it uses 4 KiB pages.
func (r *Runner) bootloader(p *platform.Platform, env *Env) error {
	formatB := r.Arch.Profile().FormatB()
	tb, err := mmu.NewBuilder(p.M.Bus, TableBase, TableLimit, formatB)
	if err != nil {
		return err
	}
	if tb.Root() != TableBase {
		return fmt.Errorf("table root %#x, expected %#x", tb.Root(), TableBase)
	}
	if formatB {
		if err := tb.MapRange(0, 0, IdentityLimit, true, false); err != nil {
			return err
		}
	} else {
		if err := tb.MapSection(0, 0, true, false); err != nil {
			return err
		}
	}
	for _, base := range []uint32{platform.UARTBase, platform.ICBase,
		platform.TimerBase, platform.SafeBase, platform.CtlBase} {
		if err := tb.MapPage(base, base, true, false); err != nil {
			return err
		}
	}
	for _, m := range env.Mappings() {
		if err := tb.MapRange(m.VA, m.PA, m.Size, m.W, m.U); err != nil {
			return err
		}
	}
	return nil
}
