package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/interp"
)

// memStore is a minimal Store for exercising the scheduler seam; the
// content-addressed implementation lives in internal/store and has its
// own tests. keyCalls counts Key invocations: the scheduler's contract
// is one key computation per job, no matter how many Get/Put/Has calls
// the job's lifecycle involves.
type memStore struct {
	mu       sync.Mutex
	m        map[string]Result
	puts     int
	keyCalls int
}

func newMemStore() *memStore { return &memStore{m: make(map[string]Result)} }

func (s *memStore) Key(j Job) string {
	s.mu.Lock()
	s.keyCalls++
	s.mu.Unlock()
	return fmt.Sprintf("%s/%d/%d", j, j.Iters, j.Repeats)
}

func (s *memStore) Get(j Job, key string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	if ok {
		r.Cached = true
	}
	return r, ok
}

func (s *memStore) Put(key string, r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = r
	s.puts++
}

func (s *memStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

// countingEngines wraps the test engines so every instantiation —
// warmup or cell — is counted per engine name.
func countingEngines(counts map[string]*atomic.Int32) []Engine {
	base := testEngines()
	out := make([]Engine, len(base))
	for i, e := range base {
		e := e
		counts[e.Name] = &atomic.Int32{}
		out[i] = Engine{Name: e.Name, New: func() engine.Engine {
			counts[e.Name].Add(1)
			return e.New()
		}}
	}
	return out
}

// TestStoreRoundTrip runs the same matrix twice against one store: the
// first run measures and populates, the second is served entirely from
// the store with no execution at all (no engine is even built).
func TestStoreRoundTrip(t *testing.T) {
	counts := make(map[string]*atomic.Int32)
	m := Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: testBenches(t, "ctrl.intrapage-direct", "mem.hot"),
		Engines: countingEngines(counts),
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	jobs := m.Jobs()
	st := newMemStore()
	s := Scheduler{Workers: 2, Warmup: true, Store: st}

	first := s.Run(context.Background(), jobs)
	if err := Errors(first); err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.Cached {
			t.Errorf("%s: first run served from empty store", r.Job)
		}
		if r.Key == "" {
			t.Errorf("%s: store-backed result carries no key", r.Job)
		}
	}
	if st.puts != len(jobs) {
		t.Fatalf("store received %d puts, want %d", st.puts, len(jobs))
	}
	// One key computation per job covers the warmup scan, the lookup
	// and the write-back; recomputing per store call is the regression
	// this counter guards against.
	if st.keyCalls != len(jobs) {
		t.Errorf("first run computed %d keys for %d jobs, want one per job", st.keyCalls, len(jobs))
	}
	st.keyCalls = 0
	for name, c := range counts {
		c.Store(0)
		_ = name
	}

	second := s.Run(context.Background(), jobs)
	if err := Errors(second); err != nil {
		t.Fatal(err)
	}
	if st.keyCalls != len(jobs) {
		t.Errorf("second run computed %d keys for %d jobs, want one per job", st.keyCalls, len(jobs))
	}
	for i, r := range second {
		if !r.Cached {
			t.Errorf("%s: second run not served from store", r.Job)
		}
		if r.Key == "" {
			t.Errorf("%s: cached result carries no key", r.Job)
		}
		if r.Kernel != first[i].Kernel {
			t.Errorf("%s: cached kernel %v != measured %v", r.Job, r.Kernel, first[i].Kernel)
		}
		if r.Job.String() != jobs[i].String() || r.Index != i {
			t.Errorf("cached result %d misaligned: %s", i, r.Job)
		}
	}
	if st.puts != len(jobs) {
		t.Errorf("second run re-stored cells: %d puts", st.puts)
	}
	for name, c := range counts {
		if c.Load() != 0 {
			t.Errorf("engine %s built %d times on a fully cached run", name, c.Load())
		}
	}
}

// TestPerEngineWarmup checks that every distinct engine name gets its
// own discarded warmup run, not just the first job's engine: with two
// engines and two benchmarks each, each engine is instantiated once
// per cell plus once for its warmup.
func TestPerEngineWarmup(t *testing.T) {
	counts := make(map[string]*atomic.Int32)
	m := Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: testBenches(t, "ctrl.intrapage-direct", "mem.hot"),
		Engines: countingEngines(counts),
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	results := (&Scheduler{Workers: 2, Warmup: true}).Run(context.Background(), m.Jobs())
	if err := Errors(results); err != nil {
		t.Fatal(err)
	}
	for name, c := range counts {
		// Two cells (one per benchmark, Repeats 1) + one warmup.
		if c.Load() != 3 {
			t.Errorf("engine %s built %d times, want 3 (2 cells + 1 warmup)", name, c.Load())
		}
	}
}

// TestWarmupJobsSelection exercises the selection logic directly:
// first-appearance order, one job per engine, and store-backed
// skipping of fully cached engines.
func TestWarmupJobsSelection(t *testing.T) {
	b := testBenches(t, "ctrl.intrapage-direct", "mem.hot")
	eng := func(name string) Engine {
		return Engine{Name: name, New: func() engine.Engine { return interp.New() }}
	}
	jobs := []Job{
		{Bench: b[0], Engine: eng("a"), Arch: arch.ARM{}, Iters: 8},
		{Bench: b[0], Engine: eng("b"), Arch: arch.ARM{}, Iters: 8},
		{Bench: b[1], Engine: eng("a"), Arch: arch.ARM{}, Iters: 8},
		{Bench: b[1], Engine: eng("b"), Arch: arch.ARM{}, Iters: 8},
	}

	s := &Scheduler{}
	got := s.warmupJobs(context.Background(), jobs, nil, 2)
	if len(got) != 2 || got[0].Engine.Name != "a" || got[1].Engine.Name != "b" {
		t.Fatalf("warmupJobs = %v", got)
	}
	if got[0].Bench.Name != b[0].Name || got[1].Bench.Name != b[0].Name {
		t.Errorf("warmup does not use each engine's first job: %v", got)
	}

	// Cache everything engine "a" will run; only "b" still needs warmup.
	st := newMemStore()
	st.Put(st.Key(jobs[0]), Result{Job: jobs[0]})
	st.Put(st.Key(jobs[2]), Result{Job: jobs[2]})
	s.Store = st
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = st.Key(j)
	}
	got = s.warmupJobs(context.Background(), jobs, keys, 2)
	if len(got) != 1 || got[0].Engine.Name != "b" {
		t.Errorf("warmupJobs with cached engine = %v", got)
	}
}
