package sched

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/obs"
)

// stepClock advances one millisecond per reading, making every span
// timestamp and duration a function of call order alone.
func stepClock() func() time.Duration {
	var mu sync.Mutex
	var ticks int64
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		ticks++
		return time.Duration(ticks) * time.Millisecond
	}
}

// TestTraceGoldenFullyCached pins the exact trace bytes for a fixed
// two-cell matrix served entirely from the store: Workers=1 serializes
// span recording, the step clock removes wall time, and memStore keys
// are platform-independent strings — so the export must match the
// committed golden byte for byte on any host. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/sched -run TraceGolden.
func TestTraceGoldenFullyCached(t *testing.T) {
	m := Matrix{
		Arches:  arch.All()[:1],
		Benches: testBenches(t, "ctrl.intrapage-direct", "mem.hot"),
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 4 },
	}
	jobs := m.Jobs()
	st := newMemStore()
	for _, j := range jobs {
		st.m[st.Key(j)] = Result{Kernel: time.Millisecond, Run: &core.Result{}}
	}

	tr := obs.NewTracer()
	tr.SetClock(stepClock())
	s := &Scheduler{Workers: 1, Store: st}
	results := s.Run(obs.WithTracer(context.Background(), tr), jobs)
	for _, r := range results {
		if r.Err != nil || !r.Cached {
			t.Fatalf("cell %s: err=%v cached=%v — golden needs a fully cached run", r.Job, r.Err, r.Cached)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace bytes diverge from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTraceSpansMeasuredRun checks the phase structure of a traced
// uncached run: per-cell key spans on the scheduler lane, and a cell
// span per job wrapping store.get (miss), measure, and store.put on
// the worker lane. Durations are wall time here, so the assertion is
// structural, not byte-exact.
func TestTraceSpansMeasuredRun(t *testing.T) {
	m := Matrix{
		Arches:  arch.All()[:1],
		Benches: testBenches(t, "ctrl.intrapage-direct"),
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 4 },
	}
	jobs := m.Jobs()
	tr := obs.NewTracer()
	s := &Scheduler{Workers: 1, Store: newMemStore()}
	results := s.Run(obs.WithTracer(context.Background(), tr), jobs)
	if err := Errors(results); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name": "key"`, `"name": "cell"`, `"name": "store.get"`,
		`"name": "measure"`, `"name": "store.put"`,
		`"name": "worker 0"`, `"name": "scheduler"`,
		`"hit": "false"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
}

// TestUntracedRunUnchanged: a run with no tracer on the context takes
// the nil-tracer path end to end and still produces correct results.
func TestUntracedRunUnchanged(t *testing.T) {
	m := Matrix{
		Arches:  arch.All()[:1],
		Benches: testBenches(t, "ctrl.intrapage-direct"),
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 4 },
	}
	s := &Scheduler{Workers: 2, Store: newMemStore()}
	results := s.Run(context.Background(), m.Jobs())
	if err := Errors(results); err != nil {
		t.Fatal(err)
	}
}
