package sched

import "simbench/internal/obs"

// Scheduler metrics, registered on the process-wide default registry.
// The scheduler is not part of the byte-identity scope (rendered
// tables are built from Results, never from these), so it may observe
// freely: counters and histograms here are strictly write-only from
// the scheduler's point of view.
var (
	mJobsQueued = obs.Default.Counter("simbench_sched_jobs_queued_total",
		"cells dispatched to the worker pool")
	mJobsRunning = obs.Default.Gauge("simbench_sched_jobs_running",
		"cells currently resolving (store lookup or measurement)")
	mJobsDone = obs.Default.CounterVec("simbench_sched_jobs_done_total",
		"completed cells by outcome: measured, cached, or error", "outcome")
	mWorkerBusy = obs.Default.CounterVec("simbench_sched_worker_busy_seconds_total",
		"time each worker spent resolving cells", "worker")
	mQueueWait = obs.Default.Histogram("simbench_sched_queue_wait_seconds",
		"time a dispatched cell waited for a free worker", obs.DefBuckets)
	mCellDur = obs.Default.Histogram("simbench_sched_cell_seconds",
		"wall time to resolve one cell, store hits included", obs.DefBuckets)
	mWarmups = obs.Default.Counter("simbench_sched_warmups_total",
		"discarded per-engine warmup runs executed")
)
