package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
)

// testEngines returns the two cheapest engines, enough to exercise the
// engine axis without slowing the race detector down.
func testEngines() []Engine {
	return []Engine{
		{Name: "interp", New: func() engine.Engine { return interp.New() }},
		{Name: "native", New: func() engine.Engine { return direct.New(direct.ModeNative) }},
	}
}

func testBenches(t *testing.T, names ...string) []*core.Benchmark {
	t.Helper()
	var out []*core.Benchmark
	for _, name := range names {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestMatrixExpansionOrder(t *testing.T) {
	m := Matrix{
		Arches:  arch.All(),
		Benches: testBenches(t, "ctrl.intrapage-direct", "mem.hot"),
		Engines: testEngines(),
		Iters:   func(*core.Benchmark) int64 { return 8 },
		Repeats: 3,
	}
	jobs := m.Jobs()
	if len(jobs) != 2*2*2 {
		t.Fatalf("expanded %d jobs, want 8", len(jobs))
	}
	var got []string
	for _, j := range jobs {
		if j.Iters != 8 || j.Repeats != 3 {
			t.Errorf("%s: iters=%d repeats=%d", j, j.Iters, j.Repeats)
		}
		got = append(got, j.String())
	}
	want := []string{
		"arm/ctrl.intrapage-direct/interp", "arm/ctrl.intrapage-direct/native",
		"arm/mem.hot/interp", "arm/mem.hot/native",
		"x86/ctrl.intrapage-direct/interp", "x86/ctrl.intrapage-direct/native",
		"x86/mem.hot/interp", "x86/mem.hot/native",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("order:\n got %v\nwant %v", got, want)
	}
}

// TestDeterministicOrdering runs a real matrix wide (more workers than
// cells need) and checks that results come back index-aligned with the
// job list regardless of completion order, with every cell populated.
func TestDeterministicOrdering(t *testing.T) {
	m := Matrix{
		Arches:  arch.All(),
		Benches: testBenches(t, "ctrl.intrapage-direct", "exc.syscall", "mem.hot"),
		Engines: testEngines(),
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	jobs := m.Jobs()
	var completions atomic.Int32
	s := Scheduler{Workers: 8, Progress: func(Result) { completions.Add(1) }}
	results := s.Run(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Job.String() != jobs[i].String() {
			t.Errorf("result %d is %s, want %s", i, r.Job, jobs[i])
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Job, r.Err)
		}
		if r.Run == nil || r.Run.Iters != 8 {
			t.Errorf("%s: missing or wrong run result", r.Job)
		}
	}
	if int(completions.Load()) != len(jobs) {
		t.Errorf("progress fired %d times, want %d", completions.Load(), len(jobs))
	}
	if err := Errors(results); err != nil {
		t.Errorf("unexpected matrix error: %v", err)
	}
}

// TestErrorIsolation checks that a failing cell is reported in place
// while every other cell still runs to completion.
func TestErrorIsolation(t *testing.T) {
	boom := &core.Benchmark{
		Name:  "test.boom",
		Title: "Boom",
		Build: func(*core.Env) error { return errors.New("kaboom") },
	}
	benches := append(testBenches(t, "ctrl.intrapage-direct"), boom)
	benches = append(benches, testBenches(t, "mem.hot")...)
	m := Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: benches,
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	jobs := m.Jobs()
	s := Scheduler{Workers: 2}
	results := s.Run(context.Background(), jobs)

	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy cells failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Errorf("failing cell error = %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "arm/test.boom/interp") {
		t.Errorf("error does not name the cell: %v", results[1].Err)
	}
	if got := Failed(results); len(got) != 1 || got[0].Index != 1 {
		t.Errorf("Failed = %v", got)
	}
	if err := Errors(results); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("Errors = %v", err)
	}
}

// TestCancellation cancels from inside the first completion callback
// with a single worker: the first cell must carry a real result and
// every later cell the context error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: testBenches(t, "ctrl.intrapage-direct", "exc.syscall", "mem.hot"),
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	jobs := m.Jobs()
	s := Scheduler{Workers: 1, Progress: func(Result) { cancel() }}
	results := s.Run(ctx, jobs)

	if results[0].Err != nil || results[0].Run == nil {
		t.Errorf("first cell: err=%v run=%v", results[0].Err, results[0].Run)
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err=%v, want context.Canceled", r.Job, r.Err)
		}
		if r.Run != nil {
			t.Errorf("%s: cancelled cell carries a run result", r.Job)
		}
	}
	// Cancellations collapse into one summary line, not one per cell.
	err := Errors(results)
	if err == nil || !strings.Contains(err.Error(), "2 of 3 cells did not run") {
		t.Errorf("Errors = %v", err)
	}
	if got := strings.Count(err.Error(), "context canceled"); got != 1 {
		t.Errorf("%d context lines, want 1: %v", got, err)
	}
}

func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := (&Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: testBenches(t, "ctrl.intrapage-direct"),
		Engines: testEngines(),
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}).Jobs()
	results := (&Scheduler{Workers: 4}).Run(ctx, jobs)
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err=%v, want context.Canceled", r.Job, r.Err)
		}
	}
}

func TestExecuteRepeatsKeepMinimum(t *testing.T) {
	b := testBenches(t, "ctrl.intrapage-direct")[0]
	j := Job{Bench: b, Engine: testEngines()[0], Arch: arch.ARM{}, Iters: 8, Repeats: 3}
	r := Execute(context.Background(), j)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Run == nil || r.Kernel != r.Run.Kernel {
		t.Errorf("kernel %v does not match kept run %+v", r.Kernel, r.Run)
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if got := (&Scheduler{}).Run(context.Background(), nil); len(got) != 0 {
		t.Errorf("empty job list gave %d results", len(got))
	}
	// Workers <= 0 must still complete (defaults to GOMAXPROCS).
	jobs := (&Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: testBenches(t, "ctrl.intrapage-direct"),
		Engines: testEngines()[:1],
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}).Jobs()
	results := (&Scheduler{Workers: -1, Warmup: true}).Run(context.Background(), jobs)
	if err := Errors(results); err != nil {
		t.Fatal(err)
	}
}

func ExampleMatrix() {
	b, _ := bench.ByName("ctrl.intrapage-direct")
	m := Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: []*core.Benchmark{b},
		Engines: []Engine{{Name: "interp", New: func() engine.Engine { return interp.New() }}},
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	results := (&Scheduler{Workers: 2}).Run(context.Background(), m.Jobs())
	fmt.Println(results[0].Job, results[0].Err)
	// Output: arm/ctrl.intrapage-direct/interp <nil>
}
