// Package sched schedules experiment matrices across a worker pool.
// An experiment is a cross product of benchmarks, engines and guest
// architectures; each cell runs in its own fresh Platform/Runner, so
// cells are independent and can execute concurrently. The scheduler
// aggregates per-cell errors instead of aborting the whole matrix,
// honours context cancellation, and collates results deterministically
// in matrix order regardless of completion order — so a parallel run
// renders the same table as a sequential one.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/obs"
)

// Engine names an execution engine and builds fresh instances of it.
// A factory rather than an instance, because every cell must get its
// own engine: engines carry mutable translation and TLB state that
// must not be shared between concurrent runs.
type Engine struct {
	Name string
	New  func() engine.Engine
}

// Job is one cell of an experiment matrix: one benchmark on one engine
// under one guest architecture, run Repeats times at a fixed iteration
// count.
type Job struct {
	Bench  *core.Benchmark
	Engine Engine
	Arch   arch.Support
	// Iters is the scaled iteration count; <=0 falls back to the
	// benchmark's paper count.
	Iters int64
	// Repeats is how many times the cell is measured; the minimum
	// kernel time is kept (standard noise suppression on a shared
	// host). <=0 means 1.
	Repeats int
	// Cores is the guest core count; <=0 means 1. Single-core jobs
	// keep their pre-SMP identity everywhere (String, cache keys).
	Cores int
}

func (j Job) String() string {
	s := fmt.Sprintf("%s/%s/%s", j.Arch.Name(), j.Bench.Name, j.Engine.Name)
	if c := j.EffectiveCores(); c > 1 {
		s += fmt.Sprintf("/%dc", c)
	}
	return s
}

// EffectiveCores returns the guest core count the job actually boots:
// unset (<=0) means 1. Cache keys and records normalize through this,
// like Effective for iterations.
//
//simlint:keyaxis
func (j Job) EffectiveCores() int {
	if j.Cores < 1 {
		return 1
	}
	return j.Cores
}

// Effective returns the iteration and repeat counts the job actually
// executes: unset values fall back to the benchmark's paper count and
// a single measurement, mirroring Execute and Runner.Run. Cache keys
// and records normalize through this one function, so equivalent jobs
// stay equivalent everywhere.
//
//simlint:keyaxis
func (j Job) Effective() (iters int64, repeats int) {
	iters = j.Iters
	if iters <= 0 {
		iters = j.Bench.PaperIters
	}
	repeats = j.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	return iters, repeats
}

// Result is the outcome of one job: the minimum kernel time across
// repeats, the full run result that produced it, and the cell's error
// if it failed. Exactly one of Run and Err is nil.
type Result struct {
	Job   Job
	Index int

	Kernel time.Duration
	Run    *core.Result
	Err    error

	// Cached reports that the result was served from a Store rather
	// than measured by this run.
	Cached bool

	// Key is the job's content address as issued by the run's Store,
	// computed once per job and threaded through every store
	// interaction — lookup, write-back and history stamping. Empty for
	// runs without a Store.
	Key string
}

// Matrix describes a full experiment as selections per axis. Jobs
// expands it in deterministic matrix order: architecture-major, then
// benchmark, then engine — the row/column order of the paper's tables.
type Matrix struct {
	Arches  []arch.Support
	Benches []*core.Benchmark
	Engines []Engine
	// Cores selects guest core counts; empty means single-core. A
	// multi-valued axis expands per benchmark (benchmark-major, cores,
	// then engines), so a bench's core counts render as adjacent rows.
	Cores []int
	// Iters maps a benchmark to its scaled iteration count; nil uses
	// each benchmark's paper count.
	Iters   func(*core.Benchmark) int64
	Repeats int
}

// Jobs expands the cross product in matrix order.
func (m *Matrix) Jobs() []Job {
	cores := m.Cores
	if len(cores) == 0 {
		cores = []int{1}
	}
	jobs := make([]Job, 0, len(m.Arches)*len(m.Benches)*len(cores)*len(m.Engines))
	for _, sup := range m.Arches {
		for _, b := range m.Benches {
			iters := b.PaperIters
			if m.Iters != nil {
				iters = m.Iters(b)
			}
			for _, c := range cores {
				for _, e := range m.Engines {
					jobs = append(jobs, Job{Bench: b, Engine: e, Arch: sup, Iters: iters, Repeats: m.Repeats, Cores: c})
				}
			}
		}
	}
	return jobs
}

// Execute runs a single job to completion on the calling goroutine:
// Repeats measurements on a fresh Runner each, with a GC barrier
// before each so collector pauses do not land inside a timed kernel.
// Cancellation is checked between repeats; a job already running its
// kernel finishes it.
func Execute(ctx context.Context, j Job) Result {
	res := Result{Job: j}
	_, repeats := j.Effective()
	for rep := 0; rep < repeats; rep++ {
		if err := ctx.Err(); err != nil {
			// Drop any partial measurement: exactly one of Run and
			// Err may be set, and a best-of-N cut short is not the
			// cell's result.
			res.Err = err
			res.Run = nil
			res.Kernel = 0
			return res
		}
		runtime.GC()
		r := core.NewRunner(j.Engine.New(), j.Arch)
		r.Cores = j.EffectiveCores()
		run, err := r.Run(j.Bench, j.Iters)
		if err != nil {
			res.Err = fmt.Errorf("%s: %w", j, err)
			res.Run = nil
			return res
		}
		if rep == 0 || run.Kernel < res.Kernel {
			res.Kernel = run.Kernel
			res.Run = run
		}
	}
	return res
}

// Store caches completed cell results across runs. A Store is keyed by
// everything that determines a cell's outcome (see internal/store for
// the content-addressed implementation); the scheduler only asks it to
// round-trip Results. Implementations must be safe for concurrent use
// by the worker pool.
//
// Computing a content address is not free (it canonicalizes the job's
// full engine configuration), so the scheduler calls Key exactly once
// per job and hands the result back on every subsequent Get, Put and
// Has for that job — one key computation per cell, no matter how many
// store interactions the cell's lifecycle involves.
type Store interface {
	// Key returns the opaque content address of j. The scheduler
	// treats it as a token: computed once per job, passed back
	// verbatim.
	Key(j Job) string
	// Get returns the cached result for j, if present. A returned
	// result carries Cached=true and a reconstructed Run.
	Get(j Job, key string) (Result, bool)
	// Put records a successfully measured result under its key. Failed
	// or cancelled cells are never offered.
	Put(key string, r Result)
	// Has reports whether a key is present without counting as a
	// lookup; the scheduler uses it to decide which warmups are still
	// needed.
	Has(key string) bool
}

// Scheduler runs a job list on a bounded worker pool.
type Scheduler struct {
	// Workers is the number of cells in flight at once; <=0 means
	// GOMAXPROCS.
	Workers int
	// Warmup, when set, performs one discarded run per distinct engine
	// name in the job list before any timed cell, so process warm-up —
	// allocator and heap growth, lazily initialized tables, cold
	// instruction paths in each engine's code — never lands inside the
	// first measurement of any engine's column. (Engine instances
	// themselves are rebuilt per cell, so per-instance state like a
	// translation cache never carries over; warmup is about the
	// process, not the engine object.)
	Warmup bool
	// Store, when non-nil, is consulted before each cell executes and
	// receives every successfully measured result. Cells served from
	// the store carry Cached=true and skip execution entirely; engines
	// whose every cell is already stored also skip their warmup run.
	Store Store
	// Progress, when non-nil, is called once per completed cell, in
	// completion order. Calls are serialized; the callback needs no
	// locking of its own.
	Progress func(Result)
}

// execute resolves one job: from the store when possible, by running
// it otherwise. Fresh successful measurements are offered back to the
// store. key is the job's content address, computed once by Run; it is
// empty exactly when the scheduler has no Store. tr (nil when the run
// is untraced) records the cell's phases on worker lane tid.
func (s *Scheduler) execute(ctx context.Context, j Job, key string, tr *obs.Tracer, tid int) Result {
	if s.Store != nil {
		sp := tr.Begin(tid, "store.get", "store")
		r, ok := s.Store.Get(j, key)
		sp.Arg("hit", strconv.FormatBool(ok)).End()
		if ok {
			r.Job = j
			r.Key = key
			return r
		}
	}
	sp := tr.Begin(tid, "measure", "sched")
	r := Execute(ctx, j)
	sp.End()
	r.Key = key
	if s.Store != nil && r.Err == nil {
		sp := tr.Begin(tid, "store.put", "store")
		s.Store.Put(key, r)
		sp.End()
	}
	return r
}

// runWarmups executes the discarded per-engine warmup runs spread
// across the worker pool, so a many-engine sweep (twenty releases)
// does not pay one serial full-length run per engine before the first
// timed cell is dispatched.
func runWarmups(ctx context.Context, jobs []Job, workers int, tr *obs.Tracer) {
	if len(jobs) == 0 {
		return
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	feed := make(chan Job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range feed {
				sp := tr.Begin(w, "warmup", "sched").Arg("engine", j.Engine.Name)
				mWarmups.Inc()
				r := core.NewRunner(j.Engine.New(), j.Arch)
				r.Cores = j.EffectiveCores()
				_, _ = r.Run(j.Bench, j.Iters)
				sp.End()
			}
		}(w)
	}
feed:
	for _, j := range jobs {
		// Checked before the select too: with both channels ready,
		// select picks randomly, and a cancelled run must not start
		// another full-length warmup.
		if ctx.Err() != nil {
			break
		}
		select {
		case feed <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(feed)
	wg.Wait()
}

// warmupJobs selects the first job of each distinct engine name, in
// first-appearance order. With a Store attached, an engine whose every
// job is already cached needs no warmup (nothing of it will execute)
// and is skipped — so a fully cached matrix performs no guest runs at
// all. keys is index-aligned with jobs (nil without a Store), so the
// presence scan reuses the per-job keys Run already computed. The
// presence checks run on the worker pool: on a store with a remote
// tier each cold check is a network round trip, and the headline
// fully-cached case checks every job — serialized, a large matrix
// would pay its whole latency budget before the first cell dispatches.
func (s *Scheduler) warmupJobs(ctx context.Context, jobs []Job, keys []string, workers int) []Job {
	var order []string
	first := make(map[string]Job)
	needed := make(map[string]bool)
	for _, j := range jobs {
		name := j.Engine.Name
		if _, ok := first[name]; !ok {
			first[name] = j
			order = append(order, name)
		}
	}
	if s.Store == nil {
		for name := range first {
			needed[name] = true
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		idx := make(chan int)
		if workers < 1 {
			workers = 1
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					// Each remote presence check can cost a network
					// round trip; a cancelled run must not sit through
					// the rest of them.
					if ctx.Err() != nil {
						continue
					}
					name := jobs[i].Engine.Name
					mu.Lock()
					done := needed[name]
					mu.Unlock()
					// One miss settles an engine; later checks for it
					// are skipped (the blobs its Has calls have already
					// promoted stay promoted either way).
					if done || s.Store.Has(keys[i]) {
						continue
					}
					mu.Lock()
					needed[name] = true
					mu.Unlock()
				}
			}()
		}
	feed:
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	var out []Job
	for _, name := range order {
		if needed[name] {
			out = append(out, first[name])
		}
	}
	return out
}

// Run executes every job and returns one Result per job, index-aligned
// with the input slice (matrix order) no matter which order cells
// finished in. A failed cell is recorded in its Result and does not
// stop the rest of the matrix. If ctx is cancelled, cells that never
// started carry ctx's error.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// The tracer rides the context so the byte-identity experiment
	// layer never has to know tracing exists; a nil tracer costs a
	// no-op method call per phase.
	tr := obs.TracerFrom(ctx)
	tr.NameThread(obs.TidScheduler, "scheduler")
	for w := 0; w < workers; w++ {
		tr.NameThread(w, "worker "+strconv.Itoa(w))
	}
	// Each job's content address is computed exactly once, up front;
	// the warmup scan, the store lookup, the write-back and the
	// caller's history stamping all reuse it (computing a key
	// canonicalizes the engine's full configuration, which is far too
	// expensive to repeat four times per cell).
	var keys []string
	if s.Store != nil {
		keys = make([]string, len(jobs))
		for i, j := range jobs {
			sp := tr.Begin(obs.TidScheduler, "key", "sched").Arg("cell", j.String())
			keys[i] = s.Store.Key(j)
			sp.End()
		}
	}
	if s.Warmup && ctx.Err() == nil {
		runWarmups(ctx, s.warmupJobs(ctx, jobs, keys, workers), workers, tr)
	}

	idx := make(chan int)
	enqueued := make([]time.Time, len(jobs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wlabel := strconv.Itoa(w)
			for i := range idx {
				// The channel send happens-before this receive, so the
				// feeder's enqueue stamp is visible here.
				mQueueWait.Observe(time.Since(enqueued[i]).Seconds())
				key := ""
				if keys != nil {
					key = keys[i]
				}
				sp := tr.Begin(w, "cell", "sched").Arg("cell", jobs[i].String())
				if key != "" {
					sp.Arg("key", key)
				}
				mJobsRunning.Inc()
				started := time.Now()
				r := s.execute(ctx, jobs[i], key, tr, w)
				busy := time.Since(started)
				mJobsRunning.Dec()
				mWorkerBusy.With(wlabel).Add(busy.Seconds())
				mCellDur.Observe(busy.Seconds())
				switch {
				case r.Err != nil:
					mJobsDone.With("error").Inc()
				case r.Cached:
					mJobsDone.With("cached").Inc()
				default:
					mJobsDone.With("measured").Inc()
				}
				sp.End()
				r.Index = i
				results[i] = r
				if s.Progress != nil {
					mu.Lock()
					s.Progress(r)
					mu.Unlock()
				}
			}
		}(w)
	}

	next := 0
feed:
	for ; next < len(jobs); next++ {
		enqueued[next] = time.Now()
		select {
		case idx <- next:
			mJobsQueued.Inc()
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for ; next < len(jobs); next++ {
		results[next] = Result{Job: jobs[next], Index: next, Err: ctx.Err()}
	}
	return results
}

// FprintProgress writes the standard one-line progress record for one
// completed cell — coordinates, kernel time, retired instructions and
// cache provenance, or the cell's error — prefixed with a tag (e.g.
// the figure name) when non-empty. Every verbose progress stream
// (simbench -v, the figure drivers) goes through here, so a cell reads
// the same no matter which tool ran it.
func FprintProgress(w io.Writer, prefix string, r Result) {
	if prefix != "" {
		prefix += " "
	}
	if r.Err != nil {
		// Execute already embeds the cell coordinates in the error.
		fmt.Fprintf(w, "%s%v\n", prefix, r.Err)
		return
	}
	cached := ""
	if r.Cached {
		cached = ", cached"
	}
	fmt.Fprintf(w, "%s%s %s %s: %s (%d insns%s)\n",
		prefix, r.Job.Arch.Name(), r.Job.Bench.Name, r.Job.Engine.Name,
		r.Kernel, r.Run.Stats.Instructions, cached)
}

// Failed filters the results down to the cells that errored.
func Failed(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Errors joins every cell failure into one error, nil if the whole
// matrix succeeded. Cells that were merely cancelled collapse into a
// single summarizing error instead of one line per unstarted cell.
func Errors(results []Result) error {
	var errs []error
	cancelled := 0
	var cause error
	for _, r := range results {
		switch {
		case r.Err == nil:
		case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
			cancelled++
			cause = r.Err
		default:
			errs = append(errs, r.Err)
		}
	}
	if cancelled > 0 {
		errs = append(errs, fmt.Errorf("%d of %d cells did not run: %w", cancelled, len(results), cause))
	}
	return errors.Join(errs...)
}
