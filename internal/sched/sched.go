// Package sched schedules experiment matrices across a worker pool.
// An experiment is a cross product of benchmarks, engines and guest
// architectures; each cell runs in its own fresh Platform/Runner, so
// cells are independent and can execute concurrently. The scheduler
// aggregates per-cell errors instead of aborting the whole matrix,
// honours context cancellation, and collates results deterministically
// in matrix order regardless of completion order — so a parallel run
// renders the same table as a sequential one.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
)

// Engine names an execution engine and builds fresh instances of it.
// A factory rather than an instance, because every cell must get its
// own engine: engines carry mutable translation and TLB state that
// must not be shared between concurrent runs.
type Engine struct {
	Name string
	New  func() engine.Engine
}

// Job is one cell of an experiment matrix: one benchmark on one engine
// under one guest architecture, run Repeats times at a fixed iteration
// count.
type Job struct {
	Bench  *core.Benchmark
	Engine Engine
	Arch   arch.Support
	// Iters is the scaled iteration count; <=0 falls back to the
	// benchmark's paper count.
	Iters int64
	// Repeats is how many times the cell is measured; the minimum
	// kernel time is kept (standard noise suppression on a shared
	// host). <=0 means 1.
	Repeats int
}

func (j Job) String() string {
	return fmt.Sprintf("%s/%s/%s", j.Arch.Name(), j.Bench.Name, j.Engine.Name)
}

// Result is the outcome of one job: the minimum kernel time across
// repeats, the full run result that produced it, and the cell's error
// if it failed. Exactly one of Run and Err is nil.
type Result struct {
	Job   Job
	Index int

	Kernel time.Duration
	Run    *core.Result
	Err    error
}

// Matrix describes a full experiment as selections per axis. Jobs
// expands it in deterministic matrix order: architecture-major, then
// benchmark, then engine — the row/column order of the paper's tables.
type Matrix struct {
	Arches  []arch.Support
	Benches []*core.Benchmark
	Engines []Engine
	// Iters maps a benchmark to its scaled iteration count; nil uses
	// each benchmark's paper count.
	Iters   func(*core.Benchmark) int64
	Repeats int
}

// Jobs expands the cross product in matrix order.
func (m *Matrix) Jobs() []Job {
	jobs := make([]Job, 0, len(m.Arches)*len(m.Benches)*len(m.Engines))
	for _, sup := range m.Arches {
		for _, b := range m.Benches {
			iters := b.PaperIters
			if m.Iters != nil {
				iters = m.Iters(b)
			}
			for _, e := range m.Engines {
				jobs = append(jobs, Job{Bench: b, Engine: e, Arch: sup, Iters: iters, Repeats: m.Repeats})
			}
		}
	}
	return jobs
}

// Execute runs a single job to completion on the calling goroutine:
// Repeats measurements on a fresh Runner each, with a GC barrier
// before each so collector pauses do not land inside a timed kernel.
// Cancellation is checked between repeats; a job already running its
// kernel finishes it.
func Execute(ctx context.Context, j Job) Result {
	res := Result{Job: j}
	repeats := j.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	for rep := 0; rep < repeats; rep++ {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		runtime.GC()
		r := core.NewRunner(j.Engine.New(), j.Arch)
		run, err := r.Run(j.Bench, j.Iters)
		if err != nil {
			res.Err = fmt.Errorf("%s: %w", j, err)
			res.Run = nil
			return res
		}
		if rep == 0 || run.Kernel < res.Kernel {
			res.Kernel = run.Kernel
			res.Run = run
		}
	}
	return res
}

// Scheduler runs a job list on a bounded worker pool.
type Scheduler struct {
	// Workers is the number of cells in flight at once; <=0 means
	// GOMAXPROCS.
	Workers int
	// Warmup, when set, performs one discarded run of the first job
	// before any timed cell, so allocator and heap warm-up never land
	// inside the first measurement.
	Warmup bool
	// Progress, when non-nil, is called once per completed cell, in
	// completion order. Calls are serialized; the callback needs no
	// locking of its own.
	Progress func(Result)
}

// Run executes every job and returns one Result per job, index-aligned
// with the input slice (matrix order) no matter which order cells
// finished in. A failed cell is recorded in its Result and does not
// stop the rest of the matrix. If ctx is cancelled, cells that never
// started carry ctx's error.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if s.Warmup && ctx.Err() == nil {
		j := jobs[0]
		r := core.NewRunner(j.Engine.New(), j.Arch)
		_, _ = r.Run(j.Bench, j.Iters)
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := Execute(ctx, jobs[i])
				r.Index = i
				results[i] = r
				if s.Progress != nil {
					mu.Lock()
					s.Progress(r)
					mu.Unlock()
				}
			}
		}()
	}

	next := 0
feed:
	for ; next < len(jobs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for ; next < len(jobs); next++ {
		results[next] = Result{Job: jobs[next], Index: next, Err: ctx.Err()}
	}
	return results
}

// Failed filters the results down to the cells that errored.
func Failed(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Errors joins every cell failure into one error, nil if the whole
// matrix succeeded. Cells that were merely cancelled collapse into a
// single summarizing error instead of one line per unstarted cell.
func Errors(results []Result) error {
	var errs []error
	cancelled := 0
	var cause error
	for _, r := range results {
		switch {
		case r.Err == nil:
		case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
			cancelled++
			cause = r.Err
		default:
			errs = append(errs, r.Err)
		}
	}
	if cancelled > 0 {
		errs = append(errs, fmt.Errorf("%d of %d cells did not run: %w", cancelled, len(results), cause))
	}
	return errors.Join(errs...)
}
