package machine

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
)

func newM(t *testing.T) *Machine {
	t.Helper()
	return New(ProfileARM, 1<<20)
}

func TestPSRRoundTrip(t *testing.T) {
	var c CPU
	for mode := 0; mode < 4; mode++ {
		for flags := 0; flags < 16; flags++ {
			c.Kernel = mode&1 != 0
			c.IRQOn = mode&2 != 0
			c.Flags = isa.Flags{N: flags&1 != 0, Z: flags&2 != 0, C: flags&4 != 0, V: flags&8 != 0}
			psr := c.PSR()
			var c2 CPU
			c2.SetPSR(psr)
			if c2.Kernel != c.Kernel || c2.IRQOn != c.IRQOn || c2.Flags != c.Flags {
				t.Fatalf("PSR %#x did not round-trip", psr)
			}
		}
	}
}

func TestExceptionEntryAndReturn(t *testing.T) {
	m := newM(t)
	m.CPU.Kernel = false
	m.CPU.IRQOn = true
	m.CPU.Flags = isa.Flags{Z: true}
	m.CPU.Ctrl[isa.CtrlVBAR] = 0x1000
	m.CPU.PC = 0x5000

	m.Enter(isa.ExcSyscall, 0x5004)
	if !m.CPU.Kernel || m.CPU.IRQOn {
		t.Error("exception entry must switch to kernel with IRQs masked")
	}
	if m.CPU.PC != 0x1000+4*uint32(isa.ExcSyscall) {
		t.Errorf("vectored to %#x", m.CPU.PC)
	}
	if m.CPU.Ctrl[isa.CtrlEPC] != 0x5004 {
		t.Errorf("EPC %#x", m.CPU.Ctrl[isa.CtrlEPC])
	}
	if m.ExcCount[isa.ExcSyscall] != 1 {
		t.Error("exception count")
	}

	m.ERET()
	if m.CPU.PC != 0x5004 || m.CPU.Kernel || !m.CPU.IRQOn || !m.CPU.Flags.Z {
		t.Errorf("ERET state wrong: pc=%#x kernel=%v irq=%v flags=%+v",
			m.CPU.PC, m.CPU.Kernel, m.CPU.IRQOn, m.CPU.Flags)
	}
}

func TestMemFaultRecordsFSRFAR(t *testing.T) {
	m := newM(t)
	m.EnterMemFault(isa.ExcDataFault, isa.FaultPermission, 0xABCD0, true, 0x100)
	if m.CPU.Ctrl[isa.CtrlFAR] != 0xABCD0 {
		t.Errorf("FAR %#x", m.CPU.Ctrl[isa.CtrlFAR])
	}
	want := uint32(isa.FaultPermission) | isa.FSRWrite
	if m.CPU.Ctrl[isa.CtrlFSR] != want {
		t.Errorf("FSR %#x want %#x", m.CPU.Ctrl[isa.CtrlFSR], want)
	}
}

func TestCtrlRegPrivileges(t *testing.T) {
	m := newM(t)
	m.CPU.Kernel = false
	// PSR and CPUID are readable from user mode.
	if _, ok := m.ReadCtrl(isa.CtrlPSR); !ok {
		t.Error("PSR should be user-readable")
	}
	if _, ok := m.ReadCtrl(isa.CtrlCPUID); !ok {
		t.Error("CPUID should be user-readable")
	}
	// Others are not.
	if _, ok := m.ReadCtrl(isa.CtrlTTBR); ok {
		t.Error("TTBR must not be user-readable")
	}
	if m.WriteCtrl(isa.CtrlVBAR, 0x100) {
		t.Error("user-mode MSR must be rejected")
	}
	m.CPU.Kernel = true
	if !m.WriteCtrl(isa.CtrlVBAR, 0x100) {
		t.Error("kernel MSR rejected")
	}
	if m.WriteCtrl(isa.CtrlCPUID, 1) {
		t.Error("CPUID must be read-only")
	}
	if _, ok := m.ReadCtrl(isa.CtrlReg(200)); ok {
		t.Error("out-of-range control register accepted")
	}
}

type recordingListener struct {
	pages []uint32
	alls  int
}

func (l *recordingListener) InvalidatePage(va uint32) { l.pages = append(l.pages, va) }
func (l *recordingListener) InvalidateAll()           { l.alls++ }

func TestTLBMaintenanceBroadcast(t *testing.T) {
	m := newM(t)
	l := &recordingListener{}
	m.AddTLBListener(l)

	m.InvalidatePageTLBs(0x4000)
	if len(l.pages) != 1 || l.pages[0] != 0x4000 {
		t.Errorf("pages %v", l.pages)
	}
	// TTBR and MMU control writes broadcast full flushes.
	m.CPU.Kernel = true
	m.WriteCtrl(isa.CtrlTTBR, 0x100000)
	m.WriteCtrl(isa.CtrlMMU, isa.MMUEnable)
	if l.alls != 2 {
		t.Errorf("alls %d", l.alls)
	}
	m.ClearTLBListeners()
	m.InvalidateAllTLBs()
	if l.alls != 2 {
		t.Error("cleared listener still notified")
	}
}

func TestIRQLineGating(t *testing.T) {
	m := newM(t)
	m.SetIRQLine(true)
	m.CPU.IRQOn = false
	if m.IRQPending() {
		t.Error("masked IRQ reported pending")
	}
	m.CPU.IRQOn = true
	if !m.IRQPending() {
		t.Error("unmasked IRQ not pending")
	}
	m.SetIRQLine(false)
	if m.IRQPending() {
		t.Error("deasserted line pending")
	}
	if m.IRQLine() {
		t.Error("line getter")
	}
}

func TestCoprocAccessRules(t *testing.T) {
	m := newM(t)
	m.CPU.Kernel = true
	// No coprocessor attached.
	if _, ok := m.CoprocRead(isa.CPSafe, 0); ok {
		t.Error("read from absent coprocessor accepted")
	}
	m.Coprocs[isa.CPSafe] = &stubCoproc{}
	if v, ok := m.CoprocRead(isa.CPSafe, 0); !ok || v != 123 {
		t.Error("coproc read failed")
	}
	if !m.CoprocWrite(isa.CPSafe, 0, 5) {
		t.Error("coproc write failed")
	}
	m.CPU.Kernel = false
	if _, ok := m.CoprocRead(isa.CPSafe, 0); ok {
		t.Error("user-mode coproc read accepted")
	}
	if m.CoprocWrite(isa.CPSafe, 0, 5) {
		t.Error("user-mode coproc write accepted")
	}
	m.CPU.Kernel = true
	if _, ok := m.CoprocRead(99, 0); ok {
		t.Error("out-of-range coprocessor accepted")
	}
}

type stubCoproc struct{}

func (stubCoproc) Read(reg uint32) (uint32, bool) { return 123, true }
func (stubCoproc) Write(reg, v uint32) bool       { return true }

func TestLoadProgramAndReset(t *testing.T) {
	m := newM(t)
	a := asm.New()
	a.Org(0x2000)
	a.Label("_start")
	a.NOP()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m.CPU.Regs[3] = 99
	m.Halted = true
	m.ExcCount[isa.ExcIRQ] = 5
	m.Reset()
	if m.CPU.PC != 0x2000 {
		t.Errorf("reset PC %#x", m.CPU.PC)
	}
	if m.CPU.Regs[3] != 0 || m.Halted || m.ExcCount[isa.ExcIRQ] != 0 {
		t.Error("reset did not clear state")
	}
	if !m.CPU.Kernel || m.CPU.IRQOn {
		t.Error("reset privilege state wrong")
	}
	if m.CPU.Ctrl[isa.CtrlCPUID] == 0 {
		t.Error("CPUID lost across reset")
	}
}

func TestProfileProperties(t *testing.T) {
	if !New(ProfileARM, 4096).NonPrivSupported() {
		t.Error("arm profile must support non-privileged access")
	}
	if New(ProfileX86, 4096).NonPrivSupported() {
		t.Error("x86 profile must not")
	}
	if ProfileARM.FormatB() || !ProfileX86.FormatB() {
		t.Error("page-table formats wrong")
	}
	if ProfileARM.String() != "arm" || ProfileX86.String() != "x86" {
		t.Error("profile names")
	}
}

func TestLoadProgramTooBig(t *testing.T) {
	m := New(ProfileARM, 4096)
	a := asm.New()
	a.Org(0x1000000)
	a.NOP()
	prog, _ := a.Assemble()
	if err := m.LoadProgram(prog); err == nil {
		t.Error("expected load failure beyond RAM")
	}
}
