// Package machine ties the SV32 CPU state, the physical memory bus,
// coprocessors and interrupt wiring into a guest machine that the
// execution engines drive. It owns the parts of the architecture that
// must behave identically across engines: control registers, privilege
// rules, exception entry/return, and TLB-maintenance broadcasting.
package machine

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/mem"
)

// Profile selects the architecture profile, standing in for the ARM and
// x86 guest architectures of the paper. The profiles share the SV32
// encoding but differ in system behaviour: page-table format, whether
// non-privileged access instructions exist, and the coprocessor style.
type Profile uint8

// Profiles.
const (
	ProfileARM Profile = 1 // format-A tables, LDT/STT supported, DACR-style coprocessor
	ProfileX86 Profile = 2 // format-B tables, LDT/STT undefined, FPU-reset coprocessor
)

func (p Profile) String() string {
	switch p {
	case ProfileARM:
		return "arm"
	case ProfileX86:
		return "x86"
	}
	return fmt.Sprintf("profile#%d", uint8(p))
}

// FormatB reports the page-table format implied by the profile.
func (p Profile) FormatB() bool { return p == ProfileX86 }

// Coprocessor is the interface to an attached coprocessor (CPRD/CPWR
// targets). A false result raises an undefined-instruction exception.
type Coprocessor interface {
	Read(reg uint32) (uint32, bool)
	Write(reg uint32, v uint32) bool
}

// TLBListener is notified of guest TLB-maintenance operations so engine
// translation caches can stay coherent. VBAR/TTBR/MMU control writes
// trigger InvalidateAll as well.
type TLBListener interface {
	InvalidatePage(va uint32)
	InvalidateAll()
}

// CPU is the architectural register state.
type CPU struct {
	Regs   [isa.NumRegs]uint32
	PC     uint32
	Flags  isa.Flags
	Kernel bool
	IRQOn  bool
	Ctrl   [isa.NumCtrlRegs]uint32
}

// PSR reconstructs the packed status word.
func (c *CPU) PSR() uint32 {
	v := isa.PackFlags(c.Flags)
	if c.Kernel {
		v |= isa.PSRKernel
	}
	if c.IRQOn {
		v |= isa.PSRIRQOn
	}
	return v
}

// SetPSR unpacks a status word into the live fields.
func (c *CPU) SetPSR(v uint32) {
	c.Flags = isa.UnpackFlags(v)
	c.Kernel = v&isa.PSRKernel != 0
	c.IRQOn = v&isa.PSRIRQOn != 0
}

// Machine is a complete guest machine.
type Machine struct {
	CPU     CPU
	Bus     *mem.Bus
	Profile Profile
	Coprocs [isa.NumCP]Coprocessor

	irqLine      bool
	Halted       bool
	tlbListeners []TLBListener
	entry        uint32

	// TickFn, if set by the platform, is called periodically by engines
	// with a retired-instruction delta; it drives the timer device.
	TickFn func(uint32)

	// Counters shared across engines: exceptions taken by class.
	ExcCount [isa.NumExcs]uint64
}

// New creates a machine with the given RAM size. Devices are attached
// by the platform package.
func New(profile Profile, ramSize uint32) *Machine {
	m := &Machine{Bus: mem.NewBus(ramSize), Profile: profile}
	m.CPU.Ctrl[isa.CtrlCPUID] = isa.CPUIDValue(uint8(profile), 1)
	return m
}

// LoadProgram copies an assembled image into RAM and records its entry
// point for Reset.
func (m *Machine) LoadProgram(p *asm.Program) error {
	for _, s := range p.Segments {
		if err := m.Bus.LoadSegment(s.Addr, s.Data); err != nil {
			return err
		}
	}
	m.entry = p.Entry
	return nil
}

// Reset puts the CPU in the architectural reset state: kernel mode,
// interrupts disabled, MMU off, executing at the program entry point.
func (m *Machine) Reset() {
	cpuid := m.CPU.Ctrl[isa.CtrlCPUID]
	m.CPU = CPU{PC: m.entry, Kernel: true}
	m.CPU.Ctrl[isa.CtrlCPUID] = cpuid
	m.Halted = false
	for i := range m.ExcCount {
		m.ExcCount[i] = 0
	}
	m.InvalidateAllTLBs()
}

// AddTLBListener registers an engine translation cache for maintenance
// broadcasts.
func (m *Machine) AddTLBListener(l TLBListener) {
	m.tlbListeners = append(m.tlbListeners, l)
}

// ClearTLBListeners drops all registered listeners (engines re-register
// on Reset).
func (m *Machine) ClearTLBListeners() { m.tlbListeners = nil }

// InvalidatePageTLBs broadcasts a single-page invalidation.
func (m *Machine) InvalidatePageTLBs(va uint32) {
	for _, l := range m.tlbListeners {
		l.InvalidatePage(va)
	}
}

// InvalidateAllTLBs broadcasts a full flush.
func (m *Machine) InvalidateAllTLBs() {
	for _, l := range m.tlbListeners {
		l.InvalidateAll()
	}
}

// SetIRQLine drives the external interrupt line (from the interrupt
// controller).
func (m *Machine) SetIRQLine(level bool) { m.irqLine = level }

// IRQLine reports the raw line level.
func (m *Machine) IRQLine() bool { return m.irqLine }

// IRQPending reports whether an interrupt should be taken now.
func (m *Machine) IRQPending() bool { return m.irqLine && m.CPU.IRQOn }

// MMUEnabled reports whether address translation is active.
func (m *Machine) MMUEnabled() bool { return m.CPU.Ctrl[isa.CtrlMMU]&isa.MMUEnable != 0 }

// FormatB reports the active page-table format.
func (m *Machine) FormatB() bool { return m.CPU.Ctrl[isa.CtrlMMU]&isa.MMUFormatB != 0 }

// TTBR returns the page-table root.
func (m *Machine) TTBR() uint32 { return m.CPU.Ctrl[isa.CtrlTTBR] }

// VBAR returns the vector table base.
func (m *Machine) VBAR() uint32 { return m.CPU.Ctrl[isa.CtrlVBAR] }

// Enter performs exception entry: saves the return address and status,
// switches to kernel mode with interrupts masked, and vectors.
//
// Return-address conventions (shared by every engine):
//   - undef, syscall: address of the following instruction
//   - inst-fault: the faulting (target) address
//   - data-fault: the address of the faulting instruction
//   - irq: the address of the next unexecuted instruction
func (m *Machine) Enter(e isa.Exc, retPC uint32) {
	c := &m.CPU
	c.Ctrl[isa.CtrlEPC] = retPC
	c.Ctrl[isa.CtrlEPSR] = c.PSR()
	c.Kernel = true
	c.IRQOn = false
	c.PC = e.Vector(c.Ctrl[isa.CtrlVBAR])
	m.ExcCount[e]++
}

// EnterMemFault records fault status and enters the abort exception.
func (m *Machine) EnterMemFault(e isa.Exc, code isa.FaultCode, va uint32, write bool, retPC uint32) {
	fsr := uint32(code)
	if write {
		fsr |= isa.FSRWrite
	}
	m.CPU.Ctrl[isa.CtrlFSR] = fsr
	m.CPU.Ctrl[isa.CtrlFAR] = va
	m.Enter(e, retPC)
}

// ERET returns from an exception; it must only be executed in kernel
// mode (engines enforce the privilege check).
func (m *Machine) ERET() {
	c := &m.CPU
	c.PC = c.Ctrl[isa.CtrlEPC]
	c.SetPSR(c.Ctrl[isa.CtrlEPSR])
}

// ReadCtrl implements MRS. The boolean reports whether the access is
// architecturally allowed from the current privilege level.
func (m *Machine) ReadCtrl(r isa.CtrlReg) (uint32, bool) {
	if int(r) >= isa.NumCtrlRegs {
		return 0, false
	}
	switch r {
	case isa.CtrlPSR:
		return m.CPU.PSR(), true
	case isa.CtrlCPUID:
		return m.CPU.Ctrl[r], true
	default:
		if !m.CPU.Kernel {
			return 0, false
		}
		return m.CPU.Ctrl[r], true
	}
}

// WriteCtrl implements MSR; privileged. Writes to translation state
// broadcast TLB invalidations, as the architecture requires explicit
// maintenance to be unnecessary after a root change.
func (m *Machine) WriteCtrl(r isa.CtrlReg, v uint32) bool {
	if int(r) >= isa.NumCtrlRegs || !m.CPU.Kernel {
		return false
	}
	switch r {
	case isa.CtrlCPUID:
		return false // read-only
	case isa.CtrlPSR:
		m.CPU.SetPSR(v)
	case isa.CtrlTTBR, isa.CtrlMMU:
		m.CPU.Ctrl[r] = v
		m.InvalidateAllTLBs()
	default:
		m.CPU.Ctrl[r] = v
	}
	return true
}

// CoprocRead implements CPRD; privileged.
func (m *Machine) CoprocRead(cp, reg uint32) (uint32, bool) {
	if !m.CPU.Kernel || cp >= isa.NumCP || m.Coprocs[cp] == nil {
		return 0, false
	}
	return m.Coprocs[cp].Read(reg)
}

// CoprocWrite implements CPWR; privileged.
func (m *Machine) CoprocWrite(cp, reg, v uint32) bool {
	if !m.CPU.Kernel || cp >= isa.NumCP || m.Coprocs[cp] == nil {
		return false
	}
	return m.Coprocs[cp].Write(reg, v)
}

// NonPrivSupported reports whether LDT/STT exist on this profile (the
// paper: ARM has kernel-mode non-privileged accesses, x86 does not).
func (m *Machine) NonPrivSupported() bool { return m.Profile == ProfileARM }
