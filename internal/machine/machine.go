// Package machine ties the SV32 CPU state, the physical memory bus,
// coprocessors and interrupt wiring into a guest machine that the
// execution engines drive. It owns the parts of the architecture that
// must behave identically across engines: control registers, privilege
// rules, exception entry/return, and TLB-maintenance broadcasting.
package machine

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/mem"
)

// Profile selects the architecture profile, standing in for the ARM and
// x86 guest architectures of the paper. The profiles share the SV32
// encoding but differ in system behaviour: page-table format, whether
// non-privileged access instructions exist, and the coprocessor style.
type Profile uint8

// Profiles.
const (
	ProfileARM Profile = 1 // format-A tables, LDT/STT supported, DACR-style coprocessor
	ProfileX86 Profile = 2 // format-B tables, LDT/STT undefined, FPU-reset coprocessor
)

func (p Profile) String() string {
	switch p {
	case ProfileARM:
		return "arm"
	case ProfileX86:
		return "x86"
	}
	return fmt.Sprintf("profile#%d", uint8(p))
}

// FormatB reports the page-table format implied by the profile.
func (p Profile) FormatB() bool { return p == ProfileX86 }

// Coprocessor is the interface to an attached coprocessor (CPRD/CPWR
// targets). A false result raises an undefined-instruction exception.
type Coprocessor interface {
	Read(reg uint32) (uint32, bool)
	Write(reg uint32, v uint32) bool
}

// TLBListener is notified of guest TLB-maintenance operations so engine
// translation caches can stay coherent. VBAR/TTBR/MMU control writes
// trigger InvalidateAll as well.
type TLBListener interface {
	InvalidatePage(va uint32)
	InvalidateAll()
}

// CPU is the architectural register state.
type CPU struct {
	Regs   [isa.NumRegs]uint32
	PC     uint32
	Flags  isa.Flags
	Kernel bool
	IRQOn  bool
	Ctrl   [isa.NumCtrlRegs]uint32
}

// PSR reconstructs the packed status word.
func (c *CPU) PSR() uint32 {
	v := isa.PackFlags(c.Flags)
	if c.Kernel {
		v |= isa.PSRKernel
	}
	if c.IRQOn {
		v |= isa.PSRIRQOn
	}
	return v
}

// SetPSR unpacks a status word into the live fields.
func (c *CPU) SetPSR(v uint32) {
	c.Flags = isa.UnpackFlags(v)
	c.Kernel = v&isa.PSRKernel != 0
	c.IRQOn = v&isa.PSRIRQOn != 0
}

// MaxHarts bounds the number of cores a platform may host; the
// exclusive monitor tracks one reservation per hart in a fixed array.
const MaxHarts = 8

// Monitor is the global exclusive monitor shared by every hart on a
// bus: one word-granular reservation per hart, armed by LDX and
// consumed by STX. Any store to a monitored word — by any hart —
// clears the covering reservations, which is what makes STX-built
// spinlocks correct. Engines guard the per-store check with Armed, so
// a guest that never executes LDX pays one predictable branch.
type Monitor struct {
	armed uint32 // bitmask of harts holding a reservation
	addr  [MaxHarts]uint32
}

// Armed reports whether any hart holds a reservation.
func (mo *Monitor) Armed() bool { return mo.armed != 0 }

// Arm records a reservation for hart on the word containing pa.
func (mo *Monitor) Arm(hart int, pa uint32) {
	mo.addr[hart] = pa &^ 3
	mo.armed |= 1 << uint(hart)
}

// Clear drops hart's reservation, if any.
func (mo *Monitor) Clear(hart int) { mo.armed &^= 1 << uint(hart) }

// Exclusive reports whether hart's reservation covers pa, consuming
// the reservation either way (STX semantics: one shot per LDX).
func (mo *Monitor) Exclusive(hart int, pa uint32) bool {
	bit := uint32(1) << uint(hart)
	ok := mo.armed&bit != 0 && mo.addr[hart] == pa&^3
	mo.armed &^= bit
	return ok
}

// NoteStore clears every reservation covering the stored word.
func (mo *Monitor) NoteStore(pa uint32) {
	if mo.armed == 0 {
		return
	}
	pa &^= 3
	for h := 0; h < MaxHarts; h++ {
		if mo.armed&(1<<uint(h)) != 0 && mo.addr[h] == pa {
			mo.armed &^= 1 << uint(h)
		}
	}
}

// Machine is one hart of a guest machine: private architectural state
// (registers, control state, TLB listeners, interrupt line) over a
// physical memory bus that may be shared with other harts.
type Machine struct {
	CPU     CPU
	Bus     *mem.Bus
	Profile Profile
	Coprocs [isa.NumCP]Coprocessor

	// HartID is this core's index on the platform; hart 0 is the boot
	// hart. Guests read it from CPUID bits [23:16].
	HartID int

	// Mon is the exclusive monitor, shared by every hart on the bus.
	Mon *Monitor

	irqLine      bool
	Halted       bool
	tlbListeners []TLBListener
	entry        uint32

	// shootPage/shootAll, when wired by the platform, broadcast guest
	// TLB maintenance to every hart's listeners; unwired machines (the
	// single-core default) invalidate locally.
	shootPage func(uint32)
	shootAll  func()

	// TickFn, if set by the platform, is called periodically by engines
	// with a retired-instruction delta; it drives the timer device.
	TickFn func(uint32)

	// Counters shared across engines: exceptions taken by class.
	ExcCount [isa.NumExcs]uint64
}

// New creates a machine with the given RAM size. Devices are attached
// by the platform package.
func New(profile Profile, ramSize uint32) *Machine {
	m := &Machine{Bus: mem.NewBus(ramSize), Profile: profile, Mon: &Monitor{}}
	m.CPU.Ctrl[isa.CtrlCPUID] = isa.CPUIDValue(uint8(profile), 1)
	return m
}

// NewSecondary creates hart number hart on the primary's bus: it
// shares physical memory, the device map, the coprocessors and the
// exclusive monitor, but has its own architectural state. CPUID
// carries the hart id so guest code can dispatch per core.
func NewSecondary(primary *Machine, hart int) *Machine {
	if hart <= 0 || hart >= MaxHarts {
		panic(fmt.Sprintf("machine: secondary hart id %d out of range [1,%d)", hart, MaxHarts))
	}
	m := &Machine{
		Bus:     primary.Bus,
		Profile: primary.Profile,
		Coprocs: primary.Coprocs,
		Mon:     primary.Mon,
		HartID:  hart,
	}
	m.CPU.Ctrl[isa.CtrlCPUID] = isa.CPUIDWithHart(
		isa.CPUIDValue(uint8(primary.Profile), 1), hart)
	return m
}

// SetEntry records the reset entry point; LoadProgram does this on the
// loading hart, and the platform copies it to secondaries.
func (m *Machine) SetEntry(pc uint32) { m.entry = pc }

// Entry returns the recorded reset entry point.
func (m *Machine) Entry() uint32 { return m.entry }

// LoadProgram copies an assembled image into RAM and records its entry
// point for Reset.
func (m *Machine) LoadProgram(p *asm.Program) error {
	for _, s := range p.Segments {
		if err := m.Bus.LoadSegment(s.Addr, s.Data); err != nil {
			return err
		}
	}
	m.entry = p.Entry
	return nil
}

// Reset puts the CPU in the architectural reset state: kernel mode,
// interrupts disabled, MMU off, executing at the program entry point.
func (m *Machine) Reset() {
	cpuid := m.CPU.Ctrl[isa.CtrlCPUID]
	m.CPU = CPU{PC: m.entry, Kernel: true}
	m.CPU.Ctrl[isa.CtrlCPUID] = cpuid
	m.Halted = false
	for i := range m.ExcCount {
		m.ExcCount[i] = 0
	}
	if m.Mon != nil {
		m.Mon.Clear(m.HartID)
	}
	m.InvalidateAllTLBs()
}

// SetShootdown wires cross-hart TLB-shootdown broadcast; the platform
// points every hart's hooks at a loop over all harts' listeners.
func (m *Machine) SetShootdown(page func(uint32), all func()) {
	m.shootPage = page
	m.shootAll = all
}

// ShootdownPage broadcasts a guest TLBI: to every hart when the
// platform wired shootdown, locally otherwise. Engines call this (not
// InvalidatePageTLBs) for guest-initiated maintenance; host-side root
// changes (TTBR/MMU writes) stay hart-local.
func (m *Machine) ShootdownPage(va uint32) {
	if m.shootPage != nil {
		m.shootPage(va)
		return
	}
	m.InvalidatePageTLBs(va)
}

// ShootdownAll broadcasts a guest TLBIA; see ShootdownPage.
func (m *Machine) ShootdownAll() {
	if m.shootAll != nil {
		m.shootAll()
		return
	}
	m.InvalidateAllTLBs()
}

// AddTLBListener registers an engine translation cache for maintenance
// broadcasts.
func (m *Machine) AddTLBListener(l TLBListener) {
	m.tlbListeners = append(m.tlbListeners, l)
}

// ClearTLBListeners drops all registered listeners (engines re-register
// on Reset).
func (m *Machine) ClearTLBListeners() { m.tlbListeners = nil }

// InvalidatePageTLBs broadcasts a single-page invalidation.
func (m *Machine) InvalidatePageTLBs(va uint32) {
	for _, l := range m.tlbListeners {
		l.InvalidatePage(va)
	}
}

// InvalidateAllTLBs broadcasts a full flush.
func (m *Machine) InvalidateAllTLBs() {
	for _, l := range m.tlbListeners {
		l.InvalidateAll()
	}
}

// SetIRQLine drives the external interrupt line (from the interrupt
// controller).
func (m *Machine) SetIRQLine(level bool) { m.irqLine = level }

// IRQLine reports the raw line level.
func (m *Machine) IRQLine() bool { return m.irqLine }

// IRQPending reports whether an interrupt should be taken now.
func (m *Machine) IRQPending() bool { return m.irqLine && m.CPU.IRQOn }

// MMUEnabled reports whether address translation is active.
func (m *Machine) MMUEnabled() bool { return m.CPU.Ctrl[isa.CtrlMMU]&isa.MMUEnable != 0 }

// FormatB reports the active page-table format.
func (m *Machine) FormatB() bool { return m.CPU.Ctrl[isa.CtrlMMU]&isa.MMUFormatB != 0 }

// TTBR returns the page-table root.
func (m *Machine) TTBR() uint32 { return m.CPU.Ctrl[isa.CtrlTTBR] }

// VBAR returns the vector table base.
func (m *Machine) VBAR() uint32 { return m.CPU.Ctrl[isa.CtrlVBAR] }

// Enter performs exception entry: saves the return address and status,
// switches to kernel mode with interrupts masked, and vectors.
//
// Return-address conventions (shared by every engine):
//   - undef, syscall: address of the following instruction
//   - inst-fault: the faulting (target) address
//   - data-fault: the address of the faulting instruction
//   - irq: the address of the next unexecuted instruction
func (m *Machine) Enter(e isa.Exc, retPC uint32) {
	c := &m.CPU
	c.Ctrl[isa.CtrlEPC] = retPC
	c.Ctrl[isa.CtrlEPSR] = c.PSR()
	c.Kernel = true
	c.IRQOn = false
	c.PC = e.Vector(c.Ctrl[isa.CtrlVBAR])
	m.ExcCount[e]++
}

// EnterMemFault records fault status and enters the abort exception.
func (m *Machine) EnterMemFault(e isa.Exc, code isa.FaultCode, va uint32, write bool, retPC uint32) {
	fsr := uint32(code)
	if write {
		fsr |= isa.FSRWrite
	}
	m.CPU.Ctrl[isa.CtrlFSR] = fsr
	m.CPU.Ctrl[isa.CtrlFAR] = va
	m.Enter(e, retPC)
}

// ERET returns from an exception; it must only be executed in kernel
// mode (engines enforce the privilege check).
func (m *Machine) ERET() {
	c := &m.CPU
	c.PC = c.Ctrl[isa.CtrlEPC]
	c.SetPSR(c.Ctrl[isa.CtrlEPSR])
}

// ReadCtrl implements MRS. The boolean reports whether the access is
// architecturally allowed from the current privilege level.
func (m *Machine) ReadCtrl(r isa.CtrlReg) (uint32, bool) {
	if int(r) >= isa.NumCtrlRegs {
		return 0, false
	}
	switch r {
	case isa.CtrlPSR:
		return m.CPU.PSR(), true
	case isa.CtrlCPUID:
		return m.CPU.Ctrl[r], true
	default:
		if !m.CPU.Kernel {
			return 0, false
		}
		return m.CPU.Ctrl[r], true
	}
}

// WriteCtrl implements MSR; privileged. Writes to translation state
// broadcast TLB invalidations, as the architecture requires explicit
// maintenance to be unnecessary after a root change.
func (m *Machine) WriteCtrl(r isa.CtrlReg, v uint32) bool {
	if int(r) >= isa.NumCtrlRegs || !m.CPU.Kernel {
		return false
	}
	switch r {
	case isa.CtrlCPUID:
		return false // read-only
	case isa.CtrlPSR:
		m.CPU.SetPSR(v)
	case isa.CtrlTTBR, isa.CtrlMMU:
		m.CPU.Ctrl[r] = v
		m.InvalidateAllTLBs()
	default:
		m.CPU.Ctrl[r] = v
	}
	return true
}

// CoprocRead implements CPRD; privileged.
func (m *Machine) CoprocRead(cp, reg uint32) (uint32, bool) {
	if !m.CPU.Kernel || cp >= isa.NumCP || m.Coprocs[cp] == nil {
		return 0, false
	}
	return m.Coprocs[cp].Read(reg)
}

// CoprocWrite implements CPWR; privileged.
func (m *Machine) CoprocWrite(cp, reg, v uint32) bool {
	if !m.CPU.Kernel || cp >= isa.NumCP || m.Coprocs[cp] == nil {
		return false
	}
	return m.Coprocs[cp].Write(reg, v)
}

// NonPrivSupported reports whether LDT/STT exist on this profile (the
// paper: ARM has kernel-mode non-privileged accesses, x86 does not).
func (m *Machine) NonPrivSupported() bool { return m.Profile == ProfileARM }
