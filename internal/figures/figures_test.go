package figures

import (
	"context"
	"errors"
	"strings"
	"testing"

	"simbench/internal/bench"
	"simbench/internal/spec"
)

// tiny returns options that make every figure run in well under a
// second per engine-benchmark pair.
func tiny(sb *strings.Builder) Options {
	return Options{Out: sb, Scale: 2_000_000, SpecScale: 10_000, MinIters: 8, Repeats: 1}
}

func TestItersScaling(t *testing.T) {
	o := Options{Scale: 1000, SpecScale: 10, MinIters: 16}
	b, _ := bench.ByName("io.device") // 400M paper iters
	if got := o.Iters(b); got != 400_000 {
		t.Errorf("iters %d", got)
	}
	small, _ := bench.ByName("mem.tlb-evict") // 4M paper iters
	if got := o.Iters(small); got != 4000 {
		t.Errorf("iters %d", got)
	}
	w, _ := spec.ByName("spec.mcf")
	if got := o.Iters(w); got != w.PaperIters/10 {
		t.Errorf("spec iters %d", got)
	}
	// Floor applies.
	o.Scale = 1 << 40
	if got := o.Iters(b); got != 16 {
		t.Errorf("floored iters %d", got)
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"dbt", "interp", "detailed", "virt", "native", "v2.2.0"} {
		e, err := EngineByName(name)
		if err != nil || e == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := EngineByName("qemu"); err == nil {
		t.Error("expected error for unknown engine")
	}
	if len(Engines()) != 5 {
		t.Error("five platforms")
	}
}

func TestFig4And5AreStatic(t *testing.T) {
	var sb strings.Builder
	if err := Fig4(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	if err := Fig5(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Block Chaining", "Hypercall", "Modelled TLB", "VexBoard", "SV32"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	if err := Fig7(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "Fig. 7") != 2 { // one table per guest
		t.Error("expected two guest tables")
	}
	for _, want := range []string{"Small Blocks", "TLB Flush", "qemu-kvm(virt)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestFig7ParallelMatchesSequential runs the Fig. 7 matrix once
// sequentially and once with four workers and requires the rendered
// tables to be byte-identical modulo the timing cells: same titles,
// same row order, same benchmark and iteration columns.
func TestFig7ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	render := func(jobs int) string {
		var sb strings.Builder
		o := tiny(&sb)
		o.Jobs = jobs
		if err := Fig7(o); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	strip := func(out string) string {
		// Drop the timing columns: everything after the iters column.
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) > 2 && f[len(f)-1] != "native" { // data row, not header
				f = f[:len(f)-5]
			}
			kept = append(kept, strings.Join(f, " "))
		}
		return strings.Join(kept, "\n")
	}
	seq, par := render(1), render(4)
	if strip(seq) != strip(par) {
		t.Errorf("parallel table diverges from sequential:\n--- jobs=1\n%s\n--- jobs=4\n%s", seq, par)
	}
}

func TestFig3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	if err := Fig3(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "density(SPEC-like)") {
		t.Error("missing SPEC density column")
	}
	// Every benchmark row present.
	for _, b := range bench.Suite() {
		if !strings.Contains(out, b.Title) {
			t.Errorf("missing row %q", b.Title)
		}
	}
}

// TestFig3HonoursCancellation: a cancelled context must stop the
// density experiment before it runs every serial workload (it used to
// ignore Options.Context entirely) and surface the cancellation.
func TestFig3HonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	o := tiny(&sb)
	o.Context = ctx
	err := Fig3(o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sb.Len() != 0 {
		t.Errorf("cancelled density run still rendered:\n%s", sb.String())
	}
}

// TestFig3SharedProgressSeam: density cells report through the same
// one-line progress format as every other matrix cell.
func TestFig3SharedProgressSeam(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb, progress strings.Builder
	o := tiny(&sb)
	o.Progress = &progress
	if err := Fig3(o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3 arm spec.mcf profile:", "fig3 arm mem.hot profile:"} {
		if !strings.Contains(progress.String(), want) {
			t.Errorf("progress stream missing %q:\n%s", want, progress.String())
		}
	}
}

func TestFig2And8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	if err := Fig2(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	if err := Fig8(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sjeng", "mcf", "SPEC (overall)", "v2.5.0-rc2", "SimBench"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Baselines are exactly 1.0.
	if !strings.Contains(out, "1.000") {
		t.Error("baseline row missing")
	}
}

func TestFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	if err := Fig6(tiny(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Five categories × two guests.
	if got := strings.Count(out, "Fig. 6"); got != 10 {
		t.Errorf("panels = %d, want 10", got)
	}
}
