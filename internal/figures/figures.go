// Package figures regenerates every table and figure of the paper's
// evaluation. The matrix figures (the runtime matrix of Fig. 7, the
// operation-density table of Fig. 3 and the three version sweeps of
// Figs. 2, 6 and 8) are registered declarative specs in
// internal/experiment — this package is thin glue that runs them by
// name, kept so every caller can still say "the paper's Fig. 7". The
// two static tables (Figs. 4 and 5) render live engine and platform
// metadata and stay here: they are facts about the build, not
// experiments with a matrix to schedule.
package figures

import (
	"fmt"
	"runtime"

	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/experiment"
	"simbench/internal/platform"
	"simbench/internal/report"
	"simbench/internal/sched"
)

// Options control experiment scale and output; see experiment.Options.
type Options = experiment.Options

// Engines returns the five evaluation platforms in paper column order:
// QEMU-DBT, SimIt-ARM, Gem5, QEMU-KVM, native.
func Engines() []engine.Engine { return experiment.Engines() }

// EngineByName builds an engine: dbt, interp, detailed, virt, native,
// profile, or a QEMU release tag such as v2.2.0 (a dbt engine so
// configured).
func EngineByName(name string) (engine.Engine, error) { return experiment.EngineByName(name) }

// SchedEngines returns the five evaluation platforms as scheduler
// engine factories, in paper column order.
func SchedEngines() []sched.Engine { return experiment.SchedEngines() }

// The matrix figures: each runs its registered experiment spec.
//
// Fig7 runs the full SimBench suite on every engine for both guest
// profiles and prints the absolute-runtime matrix (kernel seconds);
// Fig3 measures operation densities on the profiling interpreter;
// Fig2, Fig6 and Fig8 sweep the modelled QEMU releases and print
// speedup series against v1.7.0.
func Fig2(o Options) error { return experiment.RunNamed("fig2", o) }
func Fig3(o Options) error { return experiment.RunNamed("fig3", o) }
func Fig6(o Options) error { return experiment.RunNamed("fig6", o) }
func Fig7(o Options) error { return experiment.RunNamed("fig7", o) }
func Fig8(o Options) error { return experiment.RunNamed("fig8", o) }

// Fig4 prints the feature-implementation matrix of the evaluated
// platforms (paper Fig. 4) from live engine metadata.
func Fig4(o Options) error {
	engs := Engines()
	t := report.Table{
		Title:   "Fig. 4 — mechanism implementation per platform",
		Columns: []string{"feature", "qemu-dbt", "simit(interp)", "gem5(detailed)", "qemu-kvm(virt)", "native"},
	}
	get := func(f func(engine.Features) string) []string {
		var cells []string
		for _, e := range engs {
			cells = append(cells, f(e.Features()))
		}
		return cells
	}
	rows := []struct {
		label string
		field func(engine.Features) string
	}{
		{"Execution Model", func(f engine.Features) string { return f.ExecutionModel }},
		{"Memory Access", func(f engine.Features) string { return f.MemoryAccess }},
		{"Code Generation", func(f engine.Features) string { return f.CodeGeneration }},
		{"Control Flow: Inter-Page", func(f engine.Features) string { return f.CtrlFlowInter }},
		{"Control Flow: Intra-Page", func(f engine.Features) string { return f.CtrlFlowIntra }},
		{"Interrupts", func(f engine.Features) string { return f.Interrupts }},
		{"Synchronous Exceptions", func(f engine.Features) string { return f.SyncExceptions }},
		{"Undefined Instruction", func(f engine.Features) string { return f.UndefInsn }},
	}
	for _, r := range rows {
		t.AddRow(append([]string{r.label}, get(r.field)...)...)
	}
	t.Fprint(o.Out)
	return nil
}

// Fig5 prints the host and simulated-platform details (paper Fig. 5).
func Fig5(o Options) error {
	t := report.Table{Title: "Fig. 5 — evaluation platforms", Columns: []string{"property", "value"}}
	t.AddRow("Host OS/arch", runtime.GOOS+"/"+runtime.GOARCH)
	t.AddRow("Host CPUs", fmt.Sprint(runtime.NumCPU()))
	t.AddRow("Go version", runtime.Version())
	t.AddRow("Guest machine", "VexBoard (simulated)")
	t.AddRow("Guest RAM", fmt.Sprintf("%d MiB", core.DefaultRAMSize>>20))
	t.AddRow("Guest ISA", "SV32 (arm-like and x86-like profiles)")
	t.AddRow("Devices", fmt.Sprintf("uart@%#x intc@%#x timer@%#x safedev@%#x benchctl@%#x",
		platform.UARTBase, platform.ICBase, platform.TimerBase, platform.SafeBase, platform.CtlBase))
	t.Fprint(o.Out)
	return nil
}
