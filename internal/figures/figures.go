// Package figures contains the experiment drivers that regenerate
// every table and figure of the paper's evaluation: the full runtime
// matrix (Fig. 7), the operation-density table (Fig. 3), the feature
// matrix (Fig. 4), the platform table (Fig. 5) and the three
// version-sweep figures (Figs. 2, 6, 8). Each driver runs the real
// benchmarks on the real engines and prints the same rows or series
// the paper reports.
package figures

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
	"simbench/internal/platform"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/spec"
	"simbench/internal/stats"
	"simbench/internal/store"
	"simbench/internal/versions"
)

// Options control experiment scale and output.
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Scale divides every SimBench paper iteration count; 1 reproduces
	// the paper's counts (hours of runtime), the CLI default is 2000.
	Scale int64
	// SpecScale divides the SPEC-like workload iteration counts.
	SpecScale int64
	// MinIters floors the scaled iteration count.
	MinIters int64
	// Repeats is the number of times each measurement is taken; the
	// minimum kernel time is reported (standard noise suppression on a
	// shared host).
	Repeats int
	// Progress, when set, receives one line per completed run.
	Progress io.Writer
	// Jobs is the number of matrix cells run concurrently; <=0 means
	// GOMAXPROCS. Concurrent cells share the host, so use 1 when the
	// absolute times themselves are the result rather than a check.
	Jobs int
	// Store, when non-nil, caches completed cells content-addressed —
	// Figs. 2, 6 and 8 share their overlapping sweep cells within one
	// run, and a disk-backed store makes repeated invocations
	// incremental. Each figure's completed matrix is also appended to
	// the store's run history.
	Store *store.Store
	// HistoryLabel overrides the per-figure history label ("fig7",
	// "fig2", ...), so a CLI records every invocation under one label
	// regardless of which driver ran the matrix.
	HistoryLabel string
	// Context cancels the experiment early (nil means Background);
	// cells that never started surface the context error.
	Context context.Context
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 2000
	}
	if o.SpecScale <= 0 {
		o.SpecScale = 20
	}
	if o.MinIters <= 0 {
		o.MinIters = 32
	}
	if o.Repeats <= 0 {
		o.Repeats = 2
	}
}

// Iters returns the scaled iteration count for a benchmark. The
// MinIters floor applies to the micro-benchmarks, whose paper counts
// are in the millions; application workloads have intentionally small
// counts (their kernels do much more per iteration), so they get a
// fixed small floor instead.
func (o *Options) Iters(b *core.Benchmark) int64 {
	o.fill()
	scale, floor := o.Scale, o.MinIters
	if b.Category == spec.CatApplication {
		scale, floor = o.SpecScale, 8
	}
	n := b.PaperIters / scale
	if n < floor {
		n = floor
	}
	return n
}

func (o *Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Engines returns the five evaluation platforms in paper column order:
// QEMU-DBT, SimIt-ARM, Gem5, QEMU-KVM, native.
func Engines() []engine.Engine {
	return []engine.Engine{
		versions.Latest().Engine(), // Fig. 7 used QEMU 2.5.0-rc2
		interp.New(),
		detailed.New(),
		direct.New(direct.ModeVirt),
		direct.New(direct.ModeNative),
	}
}

// EngineByName builds an engine: dbt, interp, detailed, virt, native,
// or a QEMU release tag such as v2.2.0 (a dbt engine so configured).
func EngineByName(name string) (engine.Engine, error) {
	switch name {
	case "dbt":
		return versions.Latest().Engine(), nil
	case "interp":
		return interp.New(), nil
	case "detailed":
		return detailed.New(), nil
	case "virt":
		return direct.New(direct.ModeVirt), nil
	case "native":
		return direct.New(direct.ModeNative), nil
	}
	if r, err := versions.ByName(name); err == nil {
		return r.Engine(), nil
	}
	return nil, fmt.Errorf("unknown engine %q (want dbt|interp|detailed|virt|native|<release>)", name)
}

// SchedEngines returns the five evaluation platforms as scheduler
// engine factories, in paper column order.
func SchedEngines() []sched.Engine {
	specs := make([]sched.Engine, 0, 5)
	for _, name := range []string{"dbt", "interp", "detailed", "virt", "native"} {
		name := name
		specs = append(specs, sched.Engine{
			Name: name,
			New:  func() engine.Engine { e, _ := EngineByName(name); return e },
		})
	}
	return specs
}

// releaseEngines adapts the modelled QEMU releases to scheduler
// engine factories.
func releaseEngines(rels []versions.Release) []sched.Engine {
	specs := make([]sched.Engine, len(rels))
	for i, rel := range rels {
		rel := rel
		specs[i] = sched.Engine{Name: rel.Name, New: func() engine.Engine { return rel.Engine() }}
	}
	return specs
}

// run expands a matrix and executes it on the scheduler with the
// Options' parallelism, wiring completed cells into the progress
// stream. Results come back in matrix order, together with a per-cell
// noise lookup over the store's prior history (nil without a store, or
// when the caller does not render per-cell measurements) — built from
// history as it stood before this run is appended, so a measurement
// never vouches for its own normality. Only a figure that prints
// absolute times per cell (Fig. 7) asks for the lookup: the sweep
// figures print speedup ratios, and parsing history plus running the
// per-cell bootstrap for them would be pure waste.
func (o *Options) run(fig string, m sched.Matrix, wantNoise bool) ([]sched.Result, func(report.Record) *stats.Band) {
	s := sched.Scheduler{Workers: o.Jobs, Warmup: true}
	if o.Store != nil {
		s.Store = o.Store
	}
	if o.Progress != nil {
		s.Progress = func(r sched.Result) { sched.FprintProgress(o.Progress, fig, r) }
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := s.Run(ctx, m.Jobs())
	var noise func(report.Record) *stats.Band
	if o.Store != nil {
		if wantNoise {
			if runs, err := o.Store.History(); err == nil && len(runs) > 0 {
				noise = store.NoiseLookup(runs, store.StatGate{})
			} else if err != nil {
				// Unreadable history only costs the ± annotations, but
				// silently is how noise consumers go blind.
				fmt.Fprintf(os.Stderr, "%s: %v\n", fig, err)
			}
		}
		label := fig
		if o.HistoryLabel != "" {
			label = o.HistoryLabel
		}
		if err := o.Store.AppendHistory(label, results); err != nil {
			// History loss must be visible even without -v: a silent
			// gap here means simbase later baselines a stale run.
			fmt.Fprintf(os.Stderr, "%s: %v\n", fig, err)
		}
	}
	return results, noise
}

// Fig7 runs the full SimBench suite on every engine for both guest
// profiles and prints the absolute-runtime matrix of the paper's
// Fig. 7 (kernel seconds, plus the iteration count as the methodology
// requires). Cells run Options.Jobs at a time; the table is collated
// in matrix order, so parallel and sequential runs render identically
// apart from the measured times. With a store whose history already
// knows a cell, its measurement prints with a ± noise band. Failed
// cells render as ERR in their table position and the failures come
// back as one aggregated error.
func Fig7(o Options) error {
	o.fill()
	arches := arch.All()
	benches := bench.Suite()
	engs := SchedEngines()
	results, noise := o.run("fig7", sched.Matrix{
		Arches:  arches,
		Benches: benches,
		Engines: engs,
		Iters:   o.Iters,
		Repeats: o.Repeats,
	}, true)
	archNames := make([]string, len(arches))
	for i, sup := range arches {
		archNames[i] = sup.Name()
	}
	mt := report.MatrixTable{
		Title: func(a string) string {
			return fmt.Sprintf("Fig. 7 — SimBench runtimes, %s guest (kernel seconds; scale 1/%d)", a, o.Scale)
		},
		EngineCols: []string{"qemu-dbt", "simit(interp)", "gem5(detailed)", "qemu-kvm(virt)", "native"},
		Arches:     archNames,
		Benches:    benches,
		BenchLabel: func(b *core.Benchmark) string { return b.Title },
		Iters:      o.Iters,
		Noise:      noise,
	}
	mt.Fprint(o.Out, results)
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	return nil
}

// Fig3 measures operation densities on the profiling interpreter: for
// each SimBench benchmark its own density, and for the SPEC-like suite
// the density of the same tested operation across the aggregated
// workloads — the paper's Fig. 3 table.
func Fig3(o Options) error {
	o.fill()
	sup := arch.ARM{}

	// Aggregate the SPEC-like suite once.
	var specResults []*core.Result
	for _, w := range spec.Suite() {
		r := core.NewRunner(interp.NewProfiling(), sup)
		res, err := r.Run(w, o.Iters(w))
		if err != nil {
			return fmt.Errorf("fig3 spec %s: %w", w.Name, err)
		}
		specResults = append(specResults, res)
		o.progress("fig3 spec %s done", w.Name)
	}
	specAgg := report.Aggregate(specResults)

	t := report.Table{
		Title:   fmt.Sprintf("Fig. 3 — benchmarks, iterations and operation density (scale 1/%d)", o.Scale),
		Columns: []string{"category", "benchmark", "paper iters", "density(SimBench)", "density(SPEC-like)"},
	}
	for _, b := range bench.Suite() {
		r := core.NewRunner(interp.NewProfiling(), sup)
		res, err := r.Run(b, o.Iters(b))
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", b.Name, err)
		}
		specAgg.Benchmark = b
		specDensity := 0.0
		if specAgg.Stats.Instructions > 0 {
			specDensity = float64(b.TestedOps(specAgg)) / float64(specAgg.Stats.Instructions)
		}
		t.AddRow(string(b.Category), b.Title, fmt.Sprint(b.PaperIters),
			report.Density(res.OpDensity()), report.Density(specDensity))
		o.progress("fig3 %s done", b.Name)
	}
	t.Fprint(o.Out)
	return nil
}

// Fig4 prints the feature-implementation matrix of the evaluated
// platforms (paper Fig. 4) from live engine metadata.
func Fig4(o Options) error {
	o.fill()
	engs := Engines()
	t := report.Table{
		Title:   "Fig. 4 — mechanism implementation per platform",
		Columns: []string{"feature", "qemu-dbt", "simit(interp)", "gem5(detailed)", "qemu-kvm(virt)", "native"},
	}
	get := func(f func(engine.Features) string) []string {
		var cells []string
		for _, e := range engs {
			cells = append(cells, f(e.Features()))
		}
		return cells
	}
	rows := []struct {
		label string
		field func(engine.Features) string
	}{
		{"Execution Model", func(f engine.Features) string { return f.ExecutionModel }},
		{"Memory Access", func(f engine.Features) string { return f.MemoryAccess }},
		{"Code Generation", func(f engine.Features) string { return f.CodeGeneration }},
		{"Control Flow: Inter-Page", func(f engine.Features) string { return f.CtrlFlowInter }},
		{"Control Flow: Intra-Page", func(f engine.Features) string { return f.CtrlFlowIntra }},
		{"Interrupts", func(f engine.Features) string { return f.Interrupts }},
		{"Synchronous Exceptions", func(f engine.Features) string { return f.SyncExceptions }},
		{"Undefined Instruction", func(f engine.Features) string { return f.UndefInsn }},
	}
	for _, r := range rows {
		t.AddRow(append([]string{r.label}, get(r.field)...)...)
	}
	t.Fprint(o.Out)
	return nil
}

// Fig5 prints the host and simulated-platform details (paper Fig. 5).
func Fig5(o Options) error {
	o.fill()
	t := report.Table{Title: "Fig. 5 — evaluation platforms", Columns: []string{"property", "value"}}
	t.AddRow("Host OS/arch", runtime.GOOS+"/"+runtime.GOARCH)
	t.AddRow("Host CPUs", fmt.Sprint(runtime.NumCPU()))
	t.AddRow("Go version", runtime.Version())
	t.AddRow("Guest machine", "VexBoard (simulated)")
	t.AddRow("Guest RAM", fmt.Sprintf("%d MiB", core.DefaultRAMSize>>20))
	t.AddRow("Guest ISA", "SV32 (arm-like and x86-like profiles)")
	t.AddRow("Devices", fmt.Sprintf("uart@%#x intc@%#x timer@%#x safedev@%#x benchctl@%#x",
		platform.UARTBase, platform.ICBase, platform.TimerBase, platform.SafeBase, platform.CtlBase))
	t.Fprint(o.Out)
	return nil
}

// Fig2 sweeps the SPEC-like suite across the modelled QEMU releases
// (arm guest) and prints the sjeng-like, mcf-like and overall-geomean
// speedup series relative to v1.7.0 — the paper's motivating Fig. 2.
func Fig2(o Options) error {
	o.fill()
	rels := versions.All()
	workloads := spec.Suite()
	results, _ := o.run("fig2", sched.Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: workloads,
		Engines: releaseEngines(rels),
		Iters:   o.Iters,
		Repeats: o.Repeats,
	}, false)
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("fig2: %w", err)
	}

	// Matrix order is workload-major, release-minor, so per-workload
	// appends land in release order.
	times := make(map[string][]time.Duration) // workload -> per release
	for _, r := range results {
		times[r.Job.Bench.Name] = append(times[r.Job.Bench.Name], r.Kernel)
	}

	series := []report.Series{{Name: "sjeng"}, {Name: "SPEC (overall)"}, {Name: "mcf"}}
	for i := range rels {
		var speedups []float64
		for _, w := range workloads {
			speedups = append(speedups, report.Speedup(times[w.Name][0], times[w.Name][i]))
		}
		series[0].Points = append(series[0].Points, report.Speedup(times["spec.sjeng"][0], times["spec.sjeng"][i]))
		series[1].Points = append(series[1].Points, report.Geomean(speedups))
		series[2].Points = append(series[2].Points, report.Speedup(times["spec.mcf"][0], times["spec.mcf"][i]))
	}
	report.FprintSeries(o.Out,
		fmt.Sprintf("Fig. 2 — SPEC-like speedup across QEMU releases (baseline v1.7.0; scale 1/%d)", o.SpecScale),
		versions.Names(), series)
	return nil
}

// Fig6 sweeps the SimBench suite across the modelled QEMU releases for
// both guest profiles, printing one speedup series per benchmark,
// grouped by category — the paper's Fig. 6 panels.
func Fig6(o Options) error {
	o.fill()
	rels := versions.All()
	arches := arch.All()
	benches := bench.Suite()
	results, _ := o.run("fig6", sched.Matrix{
		Arches:  arches,
		Benches: benches,
		Engines: releaseEngines(rels),
		Iters:   o.Iters,
		Repeats: o.Repeats,
	}, false)
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	block := len(benches) * len(rels)
	for ai, sup := range arches {
		perBench := make(map[string][]time.Duration)
		for _, r := range results[ai*block : (ai+1)*block] {
			perBench[r.Job.Bench.Name] = append(perBench[r.Job.Bench.Name], r.Kernel)
		}
		for _, cat := range core.Categories() {
			var series []report.Series
			for _, b := range bench.Suite() {
				if b.Category != cat {
					continue
				}
				s := report.Series{Name: b.Title}
				for i := range rels {
					s.Points = append(s.Points, report.Speedup(perBench[b.Name][0], perBench[b.Name][i]))
				}
				series = append(series, s)
			}
			report.FprintSeries(o.Out,
				fmt.Sprintf("Fig. 6 — %s, %s guest (speedup vs v1.7.0; scale 1/%d)", cat, sup.Name(), o.Scale),
				versions.Names(), series)
		}
	}
	return nil
}

// Fig8 prints the geometric-mean speedup of the SPEC-like suite and of
// SimBench across the modelled releases (paper Fig. 8).
func Fig8(o Options) error {
	o.fill()
	rels := versions.All()
	workloads := append(append([]*core.Benchmark{}, spec.Suite()...), bench.Suite()...)
	results, _ := o.run("fig8", sched.Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: workloads,
		Engines: releaseEngines(rels),
		Iters:   o.Iters,
		Repeats: o.Repeats,
	}, false)
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("fig8: %w", err)
	}

	// Per-workload appends land in release order (matrix order is
	// workload-major, release-minor).
	times := make(map[string][]time.Duration)
	for _, r := range results {
		times[r.Job.Bench.Name] = append(times[r.Job.Bench.Name], r.Kernel)
	}

	spec8 := report.Series{Name: "SPEC"}
	simb8 := report.Series{Name: "SimBench"}
	for i := range rels {
		var ss, bs []float64
		for _, w := range spec.Suite() {
			ss = append(ss, report.Speedup(times[w.Name][0], times[w.Name][i]))
		}
		for _, b := range bench.Suite() {
			bs = append(bs, report.Speedup(times[b.Name][0], times[b.Name][i]))
		}
		spec8.Points = append(spec8.Points, report.Geomean(ss))
		simb8.Points = append(simb8.Points, report.Geomean(bs))
	}
	report.FprintSeries(o.Out,
		fmt.Sprintf("Fig. 8 — geomean speedup across QEMU releases (baseline v1.7.0; scales 1/%d spec, 1/%d simbench)",
			o.SpecScale, o.Scale),
		versions.Names(), []report.Series{spec8, simb8})
	return nil
}
