package spec

import (
	"testing"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/dbt"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
)

func engines() []engine.Engine {
	return []engine.Engine{
		interp.New(),
		dbt.NewDefault(),
		detailed.New(),
		direct.New(direct.ModeVirt),
		direct.New(direct.ModeNative),
	}
}

// TestWorkloadsRunAndAgree runs every workload on every engine (both
// profiles) with small iteration counts and checks that the
// guest-reported checksum agrees across engines — the workloads' form
// of differential validation.
func TestWorkloadsRunAndAgree(t *testing.T) {
	const iters = 20
	for _, sup := range arch.All() {
		for _, w := range Suite() {
			var want uint32
			var wantSet bool
			for _, eng := range engines() {
				r := core.NewRunner(eng, sup)
				res, err := r.Run(w, iters)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", w.Name, eng.Name(), sup.Name(), err)
				}
				if len(res.GuestResults) == 0 {
					t.Fatalf("%s/%s: no checksum reported", w.Name, eng.Name())
				}
				got := res.GuestResults[len(res.GuestResults)-1]
				if !wantSet {
					want, wantSet = got, true
				} else if got != want {
					t.Errorf("%s/%s/%s: checksum %#x, want %#x (cross-engine mismatch)",
						w.Name, eng.Name(), sup.Name(), got, want)
				}
				if res.Stats.Instructions == 0 {
					t.Errorf("%s/%s: no instructions", w.Name, eng.Name())
				}
			}
		}
	}
}

// TestSuiteComposition checks the workload list.
func TestSuiteComposition(t *testing.T) {
	ws := Suite()
	if len(ws) != 10 {
		t.Fatalf("suite has %d workloads, want 10", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate %s", w.Name)
		}
		seen[w.Name] = true
		if w.Category != CatApplication {
			t.Errorf("%s: category %s", w.Name, w.Category)
		}
	}
	if _, err := ByName("spec.mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("spec.nope"); err == nil {
		t.Error("expected error")
	}
}

// TestWorkloadsExerciseOSEvents checks the workloads generate the
// OS-like background activity (timer interrupts, syscalls) that makes
// their operation densities non-trivial.
func TestWorkloadsExerciseOSEvents(t *testing.T) {
	sup := arch.ARM{}
	r := core.NewRunner(interp.NewProfiling(), sup)
	agg := engine.Stats{}
	var irqs, svcs uint64
	for _, w := range Suite() {
		res, err := r.Run(w, 30)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		agg.Add(res.Stats)
		irqs += res.Exc[3+1+1] // isa.ExcIRQ == 5
		svcs += res.Exc[2]
	}
	if agg.BranchIndirectIntra+agg.BranchIndirectInter == 0 {
		t.Error("no indirect branches across SPEC-like suite")
	}
	if agg.BranchDirectIntra == 0 || agg.BranchDirectInter == 0 {
		t.Error("missing direct branch classes")
	}
	if svcs == 0 {
		t.Error("no syscalls across suite")
	}
	if agg.MemReads == 0 || agg.MemWrites == 0 {
		t.Error("no memory traffic")
	}
	_ = irqs // timer IRQs depend on run length; not asserted at tiny scale
}
