// Package spec provides the SPEC-like application workload suite used
// as the comparator in the paper's evaluation (Figs. 2, 3 and 8). The
// real SPEC CPU2006 binaries cannot be run here — there is no guest OS
// or compiler — so each workload is a synthetic guest program with the
// instruction-mix signature of the SPEC INT program it is named after
// (mcf is pointer-chasing and TLB-bound, sjeng is branchy search, and
// so on). What the experiments need from SPEC is exactly this mix
// diversity: workloads whose performance is dominated by different
// simulator mechanisms, plus operation densities orders of magnitude
// below the SimBench micro-benchmarks. See DESIGN.md for the
// substitution rationale.
//
// Workloads are expressed as core.Benchmark values (category
// CatApplication) so the same runner, timing protocol and reporting
// pipeline apply.
package spec

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/core"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/platform"
)

// CatApplication marks application (SPEC-like) workloads.
const CatApplication core.Category = "Application"

// Data-region layout shared by the workloads.
const (
	dataVA    = 0x01000000
	dataPages = 1024 // 4 MiB footprint
	dataSize  = dataPages * isa.PageSize
)

// Suite returns the ten SPEC-INT-like workloads.
func Suite() []*core.Benchmark {
	return []*core.Benchmark{
		MCF(),
		Sjeng(),
		GCC(),
		Bzip2(),
		Gobmk(),
		Hmmer(),
		Libquantum(),
		Perlbench(),
		Astar(),
		Xalancbmk(),
	}
}

// ByName returns the named workload.
func ByName(name string) (*core.Benchmark, error) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("spec: unknown workload %q", name)
}

// preamble emits the common workload prologue: MMU on with the data
// region mapped, an OS-like timer tick, and skip-style fault handlers
// (so the occasional fault behaves like demand paging, not a crash).
// R11 is loaded with the iteration count.
func preamble(env *core.Env) {
	a := env.A
	env.MMU = true
	env.Map(dataVA, core.BenchPhysBase, dataSize, true, false)
	core.EmitPreamble(env)
	core.EmitLoadIters(env, isa.R11)

	// OS-like timer tick: fire every 50k instruction-clock ticks.
	a.LoadImm32(isa.R0, platform.ICBase)
	a.MOVI(isa.R1, 1<<device.LineTimer)
	a.STW(isa.R1, isa.R0, device.ICEnable)
	a.LoadImm32(isa.R0, platform.TimerBase)
	a.LoadImm32(isa.R1, 50_000)
	a.STW(isa.R1, isa.R0, device.TimerCompare)
	a.MOVI(isa.R1, 1)
	a.STW(isa.R1, isa.R0, device.TimerCtrl)
	a.MOVI(isa.R0, int32(isa.PSRKernel|isa.PSRIRQOn))
	a.MSR(isa.CtrlPSR, isa.R0)
}

// epilogue emits END, the checksum report (from reg), the halt, the
// vector table and the common handlers.
func epilogue(env *core.Env, checksum isa.Reg) {
	a := env.A
	core.EmitEnd(env, isa.R0)
	core.EmitResult(env, checksum, isa.R0)
	core.EmitHalt(env)
	core.EmitVectors(env, core.Handlers{
		Syscall:   "os_svc",
		DataFault: "os_dfault",
		IRQ:       "os_tick",
	})
	// "OS" syscall: trivial service, return.
	a.Label("os_svc")
	a.ERET()
	// Demand-paging-style data fault: skip the faulting instruction.
	// Like any real handler, it preserves the interrupted context
	// (scratch goes to the kernel scratch control register).
	a.Label("os_dfault")
	a.MSR(isa.CtrlSCR0, isa.R1)
	a.MRS(isa.R1, isa.CtrlEPC)
	a.ADDI(isa.R1, isa.R1, 4)
	a.MSR(isa.CtrlEPC, isa.R1)
	a.MRS(isa.R1, isa.CtrlSCR0)
	a.ERET()
	// Timer tick: rearm compare = count + interval, ack the line. The
	// handler is transparent: both temporaries are saved and restored.
	a.Label("os_tick")
	a.MSR(isa.CtrlSCR0, isa.R1)
	a.MSR(isa.CtrlSCR1, isa.R2)
	a.LoadImm32(isa.R1, platform.TimerBase)
	a.LDW(isa.R2, isa.R1, device.TimerCount)
	a.ADDI(isa.R2, isa.R2, 25_000)
	a.ADDI(isa.R2, isa.R2, 25_000)
	a.STW(isa.R2, isa.R1, device.TimerCompare)
	a.LoadImm32(isa.R1, platform.ICBase)
	a.MOVI(isa.R2, device.LineTimer)
	a.STW(isa.R2, isa.R1, device.ICClear)
	a.MRS(isa.R2, isa.CtrlSCR1)
	a.MRS(isa.R1, isa.CtrlSCR0)
	a.ERET()
}

func workload(name, specName, desc string, iters int64, build func(*core.Env) error) *core.Benchmark {
	return &core.Benchmark{
		Name:        name,
		Title:       specName,
		Category:    CatApplication,
		Description: desc,
		PaperIters:  iters,
		TestedOps:   func(*core.Result) uint64 { return 0 },
		Build:       build,
	}
}

// MCF is spec.mcf: pointer chasing through a page-spanning permutation
// — memory-latency and TLB bound, the workload the paper shows losing
// ~30% across QEMU versions.
func MCF() *core.Benchmark {
	return workload("spec.mcf", "429.mcf-like", "pointer chasing over a 4 MiB permutation",
		60_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			// Init: next[i] = (i + 40503) * 65539 mod N scattered over
			// all pages; N = dataPages*64 nodes, node stride 64 bytes.
			const nodes = dataPages * 64
			a.LoadImm32(isa.R9, dataVA)
			a.MOVI(isa.R2, 0) // i
			a.LoadImm32(isa.R5, nodes)
			a.Label("init")
			a.ADDI(isa.R3, isa.R2, 12345)
			a.LoadImm32(isa.R4, 65539)
			a.MUL(isa.R3, isa.R3, isa.R4)
			a.LoadImm32(isa.R4, nodes-1)
			a.AND(isa.R3, isa.R3, isa.R4) // nodes is a power of two
			// store next-index at node i (stride 64)
			a.SHLI(isa.R6, isa.R2, 6)
			a.ADD(isa.R6, isa.R6, isa.R9)
			a.STW(isa.R3, isa.R6, 0)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMP(isa.R2, isa.R5)
			a.B(isa.CondLO, "init")

			core.EmitBegin(env, isa.R0)
			a.MOVI(isa.R2, 0) // current node index
			a.MOVI(isa.R8, 0) // checksum
			a.Label("kloop")
			// Chase 64 links per iteration.
			for i := 0; i < 64; i++ {
				a.SHLI(isa.R6, isa.R2, 6)
				a.ADD(isa.R6, isa.R6, isa.R9)
				a.LDW(isa.R2, isa.R6, 0)
				a.ADD(isa.R8, isa.R8, isa.R2)
			}
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// Sjeng is spec.sjeng: branchy game-tree evaluation — data-dependent
// conditional branches over small tables, compute bound. The paper
// shows it gaining ~10-30% from translator improvements.
func Sjeng() *core.Benchmark {
	return workload("spec.sjeng", "458.sjeng-like", "branchy search with data-dependent conditions",
		120_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			a.LoadImm32(isa.R9, dataVA)
			a.LoadImm32(isa.R2, 0xACE1) // LFSR state
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			for round := 0; round < 24; round++ {
				// LFSR step.
				a.ANDI(isa.R3, isa.R2, 1)
				a.SHRI(isa.R2, isa.R2, 1)
				a.CMPI(isa.R3, 0)
				a.B(isa.CondEQ, lbl("noxor", round))
				a.LoadImm32(isa.R4, 0xB400)
				a.XOR(isa.R2, isa.R2, isa.R4)
				a.Label(lbl("noxor", round))
				// Data-dependent three-way branch.
				a.ANDI(isa.R3, isa.R2, 7)
				a.CMPI(isa.R3, 3)
				a.B(isa.CondLT, lbl("low", round))
				a.CMPI(isa.R3, 6)
				a.B(isa.CondGE, lbl("high", round))
				a.ADDI(isa.R8, isa.R8, 5) // mid
				a.B(isa.CondAL, lbl("join", round))
				a.Label(lbl("low", round))
				a.SUBI(isa.R8, isa.R8, 1)
				a.B(isa.CondAL, lbl("join", round))
				a.Label(lbl("high", round))
				a.XORI(isa.R8, isa.R8, 0x11)
				a.Label(lbl("join", round))
				// Small table lookup.
				a.ANDI(isa.R5, isa.R2, 0xFF)
				a.SHLI(isa.R5, isa.R5, 2)
				a.ADD(isa.R5, isa.R5, isa.R9)
				a.LDW(isa.R6, isa.R5, 0)
				a.ADD(isa.R8, isa.R8, isa.R6)
			}
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// GCC is spec.gcc: many small functions across several pages with a
// mix of direct and indirect calls — front-end/control-flow bound with
// a code footprint.
func GCC() *core.Benchmark {
	return workload("spec.gcc", "403.gcc-like", "call-heavy pass pipeline over multi-page code",
		50_000, func(env *core.Env) error {
			a := env.A
			const passes = 12
			preamble(env)
			a.LA(isa.R10, "passtab")
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			// Direct calls to each pass...
			for i := 0; i < passes; i++ {
				a.BL(lbl("pass", i))
			}
			// ...then an indirect sweep through the pass table.
			a.MOVI(isa.R2, 0)
			a.Label("indir")
			a.SHLI(isa.R3, isa.R2, 2)
			a.ADD(isa.R3, isa.R3, isa.R10)
			a.LDW(isa.R3, isa.R3, 0)
			a.BLR(isa.R3)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, passes)
			a.B(isa.CondLO, "indir")
			// An occasional "OS interaction".
			a.SVC(3)
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)

			// Pass bodies spread over pages (2 KiB apart).
			for i := 0; i < passes; i++ {
				a.Org(uint32(0x10000 + i*0x800))
				a.Label(lbl("pass", i))
				a.ADDI(isa.R8, isa.R8, int32(i+1))
				a.MULI(isa.R8, isa.R8, 3)
				a.XORI(isa.R8, isa.R8, int32(i*7&0xFFFF))
				a.RET()
			}
			a.Org(0x10000 + passes*0x800)
			a.Label("passtab")
			for i := 0; i < passes; i++ {
				a.WordAddr(lbl("pass", i))
			}
			return nil
		})
}

// Bzip2 is spec.bzip2: byte-granular compression-style processing over
// a buffer — hot-path memory with byte accesses.
func Bzip2() *core.Benchmark {
	return workload("spec.bzip2", "401.bzip2-like", "byte-stream run-length processing",
		40_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			a.LoadImm32(isa.R9, dataVA)
			// Seed a 4 KiB byte buffer.
			a.MOVI(isa.R2, 0)
			a.MOVI(isa.R3, 37)
			a.Label("seed")
			a.ADD(isa.R4, isa.R2, isa.R9)
			a.STB(isa.R3, isa.R4, 0)
			a.MULI(isa.R3, isa.R3, 13)
			a.ADDI(isa.R3, isa.R3, 7)
			a.ANDI(isa.R3, isa.R3, 0xFF)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, 4096)
			a.B(isa.CondLO, "seed")

			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			// Scan 512 bytes, counting runs and folding values.
			a.MOVI(isa.R2, 0)
			a.MOVI(isa.R5, 0) // previous byte
			a.Label("scan")
			a.ADD(isa.R4, isa.R2, isa.R9)
			a.LDB(isa.R3, isa.R4, 0)
			a.CMP(isa.R3, isa.R5)
			a.B(isa.CondNE, "newrun")
			a.ADDI(isa.R8, isa.R8, 2) // run continues
			a.B(isa.CondAL, "cont")
			a.Label("newrun")
			a.ADD(isa.R8, isa.R8, isa.R3)
			a.Label("cont")
			a.MOV(isa.R5, isa.R3)
			// Write a transformed byte back.
			a.XORI(isa.R6, isa.R3, 0x5A)
			a.ADD(isa.R4, isa.R2, isa.R9)
			a.STB(isa.R6, isa.R4, 2048)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, 512)
			a.B(isa.CondLO, "scan")
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// Gobmk is spec.gobmk: switch-style indirect dispatch over
// pseudo-random opcodes — indirect-branch bound.
func Gobmk() *core.Benchmark {
	return workload("spec.gobmk", "445.gobmk-like", "jump-table dispatch over random opcodes",
		60_000, func(env *core.Env) error {
			a := env.A
			const handlers = 8
			preamble(env)
			a.LA(isa.R10, "jmptab")
			a.LoadImm32(isa.R2, 0xBEEF)
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			for d := 0; d < 16; d++ {
				// xorshift-ish opcode selection
				a.SHLI(isa.R3, isa.R2, 7)
				a.XOR(isa.R2, isa.R2, isa.R3)
				a.SHRI(isa.R3, isa.R2, 9)
				a.XOR(isa.R2, isa.R2, isa.R3)
				a.ANDI(isa.R3, isa.R2, handlers-1)
				a.SHLI(isa.R3, isa.R3, 2)
				a.ADD(isa.R3, isa.R3, isa.R10)
				a.LDW(isa.R3, isa.R3, 0)
				a.BLR(isa.R3)
			}
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)

			for i := 0; i < handlers; i++ {
				a.Label(lbl("h", i))
				a.ADDI(isa.R8, isa.R8, int32(i*3+1))
				a.RET()
			}
			a.Align(16)
			a.Label("jmptab")
			for i := 0; i < handlers; i++ {
				a.WordAddr(lbl("h", i))
			}
			return nil
		})
}

// Hmmer is spec.hmmer: regular unrolled multiply-accumulate over
// arrays — straight-line ALU throughput.
func Hmmer() *core.Benchmark {
	return workload("spec.hmmer", "456.hmmer-like", "unrolled multiply-accumulate sweeps",
		80_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			a.LoadImm32(isa.R9, dataVA)
			a.MOVI(isa.R8, 1)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			a.MOVI(isa.R2, 0)
			a.Label("row")
			for u := 0; u < 8; u++ {
				a.SHLI(isa.R3, isa.R2, 2)
				a.ADD(isa.R3, isa.R3, isa.R9)
				a.LDW(isa.R4, isa.R3, int32(u*4))
				a.MULI(isa.R4, isa.R4, int32(u+3))
				a.ADD(isa.R8, isa.R8, isa.R4)
				a.MULI(isa.R8, isa.R8, 31)
				a.ADDI(isa.R8, isa.R8, 7)
			}
			a.ADDI(isa.R2, isa.R2, 8)
			a.CMPI(isa.R2, 128)
			a.B(isa.CondLO, "row")
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// Libquantum is spec.libquantum: streaming sequential sweeps over a
// large array — bandwidth-style access with regular page changes.
func Libquantum() *core.Benchmark {
	return workload("spec.libquantum", "462.libquantum-like", "streaming word sweeps over 4 MiB",
		300, func(env *core.Env) error {
			a := env.A
			preamble(env)
			a.LoadImm32(isa.R9, dataVA)
			a.LoadImm32(isa.R12, dataVA+dataSize)
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			a.MOV(isa.R2, isa.R9)
			a.Label("sweep")
			a.LDW(isa.R3, isa.R2, 0)
			a.XORI(isa.R3, isa.R3, 0x40)
			a.STW(isa.R3, isa.R2, 0)
			a.ADD(isa.R8, isa.R8, isa.R3)
			a.ADDI(isa.R2, isa.R2, 64) // one access per cache line
			a.CMP(isa.R2, isa.R12)
			a.B(isa.CondLO, "sweep")
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// Perlbench is spec.perlbench: a bytecode-interpreter dispatch loop
// with occasional system calls and rare inline-cache code patching
// (the only SPEC-like source of self-modifying code, mirroring the
// tiny nonzero code-generation density of real SPEC in Fig. 3).
func Perlbench() *core.Benchmark {
	return workload("spec.perlbench", "400.perlbench-like", "bytecode dispatch with syscalls and rare code patching",
		40_000, func(env *core.Env) error {
			a := env.A
			const ops = 6
			preamble(env)
			a.LA(isa.R10, "optab")
			a.LA(isa.R12, "icache_site")
			nop := isa.Encode(isa.Inst{Op: isa.OpNOP})
			a.LoadImm32(isa.R7, nop)
			a.LoadImm32(isa.R2, 0x1357)
			a.MOVI(isa.R8, 0)
			a.MOVI(isa.R5, 0) // dispatch counter
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			for d := 0; d < 12; d++ {
				a.MULI(isa.R2, isa.R2, 75)
				a.ADDI(isa.R2, isa.R2, 74)
				a.ANDI(isa.R3, isa.R2, ops-1)
				a.SHLI(isa.R3, isa.R3, 2)
				a.ADD(isa.R3, isa.R3, isa.R10)
				a.LDW(isa.R3, isa.R3, 0)
				a.BLR(isa.R3)
				a.ADDI(isa.R5, isa.R5, 1)
			}
			// Every 1024 iterations: patch the inline-cache site and
			// make a syscall (I/O flush).
			a.ANDI(isa.R3, isa.R11, 1023)
			a.CMPI(isa.R3, 0)
			a.B(isa.CondNE, "nopatch")
			a.STW(isa.R7, isa.R12, 0)
			a.SVC(4)
			a.Label("nopatch")
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)

			for i := 0; i < ops; i++ {
				a.Label(lbl("op", i))
				if i == 0 {
					a.Label("icache_site")
					a.NOP()
				}
				a.ADDI(isa.R8, isa.R8, int32(2*i+1))
				a.XORI(isa.R8, isa.R8, int32(i))
				a.RET()
			}
			a.Align(16)
			a.Label("optab")
			for i := 0; i < ops; i++ {
				a.WordAddr(lbl("op", i))
			}
			return nil
		})
}

// Astar is spec.astar: alternating pointer chasing and branch-heavy
// cost comparisons — a latency/branch mix.
func Astar() *core.Benchmark {
	return workload("spec.astar", "473.astar-like", "pathfinding mix of chasing and comparisons",
		50_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			const nodes = 1 << 14
			a.LoadImm32(isa.R9, dataVA)
			a.MOVI(isa.R2, 0)
			a.Label("init")
			a.LoadImm32(isa.R4, 2654435)
			a.MUL(isa.R3, isa.R2, isa.R4)
			a.ADDI(isa.R3, isa.R3, 1013)
			a.LoadImm32(isa.R4, nodes-1)
			a.AND(isa.R3, isa.R3, isa.R4)
			a.SHLI(isa.R6, isa.R2, 4) // stride 16
			a.ADD(isa.R6, isa.R6, isa.R9)
			a.STW(isa.R3, isa.R6, 0)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, nodes)
			a.B(isa.CondLO, "init")

			a.MOVI(isa.R2, 0)
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			for s := 0; s < 16; s++ {
				a.SHLI(isa.R6, isa.R2, 4)
				a.ADD(isa.R6, isa.R6, isa.R9)
				a.LDW(isa.R2, isa.R6, 0)
				// Cost comparison: branch on node parity.
				a.ANDI(isa.R3, isa.R2, 1)
				a.CMPI(isa.R3, 0)
				a.B(isa.CondEQ, lbl("even", s))
				a.ADDI(isa.R8, isa.R8, 3)
				a.B(isa.CondAL, lbl("next", s))
				a.Label(lbl("even", s))
				a.SUBI(isa.R8, isa.R8, 1)
				a.Label(lbl("next", s))
			}
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

// Xalancbmk is spec.xalancbmk: byte scanning with classification
// branches — string processing.
func Xalancbmk() *core.Benchmark {
	return workload("spec.xalancbmk", "483.xalancbmk-like", "byte classification scanning",
		30_000, func(env *core.Env) error {
			a := env.A
			preamble(env)
			a.LoadImm32(isa.R9, dataVA)
			// Seed 2 KiB of "text".
			a.MOVI(isa.R2, 0)
			a.MOVI(isa.R3, 65)
			a.Label("seed")
			a.ADD(isa.R4, isa.R2, isa.R9)
			a.STB(isa.R3, isa.R4, 0)
			a.ADDI(isa.R3, isa.R3, 7)
			a.ANDI(isa.R3, isa.R3, 0x7F)
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, 2048)
			a.B(isa.CondLO, "seed")

			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)
			a.Label("kloop")
			a.MOVI(isa.R2, 0)
			a.Label("scan")
			a.ADD(isa.R4, isa.R2, isa.R9)
			a.LDB(isa.R3, isa.R4, 0)
			a.CMPI(isa.R3, 60) // '<'
			a.B(isa.CondEQ, "tag")
			a.CMPI(isa.R3, 32)
			a.B(isa.CondLO, "ctrl")
			a.ADDI(isa.R8, isa.R8, 1) // plain text
			a.B(isa.CondAL, "done")
			a.Label("tag")
			a.ADDI(isa.R8, isa.R8, 16)
			a.B(isa.CondAL, "done")
			a.Label("ctrl")
			a.XORI(isa.R8, isa.R8, 0x21)
			a.Label("done")
			a.ADDI(isa.R2, isa.R2, 1)
			a.CMPI(isa.R2, 512)
			a.B(isa.CondLO, "scan")
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "kloop")
			epilogue(env, isa.R8)
			return nil
		})
}

func lbl(prefix string, i int) asm.Label { return asm.Label(fmt.Sprintf("%s%d", prefix, i)) }
