package enginetest

import (
	"fmt"
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// SMP differential tests: the same multi-hart guest program runs on
// every engine and the interleaving-robust outcome must agree — every
// hart's final register file, the console, and the exception counts.
// Instruction counts are deliberately NOT compared at N>1: the DBT
// interleaves harts at block boundaries (overshooting the quantum), so
// spin loops legitimately retire different totals per engine. The
// programs below are written so that every hart's final registers are
// deterministic regardless of interleaving (scratch registers are
// zeroed before HALT, spin reads end on the deterministic final
// value).

const (
	smpLockAddr = 0x9000
	smpCtrAddr  = 0x9004
	smpGoAddr   = 0x9008
	smpSlotBase = 0x9040 // one word per hart
	smpDoneBase = 0x9080 // one word per hart
)

// runSMPAll executes prog on every engine under an N-core platform.
func runSMPAll(t *testing.T, prog *asm.Program, cores int) map[string]Outcome {
	t.Helper()
	out := make(map[string]Outcome)
	for _, eng := range Engines() {
		o, err := RunSMP(eng, machine.ProfileARM, prog, 50_000_000, cores)
		if err != nil {
			t.Fatalf("%s: %v (pc=%#x)", eng.Name(), err, o.FinalPC)
		}
		out[eng.Name()] = o
	}
	return out
}

// diffSMP compares the interleaving-robust outcome fields against the
// interp reference and returns the first divergence, or "".
func diffSMP(outcomes map[string]Outcome) string {
	ref, ok := outcomes["interp"]
	if !ok {
		return "no reference outcome"
	}
	for name, o := range outcomes {
		if name == "interp" {
			continue
		}
		if len(o.HartRegs) != len(ref.HartRegs) {
			return fmt.Sprintf("%s: hart count %d != %d", name, len(o.HartRegs), len(ref.HartRegs))
		}
		for h := range ref.HartRegs {
			if o.HartRegs[h] != ref.HartRegs[h] {
				return fmt.Sprintf("%s: hart %d registers differ\n  got  %v\n  want %v",
					name, h, o.HartRegs[h], ref.HartRegs[h])
			}
		}
		if o.Exc != ref.Exc {
			return fmt.Sprintf("%s: exception counts differ: got %v want %v", name, o.Exc, ref.Exc)
		}
		if o.Console != ref.Console {
			return fmt.Sprintf("%s: console differs: got %q want %q", name, o.Console, ref.Console)
		}
	}
	return ""
}

// emitHartDispatch emits the common SMP prologue: hart ID into R0,
// per-hart stacks, primary falls through and secondaries spin on the
// start barrier before joining the shared body at "work".
func emitHartDispatch(a *asm.Assembler) {
	a.MRS(isa.R0, isa.CtrlCPUID)
	a.SHRI(isa.R0, isa.R0, isa.CPUIDHartShift)
	a.ANDI(isa.R0, isa.R0, 0xFF)
	a.LoadImm32(isa.SP, 0x8000)
	a.MOVI(isa.R1, 0x400)
	a.MUL(isa.R1, isa.R0, isa.R1)
	a.SUB(isa.SP, isa.SP, isa.R1)
	a.CMPI(isa.R0, 0)
	a.B(isa.CondEQ, "primary")
	// Secondary: wait for the primary's start barrier.
	a.LoadImm32(isa.R1, smpGoAddr)
	a.Label("wait_go")
	a.LDW(isa.R2, isa.R1, 0)
	a.CMPI(isa.R2, 0)
	a.B(isa.CondEQ, "wait_go")
	a.B(isa.CondAL, "work")
	// Primary: release the workers, then do its own share.
	a.Label("primary")
	a.LoadImm32(isa.R1, smpGoAddr)
	a.MOVI(isa.R2, 1)
	a.STW(isa.R2, isa.R1, 0)
}

// emitHartEpilogue emits the common SMP ending after "work" returns to
// the label "done_split": scratch registers are zeroed so every hart's
// final register file is interleaving-independent, secondaries raise
// their done flag and HALT, and the primary joins every secondary
// before running tail (which ends in HALT).
func emitHartEpilogue(a *asm.Assembler, cores int, tail func()) {
	for _, r := range []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R9, isa.R10, isa.R11} {
		a.MOVI(r, 0)
	}
	a.CMPI(isa.R0, 0)
	a.B(isa.CondEQ, "join")
	// Secondary: done flag at smpDoneBase + 4*hart, then park.
	a.LoadImm32(isa.R1, smpDoneBase)
	a.MOVI(isa.R2, 4)
	a.MUL(isa.R2, isa.R0, isa.R2)
	a.ADD(isa.R1, isa.R1, isa.R2)
	a.MOVI(isa.R2, 1)
	a.STW(isa.R2, isa.R1, 0)
	a.MOVI(isa.R1, 0)
	a.MOVI(isa.R2, 0)
	a.HALT()
	a.Label("join")
	for h := 1; h < cores; h++ {
		a.LoadImm32(isa.R1, uint32(smpDoneBase+4*h))
		a.Label(asm.Label(fmt.Sprintf("join%d", h)))
		a.LDW(isa.R2, isa.R1, 0)
		a.CMPI(isa.R2, 0)
		a.B(isa.CondEQ, asm.Label(fmt.Sprintf("join%d", h)))
	}
	a.MOVI(isa.R1, 0)
	a.MOVI(isa.R2, 0)
	tail()
	a.HALT()
}

// lockCounterProg builds the LDX/STX differential program: every hart
// increments one shared counter iters times under an exclusive-pair
// spinlock; the primary joins and loads the total into R8. The final
// counter is iters*cores on every legal interleaving.
func lockCounterProg(t *testing.T, cores int, iters int32) *asm.Program {
	return assemble(t, func(a *asm.Assembler) {
		emitHartDispatch(a)
		a.Label("work")
		a.LoadImm32(isa.R9, smpLockAddr)
		a.LoadImm32(isa.R10, smpCtrAddr)
		a.MOVI(isa.R11, iters)
		a.Label("loop")
		a.Label("acq")
		a.LDX(isa.R1, isa.R9)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "acq")
		a.MOVI(isa.R1, 1)
		a.STX(isa.R2, isa.R1, isa.R9)
		a.CMPI(isa.R2, 0)
		a.B(isa.CondNE, "acq")
		a.LDW(isa.R3, isa.R10, 0)
		a.ADDI(isa.R3, isa.R3, 1)
		a.STW(isa.R3, isa.R10, 0)
		a.MOVI(isa.R2, 0)
		a.STW(isa.R2, isa.R9, 0) // release
		a.SUBI(isa.R11, isa.R11, 1)
		a.CMPI(isa.R11, 0)
		a.B(isa.CondNE, "loop")
		emitHartEpilogue(a, cores, func() {
			a.LoadImm32(isa.R9, smpCtrAddr)
			a.LDW(isa.R8, isa.R9, 0)
			a.MOVI(isa.R9, 0)
		})
	})
}

// slotSumProg builds the plain-store differential program: hart i adds
// (i+1) to its private slot iters times; the primary joins and sums the
// slots into R8 = iters * cores*(cores+1)/2.
func slotSumProg(t *testing.T, cores int, iters int32) *asm.Program {
	return assemble(t, func(a *asm.Assembler) {
		emitHartDispatch(a)
		a.Label("work")
		a.LoadImm32(isa.R9, smpSlotBase)
		a.MOVI(isa.R1, 4)
		a.MUL(isa.R1, isa.R0, isa.R1)
		a.ADD(isa.R9, isa.R9, isa.R1) // slot address
		a.ADDI(isa.R10, isa.R0, 1)    // per-hart increment
		a.MOVI(isa.R11, iters)
		a.Label("loop")
		a.LDW(isa.R3, isa.R9, 0)
		a.ADD(isa.R3, isa.R3, isa.R10)
		a.STW(isa.R3, isa.R9, 0)
		a.SUBI(isa.R11, isa.R11, 1)
		a.CMPI(isa.R11, 0)
		a.B(isa.CondNE, "loop")
		emitHartEpilogue(a, cores, func() {
			a.LoadImm32(isa.R9, smpSlotBase)
			a.MOVI(isa.R8, 0)
			for h := 0; h < cores; h++ {
				a.LDW(isa.R3, isa.R9, int32(4*h))
				a.ADD(isa.R8, isa.R8, isa.R3)
			}
			a.MOVI(isa.R3, 0)
			a.MOVI(isa.R9, 0)
		})
	})
}

func TestSMPDifferentialLockCounter(t *testing.T) {
	const iters = 200
	for _, cores := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dcores", cores), func(t *testing.T) {
			out := runSMPAll(t, lockCounterProg(t, cores, iters), cores)
			if d := diffSMP(out); d != "" {
				t.Fatal(d)
			}
			want := uint32(iters * cores)
			if got := out["interp"].HartRegs[0][isa.R8]; got != want {
				t.Errorf("counter = %d, want %d", got, want)
			}
		})
	}
}

func TestSMPDifferentialSlotSum(t *testing.T) {
	const iters = 300
	for _, cores := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dcores", cores), func(t *testing.T) {
			out := runSMPAll(t, slotSumProg(t, cores, iters), cores)
			if d := diffSMP(out); d != "" {
				t.Fatal(d)
			}
			want := uint32(iters * cores * (cores + 1) / 2)
			if got := out["interp"].HartRegs[0][isa.R8]; got != want {
				t.Errorf("slot sum = %d, want %d", got, want)
			}
		})
	}
}

// TestSMPSingleCoreMatchesRun pins the compatibility contract: a
// 1-core RunSMP is exactly Run — same registers, same instruction
// count (the scheduler quantum must not perturb single-core retire
// streams).
func TestSMPSingleCoreMatchesRun(t *testing.T) {
	prog := lockCounterProg(t, 1, 100)
	for _, eng := range Engines() {
		single, err := Run(eng, machine.ProfileARM, prog, 50_000_000)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		smp, err := RunSMP(eng, machine.ProfileARM, prog, 50_000_000, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if single.Regs != smp.Regs || single.Insns != smp.Insns {
			t.Errorf("%s: 1-core RunSMP diverges from Run", eng.Name())
		}
	}
}
