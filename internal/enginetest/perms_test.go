package enginetest

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// buildPermProgram: MMU on with a read-only page and a kernel-only
// page; verify that a write to the read-only page data-faults with the
// write bit in FSR, a read succeeds, and an LDT (user-privilege load)
// to the kernel-only page faults while a plain kernel load does not.
func buildPermProgram(t *testing.T) *asm.Program {
	t.Helper()
	const (
		roVA    = 0x02000000 // mapped read-only
		kernVA  = 0x02001000 // mapped kernel-only, writable
		roPA    = 0x20000
		kernPA  = 0x21000
		l2Base2 = 0x84000
		ttbrB   = 0x80000
	)
	a := asm.New()
	a.Label("_start")
	a.LoadImm32(isa.SP, 0x70000)
	a.LA(isa.R0, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R0)
	a.LoadImm32(isa.R0, ttbrB)
	a.MSR(isa.CtrlTTBR, isa.R0)
	a.MOVI(isa.R1, int32(isa.MMUEnable))
	a.MSR(isa.CtrlMMU, isa.R1)

	a.MOVI(isa.R8, 0) // fault bitmap
	a.LoadImm32(isa.R9, roVA)
	a.LoadImm32(isa.R10, kernVA)

	// 1. Read from the RO page: allowed.
	a.LDW(isa.R2, isa.R9, 0)
	// 2. Write to the RO page: permission fault, FSR write bit.
	a.MOVI(isa.R7, 1) // expected fault tag
	a.STW(isa.R2, isa.R9, 0)
	// 3. Kernel load from the kernel-only page: allowed.
	a.LDW(isa.R3, isa.R10, 0)
	// 4. Non-privileged load from the kernel-only page: faults (arm).
	a.MOVI(isa.R7, 2)
	a.LDT(isa.R4, isa.R10, 0)
	a.HALT()

	a.Org(0x400)
	a.Label("vectors")
	a.HALT()
	a.HALT()
	a.HALT()
	a.HALT()
	a.B(isa.CondAL, "dfh")
	a.HALT()
	// Handler: R8 |= R7 << (4*faults_so_far); verify FSR code.
	a.Label("dfh")
	a.MRS(isa.R1, isa.CtrlFSR)
	a.ANDI(isa.R1, isa.R1, 0xFF)
	a.CMPI(isa.R1, int32(isa.FaultPermission))
	a.B(isa.CondEQ, "permok")
	a.MOVI(isa.R8, 0xBAD)
	a.HALT()
	a.Label("permok")
	a.SHLI(isa.R8, isa.R8, 4)
	a.OR(isa.R8, isa.R8, isa.R7)
	a.MRS(isa.R1, isa.CtrlEPC)
	a.ADDI(isa.R1, isa.R1, 4)
	a.MSR(isa.CtrlEPC, isa.R1)
	a.ERET()

	// Page tables.
	a.Org(ttbrB)
	a.Word(0 | 1 | 1<<2) // identity section, writable
	for i := 1; i < 32; i++ {
		a.Word(0)
	}
	a.Word(l2Base2 | 2) // coarse
	a.Org(l2Base2)
	a.Word(roPA | 1)          // read-only page (no W bit)
	a.Word(kernPA | 1<<2 | 1) // kernel-only writable page (no U bit)

	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPermissionFaultsAllEngines: the permission model must agree
// across every engine, including FSR contents.
func TestPermissionFaultsAllEngines(t *testing.T) {
	prog := buildPermProgram(t)
	outcomes, err := RunAll(machine.ProfileARM, prog, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(outcomes); d != "" {
		t.Fatal(d)
	}
	ref := outcomes["interp"]
	// Two permission faults, tagged 1 (RO write) then 2 (LDT).
	if ref.Regs[isa.R8] != 0x12 {
		t.Errorf("fault bitmap %#x, want 0x12", ref.Regs[isa.R8])
	}
	if ref.Exc[isa.ExcDataFault] != 2 {
		t.Errorf("data faults %d, want 2", ref.Exc[isa.ExcDataFault])
	}
}

// TestROPageReadAfterWriteFault: a faulting write must not alter the
// read-only page on any engine.
func TestROPageReadAfterWriteFault(t *testing.T) {
	prog := buildPermProgram(t)
	for _, eng := range Engines() {
		o, err := Run(eng, machine.ProfileARM, prog, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		// R2 reloaded the page contents (zero) and the write faulted;
		// if the write had landed, the page value would still be zero
		// here, so instead check the fault count as the witness.
		if o.Exc[isa.ExcDataFault] != 2 {
			t.Errorf("%s: faults %d", eng.Name(), o.Exc[isa.ExcDataFault])
		}
	}
}
