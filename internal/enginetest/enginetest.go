// Package enginetest provides cross-engine differential testing
// helpers: the same guest program is run on every execution engine and
// the architectural outcomes (register file, exception counts, console
// output, memory regions) must agree. The fast interpreter is the
// reference; any divergence is a bug in one of the engines.
package enginetest

import (
	"fmt"
	"math/rand"

	"simbench/internal/asm"
	"simbench/internal/engine"
	"simbench/internal/engine/dbt"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// Engines returns one instance of every execution engine.
func Engines() []engine.Engine {
	return []engine.Engine{
		interp.New(),
		dbt.NewDefault(),
		detailed.New(),
		direct.New(direct.ModeVirt),
		direct.New(direct.ModeNative),
	}
}

// Outcome captures the architectural result of a run.
type Outcome struct {
	Regs    [isa.NumRegs]uint32
	Exc     [isa.NumExcs]uint64
	Console string
	Insns   uint64
	Stats   engine.Stats
	Err     error
	FinalPC uint32

	// HartRegs holds every hart's register file (index = hart ID);
	// Regs aliases hart 0's for single-core compatibility.
	HartRegs [][isa.NumRegs]uint32
}

// Run executes prog on eng under a fresh single-core platform and
// returns the outcome.
func Run(eng engine.Engine, profile machine.Profile, prog *asm.Program, limit uint64) (Outcome, error) {
	return RunSMP(eng, profile, prog, limit, 1)
}

// RunSMP executes prog on eng under a fresh N-core platform. Scalar
// outcome fields (Regs, Exc, FinalPC) describe hart 0; HartRegs has
// every hart's register file.
func RunSMP(eng engine.Engine, profile machine.Profile, prog *asm.Program, limit uint64, cores int) (Outcome, error) {
	p := platform.NewSMP(profile, 4<<20, cores)
	if err := p.LoadProgram(prog); err != nil {
		return Outcome{}, err
	}
	p.Reset()
	st, err := eng.Run(p.Harts(), limit)
	o := Outcome{
		Regs:    p.M.CPU.Regs,
		Exc:     p.M.ExcCount,
		Console: p.ConsoleString(),
		Insns:   st.Instructions,
		Stats:   st,
		Err:     err,
		FinalPC: p.M.CPU.PC,
	}
	for _, h := range p.Harts() {
		o.HartRegs = append(o.HartRegs, h.CPU.Regs)
	}
	return o, err
}

// RunAll executes prog on every engine and returns outcomes keyed by
// engine name.
func RunAll(profile machine.Profile, prog *asm.Program, limit uint64) (map[string]Outcome, error) {
	out := make(map[string]Outcome)
	for _, eng := range Engines() {
		o, err := Run(eng, profile, prog, limit)
		if err != nil {
			return nil, fmt.Errorf("%s: %w (pc=%#x)", eng.Name(), err, o.FinalPC)
		}
		out[eng.Name()] = o
	}
	return out, nil
}

// Diff compares every outcome against the reference (interp) and
// returns a description of the first divergence, or "".
func Diff(outcomes map[string]Outcome) string {
	ref, ok := outcomes["interp"]
	if !ok {
		return "no reference outcome"
	}
	for name, o := range outcomes {
		if name == "interp" {
			continue
		}
		if o.Regs != ref.Regs {
			return fmt.Sprintf("%s: registers differ\n  got  %v\n  want %v", name, o.Regs, ref.Regs)
		}
		if o.Exc != ref.Exc {
			return fmt.Sprintf("%s: exception counts differ: got %v want %v", name, o.Exc, ref.Exc)
		}
		if o.Console != ref.Console {
			return fmt.Sprintf("%s: console differs: got %q want %q", name, o.Console, ref.Console)
		}
		if o.Insns != ref.Insns {
			return fmt.Sprintf("%s: instruction count differs: got %d want %d", name, o.Insns, ref.Insns)
		}
	}
	return ""
}

// dataBase is the scratch page random programs may access.
const dataBase = 0x9000

// RandomProgram generates a terminating random program exercising ALU
// operations, flags, forward branches, calls and scratch-page memory
// accesses. Control flow only moves forward, so termination is
// structural.
func RandomProgram(r *rand.Rand, n int) (*asm.Program, error) {
	a := asm.New()
	// Seed registers with random values; R12 is the data base, SP and
	// LR are left for calls.
	for reg := isa.R0; reg <= isa.R10; reg++ {
		a.LoadImm32(reg, r.Uint32())
	}
	a.LoadImm32(isa.R12, dataBase)

	aluR := []func(rd, ra, rb isa.Reg){a.ADD, a.SUB, a.AND, a.OR, a.XOR, a.SHL, a.SHR, a.SRA, a.MUL}
	aluI := []func(rd, ra isa.Reg, imm int32){a.ADDI, a.SUBI, a.ANDI, a.ORI, a.XORI, a.MULI}
	conds := []isa.Cond{isa.CondEQ, isa.CondNE, isa.CondLT, isa.CondGE, isa.CondGT,
		isa.CondLE, isa.CondLO, isa.CondHS, isa.CondHI, isa.CondLS, isa.CondMI,
		isa.CondPL, isa.CondVS, isa.CondVC, isa.CondAL}

	reg := func() isa.Reg { return isa.Reg(r.Intn(11)) } // R0..R10

	for i := 0; i < n; i++ {
		a.Label(asm.Label(fmt.Sprintf("L%d", i)))
		switch r.Intn(10) {
		case 0, 1, 2:
			aluR[r.Intn(len(aluR))](reg(), reg(), reg())
		case 3, 4:
			aluI[r.Intn(len(aluI))](reg(), reg(), int32(r.Intn(65536)-32768)&0x7FFF)
		case 5:
			if r.Intn(2) == 0 {
				a.CMP(reg(), reg())
			} else {
				a.CMPI(reg(), int32(r.Intn(32768)))
			}
		case 6:
			// Forward conditional branch.
			target := i + 1 + r.Intn(n-i)
			a.B(conds[r.Intn(len(conds))], asm.Label(fmt.Sprintf("L%d", target)))
		case 7:
			a.LDW(reg(), isa.R12, int32(r.Intn(256))*4)
		case 8:
			a.STW(reg(), isa.R12, int32(r.Intn(256))*4)
		case 9:
			if r.Intn(2) == 0 {
				a.MOVI(reg(), int32(r.Intn(65536)))
			} else {
				a.MOVT(reg(), int32(r.Intn(65536)))
			}
		}
	}
	a.Label(asm.Label(fmt.Sprintf("L%d", n)))
	// Fold memory into registers so stores are observable.
	for w := 0; w < 8; w++ {
		a.LDW(isa.Reg(w), isa.R12, int32(w*4))
	}
	a.HALT()
	return a.Assemble()
}
