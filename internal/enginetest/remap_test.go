package enginetest

import (
	"math/rand"
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// Hand-built format-A page-table constants for the remap test. The
// tables are assembled directly into the guest image so every engine
// sees the identical initial state.
const (
	ttbrBase  = 0x80000 // L1 table (16 KiB aligned)
	l2Base    = 0x84000 // coarse table for the test window
	remapVA   = 0x02000000
	codePA1   = 0x10000
	codePA2   = 0x11000
	entSect   = 1
	entCoarse = 2
	entPage   = 1
	entW      = 1 << 2
)

// buildRemapProgram emits a program that:
//  1. enables the MMU with VA 0x02000000 -> codePA1 (fn returns 1),
//  2. calls through the mapping (expects 1),
//  3. rewrites the PTE to point at codePA2 (fn returns 2) and TLBIs,
//  4. calls again (expects 2),
//  5. reports acc = first*16 + second.
func buildRemapProgram(t *testing.T) *asm.Program {
	t.Helper()
	a := asm.New()
	a.Label("_start")
	a.LoadImm32(isa.SP, 0x70000)
	a.LA(isa.R0, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R0)
	a.LoadImm32(isa.R0, ttbrBase)
	a.MSR(isa.CtrlTTBR, isa.R0)
	a.MOVI(isa.R1, int32(isa.MMUEnable))
	a.MSR(isa.CtrlMMU, isa.R1)

	a.LoadImm32(isa.R10, remapVA)
	// First call: R9 = 1.
	a.BLR(isa.R10)
	a.MOV(isa.R4, isa.R9)
	// Rewrite the PTE: l2Base[0] = codePA2 | W | page, then TLBI.
	a.LoadImm32(isa.R2, l2Base)
	a.LoadImm32(isa.R3, codePA2|entW|entPage)
	a.STW(isa.R3, isa.R2, 0)
	a.TLBI(isa.R10)
	// Second call: R9 = 2.
	a.BLR(isa.R10)
	// acc = first*16 + second.
	a.SHLI(isa.R4, isa.R4, 4)
	a.ADD(isa.R4, isa.R4, isa.R9)
	a.HALT()

	a.Org(0x400)
	a.Label("vectors")
	for i := 0; i < 6; i++ {
		a.HALT()
	}

	// The two versions of the function, at their physical homes.
	a.Org(codePA1)
	a.MOVI(isa.R9, 1)
	a.RET()
	a.Org(codePA2)
	a.MOVI(isa.R9, 2)
	a.RET()

	// Page tables, assembled as data. L1[0]: identity section for low
	// memory (covers code, stack, tables). L1[32]: coarse -> l2Base.
	// Remaining L1 entries stay zero (invalid) in fresh RAM.
	a.Org(ttbrBase)
	a.Word(0 | entSect | entW) // section 0 -> 0, writable
	for i := 1; i < 32; i++ {
		a.Word(0)
	}
	a.Word(l2Base | entCoarse) // VA 0x02000000..0x020FFFFF
	a.Org(l2Base)
	a.Word(codePA1 | entW | entPage) // initial mapping

	return mustAssembleProg(t, a)
}

func mustAssembleProg(t *testing.T, a *asm.Assembler) *asm.Program {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCodePageRemapAllEngines verifies that every engine honours a
// guest remap of an executable page followed by TLBI: translated-code
// caches, jump caches, chains and flat translation tables must all
// re-resolve the virtual address to the new physical page.
func TestCodePageRemapAllEngines(t *testing.T) {
	prog := buildRemapProgram(t)
	for _, eng := range Engines() {
		t.Run(eng.Name(), func(t *testing.T) {
			p := platform.New(machine.ProfileARM, 4<<20)
			if err := p.M.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			p.M.Reset()
			if _, err := eng.Run(p.Harts(), 1_000_000); err != nil {
				t.Fatalf("%v (pc=%#x)", err, p.M.CPU.PC)
			}
			if got := p.M.CPU.Regs[isa.R4]; got != 0x12 {
				t.Errorf("acc = %#x, want 0x12 (first call 1, second call 2)", got)
			}
		})
	}
}

// TestRandomExceptionPrograms extends the differential tests with
// randomly interleaved system calls and undefined instructions under a
// shared counting handler: trap entry/exit paths must agree everywhere.
func TestRandomExceptionPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		a := asm.New()
		a.Label("_start")
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R8, 0)
		n := 10 + r.Intn(60)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				a.SVC(int32(r.Intn(100)))
			case 1:
				a.UD()
			case 2:
				a.ADDI(isa.R8, isa.R8, int32(r.Intn(100)))
			case 3:
				a.XORI(isa.R8, isa.R8, int32(r.Intn(65536)))
			}
		}
		a.HALT()
		a.Org(0x1000)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "h_undef")
		a.B(isa.CondAL, "h_svc")
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("h_svc")
		a.ADDI(isa.R8, isa.R8, 1)
		a.ERET()
		a.Label("h_undef")
		a.ADDI(isa.R8, isa.R8, 2)
		a.ERET()

		prog := mustAssembleProg(t, a)
		outcomes, err := RunAll(machine.ProfileARM, prog, 1_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := Diff(outcomes); d != "" {
			t.Fatalf("trial %d: %s", trial, d)
		}
	}
}

// TestConsoleOrderingUnderTraps checks UART output interleaved with
// exceptions is identical across engines (device ordering is part of
// the architectural contract).
func TestConsoleOrderingUnderTraps(t *testing.T) {
	a := asm.New()
	a.Label("_start")
	a.LA(isa.R1, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R1)
	a.LoadImm32(isa.R2, platform.UARTBase)
	for i := 0; i < 5; i++ {
		a.MOVI(isa.R3, int32('a'+i))
		a.STW(isa.R3, isa.R2, 0)
		a.SVC(0)
	}
	a.HALT()
	a.Org(0x1000)
	a.Label("vectors")
	a.HALT()
	a.HALT()
	a.B(isa.CondAL, "h")
	a.HALT()
	a.HALT()
	a.HALT()
	a.Label("h")
	a.MOVI(isa.R4, int32('!'))
	a.STW(isa.R4, isa.R2, 0)
	a.ERET()

	prog := mustAssembleProg(t, a)
	outcomes, err := RunAll(machine.ProfileARM, prog, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(outcomes); d != "" {
		t.Fatal(d)
	}
	if got := outcomes["interp"].Console; got != "a!b!c!d!e!" {
		t.Errorf("console %q", got)
	}
}
