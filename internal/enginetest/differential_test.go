package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

func assemble(t *testing.T, build func(a *asm.Assembler)) *asm.Program {
	t.Helper()
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func checkAll(t *testing.T, profile machine.Profile, prog *asm.Program) map[string]Outcome {
	t.Helper()
	outcomes, err := RunAll(profile, prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(outcomes); d != "" {
		t.Fatal(d)
	}
	return outcomes
}

func TestGoldenFibonacci(t *testing.T) {
	prog := assemble(t, func(a *asm.Assembler) {
		a.MOVI(isa.R1, 0)
		a.MOVI(isa.R2, 1)
		a.MOVI(isa.R3, 30) // iterations
		a.Label("loop")
		a.ADD(isa.R4, isa.R1, isa.R2)
		a.MOV(isa.R1, isa.R2)
		a.MOV(isa.R2, isa.R4)
		a.SUBI(isa.R3, isa.R3, 1)
		a.CMPI(isa.R3, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	})
	for _, profile := range []machine.Profile{machine.ProfileARM, machine.ProfileX86} {
		t.Run(profile.String(), func(t *testing.T) {
			out := checkAll(t, profile, prog)
			if got := out["interp"].Regs[isa.R2]; got != 1346269 {
				t.Errorf("fib = %d", got)
			}
		})
	}
}

func TestGoldenMemcpyChecksum(t *testing.T) {
	prog := assemble(t, func(a *asm.Assembler) {
		// Fill src with a pattern, copy to dst, checksum dst.
		a.LoadImm32(isa.R1, 0x9000) // src
		a.LoadImm32(isa.R2, 0xA000) // dst
		a.MOVI(isa.R3, 256)         // words
		a.MOVI(isa.R4, 0x1234)      // pattern seed
		a.MOV(isa.R5, isa.R1)
		a.MOV(isa.R6, isa.R3)
		a.Label("fill")
		a.STW(isa.R4, isa.R5, 0)
		a.MULI(isa.R4, isa.R4, 17)
		a.ADDI(isa.R4, isa.R4, 3)
		a.ADDI(isa.R5, isa.R5, 4)
		a.SUBI(isa.R6, isa.R6, 1)
		a.CMPI(isa.R6, 0)
		a.B(isa.CondNE, "fill")
		a.MOV(isa.R5, isa.R1)
		a.MOV(isa.R7, isa.R2)
		a.MOV(isa.R6, isa.R3)
		a.Label("copy")
		a.LDW(isa.R8, isa.R5, 0)
		a.STW(isa.R8, isa.R7, 0)
		a.ADDI(isa.R5, isa.R5, 4)
		a.ADDI(isa.R7, isa.R7, 4)
		a.SUBI(isa.R6, isa.R6, 1)
		a.CMPI(isa.R6, 0)
		a.B(isa.CondNE, "copy")
		a.MOVI(isa.R9, 0)
		a.MOV(isa.R7, isa.R2)
		a.MOV(isa.R6, isa.R3)
		a.Label("sum")
		a.LDW(isa.R8, isa.R7, 0)
		a.XOR(isa.R9, isa.R9, isa.R8)
		a.ADDI(isa.R7, isa.R7, 4)
		a.SUBI(isa.R6, isa.R6, 1)
		a.CMPI(isa.R6, 0)
		a.B(isa.CondNE, "sum")
		a.HALT()
	})
	checkAll(t, machine.ProfileARM, prog)
}

func TestGoldenExceptionMix(t *testing.T) {
	prog := assemble(t, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R5, 0)
		a.MOVI(isa.R6, 8)
		a.Label("loop")
		a.SVC(1)
		a.UD()
		a.SUBI(isa.R6, isa.R6, 1)
		a.CMPI(isa.R6, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
		a.Org(0x800)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "handler")
		a.B(isa.CondAL, "handler")
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("handler")
		a.ADDI(isa.R5, isa.R5, 1)
		a.ERET()
	})
	out := checkAll(t, machine.ProfileARM, prog)
	if got := out["interp"].Regs[isa.R5]; got != 16 {
		t.Errorf("handler ran %d times, want 16", got)
	}
}

func TestGoldenConsole(t *testing.T) {
	prog := assemble(t, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, platform.UARTBase)
		for _, c := range "SimBench!" {
			a.MOVI(isa.R2, int32(c))
			a.STW(isa.R2, isa.R1, 0)
		}
		a.HALT()
	})
	out := checkAll(t, machine.ProfileARM, prog)
	if out["interp"].Console != "SimBench!" {
		t.Errorf("console = %q", out["interp"].Console)
	}
}

func TestGoldenIndirectCallTable(t *testing.T) {
	prog := assemble(t, func(a *asm.Assembler) {
		a.Label("_start")
		a.MOVI(isa.SP, 0x8000)
		a.LA(isa.R10, "table")
		a.MOVI(isa.R9, 0)  // index
		a.MOVI(isa.R1, 0)  // accumulator
		a.MOVI(isa.R7, 12) // iterations
		a.Label("loop")
		a.ANDI(isa.R8, isa.R9, 3)
		a.SHLI(isa.R8, isa.R8, 2)
		a.ADD(isa.R8, isa.R10, isa.R8)
		a.LDW(isa.R8, isa.R8, 0)
		a.BLR(isa.R8)
		a.ADDI(isa.R9, isa.R9, 1)
		a.SUBI(isa.R7, isa.R7, 1)
		a.CMPI(isa.R7, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
		for i := 0; i < 4; i++ {
			a.Label(asm.Label(fmt.Sprintf("f%d", i)))
			a.ADDI(isa.R1, isa.R1, int32(i+1))
			a.RET()
		}
		a.Align(16)
		a.Label("table")
		a.WordAddr("f0")
		a.WordAddr("f1")
		a.WordAddr("f2")
		a.WordAddr("f3")
	})
	out := checkAll(t, machine.ProfileARM, prog)
	if got := out["interp"].Regs[isa.R1]; got != 30 { // 3*(1+2+3+4)
		t.Errorf("accumulator = %d, want 30", got)
	}
}

func TestRandomProgramsARM(t *testing.T) {
	testRandomPrograms(t, machine.ProfileARM, 1)
}

func TestRandomProgramsX86(t *testing.T) {
	testRandomPrograms(t, machine.ProfileX86, 2)
}

func testRandomPrograms(t *testing.T, profile machine.Profile, seed int64) {
	r := rand.New(rand.NewSource(seed))
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + r.Intn(180)
		prog, err := RandomProgram(r, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		outcomes, err := RunAll(profile, prog, 10_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := Diff(outcomes); d != "" {
			t.Fatalf("trial %d (n=%d, seed=%d): %s", trial, n, seed, d)
		}
	}
}

func TestRandomProgramsSmallBlockCap(t *testing.T) {
	// A tiny DBT block cap stresses block-boundary handling: results
	// must still match the reference.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		prog, err := RandomProgram(r, 50)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Run(Engines()[0], machine.ProfileARM, prog, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, cap := range []int{1, 2, 3, 7} {
			cfg := dbtSmallCap(cap)
			got, err := Run(cfg, machine.ProfileARM, prog, 10_000_000)
			if err != nil {
				t.Fatalf("cap %d: %v", cap, err)
			}
			if got.Regs != ref.Regs {
				t.Fatalf("cap %d trial %d: registers diverge", cap, trial)
			}
			if got.Insns != ref.Insns {
				t.Fatalf("cap %d trial %d: insns %d != %d", cap, trial, got.Insns, ref.Insns)
			}
		}
	}
}
