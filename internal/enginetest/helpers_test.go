package enginetest

import (
	"simbench/internal/engine"
	"simbench/internal/engine/dbt"
)

// dbtSmallCap builds a DBT engine with a tiny block cap for
// block-boundary stress testing.
func dbtSmallCap(cap int) engine.Engine {
	cfg := dbt.DefaultConfig()
	cfg.BlockCap = cap
	return dbt.New(cfg)
}
