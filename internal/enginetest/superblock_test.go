package enginetest

// Differential coverage for superblock-enabled DBT configurations: the
// same guest programs run on the interp reference, the default DBT and
// several superblock variants, and every architectural outcome must
// agree. Single-core runs also compare retired-instruction counts, so
// the translate-time-followed boundaries must account instructions
// exactly — including on exception side exits and on self-modifying
// code that invalidates the tail of the currently executing unit.

import (
	"fmt"
	"math/rand"
	"testing"

	"simbench/internal/asm"
	"simbench/internal/engine/dbt"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// superblockConfigs returns the DBT variants under test: chaining off
// and on, small and large segment budgets, and a tight instruction
// limit that truncates units mid-chain.
func superblockConfigs() []dbt.Config {
	mk := func(name string, sb, lim int) dbt.Config {
		c := dbt.DefaultConfig()
		c.Name = name
		c.Superblock = sb
		c.ChainLimit = lim
		return c
	}
	noChain := mk("sb4-nochain", 4, 0)
	noChain.Chain = dbt.ChainNone
	return []dbt.Config{
		mk("sb2", 2, 0),
		mk("sb8", 8, 0),
		mk("sb8-lim96", 8, 96),
		noChain,
	}
}

// chainHeavyProg fragments a loop body into unconditional-branch-joined
// segments and follows them with a straight-line run longer than the
// default BlockCap, so both followable exit kinds (direct branch and
// block-cap fall-through) occur in one program.
func chainHeavyProg(t *testing.T) *asm.Program {
	return assemble(t, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, 2_000)
		a.MOVI(isa.R2, 0)
		a.Label("loop")
		a.ADDI(isa.R2, isa.R2, 3)
		a.B(isa.CondAL, "seg2")
		a.Label("seg2")
		a.XORI(isa.R3, isa.R2, 0x1F)
		a.B(isa.CondAL, "seg3")
		a.Label("seg3")
		a.ADD(isa.R2, isa.R2, isa.R3)
		for i := 0; i < 100; i++ { // spans the 64-insn BlockCap
			a.ADDI(isa.R2, isa.R2, 1)
		}
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	})
}

// excInChainProg raises syscalls and undefined instructions from inside
// followed segments, checking that cumulative retire counts stay exact
// across dropped boundary branches when a side exit cuts a unit short.
func excInChainProg(t *testing.T) *asm.Program {
	return assemble(t, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R5, 0)
		a.MOVI(isa.R6, 12)
		a.Label("loop")
		a.ADDI(isa.R5, isa.R5, 1)
		a.B(isa.CondAL, "mid")
		a.Label("mid")
		a.SVC(1)
		a.UD()
		a.B(isa.CondAL, "tail")
		a.Label("tail")
		a.SUBI(isa.R6, isa.R6, 1)
		a.CMPI(isa.R6, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
		a.Org(0x800)
		a.Label("vectors")
		a.HALT()                   // reset
		a.B(isa.CondAL, "handler") // undef
		a.B(isa.CondAL, "handler") // svc
		a.B(isa.CondAL, "handler") // irq
		a.B(isa.CondAL, "handler") // inst fault
		a.B(isa.CondAL, "handler") // data fault
		a.Label("handler")
		a.ADDI(isa.R7, isa.R7, 1)
		a.ERET()
	})
}

// smcIntoChainProg patches an instruction and then branches into it
// with an unconditional same-page branch — exactly the shape the
// superblock translator fuses. The store invalidates the page while the
// unit holding the stale tail is executing, so the boundary check must
// side-exit and retranslate or the patch would be missed.
func smcIntoChainProg(t *testing.T) *asm.Program {
	return assemble(t, func(a *asm.Assembler) {
		a.MOVI(isa.R7, 0)
		a.MOVI(isa.R3, 1) // n
		a.LA(isa.R1, "site")
		a.Label("loop")
		// Build "MOVI R9, n" and store it over the site.
		a.LoadImm32(isa.R2, isa.Encode(isa.Inst{Op: isa.OpMOVI, Rd: isa.R9, Imm: 0}))
		a.OR(isa.R2, isa.R2, isa.R3)
		a.STW(isa.R2, isa.R1, 0)
		a.B(isa.CondAL, "site") // followable: same page, forward
		a.Label("site")
		a.NOP() // becomes MOVI R9, n
		a.ADD(isa.R7, isa.R7, isa.R9)
		a.ADDI(isa.R3, isa.R3, 1)
		a.CMPI(isa.R3, 6)
		a.B(isa.CondNE, "loop")
		a.HALT()
	})
}

// checkSuperblock runs prog on interp, the default DBT and every
// superblock variant, and diffs the full single-core outcome — retired
// counts included.
func checkSuperblock(t *testing.T, prog *asm.Program) {
	t.Helper()
	outcomes := make(map[string]Outcome)
	ref, err := Run(Engines()[0], machine.ProfileARM, prog, 10_000_000)
	if err != nil {
		t.Fatalf("interp: %v (pc=%#x)", err, ref.FinalPC)
	}
	outcomes["interp"] = ref
	cfgs := append([]dbt.Config{dbt.DefaultConfig()}, superblockConfigs()...)
	for _, cfg := range cfgs {
		o, err := Run(dbt.New(cfg), machine.ProfileARM, prog, 10_000_000)
		if err != nil {
			t.Fatalf("dbt/%s: %v (pc=%#x)", cfg.Name, err, o.FinalPC)
		}
		outcomes["dbt/"+cfg.Name] = o
	}
	if d := Diff(outcomes); d != "" {
		t.Fatal(d)
	}
}

func TestSuperblockDifferentialChainHeavy(t *testing.T) {
	checkSuperblock(t, chainHeavyProg(t))
}

func TestSuperblockDifferentialExceptions(t *testing.T) {
	checkSuperblock(t, excInChainProg(t))
}

func TestSuperblockDifferentialSMC(t *testing.T) {
	prog := smcIntoChainProg(t)
	checkSuperblock(t, prog)
	// The patched values must actually have been observed (1+..+5).
	o, err := Run(dbt.New(superblockConfigs()[1]), machine.ProfileARM, prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Regs[isa.R7]; got != 15 {
		t.Errorf("SMC sum under superblocks = %d, want 15", got)
	}
}

func TestSuperblockDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		prog, err := RandomProgram(rand.New(rand.NewSource(seed)), 400)
		if err != nil {
			t.Fatal(err)
		}
		checkSuperblock(t, prog)
	}
}

// TestSuperblockDifferentialSMP runs the exclusive-pair lock counter
// and the plain-store slot sum at 2 and 4 cores on every superblock
// variant, comparing the interleaving-robust outcome against interp.
func TestSuperblockDifferentialSMP(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		for _, mkProg := range []func(*testing.T, int, int32) *asm.Program{
			lockCounterProg, slotSumProg,
		} {
			prog := mkProg(t, cores, 100)
			ref, err := RunSMP(Engines()[0], machine.ProfileARM, prog, 50_000_000, cores)
			if err != nil {
				t.Fatalf("interp/%dcores: %v", cores, err)
			}
			for _, cfg := range superblockConfigs() {
				t.Run(fmt.Sprintf("%s/%dcores", cfg.Name, cores), func(t *testing.T) {
					o, err := RunSMP(dbt.New(cfg), machine.ProfileARM, prog, 50_000_000, cores)
					if err != nil {
						t.Fatalf("%v (pc=%#x)", err, o.FinalPC)
					}
					out := map[string]Outcome{"interp": ref, "dbt/" + cfg.Name: o}
					if d := diffSMP(out); d != "" {
						t.Fatal(d)
					}
					if cores == 1 && o.Insns != ref.Insns {
						t.Fatalf("1-core retired count %d != interp %d", o.Insns, ref.Insns)
					}
				})
			}
		}
	}
}
