// Package mem provides the guest physical memory system: a flat RAM
// array plus a bus that dispatches memory-mapped I/O accesses to
// devices. Engines access RAM directly on their fast paths and fall
// back to the bus for device regions, mirroring how real full-system
// simulators split "RAM-backed" from "I/O" physical addresses.
package mem

import (
	"fmt"
	"sort"

	"simbench/internal/isa"
)

// Device is the handler for a memory-mapped I/O region. Offsets are
// relative to the region base. The boolean result reports whether the
// access was accepted; a rejected access becomes a bus fault.
type Device interface {
	Name() string
	Read(off uint32, size int) (uint32, bool)
	Write(off uint32, size int, v uint32) bool
}

// Region is a device mapping on the bus.
type Region struct {
	Base uint32
	Size uint32
	Dev  Device
}

// Bus is the guest physical address space: RAM at [0, len(RAM)) and any
// number of non-overlapping device regions above it.
type Bus struct {
	RAM     []byte
	regions []Region
}

// NewBus creates a bus with ramSize bytes of RAM at physical address 0.
func NewBus(ramSize uint32) *Bus {
	return &Bus{RAM: make([]byte, ramSize)}
}

// Map attaches a device region. It panics on overlap with RAM or
// another region: the memory map is a static platform property and a
// bad one is a programming error.
func (b *Bus) Map(base, size uint32, d Device) {
	if base < uint32(len(b.RAM)) {
		panic(fmt.Sprintf("mem: device %s at %#x overlaps RAM", d.Name(), base))
	}
	for _, r := range b.regions {
		if base < r.Base+r.Size && r.Base < base+size {
			panic(fmt.Sprintf("mem: device %s at %#x overlaps %s", d.Name(), base, r.Dev.Name()))
		}
	}
	b.regions = append(b.regions, Region{base, size, d})
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].Base < b.regions[j].Base })
}

// Regions returns the device map (for reporting).
func (b *Bus) Regions() []Region { return b.regions }

// IsRAM reports whether a size-byte access at pa lies entirely in RAM.
func (b *Bus) IsRAM(pa uint32, size int) bool {
	return uint64(pa)+uint64(size) <= uint64(len(b.RAM))
}

// Find locates the device region containing pa, or nil.
func (b *Bus) Find(pa uint32) *Region {
	for i := range b.regions {
		r := &b.regions[i]
		if pa >= r.Base && pa-r.Base < r.Size {
			return r
		}
	}
	return nil
}

// ReadPhys performs a physical read of size 1 or 4 bytes.
func (b *Bus) ReadPhys(pa uint32, size int) (uint32, isa.FaultCode) {
	if b.IsRAM(pa, size) {
		if size == 4 {
			return b.ReadWordRAM(pa), isa.FaultNone
		}
		return uint32(b.RAM[pa]), isa.FaultNone
	}
	if r := b.Find(pa); r != nil {
		if v, ok := r.Dev.Read(pa-r.Base, size); ok {
			return v, isa.FaultNone
		}
	}
	return 0, isa.FaultBus
}

// WritePhys performs a physical write of size 1 or 4 bytes.
func (b *Bus) WritePhys(pa uint32, size int, v uint32) isa.FaultCode {
	if b.IsRAM(pa, size) {
		if size == 4 {
			b.WriteWordRAM(pa, v)
		} else {
			b.RAM[pa] = byte(v)
		}
		return isa.FaultNone
	}
	if r := b.Find(pa); r != nil {
		if r.Dev.Write(pa-r.Base, size, v) {
			return isa.FaultNone
		}
	}
	return isa.FaultBus
}

// ReadWordRAM reads a little-endian word that is known to be in RAM.
func (b *Bus) ReadWordRAM(pa uint32) uint32 {
	d := b.RAM[pa : pa+4 : pa+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// WriteWordRAM writes a little-endian word that is known to be in RAM.
func (b *Bus) WriteWordRAM(pa uint32, v uint32) {
	d := b.RAM[pa : pa+4 : pa+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
}

// LoadSegment copies data into RAM at addr; it fails if the segment
// does not fit, since a truncated guest image is unusable.
func (b *Bus) LoadSegment(addr uint32, data []byte) error {
	if uint64(addr)+uint64(len(data)) > uint64(len(b.RAM)) {
		return fmt.Errorf("mem: segment at %#x (%d bytes) exceeds RAM size %#x", addr, len(data), len(b.RAM))
	}
	copy(b.RAM[addr:], data)
	return nil
}
