package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simbench/internal/isa"
)

type stubDev struct {
	name   string
	reads  int
	writes int
	val    uint32
	reject bool
}

func (d *stubDev) Name() string { return d.name }
func (d *stubDev) Read(off uint32, size int) (uint32, bool) {
	d.reads++
	return d.val + off, !d.reject
}
func (d *stubDev) Write(off uint32, size int, v uint32) bool {
	d.writes++
	d.val = v
	return !d.reject
}

func TestRAMReadWriteWord(t *testing.T) {
	b := NewBus(4096)
	b.WriteWordRAM(100, 0xCAFEBABE)
	if got := b.ReadWordRAM(100); got != 0xCAFEBABE {
		t.Errorf("got %#x", got)
	}
	// Little-endian layout.
	if b.RAM[100] != 0xBE || b.RAM[103] != 0xCA {
		t.Error("not little-endian")
	}
}

func TestReadWritePhysRAM(t *testing.T) {
	b := NewBus(4096)
	if f := b.WritePhys(8, 4, 0x11223344); f != isa.FaultNone {
		t.Fatal(f)
	}
	v, f := b.ReadPhys(8, 4)
	if f != isa.FaultNone || v != 0x11223344 {
		t.Errorf("read %#x fault %v", v, f)
	}
	if f := b.WritePhys(9, 1, 0xAB); f != isa.FaultNone {
		t.Fatal(f)
	}
	v, _ = b.ReadPhys(9, 1)
	if v != 0xAB {
		t.Errorf("byte read %#x", v)
	}
}

func TestUnbackedPhysFaults(t *testing.T) {
	b := NewBus(4096)
	if _, f := b.ReadPhys(100000, 4); f != isa.FaultBus {
		t.Errorf("read fault = %v", f)
	}
	if f := b.WritePhys(100000, 4, 1); f != isa.FaultBus {
		t.Errorf("write fault = %v", f)
	}
}

func TestRAMBoundary(t *testing.T) {
	b := NewBus(4096)
	if !b.IsRAM(4092, 4) {
		t.Error("last word should be RAM")
	}
	if b.IsRAM(4093, 4) {
		t.Error("straddling access is not RAM")
	}
	if b.IsRAM(0xFFFFFFFF, 4) {
		t.Error("wraparound must not be RAM")
	}
}

func TestDeviceDispatch(t *testing.T) {
	b := NewBus(4096)
	d := &stubDev{name: "d0", val: 7}
	b.Map(0xF0000000, 0x1000, d)

	v, f := b.ReadPhys(0xF0000010, 4)
	if f != isa.FaultNone || v != 7+0x10 {
		t.Errorf("read %#x fault %v", v, f)
	}
	if f := b.WritePhys(0xF0000000, 4, 42); f != isa.FaultNone {
		t.Fatal(f)
	}
	if d.val != 42 || d.reads != 1 || d.writes != 1 {
		t.Errorf("device state: %+v", d)
	}
}

func TestDeviceRejectionIsBusFault(t *testing.T) {
	b := NewBus(4096)
	b.Map(0xF0000000, 0x1000, &stubDev{name: "d", reject: true})
	if _, f := b.ReadPhys(0xF0000000, 4); f != isa.FaultBus {
		t.Errorf("fault = %v", f)
	}
	if f := b.WritePhys(0xF0000000, 4, 1); f != isa.FaultBus {
		t.Errorf("fault = %v", f)
	}
}

func TestOverlapPanics(t *testing.T) {
	b := NewBus(4096)
	b.Map(0xF0000000, 0x1000, &stubDev{name: "a"})
	assertPanics(t, func() { b.Map(0xF0000800, 0x1000, &stubDev{name: "b"}) })
	assertPanics(t, func() { b.Map(0x100, 0x100, &stubDev{name: "c"}) }) // overlaps RAM
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestFindRegion(t *testing.T) {
	b := NewBus(4096)
	d1 := &stubDev{name: "d1"}
	d2 := &stubDev{name: "d2"}
	b.Map(0xF0001000, 0x1000, d1)
	b.Map(0xF0000000, 0x1000, d2) // mapped out of order
	if r := b.Find(0xF0001FFF); r == nil || r.Dev != d1 {
		t.Error("find d1")
	}
	if r := b.Find(0xF0000000); r == nil || r.Dev != d2 {
		t.Error("find d2")
	}
	if b.Find(0xF0002000) != nil {
		t.Error("hole should not resolve")
	}
	if len(b.Regions()) != 2 {
		t.Error("regions")
	}
}

func TestLoadSegment(t *testing.T) {
	b := NewBus(4096)
	if err := b.LoadSegment(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if b.RAM[10] != 1 || b.RAM[12] != 3 {
		t.Error("segment not loaded")
	}
	if err := b.LoadSegment(4094, []byte{1, 2, 3}); err == nil {
		t.Error("expected overflow error")
	}
}

// Property: word write/read round-trips at any aligned RAM address.
func TestWordRoundTripProperty(t *testing.T) {
	b := NewBus(1 << 16)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3
		b.WriteWordRAM(a, v)
		return b.ReadWordRAM(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadPhys(WritePhys(x)) == x through the generic path too.
func TestPhysRoundTripProperty(t *testing.T) {
	b := NewBus(1 << 16)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := r.Uint32() % (1<<16 - 4)
		a &^= 3
		v := r.Uint32()
		if f := b.WritePhys(a, 4, v); f != isa.FaultNone {
			t.Fatal(f)
		}
		got, f := b.ReadPhys(a, 4)
		if f != isa.FaultNone || got != v {
			t.Fatalf("addr %#x: got %#x want %#x", a, got, v)
		}
	}
}
