package mmu

import (
	"math/rand"
	"testing"

	"simbench/internal/isa"
	"simbench/internal/mem"
)

func newBuilder(t *testing.T, formatB bool) (*mem.Bus, *Builder) {
	t.Helper()
	bus := mem.NewBus(8 << 20)
	b, err := NewBuilder(bus, 0x100000, 0x200000, formatB)
	if err != nil {
		t.Fatal(err)
	}
	return bus, b
}

func TestRootAlignment(t *testing.T) {
	bus := mem.NewBus(8 << 20)
	// Misaligned base: the root must be aligned up.
	b, err := NewBuilder(bus, 0x100004, 0x200000, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Root()%0x4000 != 0 {
		t.Errorf("format-A root %#x not 16K aligned", b.Root())
	}
	b2, err := NewBuilder(bus, 0x300000, 0x400000, true)
	if err == nil {
		if b2.Root()%0x1000 != 0 {
			t.Errorf("format-B root %#x not 4K aligned", b2.Root())
		}
	}
}

func TestRegionTooSmall(t *testing.T) {
	bus := mem.NewBus(1 << 20)
	if _, err := NewBuilder(bus, 0x100, 0x200, false); err == nil {
		t.Error("expected too-small error")
	}
}

func TestMapPageAndWalk(t *testing.T) {
	for _, formatB := range []bool{false, true} {
		bus, b := newBuilder(t, formatB)
		if err := b.MapPage(0x40000000, 0x5000, true, false); err != nil {
			t.Fatal(err)
		}
		pte, levels, fault := Walk(bus, b.Root(), formatB, 0x40000123)
		if fault != isa.FaultNone {
			t.Fatalf("formatB=%v fault %v", formatB, fault)
		}
		if pte.PhysPage != 0x5000 || !pte.Writable || pte.User {
			t.Errorf("formatB=%v pte %+v", formatB, pte)
		}
		if levels != 2 {
			t.Errorf("formatB=%v levels=%d, want 2", formatB, levels)
		}
	}
}

func TestUnmappedFaults(t *testing.T) {
	for _, formatB := range []bool{false, true} {
		bus, b := newBuilder(t, formatB)
		_, _, fault := Walk(bus, b.Root(), formatB, 0x40000000)
		if fault != isa.FaultTranslation {
			t.Errorf("formatB=%v fault %v", formatB, fault)
		}
	}
}

func TestSectionMapping(t *testing.T) {
	bus, b := newBuilder(t, false)
	if err := b.MapSection(0x00000000, 0x00100000, true, true); err != nil {
		t.Fatal(err)
	}
	pte, levels, fault := Walk(bus, b.Root(), false, 0x000ABCDE)
	if fault != isa.FaultNone {
		t.Fatal(fault)
	}
	if levels != 1 {
		t.Errorf("section walk levels = %d, want 1", levels)
	}
	if !pte.Section || !pte.Writable || !pte.User {
		t.Errorf("pte %+v", pte)
	}
	// The 4K frame of the faulting address inside the section.
	want := uint32(0x00100000 + (0xABCDE &^ isa.PageMask))
	if pte.PhysPage != want {
		t.Errorf("phys %#x, want %#x", pte.PhysPage, want)
	}
}

func TestSectionRejectedOnFormatB(t *testing.T) {
	_, b := newBuilder(t, true)
	if err := b.MapSection(0, 0, true, true); err == nil {
		t.Error("format B must reject sections")
	}
}

func TestSectionPageCollision(t *testing.T) {
	_, b := newBuilder(t, false)
	if err := b.MapSection(0x00100000, 0x00100000, true, false); err != nil {
		t.Fatal(err)
	}
	if err := b.MapPage(0x00140000, 0x5000, true, false); err == nil {
		t.Error("page into section L1 slot must be rejected")
	}
	if err := b.MapPage(0x00500000, 0x5000, true, false); err != nil {
		t.Fatal(err)
	}
	if err := b.MapSection(0x00500000, 0x00200000, true, false); err == nil {
		t.Error("section over coarse table must be rejected")
	}
}

func TestUnalignedMappingRejected(t *testing.T) {
	_, b := newBuilder(t, false)
	if err := b.MapPage(0x1001, 0x2000, true, false); err == nil {
		t.Error("unaligned va")
	}
	if err := b.MapPage(0x1000, 0x2001, true, false); err == nil {
		t.Error("unaligned pa")
	}
	if err := b.MapSection(0x100, 0, true, false); err == nil {
		t.Error("unaligned section")
	}
}

func TestUnmap(t *testing.T) {
	for _, formatB := range []bool{false, true} {
		bus, b := newBuilder(t, formatB)
		if err := b.MapPage(0x7000000, 0x3000, true, false); err != nil {
			t.Fatal(err)
		}
		b.Unmap(0x7000000)
		if _, _, fault := Walk(bus, b.Root(), formatB, 0x7000000); fault != isa.FaultTranslation {
			t.Errorf("formatB=%v fault after unmap = %v", formatB, fault)
		}
		// Unmapping something never mapped is a no-op.
		b.Unmap(0x9000000)
	}
}

func TestMapRange(t *testing.T) {
	bus, b := newBuilder(t, true)
	if err := b.MapRange(0x2000000, 0x10000, 16*isa.PageSize, true, true); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		pte, _, fault := Walk(bus, b.Root(), true, 0x2000000+i*isa.PageSize)
		if fault != isa.FaultNone || pte.PhysPage != 0x10000+i*isa.PageSize {
			t.Fatalf("page %d: pte %+v fault %v", i, pte, fault)
		}
	}
}

func TestCheckPermissions(t *testing.T) {
	cases := []struct {
		pte    PTE
		kernel bool
		write  bool
		want   isa.FaultCode
	}{
		{PTE{Writable: true, User: true}, false, true, isa.FaultNone},
		{PTE{Writable: true, User: true}, true, true, isa.FaultNone},
		{PTE{Writable: false, User: true}, false, true, isa.FaultPermission},
		{PTE{Writable: false, User: true}, false, false, isa.FaultNone},
		{PTE{Writable: true, User: false}, false, false, isa.FaultPermission},
		{PTE{Writable: true, User: false}, true, false, isa.FaultNone},
		{PTE{Writable: false, User: false}, true, true, isa.FaultPermission},
	}
	for i, c := range cases {
		if got := Check(c.pte, c.kernel, c.write); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

// Property: for random page mappings, Walk(va) resolves exactly the
// mapped frame with the mapped permissions, in both formats.
func TestWalkMatchesMappingProperty(t *testing.T) {
	for _, formatB := range []bool{false, true} {
		bus, b := newBuilder(t, formatB)
		r := rand.New(rand.NewSource(11))
		type m struct {
			va, pa uint32
			w, u   bool
		}
		seen := map[uint32]bool{}
		var ms []m
		for i := 0; i < 300; i++ {
			va := (r.Uint32() % 0x10000000) &^ isa.PageMask
			if seen[va] {
				continue
			}
			seen[va] = true
			pa := (r.Uint32() % (4 << 20)) &^ isa.PageMask
			w, u := r.Intn(2) == 0, r.Intn(2) == 0
			if err := b.MapPage(va, pa, w, u); err != nil {
				t.Fatal(err)
			}
			ms = append(ms, m{va, pa, w, u})
		}
		for _, mm := range ms {
			off := rand.Uint32() & isa.PageMask
			pte, _, fault := Walk(bus, b.Root(), formatB, mm.va|off)
			if fault != isa.FaultNone {
				t.Fatalf("formatB=%v va %#x: fault %v", formatB, mm.va, fault)
			}
			if pte.PhysPage != mm.pa || pte.Writable != mm.w || pte.User != mm.u {
				t.Fatalf("formatB=%v va %#x: pte %+v, want pa %#x w=%v u=%v",
					formatB, mm.va, pte, mm.pa, mm.w, mm.u)
			}
		}
	}
}

func TestTablesEndAdvances(t *testing.T) {
	_, b := newBuilder(t, false)
	before := b.TablesEnd()
	// Force several L2 allocations (distinct 1 MiB regions).
	for i := uint32(0); i < 4; i++ {
		if err := b.MapPage(0x10000000+i*SectionSize, 0x1000, true, false); err != nil {
			t.Fatal(err)
		}
	}
	if b.TablesEnd() <= before {
		t.Error("TablesEnd did not advance with new tables")
	}
}

func TestOutOfTableMemory(t *testing.T) {
	bus := mem.NewBus(8 << 20)
	// Tiny region: the root fits, little else.
	b, err := NewBuilder(bus, 0x100000, 0x104800, false)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for i := uint32(0); i < 8 && !failed; i++ {
		if err := b.MapPage(0x20000000+i*SectionSize, 0x1000, true, false); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("expected table memory exhaustion")
	}
}
