// Package mmu implements the SV32 virtual memory system: page-table
// walks for the two architecture-profile table formats, permission
// checking, and a host-side table builder used as the "bootloader" that
// prepares the initial address space for a benchmark (the SimBench
// methodology allows a bootloader; all run-time remapping happens in
// guest code through TLBI/TLBIA and table stores).
//
// Format A models the ARM short-descriptor scheme: a 4096-entry first
// level where each entry either maps a 1 MiB section directly or points
// to a 256-entry coarse second level of 4 KiB pages. Format B models
// the classic two-level x86 scheme: 1024-entry directories of
// 1024-entry tables, 4 KiB pages only. The difference in walk depth and
// decode complexity is what makes the Cold Memory Access benchmark
// sensitive to the simulated architecture, as the paper discusses.
package mmu

import (
	"fmt"

	"simbench/internal/isa"
	"simbench/internal/mem"
)

// Entry bit assignments shared by both formats.
const (
	entTypeMask = 0x3
	entInvalid  = 0x0
	entSection  = 0x1 // format A level 1 only
	entCoarse   = 0x2 // format A level 1 only
	entPage     = 0x1 // leaf entries
	entWritable = 1 << 2
	entUser     = 1 << 3

	sectionShift = 20
	// SectionSize is the format-A section mapping granule (1 MiB).
	SectionSize = 1 << sectionShift
)

// PTE describes one resolved translation: the physical page base for
// the 4 KiB virtual page containing the queried address, its access
// permissions, and how large the underlying mapping granule was (so TLB
// models can decide what a section fill covers).
type PTE struct {
	PhysPage uint32 // physical base of the 4 KiB frame
	Writable bool
	User     bool
	Section  bool // mapped by a format-A section entry
}

// Walk translates the page containing va using the tables rooted at
// ttbr. It performs real physical memory reads through the bus, so
// walk cost scales with table depth exactly as in a simulator's softMMU
// slow path. Levels reports how many table loads were performed.
func Walk(bus *mem.Bus, ttbr uint32, formatB bool, va uint32) (pte PTE, levels int, fault isa.FaultCode) {
	if formatB {
		return walkB(bus, ttbr, va)
	}
	return walkA(bus, ttbr, va)
}

func walkA(bus *mem.Bus, ttbr uint32, va uint32) (PTE, int, isa.FaultCode) {
	l1Addr := (ttbr &^ 0x3FFF) + (va>>sectionShift)<<2
	l1, f := bus.ReadPhys(l1Addr, 4)
	if f != isa.FaultNone {
		return PTE{}, 1, isa.FaultBus
	}
	switch l1 & entTypeMask {
	case entSection:
		base := l1 &^ (SectionSize - 1)
		return PTE{
			PhysPage: base + (va & (SectionSize - 1) &^ isa.PageMask),
			Writable: l1&entWritable != 0,
			User:     l1&entUser != 0,
			Section:  true,
		}, 1, isa.FaultNone
	case entCoarse:
		l2Addr := (l1 &^ 0x3FF) + ((va>>isa.PageShift)&0xFF)<<2
		l2, f := bus.ReadPhys(l2Addr, 4)
		if f != isa.FaultNone {
			return PTE{}, 2, isa.FaultBus
		}
		if l2&entTypeMask != entPage {
			return PTE{}, 2, isa.FaultTranslation
		}
		return PTE{
			PhysPage: l2 &^ isa.PageMask,
			Writable: l2&entWritable != 0,
			User:     l2&entUser != 0,
		}, 2, isa.FaultNone
	default:
		return PTE{}, 1, isa.FaultTranslation
	}
}

func walkB(bus *mem.Bus, ttbr uint32, va uint32) (PTE, int, isa.FaultCode) {
	l1Addr := (ttbr &^ isa.PageMask) + (va>>22)<<2
	l1, f := bus.ReadPhys(l1Addr, 4)
	if f != isa.FaultNone {
		return PTE{}, 1, isa.FaultBus
	}
	if l1&entTypeMask != entPage {
		return PTE{}, 1, isa.FaultTranslation
	}
	l2Addr := (l1 &^ isa.PageMask) + ((va>>isa.PageShift)&0x3FF)<<2
	l2, f := bus.ReadPhys(l2Addr, 4)
	if f != isa.FaultNone {
		return PTE{}, 2, isa.FaultBus
	}
	if l2&entTypeMask != entPage {
		return PTE{}, 2, isa.FaultTranslation
	}
	return PTE{
		PhysPage: l2 &^ isa.PageMask,
		Writable: l2&entWritable != 0,
		User:     l2&entUser != 0,
	}, 2, isa.FaultNone
}

// Check applies the permission rules to a resolved PTE and returns the
// fault an access would take, or FaultNone. Kernel mode may access
// everything the mapping allows; user mode additionally needs the User
// bit. Writes need Writable in both modes.
func Check(pte PTE, kernel, write bool) isa.FaultCode {
	if !kernel && !pte.User {
		return isa.FaultPermission
	}
	if write && !pte.Writable {
		return isa.FaultPermission
	}
	return isa.FaultNone
}

// --- host-side table builder -------------------------------------------------

// Builder constructs page tables directly in guest RAM, playing the
// role of the bootloader. Frames for tables are allocated downward from
// the top of a reserved region.
type Builder struct {
	bus     *mem.Bus
	formatB bool
	root    uint32
	next    uint32 // next free table frame (allocated upward)
	limit   uint32
	l2      map[uint32]uint32 // L1 index -> L2 table base
}

// NewBuilder reserves [base, limit) of guest RAM for page tables and
// initialises an empty root table there. Format A roots need 16 KiB of
// alignment and size; format B roots need 4 KiB.
func NewBuilder(bus *mem.Bus, base, limit uint32, formatB bool) (*Builder, error) {
	align := uint32(0x4000)
	if formatB {
		align = 0x1000
	}
	root := (base + align - 1) &^ (align - 1)
	if root+align > limit {
		return nil, fmt.Errorf("mmu: table region [%#x,%#x) too small for root", base, limit)
	}
	b := &Builder{bus: bus, formatB: formatB, root: root, next: root + align, limit: limit,
		l2: make(map[uint32]uint32)}
	for a := root; a < root+align; a += 4 {
		bus.WriteWordRAM(a, 0)
	}
	return b, nil
}

// Root returns the TTBR value for the built tables.
func (b *Builder) Root() uint32 { return b.root }

// FormatB reports the table format.
func (b *Builder) FormatB() bool { return b.formatB }

func (b *Builder) allocTable(size uint32) (uint32, error) {
	base := (b.next + size - 1) &^ (size - 1)
	if base+size > b.limit {
		return 0, fmt.Errorf("mmu: out of page-table memory")
	}
	b.next = base + size
	for a := base; a < base+size; a += 4 {
		b.bus.WriteWordRAM(a, 0)
	}
	return base, nil
}

func permBits(w, u bool) uint32 {
	var v uint32
	if w {
		v |= entWritable
	}
	if u {
		v |= entUser
	}
	return v
}

// MapPage maps the 4 KiB page at va to the physical frame at pa.
func (b *Builder) MapPage(va, pa uint32, w, u bool) error {
	if va&isa.PageMask != 0 || pa&isa.PageMask != 0 {
		return fmt.Errorf("mmu: unaligned mapping %#x -> %#x", va, pa)
	}
	if b.formatB {
		return b.mapPageB(va, pa, w, u)
	}
	return b.mapPageA(va, pa, w, u)
}

func (b *Builder) mapPageA(va, pa uint32, w, u bool) error {
	l1Index := va >> sectionShift
	l1Addr := b.root + l1Index<<2
	l2Base, ok := b.l2[l1Index]
	if !ok {
		if cur := b.bus.ReadWordRAM(l1Addr); cur&entTypeMask == entSection {
			return fmt.Errorf("mmu: page mapping %#x collides with section", va)
		}
		base, err := b.allocTable(0x400) // 256 entries * 4 bytes
		if err != nil {
			return err
		}
		l2Base = base
		b.l2[l1Index] = base
		b.bus.WriteWordRAM(l1Addr, base|entCoarse)
	}
	b.bus.WriteWordRAM(l2Base+((va>>isa.PageShift)&0xFF)<<2, pa|permBits(w, u)|entPage)
	return nil
}

func (b *Builder) mapPageB(va, pa uint32, w, u bool) error {
	l1Index := va >> 22
	l1Addr := b.root + l1Index<<2
	l2Base, ok := b.l2[l1Index]
	if !ok {
		base, err := b.allocTable(0x1000) // 1024 entries * 4 bytes
		if err != nil {
			return err
		}
		l2Base = base
		b.l2[l1Index] = base
		b.bus.WriteWordRAM(l1Addr, base|entPage)
	}
	b.bus.WriteWordRAM(l2Base+((va>>isa.PageShift)&0x3FF)<<2, pa|permBits(w, u)|entPage)
	return nil
}

// MapSection maps a 1 MiB section (format A only): the single-level
// translation path the paper contrasts with two-level coarse lookups.
func (b *Builder) MapSection(va, pa uint32, w, u bool) error {
	if b.formatB {
		return fmt.Errorf("mmu: sections are a format-A feature")
	}
	if va&(SectionSize-1) != 0 || pa&(SectionSize-1) != 0 {
		return fmt.Errorf("mmu: unaligned section %#x -> %#x", va, pa)
	}
	l1Index := va >> sectionShift
	if _, ok := b.l2[l1Index]; ok {
		return fmt.Errorf("mmu: section %#x collides with coarse table", va)
	}
	b.bus.WriteWordRAM(b.root+l1Index<<2, pa|permBits(w, u)|entSection)
	return nil
}

// MapRange maps [va, va+size) to [pa, pa+size) with 4 KiB pages.
func (b *Builder) MapRange(va, pa, size uint32, w, u bool) error {
	for off := uint32(0); off < size; off += isa.PageSize {
		if err := b.MapPage(va+off, pa+off, w, u); err != nil {
			return err
		}
	}
	return nil
}

// Unmap removes the 4 KiB page mapping at va (format-agnostic); it is
// a no-op if nothing is mapped there.
func (b *Builder) Unmap(va uint32) {
	var l1Index, slot uint32
	if b.formatB {
		l1Index = va >> 22
		slot = (va >> isa.PageShift) & 0x3FF
	} else {
		l1Index = va >> sectionShift
		slot = (va >> isa.PageShift) & 0xFF
	}
	if l2Base, ok := b.l2[l1Index]; ok {
		b.bus.WriteWordRAM(l2Base+slot<<2, 0)
	}
}

// TablesEnd returns the first free address above the built tables, so
// callers can place data beyond them.
func (b *Builder) TablesEnd() uint32 { return b.next }
