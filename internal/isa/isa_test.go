package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// canonical builds a well-formed Inst for op from a random seed, mirroring
// what the assembler can emit.
func canonical(op Op, r *rand.Rand) Inst {
	i := Inst{Op: op}
	switch op {
	case OpB, OpBL:
		i.Cond = Cond(r.Intn(NumConds))
		// 22-bit signed word offset, in bytes.
		i.Off = (r.Int31n(1<<21) - 1<<20) * WordBytes
	case OpBR, OpBLR, OpTLBI:
		i.Ra = Reg(r.Intn(NumRegs))
	case OpNOP, OpHALT, OpERET, OpTLBIA, OpUD:
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpSRA, OpMUL,
		OpCMP, OpMOV, OpNOT, OpSTX:
		i.Rd = Reg(r.Intn(NumRegs))
		i.Ra = Reg(r.Intn(NumRegs))
		i.Rb = Reg(r.Intn(NumRegs))
	case OpLDX:
		i.Rd = Reg(r.Intn(NumRegs))
		i.Ra = Reg(r.Intn(NumRegs))
	default:
		i.Rd = Reg(r.Intn(NumRegs))
		i.Ra = Reg(r.Intn(NumRegs))
		if SignedImm(op) {
			i.Imm = int32(int16(r.Uint32()))
		} else {
			i.Imm = int32(r.Uint32() & 0xFFFF)
		}
	}
	return i
}

func allOps() []Op {
	var ops []Op
	for o := Op(0); o < NumOps; o++ {
		if o.Valid() {
			ops = append(ops, o)
		}
	}
	return ops
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, op := range allOps() {
		for trial := 0; trial < 200; trial++ {
			in := canonical(op, r)
			w := Encode(in)
			out := Decode(w)
			out.Raw = 0
			in.Raw = 0
			if in != out {
				t.Fatalf("%v: encode/decode mismatch: in=%+v out=%+v word=%#x", op, in, out, w)
			}
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		i := Decode(w)
		_ = i.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOpcodeField(t *testing.T) {
	f := func(w uint32) bool {
		return Decode(w).Op == Op(w>>26)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUndefinedOpcodesInvalid(t *testing.T) {
	valid := map[Op]bool{}
	for _, op := range allOps() {
		valid[op] = true
	}
	if valid[OpUD] {
		t.Fatal("OpUD must not be Valid")
	}
	// Check that some unallocated encodings are invalid.
	for _, o := range []Op{0x2E, 0x30, 0x3A, 0x3E} {
		if o.Valid() {
			t.Errorf("opcode %#x should be unallocated", uint8(o))
		}
	}
}

func TestBranchOffsetRange(t *testing.T) {
	for _, off := range []int32{0, 4, -4, (1<<20 - 1) * 4, -(1 << 20) * 4} {
		i := Inst{Op: OpB, Cond: CondNE, Off: off}
		got := Decode(Encode(i))
		if got.Off != off {
			t.Errorf("offset %d round-tripped to %d", off, got.Off)
		}
	}
}

func TestSubFlags(t *testing.T) {
	cases := []struct {
		a, b uint32
		f    Flags
	}{
		{5, 5, Flags{Z: true, C: true}},
		{5, 6, Flags{N: true}},
		{6, 5, Flags{C: true}},
		{0, 1, Flags{N: true}},
		{0x80000000, 1, Flags{C: true, V: true}},          // INT_MIN - 1 overflows
		{0x7FFFFFFF, 0xFFFFFFFF, Flags{V: true, N: true}}, // MAX - (-1) overflows
	}
	for _, c := range cases {
		got := Sub(c.a, c.b)
		if got != c.f {
			t.Errorf("Sub(%#x,%#x) = %+v, want %+v", c.a, c.b, got, c.f)
		}
	}
}

func TestCondEval(t *testing.T) {
	// signed/unsigned comparison semantics via Sub.
	check := func(a, b uint32) {
		f := Sub(a, b)
		sa, sb := int32(a), int32(b)
		if CondEQ.Eval(f) != (a == b) {
			t.Errorf("EQ(%d,%d)", a, b)
		}
		if CondNE.Eval(f) != (a != b) {
			t.Errorf("NE(%d,%d)", a, b)
		}
		if CondLT.Eval(f) != (sa < sb) {
			t.Errorf("LT(%d,%d): flags %+v", sa, sb, f)
		}
		if CondGE.Eval(f) != (sa >= sb) {
			t.Errorf("GE(%d,%d)", sa, sb)
		}
		if CondGT.Eval(f) != (sa > sb) {
			t.Errorf("GT(%d,%d)", sa, sb)
		}
		if CondLE.Eval(f) != (sa <= sb) {
			t.Errorf("LE(%d,%d)", sa, sb)
		}
		if CondLO.Eval(f) != (a < b) {
			t.Errorf("LO(%d,%d)", a, b)
		}
		if CondHS.Eval(f) != (a >= b) {
			t.Errorf("HS(%d,%d)", a, b)
		}
		if CondHI.Eval(f) != (a > b) {
			t.Errorf("HI(%d,%d)", a, b)
		}
		if CondLS.Eval(f) != (a <= b) {
			t.Errorf("LS(%d,%d)", a, b)
		}
		if !CondAL.Eval(f) || CondNV.Eval(f) {
			t.Error("AL/NV broken")
		}
	}
	r := rand.New(rand.NewSource(2))
	for n := 0; n < 2000; n++ {
		check(r.Uint32(), r.Uint32())
	}
	check(0, 0)
	check(0x80000000, 0x7FFFFFFF)
	check(0x7FFFFFFF, 0x80000000)
}

func TestCondEvalProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		fl := Sub(a, b)
		return CondLT.Eval(fl) == (int32(a) < int32(b)) &&
			CondLO.Eval(fl) == (a < b) &&
			CondEQ.Eval(fl) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackFlags(t *testing.T) {
	for n := 0; n < 16; n++ {
		f := Flags{N: n&1 != 0, Z: n&2 != 0, C: n&4 != 0, V: n&8 != 0}
		if got := UnpackFlags(PackFlags(f)); got != f {
			t.Errorf("flags %+v round-tripped to %+v", f, got)
		}
	}
}

func TestVectorAddresses(t *testing.T) {
	if ExcReset.Vector(0x1000) != 0x1000 {
		t.Error("reset vector")
	}
	if ExcIRQ.Vector(0x1000) != 0x1000+4*uint32(ExcIRQ) {
		t.Error("irq vector")
	}
}

func TestStringsAreDistinct(t *testing.T) {
	seen := map[string]Op{}
	for _, op := range allOps() {
		s := op.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestCPUID(t *testing.T) {
	v := CPUIDValue(2, 3)
	if v&0xFF != 2 || (v>>8)&0xFF != 3 {
		t.Errorf("CPUID layout wrong: %#x", v)
	}
}
