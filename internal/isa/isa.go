// Package isa defines SV32, the synthetic 32-bit full-system instruction
// set architecture that every simulation engine in this repository
// executes. SV32 stands in for the ARM and x86 guests used in the
// SimBench paper: it is a fixed-width RISC encoding with user/kernel
// privilege modes, a software-visible MMU, an exception vector table,
// coprocessor access instructions and memory-mapped I/O, which together
// cover every mechanism the SimBench micro-benchmarks exercise.
//
// Instructions are 32 bits, little-endian in memory:
//
//	bits [31:26] opcode
//	R-type: rd [25:22], ra [21:18], rb [17:14]
//	I-type: rd [25:22], ra [21:18], imm16 [15:0]
//	B-type: cond [25:22], offset22 [21:0] (signed words)
//
// Architecture profiles (arm-like vs x86-like) share this encoding but
// differ in system-level behaviour; see internal/arch.
package isa

import "fmt"

// Word is the unit of instruction encoding and of most data transfers.
const (
	WordBytes = 4
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB, the unit of translation
	PageMask  = PageSize - 1
)

// Reg names a general-purpose register. SV32 has 16: R0..R15. By
// software convention R13 is the stack pointer and R14 the link
// register; the hardware only treats R14 specially (BL/BLR write it).
type Reg uint8

// Conventional register roles.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer by convention
	LR // R14: link register, written by BL/BLR
	R15
	NumRegs = 16
)

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op is a 6-bit primary opcode.
type Op uint8

// Opcode space. Unallocated values decode as undefined instructions and
// raise ExcUndef, exactly like the "architecturally undefined space" the
// paper relies on; OpUD is the *guaranteed* undefined encoding.
const (
	OpNOP  Op = 0x00
	OpHALT Op = 0x01 // privileged: stop the machine

	// Register ALU (R-type): rd = ra <op> rb.
	OpADD Op = 0x02
	OpSUB Op = 0x03
	OpAND Op = 0x04
	OpOR  Op = 0x05
	OpXOR Op = 0x06
	OpSHL Op = 0x07
	OpSHR Op = 0x08
	OpSRA Op = 0x09
	OpMUL Op = 0x0A
	OpCMP Op = 0x0B // flags := ra - rb (NZCV); rd ignored
	OpMOV Op = 0x0C // rd = ra
	OpNOT Op = 0x0D // rd = ^ra

	// Immediate ALU (I-type): rd = ra <op> imm.
	OpADDI Op = 0x0E // signed imm16
	OpSUBI Op = 0x0F // signed imm16
	OpANDI Op = 0x10 // zero-extended imm16
	OpORI  Op = 0x11
	OpXORI Op = 0x12
	OpSHLI Op = 0x13 // imm & 31
	OpSHRI Op = 0x14
	OpSRAI Op = 0x15
	OpMULI Op = 0x16 // signed imm16
	OpCMPI Op = 0x17 // flags := ra - simm16; rd ignored
	OpMOVI Op = 0x18 // rd = zext(imm16); ra ignored
	OpMOVT Op = 0x19 // rd = (rd & 0xFFFF) | imm16<<16

	// Memory (I-type): effective address = ra + simm16.
	OpLDW Op = 0x1A
	OpSTW Op = 0x1B
	OpLDB Op = 0x1C // zero-extending byte load
	OpSTB Op = 0x1D
	OpLDT Op = 0x1E // non-privileged load: checked as user even in kernel mode
	OpSTT Op = 0x1F // non-privileged store

	// Control flow.
	OpB   Op = 0x20 // B-type: conditional relative branch
	OpBL  Op = 0x21 // B-type: conditional relative call, LR = pc+4
	OpBR  Op = 0x22 // R-type: pc = ra
	OpBLR Op = 0x23 // R-type: LR = pc+4; pc = ra

	// System.
	OpSVC   Op = 0x24 // I-type: syscall, imm16 is the service number
	OpERET  Op = 0x25 // privileged: return from exception
	OpMRS   Op = 0x26 // I-type: rd = ctrl[imm16]
	OpMSR   Op = 0x27 // I-type: ctrl[imm16] = rd (privileged)
	OpCPRD  Op = 0x28 // I-type: rd = coproc[imm>>8].reg[imm&0xFF]
	OpCPWR  Op = 0x29 // I-type: coproc[imm>>8].reg[imm&0xFF] = rd
	OpTLBI  Op = 0x2A // R-type: invalidate translation for vaddr in ra
	OpTLBIA Op = 0x2B // privileged: invalidate all translations

	// Exclusive accesses (R-type), the LDREX/STREX-style pair the SMP
	// benchmarks build locks from. LDX loads the word at [ra] into rd
	// and arms this hart's exclusive monitor on the address; STX stores
	// rb to [ra] iff the monitor is still armed for that address and
	// writes 0 (success) or 1 (lost the reservation) to rd. Any
	// intervening store to the monitored word — by any hart — clears
	// the reservation.
	OpLDX Op = 0x2C
	OpSTX Op = 0x2D

	OpUD Op = 0x3F // architecturally undefined, guaranteed to trap

	// NumOps bounds the primary opcode space.
	NumOps = 64
)

var opNames = map[Op]string{
	OpNOP: "nop", OpHALT: "halt",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSHL: "shl", OpSHR: "shr", OpSRA: "sra", OpMUL: "mul", OpCMP: "cmp",
	OpMOV: "mov", OpNOT: "not",
	OpADDI: "addi", OpSUBI: "subi", OpANDI: "andi", OpORI: "ori",
	OpXORI: "xori", OpSHLI: "shli", OpSHRI: "shri", OpSRAI: "srai",
	OpMULI: "muli", OpCMPI: "cmpi", OpMOVI: "movi", OpMOVT: "movt",
	OpLDW: "ldw", OpSTW: "stw", OpLDB: "ldb", OpSTB: "stb",
	OpLDT: "ldt", OpSTT: "stt",
	OpB: "b", OpBL: "bl", OpBR: "br", OpBLR: "blr",
	OpSVC: "svc", OpERET: "eret", OpMRS: "mrs", OpMSR: "msr",
	OpCPRD: "cprd", OpCPWR: "cpwr", OpTLBI: "tlbi", OpTLBIA: "tlbia",
	OpLDX: "ldx", OpSTX: "stx",
	OpUD: "ud",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op#%#02x", uint8(o))
}

// Valid reports whether o is an allocated opcode. Unallocated opcodes
// raise the undefined-instruction exception when executed.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok && o != OpUD
}

// Cond is a 4-bit branch condition evaluated against the NZCV flags.
type Cond uint8

// Branch conditions. CondNV never branches (a reserved, harmless
// encoding kept for compiler-defeating padding).
const (
	CondAL   Cond = iota // always
	CondEQ               // Z
	CondNE               // !Z
	CondLT               // N != V (signed <)
	CondGE               // N == V
	CondGT               // !Z && N == V
	CondLE               // Z || N != V
	CondLO               // !C (unsigned <)
	CondHS               // C
	CondHI               // C && !Z
	CondLS               // !C || Z
	CondMI               // N
	CondPL               // !N
	CondVS               // V
	CondVC               // !V
	CondNV               // never
	NumConds = 16
)

var condNames = [NumConds]string{
	"al", "eq", "ne", "lt", "ge", "gt", "le", "lo",
	"hs", "hi", "ls", "mi", "pl", "vs", "vc", "nv",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond#%d", uint8(c))
}

// Flags hold the NZCV condition bits produced by CMP/CMPI.
type Flags struct {
	N, Z, C, V bool
}

// Sub computes the flags for a-b, matching a hardware subtract-compare:
// C is set when there is NO borrow (ARM convention).
func Sub(a, b uint32) Flags {
	r := a - b
	return Flags{
		N: int32(r) < 0,
		Z: r == 0,
		C: a >= b,
		V: (int32(a) < int32(b)) != (int32(a)-int32(b) < 0),
	}
}

// Eval reports whether the condition holds under f.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondAL:
		return true
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondLT:
		return f.N != f.V
	case CondGE:
		return f.N == f.V
	case CondGT:
		return !f.Z && f.N == f.V
	case CondLE:
		return f.Z || f.N != f.V
	case CondLO:
		return !f.C
	case CondHS:
		return f.C
	case CondHI:
		return f.C && !f.Z
	case CondLS:
		return !f.C || f.Z
	case CondMI:
		return f.N
	case CondPL:
		return !f.N
	case CondVS:
		return f.V
	case CondVC:
		return !f.V
	default: // CondNV and out of range
		return false
	}
}

// Inst is a decoded instruction. A single struct covers all formats;
// unused fields are zero. Imm holds the sign- or zero-extended immediate
// as appropriate for Op, and Off the branch offset in bytes.
type Inst struct {
	Op   Op
	Rd   Reg
	Ra   Reg
	Rb   Reg
	Cond Cond
	Imm  int32 // I-type immediate, extended per opcode
	Off  int32 // B-type offset in bytes, relative to pc+4
	Raw  uint32
}

func (i Inst) String() string {
	switch i.Op {
	case OpNOP, OpHALT, OpERET, OpTLBIA, OpUD:
		return i.Op.String()
	case OpB, OpBL:
		return fmt.Sprintf("%s.%s %+d", i.Op, i.Cond, i.Off)
	case OpBR, OpBLR, OpTLBI:
		return fmt.Sprintf("%s %s", i.Op, i.Ra)
	case OpCMP:
		return fmt.Sprintf("cmp %s, %s", i.Ra, i.Rb)
	case OpCMPI:
		return fmt.Sprintf("cmpi %s, %d", i.Ra, i.Imm)
	case OpMOV, OpNOT:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Ra)
	case OpMOVI, OpMOVT:
		return fmt.Sprintf("%s %s, %#x", i.Op, i.Rd, uint32(i.Imm)&0xFFFF)
	case OpLDW, OpSTW, OpLDB, OpSTB, OpLDT, OpSTT:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Ra, i.Imm)
	case OpLDX:
		return fmt.Sprintf("ldx %s, [%s]", i.Rd, i.Ra)
	case OpSTX:
		return fmt.Sprintf("stx %s, %s, [%s]", i.Rd, i.Rb, i.Ra)
	case OpSVC:
		return fmt.Sprintf("svc %d", i.Imm)
	case OpMRS, OpMSR:
		return fmt.Sprintf("%s %s, c%d", i.Op, i.Rd, i.Imm)
	case OpCPRD, OpCPWR:
		return fmt.Sprintf("%s %s, p%d.%d", i.Op, i.Rd, i.Imm>>8, i.Imm&0xFF)
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpSRA, OpMUL:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Ra, i.Rb)
	default:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Ra, i.Imm)
	}
}

// signedImmOps marks I-type opcodes whose imm16 is sign-extended.
var signedImmOps = [NumOps]bool{
	OpADDI: true, OpSUBI: true, OpMULI: true, OpCMPI: true,
	OpLDW: true, OpSTW: true, OpLDB: true, OpSTB: true,
	OpLDT: true, OpSTT: true,
}

// SignedImm reports whether op's 16-bit immediate is sign-extended at
// decode time (arithmetic and addressing) rather than zero-extended
// (logical, MOVI/MOVT, system numbers).
func SignedImm(op Op) bool { return signedImmOps[op] }

// Encode packs an instruction into its 32-bit representation. It is the
// inverse of Decode for every well-formed Inst; the assembler and the
// property tests rely on the round-trip.
func Encode(i Inst) uint32 {
	w := uint32(i.Op) << 26
	switch i.Op {
	case OpB, OpBL:
		w |= uint32(i.Cond) << 22
		off := i.Off / WordBytes
		w |= uint32(off) & 0x3FFFFF
	case OpBR, OpBLR, OpTLBI:
		w |= uint32(i.Ra) << 18
	case OpNOP, OpHALT, OpERET, OpTLBIA, OpUD:
		// no operands
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpSRA, OpMUL,
		OpCMP, OpMOV, OpNOT, OpLDX, OpSTX:
		w |= uint32(i.Rd) << 22
		w |= uint32(i.Ra) << 18
		w |= uint32(i.Rb) << 14
	default: // I-type
		w |= uint32(i.Rd) << 22
		w |= uint32(i.Ra) << 18
		w |= uint32(i.Imm) & 0xFFFF
	}
	return w
}

// Decode unpacks a 32-bit word. It never fails: unallocated opcodes
// decode to an Inst whose Op is not Valid(), which engines must raise as
// an undefined-instruction exception.
func Decode(w uint32) Inst {
	i := Inst{
		Op:  Op(w >> 26),
		Raw: w,
	}
	switch i.Op {
	case OpB, OpBL:
		i.Cond = Cond((w >> 22) & 0xF)
		off := int32(w<<10) >> 10 // sign-extend 22 bits
		i.Off = off * WordBytes
	case OpBR, OpBLR, OpTLBI:
		i.Ra = Reg((w >> 18) & 0xF)
	case OpNOP, OpHALT, OpERET, OpTLBIA, OpUD:
		// no operands
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpSRA, OpMUL,
		OpCMP, OpMOV, OpNOT, OpLDX, OpSTX:
		i.Rd = Reg((w >> 22) & 0xF)
		i.Ra = Reg((w >> 18) & 0xF)
		i.Rb = Reg((w >> 14) & 0xF)
	default:
		i.Rd = Reg((w >> 22) & 0xF)
		i.Ra = Reg((w >> 18) & 0xF)
		imm := w & 0xFFFF
		if SignedImm(i.Op) {
			i.Imm = int32(int16(imm))
		} else {
			i.Imm = int32(imm)
		}
	}
	return i
}
