package isa

import "fmt"

// CtrlReg numbers the control registers reachable through MRS/MSR.
// These correspond to the system-control coprocessor state of the ARM
// profile and the MSR/CR space of the x86 profile; keeping them in one
// flat space keeps the engines profile-independent.
type CtrlReg uint16

const (
	CtrlVBAR    CtrlReg = 0  // exception vector table base
	CtrlTTBR    CtrlReg = 1  // page table base (physical)
	CtrlMMU     CtrlReg = 2  // bit0: enable; bit1: format (0=A, 1=B)
	CtrlPSR     CtrlReg = 3  // current status (read); MSR writes mask bits
	CtrlEPC     CtrlReg = 4  // exception return address
	CtrlEPSR    CtrlReg = 5  // status saved at exception entry
	CtrlFSR     CtrlReg = 6  // fault status (FaultCode | FSRWrite)
	CtrlFAR     CtrlReg = 7  // faulting virtual address
	CtrlSCR0    CtrlReg = 8  // kernel scratch
	CtrlSCR1    CtrlReg = 9  // kernel scratch
	CtrlCPUID   CtrlReg = 10 // read-only identification
	CtrlASID    CtrlReg = 11 // address-space id (reserved for future use)
	NumCtrlRegs         = 12
)

var ctrlNames = [NumCtrlRegs]string{
	"VBAR", "TTBR", "MMU", "PSR", "EPC", "EPSR",
	"FSR", "FAR", "SCR0", "SCR1", "CPUID", "ASID",
}

func (c CtrlReg) String() string {
	if int(c) < len(ctrlNames) {
		return ctrlNames[c]
	}
	return fmt.Sprintf("ctrl#%d", uint16(c))
}

// PSR layout.
const (
	PSRKernel uint32 = 1 << 0 // privilege: set = kernel mode
	PSRIRQOn  uint32 = 1 << 1 // interrupts enabled
	PSRN      uint32 = 1 << 31
	PSRZ      uint32 = 1 << 30
	PSRC      uint32 = 1 << 29
	PSRV      uint32 = 1 << 28
	PSRFlags         = PSRN | PSRZ | PSRC | PSRV
)

// PackFlags folds NZCV into PSR bit positions.
func PackFlags(f Flags) uint32 {
	var w uint32
	if f.N {
		w |= PSRN
	}
	if f.Z {
		w |= PSRZ
	}
	if f.C {
		w |= PSRC
	}
	if f.V {
		w |= PSRV
	}
	return w
}

// UnpackFlags extracts NZCV from a PSR image.
func UnpackFlags(psr uint32) Flags {
	return Flags{
		N: psr&PSRN != 0,
		Z: psr&PSRZ != 0,
		C: psr&PSRC != 0,
		V: psr&PSRV != 0,
	}
}

// MMU control bits.
const (
	MMUEnable  uint32 = 1 << 0
	MMUFormatB uint32 = 1 << 1 // 0 = format A (section/coarse), 1 = format B (2-level 4K)
)

// Exc identifies an exception class; the value is also the word index of
// its vector, so vector address = VBAR + 4*Exc.
type Exc uint8

const (
	ExcReset Exc = iota
	ExcUndef
	ExcSyscall
	ExcInstFault // prefetch abort: instruction fetch translation/permission fault
	ExcDataFault // data abort
	ExcIRQ
	NumExcs
)

var excNames = [NumExcs]string{
	"reset", "undef", "syscall", "inst-fault", "data-fault", "irq",
}

func (e Exc) String() string {
	if int(e) < len(excNames) {
		return excNames[e]
	}
	return fmt.Sprintf("exc#%d", uint8(e))
}

// Vector returns the vector address of e for a given VBAR.
func (e Exc) Vector(vbar uint32) uint32 { return vbar + uint32(e)*WordBytes }

// FaultCode describes why a memory access failed; stored in FSR.
type FaultCode uint32

const (
	FaultNone        FaultCode = 0
	FaultTranslation FaultCode = 1 // no valid mapping
	FaultPermission  FaultCode = 2 // mapping valid, access not allowed
	FaultBus         FaultCode = 3 // physical address not backed by RAM or device

	// FSRWrite is OR-ed into FSR when the faulting access was a store.
	FSRWrite uint32 = 1 << 8
)

func (f FaultCode) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultBus:
		return "bus"
	}
	return fmt.Sprintf("fault#%d", uint32(f))
}

// Coprocessor numbers. CP0 is reserved (system control is via MRS/MSR);
// CP1 is the "safe" benchmark coprocessor: on the arm profile it exposes
// a Domain-Access-Control-style register, on the x86 profile register 0
// models the maths-coprocessor reset the paper uses.
const (
	CPSystem = 0
	CPSafe   = 1
	NumCP    = 4
)

// CPUID field layout: [7:0] profile id, [15:8] major version,
// [23:16] hart id. Hart 0's CPUID therefore equals the pre-SMP value,
// so single-core guest images are bit-identical to what they were
// before multi-core support existed.
func CPUIDValue(profile uint8, version uint8) uint32 {
	return uint32(profile) | uint32(version)<<8
}

// CPUIDHartShift positions the hart-id field inside CPUID.
const CPUIDHartShift = 16

// CPUIDWithHart folds a hart id into a CPUID value.
func CPUIDWithHart(cpuid uint32, hart int) uint32 {
	return cpuid&^uint32(0xFF<<CPUIDHartShift) | uint32(hart&0xFF)<<CPUIDHartShift
}

// HartID extracts the hart-id field from a CPUID value.
func HartID(cpuid uint32) int { return int(cpuid>>CPUIDHartShift) & 0xFF }
