package isa

import "testing"

func TestCtrlRegNames(t *testing.T) {
	if CtrlVBAR.String() != "VBAR" || CtrlFAR.String() != "FAR" {
		t.Error("control register names")
	}
	if CtrlReg(99).String() == "" {
		t.Error("out-of-range name must not be empty")
	}
}

func TestFaultCodeNames(t *testing.T) {
	cases := map[FaultCode]string{
		FaultNone:        "none",
		FaultTranslation: "translation",
		FaultPermission:  "permission",
		FaultBus:         "bus",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("%d: %q", f, f.String())
		}
	}
	if FaultCode(77).String() == "" {
		t.Error("unknown fault code")
	}
}

func TestExcNames(t *testing.T) {
	if ExcDataFault.String() != "data-fault" || ExcIRQ.String() != "irq" {
		t.Error("exception names")
	}
	if Exc(42).String() == "" {
		t.Error("out-of-range exception")
	}
}

func TestMMUBits(t *testing.T) {
	if MMUEnable&MMUFormatB != 0 {
		t.Error("MMU control bits overlap")
	}
	if PSRKernel&PSRIRQOn != 0 || PSRFlags&(PSRKernel|PSRIRQOn) != 0 {
		t.Error("PSR bits overlap")
	}
}
