package arch

import (
	"simbench/internal/mmu"
	"simbench/internal/platform"
)

func newBuilder(p *platform.Platform, formatB bool) (*mmu.Builder, error) {
	return mmu.NewBuilder(p.M.Bus, 0x100000, 0x200000, formatB)
}
