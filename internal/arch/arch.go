// Package arch provides the architecture support packages of the
// SimBench porting structure: the benchmarks themselves contain no
// architecture-specific code; everything that differs between the
// arm-like and x86-like profiles — how to issue a system call, execute
// an undefined instruction, access the safe coprocessor, perform
// non-privileged accesses, and how the faulting-call/stack-unwind pair
// works — is emitted through this interface. Porting SimBench to a new
// profile means implementing Support, exactly as the paper describes
// porting to a new architecture.
package arch

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

// Support is an architecture support package.
type Support interface {
	// Name identifies the architecture profile ("arm" or "x86").
	Name() string
	// Profile returns the machine profile to instantiate.
	Profile() machine.Profile

	// EmitSyscall emits one system-call instruction.
	EmitSyscall(a *asm.Assembler)
	// EmitUndef emits the architecturally undefined instruction.
	EmitUndef(a *asm.Assembler)
	// EmitCoprocAccess emits the profile's "safe" coprocessor access
	// (ARM: read the DACR-style register; x86: reset the maths
	// coprocessor). May clobber rd.
	EmitCoprocAccess(a *asm.Assembler, rd isa.Reg)

	// NonPrivSupported reports whether the profile has non-privileged
	// access instructions (the paper: ARM yes, x86 no).
	NonPrivSupported() bool
	// EmitNonPrivLoad emits a non-privileged load when supported, and
	// nothing otherwise (the benchmark becomes a no-op, as the paper's
	// x86 port does).
	EmitNonPrivLoad(a *asm.Assembler, rd, ra isa.Reg, off int32)
	// EmitNonPrivStore is the store counterpart.
	EmitNonPrivStore(a *asm.Assembler, rd, ra isa.Reg, off int32)

	// EmitFaultingCall emits the profile's call sequence for a call
	// through a register that is expected to fault, such that
	// EmitInstFaultReturn can recover. Execution resumes at ret.
	EmitFaultingCall(a *asm.Assembler, target isa.Reg, ret asm.Label)
	// EmitInstFaultReturn emits the instruction-fault handler epilogue
	// that returns to the call site: ARM reads the link register, x86
	// unwinds the return address from the stack.
	EmitInstFaultReturn(a *asm.Assembler, tmp isa.Reg)
}

// For returns the support package for a profile.
func For(p machine.Profile) Support {
	switch p {
	case machine.ProfileARM:
		return ARM{}
	case machine.ProfileX86:
		return X86{}
	}
	panic(fmt.Sprintf("arch: unknown profile %v", p))
}

// All returns support packages for every profile.
func All() []Support { return []Support{ARM{}, X86{}} }

// ARM is the arm-like architecture support package: format-A page
// tables, LDT/STT non-privileged accesses, link-register call
// convention, DACR-style safe coprocessor register.
type ARM struct{}

// Name implements Support.
func (ARM) Name() string { return "arm" }

// Profile implements Support.
func (ARM) Profile() machine.Profile { return machine.ProfileARM }

// EmitSyscall implements Support.
func (ARM) EmitSyscall(a *asm.Assembler) { a.SVC(0) }

// EmitUndef implements Support.
func (ARM) EmitUndef(a *asm.Assembler) { a.UD() }

// EmitCoprocAccess implements Support: read the domain-access-control
// register of the safe coprocessor.
func (ARM) EmitCoprocAccess(a *asm.Assembler, rd isa.Reg) {
	a.CPRD(rd, isa.CPSafe, device.CPRegDACR)
}

// NonPrivSupported implements Support.
func (ARM) NonPrivSupported() bool { return true }

// EmitNonPrivLoad implements Support.
func (ARM) EmitNonPrivLoad(a *asm.Assembler, rd, ra isa.Reg, off int32) {
	a.LDT(rd, ra, off)
}

// EmitNonPrivStore implements Support.
func (ARM) EmitNonPrivStore(a *asm.Assembler, rd, ra isa.Reg, off int32) {
	a.STT(rd, ra, off)
}

// EmitFaultingCall implements Support: a plain link-register call; the
// return label must directly follow the call.
func (ARM) EmitFaultingCall(a *asm.Assembler, target isa.Reg, ret asm.Label) {
	a.BLR(target)
	a.Label(ret)
}

// EmitInstFaultReturn implements Support: the return address is in the
// link register.
func (ARM) EmitInstFaultReturn(a *asm.Assembler, tmp isa.Reg) {
	a.MSR(isa.CtrlEPC, isa.LR)
	a.ERET()
}

// X86 is the x86-like architecture support package: format-B page
// tables, no non-privileged accesses, stack-based call convention for
// the faulting call (the handler performs stack unwinding, as the
// paper notes), maths-coprocessor reset as the safe coprocessor op.
type X86 struct{}

// Name implements Support.
func (X86) Name() string { return "x86" }

// Profile implements Support.
func (X86) Profile() machine.Profile { return machine.ProfileX86 }

// EmitSyscall implements Support.
func (X86) EmitSyscall(a *asm.Assembler) { a.SVC(0x80) }

// EmitUndef implements Support.
func (X86) EmitUndef(a *asm.Assembler) { a.UD() }

// EmitCoprocAccess implements Support: reset the maths coprocessor
// (a write, like x86 FNINIT).
func (X86) EmitCoprocAccess(a *asm.Assembler, rd isa.Reg) {
	a.CPWR(isa.CPSafe, device.CPRegReset, rd)
}

// NonPrivSupported implements Support.
func (X86) NonPrivSupported() bool { return false }

// EmitNonPrivLoad implements Support: no equivalent exists; emit
// nothing so the benchmark kernel degenerates to its loop skeleton.
func (X86) EmitNonPrivLoad(a *asm.Assembler, rd, ra isa.Reg, off int32) {}

// EmitNonPrivStore implements Support.
func (X86) EmitNonPrivStore(a *asm.Assembler, rd, ra isa.Reg, off int32) {}

// EmitFaultingCall implements Support: push the return address onto
// the stack CISC-style, then jump.
func (X86) EmitFaultingCall(a *asm.Assembler, target isa.Reg, ret asm.Label) {
	a.SUBI(isa.SP, isa.SP, 4)
	a.LA(isa.LR, ret)
	a.STW(isa.LR, isa.SP, 0)
	a.BR(target)
	a.Label(ret)
	a.ADDI(isa.SP, isa.SP, 4)
}

// EmitInstFaultReturn implements Support: unwind the return address
// from the guest stack.
func (X86) EmitInstFaultReturn(a *asm.Assembler, tmp isa.Reg) {
	a.LDW(tmp, isa.SP, 0)
	a.MSR(isa.CtrlEPC, tmp)
	a.ERET()
}
