package arch

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/engine/interp"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

func TestForAndAll(t *testing.T) {
	if For(machine.ProfileARM).Name() != "arm" {
		t.Error("arm lookup")
	}
	if For(machine.ProfileX86).Name() != "x86" {
		t.Error("x86 lookup")
	}
	if len(All()) != 2 {
		t.Error("two profiles")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown profile must panic")
		}
	}()
	For(machine.Profile(99))
}

func TestNonPrivEmission(t *testing.T) {
	a := asm.New()
	ARM{}.EmitNonPrivLoad(a, isa.R1, isa.R2, 4)
	ARM{}.EmitNonPrivStore(a, isa.R1, isa.R2, 8)
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments[0].Data) != 8 {
		t.Error("arm nonpriv should emit LDT+STT")
	}

	a2 := asm.New()
	X86{}.EmitNonPrivLoad(a2, isa.R1, isa.R2, 4)
	X86{}.EmitNonPrivStore(a2, isa.R1, isa.R2, 8)
	a2.NOP() // so the program is non-empty
	p2, err := a2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Segments[0].Data) != 4 {
		t.Error("x86 nonpriv must emit nothing (no-op benchmark)")
	}
	if !(ARM{}).NonPrivSupported() || (X86{}).NonPrivSupported() {
		t.Error("NonPrivSupported flags")
	}
}

// TestFaultingCallConventions runs the full faulting-call/handler
// round trip for both architectures on the reference interpreter:
// call into unmapped memory, take the prefetch abort, and return to
// the call site through the architecture's convention.
func TestFaultingCallConventions(t *testing.T) {
	for _, sup := range All() {
		t.Run(sup.Name(), func(t *testing.T) {
			p := platform.New(sup.Profile(), 4<<20)
			a := asm.New()
			a.Label("_start")
			a.LoadImm32(isa.SP, 0x70000)
			a.LA(isa.R1, "vectors")
			a.MSR(isa.CtrlVBAR, isa.R1)
			// MMU on via the identity section/pages built below.
			a.LoadImm32(isa.R1, 0x100000)
			a.MSR(isa.CtrlTTBR, isa.R1)
			ctl := int32(isa.MMUEnable)
			if sup.Profile().FormatB() {
				ctl |= int32(isa.MMUFormatB)
			}
			a.MOVI(isa.R2, ctl)
			a.MSR(isa.CtrlMMU, isa.R2)

			a.LoadImm32(isa.R9, 0x00500000) // unmapped target
			a.MOVI(isa.R8, 0)
			a.MOVI(isa.R10, 3) // three faulting calls
			a.Label("loop")
			sup.EmitFaultingCall(a, isa.R9, asm.Label("ret_"+sup.Name()))
			a.ADDI(isa.R8, isa.R8, 1)
			a.SUBI(isa.R10, isa.R10, 1)
			a.CMPI(isa.R10, 0)
			a.B(isa.CondNE, "loop")
			a.HALT()

			a.Org(0x800)
			a.Label("vectors")
			a.HALT()
			a.HALT()
			a.HALT()
			a.B(isa.CondAL, "ifh")
			a.HALT()
			a.HALT()
			a.Label("ifh")
			sup.EmitInstFaultReturn(a, isa.R1)

			prog, err := a.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.M.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			// Bootloader: identity map low memory only.
			if err := boot(p, sup.Profile().FormatB()); err != nil {
				t.Fatal(err)
			}
			p.M.Reset()
			if _, err := interp.New().Run(p.Harts(), 100_000); err != nil {
				t.Fatalf("%v (pc=%#x)", err, p.M.CPU.PC)
			}
			if got := p.M.CPU.Regs[isa.R8]; got != 3 {
				t.Errorf("resumed %d times, want 3", got)
			}
			if p.M.ExcCount[isa.ExcInstFault] != 3 {
				t.Errorf("inst faults %d", p.M.ExcCount[isa.ExcInstFault])
			}
		})
	}
}

func TestCoprocStyles(t *testing.T) {
	// ARM reads (DACR); x86 writes (FPU reset). Both must count as
	// coprocessor accesses and leave the machine consistent.
	for _, sup := range All() {
		p := platform.New(sup.Profile(), 1<<20)
		a := asm.New()
		sup.EmitCoprocAccess(a, isa.R3)
		a.HALT()
		prog, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		p.M.LoadProgram(prog)
		p.M.Reset()
		st, err := interp.New().Run(p.Harts(), 1000)
		if err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		if st.CoprocAccesses != 1 {
			t.Errorf("%s: coproc accesses %d", sup.Name(), st.CoprocAccesses)
		}
		if p.Coproc.Accesses() != 1 {
			t.Errorf("%s: device-side count %d", sup.Name(), p.Coproc.Accesses())
		}
	}
}

func TestSyscallNumbersDiffer(t *testing.T) {
	// Cosmetic but deliberate: the two ports use their conventional
	// trap numbers (ARM svc #0, x86 int 0x80).
	armProg := asm.New()
	ARM{}.EmitSyscall(armProg)
	x86Prog := asm.New()
	X86{}.EmitSyscall(x86Prog)
	pa, _ := armProg.Assemble()
	px, _ := x86Prog.Assemble()
	word := func(d []byte) uint32 {
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	}
	ia := isa.Decode(word(pa.Segments[0].Data))
	ix := isa.Decode(word(px.Segments[0].Data))
	if ia.Op != isa.OpSVC || ix.Op != isa.OpSVC {
		t.Fatalf("not SVC: %v %v", ia.Op, ix.Op)
	}
	if ia.Imm == ix.Imm {
		t.Error("expected distinct syscall numbers per profile")
	}
}

func boot(p *platform.Platform, formatB bool) error {
	tb, err := newBuilder(p, formatB)
	if err != nil {
		return err
	}
	if formatB {
		return tb.MapRange(0, 0, 0x80000, true, false)
	}
	return tb.MapSection(0, 0, true, false)
}
