// Package report provides the result-analysis and presentation layer:
// aligned text tables, speedup series against a baseline, geometric
// means (the paper's aggregate statistic), and result aggregation for
// the operation-density experiment.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"simbench/internal/core"
)

// Geomean returns the geometric mean of xs, ignoring non-positive
// values (matching how benchmark suites aggregate speedups). It
// returns 0 for an empty input.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Speedup returns base/measured: >1 means measured is faster than the
// baseline, matching the paper's speedup axes.
func Speedup(base, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(base) / float64(measured)
}

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
		fmt.Fprintln(w, strings.Repeat("-", len(t.Title)))
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Columns) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Series is one labelled line of a sweep figure (e.g. one benchmark's
// speedup across versions).
type Series struct {
	Name   string
	Points []float64
}

// FprintSeries renders a set of series over common x labels, one x per
// row — the textual equivalent of the paper's sweep graphs.
func FprintSeries(w io.Writer, title string, xlabels []string, series []Series) {
	t := Table{Title: title, Columns: append([]string{"version"}, names(series)...)}
	for i, x := range xlabels {
		row := []string{x}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.3f", s.Points[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// Seconds formats a duration in seconds with three decimals, the unit
// of the paper's Fig. 7.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Density formats an operation density the way Fig. 3 does: fixed
// point when large enough, scientific otherwise, and "0" for zero.
func Density(d float64) string {
	switch {
	case d == 0:
		return "0"
	case d >= 0.001:
		return fmt.Sprintf("%.3f", d)
	default:
		return fmt.Sprintf("%.2E", d)
	}
}

// Aggregate folds many results into one (for suite-wide operation
// densities): statistics, exception counts and device counters are
// summed.
func Aggregate(results []*core.Result) *core.Result {
	agg := &core.Result{}
	for _, r := range results {
		agg.Stats.Add(r.Stats)
		for i := range agg.Exc {
			agg.Exc[i] += r.Exc[i]
		}
		agg.SafeDevAccesses += r.SafeDevAccesses
		agg.CoprocDevAccesses += r.CoprocDevAccesses
		agg.SWIRaised += r.SWIRaised
		agg.Iters += r.Iters
		agg.Kernel += r.Kernel
		agg.Total += r.Total
	}
	return agg
}
