package report

import (
	"context"
	"errors"
	"fmt"
	"io"

	"simbench/internal/core"
	"simbench/internal/sched"
	"simbench/internal/stats"
)

// MatrixTable collates a result set into one table per guest
// architecture, in matrix order (architecture-major, then benchmark,
// then engine) — the one rendering shared by cmd/simbench's tables and
// figures.Fig7, so cached, cancelled, failed and noise-annotated cells
// read identically on every path:
//
//   - a measured cell prints its kernel seconds; a cached cell prints
//     exactly like a fresh one (the store round-trips full results, and
//     incremental runs must render byte-identical tables),
//   - a cell with enough history prints "seconds±band" — the paper's
//     tables with confidence attached,
//   - a failed cell prints ERR,
//   - a cancelled cell prints "-" (it never ran; the scheduler's error
//     summary reports the cancellation once, not per cell).
type MatrixTable struct {
	// Title renders each per-architecture table title.
	Title func(archName string) string
	// EngineCols are the engine column headers, one per engine in
	// matrix order.
	EngineCols []string
	// Arches and Benches are the row axes in matrix order.
	Arches  []string
	Benches []*core.Benchmark
	// Cores is the guest core-count axis; empty means single-core. A
	// multi-valued axis renders one row per benchmark×count, labelled
	// "name @Nc", matching the scheduler's benchmark-major expansion.
	Cores []int
	// BenchLabel picks the row label; nil means Benchmark.Name
	// (figures.Fig7 uses the paper's display titles instead).
	BenchLabel func(*core.Benchmark) string
	// Iters reports the iteration count column; nil means PaperIters.
	Iters func(*core.Benchmark) int64
	// Noise, when set, annotates measured cells with their historical
	// noise band (±half-width); cells it returns nil for print plain.
	Noise func(Record) *stats.Band
}

// Fprint renders the tables. results must be in matrix order and hold
// exactly len(Arches)×len(Benches)×len(EngineCols) cells.
func (mt *MatrixTable) Fprint(w io.Writer, results []sched.Result) {
	benchLabel := mt.BenchLabel
	if benchLabel == nil {
		benchLabel = func(b *core.Benchmark) string { return b.Name }
	}
	cores := mt.Cores
	if len(cores) == 0 {
		cores = []int{1}
	}
	// The core count only reaches the row label when the axis is
	// multi-valued: a single-core table must render byte-identically to
	// its pre-SMP form.
	rowLabel := func(b *core.Benchmark, c int) string {
		if len(cores) == 1 {
			return benchLabel(b)
		}
		return fmt.Sprintf("%s @%dc", benchLabel(b), c)
	}
	i := 0
	for _, archName := range mt.Arches {
		t := Table{
			Title:   mt.Title(archName),
			Columns: append([]string{"benchmark", "iters"}, mt.EngineCols...),
		}
		for _, b := range mt.Benches {
			iters := b.PaperIters
			if mt.Iters != nil {
				iters = mt.Iters(b)
			}
			for _, c := range cores {
				row := []string{rowLabel(b, c), fmt.Sprint(iters)}
				for range mt.EngineCols {
					row = append(row, mt.cell(results[i]))
					i++
				}
				t.AddRow(row...)
			}
		}
		t.Fprint(w)
	}
}

// cell renders one matrix position.
func (mt *MatrixTable) cell(r sched.Result) string {
	switch {
	case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
		return "-"
	case r.Err != nil:
		return "ERR"
	}
	s := Seconds(r.Kernel)
	if mt.Noise != nil {
		// A degenerate band (zero observed spread — e.g. a history of
		// pure cache replays) annotates nothing: ±0.000 is clutter, not
		// confidence.
		if b := mt.Noise(NewRecord(r)); b != nil && !b.Degenerate() {
			s += fmt.Sprintf("±%.3f", b.HalfWidth())
		}
	}
	return s
}
