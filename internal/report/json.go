package report

import (
	"encoding/json"
	"io"

	"simbench/internal/sched"
)

// Record is the machine-readable form of one matrix cell, the unit of
// the -json output: the cell's coordinates, the measured times, the
// retired-instruction count, and the error text for failed cells.
type Record struct {
	Benchmark string `json:"benchmark"`
	Category  string `json:"category,omitempty"`
	Engine    string `json:"engine"`
	Arch      string `json:"arch"`
	Iters     int64  `json:"iters"`
	Repeats   int    `json:"repeats,omitempty"`

	KernelSeconds float64 `json:"kernel_seconds"`
	TotalSeconds  float64 `json:"total_seconds,omitempty"`
	Instructions  uint64  `json:"instructions,omitempty"`
	TestedOps     uint64  `json:"tested_ops,omitempty"`

	Error string `json:"error,omitempty"`
}

// NewRecord flattens one scheduler result into a Record. Repeats and
// Iters are recorded as executed (Job.Effective) — a job that leaves
// them unset runs one measurement at the benchmark's paper count — so
// records of equivalent cells compare equal (the store's cache keys
// and run diffs both rely on this).
func NewRecord(r sched.Result) Record {
	iters, repeats := r.Job.Effective()
	rec := Record{
		Benchmark: r.Job.Bench.Name,
		Category:  string(r.Job.Bench.Category),
		Engine:    r.Job.Engine.Name,
		Arch:      r.Job.Arch.Name(),
		Iters:     iters,
		Repeats:   repeats,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	rec.KernelSeconds = r.Kernel.Seconds()
	if r.Run != nil {
		rec.TotalSeconds = r.Run.Total.Seconds()
		rec.Instructions = r.Run.Stats.Instructions
		rec.TestedOps = r.Run.TestedOps()
	}
	return rec
}

// FprintJSON writes a result set as an indented JSON array in matrix
// order, one Record per cell. Failed cells are included with their
// error text rather than dropped, so downstream tooling sees the whole
// matrix.
func FprintJSON(w io.Writer, results []sched.Result) error {
	recs := make([]Record, len(results))
	for i, r := range results {
		recs[i] = NewRecord(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
