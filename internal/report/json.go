package report

import (
	"encoding/json"
	"io"

	"simbench/internal/sched"
	"simbench/internal/stats"
)

// Record is the machine-readable form of one matrix cell, the unit of
// the -json output: the cell's coordinates, the measured times, the
// retired-instruction count, and the error text for failed cells.
type Record struct {
	Benchmark string `json:"benchmark"`
	Category  string `json:"category,omitempty"`
	Engine    string `json:"engine"`
	Arch      string `json:"arch"`
	Iters     int64  `json:"iters"`
	Repeats   int    `json:"repeats,omitempty"`
	// Cores is the guest core count; omitted (and meaning 1) for
	// single-core cells, so pre-SMP records keep their exact encoding.
	Cores int `json:"cores,omitempty"`

	KernelSeconds float64 `json:"kernel_seconds"`
	TotalSeconds  float64 `json:"total_seconds,omitempty"`
	Instructions  uint64  `json:"instructions,omitempty"`
	TestedOps     uint64  `json:"tested_ops,omitempty"`

	Error string `json:"error,omitempty"`

	// Cached reports that this record replays a stored measurement
	// rather than a fresh one. The noise model skips cached records:
	// a replay duplicates a sample already in history, and pooling it
	// would collapse the band around whichever measurement happened to
	// be cached.
	Cached bool `json:"cached,omitempty"`

	// Key is the cell's content address in the result store, stamped
	// by the store when the record enters run history; records built
	// outside a store carry none. simbase gc uses these references to
	// decide which blobs recent history still pins.
	Key string `json:"key,omitempty"`

	// Noise, when the cell has enough measurement history, is its
	// historical noise band: the interval a new measurement must leave
	// before it counts as a real change rather than run-to-run jitter.
	Noise *stats.Band `json:"noise,omitempty"`
}

// NewRecord flattens one scheduler result into a Record. Repeats and
// Iters are recorded as executed (Job.Effective) — a job that leaves
// them unset runs one measurement at the benchmark's paper count — so
// records of equivalent cells compare equal (the store's cache keys
// and run diffs both rely on this).
func NewRecord(r sched.Result) Record {
	iters, repeats := r.Job.Effective()
	rec := Record{
		Benchmark: r.Job.Bench.Name,
		Category:  string(r.Job.Bench.Category),
		Engine:    r.Job.Engine.Name,
		Arch:      r.Job.Arch.Name(),
		Iters:     iters,
		Repeats:   repeats,
		Cached:    r.Cached,
	}
	if c := r.Job.EffectiveCores(); c > 1 {
		rec.Cores = c
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	rec.KernelSeconds = r.Kernel.Seconds()
	if r.Run != nil {
		rec.TotalSeconds = r.Run.Total.Seconds()
		rec.Instructions = r.Run.Stats.Instructions
		rec.TestedOps = r.Run.TestedOps()
	}
	return rec
}

// Records flattens a result set into one Record per cell, in matrix
// order. Failed cells are included with their error text rather than
// dropped, so downstream tooling sees the whole matrix.
func Records(results []sched.Result) []Record {
	recs := make([]Record, len(results))
	for i, r := range results {
		recs[i] = NewRecord(r)
	}
	return recs
}

// FprintRecords writes records as an indented JSON array.
func FprintRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// FprintJSON writes a result set as an indented JSON array in matrix
// order — Records followed by FprintRecords, for callers with no
// annotations to add in between.
func FprintJSON(w io.Writer, results []sched.Result) error {
	return FprintRecords(w, Records(results))
}
