package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/sched"
)

func testResult(kernel time.Duration, err error) sched.Result {
	b := &core.Benchmark{Name: "mem.hot", Title: "Hot Memory", Category: core.CatMemory, PaperIters: 100}
	r := sched.Result{
		Job: sched.Job{
			Bench:   b,
			Engine:  sched.Engine{Name: "interp"},
			Arch:    arch.ARM{},
			Iters:   64,
			Repeats: 2,
		},
		Kernel: kernel,
		Err:    err,
	}
	if err == nil {
		r.Run = &core.Result{
			Benchmark: b,
			Kernel:    kernel,
			Total:     2 * kernel,
			Stats:     engine.Stats{Instructions: 1234},
		}
	}
	return r
}

func TestFprintJSON(t *testing.T) {
	var sb strings.Builder
	results := []sched.Result{
		testResult(1500*time.Millisecond, nil),
		testResult(0, errors.New("guest aborted")),
	}
	if err := FprintJSON(&sb, results); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal([]byte(sb.String()), &recs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	ok := recs[0]
	if ok.Benchmark != "mem.hot" || ok.Engine != "interp" || ok.Arch != "arm" ||
		ok.Iters != 64 || ok.KernelSeconds != 1.5 || ok.Instructions != 1234 {
		t.Errorf("record = %+v", ok)
	}
	if ok.Error != "" {
		t.Errorf("healthy record has error %q", ok.Error)
	}
	bad := recs[1]
	if bad.Error != "guest aborted" || bad.KernelSeconds != 0 {
		t.Errorf("failed record = %+v", bad)
	}
	// Failed cells stay in matrix position, not filtered.
	if !strings.Contains(sb.String(), `"error": "guest aborted"`) {
		t.Errorf("error text missing from output:\n%s", sb.String())
	}
}
