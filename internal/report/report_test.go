package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"simbench/internal/core"
	"simbench/internal/engine"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-9 {
		t.Errorf("geomean(ones) = %f", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	// Non-positive values are ignored, not fatal.
	if g := Geomean([]float64{0, 4, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean with zero = %f", g)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a)/100 + 0.01, float64(b)/100 + 0.01, float64(c)/100 + 0.01}
		doubled := []float64{xs[0] * 2, xs[1] * 2, xs[2] * 2}
		return math.Abs(Geomean(doubled)-2*Geomean(xs)) < 1e-9*Geomean(doubled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(2*time.Second, time.Second); s != 2 {
		t.Errorf("speedup %f", s)
	}
	if s := Speedup(time.Second, 2*time.Second); s != 0.5 {
		t.Errorf("slowdown %f", s)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Error("zero measurement")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"T", "a", "b", "x", "longer", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesRendering(t *testing.T) {
	var sb strings.Builder
	FprintSeries(&sb, "S", []string{"v1", "v2"}, []Series{
		{Name: "x", Points: []float64{1, 1.5}},
		{Name: "y", Points: []float64{1}},
	})
	out := sb.String()
	if !strings.Contains(out, "1.500") {
		t.Errorf("points missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("short series must render a placeholder")
	}
}

func TestDensityFormat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.909:   "0.909",
		0.003:   "0.003",
		8.49e-7: "8.49E-07",
	}
	for in, want := range cases {
		if got := Density(in); got != want {
			t.Errorf("Density(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeconds(t *testing.T) {
	if s := Seconds(1500 * time.Millisecond); s != "1.500" {
		t.Errorf("Seconds = %q", s)
	}
}

func TestAggregate(t *testing.T) {
	r1 := &core.Result{Stats: engine.Stats{Instructions: 10, TLBMisses: 1}, Iters: 5}
	r1.Exc[2] = 3
	r1.SafeDevAccesses = 2
	r2 := &core.Result{Stats: engine.Stats{Instructions: 30, TLBMisses: 4}, Iters: 7}
	r2.Exc[2] = 1
	r2.CoprocDevAccesses = 6
	agg := Aggregate([]*core.Result{r1, r2})
	if agg.Stats.Instructions != 40 || agg.Stats.TLBMisses != 5 {
		t.Errorf("stats %+v", agg.Stats)
	}
	if agg.Exc[2] != 4 || agg.SafeDevAccesses != 2 || agg.CoprocDevAccesses != 6 || agg.Iters != 12 {
		t.Errorf("agg %+v", agg)
	}
}
