package report

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/sched"
	"simbench/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// collateFixture builds a deterministic two-arch, two-bench, two-engine
// result set exercising every cell rendering: measured, cached,
// noise-annotated, failed, and cancelled.
func collateFixture() (*MatrixTable, []sched.Result) {
	benches := []*core.Benchmark{
		{Name: "mem.hot", Title: "Hot Memory", PaperIters: 1000},
		{Name: "exc.syscall", Title: "Syscall", PaperIters: 500},
	}
	engines := []string{"interp", "dbt"}
	arches := []string{"arm", "x86"}

	job := func(a int, b, e int) sched.Job {
		return sched.Job{
			Bench:  benches[b],
			Engine: sched.Engine{Name: engines[e]},
			Arch:   arch.All()[a],
			Iters:  int64(100 * (b + 1)),
		}
	}
	mk := func(a, b, e int, kernel time.Duration, cached bool) sched.Result {
		j := job(a, b, e)
		return sched.Result{
			Job:    j,
			Kernel: kernel,
			Run:    &core.Result{Benchmark: j.Bench, Engine: j.Engine.Name, Arch: arches[a], Iters: j.Iters, Kernel: kernel},
			Cached: cached,
		}
	}
	results := []sched.Result{
		// arm: a fresh cell, then a cached one — they must render alike.
		mk(0, 0, 0, 1234*time.Millisecond, false),
		mk(0, 0, 1, 250*time.Millisecond, true),
		// arm row 2: a noise-annotated cell and a failed one.
		mk(0, 1, 0, 500*time.Millisecond, false),
		{Job: job(0, 1, 1), Err: errors.New("guest aborted")},
		// x86: a cancelled cell and a plain one.
		{Job: job(1, 0, 0), Err: context.Canceled},
		mk(1, 0, 1, 42*time.Millisecond, false),
		mk(1, 1, 0, 77*time.Millisecond, false),
		{Job: job(1, 1, 1), Err: context.DeadlineExceeded},
	}
	noisy := &stats.Band{N: 6, Median: 0.5, MAD: 0.01, Lo: 0.455, Hi: 0.52}
	mt := &MatrixTable{
		Title:      func(a string) string { return fmt.Sprintf("SimBench, %s guest (kernel seconds)", a) },
		EngineCols: engines,
		Arches:     arches,
		Benches:    benches,
		Iters:      func(b *core.Benchmark) int64 { return b.PaperIters / 10 },
		Noise: func(r Record) *stats.Band {
			if r.Arch == "arm" && r.Benchmark == "exc.syscall" && r.Engine == "interp" {
				return noisy
			}
			return nil
		},
	}
	return mt, results
}

func TestMatrixTableGolden(t *testing.T) {
	mt, results := collateFixture()
	var sb strings.Builder
	mt.Fprint(&sb, results)
	got := sb.String()

	golden := filepath.Join("testdata", "matrix_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestMatrixTableGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendering diverged from %s:\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}

// TestMatrixTableCellRendering pins each cell class individually, so a
// golden regeneration cannot silently change the contract.
func TestMatrixTableCellRendering(t *testing.T) {
	mt, results := collateFixture()
	var sb strings.Builder
	mt.Fprint(&sb, results)
	out := sb.String()

	for _, want := range []string{
		"1.234",       // fresh measurement
		"0.250",       // cached measurement, rendered exactly like a fresh one
		"0.500±0.045", // noise-annotated: seconds ± band half-width
		"ERR",         // failed cell
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cancelled cells render "-", once per cancelled cell.
	if got := strings.Count(out, "\t-\t") + strings.Count(out, "  -"); got == 0 {
		t.Errorf("no cancelled cell marker in:\n%s", out)
	}
	// Without a Noise hook the same cells render plain.
	mt.Noise = nil
	sb.Reset()
	mt.Fprint(&sb, results)
	if strings.Contains(sb.String(), "±") {
		t.Errorf("± without noise hook:\n%s", sb.String())
	}
}

// coresFixture builds a one-arch result set over a multi-valued cores
// axis in matrix order (benchmark-major, cores, then engines), so each
// benchmark's core counts land as adjacent rows.
func coresFixture() (*MatrixTable, []sched.Result) {
	benches := []*core.Benchmark{
		{Name: "smp.pingpong", PaperIters: 1000},
		{Name: "smp.falseshare", PaperIters: 2000},
	}
	engines := []string{"interp", "dbt"}
	cores := []int{1, 2, 4}
	var results []sched.Result
	for b, bench := range benches {
		for c, n := range cores {
			for e, eng := range engines {
				j := sched.Job{
					Bench:  bench,
					Engine: sched.Engine{Name: eng},
					Arch:   arch.All()[0],
					Iters:  bench.PaperIters,
					Cores:  n,
				}
				kernel := time.Duration(100*(b+1)+10*(c+1)+e) * time.Millisecond
				results = append(results, sched.Result{
					Job:    j,
					Kernel: kernel,
					Run:    &core.Result{Benchmark: bench, Engine: eng, Arch: "arm", Iters: j.Iters, Cores: n, Kernel: kernel},
				})
			}
		}
	}
	mt := &MatrixTable{
		Title:      func(a string) string { return fmt.Sprintf("SMP sweep, %s guest (kernel seconds)", a) },
		EngineCols: engines,
		Arches:     []string{"arm"},
		Benches:    benches,
		Cores:      cores,
	}
	return mt, results
}

// TestMatrixTableCoresGolden pins the multi-core axis rendering: rows
// labelled "name @Nc" per benchmark×count in scheduler expansion
// order.
func TestMatrixTableCoresGolden(t *testing.T) {
	mt, results := coresFixture()
	var sb strings.Builder
	mt.Fprint(&sb, results)
	got := sb.String()

	golden := filepath.Join("testdata", "matrix_table_cores.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestMatrixTableCoresGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendering diverged from %s:\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}

// TestMatrixTableCoresLabels pins the labelling contract directly, so
// a golden regeneration cannot silently change it: every bench×count
// row is present with the "@Nc" suffix, in benchmark-major order, and
// a single-valued axis renders no suffix at all (byte-compat with the
// pre-SMP form).
func TestMatrixTableCoresLabels(t *testing.T) {
	mt, results := coresFixture()
	var sb strings.Builder
	mt.Fprint(&sb, results)
	out := sb.String()

	var rows []string
	for _, b := range []string{"smp.pingpong", "smp.falseshare"} {
		for _, c := range []int{1, 2, 4} {
			rows = append(rows, fmt.Sprintf("%s @%dc", b, c))
		}
	}
	last := -1
	for _, row := range rows {
		i := strings.Index(out, row)
		if i < 0 {
			t.Errorf("missing row %q in:\n%s", row, out)
			continue
		}
		if i < last {
			t.Errorf("row %q out of order", row)
		}
		last = i
	}

	// A single-valued axis keeps the plain label.
	mt.Cores = []int{1}
	sb.Reset()
	mt.Fprint(&sb, results[:4])
	if strings.Contains(sb.String(), "@") {
		t.Errorf("single-valued cores axis must not label rows:\n%s", sb.String())
	}
}

// TestMatrixTableCoresCachedIdentical extends the incremental-run
// contract to the cores axis: a fully cached replay of an SMP sweep
// renders byte-identically.
func TestMatrixTableCoresCachedIdentical(t *testing.T) {
	mt, results := coresFixture()
	var fresh strings.Builder
	mt.Fprint(&fresh, results)
	for i := range results {
		results[i].Cached = true
	}
	var cached strings.Builder
	mt.Fprint(&cached, results)
	if fresh.String() != cached.String() {
		t.Errorf("cached SMP rendering diverges:\n--- fresh\n%s\n--- cached\n%s", fresh.String(), cached.String())
	}
}

// TestMatrixTableCachedIdentical is the incremental-run contract at
// the rendering layer: flipping every cell to Cached must not move a
// byte.
func TestMatrixTableCachedIdentical(t *testing.T) {
	mt, results := collateFixture()
	var fresh strings.Builder
	mt.Fprint(&fresh, results)
	for i := range results {
		results[i].Cached = !results[i].Cached
	}
	var cached strings.Builder
	mt.Fprint(&cached, results)
	if fresh.String() != cached.String() {
		t.Errorf("cached rendering diverges:\n--- fresh\n%s\n--- cached\n%s", fresh.String(), cached.String())
	}
}
