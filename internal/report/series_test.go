package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeriesGolden pins the exact bytes of the series renderer — the
// textual sweep-figure format every speedup experiment ships in:
// title underline, the version column, aligned per-series columns,
// three-decimal points, and "-" for a series shorter than the x axis.
func TestSeriesGolden(t *testing.T) {
	var sb strings.Builder
	FprintSeries(&sb, "Sweep — speedup vs v1.7.0", []string{"v1.7.0", "v2.0.0", "v2.5.0-rc2"}, []Series{
		{Name: "sjeng", Points: []float64{1, 1.25, 1.125}},
		{Name: "SPEC (overall)", Points: []float64{1, 1.0625, 0.96875}},
		{Name: "truncated", Points: []float64{1}},
	})
	got := sb.String()
	path := filepath.Join("testdata", "series.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("series rendering diverges from golden file:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
