// Package bench contains the SimBench suite: the paper's 18
// micro-benchmarks in five categories (Fig. 3), written as portable
// guest programs against the core build environment and the
// architecture support packages. No benchmark contains
// profile-specific code — everything architecture-dependent goes
// through arch.Support, mirroring the paper's porting structure.
//
// Guest register conventions used throughout the suite:
//
//	R11  iteration counter (counts down to zero)
//	R8   accumulator / checksum, reported through the control port
//	R9, R10, R12  benchmark base pointers
//	R4-R7 preloaded constants
//	R0-R3 scratch (exception handlers may clobber R1 and R2)
package bench

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/core"
	"simbench/internal/isa"
)

// fnLabel names the i-th function of a chain.
func fnLabel(i int) asm.Label { return asm.Label(fmt.Sprintf("f%d", i)) }

// Suite returns the full SimBench benchmark suite in Fig. 3 order.
func Suite() []*core.Benchmark {
	return []*core.Benchmark{
		SmallBlocks(),
		LargeBlocks(),
		InterPageDirect(),
		InterPageIndirect(),
		IntraPageDirect(),
		IntraPageIndirect(),
		DataFault(),
		InstFault(),
		Undef(),
		Syscall(),
		SWI(),
		DeviceAccess(),
		CoprocAccess(),
		ColdMemory(),
		HotMemory(),
		NonPrivAccess(),
		TLBEvict(),
		TLBFlush(),
	}
}

// ByName returns the named benchmark (core suite or extensions) or an
// error listing valid names.
func ByName(name string) (*core.Benchmark, error) {
	all := append(append(Suite(), ExtSuite()...), SMPSuite()...)
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	var names []string
	for _, b := range all {
		names = append(names, b.Name)
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, names)
}

// emitCountdownHead emits the top of the standard iteration loop:
// label "kloop", with R11 pre-loaded by the caller.
func emitCountdownHead(env *core.Env) {
	env.A.Label("kloop")
}

// emitCountdownTail emits the bottom of the standard iteration loop:
// decrement R11 and branch back while non-zero.
func emitCountdownTail(env *core.Env) {
	a := env.A
	a.SUBI(isa.R11, isa.R11, 1)
	a.CMPI(isa.R11, 0)
	a.B(isa.CondNE, "kloop")
}

// expectExact returns a validator requiring counter(r) == iters.
func expectExact(what string, counter func(*core.Result) uint64) func(*core.Result) error {
	return func(r *core.Result) error {
		got := counter(r)
		if got != uint64(r.Iters) {
			return fmt.Errorf("%s: got %d, want %d (one per iteration)", what, got, r.Iters)
		}
		return nil
	}
}

// expectAtLeast returns a validator requiring counter(r) >= iters.
func expectAtLeast(what string, counter func(*core.Result) uint64) func(*core.Result) error {
	return func(r *core.Result) error {
		got := counter(r)
		if got < uint64(r.Iters) {
			return fmt.Errorf("%s: got %d, want >= %d", what, got, r.Iters)
		}
		return nil
	}
}

// expectChecksum returns a validator requiring the guest-reported
// result word to equal f(iters).
func expectChecksum(f func(iters int64) uint32) func(*core.Result) error {
	return func(r *core.Result) error {
		if len(r.GuestResults) == 0 {
			return fmt.Errorf("guest reported no result word")
		}
		got := r.GuestResults[len(r.GuestResults)-1]
		want := f(r.Iters)
		if got != want {
			return fmt.Errorf("guest checksum %#x, want %#x", got, want)
		}
		return nil
	}
}
