package bench

import (
	"simbench/internal/core"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/platform"
)

// I/O benchmarks (paper §II-B4): measure the base cost of reaching a
// device, not any particular I/O operation, by repeatedly touching
// side-effect-free registers — a memory-mapped device ID register and
// the architecture's "safe" coprocessor register.

// DeviceAccess is io.device: read the safe device's ID register.
func DeviceAccess() *core.Benchmark {
	return &core.Benchmark{
		Name:        "io.device",
		Title:       "Memory Mapped Device",
		Category:    core.CatIO,
		Description: "per-iteration read of a side-effect-free MMIO register",
		PaperIters:  400_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.SafeDevAccesses },
		Validate: func(r *core.Result) error {
			if err := expectAtLeast("device accesses",
				func(r *core.Result) uint64 { return r.SafeDevAccesses })(r); err != nil {
				return err
			}
			// Every read must observe the device ID.
			return expectChecksum(func(int64) uint32 { return device.SafeIDValue })(r)
		},
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, platform.SafeBase)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.LDW(isa.R8, isa.R9, device.SafeID)
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}

// CoprocAccess is io.coproc: the architecture-specific safe
// coprocessor access (arm: DACR-style read; x86: maths-coprocessor
// reset).
func CoprocAccess() *core.Benchmark {
	return &core.Benchmark{
		Name:        "io.coproc",
		Title:       "Coprocessor Access",
		Category:    core.CatIO,
		Description: "per-iteration safe coprocessor access",
		PaperIters:  250_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.CoprocDevAccesses },
		Validate: expectExact("coprocessor accesses",
			func(r *core.Result) uint64 { return r.CoprocDevAccesses }),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			env.Arch.EmitCoprocAccess(a, isa.R8)
			a.XORI(isa.R3, isa.R3, 1) // filler, keeps the loop body honest
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}
