package bench

import (
	"fmt"

	"simbench/internal/core"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/platform"
)

// Extension benchmarks. The paper's future-work section proposes
// developing additional targeted benchmarks beyond the core 18; these
// three exercise mechanisms the core suite measures only indirectly.
// They are kept out of Suite() so the Fig. 3/6/7 experiments remain
// exactly the paper's set; ExtSuite() exposes them to the CLI and
// library users.

// ExtSuite returns the extension benchmarks.
func ExtSuite() []*core.Benchmark {
	return []*core.Benchmark{
		IRQLatency(),
		SectionVsPage(),
		SMCLocality(),
	}
}

// IRQLatency measures interrupt delivery latency in *guest
// instructions*: the kernel raises a software interrupt and then
// executes a long run of counted straight-line instructions; the IRQ
// handler records how far the run got. Engines that recognise
// interrupts at instruction boundaries deliver almost immediately;
// engines that only check at block boundaries let the whole block
// retire first — making the Fig. 4 "Interrupts" row directly
// observable as a number.
func IRQLatency() *core.Benchmark {
	const runway = 48 // straight-line counted instructions after raise
	return &core.Benchmark{
		Name:        "ext.irq-latency",
		Title:       "IRQ Latency",
		Category:    core.CatException,
		Description: "instructions retired between SWI raise and handler entry",
		PaperIters:  1_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcIRQ] },
		Validate: func(r *core.Result) error {
			if r.Exc[isa.ExcIRQ] != uint64(r.Iters) {
				return fmt.Errorf("irqs: got %d, want %d", r.Exc[isa.ExcIRQ], r.Iters)
			}
			if len(r.GuestResults) == 0 {
				return fmt.Errorf("no latency report")
			}
			// The recorded latency must be within the runway.
			avg := r.GuestResults[len(r.GuestResults)-1] / uint32(r.Iters)
			if avg > runway {
				return fmt.Errorf("avg latency %d beyond runway %d", avg, runway)
			}
			return nil
		},
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R7, platform.ICBase)
			a.MOVI(isa.R6, 0) // line number
			a.MOVI(isa.R0, 1)
			a.STW(isa.R0, isa.R7, device.ICEnable)
			a.MOVI(isa.R0, int32(isa.PSRKernel|isa.PSRIRQOn))
			a.MSR(isa.CtrlPSR, isa.R0)
			a.MOVI(isa.R8, 0) // accumulated latency
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.MOVI(isa.R3, 0)                     // progress counter
			a.STW(isa.R6, isa.R7, device.ICRaise) // raise
			for i := 0; i < runway; i++ {
				a.ADDI(isa.R3, isa.R3, 1) // each retires before delivery?
			}
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{IRQ: "irqh"})
			// Handler: latency = R3 (instructions retired since raise).
			a.Label("irqh")
			a.ADD(isa.R8, isa.R8, isa.R3)
			a.MOVI(isa.R3, 0)
			a.STW(isa.R6, isa.R7, device.ICClear)
			a.ERET()
			return nil
		},
	}
}

// SectionVsPage contrasts the two format-A translation paths the paper
// discusses (one-level section vs two-level coarse): the kernel
// alternates cold accesses into a section-mapped and a page-mapped
// region, so the walk-depth difference lands in the same run.
func SectionVsPage() *core.Benchmark {
	const pages = 512
	return &core.Benchmark{
		Name:        "ext.section-vs-page",
		Title:       "Section vs Page Walks",
		Category:    core.CatMemory,
		Description: "cold accesses alternating between 1-level and 2-level mappings",
		PaperIters:  4_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.PageWalks },
		Validate: expectAtLeast("page walks",
			func(r *core.Result) uint64 { return r.Stats.PageWalks }),
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			// Page-mapped window. (The identity section at VA 0 is the
			// 1-level side on the arm profile; on x86 both sides are
			// 2-level, which is itself the measurement.)
			env.Map(memRegionVA, core.BenchPhysBase, pages*isa.PageSize, true, false)
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, memRegionVA) // page-mapped cursor
			a.MOVI(isa.R10, 0)               // section-mapped cursor (identity low memory)
			a.LoadImm32(isa.R4, isa.PageSize)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.LDW(isa.R0, isa.R9, 0)  // 2-level side
			a.LDW(isa.R1, isa.R10, 0) // 1-level side
			a.TLBI(isa.R9)            // keep both cold
			a.TLBI(isa.R10)
			a.ADD(isa.R9, isa.R9, isa.R4)
			a.ADD(isa.R10, isa.R10, isa.R4)
			a.ANDI(isa.R2, isa.R11, 63)
			a.CMPI(isa.R2, 0)
			a.B(isa.CondNE, "nowrap")
			a.LoadImm32(isa.R9, memRegionVA)
			a.MOVI(isa.R10, 0)
			a.Label("nowrap")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}

// SMCLocality measures self-modifying-code handling as a function of
// locality: patching the page that is *currently executing* (forcing
// the tightest invalidation path) versus patching a far page. DBT
// engines pay page-granular invalidation either way, but the cost of
// invalidating one's own page is the worst case the paper's code
// generation benchmarks approach from outside.
func SMCLocality() *core.Benchmark {
	return &core.Benchmark{
		Name:        "ext.smc-locality",
		Title:       "SMC Locality",
		Category:    core.CatCodeGen,
		Description: "alternating near-page and far-page code patching",
		PaperIters:  200_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.SMCInvalidations },
		// The checksum (2 per iteration) validates on every engine; the
		// SMC counter is only meaningful where cached code exists.
		Validate: expectChecksum(func(iters int64) uint32 { return uint32(iters) * 2 }),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.MOVI(isa.R8, 0)
			nop := isa.Encode(isa.Inst{Op: isa.OpNOP})
			a.LoadImm32(isa.R4, nop)
			a.LA(isa.R9, "nearfn")
			a.LA(isa.R10, "farfn")
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.STW(isa.R4, isa.R9, 0) // patch near (same page as the loop)
			a.BL("nearfn")
			a.STW(isa.R4, isa.R10, 0) // patch far
			a.BL("farfn")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			// nearfn shares the kernel's page (immediately after it).
			a.Label("nearfn")
			a.NOP()
			a.ADDI(isa.R8, isa.R8, 1)
			a.RET()
			core.EmitVectors(env, core.Handlers{})
			a.Org(0x8000)
			a.Label("farfn")
			a.NOP()
			a.ADDI(isa.R8, isa.R8, 1)
			a.RET()
			return nil
		},
	}
}
