package bench

import (
	"fmt"

	"simbench/internal/asm"
	"simbench/internal/core"
	"simbench/internal/isa"
)

// SMP benchmarks. The paper's methodology is single-core; these
// benchmarks extend it to N-core guests, isolating the three mechanisms
// a simulator's SMP support pays for: cross-core synchronisation
// latency (pingpong), atomic contention on one word (lockcontend), and
// write sharing of one line without contention (falseshare). Secondary
// harts boot through the standard preamble dispatch and the three-phase
// protocol is driven by hart 0 alone: it brackets the timed kernel and
// joins the secondaries (via completion flags) before writing END, so
// every secondary's work lands inside the kernel window.
//
// All three degrade gracefully to one core — the build environment
// reports the core count, and the single-core variants run both roles
// sequentially — so the cores axis can include 1 and the same
// benchmark names validate everywhere.

// Shared-memory layout (physical; SMP benchmarks run translation-off).
// Everything lives below IdentityLimit and above the data the core
// suite uses.
const (
	smpBase = 0x00050000
	smpPing = smpBase + 0x00  // pingpong: producer's token
	smpPong = smpBase + 0x40  // pingpong: consumer's ack (separate line)
	smpLock = smpBase + 0x80  // lockcontend: the lock word
	smpCtr  = smpBase + 0xC0  // lockcontend: the protected counter
	smpGo   = smpBase + 0x100 // start barrier written by hart 0 after BEGIN
	smpSlot = smpBase + 0x140 // falseshare: per-hart slots, one shared line
	smpDone = smpBase + 0x180 // per-hart completion flags
)

// SMPSuite returns the SMP benchmark family (category cat:SMP).
func SMPSuite() []*core.Benchmark {
	return []*core.Benchmark{
		PingPong(),
		LockContend(),
		FalseShare(),
	}
}

// expectSMPChecksum validates the guest-reported result word against
// f(iters, cores).
func expectSMPChecksum(f func(iters int64, cores int) uint32) func(*core.Result) error {
	return func(r *core.Result) error {
		if len(r.GuestResults) == 0 {
			return fmt.Errorf("guest reported no result word")
		}
		cores := r.Cores
		if cores < 1 {
			cores = 1
		}
		got := r.GuestResults[len(r.GuestResults)-1]
		want := f(r.Iters, cores)
		if got != want {
			return fmt.Errorf("guest checksum %#x, want %#x (%d cores)", got, want, cores)
		}
		return nil
	}
}

// emitSecondaryProlog emits the common entry code for a secondary
// worker: the hart ID arrives in R0 (preamble contract); it is used to
// compute the hart's done-flag address into R12, then the iteration
// count is loaded and the start barrier awaited. Clobbers R1.
func emitSecondaryProlog(env *core.Env, wait asm.Label) {
	a := env.A
	a.MOVI(isa.R1, 4)
	a.MUL(isa.R12, isa.R0, isa.R1)
	a.LoadImm32(isa.R1, smpDone)
	a.ADD(isa.R12, isa.R12, isa.R1)
	core.EmitLoadIters(env, isa.R11)
	a.LoadImm32(isa.R2, smpGo)
	a.Label(wait)
	a.LDW(isa.R1, isa.R2, 0)
	a.CMPI(isa.R1, 1)
	a.B(isa.CondNE, wait)
}

// emitSecondaryEpilog raises the hart's done flag (address in R12) and
// parks. Clobbers R1.
func emitSecondaryEpilog(env *core.Env) {
	a := env.A
	a.MOVI(isa.R1, 1)
	a.STW(isa.R1, isa.R12, 0)
	a.HALT()
}

// emitReleaseWorkers opens the start barrier. Clobbers R1 and R2.
func emitReleaseWorkers(env *core.Env) {
	a := env.A
	a.LoadImm32(isa.R2, smpGo)
	a.MOVI(isa.R1, 1)
	a.STW(isa.R1, isa.R2, 0)
}

// emitJoinSecondaries spin-waits for every secondary's done flag. The
// spin is bounded: the round-robin scheduler guarantees every runnable
// hart a quantum, so a worker always makes progress while hart 0
// waits. Clobbers R1 and R2.
func emitJoinSecondaries(env *core.Env, tag string) {
	a := env.A
	for h := 1; h < env.EffectiveCores(); h++ {
		l := asm.Label(fmt.Sprintf("%s_join%d", tag, h))
		a.LoadImm32(isa.R2, uint32(smpDone+4*h))
		a.Label(l)
		a.LDW(isa.R1, isa.R2, 0)
		a.CMPI(isa.R1, 1)
		a.B(isa.CondNE, l)
	}
}

// PingPong measures cross-core synchronisation latency: hart 0 posts a
// token to one line and spins on an ack line; hart 1 mirrors it. One
// iteration is one full round trip, so the kernel time divided by the
// iteration count is the guest-visible core-to-core handoff cost —
// dominated, on a deterministic round-robin engine, by the scheduling
// quantum. Harts beyond the first two park.
func PingPong() *core.Benchmark {
	return &core.Benchmark{
		Name:        "smp.pingpong",
		Title:       "Ping-Pong",
		Category:    core.CatSMP,
		Description: "producer/consumer token round trips between two cores",
		PaperIters:  20_000,
		TestedOps:   func(r *core.Result) uint64 { return uint64(r.Iters) },
		Validate:    expectSMPChecksum(func(iters int64, _ int) uint32 { return uint32(iters) }),
		Build: func(env *core.Env) error {
			a := env.A
			smp := env.EffectiveCores() > 1
			if smp {
				env.SecondaryEntry = "pp_secondary"
			}
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, smpPing)
			a.LoadImm32(isa.R10, smpPong)
			a.MOVI(isa.R8, 0)
			core.EmitBegin(env, isa.R0)

			// Tokens are the countdown values iters..1 — never zero, so
			// the zero-initialised mailboxes cannot satisfy a wait early.
			emitCountdownHead(env)
			a.STW(isa.R11, isa.R9, 0) // post token
			if smp {
				a.Label("pp_wait")
				a.LDW(isa.R1, isa.R10, 0)
				a.CMP(isa.R1, isa.R11)
				a.B(isa.CondNE, "pp_wait") // spin for the ack
			} else {
				// Single-core: play both roles back to back.
				a.LDW(isa.R1, isa.R9, 0)
				a.STW(isa.R1, isa.R10, 0)
				a.LDW(isa.R1, isa.R10, 0)
			}
			a.ADDI(isa.R8, isa.R8, 1)
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			if smp {
				// Hart 1 consumes; higher harts have no partner and park.
				a.Label("pp_secondary")
				a.CMPI(isa.R0, 1)
				a.B(isa.CondNE, "pp_park")
				core.EmitLoadIters(env, isa.R11)
				a.LoadImm32(isa.R9, smpPing)
				a.LoadImm32(isa.R10, smpPong)
				a.Label("pp_consume")
				a.Label("pp_cwait")
				a.LDW(isa.R1, isa.R9, 0)
				a.CMP(isa.R1, isa.R11)
				a.B(isa.CondNE, "pp_cwait") // spin for the token
				a.STW(isa.R11, isa.R10, 0)  // ack it
				a.SUBI(isa.R11, isa.R11, 1)
				a.CMPI(isa.R11, 0)
				a.B(isa.CondNE, "pp_consume")
				a.Label("pp_park")
				a.HALT()
			}
			return nil
		},
	}
}

// LockContend measures atomic contention: every hart increments one
// shared counter under an LDX/STX spinlock, iters times each. The
// exclusive-operation and failed-store counters expose how much of the
// run was spent arbitrating rather than progressing.
func LockContend() *core.Benchmark {
	return &core.Benchmark{
		Name:        "smp.lockcontend",
		Title:       "Lock Contention",
		Category:    core.CatSMP,
		Description: "all cores increment one counter under an exclusive-pair spinlock",
		PaperIters:  100_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.ExclusiveOps },
		Validate: expectSMPChecksum(func(iters int64, cores int) uint32 {
			return uint32(int64(cores) * iters)
		}),
		Build: func(env *core.Env) error {
			a := env.A
			smp := env.EffectiveCores() > 1
			if smp {
				env.SecondaryEntry = "lc_secondary"
			}
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, smpLock)
			a.LoadImm32(isa.R10, smpCtr)
			core.EmitBegin(env, isa.R0)
			emitReleaseWorkers(env)
			a.BL("lc_work")
			emitJoinSecondaries(env, "lc")
			core.EmitEnd(env, isa.R0)
			a.LoadImm32(isa.R1, smpCtr)
			a.LDW(isa.R8, isa.R1, 0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})

			// Worker: iters × (acquire, increment, release). Expects R9 =
			// &lock, R10 = &counter, R11 = iters; clobbers R1/R2.
			a.Label("lc_work")
			a.Label("lc_loop")
			a.Label("lc_acq")
			a.LDX(isa.R1, isa.R9)
			a.CMPI(isa.R1, 0)
			a.B(isa.CondNE, "lc_acq") // held: spin
			a.MOVI(isa.R1, 1)
			a.STX(isa.R2, isa.R1, isa.R9)
			a.CMPI(isa.R2, 0)
			a.B(isa.CondNE, "lc_acq") // reservation lost: retry
			a.LDW(isa.R1, isa.R10, 0)
			a.ADDI(isa.R1, isa.R1, 1)
			a.STW(isa.R1, isa.R10, 0)
			a.MOVI(isa.R1, 0)
			a.STW(isa.R1, isa.R9, 0) // release
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "lc_loop")
			a.RET()

			if smp {
				a.Label("lc_secondary")
				emitSecondaryProlog(env, "lc_go")
				a.LoadImm32(isa.R9, smpLock)
				a.LoadImm32(isa.R10, smpCtr)
				a.BL("lc_work")
				emitSecondaryEpilog(env)
			}
			return nil
		},
	}
}

// FalseShare measures write sharing without data sharing: every hart
// increments its own word of one cache line, iters times. There is no
// synchronisation in the loop — any cost beyond N independent counters
// is the simulator's (or, for detailed models, the modelled
// hierarchy's) line-granular accounting.
func FalseShare() *core.Benchmark {
	return &core.Benchmark{
		Name:        "smp.falseshare",
		Title:       "False Sharing",
		Category:    core.CatSMP,
		Description: "each core increments a private word of one shared line",
		PaperIters:  200_000,
		TestedOps: func(r *core.Result) uint64 {
			cores := r.Cores
			if cores < 1 {
				cores = 1
			}
			return uint64(r.Iters) * uint64(cores)
		},
		Validate: expectSMPChecksum(func(iters int64, cores int) uint32 {
			return uint32(int64(cores) * iters)
		}),
		Build: func(env *core.Env) error {
			a := env.A
			cores := env.EffectiveCores()
			smp := cores > 1
			if smp {
				env.SecondaryEntry = "fs_secondary"
			}
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, smpSlot) // hart 0's slot
			core.EmitBegin(env, isa.R0)
			emitReleaseWorkers(env)
			a.BL("fs_work")
			emitJoinSecondaries(env, "fs")
			core.EmitEnd(env, isa.R0)
			// Sum the slots: total increments across all harts.
			a.MOVI(isa.R8, 0)
			a.LoadImm32(isa.R2, smpSlot)
			for h := 0; h < cores; h++ {
				a.LDW(isa.R1, isa.R2, int32(4*h))
				a.ADD(isa.R8, isa.R8, isa.R1)
			}
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})

			// Worker: iters increments of the word at R9; clobbers R1.
			a.Label("fs_work")
			a.Label("fs_loop")
			a.LDW(isa.R1, isa.R9, 0)
			a.ADDI(isa.R1, isa.R1, 1)
			a.STW(isa.R1, isa.R9, 0)
			a.SUBI(isa.R11, isa.R11, 1)
			a.CMPI(isa.R11, 0)
			a.B(isa.CondNE, "fs_loop")
			a.RET()

			if smp {
				a.Label("fs_secondary")
				emitSecondaryProlog(env, "fs_go")
				a.MOVI(isa.R1, 4)
				a.MUL(isa.R9, isa.R0, isa.R1)
				a.LoadImm32(isa.R1, smpSlot)
				a.ADD(isa.R9, isa.R9, isa.R1) // &slot[hart]
				a.BL("fs_work")
				emitSecondaryEpilog(env)
			}
			return nil
		},
	}
}
