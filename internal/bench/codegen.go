package bench

import (
	"simbench/internal/core"
	"simbench/internal/isa"
)

// Code Generation benchmarks (paper §II-B1): measure DBT code
// generation speed — not generated-code quality — by rewriting guest
// code between executions so translations (and any cached decode
// structures) are invalidated every iteration. They simultaneously
// measure self-modifying-code handling.

const (
	smallBlockCount  = 16
	smallBlockStride = 16 // bytes between function entry points
	largeBlockALUOps = 300
)

// SmallBlocks is codegen.small-blocks: many short tail-calling
// functions whose first words are rewritten at the start of every
// iteration, forcing per-iteration retranslation of each small block.
func SmallBlocks() *core.Benchmark {
	return &core.Benchmark{
		Name:        "codegen.small-blocks",
		Title:       "Small Blocks",
		Category:    core.CatCodeGen,
		Description: "rewrite + re-execute many short tail-calling functions",
		PaperIters:  100_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.SMCInvalidations },
		Validate: expectChecksum(func(iters int64) uint32 {
			return uint32(iters) * smallBlockCount
		}),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.MOVI(isa.R8, 0)     // accumulator
			a.LA(isa.R9, "funcs") // patch base
			nop := isa.Encode(isa.Inst{Op: isa.OpNOP})
			a.LoadImm32(isa.R4, nop) // patch word
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			// Patch phase: rewrite the first word of every function.
			a.MOV(isa.R2, isa.R9)
			a.MOVI(isa.R3, smallBlockCount)
			a.Label("patch")
			a.STW(isa.R4, isa.R2, 0)
			a.ADDI(isa.R2, isa.R2, smallBlockStride)
			a.SUBI(isa.R3, isa.R3, 1)
			a.CMPI(isa.R3, 0)
			a.B(isa.CondNE, "patch")
			// Execute phase: run the freshly invalidated chain.
			a.BL("f0")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})

			// The function chain lives on its own page so patching does
			// not invalidate the harness loop.
			a.Org(0x4000)
			a.Label("funcs")
			for i := 0; i < smallBlockCount; i++ {
				a.Label(fnLabel(i))
				a.NOP() // the patched word
				a.ADDI(isa.R8, isa.R8, 1)
				if i == smallBlockCount-1 {
					a.RET()
				} else {
					a.B(isa.CondAL, fnLabel(i+1))
				}
				a.Align(smallBlockStride)
			}
			return nil
		},
	}
}

// LargeBlocks is codegen.large-blocks: one very large basic block of
// arithmetic whose first word is rewritten before every execution; the
// inputs are read from memory cells (the volatile variables of the C
// original) and results written back, so nothing can be folded away.
func LargeBlocks() *core.Benchmark {
	return &core.Benchmark{
		Name:        "codegen.large-blocks",
		Title:       "Large Blocks",
		Category:    core.CatCodeGen,
		Description: "rewrite + re-execute one very large straight-line block",
		PaperIters:  500_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.SMCInvalidations },
		Validate:    expectChecksum(largeBlockChecksum),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LA(isa.R9, "bigblock")
			a.LA(isa.R10, "cells")
			nop := isa.Encode(isa.Inst{Op: isa.OpNOP})
			a.LoadImm32(isa.R4, nop)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.STW(isa.R4, isa.R9, 0) // invalidate the block
			a.BL("bigblock")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})

			a.Org(0x4000)
			a.Label("bigblock")
			a.NOP() // the patched word
			// Load "volatile" inputs.
			a.LDW(isa.R0, isa.R10, 0)
			a.LDW(isa.R1, isa.R10, 4)
			a.LDW(isa.R2, isa.R10, 8)
			a.LDW(isa.R3, isa.R10, 12)
			// A long deterministic arithmetic sequence (mirrored by
			// largeBlockChecksum for validation).
			seed := uint32(0x9E3779B9)
			for i := 0; i < largeBlockALUOps; i++ {
				seed = seed*1664525 + 1013904223
				rd := isa.Reg(seed % 4)
				ra := isa.Reg((seed >> 8) % 4)
				rb := isa.Reg((seed >> 16) % 4)
				switch (seed >> 24) % 5 {
				case 0:
					a.ADD(rd, ra, rb)
				case 1:
					a.SUB(rd, ra, rb)
				case 2:
					a.XOR(rd, ra, rb)
				case 3:
					a.ADDI(rd, ra, int32(seed&0x7FF))
				case 4:
					a.OR(rd, ra, rb)
				}
			}
			// Write results back and fold into the accumulator.
			a.STW(isa.R0, isa.R10, 0)
			a.STW(isa.R1, isa.R10, 4)
			a.XOR(isa.R8, isa.R0, isa.R1)
			a.RET()

			a.Org(0x6000)
			a.Label("cells")
			a.Word(0x1234)
			a.Word(0x5678)
			a.Word(0x9ABC)
			a.Word(0xDEF0)
			return nil
		},
	}
}

// largeBlockChecksum mirrors the generated large block in Go: it
// replays the same deterministic ALU sequence over the same memory
// cells for the given number of iterations and returns the value the
// guest reports. Any engine that mis-executes the block fails this.
func largeBlockChecksum(iters int64) uint32 {
	cells := [4]uint32{0x1234, 0x5678, 0x9ABC, 0xDEF0}
	var r [4]uint32
	for it := int64(0); it < iters; it++ {
		r = cells
		seed := uint32(0x9E3779B9)
		for i := 0; i < largeBlockALUOps; i++ {
			seed = seed*1664525 + 1013904223
			rd := seed % 4
			ra := (seed >> 8) % 4
			rb := (seed >> 16) % 4
			switch (seed >> 24) % 5 {
			case 0:
				r[rd] = r[ra] + r[rb]
			case 1:
				r[rd] = r[ra] - r[rb]
			case 2:
				r[rd] = r[ra] ^ r[rb]
			case 3:
				r[rd] = r[ra] + seed&0x7FF
			case 4:
				r[rd] = r[ra] | r[rb]
			}
		}
		cells[0], cells[1] = r[0], r[1]
	}
	return r[0] ^ r[1]
}
