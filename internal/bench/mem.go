package bench

import (
	"fmt"

	"simbench/internal/core"
	"simbench/internal/isa"
)

// Memory System benchmarks (paper §II-B5): hot-path (TLB hit) and
// cold-path (TLB miss) accesses, non-privileged accesses, and the two
// TLB-maintenance operations.

const (
	// memRegionVA is the virtual base of the benchmark memory region.
	memRegionVA = 0x01000000
	// coldPages exceeds every translation-cache capacity in the tree
	// (interp 256, dbt 256+victim, detailed 64, hardware model 512),
	// so each cold access misses on every engine.
	coldPages = 2048
	// evictPages is the smaller region used by the TLB-maintenance
	// benchmarks (misses are forced by the maintenance op itself).
	evictPages = 256
	// hotCopyCells is the number of copy pairs in the hot loop.
	hotCopyCells = 12
)

// ColdMemory is mem.cold: one read at the top of each page of a large
// region, so every access takes the cold path (a page-table walk).
func ColdMemory() *core.Benchmark {
	return &core.Benchmark{
		Name:        "mem.cold",
		Title:       "Cold Memory Access",
		Category:    core.CatMemory,
		Description: "per-iteration TLB-missing read over a large region",
		PaperIters:  50_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.TLBMisses },
		Validate: expectAtLeast("TLB misses",
			func(r *core.Result) uint64 { return r.Stats.TLBMisses }),
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			env.Map(memRegionVA, core.BenchPhysBase, coldPages*isa.PageSize, true, false)
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R10, memRegionVA)                        // base
			a.LoadImm32(isa.R12, memRegionVA+coldPages*isa.PageSize) // end
			a.MOV(isa.R9, isa.R10)                                   // cursor
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.LDW(isa.R0, isa.R9, 0)
			a.LoadImm32(isa.R3, isa.PageSize)
			a.ADD(isa.R9, isa.R9, isa.R3)
			a.CMP(isa.R9, isa.R12)
			a.B(isa.CondLO, "nowrap")
			a.MOV(isa.R9, isa.R10)
			a.Label("nowrap")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}

// HotMemory is mem.hot: load/store traffic against a single page — the
// common case every simulator must make fast. The loop is manually
// unrolled, as in the paper.
func HotMemory() *core.Benchmark {
	return &core.Benchmark{
		Name:        "mem.hot",
		Title:       "Hot Memory Access",
		Category:    core.CatMemory,
		Description: "unrolled same-page load/store traffic (TLB hit path)",
		PaperIters:  500_000_000,
		TestedOps: func(r *core.Result) uint64 {
			return r.Stats.MemReads + r.Stats.MemWrites
		},
		// The copy chain propagates the incremented counter through
		// every cell, so the final cell equals the iteration count.
		Validate: expectChecksum(func(iters int64) uint32 { return uint32(iters) }),
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			env.Map(memRegionVA, core.BenchPhysBase, isa.PageSize, true, false)
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, memRegionVA)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			// Increment the head cell...
			a.LDW(isa.R0, isa.R9, 0)
			a.ADDI(isa.R0, isa.R0, 1)
			a.STW(isa.R0, isa.R9, 0)
			// ...and copy it down the chain, unrolled.
			for k := 0; k < hotCopyCells; k++ {
				a.LDW(isa.R1, isa.R9, int32(k)*4)
				a.STW(isa.R1, isa.R9, int32(k+1)*4)
			}
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			a.LDW(isa.R8, isa.R9, hotCopyCells*4)
			core.EmitResult(env, isa.R8, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}

// NonPrivAccess is mem.nonpriv: kernel-mode accesses performed with
// user privilege (ARM LDRT-style). The x86 profile has no equivalent,
// so its kernel degenerates to the loop skeleton — a no-op benchmark,
// exactly as the paper's x86 port handles it.
func NonPrivAccess() *core.Benchmark {
	return &core.Benchmark{
		Name:        "mem.nonpriv",
		Title:       "Nonprivileged Access",
		Category:    core.CatMemory,
		Description: "kernel-mode access checked with user permissions",
		PaperIters:  300_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.NonPrivAccesses },
		Validate: func(r *core.Result) error {
			want := uint64(r.Iters)
			if r.Arch != "arm" {
				want = 0
			}
			if r.Stats.NonPrivAccesses != want {
				return fmt.Errorf("nonpriv accesses: got %d, want %d", r.Stats.NonPrivAccesses, want)
			}
			return nil
		},
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			// The target page must be user-accessible for LDT to succeed.
			env.Map(memRegionVA, core.BenchPhysBase, isa.PageSize, true, true)
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, memRegionVA)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			env.Arch.EmitNonPrivLoad(a, isa.R0, isa.R9, 0)
			a.ADDI(isa.R3, isa.R3, 1) // filler keeps the loop body non-empty
			a.XORI(isa.R4, isa.R3, 0x33)
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R3, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{})
			return nil
		},
	}
}

func tlbMaintBuild(flushAll bool) func(env *core.Env) error {
	return func(env *core.Env) error {
		a := env.A
		env.MMU = true
		env.Map(memRegionVA, core.BenchPhysBase, evictPages*isa.PageSize, true, false)
		core.EmitPreamble(env)
		core.EmitLoadIters(env, isa.R11)
		a.LoadImm32(isa.R10, memRegionVA)
		a.LoadImm32(isa.R12, memRegionVA+evictPages*isa.PageSize)
		a.MOV(isa.R9, isa.R10)
		a.LoadImm32(isa.R4, isa.PageSize)
		core.EmitBegin(env, isa.R0)

		emitCountdownHead(env)
		a.LDW(isa.R0, isa.R9, 0) // touch the page (fills the TLB)
		if flushAll {
			a.TLBIA()
		} else {
			a.TLBI(isa.R9)
		}
		a.ADD(isa.R9, isa.R9, isa.R4)
		a.CMP(isa.R9, isa.R12)
		a.B(isa.CondLO, "nowrap")
		a.MOV(isa.R9, isa.R10)
		a.Label("nowrap")
		emitCountdownTail(env)

		core.EmitEnd(env, isa.R0)
		core.EmitResult(env, isa.R11, isa.R0)
		core.EmitHalt(env)
		core.EmitVectors(env, core.Handlers{})
		return nil
	}
}

// TLBEvict is mem.tlb-evict: a cold-style access followed by eviction
// of exactly the touched page.
func TLBEvict() *core.Benchmark {
	return &core.Benchmark{
		Name:        "mem.tlb-evict",
		Title:       "TLB Eviction",
		Category:    core.CatMemory,
		Description: "per-iteration single-page TLB invalidation",
		PaperIters:  4_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.TLBInvalidates },
		Validate: expectExact("TLB invalidates",
			func(r *core.Result) uint64 { return r.Stats.TLBInvalidates }),
		Build: tlbMaintBuild(false),
	}
}

// TLBFlush is mem.tlb-flush: the same access pattern with a full TLB
// flush each iteration.
func TLBFlush() *core.Benchmark {
	return &core.Benchmark{
		Name:        "mem.tlb-flush",
		Title:       "TLB Flush",
		Category:    core.CatMemory,
		Description: "per-iteration full TLB flush",
		PaperIters:  4_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Stats.TLBFlushes },
		Validate: expectExact("TLB flushes",
			func(r *core.Result) uint64 { return r.Stats.TLBFlushes }),
		Build: tlbMaintBuild(true),
	}
}
