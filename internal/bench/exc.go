package bench

import (
	"simbench/internal/core"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/platform"
)

// Exception Handling benchmarks (paper §II-B3): each raises one
// exception per iteration and the handler immediately resumes,
// isolating the cost of exception entry, handler dispatch and return.

// unmappedVA is a virtual address no benchmark ever maps.
const unmappedVA = 0x00500000

// DataFault is exc.data-fault: load from an unmapped page; the handler
// skips the faulting instruction.
func DataFault() *core.Benchmark {
	return &core.Benchmark{
		Name:        "exc.data-fault",
		Title:       "Data Access Fault",
		Category:    core.CatException,
		Description: "per-iteration data abort from an unmapped page",
		PaperIters:  25_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcDataFault] },
		Validate: expectExact("data faults",
			func(r *core.Result) uint64 { return r.Exc[isa.ExcDataFault] }),
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, unmappedVA)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.LDW(isa.R0, isa.R9, 0) // faults every iteration
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{DataFault: "dfh"})
			// Skip the faulting instruction: EPC += 4.
			a.Label("dfh")
			a.MRS(isa.R1, isa.CtrlEPC)
			a.ADDI(isa.R1, isa.R1, 4)
			a.MSR(isa.CtrlEPC, isa.R1)
			a.ERET()
			return nil
		},
	}
}

// InstFault is exc.inst-fault: call into an unmapped page; the handler
// returns to the call site using the architecture's convention (link
// register on arm, stack unwind on x86).
func InstFault() *core.Benchmark {
	return &core.Benchmark{
		Name:        "exc.inst-fault",
		Title:       "Instruction Access Fault",
		Category:    core.CatException,
		Description: "per-iteration prefetch abort from a call into unmapped memory",
		PaperIters:  25_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcInstFault] },
		Validate: expectExact("instruction faults",
			func(r *core.Result) uint64 { return r.Exc[isa.ExcInstFault] }),
		Build: func(env *core.Env) error {
			a := env.A
			env.MMU = true
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R9, unmappedVA)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			env.Arch.EmitFaultingCall(a, isa.R9, "ret_site")
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{InstFault: "ifh"})
			a.Label("ifh")
			env.Arch.EmitInstFaultReturn(a, isa.R1)
			return nil
		},
	}
}

// Undef is exc.undef: execute the architecturally undefined
// instruction; the handler resumes at the following instruction.
func Undef() *core.Benchmark {
	return &core.Benchmark{
		Name:        "exc.undef",
		Title:       "Undefined Instruction",
		Category:    core.CatException,
		Description: "per-iteration undefined-instruction exception",
		PaperIters:  50_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcUndef] },
		Validate: expectExact("undef exceptions",
			func(r *core.Result) uint64 { return r.Exc[isa.ExcUndef] }),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			env.Arch.EmitUndef(a)
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{Undef: "uh"})
			a.Label("uh")
			a.ERET() // EPC already points past the undefined instruction
			return nil
		},
	}
}

// Syscall is exc.syscall: execute a system-call instruction; the
// handler returns immediately.
func Syscall() *core.Benchmark {
	return &core.Benchmark{
		Name:        "exc.syscall",
		Title:       "System Call",
		Category:    core.CatException,
		Description: "per-iteration system call with an empty handler",
		PaperIters:  50_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcSyscall] },
		Validate: expectExact("syscalls",
			func(r *core.Result) uint64 { return r.Exc[isa.ExcSyscall] }),
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			env.Arch.EmitSyscall(a)
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{Syscall: "sh"})
			a.Label("sh")
			a.ERET()
			return nil
		},
	}
}

// SWI is exc.swi: raise an external software interrupt through the
// interrupt controller (a platform operation), take the IRQ, ack it.
func SWI() *core.Benchmark {
	return &core.Benchmark{
		Name:        "exc.swi",
		Title:       "External Software Interrupt",
		Category:    core.CatException,
		Description: "per-iteration software-generated interrupt via the interrupt controller",
		PaperIters:  20_000_000,
		TestedOps:   func(r *core.Result) uint64 { return r.Exc[isa.ExcIRQ] },
		Validate: func(r *core.Result) error {
			if err := expectExact("IRQs taken",
				func(r *core.Result) uint64 { return r.Exc[isa.ExcIRQ] })(r); err != nil {
				return err
			}
			return expectExact("SWIs raised",
				func(r *core.Result) uint64 { return r.SWIRaised })(r)
		},
		Build: func(env *core.Env) error {
			a := env.A
			core.EmitPreamble(env)
			core.EmitLoadIters(env, isa.R11)
			a.LoadImm32(isa.R7, platform.ICBase)
			a.MOVI(isa.R6, 0) // line number (and ack value)
			// Enable line 0 in the controller, then IRQs in the PSR.
			a.MOVI(isa.R0, 1)
			a.STW(isa.R0, isa.R7, device.ICEnable)
			a.MOVI(isa.R0, int32(isa.PSRKernel|isa.PSRIRQOn))
			a.MSR(isa.CtrlPSR, isa.R0)
			core.EmitBegin(env, isa.R0)

			emitCountdownHead(env)
			a.STW(isa.R6, isa.R7, device.ICRaise) // raise the SWI
			emitCountdownTail(env)

			core.EmitEnd(env, isa.R0)
			core.EmitResult(env, isa.R11, isa.R0)
			core.EmitHalt(env)
			core.EmitVectors(env, core.Handlers{IRQ: "irqh"})
			a.Label("irqh")
			a.STW(isa.R6, isa.R7, device.ICClear) // ack line 0
			a.ERET()
			return nil
		},
	}
}
