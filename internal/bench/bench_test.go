package bench

import (
	"testing"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/dbt"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
)

func engines() []engine.Engine {
	return []engine.Engine{
		interp.New(),
		dbt.NewDefault(),
		detailed.New(),
		direct.New(direct.ModeVirt),
		direct.New(direct.ModeNative),
	}
}

// TestSuiteAllEnginesAllProfiles runs every benchmark on every engine
// and both architecture profiles with a small iteration count; the
// runner enforces the protocol and each benchmark's validator checks
// its tested-operation counters.
func TestSuiteAllEnginesAllProfiles(t *testing.T) {
	const iters = 50
	for _, sup := range arch.All() {
		for _, eng := range engines() {
			for _, b := range Suite() {
				t.Run(b.Name+"/"+eng.Name()+"/"+sup.Name(), func(t *testing.T) {
					r := core.NewRunner(eng, sup)
					res, err := r.Run(b, iters)
					if err != nil {
						t.Fatalf("%v", err)
					}
					if res.Kernel <= 0 {
						t.Errorf("kernel time = %v", res.Kernel)
					}
					if res.Stats.Instructions == 0 {
						t.Error("no instructions retired")
					}
				})
			}
		}
	}
}

// TestSuiteNamesUnique ensures names and paper iteration counts are
// sane and unique.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		if seen[b.Name] {
			t.Errorf("duplicate name %s", b.Name)
		}
		seen[b.Name] = true
		if b.PaperIters <= 0 {
			t.Errorf("%s: no paper iteration count", b.Name)
		}
		if b.Category == "" || b.Title == "" || b.Build == nil || b.TestedOps == nil {
			t.Errorf("%s: incomplete definition", b.Name)
		}
	}
	if len(seen) != 18 {
		t.Errorf("suite has %d benchmarks, want 18", len(seen))
	}
}

// TestCategoriesMatchPaper checks the Fig. 3 grouping.
func TestCategoriesMatchPaper(t *testing.T) {
	count := map[core.Category]int{}
	for _, b := range Suite() {
		count[b.Category]++
	}
	want := map[core.Category]int{
		core.CatCodeGen:     2,
		core.CatControlFlow: 4,
		core.CatException:   5,
		core.CatIO:          2,
		core.CatMemory:      5,
	}
	for cat, n := range want {
		if count[cat] != n {
			t.Errorf("%s: %d benchmarks, want %d", cat, count[cat], n)
		}
	}
}

// TestByName exercises the lookup helper.
func TestByName(t *testing.T) {
	if _, err := ByName("exc.syscall"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

// TestTestedOpsScaleWithIters verifies that doubling iterations
// doubles the tested-operation count (on the profiling interpreter) —
// the property that makes the operation-density metric meaningful.
func TestTestedOpsScaleWithIters(t *testing.T) {
	sup := arch.ARM{}
	for _, b := range Suite() {
		if b.Name == "mem.hot" || b.Name == "mem.cold" {
			continue // warm-up effects make these only asymptotically linear
		}
		r := core.NewRunner(interp.NewProfiling(), sup)
		res1, err := r.Run(b, 40)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res2, err := r.Run(b, 80)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		o1, o2 := res1.TestedOps(), res2.TestedOps()
		if o1 == 0 {
			t.Errorf("%s: zero tested ops", b.Name)
			continue
		}
		ratio := float64(o2) / float64(o1)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: ops ratio %f (o1=%d o2=%d), want ~2", b.Name, ratio, o1, o2)
		}
	}
}
