package bench

import (
	"simbench/internal/core"
	"simbench/internal/isa"
)

// Control Flow benchmarks (paper §II-B2): the four combinations of
// {intra-page, inter-page} × {direct, indirect} transfers. Intra-page
// transfers need no address translation as long as mappings are
// stable, and direct transfers have statically known targets — so the
// four cases stress translation lookup, block chaining and indirect
// target prediction very differently.

const ctrlChainLen = 8

// ctrlValidate checks the accumulator: each of the chainLen functions
// adds its (index+1) to R8 every iteration.
func ctrlValidate() func(*core.Result) error {
	per := uint32(0)
	for i := 1; i <= ctrlChainLen; i++ {
		per += uint32(i)
	}
	return expectChecksum(func(iters int64) uint32 { return uint32(iters) * per })
}

// buildChain emits the common harness and a chain of functions that
// tail-call each other, then return to the loop. Placement and call
// style are controlled by the two flags.
func buildChain(env *core.Env, interPage, indirect bool) error {
	a := env.A
	core.EmitPreamble(env)
	core.EmitLoadIters(env, isa.R11)
	a.MOVI(isa.R8, 0)
	if indirect {
		a.LA(isa.R10, "ptrs") // function-pointer table base
	}
	core.EmitBegin(env, isa.R0)

	emitCountdownHead(env)
	if indirect {
		// Call through a pointer loaded from the table: the target is
		// unknowable at translation time.
		a.LDW(isa.R2, isa.R10, 0)
		a.BLR(isa.R2)
	} else {
		a.BL(fnLabel(0))
	}
	emitCountdownTail(env)

	core.EmitEnd(env, isa.R0)
	core.EmitResult(env, isa.R8, isa.R0)
	core.EmitHalt(env)
	core.EmitVectors(env, core.Handlers{})

	// Function bodies. Inter-page places each on its own page;
	// intra-page packs them all on one page.
	base := uint32(0x8000)
	for i := 0; i < ctrlChainLen; i++ {
		if interPage {
			a.Org(base + uint32(i)*isa.PageSize)
		} else if i == 0 {
			a.Org(base)
		}
		a.Label(fnLabel(i))
		a.ADDI(isa.R8, isa.R8, int32(i+1))
		a.XORI(isa.R3, isa.R8, 0x55) // filler work, defeats trivial folding
		last := i == ctrlChainLen-1
		switch {
		case last:
			a.RET()
		case indirect:
			// Tail call through the next table slot.
			a.LDW(isa.R2, isa.R10, int32(i+1)*4)
			a.BR(isa.R2)
		default:
			a.B(isa.CondAL, fnLabel(i+1))
		}
	}

	if indirect {
		// The pointer table lives on its own page.
		a.Org(base + (ctrlChainLen+1)*isa.PageSize)
		a.Label("ptrs")
		for i := 0; i < ctrlChainLen; i++ {
			a.WordAddr(fnLabel(i))
		}
	}
	return nil
}

func ctrlBenchmark(name, title, desc string, iters int64, interPage, indirect bool,
	tested func(*core.Result) uint64) *core.Benchmark {
	return &core.Benchmark{
		Name:        name,
		Title:       title,
		Category:    core.CatControlFlow,
		Description: desc,
		PaperIters:  iters,
		TestedOps:   tested,
		Validate:    ctrlValidate(),
		Build: func(env *core.Env) error {
			return buildChain(env, interPage, indirect)
		},
	}
}

// InterPageDirect is ctrl.interpage-direct.
func InterPageDirect() *core.Benchmark {
	return ctrlBenchmark("ctrl.interpage-direct", "Inter-Page Direct",
		"direct tail calls across page boundaries", 100_000_000, true, false,
		func(r *core.Result) uint64 { return r.Stats.BranchDirectInter })
}

// InterPageIndirect is ctrl.interpage-indirect.
func InterPageIndirect() *core.Benchmark {
	return ctrlBenchmark("ctrl.interpage-indirect", "Inter-Page Indirect",
		"function-pointer tail calls across page boundaries", 250_000, true, true,
		func(r *core.Result) uint64 { return r.Stats.BranchIndirectInter })
}

// IntraPageDirect is ctrl.intrapage-direct.
func IntraPageDirect() *core.Benchmark {
	return ctrlBenchmark("ctrl.intrapage-direct", "Intra-Page Direct",
		"direct tail calls within one page", 500_000_000, false, false,
		func(r *core.Result) uint64 { return r.Stats.BranchDirectIntra })
}

// IntraPageIndirect is ctrl.intrapage-indirect.
func IntraPageIndirect() *core.Benchmark {
	return ctrlBenchmark("ctrl.intrapage-indirect", "Intra-Page Indirect",
		"function-pointer tail calls within one page", 200_000, false, true,
		func(r *core.Result) uint64 { return r.Stats.BranchIndirectIntra })
}
