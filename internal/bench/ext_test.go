package bench

import (
	"testing"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine/dbt"
	"simbench/internal/engine/interp"
)

func TestExtSuiteRunsEverywhere(t *testing.T) {
	for _, sup := range arch.All() {
		for _, eng := range engines() {
			for _, b := range ExtSuite() {
				t.Run(b.Name+"/"+eng.Name()+"/"+sup.Name(), func(t *testing.T) {
					r := core.NewRunner(eng, sup)
					if _, err := r.Run(b, 64); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestIRQLatencyObservesDeliveryGranularity is the paper's Fig. 4
// "Interrupts" row made measurable: the fast interpreter (instruction
// boundaries) must deliver interrupts with lower guest-instruction
// latency than the DBT (block boundaries).
func TestIRQLatencyObservesDeliveryGranularity(t *testing.T) {
	b := IRQLatency()
	const iters = 300

	avg := func(r *core.Result) float64 {
		return float64(r.GuestResults[len(r.GuestResults)-1]) / float64(r.Iters)
	}
	ri, err := core.NewRunner(interp.New(), arch.ARM{}).Run(b, iters)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := core.NewRunner(dbt.NewDefault(), arch.ARM{}).Run(b, iters)
	if err != nil {
		t.Fatal(err)
	}
	li, ld := avg(ri), avg(rd)
	if li >= ld {
		t.Errorf("interp latency %.1f should be below dbt latency %.1f (insn vs block boundaries)", li, ld)
	}
	// Interp delivers before the next instruction completes.
	if li > 1 {
		t.Errorf("interp latency %.1f, want <= 1 instruction", li)
	}
	// DBT lets the current block retire: several instructions.
	if ld < 2 {
		t.Errorf("dbt latency %.1f, want >= 2 (block boundary delivery)", ld)
	}
}

// TestSectionVsPageWalkLevels verifies the walk-depth asymmetry the
// benchmark targets: on the arm profile, half the cold accesses use
// 1-level section walks, so mean walk depth sits strictly between 1
// and 2; on x86 everything is 2-level.
func TestSectionVsPageWalkLevels(t *testing.T) {
	b := SectionVsPage()
	run := func(sup arch.Support) float64 {
		r, err := core.NewRunner(interp.New(), sup).Run(b, 200)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.Stats.WalkLevels) / float64(r.Stats.PageWalks)
	}
	arm := run(arch.ARM{})
	x86 := run(arch.X86{})
	if !(arm > 1.2 && arm < 1.9) {
		t.Errorf("arm mean walk depth %.2f, want within (1.2, 1.9)", arm)
	}
	if x86 < 1.95 {
		t.Errorf("x86 mean walk depth %.2f, want ~2", x86)
	}
}

func TestExtNamesDisjointFromCore(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		seen[b.Name] = true
	}
	for _, b := range ExtSuite() {
		if seen[b.Name] {
			t.Errorf("extension %s collides with the core suite", b.Name)
		}
	}
	if len(ExtSuite()) != 3 {
		t.Error("three extensions")
	}
}
