// Package interp implements the fast-interpreter engine, modelled on
// SimIt-ARM as characterised in the paper's Fig. 4: instructions are
// decoded on demand into a per-physical-page decode cache, data
// accesses go through a single-level page cache, and interrupts are
// recognised at every instruction boundary. There is no code
// generation, so self-modifying code costs almost nothing — the
// behaviour that makes SimIt-ARM beat QEMU on the Code Generation
// benchmarks.
//
// This engine is also the reference semantics for SV32: the other
// engines are differentially tested against it.
package interp

import (
	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/mmu"
)

const (
	dcacheBits = 8 // single-level data page cache: 256 entries
	dcacheSize = 1 << dcacheBits
	fcacheBits = 6 // fetch page cache: 64 entries
	fcacheSize = 1 << fcacheBits

	insnsPerPage = isa.PageSize / isa.WordBytes
	tickQuantum  = 4096
)

// tlbEntry is one slot of the single-level page caches.
type tlbEntry struct {
	tag   uint32 // vpage | 1 (bit0 = valid; vpage low bit is always 0 after <<12 split)
	pbase uint32 // physical page base
	flags uint8  // permWrite | permUser | isRAM
}

const (
	fWrite uint8 = 1 << 0
	fUser  uint8 = 1 << 1
	fRAM   uint8 = 1 << 2
)

// decodedPage caches lazily decoded instructions for one physical
// page. Invalidation is O(1): bumping gen makes every stamp stale, and
// instructions are re-decoded on demand — which is why self-modifying
// code is nearly free on a fast interpreter, unlike on a DBT.
type decodedPage struct {
	insts [insnsPerPage]isa.Inst
	stamp [insnsPerPage]uint32
	gen   uint32
}

// hart is the per-core interpreter state: the machine it drives plus
// the translation and decode caches that must stay private to one
// core. It registers itself as that core's TLB listener, so cross-core
// shootdowns invalidate exactly the caches of the harts they target.
type hart struct {
	m         *machine.Machine
	dc        [dcacheSize]tlbEntry
	fc        [fcacheSize]tlbEntry
	dpages    map[uint32]*decodedPage // phys page index -> decoded
	codePages []bool                  // phys page index -> has cached decodes
	insns     uint64                  // retired on this hart

	// fetchEpoch advances on every TLB invalidation that reaches this
	// hart. runSlice keeps a one-entry fetch-translation micro-cache in
	// locals; comparing its epoch snapshot against this counter is what
	// lets a shootdown (TLBI on this hart or a cross-core broadcast)
	// kill the cached translation without runSlice polling the fc array.
	fetchEpoch uint32
}

// InvalidatePage implements machine.TLBListener.
func (h *hart) InvalidatePage(va uint32) {
	vp := va >> isa.PageShift
	d := &h.dc[vp&(dcacheSize-1)]
	if d.tag == vp<<1|1 {
		d.tag = 0
	}
	f := &h.fc[vp&(fcacheSize-1)]
	if f.tag == vp<<1|1 {
		f.tag = 0
	}
	h.fetchEpoch++
}

// InvalidateAll implements machine.TLBListener.
func (h *hart) InvalidateAll() {
	h.dc = [dcacheSize]tlbEntry{}
	h.fc = [fcacheSize]tlbEntry{}
	h.fetchEpoch++
}

// Interp is the fast-interpreter engine. The zero value is not usable;
// call New.
type Interp struct {
	m     *machine.Machine // current hart's machine
	h     *hart            // current hart's caches
	harts []*hart
	st    engine.Stats

	// profile enables architectural-event classification (taken-branch
	// direct/indirect × intra/inter-page counters) used by the
	// operation-density experiment (paper Fig. 3).
	profile bool
}

// New returns a fast-interpreter engine.
func New() *Interp { return &Interp{} }

// NewProfiling returns an interpreter that additionally classifies
// control-flow events; it is the reference profiler behind the
// operation-density table.
func NewProfiling() *Interp { return &Interp{profile: true} }

// classifyBranch records a taken branch for the density profile.
func (e *Interp) classifyBranch(pc, target uint32, indirect bool) {
	intra := pc>>isa.PageShift == target>>isa.PageShift
	switch {
	case indirect && intra:
		e.st.BranchIndirectIntra++
	case indirect:
		e.st.BranchIndirectInter++
	case intra:
		e.st.BranchDirectIntra++
	default:
		e.st.BranchDirectInter++
	}
}

// Name implements engine.Engine. The profiling variant names itself
// distinctly: classification changes what a run costs, so a profiled
// measurement must never share a content-addressed cell (whose
// engine fingerprint is this name plus the feature metadata) with a
// plain interpreter run.
func (e *Interp) Name() string {
	if e.profile {
		return "interp-profile"
	}
	return "interp"
}

// Features implements engine.Engine (the paper's Fig. 4 SimIt-ARM row).
func (e *Interp) Features() engine.Features {
	return engine.Features{
		ExecutionModel: "Fast Interpreter",
		MemoryAccess:   "Single-Level Page Cache",
		CodeGeneration: "None",
		CtrlFlowInter:  "Interpreted",
		CtrlFlowIntra:  "Interpreted",
		Interrupts:     "Instruction Boundaries",
		SyncExceptions: "Interpreted",
		UndefInsn:      "Interpreted",
	}
}

// reset builds one hart context per machine and registers each as its
// core's TLB listener.
func (e *Interp) reset(harts []*machine.Machine) {
	e.st = engine.Stats{}
	e.harts = make([]*hart, len(harts))
	for i, m := range harts {
		h := &hart{
			m:         m,
			dpages:    make(map[uint32]*decodedPage),
			codePages: make([]bool, (len(m.Bus.RAM)+isa.PageSize-1)/isa.PageSize),
		}
		m.ClearTLBListeners()
		m.AddTLBListener(h)
		e.harts[i] = h
	}
	e.attach(e.harts[0])
}

// attach makes h the current hart.
func (e *Interp) attach(h *hart) {
	e.h = h
	e.m = h.m
}

// translate resolves va for a data access. asUser forces user-mode
// permission checks (LDT/STT). It fills the single-level cache.
func (e *Interp) translate(va uint32, write, asUser bool) (pa uint32, isRAM bool, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		return va, m.Bus.IsRAM(va, 1), isa.FaultNone
	}
	vp := va >> isa.PageShift
	ent := &e.h.dc[vp&(dcacheSize-1)]
	if ent.tag != vp<<1|1 {
		e.st.TLBMisses++
		pte, levels, f := mmu.Walk(m.Bus, m.TTBR(), m.FormatB(), va)
		e.st.PageWalks++
		e.st.WalkLevels += uint64(levels)
		if f != isa.FaultNone {
			return 0, false, f
		}
		ent.tag = vp<<1 | 1
		ent.pbase = pte.PhysPage
		ent.flags = 0
		if pte.Writable {
			ent.flags |= fWrite
		}
		if pte.User {
			ent.flags |= fUser
		}
		if m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
			ent.flags |= fRAM
		}
	} else {
		e.st.TLBHits++
	}
	kernel := m.CPU.Kernel && !asUser
	if !kernel && ent.flags&fUser == 0 {
		return 0, false, isa.FaultPermission
	}
	if write && ent.flags&fWrite == 0 {
		return 0, false, isa.FaultPermission
	}
	return ent.pbase | va&isa.PageMask, ent.flags&fRAM != 0, isa.FaultNone
}

// fetchPage resolves the physical page for an instruction fetch.
func (e *Interp) fetchPage(pc uint32) (pbase uint32, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		if !m.Bus.IsRAM(pc, isa.WordBytes) {
			return 0, isa.FaultBus
		}
		return pc &^ isa.PageMask, isa.FaultNone
	}
	vp := pc >> isa.PageShift
	ent := &e.h.fc[vp&(fcacheSize-1)]
	if ent.tag != vp<<1|1 {
		pte, levels, f := mmu.Walk(m.Bus, m.TTBR(), m.FormatB(), pc)
		e.st.PageWalks++
		e.st.WalkLevels += uint64(levels)
		if f != isa.FaultNone {
			return 0, f
		}
		if !m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
			return 0, isa.FaultBus
		}
		ent.tag = vp<<1 | 1
		ent.pbase = pte.PhysPage
		ent.flags = 0
		if pte.User {
			ent.flags |= fUser
		}
	}
	if !m.CPU.Kernel && ent.flags&fUser == 0 {
		return 0, isa.FaultPermission
	}
	return ent.pbase, isa.FaultNone
}

// decode returns the decoded instruction at physical address pa,
// filling the per-page decode cache lazily.
func (e *Interp) decode(pa uint32) isa.Inst {
	page := pa >> isa.PageShift
	dp := e.h.dpages[page]
	if dp == nil {
		dp = &decodedPage{gen: 1}
		e.h.dpages[page] = dp
		e.h.codePages[page] = true
		e.st.PagesDecoded++
	}
	idx := (pa & isa.PageMask) >> 2
	if dp.stamp[idx] != dp.gen {
		dp.insts[idx] = isa.Decode(e.m.Bus.ReadWordRAM(pa))
		dp.stamp[idx] = dp.gen
	}
	return dp.insts[idx]
}

// noteStore invalidates cached decodes when guest code is overwritten.
// The page stays allocated; only its generation advances.
func (e *Interp) noteStore(pa uint32) {
	page := pa >> isa.PageShift
	if len(e.harts) > 1 {
		// RAM is shared: a store by any hart must stale every hart's
		// cached decodes of that page.
		for _, h := range e.harts {
			if int(page) < len(h.codePages) && h.codePages[page] {
				if dp := h.dpages[page]; dp != nil {
					dp.gen++
				}
				e.st.SMCInvalidations++
			}
		}
		return
	}
	if int(page) < len(e.h.codePages) && e.h.codePages[page] {
		if dp := e.h.dpages[page]; dp != nil {
			dp.gen++
		}
		e.st.SMCInvalidations++
	}
}

// Run implements engine.Engine: round-robin over runnable harts in
// SchedQuantum slices. The tick and interrupt checks key off each
// hart's own retired count, so a single-hart run executes exactly the
// instruction stream the pre-SMP engine did.
func (e *Interp) Run(harts []*machine.Machine, limit uint64) (engine.Stats, error) {
	e.reset(harts)
	var total uint64
	for {
		running := false
		for _, h := range e.harts {
			if h.m.Halted {
				continue
			}
			running = true
			if err := e.runSlice(h, &total, limit); err != nil {
				e.st.Instructions = total
				return e.st, err
			}
		}
		if !running {
			break
		}
	}
	e.st.Instructions = total
	return e.st, nil
}

// runSlice executes up to SchedQuantum instructions on h. The loop
// body is the interpreter's hottest code, so two pieces of work that
// the straightforward form repays every instruction are hoisted out:
//
//   - The tick check. Instead of a modulo per instruction, tickAt
//     holds the next retired-count boundary at which TickFn fires; the
//     loop compares against it and advances it by tickQuantum when an
//     instruction retires past it. Non-retiring iterations (IRQ
//     delivery, fetch faults) leave insns — and therefore a boundary
//     that is due — unchanged, exactly like the modulo form.
//
//   - The fetch translation. A one-entry micro-cache in locals keeps
//     the last fetch page's physical base and decoded-page pointer;
//     straight-line and intra-page code skips fetchPage and the dpages
//     map lookup entirely. The guard re-checks everything the full
//     path would consult: virtual page, privilege mode (fetchPage does
//     a per-call user-permission check), MMU enable, and the hart's
//     invalidation epoch. Self-modifying code needs no guard because
//     the per-instruction stamp/gen recheck below is the same one
//     decode performs. Pre-PR, a fetch-cache hit counted no stats, so
//     serving hits from the micro-cache changes no counter.
func (e *Interp) runSlice(h *hart, total *uint64, limit uint64) error {
	e.attach(h)
	m := h.m
	cpu := &m.CPU
	stop := h.insns + engine.SchedQuantum

	tickAt := ^uint64(0) // never fires while TickFn is nil
	if m.TickFn != nil {
		if h.insns%tickQuantum == 0 && h.insns != 0 {
			tickAt = h.insns // slice starts on a due boundary
		} else {
			tickAt = h.insns + tickQuantum - h.insns%tickQuantum
		}
	}

	var (
		fetchVP     = ^uint32(0) // virtual page of the cached fetch (^0 = none)
		fetchPB     uint32       // its physical page base
		fetchDP     *decodedPage // its decode cache
		fetchKernel bool         // privilege mode it was resolved under
		fetchMMU    bool         // MMU enable it was resolved under
		fetchEpoch  = h.fetchEpoch
	)

	for !m.Halted && h.insns < stop {
		if *total >= limit {
			return engine.ErrLimit
		}
		if h.insns == tickAt {
			m.TickFn(tickQuantum)
		}
		if m.IRQPending() {
			m.Enter(isa.ExcIRQ, cpu.PC)
			e.st.IRQsDelivered++
			e.st.ExceptionsTaken++
			continue
		}

		pc := cpu.PC
		var in isa.Inst
		if pc>>isa.PageShift == fetchVP && cpu.Kernel == fetchKernel &&
			m.MMUEnabled() == fetchMMU && h.fetchEpoch == fetchEpoch {
			idx := (pc & isa.PageMask) >> 2
			if fetchDP.stamp[idx] != fetchDP.gen {
				fetchDP.insts[idx] = isa.Decode(m.Bus.ReadWordRAM(fetchPB | pc&isa.PageMask))
				fetchDP.stamp[idx] = fetchDP.gen
			}
			in = fetchDP.insts[idx]
		} else {
			pbase, fault := e.fetchPage(pc)
			if fault != isa.FaultNone {
				m.EnterMemFault(isa.ExcInstFault, fault, pc, false, pc)
				e.st.ExceptionsTaken++
				fetchVP = ^uint32(0)
				continue
			}
			in = e.decode(pbase | pc&isa.PageMask)
			// Cache the translation only when every word of the page is
			// RAM: always true under the MMU (fetchPage requires it when
			// filling the fc), and checked explicitly for the physical
			// tail page when the MMU is off — fetchPage validates
			// IsRAM(pc, WordBytes) per call there, which the fast path
			// must not weaken mid-page.
			if m.MMUEnabled() || m.Bus.IsRAM(pbase, isa.PageSize) {
				fetchVP = pc >> isa.PageShift
				fetchPB = pbase
				fetchDP = h.dpages[pbase>>isa.PageShift]
				fetchKernel = cpu.Kernel
				fetchMMU = m.MMUEnabled()
				fetchEpoch = h.fetchEpoch
			} else {
				fetchVP = ^uint32(0)
			}
		}
		h.insns++
		*total++
		if h.insns > tickAt {
			tickAt += tickQuantum
		}
		dispatch[in.Op](e, in, pc)
	}
	return nil
}

// undef raises the undefined-instruction exception for the instruction
// at pc.
func (e *Interp) undef(pc uint32) {
	e.m.Enter(isa.ExcUndef, pc+4)
	e.st.ExceptionsTaken++
}

func (e *Interp) load(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemReads++
	pa, isRAM, fault := e.translate(va, false, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	var v uint32
	if isRAM {
		if size == 4 {
			v = m.Bus.ReadWordRAM(pa)
		} else {
			v = uint32(m.Bus.RAM[pa])
		}
	} else {
		e.st.DeviceAccesses++
		var f isa.FaultCode
		v, f = m.Bus.ReadPhys(pa, size)
		if f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, false, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	m.CPU.Regs[in.Rd] = v
	m.CPU.PC = pc + 4
}

// loadExclusive implements LDX: a word load that arms this hart's
// exclusive monitor on the loaded address. Exclusives are RAM-only;
// an MMIO target raises a bus data fault.
func (e *Interp) loadExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.MemReads++
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.translate(va, false, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	m.Mon.Arm(m.HartID, pa)
	m.CPU.Regs[in.Rd] = m.Bus.ReadWordRAM(pa)
	m.CPU.PC = pc + 4
}

// storeExclusive implements STX: store rb to [ra] iff this hart still
// holds the reservation, writing 0 (success) or 1 (failure) to rd.
func (e *Interp) storeExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.translate(va, true, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	if m.Mon.Exclusive(m.HartID, pa) {
		e.st.MemWrites++
		m.Bus.WriteWordRAM(pa, m.CPU.Regs[in.Rb])
		m.Mon.NoteStore(pa) // break other harts' reservations
		e.noteStore(pa)
		m.CPU.Regs[in.Rd] = 0
	} else {
		e.st.ExclusiveFails++
		m.CPU.Regs[in.Rd] = 1
	}
	m.CPU.PC = pc + 4
}

func (e *Interp) store(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemWrites++
	pa, isRAM, fault := e.translate(va, true, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	v := m.CPU.Regs[in.Rd]
	if isRAM {
		if size == 4 {
			m.Bus.WriteWordRAM(pa, v)
		} else {
			m.Bus.RAM[pa] = byte(v)
		}
		if m.Mon.Armed() {
			m.Mon.NoteStore(pa)
		}
		e.noteStore(pa)
	} else {
		e.st.DeviceAccesses++
		if f := m.Bus.WritePhys(pa, size, v); f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, true, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	m.CPU.PC = pc + 4
}
