package interp

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/mmu"
	"simbench/internal/platform"
)

func run(t *testing.T, build func(a *asm.Assembler)) (*platform.Platform, engine.Stats) {
	t.Helper()
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	p.M.Reset()
	st, err := New().Run(p.Harts(), 1_000_000)
	if err != nil {
		t.Fatalf("run: %v (pc=%#x)", err, p.M.CPU.PC)
	}
	return p, st
}

func TestFactorial(t *testing.T) {
	p, st := run(t, func(a *asm.Assembler) {
		a.MOVI(isa.R1, 10) // n
		a.MOVI(isa.R2, 1)  // acc
		a.Label("loop")
		a.CMPI(isa.R1, 1)
		a.B(isa.CondLE, "done")
		a.MUL(isa.R2, isa.R2, isa.R1)
		a.SUBI(isa.R1, isa.R1, 1)
		a.B(isa.CondAL, "loop")
		a.Label("done")
		a.HALT()
	})
	if got := p.M.CPU.Regs[isa.R2]; got != 3628800 {
		t.Errorf("10! = %d, want 3628800", got)
	}
	if st.Instructions == 0 {
		t.Error("no instructions counted")
	}
}

func TestUARTOutput(t *testing.T) {
	p, _ := run(t, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, platform.UARTBase)
		for _, ch := range "hi" {
			a.MOVI(isa.R2, int32(ch))
			a.STW(isa.R2, isa.R1, 0)
		}
		a.HALT()
	})
	if got := p.ConsoleString(); got != "hi" {
		t.Errorf("console = %q, want \"hi\"", got)
	}
}

func TestSyscallException(t *testing.T) {
	p, st := run(t, func(a *asm.Assembler) {
		// Vector table at 0x100: syscall handler increments R5 and ERETs.
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R5, 0)
		a.SVC(42)
		a.SVC(43)
		a.HALT()

		a.Org(0x100)
		a.Label("vectors")
		a.B(isa.CondAL, "bad") // reset
		a.B(isa.CondAL, "bad") // undef
		a.B(isa.CondAL, "svc") // syscall
		a.B(isa.CondAL, "bad") // inst fault
		a.B(isa.CondAL, "bad") // data fault
		a.B(isa.CondAL, "bad") // irq
		a.Label("svc")
		a.ADDI(isa.R5, isa.R5, 1)
		a.ERET()
		a.Label("bad")
		a.HALT()
	})
	if got := p.M.CPU.Regs[isa.R5]; got != 2 {
		t.Errorf("handler ran %d times, want 2", got)
	}
	if p.M.ExcCount[isa.ExcSyscall] != 2 {
		t.Errorf("syscall count = %d", p.M.ExcCount[isa.ExcSyscall])
	}
	if st.ExceptionsTaken != 2 {
		t.Errorf("stats exceptions = %d", st.ExceptionsTaken)
	}
}

func TestUndefinedInstruction(t *testing.T) {
	p, _ := run(t, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R5, 0)
		a.UD()
		a.HALT()
		a.Org(0x100)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "undef")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("undef")
		a.ADDI(isa.R5, isa.R5, 1)
		a.ERET()
	})
	if p.M.CPU.Regs[isa.R5] != 1 {
		t.Errorf("undef handler ran %d times", p.M.CPU.Regs[isa.R5])
	}
}

func TestSafeDeviceRead(t *testing.T) {
	p, st := run(t, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, platform.SafeBase)
		a.LDW(isa.R2, isa.R1, 0)
		a.HALT()
	})
	if got := p.M.CPU.Regs[isa.R2]; got != 0x51AFEDE5 {
		t.Errorf("safe ID = %#x", got)
	}
	if st.DeviceAccesses != 1 {
		t.Errorf("device accesses = %d", st.DeviceAccesses)
	}
}

// TestMMUDataFault builds page tables host-side, enables the MMU, and
// checks that an access to an unmapped page vectors to the data-abort
// handler with the right FSR/FAR.
func TestMMUDataFault(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()

	a.Label("_start")
	a.LA(isa.R1, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R1)
	a.LoadImm32(isa.R2, 0x80000) // TTBR set below to match builder root
	a.MSR(isa.CtrlTTBR, isa.R2)
	a.MOVI(isa.R3, 1) // enable, format A
	a.MSR(isa.CtrlMMU, isa.R3)
	a.LoadImm32(isa.R4, 0x00500000) // unmapped VA
	a.LDW(isa.R5, isa.R4, 0)        // faults
	a.HALT()

	a.Org(0x200)
	a.Label("vectors")
	a.HALT()
	a.HALT()
	a.HALT()
	a.HALT()
	a.B(isa.CondAL, "dabort")
	a.HALT()
	a.Label("dabort")
	a.MRS(isa.R6, isa.CtrlFAR)
	a.MRS(isa.R7, isa.CtrlFSR)
	a.MRS(isa.R8, isa.CtrlEPC)
	a.ADDI(isa.R8, isa.R8, 4)
	a.MSR(isa.CtrlEPC, isa.R8)
	a.ERET()

	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	// Host-side "bootloader": identity-map the first 1 MiB, leave
	// 0x00500000 unmapped. Tables at 0x80000.
	b, err := mmu.NewBuilder(p.M.Bus, 0x80000, 0xC0000, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Root() != 0x80000 {
		t.Fatalf("builder root %#x", b.Root())
	}
	if err := b.MapRange(0, 0, 1<<20, true, false); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	if _, err := New().Run(p.Harts(), 100_000); err != nil {
		t.Fatalf("run: %v (pc=%#x)", err, p.M.CPU.PC)
	}
	if got := p.M.CPU.Regs[isa.R6]; got != 0x00500000 {
		t.Errorf("FAR = %#x", got)
	}
	if got := p.M.CPU.Regs[isa.R7]; got != uint32(isa.FaultTranslation) {
		t.Errorf("FSR = %#x", got)
	}
	if p.M.ExcCount[isa.ExcDataFault] != 1 {
		t.Errorf("data faults = %d", p.M.ExcCount[isa.ExcDataFault])
	}
}

func TestIRQDelivery(t *testing.T) {
	p, st := run(t, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		// Enable software interrupt line in the controller.
		a.LoadImm32(isa.R2, platform.ICBase)
		a.MOVI(isa.R3, 1) // line 0 mask
		a.STW(isa.R3, isa.R2, 0x08)
		// Enable IRQs in the PSR: kernel | irq-on.
		a.MOVI(isa.R4, 3)
		a.MSR(isa.CtrlPSR, isa.R4)
		// Raise the software interrupt: write line number to ICRaise.
		a.MOVI(isa.R5, 0)
		a.STW(isa.R5, isa.R2, 0x0C)
		// The IRQ is taken before the next instruction completes.
		a.NOP()
		a.HALT()

		a.Org(0x300)
		a.Label("vectors")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.B(isa.CondAL, "irq")
		a.Label("irq")
		a.ADDI(isa.R7, isa.R7, 1)
		// Ack: clear line 0.
		a.LoadImm32(isa.R8, platform.ICBase)
		a.MOVI(isa.R9, 0)
		a.STW(isa.R9, isa.R8, 0x10)
		a.ERET()
	})
	if p.M.CPU.Regs[isa.R7] != 1 {
		t.Errorf("irq handler ran %d times", p.M.CPU.Regs[isa.R7])
	}
	if st.IRQsDelivered != 1 {
		t.Errorf("irqs delivered = %d", st.IRQsDelivered)
	}
}

func TestUserModePrivilegeChecks(t *testing.T) {
	// Drop to user mode via ERET and verify HALT raises undef.
	p, _ := run(t, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.LA(isa.R2, "user")
		a.MSR(isa.CtrlEPC, isa.R2)
		a.MOVI(isa.R3, 0) // user mode, IRQs off
		a.MSR(isa.CtrlEPSR, isa.R3)
		a.ERET()
		a.Label("user")
		a.HALT() // privileged in user mode -> undef
		a.Label("after")
		a.NOP()
		a.HALT()
		a.Org(0x200)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "undef")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("undef")
		a.MOVI(isa.R10, 77)
		a.HALT()
	})
	if p.M.CPU.Regs[isa.R10] != 77 {
		t.Error("user-mode HALT did not trap to undef handler")
	}
}

func TestSMCDecodeInvalidation(t *testing.T) {
	// Overwrite a NOP with "MOVI R9, 5" at runtime and execute it.
	_, st := run(t, func(a *asm.Assembler) {
		target := isa.Encode(isa.Inst{Op: isa.OpMOVI, Rd: isa.R9, Imm: 5})
		a.LA(isa.R1, "patch")
		a.LoadImm32(isa.R2, target)
		// Execute the patch site once as NOP.
		a.BL("patch_site_call")
		// Patch and re-execute.
		a.STW(isa.R2, isa.R1, 0)
		a.BL("patch_site_call")
		a.HALT()
		a.Label("patch_site_call")
		a.Label("patch")
		a.NOP()
		a.RET()
	})
	_ = st
}

func TestSMCActuallyTakesEffect(t *testing.T) {
	p, st := run(t, func(a *asm.Assembler) {
		patched := isa.Encode(isa.Inst{Op: isa.OpMOVI, Rd: isa.R9, Imm: 5})
		a.MOVI(isa.R9, 0)
		a.LA(isa.R1, "site")
		a.LoadImm32(isa.R2, patched)
		a.BL("fn")
		a.MOV(isa.R6, isa.R9) // should still be 0
		a.STW(isa.R2, isa.R1, 0)
		a.BL("fn")
		a.MOV(isa.R7, isa.R9) // should now be 5
		a.HALT()
		a.Label("fn")
		a.Label("site")
		a.NOP()
		a.RET()
	})
	if p.M.CPU.Regs[isa.R6] != 0 || p.M.CPU.Regs[isa.R7] != 5 {
		t.Errorf("SMC not honoured: r6=%d r7=%d", p.M.CPU.Regs[isa.R6], p.M.CPU.Regs[isa.R7])
	}
	if st.SMCInvalidations == 0 {
		t.Error("expected at least one SMC invalidation")
	}
}

func TestInstructionLimit(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.Label("spin")
	a.B(isa.CondAL, "spin")
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	p.M.Reset()
	_, err := New().Run(p.Harts(), 1000)
	if err != engine.ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestNonPrivAccessX86Undefined(t *testing.T) {
	p := platform.New(machine.ProfileX86, 1<<20)
	a := asm.New()
	a.LA(isa.R1, "vectors")
	a.MSR(isa.CtrlVBAR, isa.R1)
	a.LDT(isa.R2, isa.R3, 0) // undefined on x86 profile
	a.HALT()
	a.Org(0x100)
	a.Label("vectors")
	a.HALT()
	a.B(isa.CondAL, "undef")
	a.HALT()
	a.HALT()
	a.HALT()
	a.HALT()
	a.Label("undef")
	a.MOVI(isa.R10, 1)
	a.ERET()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p.M.LoadProgram(prog)
	p.M.Reset()
	if _, err := New().Run(p.Harts(), 10000); err != nil {
		t.Fatal(err)
	}
	if p.M.CPU.Regs[isa.R10] != 1 {
		t.Error("LDT on x86 profile did not raise undef")
	}
	if p.M.ExcCount[isa.ExcUndef] != 1 {
		t.Errorf("undef count = %d", p.M.ExcCount[isa.ExcUndef])
	}
}
