package interp

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// TestBranchClassification checks the density profiler's four-way
// branch classification on a program with known control flow.
func TestBranchClassification(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.Label("_start")
	a.MOVI(isa.SP, 0x8000)
	// 10x direct intra-page branches (tight loop on one page).
	a.MOVI(isa.R1, 10)
	a.Label("near")
	a.SUBI(isa.R1, isa.R1, 1)
	a.CMPI(isa.R1, 0)
	a.B(isa.CondNE, "near") // 9 taken
	// 1 direct inter-page call + 1 indirect inter-page return.
	a.BL("far")
	// Indirect intra-page: a register branch to the next instruction's
	// page-local target.
	a.LA(isa.R2, "local")
	a.BR(isa.R2)
	a.Label("local")
	a.HALT()
	a.Org(0x8000)
	a.Label("far")
	a.RET() // indirect, back across pages
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p.M.LoadProgram(prog)
	p.M.Reset()
	e := NewProfiling()
	st, err := e.Run(p.Harts(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchDirectIntra != 9 {
		t.Errorf("direct intra = %d, want 9", st.BranchDirectIntra)
	}
	if st.BranchDirectInter != 1 {
		t.Errorf("direct inter = %d, want 1 (the BL)", st.BranchDirectInter)
	}
	if st.BranchIndirectInter != 1 {
		t.Errorf("indirect inter = %d, want 1 (the RET)", st.BranchIndirectInter)
	}
	if st.BranchIndirectIntra != 1 {
		t.Errorf("indirect intra = %d, want 1 (the BR)", st.BranchIndirectIntra)
	}
}

// TestNonProfilingSkipsClassification keeps the hot path clean: the
// plain interpreter must not fill the classification counters.
func TestNonProfilingSkipsClassification(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.MOVI(isa.R1, 5)
	a.Label("l")
	a.SUBI(isa.R1, isa.R1, 1)
	a.CMPI(isa.R1, 0)
	a.B(isa.CondNE, "l")
	a.HALT()
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	p.M.Reset()
	st, err := New().Run(p.Harts(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchDirectIntra != 0 {
		t.Error("plain interpreter classified branches")
	}
}

// TestNotTakenBranchesNotCounted: classification counts *taken*
// transfers only, mirroring the paper's operation definition.
func TestNotTakenBranchesNotCounted(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.CMPI(isa.R0, 1) // R0 == 0, so EQ fails
	a.B(isa.CondEQ, "skip")
	a.Label("skip")
	a.HALT()
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	p.M.Reset()
	st, err := NewProfiling().Run(p.Harts(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	total := st.BranchDirectIntra + st.BranchDirectInter +
		st.BranchIndirectIntra + st.BranchIndirectInter
	if total != 0 {
		t.Errorf("not-taken branch was classified (%d)", total)
	}
}
