package interp

// Hot-path microbenchmarks for the fast interpreter: the
// per-instruction dispatch cost (BenchmarkDispatch) and the fetch
// translation cost on straight-line same-page code
// (BenchmarkFetchSamePage). Recorded runs of these benchmarks form the
// perf trajectory in the repo's BENCH_*.json files; see README
// "Performance trajectory".

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

func benchAssemble(b *testing.B, build func(a *asm.Assembler)) *asm.Program {
	b.Helper()
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func benchRun(b *testing.B, prog *asm.Program) {
	b.Helper()
	var insns uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := platform.New(machine.ProfileARM, 1<<20)
		if err := p.M.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		p.M.Reset()
		b.StartTimer()
		st, err := New().Run(p.Harts(), 500_000_000)
		if err != nil {
			b.Fatalf("%v (pc=%#x)", err, p.M.CPU.PC)
		}
		insns += st.Instructions
	}
	b.ReportMetric(float64(insns)/b.Elapsed().Seconds()/1e6, "Mips")
}

// BenchmarkDispatch measures the per-instruction decode + dispatch
// loop on a hot ALU kernel — the cost the threaded dispatch table
// attacks.
func BenchmarkDispatch(b *testing.B) {
	benchRun(b, benchAssemble(b, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, 50_000)
		a.MOVI(isa.R2, 0)
		a.MOVI(isa.R3, 7)
		a.Label("loop")
		a.ADD(isa.R2, isa.R2, isa.R3)
		a.XOR(isa.R4, isa.R2, isa.R1)
		a.SHLI(isa.R5, isa.R4, 3)
		a.SUB(isa.R2, isa.R2, isa.R5)
		a.ORI(isa.R6, isa.R2, 0x55)
		a.AND(isa.R2, isa.R2, isa.R6)
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	}))
}

// BenchmarkFetchSamePage measures fetch-translation overhead on
// straight-line code that never leaves its page — the case the
// same-page fetch fast path serves without touching the fetch cache.
func BenchmarkFetchSamePage(b *testing.B) {
	benchRun(b, benchAssemble(b, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, 20_000)
		a.MOVI(isa.R2, 0)
		a.Label("loop")
		for i := 0; i < 24; i++ {
			a.ADDI(isa.R2, isa.R2, 1)
		}
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	}))
}
