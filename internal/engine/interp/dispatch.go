package interp

// Threaded dispatch for the fast interpreter: one handler function per
// primary opcode, selected by indexing a table with the decoded 6-bit
// opcode instead of walking a 40-case switch. The handlers are the
// reference semantics of SV32, moved verbatim from the old step switch;
// each one fully updates the CPU state including the PC.

import (
	"simbench/internal/isa"
)

// opFn executes one decoded instruction whose fetch address was pc.
type opFn func(e *Interp, in isa.Inst, pc uint32)

// dispatch is indexed by the full uint8 opcode value, so the lookup
// compiles without a bounds check. Decode never produces opcodes
// >= isa.NumOps, but every slot holds a handler anyway: unallocated
// encodings raise ExcUndef, exactly as the old switch default did.
var dispatch [256]opFn

func init() {
	for i := range dispatch {
		dispatch[i] = opUndef
	}
	for op, fn := range map[isa.Op]opFn{
		isa.OpNOP:   opNOP,
		isa.OpADD:   opADD,
		isa.OpSUB:   opSUB,
		isa.OpAND:   opAND,
		isa.OpOR:    opOR,
		isa.OpXOR:   opXOR,
		isa.OpSHL:   opSHL,
		isa.OpSHR:   opSHR,
		isa.OpSRA:   opSRA,
		isa.OpMUL:   opMUL,
		isa.OpCMP:   opCMP,
		isa.OpMOV:   opMOV,
		isa.OpNOT:   opNOT,
		isa.OpADDI:  opADDI,
		isa.OpSUBI:  opSUBI,
		isa.OpANDI:  opANDI,
		isa.OpORI:   opORI,
		isa.OpXORI:  opXORI,
		isa.OpSHLI:  opSHLI,
		isa.OpSHRI:  opSHRI,
		isa.OpSRAI:  opSRAI,
		isa.OpMULI:  opMULI,
		isa.OpCMPI:  opCMPI,
		isa.OpMOVI:  opMOVI,
		isa.OpMOVT:  opMOVT,
		isa.OpLDW:   opLDW,
		isa.OpSTW:   opSTW,
		isa.OpLDB:   opLDB,
		isa.OpSTB:   opSTB,
		isa.OpLDX:   opLDX,
		isa.OpSTX:   opSTX,
		isa.OpLDT:   opLDT,
		isa.OpSTT:   opSTT,
		isa.OpB:     opB,
		isa.OpBL:    opBL,
		isa.OpBR:    opBR,
		isa.OpBLR:   opBLR,
		isa.OpSVC:   opSVC,
		isa.OpERET:  opERET,
		isa.OpMRS:   opMRS,
		isa.OpMSR:   opMSR,
		isa.OpCPRD:  opCPRD,
		isa.OpCPWR:  opCPWR,
		isa.OpTLBI:  opTLBI,
		isa.OpTLBIA: opTLBIA,
		isa.OpHALT:  opHALT,
	} {
		dispatch[op] = fn
	}
}

func opNOP(e *Interp, _ isa.Inst, pc uint32) {
	e.m.CPU.PC = pc + 4
}

func opADD(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] + cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opSUB(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] - cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opAND(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] & cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opOR(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] | cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opXOR(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] ^ cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opSHL(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] << (cpu.Regs[in.Rb] & 31)
	cpu.PC = pc + 4
}

func opSHR(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] >> (cpu.Regs[in.Rb] & 31)
	cpu.PC = pc + 4
}

func opSRA(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = uint32(int32(cpu.Regs[in.Ra]) >> (cpu.Regs[in.Rb] & 31))
	cpu.PC = pc + 4
}

func opMUL(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] * cpu.Regs[in.Rb]
	cpu.PC = pc + 4
}

func opCMP(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Flags = isa.Sub(cpu.Regs[in.Ra], cpu.Regs[in.Rb])
	cpu.PC = pc + 4
}

func opMOV(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra]
	cpu.PC = pc + 4
}

func opNOT(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = ^cpu.Regs[in.Ra]
	cpu.PC = pc + 4
}

func opADDI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] + uint32(in.Imm)
	cpu.PC = pc + 4
}

func opSUBI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] - uint32(in.Imm)
	cpu.PC = pc + 4
}

func opANDI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] & uint32(in.Imm)
	cpu.PC = pc + 4
}

func opORI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] | uint32(in.Imm)
	cpu.PC = pc + 4
}

func opXORI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] ^ uint32(in.Imm)
	cpu.PC = pc + 4
}

func opSHLI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] << (uint32(in.Imm) & 31)
	cpu.PC = pc + 4
}

func opSHRI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] >> (uint32(in.Imm) & 31)
	cpu.PC = pc + 4
}

func opSRAI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = uint32(int32(cpu.Regs[in.Ra]) >> (uint32(in.Imm) & 31))
	cpu.PC = pc + 4
}

func opMULI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Ra] * uint32(in.Imm)
	cpu.PC = pc + 4
}

func opCMPI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Flags = isa.Sub(cpu.Regs[in.Ra], uint32(in.Imm))
	cpu.PC = pc + 4
}

func opMOVI(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = uint32(in.Imm)
	cpu.PC = pc + 4
}

func opMOVT(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	cpu.Regs[in.Rd] = cpu.Regs[in.Rd]&0xFFFF | uint32(in.Imm)<<16
	cpu.PC = pc + 4
}

func opLDW(e *Interp, in isa.Inst, pc uint32) {
	e.load(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 4, false)
}

func opSTW(e *Interp, in isa.Inst, pc uint32) {
	e.store(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 4, false)
}

func opLDB(e *Interp, in isa.Inst, pc uint32) {
	e.load(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 1, false)
}

func opSTB(e *Interp, in isa.Inst, pc uint32) {
	e.store(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 1, false)
}

func opLDX(e *Interp, in isa.Inst, pc uint32) {
	e.loadExclusive(in, pc, e.m.CPU.Regs[in.Ra])
}

func opSTX(e *Interp, in isa.Inst, pc uint32) {
	e.storeExclusive(in, pc, e.m.CPU.Regs[in.Ra])
}

func opLDT(e *Interp, in isa.Inst, pc uint32) {
	if !e.m.NonPrivSupported() {
		e.undef(pc)
		return
	}
	e.st.NonPrivAccesses++
	e.load(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 4, true)
}

func opSTT(e *Interp, in isa.Inst, pc uint32) {
	if !e.m.NonPrivSupported() {
		e.undef(pc)
		return
	}
	e.st.NonPrivAccesses++
	e.store(in, pc, e.m.CPU.Regs[in.Ra]+uint32(in.Imm), 4, true)
}

func opB(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	next := pc + 4
	if in.Cond.Eval(cpu.Flags) {
		next = pc + 4 + uint32(in.Off)
		if e.profile {
			e.classifyBranch(pc, next, false)
		}
	}
	cpu.PC = next
}

func opBL(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	next := pc + 4
	if in.Cond.Eval(cpu.Flags) {
		cpu.Regs[isa.LR] = pc + 4
		next = pc + 4 + uint32(in.Off)
		if e.profile {
			e.classifyBranch(pc, next, false)
		}
	}
	cpu.PC = next
}

func opBR(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	next := cpu.Regs[in.Ra] &^ 3
	if e.profile {
		e.classifyBranch(pc, next, true)
	}
	cpu.PC = next
}

func opBLR(e *Interp, in isa.Inst, pc uint32) {
	cpu := &e.m.CPU
	next := cpu.Regs[in.Ra] &^ 3
	cpu.Regs[isa.LR] = pc + 4
	if e.profile {
		e.classifyBranch(pc, next, true)
	}
	cpu.PC = next
}

func opSVC(e *Interp, _ isa.Inst, pc uint32) {
	e.m.Enter(isa.ExcSyscall, pc+4)
	e.st.ExceptionsTaken++
}

func opERET(e *Interp, _ isa.Inst, pc uint32) {
	if !e.m.CPU.Kernel {
		e.undef(pc)
		return
	}
	e.m.ERET()
}

func opMRS(e *Interp, in isa.Inst, pc uint32) {
	v, ok := e.m.ReadCtrl(isa.CtrlReg(in.Imm))
	if !ok {
		e.undef(pc)
		return
	}
	e.m.CPU.Regs[in.Rd] = v
	e.m.CPU.PC = pc + 4
}

func opMSR(e *Interp, in isa.Inst, pc uint32) {
	if !e.m.WriteCtrl(isa.CtrlReg(in.Imm), e.m.CPU.Regs[in.Rd]) {
		e.undef(pc)
		return
	}
	// A PSR/MMU write may have changed mode or translation; the next
	// fetch re-resolves, so nothing more to do here.
	e.m.CPU.PC = pc + 4
}

func opCPRD(e *Interp, in isa.Inst, pc uint32) {
	v, ok := e.m.CoprocRead(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF)
	if !ok {
		e.undef(pc)
		return
	}
	e.st.CoprocAccesses++
	e.m.CPU.Regs[in.Rd] = v
	e.m.CPU.PC = pc + 4
}

func opCPWR(e *Interp, in isa.Inst, pc uint32) {
	if !e.m.CoprocWrite(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF, e.m.CPU.Regs[in.Rd]) {
		e.undef(pc)
		return
	}
	e.st.CoprocAccesses++
	e.m.CPU.PC = pc + 4
}

func opTLBI(e *Interp, in isa.Inst, pc uint32) {
	if !e.m.CPU.Kernel {
		e.undef(pc)
		return
	}
	e.st.TLBInvalidates++
	e.m.ShootdownPage(e.m.CPU.Regs[in.Ra])
	e.m.CPU.PC = pc + 4
}

func opTLBIA(e *Interp, _ isa.Inst, pc uint32) {
	if !e.m.CPU.Kernel {
		e.undef(pc)
		return
	}
	e.st.TLBFlushes++
	e.m.ShootdownAll()
	e.m.CPU.PC = pc + 4
}

func opHALT(e *Interp, _ isa.Inst, pc uint32) {
	if !e.m.CPU.Kernel {
		e.undef(pc)
		return
	}
	e.m.Halted = true
}

func opUndef(e *Interp, _ isa.Inst, pc uint32) {
	e.undef(pc)
}
