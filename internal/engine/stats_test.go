package engine

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAddCoversEveryField uses reflection to verify Stats.Add
// accumulates every numeric field — so adding a counter without
// updating Add is caught here.
func TestAddCoversEveryField(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	mk := func() Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() == reflect.Uint64 {
				f.SetUint(uint64(r.Intn(1000) + 1))
			}
		}
		return s
	}
	a, b := mk(), mk()
	sum := a
	sum.Add(b)

	va := reflect.ValueOf(a)
	vb := reflect.ValueOf(b)
	vs := reflect.ValueOf(sum)
	tp := reflect.TypeOf(a)
	for i := 0; i < tp.NumField(); i++ {
		if tp.Field(i).Type.Kind() != reflect.Uint64 {
			continue
		}
		want := va.Field(i).Uint() + vb.Field(i).Uint()
		if got := vs.Field(i).Uint(); got != want {
			t.Errorf("field %s: Add produced %d, want %d (field not accumulated?)",
				tp.Field(i).Name, got, want)
		}
	}
}

func TestErrLimitMessage(t *testing.T) {
	if ErrLimit.Error() == "" {
		t.Error("empty error")
	}
}
