package direct

import (
	"simbench/internal/mmu"
	"simbench/internal/platform"
)

// newBuilderHelper constructs the standard table builder used by the
// direct-engine tests.
func newBuilderHelper(p *platform.Platform) (*mmu.Builder, error) {
	return mmu.NewBuilder(p.M.Bus, 0x100000, 0x200000, false)
}
