// Package direct implements the direct-execution engine used in two
// modes, covering the last two columns of the paper's Fig. 4:
//
//   - Native mode models bare-metal hardware: translation through a
//     flat "hardware TLB" with O(1) flushes, exceptions vectoring
//     straight into the guest, devices at direct cost.
//   - Virt mode models hardware-assisted virtualization (QEMU-KVM):
//     identical on the compute and memory paths, but every sensitive
//     operation — device MMIO, coprocessor access, interrupt
//     injection, and (on the x86 profile) undefined instructions —
//     takes a VM exit through a trap-and-emulate layer with full vCPU
//     state save/restore.
//
// The shared fast path is what makes both modes far faster than any
// software-MMU engine, and the exit path is what reproduces the
// paper's finding that KVM matches native except on I/O, software
// interrupts and (x86) undefined instructions.
package direct

import (
	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/mmu"
)

// Mode selects native-hardware or virtualized behaviour.
type Mode uint8

// Modes.
const (
	ModeNative Mode = iota
	ModeVirt
)

func (m Mode) String() string {
	if m == ModeVirt {
		return "virt"
	}
	return "native"
}

const (
	vaPages      = 1 << 20 // flat table covers the whole 4 GiB VA space
	insnsPerPage = isa.PageSize / isa.WordBytes
	hwTLBSize    = 512 // modelled hardware TLB capacity (Cortex-A15 L2 TLB scale)

	// Flat-table entry flag bits (entries hold a page-aligned physical
	// base, leaving the low bits free).
	fWrite   uint32 = 1 << 0
	fUser    uint32 = 1 << 1
	fRAM     uint32 = 1 << 2
	flagMask        = fWrite | fUser | fRAM

	tickQuantum = 4096
)

type decodedPage struct {
	insts [insnsPerPage]isa.Inst
	stamp [insnsPerPage]uint32
	gen   uint32
}

// hart is the per-core slice of engine state: each simulated core has
// its own hardware TLB, decode cache and fetch fast path, mirroring
// the per-CPU structures of real hardware.
type hart struct {
	m *machine.Machine

	// Flat hardware translation table: entry valid iff ep matches the
	// current epoch; a full flush is a single epoch increment.
	off   []uint32
	ep    []uint32
	epoch uint32

	// Hardware TLBs have finite capacity: fills go through a FIFO ring
	// of hwTLBSize live entries, evicting the oldest — so workloads
	// whose footprint exceeds the TLB keep missing, as on silicon.
	ring     [hwTLBSize]uint32
	ringNext int

	dpages    map[uint32]*decodedPage
	codePages []bool

	// One-entry fetch fast path: hardware fetches from the current
	// page without any software structure in the way, so the common
	// case must be a single compare.
	lastFetchVP uint32 // vpage+1 of the last fetch (0 = invalid)
	lastFetchPA uint32 // its physical page base
	lastDP      *decodedPage
	lastKernel  bool // privilege level the fast path was validated for

	insns uint64 // retired instructions on this hart
}

// Direct is the direct-execution engine.
type Direct struct {
	mode  Mode
	m     *machine.Machine // current hart's machine
	h     *hart            // current hart
	harts []*hart
	st    engine.Stats

	// VM-exit machinery (virt mode); scratch shared across harts, as a
	// single hypervisor instance serves the whole VM.
	exitFrame struct {
		regs       [isa.NumRegs]uint32
		ctrl       [isa.NumCtrlRegs]uint32
		psr        uint32
		eptScratch [64]uint32
		shadow     [512]uint32 // second-stage translation shadow
	}
}

// New returns a direct-execution engine in the given mode.
func New(mode Mode) *Direct { return &Direct{mode: mode} }

// Name implements engine.Engine.
func (e *Direct) Name() string { return e.mode.String() }

// Mode returns the engine mode.
func (e *Direct) Mode() Mode { return e.mode }

// Features implements engine.Engine.
func (e *Direct) Features() engine.Features {
	if e.mode == ModeVirt {
		return engine.Features{
			ExecutionModel: "Direct",
			MemoryAccess:   "Direct",
			CodeGeneration: "None",
			CtrlFlowInter:  "Direct",
			CtrlFlowIntra:  "Direct",
			Interrupts:     "Via Emulation Layer",
			SyncExceptions: "Direct",
			UndefInsn:      "Hypercall",
		}
	}
	return engine.Features{
		ExecutionModel: "Direct",
		MemoryAccess:   "Direct",
		CodeGeneration: "None",
		CtrlFlowInter:  "Direct",
		CtrlFlowIntra:  "Direct",
		Interrupts:     "Direct",
		SyncExceptions: "Direct",
		UndefInsn:      "Direct",
	}
}

// InvalidatePage implements machine.TLBListener.
func (h *hart) InvalidatePage(va uint32) {
	h.ep[va>>isa.PageShift] = 0
	if va>>isa.PageShift+1 == h.lastFetchVP {
		h.lastFetchVP = 0
	}
}

// InvalidateAll implements machine.TLBListener. A hardware-wide flush
// is a single epoch bump.
func (h *hart) InvalidateAll() {
	h.epoch++
	if h.epoch == 0 { // epoch wrapped: really clear
		for i := range h.ep {
			h.ep[i] = 0
		}
		h.epoch = 1
	}
	h.lastFetchVP = 0
}

func (e *Direct) reset(harts []*machine.Machine) {
	e.st = engine.Stats{}
	e.harts = e.harts[:0]
	for _, m := range harts {
		h := &hart{m: m}
		h.off = make([]uint32, vaPages)
		h.ep = make([]uint32, vaPages)
		// The epoch starts above zero so no stale entry from the
		// zero-valued table can appear valid.
		h.InvalidateAll()
		h.dpages = make(map[uint32]*decodedPage)
		h.codePages = make([]bool, (len(m.Bus.RAM)+isa.PageSize-1)/isa.PageSize)
		m.ClearTLBListeners()
		m.AddTLBListener(h)
		e.harts = append(e.harts, h)
	}
	e.attach(e.harts[0])
}

// attach makes h the current hart for the step/translate fast paths.
func (e *Direct) attach(h *hart) {
	e.h = h
	e.m = h.m
}

// vmExit models a hardware VM exit: the world switch saves the
// complete vCPU state, the hypervisor classifies the exit reason,
// synchronises its second-stage translation shadow, dispatches into
// the emulation layer, and finally restores state and re-enters the
// guest. The work is real — full register-file and control-register
// copies plus two sweeps over a 512-entry shadow structure — putting
// one exit in the microsecond range, orders of magnitude above a
// directly executed instruction, exactly the gap the paper measures
// between QEMU-KVM and native hardware on I/O and interrupt
// benchmarks.
func (e *Direct) vmExit(reason uint32) {
	cpu := &e.m.CPU
	f := &e.exitFrame
	// World switch out: save the vCPU.
	f.regs = cpu.Regs
	f.ctrl = cpu.Ctrl
	f.psr = cpu.PSR()
	// Hypervisor: decode the exit reason and synchronise the
	// second-stage shadow (dirty scan + rebuild pass).
	acc := reason*2654435761 + f.psr
	for i := range f.shadow {
		acc = acc*1664525 + 1013904223
		f.shadow[i] ^= acc ^ f.regs[i&15]
	}
	dirty := uint32(0)
	for i := range f.shadow {
		if f.shadow[i]&7 == reason&7 {
			dirty++
		}
	}
	for i := range f.eptScratch {
		f.eptScratch[i] = f.shadow[(uint32(i)*67+dirty)&511] ^ f.ctrl[i%isa.NumCtrlRegs]
	}
	// World switch in: restore what the emulation layer may have
	// touched and re-enter.
	cpu.Regs = f.regs
	cpu.Ctrl = f.ctrl
	e.st.VMExits++
}

// translate resolves a data access through the flat hardware table.
func (e *Direct) translate(va uint32, write, asUser bool) (pa uint32, flags uint32, fault isa.FaultCode) {
	m := e.m
	h := e.h
	if !m.MMUEnabled() {
		flags = fWrite | fUser
		if m.Bus.IsRAM(va, 1) {
			flags |= fRAM
		}
		return va, flags, isa.FaultNone
	}
	vp := va >> isa.PageShift
	if h.ep[vp] != h.epoch {
		pte, levels, f := mmu.Walk(m.Bus, m.TTBR(), m.FormatB(), va)
		e.st.PageWalks++
		e.st.WalkLevels += uint64(levels)
		if f != isa.FaultNone {
			return 0, 0, f
		}
		ent := pte.PhysPage
		if pte.Writable {
			ent |= fWrite
		}
		if pte.User {
			ent |= fUser
		}
		if m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
			ent |= fRAM
		}
		h.off[vp] = ent
		h.ep[vp] = h.epoch
		// Evict the oldest live entry once the hardware TLB is full.
		// Ring slots hold vpage+1 so zero means empty.
		if old := h.ring[h.ringNext]; old != 0 && old-1 != vp && h.ep[old-1] == h.epoch {
			h.ep[old-1] = 0
		}
		h.ring[h.ringNext] = vp + 1
		h.ringNext = (h.ringNext + 1) % hwTLBSize
		e.st.TLBMisses++
	} else {
		e.st.TLBHits++
	}
	ent := h.off[vp]
	kernel := m.CPU.Kernel && !asUser
	if !kernel && ent&fUser == 0 {
		return 0, 0, isa.FaultPermission
	}
	if write && ent&fWrite == 0 {
		return 0, 0, isa.FaultPermission
	}
	return ent&^flagMask | va&isa.PageMask, ent & flagMask, isa.FaultNone
}

func (e *Direct) fetch(pc uint32) (pa uint32, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		if !m.Bus.IsRAM(pc, isa.WordBytes) {
			return 0, isa.FaultBus
		}
		return pc, isa.FaultNone
	}
	pa, flags, fault := e.translate(pc, false, false)
	if fault != isa.FaultNone {
		return 0, fault
	}
	if flags&fRAM == 0 {
		return 0, isa.FaultBus
	}
	return pa, isa.FaultNone
}

func (e *Direct) decode(pa uint32) isa.Inst {
	h := e.h
	page := pa >> isa.PageShift
	dp := h.dpages[page]
	if dp == nil {
		dp = &decodedPage{gen: 1}
		h.dpages[page] = dp
		h.codePages[page] = true
		e.st.PagesDecoded++
	}
	idx := (pa & isa.PageMask) >> 2
	if dp.stamp[idx] != dp.gen {
		dp.insts[idx] = isa.Decode(e.m.Bus.ReadWordRAM(pa))
		dp.stamp[idx] = dp.gen
	}
	return dp.insts[idx]
}

func (e *Direct) noteStore(pa uint32) {
	page := pa >> isa.PageShift
	if len(e.harts) > 1 {
		// RAM is shared: a store from any hart stales cached code on
		// every hart that decoded that page.
		for _, h := range e.harts {
			if int(page) < len(h.codePages) && h.codePages[page] {
				if dp := h.dpages[page]; dp != nil {
					dp.gen++
				}
				e.st.SMCInvalidations++
			}
		}
		return
	}
	h := e.h
	if int(page) < len(h.codePages) && h.codePages[page] {
		if dp := h.dpages[page]; dp != nil {
			dp.gen++
		}
		e.st.SMCInvalidations++
	}
}

// Run implements engine.Engine.
func (e *Direct) Run(harts []*machine.Machine, limit uint64) (engine.Stats, error) {
	e.reset(harts)
	var total uint64
	for {
		running := false
		for _, h := range e.harts {
			if h.m.Halted {
				continue
			}
			running = true
			if err := e.runSlice(h, &total, limit); err != nil {
				e.st.Instructions = total
				return e.st, err
			}
		}
		if !running {
			break
		}
	}
	e.st.Instructions = total
	return e.st, nil
}

// runSlice executes one scheduling quantum on h. The tick and limit
// checks key off the hart's own retired count, so at one core the
// instruction stream is bit-identical to the pre-SMP engine.
func (e *Direct) runSlice(h *hart, total *uint64, limit uint64) error {
	e.attach(h)
	m := h.m
	cpu := &m.CPU
	stop := h.insns + engine.SchedQuantum
	for !m.Halted && h.insns < stop {
		if *total >= limit {
			return engine.ErrLimit
		}
		if m.TickFn != nil && h.insns%tickQuantum == 0 && h.insns != 0 {
			m.TickFn(tickQuantum)
		}
		if m.IRQPending() {
			// Interrupt delivery: native hardware vectors directly;
			// a hypervisor must exit to inject the interrupt.
			if e.mode == ModeVirt {
				e.vmExit(5)
			}
			m.Enter(isa.ExcIRQ, cpu.PC)
			e.st.IRQsDelivered++
			e.st.ExceptionsTaken++
			continue
		}
		pc := cpu.PC
		var in isa.Inst
		if pc>>isa.PageShift+1 == h.lastFetchVP && cpu.Kernel == h.lastKernel {
			// Same-page fetch: the hardware fast path.
			dp := h.lastDP
			idx := (pc & isa.PageMask) >> 2
			if dp.stamp[idx] != dp.gen {
				dp.insts[idx] = isa.Decode(m.Bus.ReadWordRAM(h.lastFetchPA | pc&isa.PageMask))
				dp.stamp[idx] = dp.gen
			}
			in = dp.insts[idx]
		} else {
			pa, fault := e.fetch(pc)
			if fault != isa.FaultNone {
				// Guest-level fault: handled inside the guest in both
				// modes (hardware nested paging keeps KVM out of it).
				m.EnterMemFault(isa.ExcInstFault, fault, pc, false, pc)
				e.st.ExceptionsTaken++
				continue
			}
			in = e.decode(pa)
			h.lastFetchVP = pc>>isa.PageShift + 1
			h.lastFetchPA = pa &^ isa.PageMask
			h.lastDP = h.dpages[pa>>isa.PageShift]
			h.lastKernel = cpu.Kernel
		}
		h.insns++
		*total++
		e.step(in, pc)
	}
	return nil
}

func (e *Direct) undef(pc uint32) {
	// On the x86 profile, KVM handles undefined instructions via a
	// hypercall-style exit before reflecting them to the guest.
	if e.mode == ModeVirt && e.m.Profile == machine.ProfileX86 {
		e.vmExit(2)
	}
	e.m.Enter(isa.ExcUndef, pc+4)
	e.st.ExceptionsTaken++
}

func (e *Direct) step(in isa.Inst, pc uint32) {
	m := e.m
	cpu := &m.CPU
	r := &cpu.Regs
	next := pc + 4
	switch in.Op {
	case isa.OpNOP:
	case isa.OpADD:
		r[in.Rd] = r[in.Ra] + r[in.Rb]
	case isa.OpSUB:
		r[in.Rd] = r[in.Ra] - r[in.Rb]
	case isa.OpAND:
		r[in.Rd] = r[in.Ra] & r[in.Rb]
	case isa.OpOR:
		r[in.Rd] = r[in.Ra] | r[in.Rb]
	case isa.OpXOR:
		r[in.Rd] = r[in.Ra] ^ r[in.Rb]
	case isa.OpSHL:
		r[in.Rd] = r[in.Ra] << (r[in.Rb] & 31)
	case isa.OpSHR:
		r[in.Rd] = r[in.Ra] >> (r[in.Rb] & 31)
	case isa.OpSRA:
		r[in.Rd] = uint32(int32(r[in.Ra]) >> (r[in.Rb] & 31))
	case isa.OpMUL:
		r[in.Rd] = r[in.Ra] * r[in.Rb]
	case isa.OpCMP:
		cpu.Flags = isa.Sub(r[in.Ra], r[in.Rb])
	case isa.OpMOV:
		r[in.Rd] = r[in.Ra]
	case isa.OpNOT:
		r[in.Rd] = ^r[in.Ra]
	case isa.OpADDI:
		r[in.Rd] = r[in.Ra] + uint32(in.Imm)
	case isa.OpSUBI:
		r[in.Rd] = r[in.Ra] - uint32(in.Imm)
	case isa.OpANDI:
		r[in.Rd] = r[in.Ra] & uint32(in.Imm)
	case isa.OpORI:
		r[in.Rd] = r[in.Ra] | uint32(in.Imm)
	case isa.OpXORI:
		r[in.Rd] = r[in.Ra] ^ uint32(in.Imm)
	case isa.OpSHLI:
		r[in.Rd] = r[in.Ra] << (uint32(in.Imm) & 31)
	case isa.OpSHRI:
		r[in.Rd] = r[in.Ra] >> (uint32(in.Imm) & 31)
	case isa.OpSRAI:
		r[in.Rd] = uint32(int32(r[in.Ra]) >> (uint32(in.Imm) & 31))
	case isa.OpMULI:
		r[in.Rd] = r[in.Ra] * uint32(in.Imm)
	case isa.OpCMPI:
		cpu.Flags = isa.Sub(r[in.Ra], uint32(in.Imm))
	case isa.OpMOVI:
		r[in.Rd] = uint32(in.Imm)
	case isa.OpMOVT:
		r[in.Rd] = r[in.Rd]&0xFFFF | uint32(in.Imm)<<16
	case isa.OpLDW:
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 4, false)
		return
	case isa.OpSTW:
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 4, false)
		return
	case isa.OpLDB:
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 1, false)
		return
	case isa.OpSTB:
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 1, false)
		return
	case isa.OpLDX:
		e.loadExclusive(in, pc, r[in.Ra])
		return
	case isa.OpSTX:
		e.storeExclusive(in, pc, r[in.Ra])
		return
	case isa.OpLDT:
		if !m.NonPrivSupported() {
			e.undef(pc)
			return
		}
		e.st.NonPrivAccesses++
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 4, true)
		return
	case isa.OpSTT:
		if !m.NonPrivSupported() {
			e.undef(pc)
			return
		}
		e.st.NonPrivAccesses++
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 4, true)
		return
	case isa.OpB:
		if in.Cond.Eval(cpu.Flags) {
			next = pc + 4 + uint32(in.Off)
		}
	case isa.OpBL:
		if in.Cond.Eval(cpu.Flags) {
			r[isa.LR] = pc + 4
			next = pc + 4 + uint32(in.Off)
		}
	case isa.OpBR:
		next = r[in.Ra] &^ 3
	case isa.OpBLR:
		target := r[in.Ra] &^ 3
		r[isa.LR] = pc + 4
		next = target
	case isa.OpSVC:
		m.Enter(isa.ExcSyscall, pc+4)
		e.st.ExceptionsTaken++
		return
	case isa.OpERET:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		m.ERET()
		return
	case isa.OpMRS:
		v, ok := m.ReadCtrl(isa.CtrlReg(in.Imm))
		if !ok {
			e.undef(pc)
			return
		}
		r[in.Rd] = v
	case isa.OpMSR:
		if !m.WriteCtrl(isa.CtrlReg(in.Imm), r[in.Rd]) {
			e.undef(pc)
			return
		}
	case isa.OpCPRD:
		// Coprocessor access: direct on hardware, trapped under KVM.
		if e.mode == ModeVirt {
			e.vmExit(3)
		}
		v, ok := m.CoprocRead(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF)
		if !ok {
			e.undef(pc)
			return
		}
		e.st.CoprocAccesses++
		r[in.Rd] = v
	case isa.OpCPWR:
		if e.mode == ModeVirt {
			e.vmExit(3)
		}
		if !m.CoprocWrite(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF, r[in.Rd]) {
			e.undef(pc)
			return
		}
		e.st.CoprocAccesses++
	case isa.OpTLBI:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.st.TLBInvalidates++
		m.ShootdownPage(r[in.Ra])
	case isa.OpTLBIA:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.st.TLBFlushes++
		m.ShootdownAll()
	case isa.OpHALT:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		m.Halted = true
		return
	default:
		e.undef(pc)
		return
	}
	cpu.PC = next
}

func (e *Direct) load(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemReads++
	pa, flags, fault := e.translate(va, false, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	var v uint32
	if flags&fRAM != 0 {
		if size == 4 {
			v = m.Bus.ReadWordRAM(pa)
		} else {
			v = uint32(m.Bus.RAM[pa])
		}
	} else {
		// Device access: free on hardware, a trap-and-emulate round
		// trip under virtualization.
		if e.mode == ModeVirt {
			e.vmExit(4)
		}
		e.st.DeviceAccesses++
		var f isa.FaultCode
		v, f = m.Bus.ReadPhys(pa, size)
		if f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, false, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	m.CPU.Regs[in.Rd] = v
	m.CPU.PC = pc + 4
}

func (e *Direct) store(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemWrites++
	pa, flags, fault := e.translate(va, true, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	v := m.CPU.Regs[in.Rd]
	if flags&fRAM != 0 {
		if size == 4 {
			m.Bus.WriteWordRAM(pa, v)
		} else {
			m.Bus.RAM[pa] = byte(v)
		}
		if m.Mon.Armed() {
			m.Mon.NoteStore(pa)
		}
		e.noteStore(pa)
	} else {
		if e.mode == ModeVirt {
			e.vmExit(4)
		}
		e.st.DeviceAccesses++
		if f := m.Bus.WritePhys(pa, size, v); f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, true, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	m.CPU.PC = pc + 4
}

// loadExclusive implements LDX: a word load that arms this hart's
// reservation on the line. Exclusives are RAM-only.
func (e *Direct) loadExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.MemReads++
	e.st.ExclusiveOps++
	pa, flags, fault := e.translate(va, false, false)
	if fault == isa.FaultNone && flags&fRAM == 0 {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	m.Mon.Arm(m.HartID, pa)
	m.CPU.Regs[in.Rd] = m.Bus.ReadWordRAM(pa)
	m.CPU.PC = pc + 4
}

// storeExclusive implements STX: the store succeeds (rd=0) only if the
// hart's reservation survived; otherwise rd=1 and memory is untouched.
func (e *Direct) storeExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.ExclusiveOps++
	pa, flags, fault := e.translate(va, true, false)
	if fault == isa.FaultNone && flags&fRAM == 0 {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	if m.Mon.Exclusive(m.HartID, pa) {
		e.st.MemWrites++
		m.Bus.WriteWordRAM(pa, m.CPU.Regs[in.Rb])
		m.Mon.NoteStore(pa)
		e.noteStore(pa)
		m.CPU.Regs[in.Rd] = 0
	} else {
		e.st.ExclusiveFails++
		m.CPU.Regs[in.Rd] = 1
	}
	m.CPU.PC = pc + 4
}
