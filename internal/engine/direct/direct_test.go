package direct

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/device"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

func runProg(t *testing.T, mode Mode, profile machine.Profile, build func(a *asm.Assembler)) (*platform.Platform, *Direct) {
	t.Helper()
	p := platform.New(profile, 1<<20)
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	e := New(mode)
	if _, err := e.Run(p.Harts(), 5_000_000); err != nil {
		t.Fatalf("run: %v (pc=%#x)", err, p.M.CPU.PC)
	}
	return p, e
}

func TestNativeNoVMExits(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.LoadImm32(isa.R1, platform.SafeBase)
	a.LDW(isa.R2, isa.R1, device.SafeID) // device access: no exit natively
	a.HALT()
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	p.M.Reset()
	st, err := New(ModeNative).Run(p.Harts(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.VMExits != 0 {
		t.Errorf("native mode took %d VM exits", st.VMExits)
	}
	if st.DeviceAccesses != 1 {
		t.Errorf("device accesses %d", st.DeviceAccesses)
	}
}

func TestVirtExitsOnDeviceAccess(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	a.LoadImm32(isa.R1, platform.SafeBase)
	a.MOVI(isa.R3, 10)
	a.Label("l")
	a.LDW(isa.R2, isa.R1, device.SafeID)
	a.SUBI(isa.R3, isa.R3, 1)
	a.CMPI(isa.R3, 0)
	a.B(isa.CondNE, "l")
	a.HALT()
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	p.M.Reset()
	st, err := New(ModeVirt).Run(p.Harts(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.VMExits != 10 {
		t.Errorf("VM exits %d, want 10 (one per MMIO access)", st.VMExits)
	}
	if p.M.CPU.Regs[isa.R2] != device.SafeIDValue {
		t.Error("device value wrong after exit")
	}
}

func TestVirtExitsOnCoproc(t *testing.T) {
	_, e := runProg(t, ModeVirt, machine.ProfileARM, func(a *asm.Assembler) {
		a.CPRD(isa.R1, isa.CPSafe, device.CPRegDACR)
		a.HALT()
	})
	if e.st.VMExits != 1 {
		t.Errorf("VM exits %d", e.st.VMExits)
	}
}

func TestVirtUndefHypercallOnlyOnX86(t *testing.T) {
	build := func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.UD()
		a.HALT()
		a.Org(0x200)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "u")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("u")
		a.ERET()
	}
	_, eARM := runProg(t, ModeVirt, machine.ProfileARM, build)
	if eARM.st.VMExits != 0 {
		t.Errorf("arm undef exits = %d, want 0 (handled in guest)", eARM.st.VMExits)
	}
	_, eX86 := runProg(t, ModeVirt, machine.ProfileX86, build)
	if eX86.st.VMExits != 1 {
		t.Errorf("x86 undef exits = %d, want 1 (hypercall)", eX86.st.VMExits)
	}
}

func TestVirtExitsOnIRQInjection(t *testing.T) {
	_, e := runProg(t, ModeVirt, machine.ProfileARM, func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.LoadImm32(isa.R7, platform.ICBase)
		a.MOVI(isa.R0, 1)
		a.STW(isa.R0, isa.R7, device.ICEnable) // exit 1 (device)
		a.MOVI(isa.R0, 3)
		a.MSR(isa.CtrlPSR, isa.R0)
		a.MOVI(isa.R6, 0)
		a.STW(isa.R6, isa.R7, device.ICRaise) // exit 2 (device) -> IRQ -> exit 3 (inject)
		a.NOP()
		a.HALT()
		a.Org(0x200)
		a.Label("vectors")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.B(isa.CondAL, "irq")
		a.Label("irq")
		a.STW(isa.R6, isa.R7, device.ICClear) // exit 4 (device)
		a.ERET()
	})
	if e.st.VMExits != 4 {
		t.Errorf("VM exits = %d, want 4 (enable, raise, inject, clear)", e.st.VMExits)
	}
	if e.st.IRQsDelivered != 1 {
		t.Errorf("irqs %d", e.st.IRQsDelivered)
	}
}

func TestHardwareTLBCapacityEviction(t *testing.T) {
	// Touch hwTLBSize+64 pages, then re-touch the first: it must walk
	// again (FIFO eviction), proving the hardware TLB is finite.
	p := platform.New(machine.ProfileARM, 8<<20)
	a := asm.New()
	a.Label("_start")
	a.LoadImm32(isa.R1, 0x100000)
	a.MSR(isa.CtrlTTBR, isa.R1)
	a.MOVI(isa.R2, 1)
	a.MSR(isa.CtrlMMU, isa.R2)
	a.LoadImm32(isa.R3, 0x01000000)
	a.LoadImm32(isa.R4, hwTLBSize+64)
	a.Label("sweep")
	a.LDW(isa.R5, isa.R3, 0)
	a.LoadImm32(isa.R6, isa.PageSize)
	a.ADD(isa.R3, isa.R3, isa.R6)
	a.SUBI(isa.R4, isa.R4, 1)
	a.CMPI(isa.R4, 0)
	a.B(isa.CondNE, "sweep")
	a.HALT()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p.M.LoadProgram(prog)
	if err := bootIdentityAndRegion(p, hwTLBSize+64); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	e := New(ModeNative)
	st, err := e.Run(p.Harts(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.TLBMisses < hwTLBSize {
		t.Errorf("misses %d", st.TLBMisses)
	}
	// The first page must have been evicted by the sweep.
	vp := uint32(0x01000000) >> isa.PageShift
	if e.harts[0].ep[vp] == e.harts[0].epoch {
		t.Error("first page survived a full sweep; hardware TLB unbounded")
	}
}

func TestTLBIInvalidatesEntry(t *testing.T) {
	p := platform.New(machine.ProfileARM, 8<<20)
	a := asm.New()
	a.Label("_start")
	a.LoadImm32(isa.R1, 0x100000)
	a.MSR(isa.CtrlTTBR, isa.R1)
	a.MOVI(isa.R2, 1)
	a.MSR(isa.CtrlMMU, isa.R2)
	a.LoadImm32(isa.R3, 0x01000000)
	a.LDW(isa.R5, isa.R3, 0)
	a.TLBI(isa.R3)
	a.LDW(isa.R5, isa.R3, 0) // must walk again
	a.HALT()
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	if err := bootIdentityAndRegion(p, 4); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	st, err := New(ModeNative).Run(p.Harts(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Walks: code section fetch + data page twice (pre/post TLBI).
	if st.TLBInvalidates != 1 {
		t.Errorf("invalidates %d", st.TLBInvalidates)
	}
	if st.PageWalks < 3 {
		t.Errorf("walks %d, want >= 3 (re-walk after TLBI)", st.PageWalks)
	}
}

func TestModeNames(t *testing.T) {
	if New(ModeNative).Name() != "native" || New(ModeVirt).Name() != "virt" {
		t.Error("names")
	}
	if New(ModeVirt).Features().UndefInsn != "Hypercall" {
		t.Error("virt features")
	}
	if New(ModeNative).Features().Interrupts != "Direct" {
		t.Error("native features")
	}
}

// bootIdentityAndRegion builds identity + test-region page tables.
func bootIdentityAndRegion(p *platform.Platform, pages uint32) error {
	tb, err := newBuilderHelper(p)
	if err != nil {
		return err
	}
	if err := tb.MapSection(0, 0, true, false); err != nil {
		return err
	}
	return tb.MapRange(0x01000000, 0x200000, pages*isa.PageSize, true, false)
}
