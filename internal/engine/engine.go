// Package engine defines the execution-engine interface that all five
// simulation back-ends implement, together with the statistics they
// report. The engines are the objects of study in the SimBench
// methodology: each one models a row of the paper's Fig. 4 feature
// matrix (QEMU-DBT, SimIt-ARM, Gem5, QEMU-KVM, native hardware).
package engine

import (
	"errors"

	"simbench/internal/machine"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the guest halts — the harness's runaway-guest protection.
var ErrLimit = errors.New("engine: instruction limit exceeded")

// SchedQuantum is the round-robin hart-scheduling quantum, in retired
// instructions: an engine runs one hart for up to this many
// instructions before advancing to the next runnable hart. It equals
// the engines' timer-tick quantum, so on a single-core platform the
// quantum boundaries coincide with the tick checks the engines always
// performed and the executed instruction stream is bit-identical to
// the pre-SMP engines. The rotation order is fixed (hart 0, 1, ...),
// which is what keeps multi-core runs byte-reproducible.
const SchedQuantum = 4096

// Engine executes guest code on a set of harts until all halt.
type Engine interface {
	// Name is a short identifier (dbt, interp, detailed, virt, native).
	Name() string
	// Features describes how the engine implements each simulated
	// mechanism (the paper's Fig. 4 row).
	Features() Features
	// Run resets engine-internal caches, attaches to every hart, and
	// executes from the current CPU states until every hart halts,
	// returning aggregate statistics. Harts are scheduled round-robin
	// in SchedQuantum slices, deterministically. It returns ErrLimit
	// if more than limit instructions retire in total.
	Run(harts []*machine.Machine, limit uint64) (Stats, error)
}

// Features is a row of the paper's Fig. 4: how a platform implements
// each mechanism that SimBench exercises.
type Features struct {
	ExecutionModel string // DBT / Fast Interpreter / Interpreter / Direct
	MemoryAccess   string // page-cache structure
	CodeGeneration string // block-based / none
	CtrlFlowInter  string // inter-page control flow handling
	CtrlFlowIntra  string // intra-page control flow handling
	Interrupts     string // delivery granularity
	SyncExceptions string // synchronous exception mechanism
	UndefInsn      string // undefined-instruction handling
}

// Stats are execution statistics. Engines fill the fields that apply to
// their design; the density profiler fills the architectural-event
// counters used for the paper's Fig. 3.
type Stats struct {
	Instructions uint64 // retired guest instructions

	// Code generation / decode caching.
	BlocksTranslated uint64 // DBT: translation-cache fills
	InsnsTranslated  uint64 // DBT: instructions passed through the translator
	PagesDecoded     uint64 // interpreters: decode-cache page fills
	SMCInvalidations uint64 // stores that invalidated cached code

	// Control flow (architectural events, classified by the profiler;
	// the DBT engine also reports its mechanism counters below).
	BranchDirectIntra   uint64
	BranchDirectInter   uint64
	BranchIndirectIntra uint64
	BranchIndirectInter uint64

	// DBT mechanism counters.
	BlockExecutions   uint64
	ChainFollows      uint64 // chained block-to-block transitions
	CacheLookups      uint64 // full translation-cache lookups
	SuperblockFollows uint64 // translate-time-fused boundaries crossed in exec

	// Memory system.
	MemReads        uint64
	MemWrites       uint64
	TLBHits         uint64
	TLBMisses       uint64
	PageWalks       uint64
	WalkLevels      uint64
	NonPrivAccesses uint64
	TLBInvalidates  uint64 // TLBI instructions executed
	TLBFlushes      uint64 // TLBIA instructions executed

	// I/O.
	DeviceAccesses uint64 // MMIO loads+stores reaching a device
	CoprocAccesses uint64 // CPRD/CPWR executed

	// Exclusive accesses (LDX/STX, the SMP lock primitives).
	ExclusiveOps   uint64 // LDX+STX executed
	ExclusiveFails uint64 // STX that lost the reservation

	// Exceptions (also available per class from machine.ExcCount).
	ExceptionsTaken uint64
	IRQsDelivered   uint64

	// Virtualization.
	VMExits uint64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.BlocksTranslated += o.BlocksTranslated
	s.InsnsTranslated += o.InsnsTranslated
	s.PagesDecoded += o.PagesDecoded
	s.SMCInvalidations += o.SMCInvalidations
	s.BranchDirectIntra += o.BranchDirectIntra
	s.BranchDirectInter += o.BranchDirectInter
	s.BranchIndirectIntra += o.BranchIndirectIntra
	s.BranchIndirectInter += o.BranchIndirectInter
	s.BlockExecutions += o.BlockExecutions
	s.ChainFollows += o.ChainFollows
	s.CacheLookups += o.CacheLookups
	s.SuperblockFollows += o.SuperblockFollows
	s.MemReads += o.MemReads
	s.MemWrites += o.MemWrites
	s.TLBHits += o.TLBHits
	s.TLBMisses += o.TLBMisses
	s.PageWalks += o.PageWalks
	s.WalkLevels += o.WalkLevels
	s.NonPrivAccesses += o.NonPrivAccesses
	s.TLBInvalidates += o.TLBInvalidates
	s.TLBFlushes += o.TLBFlushes
	s.DeviceAccesses += o.DeviceAccesses
	s.CoprocAccesses += o.CoprocAccesses
	s.ExclusiveOps += o.ExclusiveOps
	s.ExclusiveFails += o.ExclusiveFails
	s.ExceptionsTaken += o.ExceptionsTaken
	s.IRQsDelivered += o.IRQsDelivered
	s.VMExits += o.VMExits
}
