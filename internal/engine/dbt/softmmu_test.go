package dbt

import (
	"testing"
)

func TestSoftTLBProbeInstall(t *testing.T) {
	tlb := newSoftTLB(4, false) // 16 entries
	if _, ok := tlb.probe(idxKernel, accRead, 0x5000); ok {
		t.Error("empty TLB hit")
	}
	tlb.install(idxKernel, accRead, 0x5000, softTLBEntry{pbase: 0x9000, isRAM: true})
	ent, ok := tlb.probe(idxKernel, accRead, 0x5123)
	if !ok || ent.pbase != 0x9000 || !ent.isRAM {
		t.Errorf("probe: %+v ok=%v", ent, ok)
	}
	// Entries are segregated by MMU index and access type.
	if _, ok := tlb.probe(idxUser, accRead, 0x5000); ok {
		t.Error("user index must not see kernel entry")
	}
	if _, ok := tlb.probe(idxKernel, accWrite, 0x5000); ok {
		t.Error("write type must not see read entry")
	}
}

func TestSoftTLBVictimPromotion(t *testing.T) {
	tlb := newSoftTLB(2, true) // 4-entry L1, alias-prone
	// Two pages aliasing the same L1 slot (vpage differs by 4).
	a := uint32(0x1000)
	b := uint32(0x5000)
	tlb.install(idxKernel, accRead, a, softTLBEntry{pbase: 0xA000})
	tlb.install(idxKernel, accRead, b, softTLBEntry{pbase: 0xB000}) // displaces a into victim
	if ent, ok := tlb.probe(idxKernel, accRead, a); !ok || ent.pbase != 0xA000 {
		t.Fatalf("victim probe failed: %+v ok=%v", ent, ok)
	}
	// After promotion, b sits in the victim and is still reachable.
	if ent, ok := tlb.probe(idxKernel, accRead, b); !ok || ent.pbase != 0xB000 {
		t.Fatalf("swapped entry lost: %+v ok=%v", ent, ok)
	}
}

func TestSoftTLBNoVictim(t *testing.T) {
	tlb := newSoftTLB(2, false)
	a, b := uint32(0x1000), uint32(0x5000)
	tlb.install(idxKernel, accRead, a, softTLBEntry{pbase: 0xA000})
	tlb.install(idxKernel, accRead, b, softTLBEntry{pbase: 0xB000})
	if _, ok := tlb.probe(idxKernel, accRead, a); ok {
		t.Error("without a victim cache the displaced entry must be gone")
	}
}

func TestSoftTLBFlushPage(t *testing.T) {
	tlb := newSoftTLB(4, true)
	tlb.install(idxKernel, accRead, 0x1000, softTLBEntry{pbase: 0xA000})
	tlb.install(idxUser, accWrite, 0x1000, softTLBEntry{pbase: 0xA000})
	tlb.install(idxKernel, accRead, 0x2000, softTLBEntry{pbase: 0xB000})
	tlb.flushPage(0x1000)
	if _, ok := tlb.probe(idxKernel, accRead, 0x1000); ok {
		t.Error("kernel read entry survived page flush")
	}
	if _, ok := tlb.probe(idxUser, accWrite, 0x1000); ok {
		t.Error("user write entry survived page flush")
	}
	if _, ok := tlb.probe(idxKernel, accRead, 0x2000); !ok {
		t.Error("unrelated entry flushed")
	}
	tlb.flushAll()
	if _, ok := tlb.probe(idxKernel, accRead, 0x2000); ok {
		t.Error("entry survived full flush")
	}
}

func TestSoftTLBVictimFlushPage(t *testing.T) {
	tlb := newSoftTLB(2, true)
	a, b := uint32(0x1000), uint32(0x5000)
	tlb.install(idxKernel, accRead, a, softTLBEntry{pbase: 0xA000})
	tlb.install(idxKernel, accRead, b, softTLBEntry{pbase: 0xB000}) // a goes to victim
	tlb.flushPage(a)
	if _, ok := tlb.probe(idxKernel, accRead, a); ok {
		t.Error("victim entry survived page flush")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.BlockCap <= 0 || c.TLBBits <= 0 || c.LookupDepth <= 0 {
		t.Errorf("withDefaults left zero fields: %+v", c)
	}
	if ChainNone.String() != "none" || ChainDirect.String() != "direct" || ChainChecked.String() != "checked" {
		t.Error("chain policy names")
	}
	e := NewDefault()
	if e.Name() != "dbt" {
		t.Error("name")
	}
	if e.String() == "" {
		t.Error("string")
	}
	if e.Config().BlockCap != 64 {
		t.Error("config accessor")
	}
}
