package dbt

import (
	"simbench/internal/isa"
)

// translate builds a block starting at guest virtual address va, whose
// code lives at physical address pa. Blocks are straight-line: they end
// at the first terminal instruction, at a page boundary, or at the
// block cap. Lowering is followed by the configured optimisation passes
// and host-code emission, so translation cost scales with both block
// length and OptLevel — the trade-off the Code Generation benchmarks
// measure.
//
// With Config.Superblock > 1 the translator keeps going past two kinds
// of basic-block exit instead of returning to the dispatcher: an
// unconditional same-page direct branch (replaced by a uChainFollow
// boundary uop and followed, forward or unrolling backward to a
// target at or after va), and the fall-through when a segment fills
// BlockCap. Each followed exit consumes one segment of the Superblock
// budget; superblockCap bounds the total instructions per unit. The
// unit never leaves its physical page, so one page generation still
// covers all of it.
func (e *Engine) translate(va, pa uint32) *block {
	// Reset the translation context, as TCG does before every block:
	// temp pools, label tables and the op buffer all start clean.
	for i := range e.tcgCtx {
		e.tcgCtx[i] = 0
	}
	page := pa >> isa.PageShift
	b := &block{va: va, physPage: page, gen: e.h.pageGen[page]}
	segs, budget := e.cfg.superblockCap()
	cur, curPA := va, pa
	for seg := 0; ; seg++ {
		segStart := b.insns
		terminal := false
		for int(b.insns-segStart) < e.cfg.BlockCap && int(b.insns) < budget {
			if curPA>>isa.PageShift != page {
				break // never cross a page: invalidation is page-granular
			}
			in := isa.Decode(e.m.Bus.ReadWordRAM(curPA))
			terminal = e.lower(b, in, cur-b.va)
			b.insns++
			b.uops[len(b.uops)-1].retire = b.insns
			cur += isa.WordBytes
			curPA += isa.WordBytes
			if terminal {
				break
			}
		}
		if seg+1 >= segs || int(b.insns) >= budget {
			break
		}
		if terminal {
			// Follow an unconditional direct branch that stays on the
			// page at a non-negative offset from va (pcOff is relative
			// to va; a target below cur unrolls already-translated code).
			last := &b.uops[len(b.uops)-1]
			t := last.imm
			if last.kind != uBranch || t>>isa.PageShift != va>>isa.PageShift || t < va {
				break
			}
			*last = uop{kind: uChainFollow, imm: t, pcOff: last.pcOff, retire: last.retire}
			cur = t
			curPA = page<<isa.PageShift | t&isa.PageMask
			continue
		}
		// Fall-through: only the block-cap case is followable — a page
		// crossing or an exhausted budget ends the unit.
		if int(b.insns-segStart) < e.cfg.BlockCap || curPA>>isa.PageShift != page {
			break
		}
		b.uops = append(b.uops, uop{
			kind: uChainFollow, imm: cur, pcOff: uint16(cur - va), retire: b.insns,
		})
	}
	b.end = cur
	b.fallVA = b.end
	if e.cfg.OptLevel >= 1 {
		e.foldConstants(b)
	}
	if e.cfg.OptLevel >= 2 {
		e.fuseCompareBranch(b)
		e.analyseLiveness(b)
	}
	e.emit(b)

	e.st.BlocksTranslated++
	e.st.InsnsTranslated += uint64(b.insns)
	if int(page) < len(e.h.codePages) {
		e.h.codePages[page] = true
	}
	e.h.blocks[pa] = b
	return b
}

// lower appends the uop(s) for one guest instruction and reports
// whether it terminates the block.
func (e *Engine) lower(b *block, in isa.Inst, off uint32) bool {
	pcOff := uint16(off)
	insnVA := b.va + off
	push := func(u uop) {
		u.pcOff = pcOff
		b.uops = append(b.uops, u)
	}
	alu := func(k uopKind) {
		push(uop{kind: k, rd: uint8(in.Rd), ra: uint8(in.Ra), rb: uint8(in.Rb)})
	}
	alui := func(k uopKind) {
		push(uop{kind: k, rd: uint8(in.Rd), ra: uint8(in.Ra), imm: uint32(in.Imm)})
	}

	switch in.Op {
	case isa.OpNOP:
		push(uop{kind: uNop})
	case isa.OpADD:
		alu(uAdd)
	case isa.OpSUB:
		alu(uSub)
	case isa.OpAND:
		alu(uAnd)
	case isa.OpOR:
		alu(uOr)
	case isa.OpXOR:
		alu(uXor)
	case isa.OpSHL:
		alu(uShl)
	case isa.OpSHR:
		alu(uShr)
	case isa.OpSRA:
		alu(uSra)
	case isa.OpMUL:
		alu(uMul)
	case isa.OpCMP:
		alu(uCmp)
	case isa.OpMOV:
		alu(uMov)
	case isa.OpNOT:
		alu(uNot)
	case isa.OpADDI:
		alui(uAddI)
	case isa.OpSUBI:
		alui(uSubI)
	case isa.OpANDI:
		alui(uAndI)
	case isa.OpORI:
		alui(uOrI)
	case isa.OpXORI:
		alui(uXorI)
	case isa.OpSHLI:
		alui(uShlI)
	case isa.OpSHRI:
		alui(uShrI)
	case isa.OpSRAI:
		alui(uSraI)
	case isa.OpMULI:
		alui(uMulI)
	case isa.OpCMPI:
		alui(uCmpI)
	case isa.OpMOVI:
		// Lowered as a 32-bit move so the folder can widen it.
		push(uop{kind: uMovImm32, rd: uint8(in.Rd), imm: uint32(in.Imm)})
	case isa.OpMOVT:
		push(uop{kind: uMovT, rd: uint8(in.Rd), imm: uint32(in.Imm)})
	case isa.OpLDW:
		alui(uLoadW)
	case isa.OpSTW:
		alui(uStoreW)
	case isa.OpLDB:
		alui(uLoadB)
	case isa.OpSTB:
		alui(uStoreB)
	case isa.OpLDX:
		push(uop{kind: uLoadX, rd: uint8(in.Rd), ra: uint8(in.Ra)})
	case isa.OpSTX:
		push(uop{kind: uStoreX, rd: uint8(in.Rd), ra: uint8(in.Ra), rb: uint8(in.Rb)})
	case isa.OpLDT:
		if !e.m.NonPrivSupported() {
			push(uop{kind: uUndef})
			return true
		}
		alui(uLoadT)
	case isa.OpSTT:
		if !e.m.NonPrivSupported() {
			push(uop{kind: uUndef})
			return true
		}
		alui(uStoreT)
	case isa.OpB:
		target := insnVA + 4 + uint32(in.Off)
		switch in.Cond {
		case isa.CondNV:
			push(uop{kind: uNop})
			return false
		case isa.CondAL:
			b.takenVA = target
			push(uop{kind: uBranch, imm: target})
		default:
			b.takenVA = target
			push(uop{kind: uBranchCond, rd: uint8(in.Cond), imm: target})
		}
		return true
	case isa.OpBL:
		target := insnVA + 4 + uint32(in.Off)
		ret := insnVA + 4
		switch in.Cond {
		case isa.CondNV:
			push(uop{kind: uNop})
			return false
		case isa.CondAL:
			b.takenVA = target
			push(uop{kind: uCall, imm: target, aux: ret})
		default:
			b.takenVA = target
			push(uop{kind: uCallCond, rd: uint8(in.Cond), imm: target, aux: ret})
		}
		return true
	case isa.OpBR:
		push(uop{kind: uBranchReg, ra: uint8(in.Ra)})
		return true
	case isa.OpBLR:
		push(uop{kind: uCallReg, ra: uint8(in.Ra), aux: insnVA + 4})
		return true
	case isa.OpSVC:
		push(uop{kind: uSvc, aux: insnVA + 4})
		return true
	case isa.OpERET:
		push(uop{kind: uEret})
		return true
	case isa.OpMRS:
		push(uop{kind: uMrs, rd: uint8(in.Rd), imm: uint32(in.Imm)})
	case isa.OpMSR:
		push(uop{kind: uMsr, rd: uint8(in.Rd), imm: uint32(in.Imm)})
		return true // may change mode or translation state
	case isa.OpCPRD:
		push(uop{kind: uCprd, rd: uint8(in.Rd), imm: uint32(in.Imm)})
	case isa.OpCPWR:
		push(uop{kind: uCpwr, rd: uint8(in.Rd), imm: uint32(in.Imm)})
	case isa.OpTLBI:
		push(uop{kind: uTlbi, ra: uint8(in.Ra)})
		return true
	case isa.OpTLBIA:
		push(uop{kind: uTlbiAll})
		return true
	case isa.OpHALT:
		push(uop{kind: uHalt})
		return true
	default:
		push(uop{kind: uUndef})
		return true
	}
	return false
}

// foldConstants merges adjacent MOVI/MOVT pairs targeting the same
// register into a single 32-bit immediate move and drops NOPs. Retire
// counts are cumulative, so dropping or merging uops keeps instruction
// accounting exact.
func (e *Engine) foldConstants(b *block) {
	out := b.uops[:0]
	for i := 0; i < len(b.uops); i++ {
		u := b.uops[i]
		if u.kind == uNop && len(b.uops) > 1 {
			continue
		}
		if u.kind == uMovImm32 && i+1 < len(b.uops) {
			n := b.uops[i+1]
			if n.kind == uMovT && n.rd == u.rd {
				u.imm = u.imm&0xFFFF | n.imm<<16
				u.retire = n.retire
				out = append(out, u)
				i++
				continue
			}
		}
		out = append(out, u)
	}
	b.uops = out
}

// fuseCompareBranch turns a CMPI immediately followed by a dependent
// conditional branch into one fused uop (flags are still produced, so
// fusion is always sound).
func (e *Engine) fuseCompareBranch(b *block) {
	n := len(b.uops)
	if n < 2 {
		return
	}
	u, br := b.uops[n-2], b.uops[n-1]
	if u.kind == uCmpI && br.kind == uBranchCond {
		fused := uop{
			kind:   uCmpBranchI,
			rd:     br.rd, // condition
			ra:     u.ra,
			imm:    br.imm, // target VA
			aux:    u.imm,  // compare immediate
			pcOff:  u.pcOff,
			retire: br.retire,
		}
		b.uops = append(b.uops[:n-2], fused)
	}
}

// regReads returns the registers a uop reads, as a bitmask.
func regReads(u *uop) uint32 {
	switch u.kind {
	case uAdd, uSub, uAnd, uOr, uXor, uShl, uShr, uSra, uMul, uCmp:
		return 1<<u.ra | 1<<u.rb
	case uMov, uNot, uAddI, uSubI, uAndI, uOrI, uXorI, uShlI, uShrI,
		uSraI, uMulI, uCmpI, uCmpBranchI, uLoadW, uLoadB, uLoadT,
		uLoadX, uBranchReg, uCallReg, uTlbi:
		return 1 << u.ra
	case uStoreW, uStoreB, uStoreT:
		return 1<<u.ra | 1<<u.rd
	case uStoreX:
		return 1<<u.ra | 1<<u.rb
	case uMovT:
		return 1 << u.rd
	case uMsr, uCpwr:
		return 1 << u.rd
	}
	return 0
}

// analyseLiveness performs a backward live-register analysis over the
// block — the kind of per-block work a stronger optimiser does. The
// result is stored on the block (it feeds the emitter's register
// allocation), making the pass genuine translation-time work.
func (e *Engine) analyseLiveness(b *block) {
	live := uint32(0xFFFF) // everything live at block exit
	for i := len(b.uops) - 1; i >= 0; i-- {
		u := &b.uops[i]
		switch u.kind {
		case uAdd, uSub, uAnd, uOr, uXor, uShl, uShr, uSra, uMul,
			uMov, uNot, uAddI, uSubI, uAndI, uOrI, uXorI, uShlI,
			uShrI, uSraI, uMulI, uMovImm32, uLoadW, uLoadB, uLoadT,
			uLoadX, uStoreX, uMrs, uCprd:
			live &^= 1 << u.rd
		}
		live |= regReads(u)
	}
	b.liveIn = live
}

// emit encodes each uop into pseudo host code — a register-allocation
// pass followed by three emitted words per uop plus a relocation hash,
// and a final "instruction cache maintenance" sweep — modelling the
// back-end cost that every retranslation pays.
func (e *Engine) emit(b *block) {
	// Linear-scan register allocation over the host register file.
	var hostReg [16]uint8
	next := uint8(0)
	assign := func(v uint8) uint8 {
		if hostReg[v&15] == 0 {
			next++
			hostReg[v&15] = next
			e.tcgCtx[v&15] = uint64(next)
		}
		return hostReg[v&15]
	}
	host := make([]uint32, 0, 3*len(b.uops)+1)
	hash := b.va
	for i := range b.uops {
		u := &b.uops[i]
		hrd := assign(u.rd)
		hra := assign(u.ra)
		hrb := assign(u.rb)
		w0 := uint32(u.kind)<<24 | uint32(hrd)<<16 | uint32(hra)<<8 | uint32(hrb)
		host = append(host, w0, u.imm, u.aux)
		hash = hash*16777619 ^ w0 ^ u.imm
	}
	host = append(host, hash)
	// Constant-pool and relocation-list construction: one more sweep
	// over the emitted stream collecting immediate slots, then a fixup
	// pass rewriting each slot against the final code-buffer base.
	e.relocBuf = e.relocBuf[:0]
	for i := 0; i < len(host); i += 3 {
		if host[i]&0xFF0000 != 0 { // ops with a destination field
			e.relocBuf = append(e.relocBuf, uint32(i))
			hash ^= host[i] * 2654435761
		}
	}
	for _, idx := range e.relocBuf {
		host[idx] = host[idx]<<1>>1 | host[idx]&0x80000000 // normalise slot
		hash += host[idx] + idx
	}
	// Prologue/epilogue emission and TB-descriptor setup: the fixed
	// per-block cost every translation pays regardless of length.
	for i := 0; i < 64; i++ {
		e.tcgCtx[i+128] = uint64(hash) + uint64(i)*0x9E3779B9
		hash = hash*31 + uint32(e.tcgCtx[i+128]>>16)
	}
	// Post-emission pass: relocation fixups + icache maintenance.
	for i := range host {
		hash = hash<<5 ^ hash>>3 ^ host[i]
	}
	e.tcgCtx[127] = uint64(hash)
	b.hostCode = host
}
