// Package dbt implements the dynamic-binary-translation engine, the
// QEMU-DBT analogue of the paper's Fig. 4: guest code is translated
// block-by-block into a micro-op IR, cached in a physically indexed
// translation cache, looked up through a virtually indexed jump cache,
// and chained to same-page direct successors. Memory runs through a
// multi-level softMMU page cache, synchronous exceptions take side
// exits, and interrupts are recognised at block boundaries.
//
// The engine is parameterised by a Config whose fields switch real code
// paths; the internal/versions package uses this to model twenty QEMU
// releases for the paper's version-sweep experiments.
package dbt

import (
	"fmt"

	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
)

const (
	jmpBits     = 12 // 4096-entry jump caches
	jmpSize     = 1 << jmpBits
	tickQuantum = 4096
)

// Engine is the DBT engine. Create one with New.
type Engine struct {
	cfg   Config
	m     *machine.Machine // current hart's machine
	h     *hart            // current hart
	harts []*hart
	st    engine.Stats

	walkScratch  uint32
	checkScratch uint32
	syncBuf      []uint32
	helperBuf    []uint32
	stateWords   [64]uint32
	tcgCtx       [256]uint64 // translation context (temp pools, op and label buffers), reset per block
	relocBuf     []uint32    // relocation worklist, reused across translations
}

// hart is the per-core slice of engine state: translation cache, jump
// caches, chain epochs and softMMU mirror QEMU's per-vCPU structures,
// so each simulated core translates and chains independently.
type hart struct {
	e *Engine
	m *machine.Machine

	blocks     map[uint32]*block // physical start address -> block
	jmpCache   [jmpSize]*block   // virtually indexed, first probe
	jmpCache2  [jmpSize]*block   // second probe layer (LookupDepth >= 2)
	jmpEpoch   [jmpSize]uint32   // per-slot flush epochs (LazyFlush)
	jmpEpoch2  [jmpSize]uint32
	flushEpoch uint32   // current jump-cache flush epoch
	pageGen    []uint32 // per physical page generation (SMC)
	codePages  []bool   // physical pages containing translated code
	chainEpoch uint32   // bumped on TLB maintenance; breaks chains

	dtlb *softTLB
	itlb *softTLB

	insns    uint64 // retired instructions on this hart
	lastTick uint64 // retired count at the last timer tick

	// Dispatch state carried across scheduling slices, so rotation at
	// a block boundary resumes exactly where the hart left off.
	b  *block
	ok bool
}

// New returns a DBT engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// NewDefault returns a DBT engine with the modern default configuration.
func NewDefault() *Engine { return New(DefaultConfig()) }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "dbt" }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Features implements engine.Engine (the paper's Fig. 4 QEMU-DBT row).
func (e *Engine) Features() engine.Features {
	return engine.Features{
		ExecutionModel: "DBT",
		MemoryAccess:   "Multi-Level Page Cache",
		CodeGeneration: "Block-Based",
		CtrlFlowInter:  "Block Cache",
		CtrlFlowIntra:  "Block Chaining",
		Interrupts:     "Block Boundaries",
		SyncExceptions: "Side Exit",
		UndefInsn:      "Translated",
	}
}

// InvalidatePage implements machine.TLBListener.
func (h *hart) InvalidatePage(va uint32) {
	h.dtlb.flushPage(va)
	h.itlb.flushPage(va)
	hs := jmpHash(va)
	if b := h.jmpCache[hs]; b != nil && b.va == va {
		h.jmpCache[hs] = nil
	}
	if b := h.jmpCache2[jmpHash2(va)]; b != nil && b.va == va {
		h.jmpCache2[jmpHash2(va)] = nil
	}
	// A mapping change can redirect a chained target, so chains must be
	// re-established through full lookups.
	h.chainEpoch++
}

// InvalidateAll implements machine.TLBListener. The jump caches are
// either zeroed eagerly or, with LazyFlush, invalidated by an epoch
// bump with per-slot revalidation at probe time.
func (h *hart) InvalidateAll() {
	if h.dtlb == nil {
		return
	}
	h.dtlb.flushAll()
	h.itlb.flushAll()
	if h.e.cfg.LazyFlush {
		h.flushEpoch++
	} else {
		h.jmpCache = [jmpSize]*block{}
		h.jmpCache2 = [jmpSize]*block{}
	}
	h.chainEpoch++
}

func jmpHash(va uint32) uint32  { return (va >> 2) & (jmpSize - 1) }
func jmpHash2(va uint32) uint32 { return (va * 2654435761) >> (32 - jmpBits) }

func (e *Engine) reset(harts []*machine.Machine) {
	e.st = engine.Stats{}
	e.syncBuf = make([]uint32, e.cfg.ExcSyncWords)
	e.helperBuf = make([]uint32, e.cfg.HelperSaveWords)
	e.harts = e.harts[:0]
	for _, m := range harts {
		h := &hart{e: e, m: m}
		h.blocks = make(map[uint32]*block)
		pages := (len(m.Bus.RAM) + isa.PageSize - 1) / isa.PageSize
		h.pageGen = make([]uint32, pages)
		h.codePages = make([]bool, pages)
		h.dtlb = newSoftTLB(e.cfg.TLBBits, e.cfg.VictimTLB)
		h.itlb = newSoftTLB(e.cfg.TLBBits, false)
		m.ClearTLBListeners()
		m.AddTLBListener(h)
		e.harts = append(e.harts, h)
	}
	e.attach(e.harts[0])
}

// attach makes h the current hart for the dispatch and memory paths.
func (e *Engine) attach(h *hart) {
	e.h = h
	e.m = h.m
}

// valid reports whether a block's translation is still current.
func (e *Engine) valid(b *block) bool {
	return b.gen == e.h.pageGen[b.physPage]
}

// lookup finds or translates the block at va. ok is false if the fetch
// faulted, in which case the exception has been entered and the caller
// should re-dispatch from the new PC.
//
// Every lookup — even a jump-cache hit — first recomputes the CPU
// state tuple and validates the candidate against it (QEMU's
// cpu_get_tb_cpu_state + tb field comparison). This is the per-
// transition cost that block chaining exists to avoid.
func (e *Engine) lookup(va uint32) (b *block, ok bool) {
	ht := e.h
	cpu := &e.m.CPU
	flags := uint32(0)
	if cpu.Kernel {
		flags = 1
	}
	if cpu.IRQOn {
		flags |= 2
	}
	flags |= e.m.CPU.Ctrl[isa.CtrlMMU] << 2
	stateHash := (va >> 2) * 2654435761
	stateHash ^= flags * 0x9E3779B9
	stateHash ^= ht.chainEpoch

	validate := func(b *block) bool {
		// Field-by-field comparison, as the translation-cache probe
		// performs: pc, page generation, flags compatibility.
		if b.va != va || !e.valid(b) {
			return false
		}
		e.checkScratch ^= stateHash ^ b.end ^ uint32(b.insns)<<16 ^ b.liveIn
		if e.cfg.LookupDepth >= 3 {
			// Deep validation: cross-check a window of the emitted
			// host code against the descriptor.
			sum := uint32(0)
			hc := b.hostCode
			for i := 0; i < 2 && i < len(hc); i++ {
				sum = sum<<3 ^ hc[i]
			}
			e.checkScratch ^= sum
		}
		return true
	}

	hs := jmpHash(va)
	if b := ht.jmpCache[hs]; b != nil && ht.jmpEpoch[hs] == ht.flushEpoch && validate(b) {
		return b, true
	}
	var h2 uint32
	if e.cfg.LookupDepth >= 2 {
		h2 = jmpHash2(va)
		if b := ht.jmpCache2[h2]; b != nil && ht.jmpEpoch2[h2] == ht.flushEpoch && validate(b) {
			ht.jmpCache[hs] = b // promote
			ht.jmpEpoch[hs] = ht.flushEpoch
			return b, true
		}
	}
	e.st.CacheLookups++
	pa, fault := e.codeAccess(va)
	if fault != isa.FaultNone {
		e.enterExc(isa.ExcInstFault, va)
		e.m.EnterMemFault(isa.ExcInstFault, fault, va, false, va)
		return nil, false
	}
	b = ht.blocks[pa]
	if b == nil || !e.valid(b) || b.va != va {
		b = e.translate(va, pa)
	}
	ht.jmpCache[hs] = b
	ht.jmpEpoch[hs] = ht.flushEpoch
	if e.cfg.LookupDepth >= 2 {
		ht.jmpCache2[h2] = b
		ht.jmpEpoch2[h2] = ht.flushEpoch
	}
	return b, true
}

// enterExc performs the per-exception bookkeeping all exception classes
// share: serialising ExcSyncWords of auxiliary state. (Machine.Enter is
// called separately because fault entries carry extra arguments.)
func (e *Engine) enterExc(exc isa.Exc, _ uint32) {
	buf := e.syncBuf
	for i := range buf {
		buf[i] = e.stateWords[i&63] + uint32(i)
		e.stateWords[i&63] = buf[i] ^ uint32(exc)
	}
	e.st.ExceptionsTaken++
}

// restoreState models QEMU's cpu_restore_state: recover precise guest
// state at a faulting instruction by re-running the translator over
// the block, replaying the emitted stream to locate the faulting
// micro-op, and resynchronising the softMMU view. The data-fault fast
// path (v2.5.0-rc0) skips all of this.
func (e *Engine) restoreState(b *block) {
	pa := b.physPage | (b.va & isa.PageMask)
	saved := e.st // retranslation is recovery work, not new code generation
	nb := e.translate(b.va, pa)
	e.st.BlocksTranslated = saved.BlocksTranslated
	e.st.InsnsTranslated = saved.InsnsTranslated
	// Replay the host stream against the retranslated block to map the
	// host fault point back to a guest instruction.
	acc := uint32(0)
	for pass := 0; pass < 4; pass++ {
		for i := range nb.hostCode {
			acc = acc*33 + nb.hostCode[i] + uint32(pass)
		}
	}
	// Resynchronise the softMMU state the faulting access touched.
	for i := range e.stateWords {
		e.stateWords[i] ^= acc + uint32(i)
		acc = acc<<7 | acc>>25
	}
	e.checkScratch ^= acc
}

// helperCall brackets a device or coprocessor access with CPU-state
// save/restore, the per-helper overhead that grew across QEMU versions.
func (e *Engine) helperCall() {
	buf := e.helperBuf
	for i := range buf {
		buf[i] = e.stateWords[i&63]
	}
	for i := range buf {
		e.stateWords[i&63] ^= buf[i] >> 1
	}
}

// noteStore detects stores into pages holding translated code and
// invalidates them by bumping the page generation. Invalidation is
// page-granular and takes effect at the next block entry: a store that
// patches an instruction *later in the currently executing block*
// completes the block on the stale translation, exactly like QEMU
// without tb_invalidate-time precise restart. All SimBench code-
// generation patterns (patch, then branch/call into the patched code)
// re-enter through the dispatcher and observe the invalidation.
func (e *Engine) noteStore(pa uint32) {
	page := pa >> isa.PageShift
	if len(e.harts) > 1 {
		// RAM is shared: a store from any hart invalidates translated
		// code on every hart that holds blocks from that page.
		for _, h := range e.harts {
			if int(page) < len(h.codePages) && h.codePages[page] {
				h.pageGen[page]++
				h.codePages[page] = false
				e.st.SMCInvalidations++
			}
		}
		return
	}
	h := e.h
	if int(page) < len(h.codePages) && h.codePages[page] {
		h.pageGen[page]++
		h.codePages[page] = false
		e.st.SMCInvalidations++
	}
}

// Run implements engine.Engine.
func (e *Engine) Run(harts []*machine.Machine, limit uint64) (engine.Stats, error) {
	e.reset(harts)
	var total uint64
	for {
		running := false
		for _, h := range e.harts {
			if h.m.Halted {
				continue
			}
			running = true
			if err := e.runSlice(h, &total, limit); err != nil {
				e.st.Instructions = total
				return e.st, err
			}
		}
		if !running {
			break
		}
	}
	e.st.Instructions = total
	return e.st, nil
}

// runSlice executes roughly one scheduling quantum on h: whole blocks
// run to completion, so the slice ends at the first block boundary at
// or past the quantum — the block-granular interleaving a DBT
// naturally has. Tick and limit checks key off the hart's own retired
// count, so at one core the instruction stream is bit-identical to the
// pre-SMP engine.
func (e *Engine) runSlice(h *hart, total *uint64, limit uint64) error {
	e.attach(h)
	m := h.m
	cpu := &m.CPU
	stop := h.insns + engine.SchedQuantum
	for !m.Halted && h.insns < stop {
		if *total >= limit {
			return engine.ErrLimit
		}
		if m.TickFn != nil && h.insns-h.lastTick >= tickQuantum {
			m.TickFn(uint32(h.insns - h.lastTick))
			h.lastTick = h.insns
		}
		// Interrupts are recognised at block boundaries only.
		if m.IRQPending() {
			e.enterExc(isa.ExcIRQ, cpu.PC)
			m.Enter(isa.ExcIRQ, cpu.PC)
			e.st.IRQsDelivered++
			h.b, h.ok = e.lookup(cpu.PC)
			continue
		}
		if !h.ok {
			h.b, h.ok = e.lookup(cpu.PC)
			continue
		}
		b := h.b
		if !e.valid(b) {
			h.b, h.ok = e.lookup(b.va)
			continue
		}
		e.st.BlockExecutions++

		kind, target, retired := e.exec(b)
		h.insns += retired
		*total += retired

		switch kind {
		case exitFall:
			cpu.PC = b.fallVA
			h.b, h.ok = e.follow(b, &b.nextFall, &b.fallEpoch, b.fallVA)
		case exitTaken:
			cpu.PC = target
			if target == b.takenVA {
				h.b, h.ok = e.follow(b, &b.nextTaken, &b.takenEpoch, target)
			} else {
				h.b, h.ok = e.lookup(target)
			}
		case exitIndirect:
			cpu.PC = target
			h.b, h.ok = e.lookup(target)
		case exitException:
			h.b, h.ok = e.lookup(cpu.PC)
		case exitHalt:
			// loop exits via m.Halted
		}
	}
	return nil
}

// follow takes a (potentially chained) transition to va. The chain slot
// is used when the policy allows and the cached link is still valid;
// otherwise a full lookup runs and, for same-page targets, re-establishes
// the link.
func (e *Engine) follow(b *block, slot **block, epoch *uint32, va uint32) (*block, bool) {
	if nb := *slot; nb != nil && e.cfg.Chain != ChainNone && *epoch == e.h.chainEpoch {
		switch e.cfg.Chain {
		case ChainDirect:
			if e.valid(nb) {
				e.st.ChainFollows++
				return nb, true
			}
		case ChainChecked:
			// The safer scheme revalidates the target address and
			// rescans a window of the host code before trusting it.
			if e.valid(nb) && nb.va == va {
				sum := uint32(0)
				hc := nb.hostCode
				for i := 0; i < 4 && i < len(hc); i++ {
					sum ^= hc[i]
				}
				e.checkScratch ^= sum
				e.st.ChainFollows++
				return nb, true
			}
		}
	}
	nb, ok := e.lookup(va)
	if ok && e.cfg.Chain != ChainNone && samePage(b.va, va) {
		*slot = nb
		*epoch = e.h.chainEpoch
	}
	return nb, ok
}

func samePage(a, b uint32) bool { return a>>isa.PageShift == b>>isa.PageShift }

// String describes the engine and its configuration.
func (e *Engine) String() string {
	s := fmt.Sprintf("dbt(%s: opt=%d chain=%s lookup=%d tlb=2^%d victim=%v dfp=%v",
		e.cfg.Name, e.cfg.OptLevel, e.cfg.Chain, e.cfg.LookupDepth,
		e.cfg.TLBBits, e.cfg.VictimTLB, e.cfg.DataFaultFastPath)
	if segs, insns := e.cfg.superblockCap(); segs > 1 {
		s += fmt.Sprintf(" sb=%dx%d", segs, insns)
	}
	return s + ")"
}
