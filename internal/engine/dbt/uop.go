package dbt

// The micro-op IR that guest instructions are lowered into. One uop
// usually corresponds to one guest instruction; optimisation passes may
// fold several guest instructions into one uop (constant materialisation,
// compare/branch fusion), in which case the uop's retire count covers
// all of them.

type uopKind uint8

const (
	uNop uopKind = iota

	// ALU, register forms: rd = ra <op> rb.
	uAdd
	uSub
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSra
	uMul
	uCmp // flags = ra - rb
	uMov
	uNot

	// ALU, immediate forms: rd = ra <op> imm.
	uAddI
	uSubI
	uAndI
	uOrI
	uXorI
	uShlI
	uShrI
	uSraI
	uMulI
	uCmpI     // flags = ra - imm
	uMovImm32 // rd = imm (covers folded MOVI/MOVT pairs)
	uMovT     // rd = rd&0xFFFF | imm<<16

	// Memory: address = ra + simm.
	uLoadW
	uStoreW
	uLoadB
	uStoreB
	uLoadT  // non-privileged
	uStoreT // non-privileged
	uLoadX  // exclusive load: rd = mem[ra], arm reservation
	uStoreX // exclusive store: mem[ra] = rb if reserved, rd = 0/1

	// Terminals.
	uBranch     // unconditional direct: target in imm
	uBranchCond // conditional direct: cond in rd, target in imm; fall-through otherwise
	uCmpBranchI // fused CMPI + conditional branch: flags = ra - simm(aux), then branch
	uCall       // direct call: LR = return, jump imm
	uCallCond   // conditional direct call
	uBranchReg  // indirect: target = ra
	uCallReg    // indirect call
	uSvc
	uEret
	uMsr // ctrl[imm] = rd (terminal: may change mode/translation)
	uTlbi
	uTlbiAll
	uHalt
	uUndef

	// Non-terminal system ops.
	uMrs  // rd = ctrl[imm]
	uCprd // rd = coproc; imm = cp<<8|reg
	uCpwr

	// uChainFollow marks a basic-block boundary the superblock
	// translator followed at translate time (an unconditional same-page
	// direct branch, or the fall-through at BlockCap). imm holds the
	// successor VA. At exec time it costs one page-generation compare:
	// if the translation is still current, execution falls straight
	// through into the next segment's uops; if a store has invalidated
	// the page mid-superblock, it side-exits to imm so the dispatcher
	// retranslates — the check that keeps self-modifying code exactly as
	// sound as dispatcher-mediated transitions.
	uChainFollow
)

// uop is one micro-operation. Fields are overloaded per kind; pcOff is
// the offset of the originating guest instruction from the block start,
// and retire the cumulative guest instructions retired once this uop
// completes (used for exact instruction counts on side exits).
type uop struct {
	kind   uopKind
	rd     uint8 // destination register, or condition for uBranchCond
	ra     uint8
	rb     uint8
	imm    uint32 // immediate / absolute branch target VA
	aux    uint32 // secondary immediate (fused compare operand)
	pcOff  uint16
	retire uint16
}

// exitKind says how a translated block finished executing.
type exitKind uint8

const (
	exitFall      exitKind = iota // ran off the end; continue at block.end
	exitTaken                     // direct branch taken; target precomputed
	exitIndirect                  // indirect branch; target in exit value
	exitException                 // exception entered; CPU state already vectored
	exitHalt
)

// block is one translated unit: straight-line guest code ending at a
// terminal instruction, a page boundary, or the block cap. With
// Config.Superblock > 1 one unit may cover several basic blocks of the
// same page, joined by uChainFollow boundary uops.
type block struct {
	va       uint32 // guest virtual start
	physPage uint32 // physical page of the code (blocks never cross pages)
	end      uint32 // va of the first instruction after the block
	gen      uint32 // page generation at translation time
	uops     []uop
	insns    uint16
	liveIn   uint32   // live-register mask from the optimiser
	hostCode []uint32 // pseudo host code produced by the emitter

	// Chained successors (same-page direct targets only). The epoch
	// fields record the engine chain epoch at link time; TLB
	// maintenance bumps the epoch, severing every link.
	nextTaken  *block
	nextFall   *block
	takenVA    uint32
	fallVA     uint32
	takenEpoch uint32
	fallEpoch  uint32
}
