package dbt

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/engine/interp"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// runBoth executes the same program under the DBT engine (with cfg) and
// the reference interpreter and verifies the architectural outcomes
// match: register file, exception counts, console output.
func runBoth(t *testing.T, cfg Config, build func(a *asm.Assembler)) (*platform.Platform, *platform.Platform) {
	t.Helper()
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	pd := platform.New(machine.ProfileARM, 1<<20)
	if err := pd.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	pd.M.Reset()
	dstats, err := New(cfg).Run(pd.Harts(), 5_000_000)
	if err != nil {
		t.Fatalf("dbt run: %v (pc=%#x)", err, pd.M.CPU.PC)
	}

	pi := platform.New(machine.ProfileARM, 1<<20)
	if err := pi.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	pi.M.Reset()
	istats, err := interp.New().Run(pi.Harts(), 5_000_000)
	if err != nil {
		t.Fatalf("interp run: %v (pc=%#x)", err, pi.M.CPU.PC)
	}

	if pd.M.CPU.Regs != pi.M.CPU.Regs {
		t.Errorf("register mismatch:\n dbt    %v\n interp %v", pd.M.CPU.Regs, pi.M.CPU.Regs)
	}
	if pd.M.ExcCount != pi.M.ExcCount {
		t.Errorf("exception mismatch: dbt %v interp %v", pd.M.ExcCount, pi.M.ExcCount)
	}
	if pd.ConsoleString() != pi.ConsoleString() {
		t.Errorf("console mismatch: %q vs %q", pd.ConsoleString(), pi.ConsoleString())
	}
	if dstats.Instructions != istats.Instructions {
		t.Errorf("instruction count mismatch: dbt %d interp %d", dstats.Instructions, istats.Instructions)
	}
	return pd, pi
}

func configs() []Config {
	minimal := Config{Name: "minimal", OptLevel: 0, Chain: ChainNone, LookupDepth: 1,
		TLBBits: 4, VictimTLB: false, DataFaultFastPath: false,
		ExcSyncWords: 8, HelperSaveWords: 8, WalkExtraChecks: 2, BlockCap: 8}
	return []Config{DefaultConfig(), minimal,
		{Name: "direct-chain", OptLevel: 1, Chain: ChainDirect, LookupDepth: 2,
			TLBBits: 8, VictimTLB: true, DataFaultFastPath: true, BlockCap: 64}}
}

func TestFactorialAllConfigs(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.Name, func(t *testing.T) {
			pd, _ := runBoth(t, cfg, func(a *asm.Assembler) {
				a.MOVI(isa.R1, 12)
				a.MOVI(isa.R2, 1)
				a.Label("loop")
				a.CMPI(isa.R1, 1)
				a.B(isa.CondLE, "done")
				a.MUL(isa.R2, isa.R2, isa.R1)
				a.SUBI(isa.R1, isa.R1, 1)
				a.B(isa.CondAL, "loop")
				a.Label("done")
				a.HALT()
			})
			if pd.M.CPU.Regs[isa.R2] != 479001600 {
				t.Errorf("12! = %d", pd.M.CPU.Regs[isa.R2])
			}
		})
	}
}

func TestCallsAndIndirectBranches(t *testing.T) {
	runBoth(t, DefaultConfig(), func(a *asm.Assembler) {
		a.MOVI(isa.SP, 0x8000)
		a.MOVI(isa.R1, 0)
		a.MOVI(isa.R4, 10)
		a.Label("loop")
		a.BL("add3") // direct call
		a.LA(isa.R6, "add3")
		a.BLR(isa.R6) // indirect call
		a.SUBI(isa.R4, isa.R4, 1)
		a.CMPI(isa.R4, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
		a.Label("add3")
		a.ADDI(isa.R1, isa.R1, 3)
		a.RET()
	})
}

func TestMOVIMOVTFolding(t *testing.T) {
	pd, _ := runBoth(t, DefaultConfig(), func(a *asm.Assembler) {
		a.LoadImm32(isa.R3, 0xDEADBEEF)
		a.LoadImm32(isa.R4, 0x12345678)
		a.MOVI(isa.R5, 0x1111)
		a.MOVT(isa.R6, 0x2222) // MOVT not paired with a MOVI of same reg
		a.HALT()
	})
	if pd.M.CPU.Regs[isa.R3] != 0xDEADBEEF || pd.M.CPU.Regs[isa.R4] != 0x12345678 {
		t.Error("folded constants wrong")
	}
	if pd.M.CPU.Regs[isa.R6] != 0x22220000 {
		t.Errorf("unpaired MOVT wrong: %#x", pd.M.CPU.Regs[isa.R6])
	}
}

func TestExceptionsMatchInterp(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.Name, func(t *testing.T) {
			runBoth(t, cfg, func(a *asm.Assembler) {
				a.LA(isa.R1, "vectors")
				a.MSR(isa.CtrlVBAR, isa.R1)
				a.MOVI(isa.R5, 0)
				a.SVC(1)
				a.UD()
				a.SVC(2)
				a.HALT()
				a.Org(0x400)
				a.Label("vectors")
				a.HALT()
				a.B(isa.CondAL, "h")
				a.B(isa.CondAL, "h")
				a.HALT()
				a.HALT()
				a.HALT()
				a.Label("h")
				a.ADDI(isa.R5, isa.R5, 1)
				a.ERET()
			})
		})
	}
}

func TestSelfModifyingCode(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.Name, func(t *testing.T) {
			pd, _ := runBoth(t, cfg, func(a *asm.Assembler) {
				// Patch "MOVI R9, n" with increasing n, executing after
				// each patch; R7 accumulates the observed values.
				a.MOVI(isa.R7, 0)
				a.MOVI(isa.R3, 1) // n
				a.LA(isa.R1, "site")
				a.Label("loop")
				// build encoding: MOVI R9, n  =  opcode|rd|imm
				base := isa.Encode(isa.Inst{Op: isa.OpMOVI, Rd: isa.R9, Imm: 0})
				a.LoadImm32(isa.R2, base)
				a.OR(isa.R2, isa.R2, isa.R3) // imm16 = n
				a.STW(isa.R2, isa.R1, 0)
				a.BL("fn")
				a.ADD(isa.R7, isa.R7, isa.R9)
				a.ADDI(isa.R3, isa.R3, 1)
				a.CMPI(isa.R3, 6)
				a.B(isa.CondNE, "loop")
				a.HALT()
				a.Label("fn")
				a.Label("site")
				a.NOP()
				a.RET()
			})
			if got := pd.M.CPU.Regs[isa.R7]; got != 1+2+3+4+5 {
				t.Errorf("SMC sum = %d, want 15", got)
			}
		})
	}
}

func TestChainingCounters(t *testing.T) {
	a := asm.New()
	a.MOVI(isa.R1, 1000)
	a.Label("loop")
	a.SUBI(isa.R1, isa.R1, 1)
	a.CMPI(isa.R1, 0)
	a.B(isa.CondNE, "loop")
	a.HALT()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	run := func(cfg Config) (chains, lookups uint64) {
		p := platform.New(machine.ProfileARM, 1<<20)
		p.M.LoadProgram(prog)
		p.M.Reset()
		st, err := New(cfg).Run(p.Harts(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.ChainFollows, st.CacheLookups
	}

	cfg := DefaultConfig()
	chains, _ := run(cfg)
	if chains < 900 {
		t.Errorf("chained config should follow chains, got %d", chains)
	}
	cfg.Chain = ChainNone
	chains, _ = run(cfg)
	if chains != 0 {
		t.Errorf("no-chain config followed %d chains", chains)
	}
}

func TestBlockCacheReuse(t *testing.T) {
	a := asm.New()
	a.MOVI(isa.R1, 100)
	a.Label("loop")
	a.SUBI(isa.R1, isa.R1, 1)
	a.CMPI(isa.R1, 0)
	a.B(isa.CondNE, "loop")
	a.HALT()
	prog, _ := a.Assemble()
	p := platform.New(machine.ProfileARM, 1<<20)
	p.M.LoadProgram(prog)
	p.M.Reset()
	st, err := NewDefault().Run(p.Harts(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksTranslated > 5 {
		t.Errorf("loop retranslated: %d blocks for a 2-block program", st.BlocksTranslated)
	}
	if st.BlockExecutions < 100 {
		t.Errorf("block executions = %d", st.BlockExecutions)
	}
}

func TestUndefinedRetiresPrecisely(t *testing.T) {
	// An undefined instruction mid-stream must not retire, and EPC must
	// point past it.
	pd, _ := runBoth(t, DefaultConfig(), func(a *asm.Assembler) {
		a.LA(isa.R1, "vectors")
		a.MSR(isa.CtrlVBAR, isa.R1)
		a.MOVI(isa.R2, 7) // retired before UD
		a.UD()
		a.MOVI(isa.R3, 9) // retired after handler returns
		a.HALT()
		a.Org(0x200)
		a.Label("vectors")
		a.HALT()
		a.B(isa.CondAL, "u")
		a.HALT()
		a.HALT()
		a.HALT()
		a.HALT()
		a.Label("u")
		a.MOVI(isa.R10, 1)
		a.ERET()
	})
	if pd.M.CPU.Regs[isa.R2] != 7 || pd.M.CPU.Regs[isa.R3] != 9 || pd.M.CPU.Regs[isa.R10] != 1 {
		t.Error("undef recovery wrong")
	}
}
