package dbt

// Hot-path microbenchmarks for the DBT engine. These isolate the two
// costs the engine pays per retired instruction once translation has
// warmed up: the dispatch loop around exec (BenchmarkExecLoop) and the
// softMMU lookup on every load and store (BenchmarkSoftTLBHit). The
// superblock variants run the identical guest workload with block
// chaining across basic-block boundaries enabled, so the delta is the
// dispatch returns saved — nothing else changes.
//
// Recorded runs of these benchmarks form the perf trajectory in the
// repo's BENCH_*.json files; see README "Performance trajectory".

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// benchAssemble assembles build or fails the benchmark.
func benchAssemble(b *testing.B, build func(a *asm.Assembler)) *asm.Program {
	b.Helper()
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchRun measures running prog to completion under cfg, reporting
// retired guest Mips. The platform is rebuilt per iteration so every
// run translates from a cold code cache — the steady-state loop still
// dominates at the iteration counts used here.
func benchRun(b *testing.B, cfg Config, prog *asm.Program) {
	b.Helper()
	var insns uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := platform.New(machine.ProfileARM, 1<<20)
		if err := p.M.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		p.M.Reset()
		b.StartTimer()
		st, err := New(cfg).Run(p.Harts(), 500_000_000)
		if err != nil {
			b.Fatalf("%v (pc=%#x)", err, p.M.CPU.PC)
		}
		insns += st.Instructions
	}
	b.ReportMetric(float64(insns)/b.Elapsed().Seconds()/1e6, "Mips")
}

// execLoopProg is a hot ALU loop: one basic block of straight-line
// compute ending in a backward conditional branch, the shape where
// dispatch overhead per block transition is most visible.
func execLoopProg(b *testing.B, iters int32) *asm.Program {
	return benchAssemble(b, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, uint32(iters))
		a.MOVI(isa.R2, 0)
		a.MOVI(isa.R3, 7)
		a.Label("loop")
		a.ADD(isa.R2, isa.R2, isa.R3)
		a.XOR(isa.R4, isa.R2, isa.R1)
		a.SHLI(isa.R5, isa.R4, 3)
		a.SUB(isa.R2, isa.R2, isa.R5)
		a.ORI(isa.R6, isa.R2, 0x55)
		a.AND(isa.R2, isa.R2, isa.R6)
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	})
}

// chainLoopProg splits the loop body across several basic blocks
// joined by unconditional branches — the straight-line-chain shape
// superblock translation collapses into one dispatch unit.
func chainLoopProg(b *testing.B, iters int32) *asm.Program {
	return benchAssemble(b, func(a *asm.Assembler) {
		a.LoadImm32(isa.R1, uint32(iters))
		a.MOVI(isa.R2, 0)
		a.Label("loop")
		a.ADDI(isa.R2, isa.R2, 3)
		a.B(isa.CondAL, "seg2")
		a.Label("seg2")
		a.XORI(isa.R3, isa.R2, 0x1F)
		a.B(isa.CondAL, "seg3")
		a.Label("seg3")
		a.ADD(isa.R2, isa.R2, isa.R3)
		a.B(isa.CondAL, "seg4")
		a.Label("seg4")
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()
	})
}

// tlbLoopProg enables the MMU over an identity section mapping and
// hammers loads and stores on one data page: after the first walk,
// every access is a softMMU L1 hit.
func tlbLoopProg(b *testing.B, iters int32) *asm.Program {
	const ttbr = 0x80000
	return benchAssemble(b, func(a *asm.Assembler) {
		a.LoadImm32(isa.R0, ttbr)
		a.MSR(isa.CtrlTTBR, isa.R0)
		a.MOVI(isa.R1, int32(isa.MMUEnable))
		a.MSR(isa.CtrlMMU, isa.R1)

		a.LoadImm32(isa.R1, uint32(iters))
		a.LoadImm32(isa.R9, 0x9000) // data page
		a.MOVI(isa.R2, 0)
		a.Label("loop")
		a.LDW(isa.R3, isa.R9, 0)
		a.ADD(isa.R2, isa.R2, isa.R3)
		a.LDW(isa.R4, isa.R9, 8)
		a.STW(isa.R2, isa.R9, 16)
		a.LDW(isa.R5, isa.R9, 24)
		a.STW(isa.R5, isa.R9, 32)
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "loop")
		a.HALT()

		// Identity section mapping for the first megabyte: code, data
		// and the tables themselves.
		a.Org(ttbr)
		a.Word(0 | 1 | 1<<2)
	})
}

// BenchmarkExecLoop measures the dispatch + exec hot loop on a single
// conditional-branch-terminated block, default configuration.
func BenchmarkExecLoop(b *testing.B) {
	benchRun(b, DefaultConfig(), execLoopProg(b, 50_000))
}

// BenchmarkExecLoopChain measures the same dispatch cost on a loop
// body fragmented into unconditional-branch-joined blocks.
func BenchmarkExecLoopChain(b *testing.B) {
	benchRun(b, DefaultConfig(), chainLoopProg(b, 50_000))
}

// BenchmarkExecLoopSuperblock is BenchmarkExecLoopChain with
// superblock translation enabled: the fragments fuse into one
// translation unit, eliminating the interior dispatch returns.
func BenchmarkExecLoopSuperblock(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Superblock = 8
	benchRun(b, cfg, chainLoopProg(b, 50_000))
}

// BenchmarkSoftTLBHit measures the softMMU hit path: MMU on, all
// accesses landing on one warmed data page.
func BenchmarkSoftTLBHit(b *testing.B) {
	benchRun(b, DefaultConfig(), tlbLoopProg(b, 50_000))
}
