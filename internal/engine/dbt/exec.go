package dbt

import (
	"simbench/internal/isa"
)

// exec runs a translated block from its first uop to an exit. It
// returns the exit kind, the target VA (for taken/indirect exits) and
// the exact number of guest instructions retired, which per-uop
// cumulative retire counts make precise even on side exits.
func (e *Engine) exec(b *block) (exitKind, uint32, uint64) {
	m := e.m
	cpu := &m.CPU
	r := &cpu.Regs
	ops := b.uops
	for i := 0; i < len(ops); i++ {
		u := &ops[i]
		switch u.kind {
		case uNop:
		case uAdd:
			r[u.rd] = r[u.ra] + r[u.rb]
		case uSub:
			r[u.rd] = r[u.ra] - r[u.rb]
		case uAnd:
			r[u.rd] = r[u.ra] & r[u.rb]
		case uOr:
			r[u.rd] = r[u.ra] | r[u.rb]
		case uXor:
			r[u.rd] = r[u.ra] ^ r[u.rb]
		case uShl:
			r[u.rd] = r[u.ra] << (r[u.rb] & 31)
		case uShr:
			r[u.rd] = r[u.ra] >> (r[u.rb] & 31)
		case uSra:
			r[u.rd] = uint32(int32(r[u.ra]) >> (r[u.rb] & 31))
		case uMul:
			r[u.rd] = r[u.ra] * r[u.rb]
		case uCmp:
			cpu.Flags = isa.Sub(r[u.ra], r[u.rb])
		case uMov:
			r[u.rd] = r[u.ra]
		case uNot:
			r[u.rd] = ^r[u.ra]
		case uAddI:
			r[u.rd] = r[u.ra] + u.imm
		case uSubI:
			r[u.rd] = r[u.ra] - u.imm
		case uAndI:
			r[u.rd] = r[u.ra] & u.imm
		case uOrI:
			r[u.rd] = r[u.ra] | u.imm
		case uXorI:
			r[u.rd] = r[u.ra] ^ u.imm
		case uShlI:
			r[u.rd] = r[u.ra] << (u.imm & 31)
		case uShrI:
			r[u.rd] = r[u.ra] >> (u.imm & 31)
		case uSraI:
			r[u.rd] = uint32(int32(r[u.ra]) >> (u.imm & 31))
		case uMulI:
			r[u.rd] = r[u.ra] * u.imm
		case uCmpI:
			cpu.Flags = isa.Sub(r[u.ra], u.imm)
		case uMovImm32:
			r[u.rd] = u.imm
		case uMovT:
			r[u.rd] = r[u.rd]&0xFFFF | u.imm<<16

		case uLoadW:
			if !e.uopLoad(b, u, r[u.ra]+u.imm, 4, false) {
				return exitException, 0, uint64(u.retire)
			}
		case uLoadB:
			if !e.uopLoad(b, u, r[u.ra]+u.imm, 1, false) {
				return exitException, 0, uint64(u.retire)
			}
		case uLoadT:
			e.st.NonPrivAccesses++
			if !e.uopLoad(b, u, r[u.ra]+u.imm, 4, true) {
				return exitException, 0, uint64(u.retire)
			}
		case uStoreW:
			if !e.uopStore(b, u, r[u.ra]+u.imm, 4, false) {
				return exitException, 0, uint64(u.retire)
			}
		case uStoreB:
			if !e.uopStore(b, u, r[u.ra]+u.imm, 1, false) {
				return exitException, 0, uint64(u.retire)
			}
		case uStoreT:
			e.st.NonPrivAccesses++
			if !e.uopStore(b, u, r[u.ra]+u.imm, 4, true) {
				return exitException, 0, uint64(u.retire)
			}
		case uLoadX:
			if !e.uopLoadX(b, u, r[u.ra]) {
				return exitException, 0, uint64(u.retire)
			}
		case uStoreX:
			if !e.uopStoreX(b, u, r[u.ra]) {
				return exitException, 0, uint64(u.retire)
			}

		case uChainFollow:
			// Superblock boundary fused at translate time: one page-
			// generation compare instead of a dispatcher round trip. A
			// store earlier in this unit may have invalidated the page,
			// in which case the remaining segments are stale and the
			// dispatcher must retranslate from the successor VA.
			if !e.valid(b) {
				return exitTaken, u.imm, uint64(u.retire)
			}
			e.st.SuperblockFollows++
		case uBranch:
			return exitTaken, u.imm, uint64(u.retire)
		case uBranchCond:
			if isa.Cond(u.rd).Eval(cpu.Flags) {
				return exitTaken, u.imm, uint64(u.retire)
			}
			return exitFall, 0, uint64(u.retire)
		case uCmpBranchI:
			cpu.Flags = isa.Sub(r[u.ra], u.aux)
			if isa.Cond(u.rd).Eval(cpu.Flags) {
				return exitTaken, u.imm, uint64(u.retire)
			}
			return exitFall, 0, uint64(u.retire)
		case uCall:
			r[isa.LR] = u.aux
			return exitTaken, u.imm, uint64(u.retire)
		case uCallCond:
			if isa.Cond(u.rd).Eval(cpu.Flags) {
				r[isa.LR] = u.aux
				return exitTaken, u.imm, uint64(u.retire)
			}
			return exitFall, 0, uint64(u.retire)
		case uBranchReg:
			return exitIndirect, r[u.ra] &^ 3, uint64(u.retire)
		case uCallReg:
			target := r[u.ra] &^ 3
			r[isa.LR] = u.aux
			return exitIndirect, target, uint64(u.retire)

		case uSvc:
			e.enterExc(isa.ExcSyscall, u.aux)
			m.Enter(isa.ExcSyscall, u.aux)
			return exitException, 0, uint64(u.retire)
		case uEret:
			if !cpu.Kernel {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			m.ERET()
			return exitIndirect, cpu.PC, uint64(u.retire)
		case uMrs:
			v, ok := m.ReadCtrl(isa.CtrlReg(u.imm))
			if !ok {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			r[u.rd] = v
		case uMsr:
			if !m.WriteCtrl(isa.CtrlReg(u.imm), r[u.rd]) {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			// Terminal: mode or translation state may have changed.
			return exitIndirect, b.va + uint32(u.pcOff) + 4, uint64(u.retire)
		case uCprd:
			e.helperCall()
			v, ok := m.CoprocRead(u.imm>>8, u.imm&0xFF)
			if !ok {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			e.st.CoprocAccesses++
			r[u.rd] = v
		case uCpwr:
			e.helperCall()
			if !m.CoprocWrite(u.imm>>8, u.imm&0xFF, r[u.rd]) {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			e.st.CoprocAccesses++
		case uTlbi:
			if !cpu.Kernel {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			e.st.TLBInvalidates++
			m.ShootdownPage(r[u.ra])
			return exitIndirect, b.va + uint32(u.pcOff) + 4, uint64(u.retire)
		case uTlbiAll:
			if !cpu.Kernel {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			e.st.TLBFlushes++
			m.ShootdownAll()
			return exitIndirect, b.va + uint32(u.pcOff) + 4, uint64(u.retire)
		case uHalt:
			if !cpu.Kernel {
				e.uopUndef(b, u)
				return exitException, 0, uint64(u.retire)
			}
			m.Halted = true
			return exitHalt, 0, uint64(u.retire)
		case uUndef:
			e.uopUndef(b, u)
			return exitException, 0, uint64(u.retire)
		}
	}
	return exitFall, 0, uint64(b.insns)
}

// uopUndef raises the undefined-instruction exception for the guest
// instruction behind u. Undefined instructions are part of the
// translated code ("Translated" in Fig. 4), so no state recovery is
// needed: the return address is static.
func (e *Engine) uopUndef(b *block, u *uop) {
	pc := b.va + uint32(u.pcOff)
	e.enterExc(isa.ExcUndef, pc+4)
	e.m.Enter(isa.ExcUndef, pc+4)
}

// uopLoad performs a load; false means an exception side exit.
//
// The hot path is inlined here: one direct-mapped L1 tag compare and a
// pbase add, with no call into the softMMU — QEMU's fast-path/slow-path
// split. Entries are installed only when the access they describe is
// permitted, so a hit needs no further checks. Misses, device pages and
// permission faults fall into uopLoadSlow.
func (e *Engine) uopLoad(b *block, u *uop, va uint32, size int, asUser bool) bool {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemReads++
	if m.MMUEnabled() {
		mmuIdx := idxKernel
		if !m.CPU.Kernel || asUser {
			mmuIdx = idxUser
		}
		t := e.h.dtlb
		vp := va >> isa.PageShift
		if ent := &t.l1[mmuIdx][accRead][vp&t.mask]; ent.tag == vp<<1|1 && ent.isRAM {
			e.st.TLBHits++
			pa := ent.pbase | va&isa.PageMask
			if size == 4 {
				m.CPU.Regs[u.rd] = m.Bus.ReadWordRAM(pa)
			} else {
				m.CPU.Regs[u.rd] = uint32(m.Bus.RAM[pa])
			}
			return true
		}
	} else if m.Bus.IsRAM(va, 1) {
		if size == 4 {
			m.CPU.Regs[u.rd] = m.Bus.ReadWordRAM(va)
		} else {
			m.CPU.Regs[u.rd] = uint32(m.Bus.RAM[va])
		}
		return true
	}
	return e.uopLoadSlow(b, u, va, size, asUser)
}

// uopLoadSlow is the full load path: multi-level softMMU lookup, page
// walks, device access via helper call. va is already aligned and the
// read already counted.
func (e *Engine) uopLoadSlow(b *block, u *uop, va uint32, size int, asUser bool) bool {
	m := e.m
	pa, isRAM, fault := e.dataAccess(va, false, asUser)
	if fault != isa.FaultNone {
		e.dataFault(b, u, fault, va, false)
		return false
	}
	if isRAM {
		if size == 4 {
			m.CPU.Regs[u.rd] = m.Bus.ReadWordRAM(pa)
		} else {
			m.CPU.Regs[u.rd] = uint32(m.Bus.RAM[pa])
		}
		return true
	}
	e.helperCall()
	e.st.DeviceAccesses++
	v, f := m.Bus.ReadPhys(pa, size)
	if f != isa.FaultNone {
		e.dataFault(b, u, f, va, false)
		return false
	}
	m.CPU.Regs[u.rd] = v
	return true
}

// uopStore performs a store; false means an exception side exit. Like
// uopLoad it carries the inlined L1 fast path; the RAM store epilogue
// (monitor and SMC bookkeeping) is identical to the slow path's.
func (e *Engine) uopStore(b *block, u *uop, va uint32, size int, asUser bool) bool {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemWrites++
	if m.MMUEnabled() {
		mmuIdx := idxKernel
		if !m.CPU.Kernel || asUser {
			mmuIdx = idxUser
		}
		t := e.h.dtlb
		vp := va >> isa.PageShift
		if ent := &t.l1[mmuIdx][accWrite][vp&t.mask]; ent.tag == vp<<1|1 && ent.isRAM {
			e.st.TLBHits++
			pa := ent.pbase | va&isa.PageMask
			v := m.CPU.Regs[u.rd]
			if size == 4 {
				m.Bus.WriteWordRAM(pa, v)
			} else {
				m.Bus.RAM[pa] = byte(v)
			}
			if m.Mon.Armed() {
				m.Mon.NoteStore(pa)
			}
			e.noteStore(pa)
			return true
		}
	} else if m.Bus.IsRAM(va, 1) {
		v := m.CPU.Regs[u.rd]
		if size == 4 {
			m.Bus.WriteWordRAM(va, v)
		} else {
			m.Bus.RAM[va] = byte(v)
		}
		if m.Mon.Armed() {
			m.Mon.NoteStore(va)
		}
		e.noteStore(va)
		return true
	}
	return e.uopStoreSlow(b, u, va, size, asUser)
}

// uopStoreSlow is the full store path: multi-level softMMU lookup, page
// walks, device access via helper call. va is already aligned and the
// write already counted.
func (e *Engine) uopStoreSlow(b *block, u *uop, va uint32, size int, asUser bool) bool {
	m := e.m
	pa, isRAM, fault := e.dataAccess(va, true, asUser)
	if fault != isa.FaultNone {
		e.dataFault(b, u, fault, va, true)
		return false
	}
	v := m.CPU.Regs[u.rd]
	if isRAM {
		if size == 4 {
			m.Bus.WriteWordRAM(pa, v)
		} else {
			m.Bus.RAM[pa] = byte(v)
		}
		if m.Mon.Armed() {
			m.Mon.NoteStore(pa)
		}
		e.noteStore(pa)
		return true
	}
	e.helperCall()
	e.st.DeviceAccesses++
	if f := m.Bus.WritePhys(pa, size, v); f != isa.FaultNone {
		e.dataFault(b, u, f, va, true)
		return false
	}
	return true
}

// uopLoadX performs an exclusive load: the word is read and this
// hart's reservation armed. Exclusives are RAM-only; false means an
// exception side exit.
func (e *Engine) uopLoadX(b *block, u *uop, va uint32) bool {
	m := e.m
	va &^= 3
	e.st.MemReads++
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.dataAccess(va, false, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		e.dataFault(b, u, fault, va, false)
		return false
	}
	m.Mon.Arm(m.HartID, pa)
	m.CPU.Regs[u.rd] = m.Bus.ReadWordRAM(pa)
	return true
}

// uopStoreX performs an exclusive store: it succeeds (rd=0) only if
// the hart's reservation survived; otherwise rd=1 and memory is
// untouched. False means an exception side exit.
func (e *Engine) uopStoreX(b *block, u *uop, va uint32) bool {
	m := e.m
	va &^= 3
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.dataAccess(va, true, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		e.dataFault(b, u, fault, va, true)
		return false
	}
	if m.Mon.Exclusive(m.HartID, pa) {
		e.st.MemWrites++
		m.Bus.WriteWordRAM(pa, m.CPU.Regs[u.rb])
		m.Mon.NoteStore(pa)
		e.noteStore(pa)
		m.CPU.Regs[u.rd] = 0
	} else {
		e.st.ExclusiveFails++
		m.CPU.Regs[u.rd] = 1
	}
	return true
}

// dataFault enters the data-abort exception, paying the
// translate-back state recovery unless the fast path is configured.
func (e *Engine) dataFault(b *block, u *uop, code isa.FaultCode, va uint32, write bool) {
	if !e.cfg.DataFaultFastPath {
		e.restoreState(b)
	}
	pc := b.va + uint32(u.pcOff)
	e.enterExc(isa.ExcDataFault, pc)
	e.m.EnterMemFault(isa.ExcDataFault, code, va, write, pc)
}
