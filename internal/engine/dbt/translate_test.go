package dbt

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/platform"
)

// translateProg assembles build, loads it, and translates one block at
// address 0 under cfg, returning the block.
func translateProg(t *testing.T, cfg Config, build func(a *asm.Assembler)) *block {
	t.Helper()
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	e := New(cfg)
	e.reset(p.Harts())
	return e.translate(0, 0)
}

func TestBlockEndsAtTerminal(t *testing.T) {
	b := translateProg(t, DefaultConfig(), func(a *asm.Assembler) {
		a.ADDI(isa.R1, isa.R1, 1)
		a.ADDI(isa.R2, isa.R2, 2)
		a.B(isa.CondAL, "next")
		a.Label("next")
		a.NOP() // must not be part of the block
		a.HALT()
	})
	if b.insns != 3 {
		t.Errorf("block has %d insns, want 3 (up to the branch)", b.insns)
	}
	if b.takenVA != 12 {
		t.Errorf("takenVA %#x", b.takenVA)
	}
}

func TestBlockCapRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockCap = 4
	b := translateProg(t, cfg, func(a *asm.Assembler) {
		for i := 0; i < 10; i++ {
			a.ADDI(isa.R1, isa.R1, 1)
		}
		a.HALT()
	})
	if b.insns != 4 {
		t.Errorf("block has %d insns, want cap 4", b.insns)
	}
	if b.end != 16 {
		t.Errorf("end %#x", b.end)
	}
}

func TestBlockNeverCrossesPage(t *testing.T) {
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	// Straight-line code ending right before a page boundary, then
	// continuing across it.
	a.Org(isa.PageSize - 8)
	a.Label("_start")
	a.ADDI(isa.R1, isa.R1, 1)
	a.ADDI(isa.R1, isa.R1, 1)
	a.ADDI(isa.R1, isa.R1, 1) // first insn of the next page
	a.HALT()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p.M.LoadProgram(prog)
	e := NewDefault()
	e.reset(p.Harts())
	b := e.translate(isa.PageSize-8, isa.PageSize-8)
	if b.insns != 2 {
		t.Errorf("block crossed page: %d insns", b.insns)
	}
	if b.end != isa.PageSize {
		t.Errorf("end %#x", b.end)
	}
}

func TestConstantFolding(t *testing.T) {
	cfg := DefaultConfig() // OptLevel 2
	b := translateProg(t, cfg, func(a *asm.Assembler) {
		a.LoadImm32(isa.R3, 0xDEADBEEF) // MOVI+MOVT -> one uop
		a.NOP()                         // eliminated
		a.MOVI(isa.R4, 1)               // stays (next not a MOVT of R4)
		a.MOVT(isa.R5, 2)               // stays
		a.HALT()
	})
	// Expect: movimm32(folded), movi, movt, halt = 4 uops.
	if len(b.uops) != 4 {
		t.Fatalf("uops = %d, want 4: %+v", len(b.uops), b.uops)
	}
	if b.uops[0].kind != uMovImm32 || b.uops[0].imm != 0xDEADBEEF {
		t.Errorf("folded uop: %+v", b.uops[0])
	}
	// Retire counts stay cumulative and exact.
	if b.uops[0].retire != 3 { // movi+movt+nop all retired through it? movi(1)+movt(2); nop dropped later
		// The folded pair covers two guest insns; the dropped NOP's
		// retirement is recovered via the block total.
		if b.uops[0].retire != 2 {
			t.Errorf("folded retire = %d", b.uops[0].retire)
		}
	}
	if b.uops[len(b.uops)-1].retire != b.insns {
		t.Errorf("last retire %d != insns %d", b.uops[len(b.uops)-1].retire, b.insns)
	}
}

func TestNoFoldingAtOptLevel0(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OptLevel = 0
	b := translateProg(t, cfg, func(a *asm.Assembler) {
		a.LoadImm32(isa.R3, 0xDEADBEEF)
		a.NOP()
		a.HALT()
	})
	if len(b.uops) != 4 { // movi, movt, nop, halt
		t.Errorf("uops = %d, want 4 at O0", len(b.uops))
	}
}

func TestCompareBranchFusion(t *testing.T) {
	cfg := DefaultConfig()
	b := translateProg(t, cfg, func(a *asm.Assembler) {
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "_start")
		a.Label("_start")
	})
	last := b.uops[len(b.uops)-1]
	if last.kind != uCmpBranchI {
		t.Fatalf("last uop %v, want fused compare-branch", last.kind)
	}
	if isa.Cond(last.rd) != isa.CondNE || last.aux != 0 {
		t.Errorf("fused operands: %+v", last)
	}
	if last.retire != 3 {
		t.Errorf("fused retire %d, want 3", last.retire)
	}

	cfg.OptLevel = 1
	b = translateProg(t, cfg, func(a *asm.Assembler) {
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "_start")
		a.Label("_start")
	})
	if b.uops[len(b.uops)-1].kind == uCmpBranchI {
		t.Error("fusion must require OptLevel >= 2")
	}
}

func TestEmitProducesHostCode(t *testing.T) {
	b := translateProg(t, DefaultConfig(), func(a *asm.Assembler) {
		a.ADDI(isa.R1, isa.R1, 1)
		a.HALT()
	})
	if len(b.hostCode) < 3*len(b.uops) {
		t.Errorf("host code %d words for %d uops", len(b.hostCode), len(b.uops))
	}
	if b.liveIn == 0 {
		t.Error("liveness analysis produced nothing")
	}
}

func TestCondNeverBranchIsNop(t *testing.T) {
	b := translateProg(t, DefaultConfig(), func(a *asm.Assembler) {
		a.Inst(isa.Inst{Op: isa.OpB, Cond: isa.CondNV, Off: 16})
		a.ADDI(isa.R1, isa.R1, 1)
		a.HALT()
	})
	// The NV branch must not terminate the block.
	if b.insns != 3 {
		t.Errorf("NV branch terminated the block: %d insns", b.insns)
	}
}

func TestLDTLoweringPerProfile(t *testing.T) {
	// On x86 profile LDT lowers to an undefined-instruction trap.
	p := platform.New(machine.ProfileX86, 1<<20)
	a := asm.New()
	a.LDT(isa.R1, isa.R2, 0)
	prog, _ := a.Assemble()
	p.M.LoadProgram(prog)
	e := NewDefault()
	e.reset(p.Harts())
	b := e.translate(0, 0)
	if b.uops[0].kind != uUndef {
		t.Errorf("x86 LDT lowered to %v, want undef", b.uops[0].kind)
	}
}
