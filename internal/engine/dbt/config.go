package dbt

// ChainPolicy selects how translated blocks are linked to their
// successors.
type ChainPolicy uint8

// Chaining policies.
const (
	// ChainNone performs a full lookup for every block transition.
	ChainNone ChainPolicy = iota
	// ChainDirect links same-page direct successors with a raw pointer.
	ChainDirect
	// ChainChecked links but revalidates the target block's page
	// generation and virtual address on every traversal — the safer,
	// slower scheme later QEMU versions adopted.
	ChainChecked
)

func (c ChainPolicy) String() string {
	switch c {
	case ChainNone:
		return "none"
	case ChainDirect:
		return "direct"
	case ChainChecked:
		return "checked"
	}
	return "?"
}

// Config selects the implementation trade-offs of the DBT engine. Every
// field toggles or scales a real code path, so two configs differ in
// measured wall-clock exactly the way two QEMU releases do. The
// internal/versions package defines one Config per modelled QEMU
// release.
type Config struct {
	// Name identifies the configuration (e.g. a QEMU version string).
	Name string

	// OptLevel selects translator optimisation passes:
	//   0: straight lowering;
	//   1: + constant folding of MOVI/MOVT pairs and NOP elimination;
	//   2: + compare/branch fusion.
	// Higher levels spend more time translating and produce faster
	// code ("Improvements to the TCG optimiser", QEMU v2.0 changelog).
	OptLevel int

	// Chain is the block-chaining policy for same-page direct
	// successors.
	Chain ChainPolicy

	// LookupDepth is the number of hashed probe layers tried before
	// falling back to the authoritative translation-cache map: 1
	// models the classic direct-mapped jump cache, 2 adds a second
	// probe layer (more bookkeeping per miss), and 3 additionally
	// deep-validates every probe hit against the emitted host code.
	LookupDepth int

	// LazyFlush switches full-flush handling of the jump caches from
	// eagerly zeroing them (32 KiB of memory traffic per flush) to an
	// epoch bump with per-slot validation — the flush-path optimisation
	// modelled after QEMU's 2.4-era TLB/jump-cache rework.
	LazyFlush bool

	// TLBBits sizes the L1 softMMU page cache (1<<TLBBits entries per
	// MMU index and access type).
	TLBBits int

	// VictimTLB enables the 8-entry fully associative victim cache
	// behind the L1, QEMU's multi-level page-cache design.
	VictimTLB bool

	// DataFaultFastPath skips the translate-back state recovery on
	// data aborts (the v2.5.0-rc0 improvement the paper spotlights:
	// ~8x on ARM, ~4x on x86 for the Data Access Fault benchmark).
	DataFaultFastPath bool

	// ExcSyncWords is the amount of auxiliary CPU state (in words)
	// serialised on every exception entry; it grew release by release.
	ExcSyncWords int

	// HelperSaveWords is the CPU state (in words) saved and restored
	// around every helper call (device or coprocessor access).
	HelperSaveWords int

	// WalkExtraChecks models the growing complexity of QEMU's ARM MMU
	// code (more architecture variants and attributes evaluated per
	// translation-table walk).
	WalkExtraChecks int

	// BlockCap is the maximum guest instructions per translated block.
	BlockCap int

	// Superblock, when greater than 1, lets the translator chain
	// straight-line successors across basic-block boundaries into one
	// translation unit: an unconditional same-page direct branch (or a
	// fall-through at BlockCap) is followed at translate time instead
	// of returning to the dispatcher, up to Superblock basic blocks per
	// unit. A backward branch to an already-translated address unrolls
	// the loop into the unit. 0 or 1 disables superblocks — the default,
	// so every pre-superblock content key stays valid verbatim.
	Superblock int

	// ChainLimit caps the total guest instructions one superblock may
	// cover. 0 means Superblock*BlockCap. It only takes effect when
	// Superblock enables chaining.
	ChainLimit int
}

// DefaultConfig is a modern, fully featured configuration, matching the
// v2.5.0-rc2 setup used for the paper's Fig. 7 measurements.
func DefaultConfig() Config {
	return Config{
		Name:              "default",
		OptLevel:          2,
		Chain:             ChainChecked,
		LookupDepth:       3,
		LazyFlush:         true,
		TLBBits:           7,
		VictimTLB:         true,
		DataFaultFastPath: true,
		ExcSyncWords:      64,
		HelperSaveWords:   48,
		WalkExtraChecks:   88,
		BlockCap:          64,
	}
}

func (c Config) withDefaults() Config {
	if c.BlockCap <= 0 {
		c.BlockCap = 64
	}
	if c.TLBBits <= 0 {
		c.TLBBits = 8
	}
	if c.LookupDepth <= 0 {
		c.LookupDepth = 1
	}
	return c
}

// superblockCap returns the effective (segments, instructions) budget
// for one translation unit: (1, BlockCap) when superblocks are off.
func (c Config) superblockCap() (segs, insns int) {
	if c.Superblock <= 1 {
		return 1, c.BlockCap
	}
	insns = c.ChainLimit
	if insns <= 0 {
		insns = c.Superblock * c.BlockCap
	}
	// The per-uop retire counter is 16-bit; budgets beyond it could
	// not account instructions exactly.
	if insns > 0xFFFF {
		insns = 0xFFFF
	}
	return c.Superblock, insns
}
