package dbt

import (
	"simbench/internal/isa"
	"simbench/internal/mmu"
)

// The softMMU: QEMU-style multi-level page caches. There is one L1
// direct-mapped array per (MMU index, access type) pair — MMU index 0
// is kernel, 1 is user (non-privileged LDT/STT accesses always use
// index 1) — and an optional 8-entry fully associative victim cache
// behind each, which is the "Multi-level Page Cache" row of the
// paper's Fig. 4. Entries are only installed when the access they
// describe is permitted, so a hit needs no further checks.

const victimSize = 8

type softTLBEntry struct {
	tag   uint32 // (vpage << 1) | valid
	pbase uint32
	isRAM bool
}

const (
	accRead   = 0
	accWrite  = 1
	idxKernel = 0
	idxUser   = 1
)

type softTLB struct {
	bits    int
	mask    uint32
	l1      [2][2][]softTLBEntry // [mmuIdx][accType]
	victim  [2][2][victimSize]softTLBEntry
	vnext   [2][2]int
	useVict bool
}

func newSoftTLB(bits int, victim bool) *softTLB {
	t := &softTLB{bits: bits, mask: uint32(1<<bits) - 1, useVict: victim}
	for i := 0; i < 2; i++ {
		for a := 0; a < 2; a++ {
			t.l1[i][a] = make([]softTLBEntry, 1<<bits)
		}
	}
	return t
}

func (t *softTLB) flushAll() {
	for i := 0; i < 2; i++ {
		for a := 0; a < 2; a++ {
			for j := range t.l1[i][a] {
				t.l1[i][a][j] = softTLBEntry{}
			}
			t.victim[i][a] = [victimSize]softTLBEntry{}
		}
	}
}

func (t *softTLB) flushPage(va uint32) {
	vp := va >> isa.PageShift
	tag := vp<<1 | 1
	for i := 0; i < 2; i++ {
		for a := 0; a < 2; a++ {
			ent := &t.l1[i][a][vp&t.mask]
			if ent.tag == tag {
				*ent = softTLBEntry{}
			}
			for j := range t.victim[i][a] {
				if t.victim[i][a][j].tag == tag {
					t.victim[i][a][j] = softTLBEntry{}
				}
			}
		}
	}
}

// probe looks va up in the L1 and victim levels. On a victim hit the
// entry is promoted to L1 (swapping with the displaced entry), QEMU's
// exact scheme.
func (t *softTLB) probe(mmuIdx, acc int, va uint32) (softTLBEntry, bool) {
	vp := va >> isa.PageShift
	tag := vp<<1 | 1
	l1 := &t.l1[mmuIdx][acc][vp&t.mask]
	if l1.tag == tag {
		return *l1, true
	}
	if t.useVict {
		v := &t.victim[mmuIdx][acc]
		for j := range v {
			if v[j].tag == tag {
				*l1, v[j] = v[j], *l1
				return *l1, true
			}
		}
	}
	return softTLBEntry{}, false
}

// install fills the L1 slot for va, displacing the previous occupant
// into the victim cache when enabled.
func (t *softTLB) install(mmuIdx, acc int, va uint32, ent softTLBEntry) {
	vp := va >> isa.PageShift
	ent.tag = vp<<1 | 1
	l1 := &t.l1[mmuIdx][acc][vp&t.mask]
	if t.useVict && l1.tag != 0 {
		v := &t.victim[mmuIdx][acc]
		v[t.vnext[mmuIdx][acc]] = *l1
		t.vnext[mmuIdx][acc] = (t.vnext[mmuIdx][acc] + 1) % victimSize
	}
	*l1 = ent
}

// walkChecked performs the architectural page walk plus the configured
// extra attribute computations, modelling the growing complexity of
// QEMU's translation-table code (memory types, domains, access bits
// for every supported architecture variant). Attribute decode only
// happens for valid descriptors — faulting walks return early. The
// scratch accumulator is stored on the engine so the extra work cannot
// be optimised away.
func (e *Engine) walkChecked(va uint32) (mmu.PTE, isa.FaultCode) {
	pte, levels, fault := mmu.Walk(e.m.Bus, e.m.TTBR(), e.m.FormatB(), va)
	e.st.PageWalks++
	e.st.WalkLevels += uint64(levels)
	if fault != isa.FaultNone {
		return pte, fault
	}
	acc := e.walkScratch
	for i := 0; i < e.cfg.WalkExtraChecks; i++ {
		acc = acc*31 + pte.PhysPage + uint32(i)
		acc ^= va >> (uint(i) & 7)
	}
	e.walkScratch = acc
	return pte, fault
}

// dataAccess translates va for a data access of the given type,
// filling the softMMU on miss. It returns the physical address and
// whether it is RAM-backed.
func (e *Engine) dataAccess(va uint32, write, asUser bool) (pa uint32, isRAM bool, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		return va, m.Bus.IsRAM(va, 1), isa.FaultNone
	}
	mmuIdx := idxKernel
	if !m.CPU.Kernel || asUser {
		mmuIdx = idxUser
	}
	acc := accRead
	if write {
		acc = accWrite
	}
	if ent, ok := e.h.dtlb.probe(mmuIdx, acc, va); ok {
		e.st.TLBHits++
		return ent.pbase | va&isa.PageMask, ent.isRAM, isa.FaultNone
	}
	e.st.TLBMisses++
	pte, f := e.walkChecked(va)
	if f != isa.FaultNone {
		return 0, false, f
	}
	if f := mmu.Check(pte, mmuIdx == idxKernel, write); f != isa.FaultNone {
		return 0, false, f
	}
	ent := softTLBEntry{
		pbase: pte.PhysPage,
		isRAM: m.Bus.IsRAM(pte.PhysPage, isa.PageSize),
	}
	e.h.dtlb.install(mmuIdx, acc, va, ent)
	return pte.PhysPage | va&isa.PageMask, ent.isRAM, isa.FaultNone
}

// codeAccess translates a fetch address through the instruction-side
// TLB. Code must be RAM-backed.
func (e *Engine) codeAccess(va uint32) (pa uint32, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		if !m.Bus.IsRAM(va, isa.WordBytes) {
			return 0, isa.FaultBus
		}
		return va, isa.FaultNone
	}
	mmuIdx := idxKernel
	if !m.CPU.Kernel {
		mmuIdx = idxUser
	}
	if ent, ok := e.h.itlb.probe(mmuIdx, accRead, va); ok {
		return ent.pbase | va&isa.PageMask, isa.FaultNone
	}
	pte, f := e.walkChecked(va)
	if f != isa.FaultNone {
		return 0, f
	}
	if f := mmu.Check(pte, mmuIdx == idxKernel, false); f != isa.FaultNone {
		return 0, f
	}
	if !m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
		return 0, isa.FaultBus
	}
	e.h.itlb.install(mmuIdx, accRead, va, softTLBEntry{pbase: pte.PhysPage, isRAM: true})
	return pte.PhysPage | va&isa.PageMask, isa.FaultNone
}
