// Package detailed implements the detailed-interpreter engine, modelled
// on Gem5 (non-cycle-accurate configuration) as characterised in the
// paper's Fig. 4: every instruction is decoded afresh, data and
// instruction accesses go through a modelled set-associative TLB with
// LRU replacement and a multi-step table walker, and every instruction
// is pushed through a five-stage pipeline event model with detailed
// statistics. The machinery is what makes detailed simulators one to
// two orders of magnitude slower than fast interpreters — the gap the
// Code Generation and Control Flow benchmarks quantify.
package detailed

import (
	"simbench/internal/engine"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/mmu"
)

const (
	tlbSets     = 16
	tlbWays     = 4
	tickQuantum = 4096
)

type tlbEntry struct {
	tag   uint32 // vpage<<1 | valid
	pbase uint32
	flags uint8
	lru   uint64
}

const (
	fWrite uint8 = 1 << 0
	fUser  uint8 = 1 << 1
	fRAM   uint8 = 1 << 2
)

// modelTLB is a set-associative TLB with true LRU replacement — a
// hardware-like structure rather than a simulator page cache.
type modelTLB struct {
	sets      [tlbSets][tlbWays]tlbEntry
	clock     uint64
	evictions uint64
}

func (t *modelTLB) lookup(vpage uint32) (*tlbEntry, bool) {
	set := &t.sets[vpage%tlbSets]
	tag := vpage<<1 | 1
	for w := range set {
		if set[w].tag == tag {
			t.clock++
			set[w].lru = t.clock
			return &set[w], true
		}
	}
	return nil, false
}

func (t *modelTLB) fill(vpage uint32, ent tlbEntry) {
	set := &t.sets[vpage%tlbSets]
	victim := 0
	for w := 1; w < tlbWays; w++ {
		if set[w].tag&1 == 0 {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	if set[victim].tag&1 != 0 {
		t.evictions++
	}
	t.clock++
	ent.tag = vpage<<1 | 1
	ent.lru = t.clock
	set[victim] = ent
}

func (t *modelTLB) flushPage(va uint32) {
	vpage := va >> isa.PageShift
	set := &t.sets[vpage%tlbSets]
	tag := vpage<<1 | 1
	for w := range set {
		if set[w].tag == tag {
			set[w] = tlbEntry{}
		}
	}
}

func (t *modelTLB) flushAll() { t.sets = [tlbSets][tlbWays]tlbEntry{} }

// pipeline stage identifiers for the event model.
const (
	stFetch = iota
	stDecode
	stExecute
	stMem
	stWriteback
	numStages
)

// traceRec is one entry of the diagnostic trace ring every detailed
// simulator keeps.
type traceRec struct {
	pc, ea, res uint32
	op          uint8
}

// hart is the per-core slice of engine state: each simulated core
// models its own instruction and data TLBs, as on real hardware.
type hart struct {
	m     *machine.Machine
	itlb  modelTLB
	dtlb  modelTLB
	insns uint64 // retired instructions on this hart
}

// InvalidatePage implements machine.TLBListener.
func (h *hart) InvalidatePage(va uint32) {
	h.itlb.flushPage(va)
	h.dtlb.flushPage(va)
}

// InvalidateAll implements machine.TLBListener.
func (h *hart) InvalidateAll() {
	h.itlb.flushAll()
	h.dtlb.flushAll()
}

// Detailed is the detailed-interpreter engine.
type Detailed struct {
	m     *machine.Machine // current hart's machine
	h     *hart            // current hart
	harts []*hart
	st    engine.Stats

	tick                        uint64
	stageTicks                  [numStages]uint64
	opHist                      [isa.NumOps]uint64
	branchTaken, branchNotTaken uint64
	trace                       [256]traceRec
	traceHead                   int
	depScratch                  uint32

	mem *memHierarchy
	bp  branchPredictor
	evq []event
}

// New returns a detailed-interpreter engine.
func New() *Detailed { return &Detailed{} }

// Name implements engine.Engine.
func (e *Detailed) Name() string { return "detailed" }

// Features implements engine.Engine (the paper's Fig. 4 Gem5 row).
func (e *Detailed) Features() engine.Features {
	return engine.Features{
		ExecutionModel: "Interpreter",
		MemoryAccess:   "Modelled TLB",
		CodeGeneration: "None",
		CtrlFlowInter:  "Interpreted",
		CtrlFlowIntra:  "Interpreted",
		Interrupts:     "Instruction Boundaries",
		SyncExceptions: "Interpreted",
		UndefInsn:      "Interpreted",
	}
}

// Tick returns the modelled tick counter (one per pipeline event).
func (e *Detailed) Tick() uint64 { return e.tick }

// latency models a per-class execution latency in ticks.
func latency(op isa.Op) uint64 {
	switch op {
	case isa.OpMUL, isa.OpMULI:
		return 3
	case isa.OpLDW, isa.OpSTW, isa.OpLDB, isa.OpSTB, isa.OpLDT, isa.OpSTT,
		isa.OpLDX, isa.OpSTX:
		return 2
	default:
		return 1
	}
}

// record pushes one instruction through the pipeline event model and
// the statistics machinery. Every instruction schedules one event per
// pipeline stage into a priority queue and drains it in tick order —
// the event-driven core that detailed simulators are built around and
// the reason they are an order of magnitude slower than fast
// interpreters, whatever the instruction does.
func (e *Detailed) record(pc uint32, in isa.Inst, ea, res uint32) {
	lat := latency(in.Op)
	// Schedule the stage events with their per-stage delays.
	e.evq = e.evq[:0]
	base := e.tick
	for s := 0; s < numStages; s++ {
		d := uint64(s) + 1
		if s == stExecute {
			d += lat - 1
		}
		e.pushEvent(event{tick: base + d, stage: uint8(s), pc: pc})
	}
	// Extra micro-events: operand read and scoreboard release.
	e.pushEvent(event{tick: base + 1, stage: stDecode, pc: pc ^ uint32(in.Ra)})
	e.pushEvent(event{tick: base + lat + 2, stage: stWriteback, pc: pc ^ uint32(in.Rd)})
	// Drain in tick order, advancing the global clock.
	for len(e.evq) > 0 {
		ev := e.popEvent()
		if ev.tick > e.tick {
			e.tick = ev.tick
		}
		e.stageTicks[ev.stage] = e.tick
	}
	e.opHist[in.Op&(isa.NumOps-1)]++
	// Dependency bookkeeping: fold source/destination registers into a
	// running scoreboard word.
	e.depScratch = e.depScratch<<1 ^ uint32(in.Rd)<<8 ^ uint32(in.Ra)<<4 ^ uint32(in.Rb) ^ uint32(in.Op)
	e.trace[e.traceHead] = traceRec{pc: pc, ea: ea, res: res, op: uint8(in.Op)}
	e.traceHead = (e.traceHead + 1) & 255
}

// event is one scheduled pipeline event.
type event struct {
	tick  uint64
	stage uint8
	pc    uint32
}

// pushEvent inserts into the binary min-heap.
func (e *Detailed) pushEvent(ev event) {
	e.evq = append(e.evq, ev)
	i := len(e.evq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.evq[parent].tick <= e.evq[i].tick {
			break
		}
		e.evq[parent], e.evq[i] = e.evq[i], e.evq[parent]
		i = parent
	}
}

// popEvent removes the earliest event.
func (e *Detailed) popEvent() event {
	top := e.evq[0]
	last := len(e.evq) - 1
	e.evq[0] = e.evq[last]
	e.evq = e.evq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(e.evq) && e.evq[l].tick < e.evq[small].tick {
			small = l
		}
		if r < len(e.evq) && e.evq[r].tick < e.evq[small].tick {
			small = r
		}
		if small == i {
			break
		}
		e.evq[i], e.evq[small] = e.evq[small], e.evq[i]
		i = small
	}
	return top
}

func (e *Detailed) reset(harts []*machine.Machine) {
	e.st = engine.Stats{}
	e.tick = 0
	e.opHist = [isa.NumOps]uint64{}
	if e.mem == nil {
		e.mem = newHierarchy()
	}
	e.mem.reset()
	e.bp.reset()
	e.harts = e.harts[:0]
	for _, m := range harts {
		h := &hart{m: m}
		m.ClearTLBListeners()
		m.AddTLBListener(h)
		e.harts = append(e.harts, h)
	}
	e.attach(e.harts[0])
}

// attach makes h the current hart for the step/translate fast paths.
func (e *Detailed) attach(h *hart) {
	e.h = h
	e.m = h.m
}

// translate resolves a data access through the modelled TLB, walking
// the in-memory tables on a miss.
func (e *Detailed) translate(va uint32, write, asUser bool) (pa uint32, isRAM bool, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		return va, m.Bus.IsRAM(va, 1), isa.FaultNone
	}
	vpage := va >> isa.PageShift
	dtlb := &e.h.dtlb
	ent, hit := dtlb.lookup(vpage)
	if !hit {
		e.st.TLBMisses++
		pte, levels, f := mmu.Walk(m.Bus, m.TTBR(), m.FormatB(), va)
		e.st.PageWalks++
		e.st.WalkLevels += uint64(levels)
		e.tick += uint64(levels) * 4 // walker events
		if f != isa.FaultNone {
			return 0, false, f
		}
		ne := tlbEntry{pbase: pte.PhysPage}
		if pte.Writable {
			ne.flags |= fWrite
		}
		if pte.User {
			ne.flags |= fUser
		}
		if m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
			ne.flags |= fRAM
		}
		dtlb.fill(vpage, ne)
		ent, _ = dtlb.lookup(vpage)
	} else {
		e.st.TLBHits++
	}
	kernel := m.CPU.Kernel && !asUser
	if !kernel && ent.flags&fUser == 0 {
		return 0, false, isa.FaultPermission
	}
	if write && ent.flags&fWrite == 0 {
		return 0, false, isa.FaultPermission
	}
	return ent.pbase | va&isa.PageMask, ent.flags&fRAM != 0, isa.FaultNone
}

// fetch resolves the instruction address through the modelled ITLB.
func (e *Detailed) fetch(pc uint32) (pa uint32, fault isa.FaultCode) {
	m := e.m
	if !m.MMUEnabled() {
		if !m.Bus.IsRAM(pc, isa.WordBytes) {
			return 0, isa.FaultBus
		}
		return pc, isa.FaultNone
	}
	vpage := pc >> isa.PageShift
	itlb := &e.h.itlb
	ent, hit := itlb.lookup(vpage)
	if !hit {
		pte, levels, f := mmu.Walk(m.Bus, m.TTBR(), m.FormatB(), pc)
		e.st.PageWalks++
		e.st.WalkLevels += uint64(levels)
		e.tick += uint64(levels) * 4
		if f != isa.FaultNone {
			return 0, f
		}
		ne := tlbEntry{pbase: pte.PhysPage}
		if pte.User {
			ne.flags |= fUser
		}
		if m.Bus.IsRAM(pte.PhysPage, isa.PageSize) {
			ne.flags |= fRAM
		}
		itlb.fill(vpage, ne)
		ent, _ = itlb.lookup(vpage)
	}
	if !m.CPU.Kernel && ent.flags&fUser == 0 {
		return 0, isa.FaultPermission
	}
	if ent.flags&fRAM == 0 {
		return 0, isa.FaultBus
	}
	return ent.pbase | pc&isa.PageMask, isa.FaultNone
}

// Run implements engine.Engine.
func (e *Detailed) Run(harts []*machine.Machine, limit uint64) (engine.Stats, error) {
	e.reset(harts)
	var total uint64
	for {
		running := false
		for _, h := range e.harts {
			if h.m.Halted {
				continue
			}
			running = true
			if err := e.runSlice(h, &total, limit); err != nil {
				e.st.Instructions = total
				return e.st, err
			}
		}
		if !running {
			break
		}
	}
	e.st.Instructions = total
	return e.st, nil
}

// runSlice executes one scheduling quantum on h. The tick and limit
// checks key off the hart's own retired count, so at one core the
// instruction stream is bit-identical to the pre-SMP engine.
func (e *Detailed) runSlice(h *hart, total *uint64, limit uint64) error {
	e.attach(h)
	m := h.m
	cpu := &m.CPU
	stop := h.insns + engine.SchedQuantum
	for !m.Halted && h.insns < stop {
		if *total >= limit {
			return engine.ErrLimit
		}
		if m.TickFn != nil && h.insns%tickQuantum == 0 && h.insns != 0 {
			m.TickFn(tickQuantum)
		}
		if m.IRQPending() {
			m.Enter(isa.ExcIRQ, cpu.PC)
			e.st.IRQsDelivered++
			e.st.ExceptionsTaken++
			continue
		}
		pc := cpu.PC
		pa, fault := e.fetch(pc)
		if fault != isa.FaultNone {
			m.EnterMemFault(isa.ExcInstFault, fault, pc, false, pc)
			e.st.ExceptionsTaken++
			continue
		}
		e.tick += e.mem.fetchAccess(pa)
		// No decode cache: a fresh decode of the raw word every time.
		in := isa.Decode(m.Bus.ReadWordRAM(pa))
		h.insns++
		*total++
		e.step(in, pc)
	}
	return nil
}

func (e *Detailed) undef(pc uint32) {
	e.m.Enter(isa.ExcUndef, pc+4)
	e.st.ExceptionsTaken++
}

// step executes one instruction with full detail accounting. The
// architectural semantics are identical to the reference interpreter.
func (e *Detailed) step(in isa.Inst, pc uint32) {
	m := e.m
	cpu := &m.CPU
	r := &cpu.Regs
	next := pc + 4
	var ea, res uint32
	switch in.Op {
	case isa.OpNOP:
	case isa.OpADD:
		res = r[in.Ra] + r[in.Rb]
		r[in.Rd] = res
	case isa.OpSUB:
		res = r[in.Ra] - r[in.Rb]
		r[in.Rd] = res
	case isa.OpAND:
		res = r[in.Ra] & r[in.Rb]
		r[in.Rd] = res
	case isa.OpOR:
		res = r[in.Ra] | r[in.Rb]
		r[in.Rd] = res
	case isa.OpXOR:
		res = r[in.Ra] ^ r[in.Rb]
		r[in.Rd] = res
	case isa.OpSHL:
		res = r[in.Ra] << (r[in.Rb] & 31)
		r[in.Rd] = res
	case isa.OpSHR:
		res = r[in.Ra] >> (r[in.Rb] & 31)
		r[in.Rd] = res
	case isa.OpSRA:
		res = uint32(int32(r[in.Ra]) >> (r[in.Rb] & 31))
		r[in.Rd] = res
	case isa.OpMUL:
		res = r[in.Ra] * r[in.Rb]
		r[in.Rd] = res
	case isa.OpCMP:
		cpu.Flags = isa.Sub(r[in.Ra], r[in.Rb])
	case isa.OpMOV:
		res = r[in.Ra]
		r[in.Rd] = res
	case isa.OpNOT:
		res = ^r[in.Ra]
		r[in.Rd] = res
	case isa.OpADDI:
		res = r[in.Ra] + uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpSUBI:
		res = r[in.Ra] - uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpANDI:
		res = r[in.Ra] & uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpORI:
		res = r[in.Ra] | uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpXORI:
		res = r[in.Ra] ^ uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpSHLI:
		res = r[in.Ra] << (uint32(in.Imm) & 31)
		r[in.Rd] = res
	case isa.OpSHRI:
		res = r[in.Ra] >> (uint32(in.Imm) & 31)
		r[in.Rd] = res
	case isa.OpSRAI:
		res = uint32(int32(r[in.Ra]) >> (uint32(in.Imm) & 31))
		r[in.Rd] = res
	case isa.OpMULI:
		res = r[in.Ra] * uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpCMPI:
		cpu.Flags = isa.Sub(r[in.Ra], uint32(in.Imm))
	case isa.OpMOVI:
		res = uint32(in.Imm)
		r[in.Rd] = res
	case isa.OpMOVT:
		res = r[in.Rd]&0xFFFF | uint32(in.Imm)<<16
		r[in.Rd] = res
	case isa.OpLDW:
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 4, false)
		return
	case isa.OpSTW:
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 4, false)
		return
	case isa.OpLDB:
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 1, false)
		return
	case isa.OpSTB:
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 1, false)
		return
	case isa.OpLDX:
		e.loadExclusive(in, pc, r[in.Ra])
		return
	case isa.OpSTX:
		e.storeExclusive(in, pc, r[in.Ra])
		return
	case isa.OpLDT:
		if !m.NonPrivSupported() {
			e.undef(pc)
			return
		}
		e.st.NonPrivAccesses++
		e.load(in, pc, r[in.Ra]+uint32(in.Imm), 4, true)
		return
	case isa.OpSTT:
		if !m.NonPrivSupported() {
			e.undef(pc)
			return
		}
		e.st.NonPrivAccesses++
		e.store(in, pc, r[in.Ra]+uint32(in.Imm), 4, true)
		return
	case isa.OpB:
		taken := in.Cond.Eval(cpu.Flags)
		if taken {
			next = pc + 4 + uint32(in.Off)
			e.branchTaken++
		} else {
			e.branchNotTaken++
		}
		e.tick += e.bp.predictAndTrain(pc, taken, next)
	case isa.OpBL:
		taken := in.Cond.Eval(cpu.Flags)
		if taken {
			r[isa.LR] = pc + 4
			next = pc + 4 + uint32(in.Off)
			e.branchTaken++
		} else {
			e.branchNotTaken++
		}
		e.tick += e.bp.predictAndTrain(pc, taken, next)
	case isa.OpBR:
		next = r[in.Ra] &^ 3
		e.branchTaken++
		e.tick += e.bp.predictAndTrain(pc, true, next)
	case isa.OpBLR:
		target := r[in.Ra] &^ 3
		r[isa.LR] = pc + 4
		next = target
		e.branchTaken++
		e.tick += e.bp.predictAndTrain(pc, true, next)
	case isa.OpSVC:
		e.record(pc, in, 0, 0)
		m.Enter(isa.ExcSyscall, pc+4)
		e.st.ExceptionsTaken++
		return
	case isa.OpERET:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.record(pc, in, 0, 0)
		m.ERET()
		return
	case isa.OpMRS:
		v, ok := m.ReadCtrl(isa.CtrlReg(in.Imm))
		if !ok {
			e.undef(pc)
			return
		}
		res = v
		r[in.Rd] = v
	case isa.OpMSR:
		if !m.WriteCtrl(isa.CtrlReg(in.Imm), r[in.Rd]) {
			e.undef(pc)
			return
		}
	case isa.OpCPRD:
		v, ok := m.CoprocRead(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF)
		if !ok {
			e.undef(pc)
			return
		}
		e.st.CoprocAccesses++
		res = v
		r[in.Rd] = v
	case isa.OpCPWR:
		if !m.CoprocWrite(uint32(in.Imm)>>8, uint32(in.Imm)&0xFF, r[in.Rd]) {
			e.undef(pc)
			return
		}
		e.st.CoprocAccesses++
	case isa.OpTLBI:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.st.TLBInvalidates++
		m.ShootdownPage(r[in.Ra])
	case isa.OpTLBIA:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.st.TLBFlushes++
		m.ShootdownAll()
	case isa.OpHALT:
		if !cpu.Kernel {
			e.undef(pc)
			return
		}
		e.record(pc, in, 0, 0)
		m.Halted = true
		return
	default:
		e.undef(pc)
		return
	}
	e.record(pc, in, ea, res)
	cpu.PC = next
}

func (e *Detailed) load(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemReads++
	pa, isRAM, fault := e.translate(va, false, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	e.tick += e.mem.dataAccess(pa, false)
	var v uint32
	if isRAM {
		if size == 4 {
			v = m.Bus.ReadWordRAM(pa)
		} else {
			v = uint32(m.Bus.RAM[pa])
		}
	} else {
		e.st.DeviceAccesses++
		var f isa.FaultCode
		v, f = m.Bus.ReadPhys(pa, size)
		if f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, false, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	m.CPU.Regs[in.Rd] = v
	e.record(pc, in, va, v)
	m.CPU.PC = pc + 4
}

// loadExclusive implements LDX: a word load that arms this hart's
// reservation on the line. Exclusives are RAM-only.
func (e *Detailed) loadExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.MemReads++
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.translate(va, false, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, false, pc)
		e.st.ExceptionsTaken++
		return
	}
	e.tick += e.mem.dataAccess(pa, false)
	m.Mon.Arm(m.HartID, pa)
	v := m.Bus.ReadWordRAM(pa)
	m.CPU.Regs[in.Rd] = v
	e.record(pc, in, va, v)
	m.CPU.PC = pc + 4
}

// storeExclusive implements STX: the store succeeds (rd=0) only if the
// hart's reservation survived; otherwise rd=1 and memory is untouched.
func (e *Detailed) storeExclusive(in isa.Inst, pc, va uint32) {
	m := e.m
	va &^= 3
	e.st.ExclusiveOps++
	pa, isRAM, fault := e.translate(va, true, false)
	if fault == isa.FaultNone && !isRAM {
		fault = isa.FaultBus
	}
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	e.tick += e.mem.dataAccess(pa, true)
	if m.Mon.Exclusive(m.HartID, pa) {
		e.st.MemWrites++
		v := m.CPU.Regs[in.Rb]
		m.Bus.WriteWordRAM(pa, v)
		m.Mon.NoteStore(pa)
		e.record(pc, in, va, v)
		m.CPU.Regs[in.Rd] = 0
	} else {
		e.st.ExclusiveFails++
		e.record(pc, in, va, 1)
		m.CPU.Regs[in.Rd] = 1
	}
	m.CPU.PC = pc + 4
}

func (e *Detailed) store(in isa.Inst, pc, va uint32, size int, asUser bool) {
	m := e.m
	if size == 4 {
		va &^= 3
	}
	e.st.MemWrites++
	pa, isRAM, fault := e.translate(va, true, asUser)
	if fault != isa.FaultNone {
		m.EnterMemFault(isa.ExcDataFault, fault, va, true, pc)
		e.st.ExceptionsTaken++
		return
	}
	e.tick += e.mem.dataAccess(pa, true)
	v := m.CPU.Regs[in.Rd]
	if isRAM {
		if size == 4 {
			m.Bus.WriteWordRAM(pa, v)
		} else {
			m.Bus.RAM[pa] = byte(v)
		}
		if m.Mon.Armed() {
			m.Mon.NoteStore(pa)
		}
	} else {
		e.st.DeviceAccesses++
		if f := m.Bus.WritePhys(pa, size, v); f != isa.FaultNone {
			m.EnterMemFault(isa.ExcDataFault, f, va, true, pc)
			e.st.ExceptionsTaken++
			return
		}
	}
	e.record(pc, in, va, v)
	m.CPU.PC = pc + 4
}
