package detailed

import (
	"testing"

	"simbench/internal/asm"
	"simbench/internal/isa"
	"simbench/internal/machine"
	"simbench/internal/mmu"
	"simbench/internal/platform"
)

func runProg(t *testing.T, build func(a *asm.Assembler)) (*platform.Platform, *Detailed) {
	t.Helper()
	p := platform.New(machine.ProfileARM, 1<<20)
	a := asm.New()
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	e := New()
	if _, err := e.Run(p.Harts(), 5_000_000); err != nil {
		t.Fatalf("run: %v (pc=%#x)", err, p.M.CPU.PC)
	}
	return p, e
}

func TestTickAdvances(t *testing.T) {
	_, e := runProg(t, func(a *asm.Assembler) {
		a.MOVI(isa.R1, 100)
		a.Label("l")
		a.SUBI(isa.R1, isa.R1, 1)
		a.CMPI(isa.R1, 0)
		a.B(isa.CondNE, "l")
		a.HALT()
	})
	if e.Tick() == 0 {
		t.Error("tick did not advance")
	}
	// Every instruction passes through at least numStages events.
	if e.Tick() < 300*numStages {
		t.Errorf("tick %d suspiciously low", e.Tick())
	}
}

func TestModelTLBLRUEviction(t *testing.T) {
	var tlb modelTLB
	// Fill one set beyond capacity: pages that alias set 0.
	for i := 0; i < tlbWays+2; i++ {
		vp := uint32(i * tlbSets)
		tlb.fill(vp, tlbEntry{pbase: uint32(i) << 12})
	}
	if tlb.evictions != 2 {
		t.Errorf("evictions %d, want 2", tlb.evictions)
	}
	// The most recently filled entries must be present.
	if _, hit := tlb.lookup(uint32((tlbWays + 1) * tlbSets)); !hit {
		t.Error("latest fill missing")
	}
	// The earliest must be gone (LRU).
	if _, hit := tlb.lookup(0); hit {
		t.Error("LRU victim still present")
	}
}

func TestModelTLBFlushPage(t *testing.T) {
	var tlb modelTLB
	tlb.fill(5, tlbEntry{pbase: 0x5000})
	tlb.fill(6, tlbEntry{pbase: 0x6000})
	tlb.flushPage(5 << isa.PageShift)
	if _, hit := tlb.lookup(5); hit {
		t.Error("flushed page still present")
	}
	if _, hit := tlb.lookup(6); !hit {
		t.Error("unrelated page flushed")
	}
	tlb.flushAll()
	if _, hit := tlb.lookup(6); hit {
		t.Error("flushAll left entries")
	}
}

func TestCacheModelBehaviour(t *testing.T) {
	c := newCache(4, 2)
	if c.access(0x1000, false) {
		t.Error("first access must miss")
	}
	if !c.access(0x1000, false) {
		t.Error("second access must hit")
	}
	// Same set, different tags: way exhaustion evicts LRU.
	setSpan := uint32(4 << lineShift)
	c.access(0x1000+setSpan, false)  // second way
	c.access(0x1000+2*setSpan, true) // evicts 0x1000 (LRU), dirty
	if c.access(0x1000, false) {
		t.Error("evicted line still hits")
	}
	// The dirty line we just evicted must count a write-back.
	c.access(0x1000+3*setSpan, false)
	c.access(0x1000+4*setSpan, false)
	if c.wbacks == 0 {
		t.Error("no write-backs recorded")
	}
}

func TestBranchPredictorTrains(t *testing.T) {
	var bp branchPredictor
	pc, target := uint32(0x100), uint32(0x200)
	// First encounter mispredicts; after training it hits.
	if pen := bp.predictAndTrain(pc, true, target); pen == 0 {
		t.Error("untrained prediction should miss")
	}
	bp.predictAndTrain(pc, true, target)
	if pen := bp.predictAndTrain(pc, true, target); pen != 0 {
		t.Error("trained prediction should hit")
	}
	// Not-taken branches with matching counter state hit too.
	pc2 := uint32(0x300)
	bp.predictAndTrain(pc2, false, 0x304)
	if pen := bp.predictAndTrain(pc2, false, 0x304); pen != 0 {
		t.Error("not-taken prediction should hit")
	}
}

func TestDetailedCountsWalksThroughModelTLB(t *testing.T) {
	p := platform.New(machine.ProfileARM, 4<<20)
	a := asm.New()
	a.Label("_start")
	a.LoadImm32(isa.R1, 0x100000)
	a.MSR(isa.CtrlTTBR, isa.R1)
	a.MOVI(isa.R2, 1)
	a.MSR(isa.CtrlMMU, isa.R2)
	// Touch 200 distinct pages: far beyond the 64-entry modelled TLB.
	a.LoadImm32(isa.R3, 0x01000000)
	a.MOVI(isa.R4, 200)
	a.Label("l")
	a.LDW(isa.R5, isa.R3, 0)
	a.LoadImm32(isa.R6, isa.PageSize)
	a.ADD(isa.R3, isa.R3, isa.R6)
	a.SUBI(isa.R4, isa.R4, 1)
	a.CMPI(isa.R4, 0)
	a.B(isa.CondNE, "l")
	a.HALT()
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.M.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	tb, err := mmu.NewBuilder(p.M.Bus, 0x100000, 0x200000, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MapSection(0, 0, true, false); err != nil {
		t.Fatal(err)
	}
	if err := tb.MapRange(0x01000000, 0x200000, 200*isa.PageSize, true, false); err != nil {
		t.Fatal(err)
	}
	p.M.Reset()
	e := New()
	st, err := e.Run(p.Harts(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.TLBMisses < 200 {
		t.Errorf("TLB misses %d, want >= 200 (every page cold)", st.TLBMisses)
	}
	if st.PageWalks < 200 {
		t.Errorf("walks %d", st.PageWalks)
	}
}

func TestNoDecodeCacheMeansSMCIsFree(t *testing.T) {
	// The detailed engine decodes from RAM every time, so code
	// modification needs no special handling: patching is immediately
	// visible.
	p, _ := runProg(t, func(a *asm.Assembler) {
		patched := isa.Encode(isa.Inst{Op: isa.OpMOVI, Rd: isa.R9, Imm: 5})
		a.LA(isa.R1, "site")
		a.LoadImm32(isa.R2, patched)
		a.STW(isa.R2, isa.R1, 0)
		a.Label("site")
		a.NOP() // already overwritten by the time it executes
		a.HALT()
	})
	if p.M.CPU.Regs[isa.R9] != 5 {
		t.Errorf("patch not visible, r9=%d", p.M.CPU.Regs[isa.R9])
	}
}

func TestEventQueueOrdering(t *testing.T) {
	e := New()
	e.pushEvent(event{tick: 30})
	e.pushEvent(event{tick: 10})
	e.pushEvent(event{tick: 20})
	e.pushEvent(event{tick: 5})
	var ticks []uint64
	for len(e.evq) > 0 {
		ticks = append(ticks, e.popEvent().tick)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] < ticks[i-1] {
			t.Fatalf("events out of order: %v", ticks)
		}
	}
}
