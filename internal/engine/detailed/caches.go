package detailed

// Cache and branch-predictor models. A detailed simulator does not
// just interpret instructions — it pushes every fetch and data access
// through modelled microarchitectural structures. These models perform
// real tag matches, LRU updates, write-back bookkeeping and predictor
// training, which is exactly where the order-of-magnitude slowdown of
// detailed simulation comes from.

const lineShift = 6 // 64-byte lines

type cacheLine struct {
	tag   uint32 // (addr >> (lineShift+setBits)) << 1 | valid
	lru   uint64
	dirty bool
}

// cacheModel is a set-associative write-back cache with true LRU.
type cacheModel struct {
	sets    [][]cacheLine
	setMask uint32
	clock   uint64
	hits    uint64
	misses  uint64
	wbacks  uint64
}

func newCache(sets, ways int) *cacheModel {
	c := &cacheModel{setMask: uint32(sets - 1)}
	c.sets = make([][]cacheLine, sets)
	lines := make([]cacheLine, sets*ways)
	for i := range c.sets {
		c.sets[i], lines = lines[:ways:ways], lines[ways:]
	}
	return c
}

// access performs one lookup+fill and reports whether it hit.
func (c *cacheModel) access(pa uint32, write bool) bool {
	set := c.sets[(pa>>lineShift)&c.setMask]
	tag := (pa>>lineShift)/(c.setMask+1)<<1 | 1
	c.clock++
	for w := range set {
		if set[w].tag == tag {
			set[w].lru = c.clock
			if write {
				set[w].dirty = true
			}
			c.hits++
			return true
		}
	}
	// Miss: fill over the LRU way, writing back if dirty.
	victim := 0
	for w := 1; w < len(set); w++ {
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	if set[victim].tag&1 != 0 && set[victim].dirty {
		c.wbacks++
	}
	set[victim] = cacheLine{tag: tag, lru: c.clock, dirty: write}
	c.misses++
	return false
}

func (c *cacheModel) reset() {
	for _, set := range c.sets {
		for w := range set {
			set[w] = cacheLine{}
		}
	}
	c.hits, c.misses, c.wbacks, c.clock = 0, 0, 0, 0
}

// memHierarchy is the two-level hierarchy every access traverses.
type memHierarchy struct {
	l1i *cacheModel
	l1d *cacheModel
	l2  *cacheModel
}

func newHierarchy() *memHierarchy {
	return &memHierarchy{
		l1i: newCache(128, 2), // 16 KiB
		l1d: newCache(128, 4), // 32 KiB
		l2:  newCache(512, 8), // 256 KiB
	}
}

func (h *memHierarchy) reset() {
	h.l1i.reset()
	h.l1d.reset()
	h.l2.reset()
}

// fetchAccess models an instruction fetch; the returned latency feeds
// the tick counter.
func (h *memHierarchy) fetchAccess(pa uint32) uint64 {
	if h.l1i.access(pa, false) {
		return 1
	}
	if h.l2.access(pa, false) {
		return 10
	}
	return 60
}

// dataAccess models a data access.
func (h *memHierarchy) dataAccess(pa uint32, write bool) uint64 {
	if h.l1d.access(pa, write) {
		return 2
	}
	if h.l2.access(pa, write) {
		return 12
	}
	return 70
}

// branchPredictor is a 2-bit pattern-history table plus a direct-mapped
// BTB; every control-flow instruction trains it.
type branchPredictor struct {
	pht  [1024]uint8
	btb  [512]uint32 // target cache, tag folded in
	hits uint64
	miss uint64
}

func (p *branchPredictor) reset() {
	p.pht = [1024]uint8{}
	p.btb = [512]uint32{}
	p.hits, p.miss = 0, 0
}

// predictAndTrain runs the predictor for a branch at pc that resolved
// to (taken, target) and returns the mispredict penalty in ticks.
func (p *branchPredictor) predictAndTrain(pc uint32, taken bool, target uint32) uint64 {
	idx := (pc >> 2) & 1023
	ctr := p.pht[idx]
	predTaken := ctr >= 2
	bidx := (pc >> 2) & 511
	predTarget := p.btb[bidx]
	// Train.
	if taken && ctr < 3 {
		p.pht[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		p.pht[idx] = ctr - 1
	}
	p.btb[bidx] = target
	if predTaken == taken && (!taken || predTarget == target) {
		p.hits++
		return 0
	}
	p.miss++
	return 12 // flush penalty
}
