package simstored

import (
	"crypto/subtle"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxQuotaClients bounds the quota table: past it, buckets idle for a
// minute are evicted, and if every client is hot the table is cleared
// outright — a cleared bucket refills to burst, so the failure mode of
// an overfull table is brief over-admission, never unbounded memory.
const maxQuotaClients = 100_000

// bearerToken extracts the request's bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):], true
	}
	return "", false
}

// authorize enforces bearer auth when the server was given tokens.
// /healthz stays open — load balancers and the CI wait-for-ready loop
// probe it credential-less. Comparison is constant-time per token so
// the check leaks nothing about prefix matches.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if len(s.Tokens) == 0 || r.URL.Path == "/healthz" {
		return true
	}
	if tok, ok := bearerToken(r); ok {
		for _, want := range s.Tokens {
			if subtle.ConstantTimeCompare([]byte(tok), []byte(want)) == 1 {
				return true
			}
		}
	}
	s.metrics.authFailures.Inc()
	w.Header().Set("WWW-Authenticate", `Bearer realm="simstored"`)
	s.fail(w, r, http.StatusUnauthorized, "missing or invalid bearer token")
	return false
}

// clientID names the quota principal: the presented bearer token when
// auth is on (a credential is one client, however many processes share
// it — and an invalid token never reaches the quota gate), the remote
// host otherwise.
func (s *Server) clientID(r *http.Request) string {
	if len(s.Tokens) > 0 {
		if tok, ok := bearerToken(r); ok {
			return "tok:" + tok
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}

// quotaTable is the per-client token-bucket state behind -quota-req
// and -quota-bytes. Request admission costs one request token and, in
// arrears, the bytes the exchange moved.
type quotaTable struct {
	reqRate, reqBurst   float64
	byteRate, byteBurst float64

	mu      sync.Mutex
	clients map[string]*clientBuckets
}

type clientBuckets struct {
	req, bytes bucket
	touched    time.Time
}

// bucket is one token bucket. The byte bucket's level may go negative:
// a response's size is only known after it is sent, so bytes are
// charged in arrears and the debt blocks the client until refill pays
// it off — over one window a client still averages at most its rate.
type bucket struct {
	level float64
	last  time.Time
}

func (b *bucket) refill(now time.Time, rate, burst float64) {
	if b.last.IsZero() {
		b.level = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.level = math.Min(burst, b.level+rate*dt)
	}
	b.last = now
}

// newQuotaTable returns nil when both rates are unlimited — the nil
// table is the "no quotas" fast path.
func newQuotaTable(reqPerSec, bytesPerSec float64) *quotaTable {
	if reqPerSec <= 0 && bytesPerSec <= 0 {
		return nil
	}
	qt := &quotaTable{clients: make(map[string]*clientBuckets)}
	if reqPerSec > 0 {
		// Burst of twice the rate: a client may front-load a second's
		// worth of traffic (a matrix warmup does) without tripping.
		qt.reqRate, qt.reqBurst = reqPerSec, math.Max(2*reqPerSec, 1)
	}
	if bytesPerSec > 0 {
		qt.byteRate, qt.byteBurst = bytesPerSec, 2*bytesPerSec
	}
	return qt
}

// admit charges one request (and its declared body size) against the
// client's buckets. A non-empty kind means rejection, with how long
// until the tripped bucket admits again.
func (qt *quotaTable) admit(id string, now time.Time, reqBytes int64) (kind string, wait time.Duration) {
	qt.mu.Lock()
	defer qt.mu.Unlock()
	c := qt.client(id)
	c.touched = now
	if qt.reqRate > 0 {
		c.req.refill(now, qt.reqRate, qt.reqBurst)
		if c.req.level < 1 {
			return "requests", refillWait(1-c.req.level, qt.reqRate)
		}
	}
	if qt.byteRate > 0 {
		c.bytes.refill(now, qt.byteRate, qt.byteBurst)
		if c.bytes.level <= 0 {
			return "bytes", refillWait(1-c.bytes.level, qt.byteRate)
		}
	}
	if qt.reqRate > 0 {
		c.req.level--
	}
	if qt.byteRate > 0 && reqBytes > 0 {
		c.bytes.level -= float64(reqBytes)
	}
	return "", 0
}

// charge books bytes the exchange moved beyond what admit saw — the
// response body — against the client's byte bucket.
func (qt *quotaTable) charge(id string, now time.Time, n int64) {
	if qt == nil || qt.byteRate <= 0 || n <= 0 {
		return
	}
	qt.mu.Lock()
	defer qt.mu.Unlock()
	c := qt.client(id)
	c.bytes.refill(now, qt.byteRate, qt.byteBurst)
	c.bytes.level -= float64(n)
}

// client returns (creating if needed) one principal's buckets,
// evicting idle ones when the table is full. Called with mu held.
func (qt *quotaTable) client(id string) *clientBuckets {
	c := qt.clients[id]
	if c == nil {
		if len(qt.clients) >= maxQuotaClients {
			qt.evictLocked()
		}
		c = &clientBuckets{}
		qt.clients[id] = c
	}
	return c
}

func (qt *quotaTable) evictLocked() {
	var cutoff time.Time
	for _, c := range qt.clients {
		if c.touched.After(cutoff) {
			cutoff = c.touched
		}
	}
	cutoff = cutoff.Add(-time.Minute)
	for id, c := range qt.clients {
		if c.touched.Before(cutoff) {
			delete(qt.clients, id)
		}
	}
	if len(qt.clients) >= maxQuotaClients {
		qt.clients = make(map[string]*clientBuckets)
	}
}

// refillWait is how long a bucket needs to accumulate deficit tokens.
func refillWait(deficit, rate float64) time.Duration {
	return time.Duration(deficit / rate * float64(time.Second))
}

// quotas lazily builds the quota table from the server's exported rate
// fields (set before serving, like Tokens).
func (s *Server) quotas() *quotaTable {
	s.quotaOnce.Do(func() { s.quota = newQuotaTable(s.ReqPerSec, s.BytesPerSec) })
	return s.quota
}

// clock is the quota gate's time source, injectable for tests.
func (s *Server) clock() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// admit runs the quota gate for one request. /healthz and /metrics are
// exempt: liveness probing and scraping must keep working exactly when
// the store is saturated enough for quotas to matter. The returned id
// is non-empty when the exchange must be byte-charged after the
// response is written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (id string, ok bool) {
	qt := s.quotas()
	if qt == nil || r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		return "", true
	}
	id = s.clientID(r)
	kind, wait := qt.admit(id, s.clock(), r.ContentLength)
	if kind != "" {
		secs := int(math.Ceil(wait.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.metrics.quotaRejects.With(kind).Inc()
		s.fail(w, r, http.StatusTooManyRequests, "%s quota exceeded; retry after %ds", kind, secs)
		return "", false
	}
	return id, true
}
