package simstored

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"simbench/internal/obs"
)

// serverMetrics are one server instance's counters, on a per-instance
// registry (not obs.Default) so a process embedding several servers —
// or a test running many — keeps their numbers apart. GET /metrics
// renders exactly this registry.
type serverMetrics struct {
	requests      *obs.CounterVec
	latency       *obs.HistogramVec
	bytes         *obs.CounterVec
	inFlight      *obs.Gauge
	objHits       *obs.Counter
	objMisses     *obs.Counter
	authFailures  *obs.Counter
	quotaRejects  *obs.CounterVec
	appendRetries *obs.Counter
	indexCells    *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		requests: reg.CounterVec("simstored_requests_total",
			"requests served, by route, method and status code", "route", "method", "code"),
		latency: reg.HistogramVec("simstored_request_seconds",
			"request handling latency by route", obs.DefBuckets, "route"),
		bytes: reg.CounterVec("simstored_response_bytes_total",
			"response body bytes sent by route", "route"),
		inFlight: reg.Gauge("simstored_requests_in_flight",
			"requests currently being handled"),
		objHits: reg.Counter("simstored_object_hits_total",
			"GET/HEAD object requests answered with a blob"),
		objMisses: reg.Counter("simstored_object_misses_total",
			"GET/HEAD object requests for keys the store does not hold"),
		authFailures: reg.Counter("simstored_auth_failures_total",
			"requests rejected with 401 for a missing or invalid bearer token"),
		quotaRejects: reg.CounterVec("simstored_quota_rejections_total",
			"requests rejected with 429, by the quota that tripped", "kind"),
		appendRetries: reg.Counter("simstored_history_append_retries_total",
			"history append attempts retried after losing the flock race to a colocated writer"),
		indexCells: reg.Gauge("simstored_history_index_cells",
			"cells currently held by the compacted per-cell history index"),
	}
}

// routeLabel collapses a request path onto its route, so object and
// baseline names do not explode the label space.
func routeLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/objects/"):
		return "/objects"
	case path == "/runs":
		return "/runs"
	case path == "/index":
		return "/index"
	case path == "/baselines" || strings.HasPrefix(path, "/baselines/"):
		return "/baselines"
	case path == "/healthz":
		return "/healthz"
	case path == "/metrics":
		return "/metrics"
	default:
		return "other"
	}
}

// countingWriter captures what the instrumentation and access log need
// from a response: the status code and the body byte count.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += int64(n)
	return n, err
}

// accessRecord is one JSONL access-log line. Field order is fixed by
// the struct, so lines are uniform and grep/jq-friendly.
type accessRecord struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote"`
	RequestID  string  `json:"request_id"`
}

// ServeHTTP instruments every request — metrics, the JSONL access log,
// and an X-Request-Id echoed back (generated when the client sent
// none) — around the auth gate, the quota gate, and the route dispatch
// in route. Gate rejections (401, 429) are counted and logged exactly
// like any other response.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = s.bootID + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	}
	w.Header().Set("X-Request-Id", id)
	cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
	s.metrics.inFlight.Inc()
	start := time.Now()
	if s.authorize(cw, r) {
		if qid, ok := s.admit(cw, r); ok {
			s.route(cw, r)
			// Response bytes are only known now; admit already charged
			// the request body, this books the rest in arrears.
			if qid != "" {
				s.quota.charge(qid, s.clock(), cw.bytes)
			}
		}
	}
	elapsed := time.Since(start)
	s.metrics.inFlight.Dec()

	route := routeLabel(r.URL.Path)
	s.metrics.requests.With(route, r.Method, strconv.Itoa(cw.status)).Inc()
	s.metrics.latency.With(route).Observe(elapsed.Seconds())
	s.metrics.bytes.With(route).Add(float64(cw.bytes))

	if s.AccessLog != nil {
		line, err := json.Marshal(accessRecord{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     cw.status,
			Bytes:      cw.bytes,
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Remote:     r.RemoteAddr,
			RequestID:  id,
		})
		if err == nil {
			s.logMu.Lock()
			s.AccessLog.Write(append(line, '\n'))
			s.logMu.Unlock()
		}
	}
}

// serveMetrics renders the server's registry in Prometheus text
// exposition format.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	if err := s.reg.WriteExposition(w); err != nil {
		s.logf("GET /metrics: write: %v", err)
	}
}

// newBootID returns a short random prefix distinguishing this server
// instance's generated request IDs from any other's.
func newBootID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "simstored"
	}
	return hex.EncodeToString(b[:])
}
