package simstored

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"simbench/internal/report"
	"simbench/internal/store"
)

// keyN is a distinct, syntactically valid content address per index.
func keyN(i int) string { return strings.Repeat(fmt.Sprintf("%02x", i), 32) }

func idxCell(benchName, key string) report.Record {
	return report.Record{Benchmark: benchName, Engine: "interp", Arch: "arm",
		Iters: 64, Repeats: 1, KernelSeconds: 0.1, Key: key}
}

func runLine(t *testing.T, host string, cells ...report.Record) []byte {
	t.Helper()
	b, err := json.Marshal(store.RunRecord{Label: "idx", Host: host, Schema: store.SchemaVersion, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fetchIndex(t *testing.T, base, host string) map[store.CellRef]string {
	t.Helper()
	resp := do(t, http.MethodGet, base+"/index?host="+url.QueryEscape(host), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /index: %s", resp.Status)
	}
	var cells []store.IndexCell
	if err := json.NewDecoder(resp.Body).Decode(&cells); err != nil {
		t.Fatal(err)
	}
	got := make(map[store.CellRef]string, len(cells))
	for _, c := range cells {
		got[c.Ref()] = c.Key
	}
	return got
}

// TestIndexEndpoint: /index serves, per host, exactly the map
// store.CoverageIndex would build from the full history — newest
// successful record per cell, unhosted records matching any host,
// failed and unkeyed cells invisible, foreign hosts invisible.
func TestIndexEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	me := runtime.GOOS + "/" + runtime.GOARCH

	// The index is meaningless without a host: content keys encode one.
	if resp := do(t, http.MethodGet, ts.URL+"/index", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hostless /index: %s, want 400", resp.Status)
	}
	// Empty index is an empty JSON array, not null.
	resp := do(t, http.MethodGet, ts.URL+"/index?host="+url.QueryEscape(me), nil)
	if body := bodyOf(t, resp); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty index body = %q, want []", body)
	}

	a1, a2, b1, c1, s2 := keyN(1), keyN(2), keyN(3), keyN(4), keyN(6)
	failed := idxCell("mem.cold", keyN(5))
	failed.Error = "boom"
	// The same benchmark at a different guest core count is a distinct
	// cell: it must neither shadow nor be shadowed by the 1-core entry.
	smp := idxCell("mem.hot", s2)
	smp.Cores = 2
	for _, line := range [][]byte{
		runLine(t, "", idxCell("mem.hot", a1)),                              // unhosted: any host's
		runLine(t, me, idxCell("mem.hot", a2), idxCell("mem.cold", b1)),     // newer run wins mem.hot
		runLine(t, "other/host", idxCell("mem.streaming", c1)),              // foreign host: invisible
		runLine(t, me, idxCell("exc.syscall", "not-a-content-key"), failed), // unparsable key, failed cell
		runLine(t, me, smp), // 2-core cell: own entry
	} {
		if resp := do(t, http.MethodPost, ts.URL+"/runs", line); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("POST run: %s", resp.Status)
		}
	}

	got := fetchIndex(t, ts.URL, me)
	f, err := os.Open(filepath.Join(srv.Dir(), "history.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, skipped, err := store.DecodeHistory(f)
	if err != nil || skipped != 0 {
		t.Fatalf("decode history: %v (skipped %d)", err, skipped)
	}
	if want := store.CoverageIndex(runs); !reflect.DeepEqual(got, want) {
		t.Errorf("index disagrees with CoverageIndex:\n got %v\nwant %v", got, want)
	}
	if len(got) != 3 || got[store.RefOfRecord(idxCell("mem.hot", ""))] != a2 ||
		got[store.RefOfRecord(idxCell("mem.cold", ""))] != b1 ||
		got[store.RefOfRecord(smp)] != s2 {
		t.Errorf("index = %v, want mem.hot→newest key, mem.cold→%s, and the 2-core cell→%s", got, b1, s2)
	}

	// The foreign host's view merges its own records with the unhosted
	// ones — and sees none of this host's.
	other := fetchIndex(t, ts.URL, "other/host")
	if len(other) != 2 || other[store.RefOfRecord(idxCell("mem.streaming", ""))] != c1 ||
		other[store.RefOfRecord(idxCell("mem.hot", ""))] != a1 {
		t.Errorf("foreign host index = %v, want its own cell plus the unhosted one", other)
	}
}

// TestIndexCatchUpAndRebuild: appends that bypass POST /runs entirely —
// a colocated local writer flock-appending to the same directory — are
// folded in on the next lookup, and a fresh server over the directory
// rebuilds the identical index from the file alone.
func TestIndexCatchUpAndRebuild(t *testing.T) {
	srv, ts := newTestServer(t)
	me := runtime.GOOS + "/" + runtime.GOARCH
	if resp := do(t, http.MethodPost, ts.URL+"/runs",
		runLine(t, me, idxCell("mem.hot", keyN(1)))); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST run: %s", resp.Status)
	}

	line := runLine(t, me, idxCell("mem.cold", keyN(2)))
	if err := store.LockedAppend(filepath.Join(srv.Dir(), "history.jsonl"), line); err != nil {
		t.Fatal(err)
	}
	got := fetchIndex(t, ts.URL, me)
	if len(got) != 2 || got[store.RefOfRecord(idxCell("mem.cold", ""))] != keyN(2) {
		t.Errorf("index after direct append = %v, want the local writer's cell included", got)
	}

	srv2, err := New(srv.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := srv2.idx.lookup(me), srv.idx.lookup(me); !reflect.DeepEqual(a, b) {
		t.Errorf("rebuilt index differs:\n got %v\nwant %v", a, b)
	}
	if srv2.idx.cells() != srv.idx.cells() {
		t.Errorf("rebuilt index holds %d cells, live one %d", srv2.idx.cells(), srv.idx.cells())
	}
}

// exposition renders the server's metrics registry for wire-level
// assertions.
func exposition(t *testing.T, srv *Server) string {
	t.Helper()
	var sb strings.Builder
	if err := srv.Registry().WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// hasSample reports whether the exposition holds a nonzero sample with
// every given fragment on one line.
func hasSample(expo string, frags ...string) bool {
	for _, line := range strings.Split(expo, "\n") {
		ok := true
		for _, f := range frags {
			if !strings.Contains(line, f) {
				ok = false
				break
			}
		}
		if ok && !strings.HasSuffix(line, " 0") {
			return true
		}
	}
	return false
}

// TestRemoteRunsIncremental drives the real client against the real
// server: after the first History fetch, new appends arrive via 206
// tails and an unchanged stream costs a 304 — the status codes are read
// off the server's own request counters, so the proof is wire-level.
func TestRemoteRunsIncremental(t *testing.T) {
	srv, ts := newTestServer(t)
	postRun(t, ts.URL, `{"label":"seed-0","cells":[]}`)
	postRun(t, ts.URL, `{"label":"seed-1","cells":[]}`)

	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachRemote(rt)
	defer st.Close()

	runs, err := st.History()
	if err != nil || len(runs) != 2 {
		t.Fatalf("first History = %d runs, %v; want 2", len(runs), err)
	}

	postRun(t, ts.URL, `{"label":"tail-0","cells":[]}`)
	runs, err = st.History()
	if err != nil || len(runs) != 3 || runs[2].Label != "tail-0" {
		t.Fatalf("History after append = %d runs, %v; want the tail folded in", len(runs), err)
	}
	if expo := exposition(t, srv); !hasSample(expo, `route="/runs"`, `method="GET"`, `code="206"`) {
		t.Error("appended tail was not fetched as a 206 partial")
	}

	// Nothing new: the poll costs a 304 and the cache answers.
	runs, err = st.History()
	if err != nil || len(runs) != 3 {
		t.Fatalf("idle History = %d runs, %v", len(runs), err)
	}
	if expo := exposition(t, srv); !hasSample(expo, `route="/runs"`, `method="GET"`, `code="304"`) {
		t.Error("unchanged stream was not revalidated as a 304")
	}

	// Truncation behind the client's back: the generation flips, the
	// client refetches in full and converges on the fresh stream.
	if err := os.WriteFile(filepath.Join(srv.Dir(), "history.jsonl"),
		[]byte(`{"label":"fresh","cells":[]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, err = st.History()
	if err != nil || len(runs) != 1 || runs[0].Label != "fresh" {
		t.Fatalf("History after truncation = %v, %v; want just the fresh run", runs, err)
	}
}

// TestRemoteCellIndex: Store.CellIndex over a live remote answers from
// the server's compacted /index and agrees exactly with the
// history-scan fallback a local store would compute.
func TestRemoteCellIndex(t *testing.T) {
	srv, ts := newTestServer(t)
	me := runtime.GOOS + "/" + runtime.GOARCH
	for i, host := range []string{me, "", "other/host"} {
		if resp := do(t, http.MethodPost, ts.URL+"/runs",
			runLine(t, host, idxCell("mem.hot", keyN(i+1)))); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("POST run: %s", resp.Status)
		}
	}

	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachRemote(rt)
	defer st.Close()

	got, err := st.CellIndex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(srv.Dir(), "history.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, _, err := store.DecodeHistory(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := store.CoverageIndex(runs); !reflect.DeepEqual(got, want) {
		t.Errorf("remote CellIndex = %v, want the CoverageIndex answer %v", got, want)
	}
	if expo := exposition(t, srv); !hasSample(expo, `route="/index"`, `code="200"`) {
		t.Error("CellIndex did not go through the /index endpoint")
	}
}
