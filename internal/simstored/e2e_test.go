package simstored

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/interp"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/store"
)

// e2eMatrix is a small real matrix: two benchmarks on the interpreter,
// arm guest.
func e2eMatrix(t *testing.T) sched.Matrix {
	t.Helper()
	b1, err := bench.ByName("ctrl.intrapage-direct")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bench.ByName("mem.hot")
	if err != nil {
		t.Fatal(err)
	}
	return sched.Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: []*core.Benchmark{b1, b2},
		Engines: []sched.Engine{{Name: "interp", New: func() engine.Engine { return interp.New() }}},
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
}

// renderTable flattens results the way the CLI table does, so
// byte-identity between hosts is checked on real output.
func renderTable(m sched.Matrix, results []sched.Result) string {
	mt := report.MatrixTable{
		Title:      func(a string) string { return "e2e, " + a },
		EngineCols: []string{"interp"},
		Arches:     []string{"arm"},
		Benches:    m.Benches,
		Iters:      m.Iters,
	}
	var buf bytes.Buffer
	mt.Fprint(&buf, results)
	return buf.String()
}

// TestCrossHostSharing is the acceptance scenario end to end: two
// stores with distinct empty cache directories share one simstored
// instance. The first run measures and uploads; the second run — a
// different "host" — is 100% remote hits, renders a byte-identical
// table, and a fleet-side baseline diff of its history exits clean.
func TestCrossHostSharing(t *testing.T) {
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	m := e2eMatrix(t)
	jobs := m.Jobs()

	run := func(cacheDir string) ([]sched.Result, store.TierStats, *store.Store) {
		st, err := store.Open(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := store.NewRemoteTier(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		st.AttachRemote(rt)
		s := sched.Scheduler{Workers: 2, Warmup: true, Store: st}
		results := s.Run(context.Background(), jobs)
		if err := sched.Errors(results); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendHistory("e2e", results); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("store degraded: %v", err)
		}
		return results, st.TierStats(), st
	}

	// Host 1: everything is a miss, measured locally, uploaded.
	first, stats1, st1 := run(t.TempDir())
	if stats1.Misses != uint64(len(jobs)) || stats1.Hits() != 0 {
		t.Fatalf("host 1 stats = %+v, want all misses", stats1)
	}
	if err := st1.SaveBaseline("e2e-base", store.NewRun("e2e", first)); err != nil {
		t.Fatal(err)
	}

	// Host 2: an empty cache dir, the same server — every cell is a
	// remote hit, even though the warmup presence scan touched the
	// cells first (provenance survives promotion).
	second, stats2, st2 := run(t.TempDir())
	if stats2.Remote != uint64(len(jobs)) || stats2.Misses != 0 {
		t.Fatalf("host 2 stats = %+v, want %d remote hits / 0 misses", stats2, len(jobs))
	}
	for _, r := range second {
		if !r.Cached {
			t.Errorf("%s: not served from the shared store", r.Job)
		}
	}

	// Byte-identical tables across hosts.
	if a, b := renderTable(m, first), renderTable(m, second); a != b {
		t.Errorf("tables differ across hosts:\n--- host 1\n%s\n--- host 2\n%s", a, b)
	}

	// The fleet view: both hosts' runs are in the shared history, and
	// host 2's latest run diffs clean against host 1's baseline.
	runs, err := st2.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("shared history has %d runs, want 2", len(runs))
	}
	base, err := st2.LoadBaseline("e2e-base")
	if err != nil {
		t.Fatal(err)
	}
	latest, _, err := store.LatestWithPrior(runs, "")
	if err != nil {
		t.Fatal(err)
	}
	if d := store.DiffRuns(base, latest, 0.10); d.Regressed() {
		t.Errorf("fleet diff regressed: %+v", d)
	}

	// Host 3: promotion means the remote hit landed on host 2's disk —
	// but host 3 has its own empty dir and a *dead* server taken care
	// of by the failure-mode tests; here just confirm host 2's local
	// cache now holds the cells (read-through promotion).
	st3, err := store.Open(st2.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if !st3.Has(st3.Key(j)) {
			t.Errorf("job %d not promoted into host 2's local cache", i)
		}
	}
}

// TestCrossHostBaselineNames: fleet baselines go through the same name
// validation as local ones.
func TestCrossHostBaselineNames(t *testing.T) {
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachRemote(rt)
	defer st.Close()

	for _, bad := range []string{"", "a/b", "..", ".hidden"} {
		if err := st.SaveBaseline(bad, store.RunRecord{}); err == nil {
			t.Errorf("SaveBaseline(%q) accepted over remote", bad)
		}
	}
	if err := st.SaveBaseline("ok", store.RunRecord{Label: "x"}); err != nil {
		t.Fatal(err)
	}
	names, err := st.Baselines()
	if err != nil || len(names) != 1 || names[0] != "ok" {
		t.Errorf("remote baselines = %v, %v", names, err)
	}
	if _, err := st.LoadBaseline("absent"); err == nil {
		t.Error("LoadBaseline(absent) over remote did not fail")
	}
}
