package simstored

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"
	"sort"
	"sync"

	"simbench/internal/store"
)

// historyIndex is the server's compacted per-cell view of
// history.jsonl: for every (host, cell) pair, the content address of
// the newest successful record. It answers the Coverage-style lookups
// offline rendering needs in O(cells) instead of a full-file scan and
// re-parse per request.
//
// The JSONL file remains the only durable contract: the index holds no
// state that cannot be rebuilt from it, is rebuilt on startup, and is
// caught up incrementally from the file's appended tail — so a server
// whose directory is also appended to directly by colocated local
// writers (the layout is exactly a -cache-dir) converges on the same
// answer a full scan would give.
type historyIndex struct {
	mu sync.Mutex
	// off is how many bytes of the file have been folded in — always a
	// line boundary, so a torn tail (an append in flight) is left for
	// the next catch-up rather than misparsed.
	off     int64
	seq     uint64 // per-line recency counter; later lines win
	skipped int    // malformed lines tolerated, as every decodeHistory client does
	// resets counts rebuilds forced by a truncated or replaced file.
	// It feeds the history stream's generation validator: within one
	// generation the file only ever grew, which is what makes a
	// client's byte-offset resume sound.
	resets uint64
	hosts  map[string]map[store.CellRef]indexEntry
}

type indexEntry struct {
	key string
	seq uint64
}

func newHistoryIndex() *historyIndex {
	return &historyIndex{hosts: make(map[string]map[store.CellRef]indexEntry)}
}

// catchUp folds the file's unread tail into the index. A file smaller
// than the consumed offset means the history was truncated or swapped
// out from under the server; the index forgets everything and rebuilds
// from byte zero — correctness comes from the file, never from index
// memory.
func (ix *historyIndex) catchUp(path string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	info, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if ix.off > 0 {
				ix.resetLocked()
			}
			return nil
		}
		return err
	}
	if info.Size() < ix.off {
		ix.resetLocked()
	}
	if info.Size() == ix.off {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(ix.off, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// An unterminated tail: an append still in flight. Leave
			// its bytes unconsumed; the next catch-up reads the whole
			// line.
			return nil
		}
		if err != nil {
			return err
		}
		ix.off += int64(len(line))
		ix.addLocked(line)
	}
}

func (ix *historyIndex) resetLocked() {
	ix.off, ix.seq, ix.skipped = 0, 0, 0
	ix.resets++
	ix.hosts = make(map[string]map[store.CellRef]indexEntry)
}

// generation returns the reset counter — the part of the history
// stream's validator that survives appends but not truncations.
func (ix *historyIndex) generation() uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.resets
}

// addLocked folds one complete history line in, applying exactly the
// record filter store.CoverageIndex applies: failed cells, keyless
// cells and unparsable keys contribute nothing; later lines win.
func (ix *historyIndex) addLocked(line []byte) {
	var rr store.RunRecord
	if err := json.Unmarshal(line, &rr); err != nil {
		ix.skipped++
		return
	}
	ix.seq++
	bucket := ix.hosts[rr.Host]
	if bucket == nil {
		bucket = make(map[store.CellRef]indexEntry)
		ix.hosts[rr.Host] = bucket
	}
	for _, c := range rr.Cells {
		if c.Error != "" || c.Key == "" {
			continue
		}
		if _, ok := store.ParseKey(c.Key); !ok {
			continue
		}
		bucket[store.RefOfRecord(c)] = indexEntry{key: c.Key, seq: ix.seq}
	}
}

// lookup renders the index for one host: its own bucket merged with
// the unhosted one (records with no host stamp match any host, exactly
// as CoverageIndex treats them), the newer record winning per cell.
// The result is sorted so the response body is deterministic.
func (ix *historyIndex) lookup(host string) []store.IndexCell {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	merged := make(map[store.CellRef]indexEntry)
	for _, h := range []string{"", host} {
		for ref, e := range ix.hosts[h] {
			if cur, ok := merged[ref]; !ok || e.seq > cur.seq {
				merged[ref] = e
			}
		}
	}
	out := make([]store.IndexCell, 0, len(merged))
	for ref, e := range merged {
		cell := store.IndexCell{
			Benchmark: ref.Benchmark,
			Engine:    ref.Engine,
			Arch:      ref.Arch,
			Iters:     ref.Iters,
			Repeats:   ref.Repeats,
			Key:       e.key,
		}
		// Single-core cells omit the count on the wire (IndexCell's
		// omitempty), matching history records and old servers.
		if ref.Cores > 1 {
			cell.Cores = ref.Cores
		}
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Arch != b.Arch:
			return a.Arch < b.Arch
		case a.Benchmark != b.Benchmark:
			return a.Benchmark < b.Benchmark
		case a.Engine != b.Engine:
			return a.Engine < b.Engine
		case a.Iters != b.Iters:
			return a.Iters < b.Iters
		case a.Cores != b.Cores:
			return a.Cores < b.Cores
		default:
			return a.Repeats < b.Repeats
		}
	})
	return out
}

// cells counts indexed cells across all host buckets — the value of
// the simstored_history_index_cells gauge.
func (ix *historyIndex) cells() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	for _, bucket := range ix.hosts {
		n += len(bucket)
	}
	return n
}
