// Package simstored implements the HTTP server side of the result
// store's remote tier: a content-addressed object store plus the run
// history and baseline endpoints that let simbase gate a whole fleet
// against one shared store.
//
// The on-disk layout is exactly a local -cache-dir (objects/,
// history.jsonl, baselines/), so a server can be pointed at an
// existing cache directory and immediately serve its blobs — and a
// served directory can still be inspected with simbase locally.
//
// Protocol (all bodies JSON):
//
//	GET/HEAD /objects/<key>   one blob by content address; 404 on miss
//	PUT      /objects/<key>   store one blob
//	GET      /runs            the history stream (JSONL, possibly empty)
//	POST     /runs            append one history line (serialized by the
//	                          same lock local appends take)
//	GET      /baselines       baseline names, as a JSON array
//	GET      /baselines/<n>   one baseline; 404 when absent
//	PUT      /baselines/<n>   save a baseline
//	GET      /healthz         liveness probe
//	GET      /metrics         Prometheus text exposition of the
//	                          server's request and object counters
//
// Content addressing makes the server trivially consistent: a key
// names one immutable measurement, so concurrent PUTs of one key carry
// semantically identical bodies and last-write-wins is immaterial.
package simstored

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"simbench/internal/obs"
	"simbench/internal/store"
)

// maxBodyBytes bounds any single uploaded object, history line or
// baseline.
const maxBodyBytes = 1 << 28 // 256 MiB

// Server serves one store directory. It is an http.Handler; wrap it in
// whatever server (or mux prefix) the deployment wants. Every request
// is instrumented: counted and timed on a per-instance metric registry
// (served back at GET /metrics), logged as one JSONL line to AccessLog
// when set, and answered with an X-Request-Id header.
type Server struct {
	dir string
	// Logf, when set, receives one line per failed request; the happy
	// path goes to AccessLog instead.
	Logf func(format string, args ...any)
	// AccessLog, when set, receives one JSON line per request —
	// method, path, status, bytes, duration, remote address and
	// request ID. Writes are serialized by the server.
	AccessLog io.Writer

	reg     *obs.Registry
	metrics serverMetrics
	logMu   sync.Mutex
	bootID  string
	reqSeq  atomic.Uint64
}

// New opens (creating if needed) a server over the store directory.
func New(dir string) (*Server, error) {
	if dir == "" {
		return nil, errors.New("simstored: a store directory is required")
	}
	for _, sub := range []string{"objects", "baselines"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("simstored: %w", err)
		}
	}
	s := &Server{dir: dir, reg: obs.NewRegistry(), bootID: newBootID()}
	s.metrics = newServerMetrics(s.reg)
	return s, nil
}

// Registry exposes the server's metric registry (what GET /metrics
// renders), mainly so embedding processes can add their own gauges.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Dir returns the served store directory.
func (s *Server) Dir() string { return s.dir }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("%s %s: %d %s", r.Method, r.URL.Path, code, msg)
	http.Error(w, msg, code)
}

// route dispatches one request; ServeHTTP (obs.go) wraps it with
// metrics, the access log, and the request ID.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		io.WriteString(w, "ok\n")
	case r.URL.Path == "/metrics":
		s.serveMetrics(w, r)
	case strings.HasPrefix(r.URL.Path, "/objects/"):
		s.serveObject(w, r, strings.TrimPrefix(r.URL.Path, "/objects/"))
	case r.URL.Path == "/runs":
		s.serveRuns(w, r)
	case r.URL.Path == "/baselines":
		s.serveBaselineList(w, r)
	case strings.HasPrefix(r.URL.Path, "/baselines/"):
		s.serveBaseline(w, r, strings.TrimPrefix(r.URL.Path, "/baselines/"))
	default:
		s.fail(w, r, http.StatusNotFound, "unknown path %q", r.URL.Path)
	}
}

// objectPath maps a validated key to its blob file, sharded by the
// first two hex characters exactly like the local disk tier.
func (s *Server) objectPath(key string) (string, bool) {
	if _, ok := store.ParseKey(key); !ok {
		return "", false
	}
	return filepath.Join(s.dir, "objects", key[:2], key+".json"), true
}

func (s *Server) serveObject(w http.ResponseWriter, r *http.Request, key string) {
	path, ok := s.objectPath(key)
	if !ok {
		s.fail(w, r, http.StatusBadRequest, "malformed object key %q", key)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		f, err := os.Open(path)
		if err != nil {
			s.metrics.objMisses.Inc()
			s.fail(w, r, http.StatusNotFound, "no object %s", key)
			return
		}
		defer f.Close()
		s.metrics.objHits.Inc()
		w.Header().Set("Content-Type", "application/json")
		if info, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", fmt.Sprint(info.Size()))
		}
		if r.Method == http.MethodHead {
			return
		}
		io.Copy(w, f)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "read object: %v", err)
			return
		}
		if !json.Valid(body) {
			// Reject garbage at the door: every client of this store
			// parses blobs as JSON, and a corrupt upload would turn
			// into a per-run warning on every fleet member.
			s.fail(w, r, http.StatusBadRequest, "object %s is not valid JSON", key)
			return
		}
		if err := store.AtomicWrite(path, body); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "write object: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) serveRuns(w http.ResponseWriter, r *http.Request) {
	path := filepath.Join(s.dir, "history.jsonl")
	switch r.Method {
	case http.MethodGet:
		f, err := os.Open(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// An empty history is a young fleet, not an error.
				w.Header().Set("Content-Type", "application/jsonl")
				return
			}
			s.fail(w, r, http.StatusInternalServerError, "open history: %v", err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/jsonl")
		io.Copy(w, f)
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "read run: %v", err)
			return
		}
		line := []byte(strings.TrimSpace(string(body)))
		if len(line) == 0 || !json.Valid(line) || strings.ContainsRune(string(line), '\n') {
			// One valid single-line JSON value per POST, or the
			// append would corrupt the stream for every reader.
			s.fail(w, r, http.StatusBadRequest, "run must be one line of valid JSON")
			return
		}
		// The same exclusive lock local AppendHistory takes, so a
		// server colocated with local writers on one directory still
		// serializes every append.
		if err := store.LockedAppend(path, line); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "append run: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) serveBaselineList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "baselines"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		s.fail(w, r, http.StatusInternalServerError, "list baselines: %v", err)
		return
	}
	names := []string{}
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			names = append(names, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}

func (s *Server) serveBaseline(w http.ResponseWriter, r *http.Request, name string) {
	if !store.ValidBaselineName(name) {
		s.fail(w, r, http.StatusBadRequest, "invalid baseline name %q", name)
		return
	}
	path := filepath.Join(s.dir, "baselines", name+".json")
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		f, err := os.Open(path)
		if err != nil {
			s.fail(w, r, http.StatusNotFound, "no baseline %q", name)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		io.Copy(w, f)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "read baseline: %v", err)
			return
		}
		if !json.Valid(body) {
			s.fail(w, r, http.StatusBadRequest, "baseline %q is not valid JSON", name)
			return
		}
		if err := store.AtomicWrite(path, body); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "write baseline: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}
