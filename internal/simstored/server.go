// Package simstored implements the HTTP server side of the result
// store's remote tier: a content-addressed object store plus the run
// history and baseline endpoints that let simbase gate a whole fleet
// against one shared store.
//
// The on-disk layout is exactly a local -cache-dir (objects/,
// history.jsonl, baselines/), so a server can be pointed at an
// existing cache directory and immediately serve its blobs — and a
// served directory can still be inspected with simbase locally.
//
// Protocol (all bodies JSON):
//
//	GET/HEAD /objects/<key>   one blob by content address; 404 on miss
//	PUT      /objects/<key>   store one blob
//	GET      /runs            the history stream (JSONL, possibly empty).
//	                          Supports ETag/If-None-Match (304) and
//	                          byte-offset resumption via "Range:
//	                          bytes=N-" guarded by If-Range, so clients
//	                          re-fetch only the appended tail
//	POST     /runs            append one history line (serialized by the
//	                          same lock local appends take)
//	GET      /index?host=h    the compacted per-cell history index for
//	                          one host: each cell's newest successful
//	                          record, as a JSON array of IndexCell
//	GET      /baselines       baseline names, as a JSON array
//	GET      /baselines/<n>   one baseline; 404 when absent
//	PUT      /baselines/<n>   save a baseline
//	GET      /healthz         liveness probe (never requires auth)
//	GET      /metrics         Prometheus text exposition of the
//	                          server's request and object counters
//
// When Tokens is set every endpoint except /healthz requires a bearer
// token (401 otherwise); when ReqPerSec/BytesPerSec are set, per-client
// token buckets answer 429 with a Retry-After once a client outruns its
// quota.
//
// Content addressing makes the server trivially consistent: a key
// names one immutable measurement, so concurrent PUTs of one key carry
// semantically identical bodies and last-write-wins is immaterial.
package simstored

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simbench/internal/obs"
	"simbench/internal/store"
)

// defaultMaxBody bounds any single uploaded object, history line or
// baseline when the server does not override MaxBody.
const defaultMaxBody = 1 << 28 // 256 MiB

// appendAttempts and appendDelay bound the brief retry a /runs POST
// gives a LockedAppend that lost the flock race to a colocated local
// writer: contention on a healthy store clears in milliseconds, so a
// couple of short waits turn a spurious 500 into a served append.
const (
	appendAttempts = 3
	appendDelay    = 10 * time.Millisecond
)

// Server serves one store directory. It is an http.Handler; wrap it in
// whatever server (or mux prefix) the deployment wants. Every request
// is instrumented: counted and timed on a per-instance metric registry
// (served back at GET /metrics), logged as one JSONL line to AccessLog
// when set, and answered with an X-Request-Id header.
type Server struct {
	dir string
	// Logf, when set, receives one line per failed request; the happy
	// path goes to AccessLog instead.
	Logf func(format string, args ...any)
	// AccessLog, when set, receives one JSON line per request —
	// method, path, status, bytes, duration, remote address and
	// request ID. Writes are serialized by the server.
	AccessLog io.Writer
	// Tokens, when non-empty, turns on bearer auth: every endpoint but
	// /healthz answers 401 unless the request presents one of these.
	// Set before serving, like every configuration field here.
	Tokens []string
	// ReqPerSec and BytesPerSec, when positive, cap each client's
	// request and transfer rates; past the cap the server answers 429
	// with a Retry-After. A client is a bearer token when auth is on,
	// a remote host otherwise.
	ReqPerSec   float64
	BytesPerSec float64
	// MaxBody overrides the upload size cap (defaulted by New).
	MaxBody int64
	// Now overrides the quota gate's clock, for tests.
	Now func() time.Time

	reg     *obs.Registry
	metrics serverMetrics
	logMu   sync.Mutex
	bootID  string
	reqSeq  atomic.Uint64

	idx       *historyIndex
	quotaOnce sync.Once
	quota     *quotaTable
	// appendFn is the history append seam; tests inject contention,
	// production is store.LockedAppend.
	appendFn func(path string, line []byte) error
}

// New opens (creating if needed) a server over the store directory and
// rebuilds the per-cell history index from history.jsonl.
func New(dir string) (*Server, error) {
	if dir == "" {
		return nil, errors.New("simstored: a store directory is required")
	}
	for _, sub := range []string{"objects", "baselines"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("simstored: %w", err)
		}
	}
	s := &Server{
		dir:      dir,
		MaxBody:  defaultMaxBody,
		reg:      obs.NewRegistry(),
		bootID:   newBootID(),
		idx:      newHistoryIndex(),
		appendFn: store.LockedAppend,
	}
	s.metrics = newServerMetrics(s.reg)
	if err := s.idx.catchUp(s.historyPath()); err != nil {
		return nil, fmt.Errorf("simstored: rebuild history index: %w", err)
	}
	s.metrics.indexCells.Set(float64(s.idx.cells()))
	return s, nil
}

func (s *Server) historyPath() string { return filepath.Join(s.dir, "history.jsonl") }

// syncIndex folds any unread history tail into the per-cell index and
// publishes its size. Errors are logged, not returned: the JSONL is
// the durable contract, and a later catch-up (or a restart) rebuilds
// whatever this pass missed.
func (s *Server) syncIndex() {
	if err := s.idx.catchUp(s.historyPath()); err != nil {
		s.logf("history index: %v", err)
		return
	}
	s.metrics.indexCells.Set(float64(s.idx.cells()))
}

// Registry exposes the server's metric registry (what GET /metrics
// renders), mainly so embedding processes can add their own gauges.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Dir returns the served store directory.
func (s *Server) Dir() string { return s.dir }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("%s %s: %d %s", r.Method, r.URL.Path, code, msg)
	http.Error(w, msg, code)
}

// route dispatches one request; ServeHTTP (obs.go) wraps it with
// metrics, the access log, and the request ID.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		io.WriteString(w, "ok\n")
	case r.URL.Path == "/metrics":
		s.serveMetrics(w, r)
	case strings.HasPrefix(r.URL.Path, "/objects/"):
		s.serveObject(w, r, strings.TrimPrefix(r.URL.Path, "/objects/"))
	case r.URL.Path == "/runs":
		s.serveRuns(w, r)
	case r.URL.Path == "/index":
		s.serveIndex(w, r)
	case r.URL.Path == "/baselines":
		s.serveBaselineList(w, r)
	case strings.HasPrefix(r.URL.Path, "/baselines/"):
		s.serveBaseline(w, r, strings.TrimPrefix(r.URL.Path, "/baselines/"))
	default:
		s.fail(w, r, http.StatusNotFound, "unknown path %q", r.URL.Path)
	}
}

// readBody reads a request body under the upload cap, distinguishing
// the cap itself (413, so clients can tell "too big" from "malformed")
// from any other read failure (400). ok is false when the response has
// already been written.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, what string) (body []byte, ok bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, r, http.StatusRequestEntityTooLarge,
				"%s exceeds the %d byte upload cap", what, tooBig.Limit)
			return nil, false
		}
		s.fail(w, r, http.StatusBadRequest, "read %s: %v", what, err)
		return nil, false
	}
	return body, true
}

// objectPath maps a validated key to its blob file, sharded by the
// first two hex characters exactly like the local disk tier.
func (s *Server) objectPath(key string) (string, bool) {
	if _, ok := store.ParseKey(key); !ok {
		return "", false
	}
	return filepath.Join(s.dir, "objects", key[:2], key+".json"), true
}

func (s *Server) serveObject(w http.ResponseWriter, r *http.Request, key string) {
	path, ok := s.objectPath(key)
	if !ok {
		s.fail(w, r, http.StatusBadRequest, "malformed object key %q", key)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		f, err := os.Open(path)
		if err != nil {
			s.metrics.objMisses.Inc()
			s.fail(w, r, http.StatusNotFound, "no object %s", key)
			return
		}
		defer f.Close()
		s.metrics.objHits.Inc()
		w.Header().Set("Content-Type", "application/json")
		if info, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", fmt.Sprint(info.Size()))
		}
		if r.Method == http.MethodHead {
			return
		}
		if _, err := io.Copy(w, f); err != nil {
			s.logf("GET /objects/%s: copy: %v", key, err)
		}
	case http.MethodPut:
		body, ok := s.readBody(w, r, "object")
		if !ok {
			return
		}
		if !json.Valid(body) {
			// Reject garbage at the door: every client of this store
			// parses blobs as JSON, and a corrupt upload would turn
			// into a per-run warning on every fleet member.
			s.fail(w, r, http.StatusBadRequest, "object %s is not valid JSON", key)
			return
		}
		if err := store.AtomicWrite(path, body); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "write object: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) serveRuns(w http.ResponseWriter, r *http.Request) {
	path := s.historyPath()
	switch r.Method {
	case http.MethodGet:
		s.serveHistory(w, r, path)
	case http.MethodPost:
		body, ok := s.readBody(w, r, "run")
		if !ok {
			return
		}
		line := []byte(strings.TrimSpace(string(body)))
		if len(line) == 0 || !json.Valid(line) || strings.ContainsRune(string(line), '\n') {
			// One valid single-line JSON value per POST, or the
			// append would corrupt the stream for every reader.
			s.fail(w, r, http.StatusBadRequest, "run must be one line of valid JSON")
			return
		}
		if err := s.appendRun(path, line); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "append run: %v", err)
			return
		}
		// Fold the new line in while it is hot. A failure here is not
		// a failed append: the JSONL is the durable contract and the
		// next catch-up rebuilds.
		s.syncIndex()
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// appendRun takes the same exclusive lock local AppendHistory takes,
// so a server colocated with local writers on one directory still
// serializes every append — retrying briefly when it loses the race,
// since contention on a healthy store clears in milliseconds and a
// 500 would push the loss onto the client.
func (s *Server) appendRun(path string, line []byte) error {
	var err error
	for attempt := 0; attempt < appendAttempts; attempt++ {
		if attempt > 0 {
			s.metrics.appendRetries.Inc()
			time.Sleep(appendDelay << (attempt - 1))
		}
		if err = s.appendFn(path, line); err == nil {
			return nil
		}
	}
	return err
}

// historyETag is the history stream's validator: a generation (this
// server's boot ID plus the index's truncation-reset counter) and the
// byte size. Within one generation the file only ever grows, so equal
// etags name identical bytes — and, unlike a per-snapshot validator
// that changes on every append, the generation half keeps matching
// across appends, which is exactly what lets If-Range vouch for a
// byte-offset resume on a stream that is growing by design.
func (s *Server) historyETag(size int64) string {
	return fmt.Sprintf("\"%s.%d-%x\"", s.bootID, s.idx.generation(), size)
}

// sameGeneration reports whether an If-Range validator carries the
// same generation as the current etag — i.e. the prefix the client
// consumed is still a prefix of the file, so serving the tail from its
// offset is sound even though the sizes differ.
func sameGeneration(validator, etag string) bool {
	i := strings.LastIndexByte(validator, '-')
	j := strings.LastIndexByte(etag, '-')
	return i > 0 && j > 0 && validator[:i] == etag[:j]
}

// ifNoneMatch reports whether the request's If-None-Match covers etag.
func ifNoneMatch(r *http.Request, etag string) bool {
	for _, v := range strings.Split(r.Header.Get("If-None-Match"), ",") {
		if v = strings.TrimSpace(v); v == etag || v == "*" {
			return true
		}
	}
	return false
}

// tailRange parses the one Range form the history stream supports —
// "bytes=N-", resume from byte N. Anything else reports false and is
// served in full (RFC 9110 lets a server ignore Range).
func tailRange(h string) (int64, bool) {
	const prefix = "bytes="
	if !strings.HasPrefix(h, prefix) || !strings.HasSuffix(h, "-") {
		return 0, false
	}
	n, err := strconv.ParseInt(h[len(prefix):len(h)-1], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// serveHistory is the incremental GET /runs: the generation etag
// answers If-None-Match with 304, and "Range: bytes=N-" (guarded by
// If-Range, so a truncated or replaced file serves the full stream
// instead of a garbage tail) resumes a client from its last offset — a
// fleet member polling the history transfers O(its unseen appends),
// not O(file). Content-Length is always set and exact: the response is
// cut from a section reader at the statted size, so a concurrent
// append cannot leak past the promise, and a mid-stream copy failure
// shows the client a short body against the declared length — never a
// clean-looking EOF that the malformed-tail resync would silently
// absorb.
func (s *Server) serveHistory(w http.ResponseWriter, r *http.Request, path string) {
	// Catch up first: the catch-up is what detects a truncated or
	// replaced file and bumps the generation, invalidating every stale
	// resume offset in the fleet.
	s.syncIndex()
	w.Header().Set("Content-Type", "application/jsonl")
	var size int64
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.fail(w, r, http.StatusInternalServerError, "open history: %v", err)
			return
		}
		// An empty history is a young fleet, not an error; its etag is
		// still cacheable, so a client holding it polls for free.
		f = nil
	} else {
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, "stat history: %v", err)
			return
		}
		size = info.Size()
	}
	etag := s.historyETag(size)
	w.Header().Set("ETag", etag)
	if ifNoneMatch(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var off int64
	if n, ok := tailRange(r.Header.Get("Range")); ok {
		if ir := r.Header.Get("If-Range"); ir == "" || sameGeneration(ir, etag) {
			if n >= size {
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
				s.fail(w, r, http.StatusRequestedRangeNotSatisfiable,
					"resume offset %d is beyond the %d byte history", n, size)
				return
			}
			off = n
		}
	}
	n := size - off
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	if off > 0 {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, size-1, size))
		w.WriteHeader(http.StatusPartialContent)
	}
	if n > 0 {
		if _, err := io.Copy(w, io.NewSectionReader(f, off, n)); err != nil {
			s.logf("GET /runs: copy: %v", err)
		}
	}
}

// serveIndex answers the compacted per-cell lookup: for each cell the
// requested host could render offline, the content address of its
// newest successful record. The host is required because content keys
// encode GOOS/GOARCH — an indexed answer for "any host" would hand a
// client another machine's measurements.
func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	host := r.URL.Query().Get("host")
	if host == "" {
		s.fail(w, r, http.StatusBadRequest, "the index is per host: pass ?host=GOOS/GOARCH (the stamp run records carry)")
		return
	}
	// Catch up first, so the answer reflects every append that has
	// landed in the file — including colocated local writers that
	// never went through POST /runs.
	s.syncIndex()
	cells := s.idx.lookup(host)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(cells); err != nil {
		s.logf("GET /index: encode: %v", err)
	}
}

func (s *Server) serveBaselineList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "baselines"))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		s.fail(w, r, http.StatusInternalServerError, "list baselines: %v", err)
		return
	}
	names := []string{}
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			names = append(names, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}

func (s *Server) serveBaseline(w http.ResponseWriter, r *http.Request, name string) {
	if !store.ValidBaselineName(name) {
		s.fail(w, r, http.StatusBadRequest, "invalid baseline name %q", name)
		return
	}
	path := filepath.Join(s.dir, "baselines", name+".json")
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		f, err := os.Open(path)
		if err != nil {
			s.fail(w, r, http.StatusNotFound, "no baseline %q", name)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		if _, err := io.Copy(w, f); err != nil {
			s.logf("GET /baselines/%s: copy: %v", name, err)
		}
	case http.MethodPut:
		body, ok := s.readBody(w, r, "baseline")
		if !ok {
			return
		}
		if !json.Valid(body) {
			s.fail(w, r, http.StatusBadRequest, "baseline %q is not valid JSON", name)
			return
		}
		if err := store.AtomicWrite(path, body); err != nil {
			s.fail(w, r, http.StatusInternalServerError, "write baseline: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}
