package simstored

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"simbench/internal/obs"
)

// syncBuffer lets the test read the access log while the server's
// handler goroutines write it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	blob := []byte(`{"schema":1}`)

	// Generate traffic: a PUT, a hit, a miss.
	if resp := do(t, http.MethodPut, ts.URL+"/objects/"+testKey, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s", resp.Status)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/objects/"+testKey, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET hit: %s", resp.Status)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/objects/"+strings.Repeat("cd", 32), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss: %s", resp.Status)
	}

	resp := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, body)
	}
	for _, want := range []string{
		`simstored_requests_total{route="/objects",method="PUT",code="204"} 1`,
		`simstored_requests_total{route="/objects",method="GET",code="200"} 1`,
		`simstored_requests_total{route="/objects",method="GET",code="404"} 1`,
		`simstored_object_hits_total 1`,
		`simstored_object_misses_total 1`,
		`simstored_requests_in_flight 1`, // the /metrics request itself
		`simstored_request_seconds_count{route="/objects"} 3`,
	} {
		if !strings.Contains(string(body), want+"\n") {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The PUT and GET moved the blob's bytes; the counter must be > 0.
	if !strings.Contains(string(body), `simstored_response_bytes_total{route="/objects"}`) {
		t.Errorf("/metrics missing response bytes counter:\n%s", body)
	}
}

func TestAccessLogJSONL(t *testing.T) {
	srv, ts := newTestServer(t)
	var log syncBuffer
	srv.AccessLog = &log

	if resp := do(t, http.MethodPut, ts.URL+"/objects/"+testKey, []byte(`{"schema":1}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s", resp.Status)
	}
	resp := do(t, http.MethodGet, ts.URL+"/objects/"+testKey, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body)

	sc := bufio.NewScanner(strings.NewReader(log.String()))
	var records []accessRecord
	for sc.Scan() {
		var rec accessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, sc.Text())
		}
		records = append(records, rec)
	}
	if len(records) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(records), log.String())
	}
	put, get := records[0], records[1]
	if put.Method != "PUT" || put.Path != "/objects/"+testKey || put.Status != http.StatusNoContent {
		t.Errorf("PUT record = %+v", put)
	}
	if get.Method != "GET" || get.Status != http.StatusOK || get.Bytes == 0 {
		t.Errorf("GET record = %+v", get)
	}
	for _, rec := range records {
		if rec.RequestID == "" || rec.Remote == "" || rec.Time == "" {
			t.Errorf("record missing id/remote/time: %+v", rec)
		}
	}
}

func TestRequestIDEchoAndGeneration(t *testing.T) {
	srv, ts := newTestServer(t)
	var log syncBuffer
	srv.AccessLog = &log

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-42" {
		t.Errorf("client-supplied id not echoed: %q", got)
	}
	if !strings.Contains(log.String(), `"request_id":"client-supplied-42"`) {
		t.Errorf("client id not in access log:\n%s", log.String())
	}

	resp2 := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if got := resp2.Header.Get("X-Request-Id"); got == "" {
		t.Error("no generated X-Request-Id on a request without one")
	}
}

// TestMetricsRegistryIsolated: two servers must not share counters.
func TestMetricsRegistryIsolated(t *testing.T) {
	_, ts1 := newTestServer(t)
	_, ts2 := newTestServer(t)
	do(t, http.MethodGet, ts1.URL+"/healthz", nil)
	resp := do(t, http.MethodGet, ts2.URL+"/metrics", nil)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `route="/healthz"`) {
		t.Errorf("server 2's registry saw server 1's traffic:\n%s", body)
	}
}

// TestPprofWiring mirrors cmd/simstored's -pprof mux: the profile index
// must answer and the store routes must still work through the mux.
func TestPprofWiring(t *testing.T) {
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Stand-in for pprof.Index; the real wiring lives in cmd and
		// uses the same mux shape.
		io.WriteString(w, "pprof")
	}))
	mux.Handle("/", srv)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if resp := do(t, http.MethodGet, ts.URL+"/debug/pprof/", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof route: %s", resp.Status)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz through mux: %s", resp.Status)
	}
}
