package simstored

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"simbench/internal/sched"
	"simbench/internal/store"
)

// fastRetry keeps degrade-path e2e tests quick without changing the
// client's semantics.
var fastRetry = store.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}

// TestBearerAuth: with tokens set, every endpoint but /healthz demands
// a valid bearer; failures are 401 with a WWW-Authenticate challenge
// and land on the auth-failure counter.
func TestBearerAuth(t *testing.T) {
	srv, ts := newServerWith(t, func(s *Server) { s.Tokens = []string{"s3cret", "backup"} })

	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless GET /runs: %s, want 401", resp.Status)
	}
	if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, "Bearer") {
		t.Errorf("401 challenge = %q", ch)
	}
	if resp := doHdr(t, http.MethodGet, ts.URL+"/runs", nil,
		map[string]string{"Authorization": "Bearer wrong"}); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong token: %s, want 401", resp.Status)
	}
	for _, tok := range []string{"s3cret", "backup"} {
		if resp := doHdr(t, http.MethodGet, ts.URL+"/runs", nil,
			map[string]string{"Authorization": "Bearer " + tok}); resp.StatusCode != http.StatusOK {
			t.Errorf("token %q: %s, want 200", tok, resp.Status)
		}
	}
	// Liveness probing stays credential-less.
	if resp := do(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("tokenless /healthz: %s, want 200", resp.Status)
	}
	if v := srv.metrics.authFailures.Value(); v != 2 {
		t.Errorf("auth failure counter = %v, want 2", v)
	}
}

// TestRequestQuota: past the burst a client is answered 429 with an
// honest Retry-After, the rejection is counted by kind, and the bucket
// admits again once the clock refills it.
func TestRequestQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	srv, ts := newServerWith(t, func(s *Server) {
		s.ReqPerSec = 1 // burst 2
		s.Now = func() time.Time { return now }
	})

	for i := 0; i < 2; i++ {
		if resp := do(t, http.MethodGet, ts.URL+"/runs", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: %s", i, resp.Status)
		}
	}
	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: %s, want 429", resp.Status)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if msg := bodyOf(t, resp); !strings.Contains(msg, "requests quota exceeded") {
		t.Errorf("429 body = %q", msg)
	}
	if v := srv.metrics.quotaRejects.With("requests").Value(); v != 1 {
		t.Errorf("quota rejection counter = %v, want 1", v)
	}

	// Scrapes and probes are exempt: saturation is exactly when they matter.
	for _, path := range []string{"/metrics", "/healthz"} {
		if resp := do(t, http.MethodGet, ts.URL+path, nil); resp.StatusCode != http.StatusOK {
			t.Errorf("%s under exhausted quota: %s, want 200", path, resp.Status)
		}
	}

	now = now.Add(3 * time.Second)
	if resp := do(t, http.MethodGet, ts.URL+"/runs", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("request after refill: %s, want 200", resp.Status)
	}
}

// TestByteQuota: response bytes are charged in arrears, so a client
// that streamed more than its burst is blocked until the debt refills
// — the byte kind, not the request kind, trips.
func TestByteQuota(t *testing.T) {
	now := time.Unix(2000, 0)
	srv, ts := newServerWith(t, func(s *Server) {
		s.BytesPerSec = 32 // burst 64
		s.Now = func() time.Time { return now }
	})
	// Seed the stream on disk, not over the wire — an upload would
	// charge this same client before the assertion under test.
	line := `{"label":"` + strings.Repeat("x", 80) + `","cells":[]}` + "\n"
	if err := os.WriteFile(filepath.Join(srv.Dir(), "history.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}

	// The first GET streams ~100 bytes against a 64-byte burst: it is
	// admitted (the bucket was positive) and the debt lands afterwards.
	if resp := do(t, http.MethodGet, ts.URL+"/runs", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first GET: %s", resp.Status)
	}
	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("GET while in byte debt: %s, want 429", resp.Status)
	}
	if msg := bodyOf(t, resp); !strings.Contains(msg, "bytes quota exceeded") {
		t.Errorf("429 body = %q", msg)
	}
	if v := srv.metrics.quotaRejects.With("bytes").Value(); v == 0 {
		t.Error("byte rejection not counted")
	}

	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	now = now.Add(time.Duration(ra)*time.Second + time.Second)
	if resp := do(t, http.MethodGet, ts.URL+"/runs", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET after the debt refilled: %s, want 200", resp.Status)
	}
}

// degradedRun measures the e2e matrix against a store whose remote is
// rejecting every request, and asserts the run's contract: every cell
// measured locally and correct, no error escaping to the caller, the
// degradation named on the stats line — the CLI's exit-0 path.
func degradedRun(t *testing.T, remoteURL string, opts ...store.RemoteOption) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.NewRemoteTier(remoteURL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachRemote(rt)

	m := e2eMatrix(t)
	jobs := m.Jobs()
	s := sched.Scheduler{Workers: 2, Warmup: true, Store: st}
	results := s.Run(context.Background(), jobs)
	if err := sched.Errors(results); err != nil {
		t.Fatalf("cells failed under a rejecting remote: %v", err)
	}
	stats := st.TierStats()
	if stats.Remote != 0 || stats.Misses != uint64(len(jobs)) {
		t.Errorf("stats under rejecting remote = %+v, want all local misses", stats)
	}
	if !st.Remote().Down() {
		t.Error("tier not down after every request was rejected")
	}
	st.Close()

	var buf bytes.Buffer
	store.FprintStats(&buf, "e2e", st)
	out := buf.String()
	if !strings.Contains(out, "cache degraded:") {
		t.Errorf("stats line does not surface the degradation:\n%s", out)
	}
	return out
}

// TestAuthFailureDegradesToLocal: a client with the wrong token — the
// fleet-store misconfiguration — still completes its run locally and
// the stats line tells the operator what to fix.
func TestAuthFailureDegradesToLocal(t *testing.T) {
	_, ts := newServerWith(t, func(s *Server) { s.Tokens = []string{"s3cret"} })
	out := degradedRun(t, ts.URL, store.WithToken("wrong"), store.WithRetry(fastRetry))
	if !strings.Contains(out, "401") || !strings.Contains(out, "-remote-token") {
		t.Errorf("degradation reason does not point at the token:\n%s", out)
	}
}

// TestQuotaExhaustionDegradesToLocal: a client that outruns its quota
// retries, then degrades to local measurement rather than failing the
// run.
func TestQuotaExhaustionDegradesToLocal(t *testing.T) {
	frozen := time.Unix(3000, 0)
	_, ts := newServerWith(t, func(s *Server) {
		// A frozen clock never refills: after the burst, every request
		// is 429 — the hard-exhaustion case.
		s.ReqPerSec = 0.001
		s.Now = func() time.Time { return frozen }
	})
	// Burn the burst so the run sees only 429s.
	for i := 0; i < 2; i++ {
		do(t, http.MethodGet, ts.URL+"/runs", nil)
	}
	out := degradedRun(t, ts.URL, store.WithRetry(fastRetry))
	if !strings.Contains(out, "429") {
		t.Errorf("degradation reason does not name the quota rejection:\n%s", out)
	}
}
