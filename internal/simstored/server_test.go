package simstored

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func do(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// testKey is a syntactically valid content address (64 hex chars).
var testKey = strings.Repeat("ab", 32)

func TestObjectRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t)
	blob := []byte(`{"schema":1,"benchmark":"mem.hot"}`)

	// Miss before the upload, for GET and HEAD alike.
	if resp := do(t, http.MethodGet, ts.URL+"/objects/"+testKey, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: %s", resp.Status)
	}
	if resp := do(t, http.MethodHead, ts.URL+"/objects/"+testKey, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD before PUT: %s", resp.Status)
	}

	if resp := do(t, http.MethodPut, ts.URL+"/objects/"+testKey, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s", resp.Status)
	}

	resp := do(t, http.MethodGet, ts.URL+"/objects/"+testKey, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT: %s", resp.Status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if buf.String() != string(blob) {
		t.Errorf("object round trip: %q != %q", buf.String(), blob)
	}
	if resp := do(t, http.MethodHead, ts.URL+"/objects/"+testKey, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD after PUT: %s", resp.Status)
	}

	// The blob lands in the cache-dir layout: objects/<2 hex>/<key>.json.
	if _, err := os.Stat(filepath.Join(srv.Dir(), "objects", testKey[:2], testKey+".json")); err != nil {
		t.Errorf("blob not in cache-dir layout: %v", err)
	}
}

func TestObjectValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, bad := range []string{
		"short",
		strings.Repeat("zz", 32),               // not hex
		strings.Repeat("ab", 31) + "..",        // traversal-shaped
		"../" + strings.Repeat("ab", 31) + "x", // escapes objects/
	} {
		if resp := do(t, http.MethodPut, ts.URL+"/objects/"+bad, []byte("{}")); resp.StatusCode != http.StatusBadRequest &&
			resp.StatusCode != http.StatusNotFound { // a "/" in the key changes the route
			t.Errorf("PUT %q accepted: %s", bad, resp.Status)
		}
	}
	// Garbage bodies are rejected at the door, not replayed to clients.
	if resp := do(t, http.MethodPut, ts.URL+"/objects/"+testKey, []byte("not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage PUT accepted: %s", resp.Status)
	}
	if resp := do(t, http.MethodDelete, ts.URL+"/objects/"+testKey, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %s", resp.Status)
	}
}

func TestRunsAppendAndStream(t *testing.T) {
	_, ts := newTestServer(t)

	// Empty history streams as an empty 200, not an error.
	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET empty /runs: %s", resp.Status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if buf.Len() != 0 {
		t.Errorf("empty history body: %q", buf.String())
	}

	for i := 0; i < 3; i++ {
		line := fmt.Sprintf(`{"label":"run-%d","cells":[]}`, i)
		if resp := do(t, http.MethodPost, ts.URL+"/runs", []byte(line)); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("POST run %d: %s", i, resp.Status)
		}
	}

	resp = do(t, http.MethodGet, ts.URL+"/runs", nil)
	buf.Reset()
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("history has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rr struct {
			Label string `json:"label"`
		}
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Label != fmt.Sprintf("run-%d", i) {
			t.Errorf("line %d: %q (%v)", i, line, err)
		}
	}

	// A run that is not one line of valid JSON would corrupt the stream
	// for every reader; it is rejected.
	for _, bad := range []string{"", "not json", "{}\n{}", "{\"a\":1}\ngarbage"} {
		if resp := do(t, http.MethodPost, ts.URL+"/runs", []byte(bad)); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q accepted: %s", bad, resp.Status)
		}
	}
}

func TestBaselines(t *testing.T) {
	_, ts := newTestServer(t)

	resp := do(t, http.MethodGet, ts.URL+"/baselines", nil)
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil || len(names) != 0 {
		t.Fatalf("empty baseline list = %v, %v", names, err)
	}

	base := []byte(`{"label":"nightly","cells":[]}`)
	if resp := do(t, http.MethodPut, ts.URL+"/baselines/nightly", base); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT baseline: %s", resp.Status)
	}
	resp = do(t, http.MethodGet, ts.URL+"/baselines/nightly", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET baseline: %s", resp.Status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if buf.String() != string(base) {
		t.Errorf("baseline round trip: %q", buf.String())
	}

	resp = do(t, http.MethodGet, ts.URL+"/baselines", nil)
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil || len(names) != 1 || names[0] != "nightly" {
		t.Errorf("baseline list = %v, %v", names, err)
	}

	if resp := do(t, http.MethodGet, ts.URL+"/baselines/absent", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET absent baseline: %s", resp.Status)
	}
	for _, bad := range []string{".hidden", "..", "a\\b"} {
		if resp := do(t, http.MethodPut, ts.URL+"/baselines/"+bad, base); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT baseline %q accepted: %s", bad, resp.Status)
		}
	}
}

func TestHealthzAndUnknownPath(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := do(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", resp.Status)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %s", resp.Status)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("New(\"\") did not fail")
	}
}
