package simstored

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// newServerWith is newTestServer with a configuration hook that runs
// before the listener starts — auth, quota and cap fields are read by
// handler goroutines, so they must be set before any request exists.
func newServerWith(t *testing.T, mut func(*Server)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if mut != nil {
		mut(srv)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// doHdr is do with request headers; the conditional and range tests
// speak raw HTTP on purpose — the wire contract is the thing under
// test, not the client that happens to use it.
func doHdr(t *testing.T, method, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func bodyOf(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postRun(t *testing.T, url string, line string) {
	t.Helper()
	if resp := do(t, http.MethodPost, url+"/runs", []byte(line)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST run: %s", resp.Status)
	}
}

// TestRunsConditionalGet: the history stream carries a validator from
// its very first (empty) state, answers If-None-Match with 304, and
// issues a fresh validator the moment an append lands.
func TestRunsConditionalGet(t *testing.T) {
	_, ts := newTestServer(t)

	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	empty := resp.Header.Get("ETag")
	if empty == "" {
		t.Fatal("no ETag on the empty history")
	}
	if cl := resp.Header.Get("Content-Length"); cl != "0" {
		t.Errorf("empty history Content-Length = %q, want 0", cl)
	}
	if resp := doHdr(t, http.MethodGet, ts.URL+"/runs", nil,
		map[string]string{"If-None-Match": empty}); resp.StatusCode != http.StatusNotModified {
		t.Errorf("empty-history revalidation: %s, want 304", resp.Status)
	}

	postRun(t, ts.URL, `{"label":"run-0","cells":[]}`)
	postRun(t, ts.URL, `{"label":"run-1","cells":[]}`)

	resp = do(t, http.MethodGet, ts.URL+"/runs", nil)
	etag := resp.Header.Get("ETag")
	body := bodyOf(t, resp)
	if etag == "" || etag == empty {
		t.Fatalf("ETag after appends = %q (empty was %q)", etag, empty)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Errorf("Content-Length = %q, body is %d bytes", cl, len(body))
	}
	if resp := doHdr(t, http.MethodGet, ts.URL+"/runs", nil,
		map[string]string{"If-None-Match": etag}); resp.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation of current etag: %s, want 304", resp.Status)
	}

	// One more append: the held validator goes stale and the stream is
	// served again, under a new one.
	postRun(t, ts.URL, `{"label":"run-2","cells":[]}`)
	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after append with stale etag: %s, want 200", resp.Status)
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Error("append did not change the validator")
	}
	if lines := strings.Count(bodyOf(t, resp), "\n"); lines != 3 {
		t.Errorf("full stream has %d lines, want 3", lines)
	}
}

// TestRunsTailResume: "Range: bytes=N-" under a still-valid If-Range
// transfers exactly the appended tail; a validator from another life
// of the stream falls back to the full body; an offset beyond the end
// is 416 with the real size.
func TestRunsTailResume(t *testing.T) {
	_, ts := newTestServer(t)
	postRun(t, ts.URL, `{"label":"run-0","cells":[]}`)
	postRun(t, ts.URL, `{"label":"run-1","cells":[]}`)

	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	etag := resp.Header.Get("ETag")
	seen := len(bodyOf(t, resp))

	const tail = `{"label":"run-2","cells":[]}`
	postRun(t, ts.URL, tail)
	total := seen + len(tail) + 1

	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{
		"Range":    fmt.Sprintf("bytes=%d-", seen),
		"If-Range": etag,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("tail resume: %s, want 206", resp.Status)
	}
	if got := bodyOf(t, resp); got != tail+"\n" {
		t.Errorf("tail body = %q, want just the appended line", got)
	}
	if cr, want := resp.Header.Get("Content-Range"),
		fmt.Sprintf("bytes %d-%d/%d", seen, total-1, total); cr != want {
		t.Errorf("Content-Range = %q, want %q", cr, want)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(tail)+1) {
		t.Errorf("tail Content-Length = %q, want %d", cl, len(tail)+1)
	}
	current := resp.Header.Get("ETag")

	// A validator minted by some other stream: the offset means nothing
	// here, so the server serves the whole body instead of a tail.
	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{
		"Range":    fmt.Sprintf("bytes=%d-", seen),
		"If-Range": `"deadbeef.7-1f"`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("foreign If-Range: %s, want full 200", resp.Status)
	}
	if got := len(bodyOf(t, resp)); got != total {
		t.Errorf("foreign If-Range body = %d bytes, want the full %d", got, total)
	}

	// Resuming past the end names the real size, so the client can tell
	// "nothing new" from "start over".
	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{
		"Range":    fmt.Sprintf("bytes=%d-", total+100),
		"If-Range": current,
	})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-the-end resume: %s, want 416", resp.Status)
	}
	if cr, want := resp.Header.Get("Content-Range"), fmt.Sprintf("bytes */%d", total); cr != want {
		t.Errorf("416 Content-Range = %q, want %q", cr, want)
	}
}

// TestRunsTruncationInvalidatesResume: clearing the history file bumps
// the stream's generation, so a client resuming with its old validator
// gets the full fresh stream — never a garbage tail cut from unrelated
// bytes at its stale offset.
func TestRunsTruncationInvalidatesResume(t *testing.T) {
	srv, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		postRun(t, ts.URL, fmt.Sprintf(`{"label":"run-%d","cells":[]}`, i))
	}
	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	etag := resp.Header.Get("ETag")
	seen := len(bodyOf(t, resp))

	// An operator clears the fleet history down to one fresh line.
	const fresh = `{"label":"fresh","cells":[]}`
	if err := os.WriteFile(filepath.Join(srv.Dir(), "history.jsonl"), []byte(fresh+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{
		"If-None-Match": etag,
		"Range":         fmt.Sprintf("bytes=%d-", seen),
		"If-Range":      etag,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume across truncation: %s, want full 200", resp.Status)
	}
	if got := bodyOf(t, resp); got != fresh+"\n" {
		t.Errorf("post-truncation body = %q, want the fresh stream", got)
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Error("truncation did not change the generation validator")
	}
}

// TestOversizedBodyIs413: a body past the upload cap is "too big", not
// "malformed" — 413 on every upload endpoint, naming the cap, while a
// small body still lands.
func TestOversizedBodyIs413(t *testing.T) {
	_, ts := newServerWith(t, func(s *Server) { s.MaxBody = 64 })
	big := []byte(`{"pad":"` + strings.Repeat("x", 100) + `"}`)
	for _, ep := range []struct{ method, path string }{
		{http.MethodPut, "/objects/" + testKey},
		{http.MethodPost, "/runs"},
		{http.MethodPut, "/baselines/nightly"},
	} {
		resp := do(t, ep.method, ts.URL+ep.path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s with oversized body: %s, want 413", ep.method, ep.path, resp.Status)
		}
		if msg := bodyOf(t, resp); !strings.Contains(msg, "64 byte upload cap") {
			t.Errorf("%s %s 413 message %q does not name the cap", ep.method, ep.path, msg)
		}
	}
	if resp := do(t, http.MethodPost, ts.URL+"/runs", []byte(`{"label":"ok","cells":[]}`)); resp.StatusCode != http.StatusNoContent {
		t.Errorf("small body under the cap: %s, want 204", resp.Status)
	}
}

// TestAppendRetry: a /runs POST that loses the flock race to a
// colocated local writer is retried (and the contention counted)
// before the client ever hears 500 — and a lock that never clears
// still fails honestly.
func TestAppendRetry(t *testing.T) {
	var calls atomic.Int32
	srv, ts := newServerWith(t, func(s *Server) {
		real := s.appendFn
		s.appendFn = func(path string, line []byte) error {
			switch calls.Add(1) {
			case 1, 2:
				return errors.New("flock: resource temporarily unavailable")
			case 3:
				return real(path, line)
			default:
				return errors.New("flock: still held")
			}
		}
	})

	// Two lost races, then the lock clears: the client sees one clean 204.
	if resp := do(t, http.MethodPost, ts.URL+"/runs", []byte(`{"label":"contended","cells":[]}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST under brief contention: %s, want 204", resp.Status)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("append attempted %d times, want 3", n)
	}
	if v := srv.metrics.appendRetries.Value(); v != 2 {
		t.Errorf("append retry counter = %v, want 2", v)
	}

	// A lock held past the whole budget is a real failure.
	if resp := do(t, http.MethodPost, ts.URL+"/runs", []byte(`{"label":"stuck","cells":[]}`)); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("POST under persistent contention: %s, want 500", resp.Status)
	}
	if v := srv.metrics.appendRetries.Value(); v != 4 {
		t.Errorf("append retry counter after exhausted budget = %v, want 4", v)
	}
}
