package simstored

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"simbench/internal/sched"
	"simbench/internal/store"
)

// loadScale sizes the storm: 100 concurrent writers by default (the
// acceptance floor), a dozen under -short, and overridable from the
// environment so CI can run a reduced smoke without editing code.
func loadScale(t *testing.T) (writers, appends int) {
	t.Helper()
	writers, appends = 100, 2
	if testing.Short() {
		writers = 12
	}
	for _, env := range []struct {
		name string
		dst  *int
	}{
		{"SIMSTORED_LOAD_WRITERS", &writers},
		{"SIMSTORED_LOAD_APPENDS", &appends},
	} {
		if v := os.Getenv(env.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				t.Fatalf("%s=%q: want a positive integer", env.name, v)
			}
			*env.dst = n
		}
	}
	return writers, appends
}

// p99 reads the q=0.99 latency bound for one route off the server's
// own histogram exposition — the same numbers an operator's scrape
// sees. It returns the upper edge of the bucket the percentile lands
// in, and the sample count.
func p99(t *testing.T, srv *Server, route string) (bound float64, count int64) {
	t.Helper()
	prefix := fmt.Sprintf(`simstored_request_seconds_bucket{route=%q,le="`, route)
	type edge struct {
		le  float64
		cum int64
	}
	var edges []edge
	for _, line := range strings.Split(exposition(t, srv), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		q := strings.Index(rest, `"}`)
		if q < 0 {
			continue
		}
		cum, err := strconv.ParseInt(strings.TrimSpace(rest[q+2:]), 10, 64)
		if err != nil {
			t.Fatalf("histogram sample %q: %v", line, err)
		}
		le := rest[:q]
		if le == "+Inf" {
			count = cum
			continue
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("histogram edge %q: %v", line, err)
		}
		edges = append(edges, edge{v, cum})
	}
	if count == 0 {
		t.Fatalf("no %s latency samples in the exposition", route)
	}
	need := count - count/100 // ceil-ish 99th
	for _, e := range edges {
		if e.cum >= need {
			return e.le, count
		}
	}
	return edges[len(edges)-1].le * 10, count // landed in +Inf
}

// TestLoadStorm: hundreds of writers hammer POST /runs while readers
// poll the stream through the real client. Afterwards: every append is
// in the file exactly once, the tail protocol still transfers O(one
// line), and the server's own histograms bound the /runs p99.
func TestLoadStorm(t *testing.T) {
	writers, appends := loadScale(t)
	srv, ts := newTestServer(t)

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for a := 0; a < appends; a++ {
				line := fmt.Sprintf(`{"label":"w%d-a%d","cells":[]}`, w, a)
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/runs", strings.NewReader(line))
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("writer %d append %d: %s", w, a, resp.Status)
					return
				}
			}
		}(w)
	}
	// Readers ride along: incremental polls against a moving stream must
	// only ever see whole lines, never a torn tail.
	readerErrs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := store.Open("")
			if err != nil {
				readerErrs <- err
				return
			}
			rt, err := store.NewRemoteTier(ts.URL)
			if err != nil {
				readerErrs <- err
				return
			}
			st.AttachRemote(rt)
			defer st.Close()
			for i := 0; i < 8; i++ {
				if _, err := st.History(); err != nil {
					readerErrs <- fmt.Errorf("poll %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(readerErrs)
	for err := range errs {
		t.Fatal(err)
	}
	for err := range readerErrs {
		t.Fatal(err)
	}

	// Zero lost appends: every line is present exactly once.
	resp := do(t, http.MethodGet, ts.URL+"/runs", nil)
	etag := resp.Header.Get("ETag")
	body := bodyOf(t, resp)
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != writers*appends {
		t.Fatalf("history holds %d lines, want %d", len(lines), writers*appends)
	}
	seen := make(map[string]bool, len(lines))
	for _, line := range lines {
		if seen[line] {
			t.Fatalf("duplicated append: %q", line)
		}
		seen[line] = true
	}
	for w := 0; w < writers; w++ {
		for a := 0; a < appends; a++ {
			if line := fmt.Sprintf(`{"label":"w%d-a%d","cells":[]}`, w, a); !seen[line] {
				t.Errorf("lost append: %q", line)
			}
		}
	}

	// After the storm, one more append still travels as one line: the
	// incremental protocol's cost is O(appended bytes), not O(history).
	const tail = `{"label":"after-the-storm","cells":[]}`
	postRun(t, ts.URL, tail)
	resp = doHdr(t, http.MethodGet, ts.URL+"/runs", nil, map[string]string{
		"Range":    fmt.Sprintf("bytes=%d-", len(body)),
		"If-Range": etag,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("post-storm tail fetch: %s, want 206", resp.Status)
	}
	if got := bodyOf(t, resp); got != tail+"\n" {
		t.Errorf("post-storm tail = %d bytes, want the %d appended", len(got), len(tail)+1)
	}

	// The server's own histograms bound the storm's latency. The bound
	// is generous — CI machines under -race are slow — but it catches
	// the failure this test exists for: appends serializing behind the
	// flock into multi-second stalls.
	bound, count := p99(t, srv, "/runs")
	if count < int64(writers*appends) {
		t.Errorf("latency histogram saw %d /runs requests, want at least %d", count, writers*appends)
	}
	if bound > 2.5 {
		t.Errorf("/runs p99 landed in the ≤%gs bucket; the storm stalled", bound)
	}
}

// TestOfflineRenderAfterStorm: a history storm must not perturb what
// the store serves — the offline render through the server is
// byte-identical to the live run that measured the cells.
func TestOfflineRenderAfterStorm(t *testing.T) {
	_, ts := newTestServer(t)
	m := e2eMatrix(t)
	jobs := m.Jobs()

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachRemote(rt)
	s := sched.Scheduler{Workers: 2, Warmup: true, Store: st}
	live := s.Run(context.Background(), jobs)
	if err := sched.Errors(live); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendHistory("storm-e2e", live); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The storm: a pile of unrelated appends between the run and its
	// offline replay.
	for i := 0; i < 50; i++ {
		postRun(t, ts.URL, fmt.Sprintf(`{"label":"noise-%d","cells":[]}`, i))
	}

	// A fresh host renders offline from the server alone: the compacted
	// index resolves the cells, the blobs stream over, the table bytes
	// match the live run's.
	off, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := store.NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	off.AttachRemote(rt2)
	defer off.Close()
	results, missing, err := off.Coverage(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("cells missing after the storm: %v", missing)
	}
	if a, b := renderTable(m, live), renderTable(m, results); a != b {
		t.Errorf("offline render after the storm is not byte-identical:\n--- live\n%s\n--- offline\n%s", a, b)
	}
}
