package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simbench/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// tinyOpts makes every cell run in well under a second.
func tinyOpts(out *strings.Builder, st *store.Store) Options {
	return Options{Out: out, Scale: 2_000_000, SpecScale: 10_000, MinIters: 8, Repeats: 1, Store: st}
}

const userSpecJSON = `{
	"name": "hotpath",
	"renderer": "series",
	"arches": ["arm"],
	"benches": ["mem.hot", "ctrl.intrapage-direct"],
	"engines": ["v1.7.0", "v2.2.0", "v2.5.0-rc2"],
	"baseline": "v1.7.0",
	"series": {"per_bench": true},
	"title": "Hot-path speedup across releases ({arch} guest)"
}`

// TestOfflineRoundTrip is the end-to-end contract of the declarative
// layer: a user-defined JSON spec runs online, lands in history under
// its own label, and then renders offline byte-identically — with no
// engine constructed (the engine-factory call counter must not move)
// and no new history entry. Deleting one blob must turn the render
// into an error naming that cell and its content address.
func TestOfflineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(userSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := LoadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}

	cacheDir := filepath.Join(dir, "cache")
	st := openTestStore(t, cacheDir)
	var online strings.Builder
	if err := Run(sp, tinyOpts(&online, st)); err != nil {
		t.Fatal(err)
	}

	// The run is in history under the spec's own label.
	rr, err := st.LatestRun("hotpath")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Cells) != 2*3 {
		t.Fatalf("history run has %d cells", len(rr.Cells))
	}
	histPath := filepath.Join(cacheDir, "history.jsonl")
	linesBefore := historyLines(t, histPath)

	// Offline, from a fresh store handle (a later process): identical
	// bytes, zero engine constructions, zero new history entries.
	st2 := openTestStore(t, cacheDir)
	var offline strings.Builder
	builds := EngineBuildCount()
	if err := RenderOffline(sp, tinyOpts(&offline, st2)); err != nil {
		t.Fatal(err)
	}
	if got := EngineBuildCount() - builds; got != 0 {
		t.Errorf("offline render constructed %d engines, want 0", got)
	}
	if online.String() != offline.String() {
		t.Errorf("offline render diverges from the online run:\n--- online\n%s\n--- offline\n%s", online.String(), offline.String())
	}
	if after := historyLines(t, histPath); after != linesBefore {
		t.Errorf("offline render grew history from %d to %d entries", linesBefore, after)
	}

	// Delete one blob: the render must fail and name the cell by its
	// content address (the only handle on which cache file is gone).
	var blob string
	err = filepath.WalkDir(filepath.Join(cacheDir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			blob = path
		}
		return err
	})
	if err != nil || blob == "" {
		t.Fatalf("no blob found: %v", err)
	}
	if err := os.Remove(blob); err != nil {
		t.Fatal(err)
	}
	key := strings.TrimSuffix(filepath.Base(blob), ".json")
	st3 := openTestStore(t, cacheDir)
	err = RenderOffline(sp, tinyOpts(&strings.Builder{}, st3))
	var miss *MissingCellsError
	if !errors.As(err, &miss) {
		t.Fatalf("got %v, want MissingCellsError", err)
	}
	if len(miss.Missing) != 1 || !strings.Contains(err.Error(), key) {
		t.Errorf("missing-cell report does not name blob %s:\n%v", key, err)
	}

	// A spec whose cells were never measured reports every cell.
	fresh := sp
	fresh.Name = "neverran"
	fresh.Benches = []string{"exc.syscall"}
	err = RenderOffline(fresh, tinyOpts(&strings.Builder{}, st3))
	if !errors.As(err, &miss) {
		t.Fatalf("got %v, want MissingCellsError", err)
	}
	if len(miss.Missing) != 3 || !strings.Contains(err.Error(), "no completed run in history") {
		t.Errorf("never-run spec: %v", err)
	}
}

// TestOfflineMatrixAndDensity: the other two renderers round-trip
// offline the same way — the matrix table from blob-backed results,
// the density table from the full stats the blobs preserve.
func TestOfflineMatrixAndDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	matrix := Spec{
		Name:     "minimatrix",
		Renderer: RenderMatrix,
		Arches:   []string{"arm"},
		Benches:  []string{"mem.hot", "exc.syscall"},
		Engines:  []string{"interp", "v2.2.0"},
		Noise:    true,
	}
	density := Spec{
		Name:     "minidensity",
		Renderer: RenderDensity,
		Arches:   []string{"arm"},
		Benches:  []string{"spec.mcf", "spec.sjeng", "mem.hot", "exc.syscall"},
	}
	for _, sp := range []Spec{matrix, density} {
		cacheDir := t.TempDir()
		st := openTestStore(t, cacheDir)
		var online strings.Builder
		if err := Run(sp, tinyOpts(&online, st)); err != nil {
			t.Fatal(err)
		}
		st2 := openTestStore(t, cacheDir)
		var offline strings.Builder
		builds := EngineBuildCount()
		if err := RenderOffline(sp, tinyOpts(&offline, st2)); err != nil {
			t.Fatal(err)
		}
		if got := EngineBuildCount() - builds; got != 0 {
			t.Errorf("%s: offline render constructed %d engines, want 0", sp.Name, got)
		}
		if online.String() != offline.String() {
			t.Errorf("%s: offline diverges:\n--- online\n%s\n--- offline\n%s", sp.Name, online.String(), offline.String())
		}
	}
}

func TestOfflineNeedsStore(t *testing.T) {
	sp, _ := Lookup("fig7")
	if err := RenderOffline(sp, Options{Out: &strings.Builder{}}); err == nil ||
		!strings.Contains(err.Error(), "needs a store") {
		t.Errorf("got %v", err)
	}
}

func historyLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}
