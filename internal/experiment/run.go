package experiment

import (
	"context"
	"fmt"
	"io"
	"os"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/machine"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/spec"
	"simbench/internal/stats"
	"simbench/internal/store"
)

// Options control experiment scale and output — the runtime knobs a
// CLI owns, as opposed to the Spec, which describes the experiment
// itself. (This is the figures.Options of earlier revisions, moved
// here with the scheduler and store wiring.)
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Scale divides every SimBench paper iteration count; 1 reproduces
	// the paper's counts (hours of runtime), the CLI default is 2000.
	Scale int64
	// SpecScale divides the SPEC-like workload iteration counts.
	SpecScale int64
	// MinIters floors the scaled iteration count.
	MinIters int64
	// Repeats is the number of times each measurement is taken; the
	// minimum kernel time is reported (standard noise suppression on a
	// shared host).
	Repeats int
	// Progress, when set, receives one line per completed run.
	Progress io.Writer
	// Jobs is the number of matrix cells run concurrently; <=0 means
	// GOMAXPROCS. Concurrent cells share the host, so use 1 when the
	// absolute times themselves are the result rather than a check.
	Jobs int
	// Store, when non-nil, caches completed cells content-addressed —
	// specs share their overlapping cells within one run, and a
	// disk-backed store makes repeated invocations incremental. Each
	// spec's completed matrix is also appended to the store's run
	// history under the spec's label.
	Store *store.Store
	// HistoryLabel overrides the spec's history label, so a CLI can
	// record every invocation under one label regardless of which spec
	// ran the matrix.
	HistoryLabel string
	// Context cancels the experiment early (nil means Background);
	// cells that never started surface the context error.
	Context context.Context
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 2000
	}
	if o.SpecScale <= 0 {
		o.SpecScale = 20
	}
	if o.MinIters <= 0 {
		o.MinIters = 32
	}
	if o.Repeats <= 0 {
		o.Repeats = 2
	}
}

// Iters returns the scaled iteration count for a benchmark. The
// MinIters floor applies to the micro-benchmarks, whose paper counts
// are in the millions; application workloads have intentionally small
// counts (their kernels do much more per iteration), so they get a
// fixed small floor instead.
func (o *Options) Iters(b *core.Benchmark) int64 {
	o.fill()
	scale, floor := o.Scale, o.MinIters
	if b.Category == spec.CatApplication {
		scale, floor = o.SpecScale, 8
	}
	n := b.PaperIters / scale
	if n < floor {
		n = floor
	}
	return n
}

// effective returns the runtime options this spec actually runs with:
// the caller's options with the spec's pinned iteration policy and
// repeat count applied (a pinning spec measures the same cells no
// matter which tool or flags ran it), then defaults filled.
func (sp *Spec) effective(o Options) Options {
	if sp.Scale > 0 {
		o.Scale = sp.Scale
	}
	if sp.SpecScale > 0 {
		o.SpecScale = sp.SpecScale
	}
	if sp.MinIters > 0 {
		o.MinIters = sp.MinIters
	}
	if sp.Repeats > 0 {
		o.Repeats = sp.Repeats
	}
	o.fill()
	return o
}

// resolved is a Spec with every axis entry resolved to its live
// object: the executable (and renderable) form.
type resolved struct {
	spec    Spec
	arches  []arch.Support
	benches []*core.Benchmark
	engines []sched.Engine
	// cores is the validated core-count axis; empty means single-core.
	cores []int
	// engineCols are the engine column/x-axis labels: EngineCols for a
	// matrix spec that sets them, engine names otherwise.
	engineCols []string
	// baseIdx indexes the series baseline on the engine axis.
	baseIdx int
	// groups are the expanded explicit series lines.
	groups []seriesGroup
}

type seriesGroup struct {
	name    string
	benches []*core.Benchmark
}

// resolve validates the spec and expands every axis.
func (sp *Spec) resolve() (*resolved, error) {
	if sp.Name == "" || !specName.MatchString(sp.Name) {
		return nil, sp.errf("name %q must match %s", sp.Name, specName)
	}
	if sp.HistoryLabel != "" && !specName.MatchString(sp.HistoryLabel) {
		return nil, sp.errf("history_label %q must match %s", sp.HistoryLabel, specName)
	}
	switch sp.Renderer {
	case RenderMatrix, RenderSeries, RenderDensity:
	case "":
		return nil, sp.errf("renderer is required (matrix, series or density)")
	default:
		return nil, sp.errf("unknown renderer %q (want matrix, series or density)", sp.Renderer)
	}
	if sp.Repeats < 0 || sp.Scale < 0 || sp.SpecScale < 0 || sp.MinIters < 0 {
		return nil, sp.errf("repeats, scale, spec_scale and min_iters must be non-negative")
	}

	r := &resolved{spec: *sp}

	// Arches: named subset, or all.
	if len(sp.Arches) == 0 {
		r.arches = arch.All()
	} else {
		seenA := make(map[string]bool)
		for i, name := range sp.Arches {
			if seenA[name] {
				return nil, sp.errf("architecture %q appears twice on the arch axis", name)
			}
			seenA[name] = true
			found := false
			for _, s := range arch.All() {
				if s.Name() == name {
					r.arches = append(r.arches, s)
					found = true
				}
			}
			if !found {
				return nil, sp.errf("arches[%d]: unknown architecture %q (want arm or x86)", i, name)
			}
		}
	}

	var err error
	if len(sp.Benches) == 0 {
		return nil, sp.errf("benches is required (names or suite:/cat: selectors)")
	}
	if r.benches, err = expandBenches(sp.Benches); err != nil {
		return nil, sp.errf("%v", err)
	}
	seenB := make(map[string]bool)
	for _, b := range r.benches {
		if seenB[b.Name] {
			return nil, sp.errf("benchmark %q appears twice on the bench axis", b.Name)
		}
		seenB[b.Name] = true
	}

	engines := sp.Engines
	if len(engines) == 0 {
		switch sp.Renderer {
		case RenderMatrix:
			engines = platformNames()
		case RenderDensity:
			engines = []string{"profile"}
		default:
			return nil, sp.errf(`a series spec needs an explicit engine axis (it is the x axis; e.g. ["releases"])`)
		}
	}
	if r.engines, err = expandEngines(engines); err != nil {
		return nil, sp.errf("%v", err)
	}
	seenE := make(map[string]bool)
	for _, e := range r.engines {
		if seenE[e.Name] {
			return nil, sp.errf("engine %q appears twice on the engine axis", e.Name)
		}
		seenE[e.Name] = true
	}

	// Cores: validated values, strictly increasing so the axis has one
	// canonical spelling (a reordered or duplicated axis would change
	// the matrix without changing any cell).
	if len(sp.Cores) > 0 && sp.Renderer != RenderMatrix {
		return nil, sp.errf("cores only applies to the matrix renderer")
	}
	for i, c := range sp.Cores {
		switch {
		case c < 1:
			return nil, sp.errf("cores[%d]: core count %d must be >= 1", i, c)
		case c > machine.MaxHarts:
			return nil, sp.errf("cores[%d]: core count %d exceeds the platform maximum %d", i, c, machine.MaxHarts)
		case i > 0 && c <= sp.Cores[i-1]:
			return nil, sp.errf("cores[%d]: core count %d must be strictly increasing (follows %d)", i, c, sp.Cores[i-1])
		}
	}
	r.cores = sp.Cores

	// Renderer-specific shape.
	switch sp.Renderer {
	case RenderMatrix:
		if len(sp.EngineCols) > 0 && len(sp.EngineCols) != len(r.engines) {
			return nil, sp.errf("engine_cols has %d labels for %d engines", len(sp.EngineCols), len(r.engines))
		}
	case RenderSeries:
		if len(r.engines) < 2 {
			return nil, sp.errf("a series spec needs at least two engines on its axis (the speedup x axis)")
		}
	case RenderDensity:
		// Densities come from the profiling interpreter's operation
		// classification; any other engine would measure a whole
		// matrix and then render a table of zeros.
		if len(r.engines) != 1 || r.engines[0].Name != "profile" {
			return nil, sp.errf(`a density spec measures on the profiling interpreter: engines must be ["profile"] (or unset)`)
		}
	}
	if sp.Renderer != RenderMatrix {
		if len(sp.EngineCols) > 0 {
			return nil, sp.errf("engine_cols only applies to the matrix renderer")
		}
		if sp.BenchTitles {
			return nil, sp.errf("bench_titles only applies to the matrix renderer")
		}
		if sp.Noise {
			return nil, sp.errf("noise only applies to the matrix renderer (the others print ratios, not absolute times)")
		}
	}

	r.engineCols = make([]string, len(r.engines))
	for i, e := range r.engines {
		r.engineCols[i] = e.Name
	}
	if len(sp.EngineCols) > 0 {
		copy(r.engineCols, sp.EngineCols)
	}

	// Series shape: baseline and lines.
	if sp.Renderer == RenderSeries {
		if sp.Baseline != "" {
			r.baseIdx = -1
			for i, e := range r.engines {
				if e.Name == sp.Baseline {
					r.baseIdx = i
				}
			}
			if r.baseIdx < 0 {
				return nil, sp.errf("baseline %q is not on the engine axis", sp.Baseline)
			}
		}
		switch {
		case sp.Series.PerBench && len(sp.Series.Groups) > 0:
			return nil, sp.errf("series: per_bench and groups are mutually exclusive")
		case !sp.Series.PerBench && len(sp.Series.Groups) == 0:
			return nil, sp.errf("series: need per_bench or at least one group")
		}
		for gi, g := range sp.Series.Groups {
			if g.Name == "" {
				return nil, sp.errf("series.groups[%d]: name is required", gi)
			}
			gb, err := expandBenches(g.Benches)
			if err != nil || len(gb) == 0 {
				return nil, sp.errf("series.groups[%d] (%s): %v", gi, g.Name, orEmpty(err))
			}
			seenG := make(map[string]bool)
			for _, b := range gb {
				if !seenB[b.Name] {
					return nil, sp.errf("series.groups[%d] (%s): benchmark %q is not on the bench axis", gi, g.Name, b.Name)
				}
				// A benchmark listed twice would count twice in the
				// group's geomean — a silently skewed series.
				if seenG[b.Name] {
					return nil, sp.errf("series.groups[%d] (%s): benchmark %q appears twice in the group", gi, g.Name, b.Name)
				}
				seenG[b.Name] = true
			}
			r.groups = append(r.groups, seriesGroup{name: g.Name, benches: gb})
		}
	} else {
		if sp.Baseline != "" {
			return nil, sp.errf("baseline only applies to the series renderer")
		}
		if sp.Series.PerBench || len(sp.Series.Groups) > 0 {
			return nil, sp.errf("series only applies to the series renderer")
		}
	}
	return r, nil
}

func orEmpty(err error) error {
	if err == nil {
		return fmt.Errorf("expands to no benchmarks")
	}
	return err
}

// matrix expands the resolved axes into the scheduler's matrix form
// under the effective options.
func (r *resolved) matrix(o *Options) sched.Matrix {
	return sched.Matrix{
		Arches:  r.arches,
		Benches: r.benches,
		Engines: r.engines,
		Cores:   r.cores,
		Iters:   o.Iters,
		Repeats: o.Repeats,
	}
}

// runMatrix executes a matrix on the scheduler with the Options'
// parallelism, wiring completed cells into the progress stream and the
// store (this is the scheduler/store wiring that used to live in
// figures.Options.run). name tags progress lines and warnings (the
// spec's identity, whoever ran it); label is what history records the
// run under (a CLI may override it). Results come back in matrix
// order, together with a per-cell noise lookup over the store's prior
// history (nil without a store, or when the spec does not annotate
// per-cell measurements) — built from history as it stood before this
// run is appended, so a measurement never vouches for its own
// normality.
func runMatrix(name, label string, m sched.Matrix, o *Options, wantNoise, warmup bool) ([]sched.Result, func(report.Record) *stats.Band) {
	s := sched.Scheduler{Workers: o.Jobs, Warmup: warmup}
	if o.Store != nil {
		s.Store = o.Store
	}
	if o.Progress != nil {
		s.Progress = func(r sched.Result) { sched.FprintProgress(o.Progress, name, r) }
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := s.Run(ctx, m.Jobs())
	var noise func(report.Record) *stats.Band
	if o.Store != nil {
		if wantNoise {
			if runs, err := o.Store.History(); err == nil && len(runs) > 0 {
				noise = store.NoiseLookup(runs, store.StatGate{})
			} else if err != nil {
				// Unreadable history only costs the ± annotations, but
				// silently is how noise consumers go blind.
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			}
		}
		if err := o.Store.AppendHistory(label, results); err != nil {
			// History loss must be visible even without -v: a silent
			// gap here means simbase later baselines a stale run.
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		}
	}
	return results, noise
}

// Run validates and executes a spec: the whole experiment on the
// concurrent scheduler, recorded in the store's history under the
// spec's label, rendered to o.Out. Failed cells render as ERR in a
// matrix table and come back as one aggregated error; the series and
// density renderers need every cell, so they return the aggregated
// error without rendering.
func Run(sp Spec, o Options) error {
	r, err := sp.resolve()
	if err != nil {
		return err
	}
	eff := sp.effective(o)
	label := sp.Label()
	if o.HistoryLabel != "" {
		label = o.HistoryLabel
	}
	// Warmup matters when absolute times are the result; the density
	// renderer reports deterministic operation counts, so a discarded
	// warm-up run would be pure waste.
	warmup := sp.Renderer != RenderDensity
	results, noise := runMatrix(sp.Name, label, r.matrix(&eff), &eff, sp.Noise, warmup)
	return r.render(&eff, results, noise)
}

// RunNamed runs a registered spec by name.
func RunNamed(name string, o Options) error {
	sp, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("experiment: no registered spec %q (have %v)", name, Names())
	}
	return Run(sp, o)
}
