package experiment

// The paper's matrix figures, as data. Registration order is the
// order `simreport -all` and simbench.RunAll execute them in (after
// the static Figs. 4 and 5): the operation-density table first, then
// the full runtime matrix, then the three version sweeps — the same
// sequence the hand-coded drivers ran.
//
// Everything a driver used to hard-code is a field here: the axes,
// the renderer, the paper's display labels, the speedup baseline and
// grouping, the history label, whether cells carry noise bands. A
// user spec file (see the README's "Writing an experiment spec") is
// this exact shape in JSON.
func init() {
	MustRegister(Spec{
		Name:     "fig3",
		Renderer: RenderDensity,
		Title:    "Fig. 3 — benchmarks, iterations and operation density (scale 1/{scale})",
		Arches:   []string{"arm"},
		Benches:  []string{"suite:spec", "suite:simbench"},
		Engines:  []string{"profile"},
		// Densities are deterministic operation counts; one run per
		// cell is the measurement.
		Repeats: 1,
	})
	MustRegister(Spec{
		Name:        "fig7",
		Renderer:    RenderMatrix,
		Title:       "Fig. 7 — SimBench runtimes, {arch} guest (kernel seconds; scale 1/{scale})",
		Benches:     []string{"suite:simbench"},
		Engines:     []string{"dbt", "interp", "detailed", "virt", "native"},
		EngineCols:  []string{"qemu-dbt", "simit(interp)", "gem5(detailed)", "qemu-kvm(virt)", "native"},
		BenchTitles: true,
		Noise:       true,
	})
	MustRegister(Spec{
		Name:     "fig2",
		Renderer: RenderSeries,
		Title:    "Fig. 2 — SPEC-like speedup across QEMU releases (baseline v1.7.0; scale 1/{specscale})",
		Arches:   []string{"arm"},
		Benches:  []string{"suite:spec"},
		Engines:  []string{"releases"},
		Series: SeriesSpec{Groups: []SeriesGroup{
			{Name: "sjeng", Benches: []string{"spec.sjeng"}},
			{Name: "SPEC (overall)", Benches: []string{"suite:spec"}},
			{Name: "mcf", Benches: []string{"spec.mcf"}},
		}},
	})
	MustRegister(Spec{
		Name:     "fig6",
		Renderer: RenderSeries,
		Title:    "Fig. 6 — {category}, {arch} guest (speedup vs v1.7.0; scale 1/{scale})",
		Benches:  []string{"suite:simbench"},
		Engines:  []string{"releases"},
		Series:   SeriesSpec{PerBench: true},
	})
	MustRegister(Spec{
		Name:     "fig8",
		Renderer: RenderSeries,
		Title:    "Fig. 8 — geomean speedup across QEMU releases (baseline v1.7.0; scales 1/{specscale} spec, 1/{scale} simbench)",
		Arches:   []string{"arm"},
		Benches:  []string{"suite:spec", "suite:simbench"},
		Engines:  []string{"releases"},
		Series: SeriesSpec{Groups: []SeriesGroup{
			{Name: "SPEC", Benches: []string{"suite:spec"}},
			{Name: "SimBench", Benches: []string{"suite:simbench"}},
		}},
	})
}
