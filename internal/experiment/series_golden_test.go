package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simbench/internal/core"
	"simbench/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticResults fabricates a deterministic result set for a spec's
// expanded matrix: kernel times vary by benchmark, engine and
// architecture position, so speedup series exercise real ratio math
// without running a guest.
func syntheticResults(t *testing.T, sp Spec, o *Options) []sched.Result {
	t.Helper()
	r, err := sp.resolve()
	if err != nil {
		t.Fatal(err)
	}
	m := r.matrix(o)
	jobs := m.Jobs()
	nE, nB := len(r.engines), len(r.benches)
	results := make([]sched.Result, len(jobs))
	for i, j := range jobs {
		ei := i % nE
		bi := (i / nE) % nB
		ai := i / (nE * nB)
		// Slower for later benches and arches, engine effect varying
		// non-monotonically so series go up and down like real sweeps.
		kernel := time.Duration((bi+1)*(ai+2))*50*time.Millisecond +
			time.Duration((ei*ei)%17)*7*time.Millisecond
		results[i] = sched.Result{
			Job: j, Index: i, Kernel: kernel,
			Run: &core.Result{
				Benchmark: j.Bench,
				Engine:    j.Engine.Name,
				Arch:      j.Arch.Name(),
				Iters:     j.Iters,
				Kernel:    kernel,
			},
		}
	}
	return results
}

// renderSpec renders a spec over a fixed result set.
func renderSpec(t *testing.T, sp Spec, results func(*testing.T, Spec, *Options) []sched.Result) string {
	t.Helper()
	var sb strings.Builder
	o := Options{Out: &sb, Scale: 1000, SpecScale: 10, MinIters: 16}
	eff := sp.effective(o)
	r, err := sp.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.render(&eff, results(t, sp, &eff), nil); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s diverges from golden file:\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}

// TestSeriesGolden pins the speedup-series output of the three sweep
// figures over synthetic results: panel titles and order, x labels,
// group and per-bench series, geomean aggregation, the 1.000 baseline
// column — the whole rendered byte stream.
func TestSeriesGolden(t *testing.T) {
	for _, name := range []string{"fig2", "fig6", "fig8"} {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("no %s", name)
		}
		checkGolden(t, name+"_series.golden", renderSpec(t, sp, syntheticResults))
	}
}

// TestSeriesBaselineColumn: every series' point at the baseline
// engine is exactly 1.000 (speedup against itself), wherever the
// baseline sits on the axis.
func TestSeriesBaselineColumn(t *testing.T) {
	sp := validSeries()
	sp.Baseline = "v2.2.0" // second of the two engines
	out := renderSpec(t, sp, syntheticResults)
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "v2.2.0") {
			continue
		}
		rows++
		for _, f := range strings.Fields(line)[1:] {
			if f != "1.000" {
				t.Errorf("baseline row %q, want all 1.000", line)
			}
		}
	}
	// Two categories on the axis → two panels, one baseline row each.
	if rows != 2 {
		t.Fatalf("%d baseline rows in:\n%s", rows, out)
	}
}

// TestSeriesCachedMatchesFresh runs a tiny sweep spec twice against
// one in-process store: the second run is served entirely from cache
// and must render byte-identically to the fresh one — the store
// round-trips full results, and incremental sweeps must not change a
// figure.
func TestSeriesCachedMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sp := Spec{
		Name:     "cachedsweep",
		Renderer: RenderSeries,
		Arches:   []string{"arm"},
		Benches:  []string{"mem.hot", "ctrl.intrapage-direct"},
		Engines:  []string{"v1.7.0", "v2.2.0"},
		Series: SeriesSpec{Groups: []SeriesGroup{
			{Name: "hot", Benches: []string{"mem.hot"}},
			{Name: "overall", Benches: []string{"mem.hot", "ctrl.intrapage-direct"}},
		}},
	}
	st := openTestStore(t, "")
	render := func() (string, uint64) {
		var sb strings.Builder
		builds := EngineBuildCount()
		o := Options{Out: &sb, Scale: 2_000_000, MinIters: 8, Repeats: 1, Store: st}
		if err := Run(sp, o); err != nil {
			t.Fatal(err)
		}
		return sb.String(), EngineBuildCount() - builds
	}
	fresh, freshBuilds := render()
	cached, cachedBuilds := render()
	if fresh != cached {
		t.Errorf("cached sweep diverges from fresh:\n--- fresh\n%s\n--- cached\n%s", fresh, cached)
	}
	if freshBuilds == 0 {
		t.Error("fresh run built no engines")
	}
	// The cached run still computes content addresses (one throwaway
	// engine per cell) but must execute nothing; the offline path is
	// the one that promises zero constructions.
	if !strings.Contains(fresh, "1.000") {
		t.Errorf("baseline column missing:\n%s", fresh)
	}
	_ = cachedBuilds
}
