package experiment

import (
	"fmt"
	"strings"
	"time"

	"simbench/internal/core"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/spec"
	"simbench/internal/stats"
)

// title renders the spec's title template for one panel. The template
// placeholders substitute the panel's architecture and category and
// the effective scale divisors; a spec without a title gets a
// renderer-appropriate default so every table stays identifiable.
func (r *resolved) title(o *Options, archName, category string) string {
	t := r.spec.Title
	if t == "" {
		switch r.spec.Renderer {
		case RenderMatrix:
			t = r.spec.Name + " — {arch} guest (kernel seconds; scale 1/{scale})"
		case RenderDensity:
			t = r.spec.Name + " — operation density (scale 1/{scale})"
		default:
			if r.spec.Series.PerBench {
				t = r.spec.Name + " — {category}, {arch} guest (speedup vs " + r.engines[r.baseIdx].Name + ")"
			} else {
				t = r.spec.Name + " — {arch} guest (speedup vs " + r.engines[r.baseIdx].Name + ")"
			}
		}
	}
	return strings.NewReplacer(
		"{arch}", archName,
		"{category}", category,
		"{scale}", fmt.Sprint(o.Scale),
		"{specscale}", fmt.Sprint(o.SpecScale),
	).Replace(t)
}

// render dispatches a completed (or store-served) result set, in
// matrix order, to the spec's renderer.
func (r *resolved) render(o *Options, results []sched.Result, noise func(report.Record) *stats.Band) error {
	switch r.spec.Renderer {
	case RenderMatrix:
		return r.renderMatrix(o, results, noise)
	case RenderSeries:
		return r.renderSeries(o, results)
	case RenderDensity:
		return r.renderDensity(o, results)
	}
	return r.spec.errf("unknown renderer %q", r.spec.Renderer)
}

// renderMatrix prints one absolute-runtime table per guest
// architecture through the shared matrix renderer. Failed cells
// render as ERR in their table position and the failures come back as
// one aggregated error after the table is printed.
func (r *resolved) renderMatrix(o *Options, results []sched.Result, noise func(report.Record) *stats.Band) error {
	archNames := make([]string, len(r.arches))
	for i, sup := range r.arches {
		archNames[i] = sup.Name()
	}
	mt := report.MatrixTable{
		Title:      func(a string) string { return r.title(o, a, "") },
		EngineCols: r.engineCols,
		Arches:     archNames,
		Benches:    r.benches,
		Cores:      r.cores,
		Iters:      o.Iters,
		Noise:      noise,
	}
	if r.spec.BenchTitles {
		mt.BenchLabel = func(b *core.Benchmark) string { return b.Title }
	}
	mt.Fprint(o.Out, results)
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("%s: %w", r.spec.Name, err)
	}
	return nil
}

// kernelTimes collates one architecture's block of results into
// per-benchmark kernel times in engine-axis order (matrix order is
// benchmark-major, engine-minor within an architecture).
func kernelTimes(block []sched.Result) map[string][]time.Duration {
	times := make(map[string][]time.Duration)
	for _, res := range block {
		times[res.Job.Bench.Name] = append(times[res.Job.Bench.Name], res.Kernel)
	}
	return times
}

// speedups returns one benchmark's speedup against the baseline
// engine, per engine-axis position.
func (r *resolved) speedups(times map[string][]time.Duration, b *core.Benchmark, i int) float64 {
	return report.Speedup(times[b.Name][r.baseIdx], times[b.Name][i])
}

// groupPoint is one series point of an explicit group: a single
// benchmark's speedup directly, the geometric mean over the group
// otherwise. (The single-benchmark case must bypass the geomean: a
// log/exp round trip of one value is not always the value, and
// cached replays must render byte-identically to their fresh runs.)
func (r *resolved) groupPoint(times map[string][]time.Duration, g seriesGroup, i int) float64 {
	if len(g.benches) == 1 {
		return r.speedups(times, g.benches[0], i)
	}
	sp := make([]float64, 0, len(g.benches))
	for _, b := range g.benches {
		sp = append(sp, r.speedups(times, b, i))
	}
	return report.Geomean(sp)
}

// renderSeries prints the speedup-vs-baseline lines across the engine
// axis: one panel per architecture, panelled further per category in
// per-bench mode. The speedup math needs every cell, so a failed
// matrix returns its aggregated error without rendering.
func (r *resolved) renderSeries(o *Options, results []sched.Result) error {
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("%s: %w", r.spec.Name, err)
	}
	block := len(r.benches) * len(r.engines)
	for ai, sup := range r.arches {
		times := kernelTimes(results[ai*block : (ai+1)*block])
		if !r.spec.Series.PerBench {
			var series []report.Series
			for _, g := range r.groups {
				s := report.Series{Name: g.name}
				for i := range r.engines {
					s.Points = append(s.Points, r.groupPoint(times, g, i))
				}
				series = append(series, s)
			}
			report.FprintSeries(o.Out, r.title(o, sup.Name(), ""), r.engineCols, series)
			continue
		}
		for _, cat := range r.categories() {
			var series []report.Series
			for _, b := range r.benches {
				if b.Category != cat {
					continue
				}
				name := b.Title
				if name == "" {
					name = b.Name
				}
				s := report.Series{Name: name}
				for i := range r.engines {
					s.Points = append(s.Points, r.speedups(times, b, i))
				}
				series = append(series, s)
			}
			report.FprintSeries(o.Out, r.title(o, sup.Name(), string(cat)), r.engineCols, series)
		}
	}
	return nil
}

// categories lists the categories present on the bench axis: the
// paper's five in paper order first, then any others (applications,
// custom categories) in first-appearance order.
func (r *resolved) categories() []core.Category {
	present := make(map[core.Category]bool)
	for _, b := range r.benches {
		present[b.Category] = true
	}
	var out []core.Category
	for _, cat := range core.Categories() {
		if present[cat] {
			out = append(out, cat)
			delete(present, cat)
		}
	}
	for _, b := range r.benches {
		if present[b.Category] {
			out = append(out, b.Category)
			delete(present, b.Category)
		}
	}
	return out
}

// renderDensity prints the operation-density table (the paper's
// Fig. 3 shape), one per architecture: the application workloads on
// the bench axis are aggregated into the comparator column, every
// other benchmark is a row reporting its own density and the density
// of its tested operation across that aggregate. Densities are
// deterministic counts, so the table needs every cell and a failed
// matrix returns its aggregated error without rendering.
func (r *resolved) renderDensity(o *Options, results []sched.Result) error {
	if err := sched.Errors(results); err != nil {
		return fmt.Errorf("%s: %w", r.spec.Name, err)
	}
	block := len(r.benches) * len(r.engines)
	for ai, sup := range r.arches {
		runs := make(map[string]*core.Result)
		var appResults []*core.Result
		for _, res := range results[ai*block : (ai+1)*block] {
			runs[res.Job.Bench.Name] = res.Run
			if res.Job.Bench.Category == spec.CatApplication {
				appResults = append(appResults, res.Run)
			}
		}
		agg := report.Aggregate(appResults)
		t := report.Table{
			Title:   r.title(o, sup.Name(), ""),
			Columns: []string{"category", "benchmark", "paper iters", "density(SimBench)", "density(SPEC-like)"},
		}
		for _, b := range r.benches {
			if b.Category == spec.CatApplication {
				continue
			}
			res := runs[b.Name]
			agg.Benchmark = b
			specDensity := 0.0
			if agg.Stats.Instructions > 0 && b.TestedOps != nil {
				specDensity = float64(b.TestedOps(agg)) / float64(agg.Stats.Instructions)
			}
			t.AddRow(string(b.Category), b.Title, fmt.Sprint(b.PaperIters),
				report.Density(res.OpDensity()), report.Density(specDensity))
		}
		t.Fprint(o.Out)
	}
	return nil
}
