package experiment

// EngineBuildCount exposes the engine-construction counter: the
// offline tests assert that rendering from the store builds no
// engine at all.
func EngineBuildCount() uint64 { return engineBuilds.Load() }
