package experiment

import (
	"errors"
	"fmt"
	"strings"

	"simbench/internal/report"
	"simbench/internal/stats"
	"simbench/internal/store"
)

// MissingCellsError reports the cells a spec needs that the store
// cannot serve — the reason an offline render was refused. It lists
// every missing cell (with the orphaned content address when history
// knows one), so one failed render is a complete shopping list for
// the run that would fill the gaps.
type MissingCellsError struct {
	Spec    string
	Total   int
	Missing []store.CellMiss
}

func (e *MissingCellsError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s: %d of %d cells cannot be rendered offline:", e.Spec, len(e.Missing), e.Total)
	for _, m := range e.Missing {
		b.WriteString("\n  ")
		b.WriteString(m.String())
	}
	return b.String()
}

// RenderOffline renders a spec from the store alone: every cell must
// already be covered — present in run history with its blob still
// served by a store tier — and the tables/series print byte-identical
// to a warm online run, because they are reconstructed from the very
// measurements that run recorded. No engine is constructed, no cell
// is measured, and nothing is appended to history; a spec with
// missing cells fails with a per-cell report instead of silently
// measuring the difference.
func RenderOffline(sp Spec, o Options) error {
	return RenderOfflineAll([]Spec{sp}, o)
}

// RenderOfflineAll renders several specs offline against one store.
// Coverage resolves from the store's compacted cell index — against a
// fleet store that is one /index round trip, not a download and
// re-parse of the whole history — built once and shared by every spec.
// The full history stream is only fetched (once) when some spec wants
// noise annotations, which need the complete sample pool. Rendering
// stops at the first failing spec, whose error lists all of its
// missing cells.
func RenderOfflineAll(specs []Spec, o Options) error {
	if o.Store == nil {
		return errors.New("experiment: offline rendering needs a store (-cache-dir or -remote)")
	}
	idx, err := o.Store.CellIndex()
	if err != nil {
		return err
	}
	var runs []store.RunRecord
	for _, sp := range specs {
		if sp.Noise {
			if runs, err = o.Store.History(); err != nil {
				return err
			}
			break
		}
	}
	for _, sp := range specs {
		if err := renderOffline(sp, o, runs, idx); err != nil {
			return err
		}
	}
	return nil
}

// renderOffline renders one spec from pre-parsed, pre-indexed history.
func renderOffline(sp Spec, o Options, runs []store.RunRecord, idx map[store.CellRef]string) error {
	r, err := sp.resolve()
	if err != nil {
		return err
	}
	eff := sp.effective(o)
	m := r.matrix(&eff)
	results, missing, err := o.Store.CoverageOf(o.Context, idx, m.Jobs())
	if err != nil {
		return fmt.Errorf("spec %s: %w", sp.Name, err)
	}
	if len(missing) > 0 {
		return &MissingCellsError{Spec: sp.Name, Total: len(results), Missing: missing}
	}
	var noise func(report.Record) *stats.Band
	if sp.Noise && len(runs) > 0 {
		// The annotation source a warm online run would use right now:
		// the full recorded history (which, unlike the run that took a
		// cell's newest measurement, includes that measurement in the
		// pool — the byte-identity contract is with a warm rerun, not
		// with the measuring run's own output). Offline appends
		// nothing, so rendering twice gives the same bands.
		noise = store.NoiseLookup(runs, store.StatGate{})
	}
	return r.render(&eff, results, noise)
}
