package experiment

import (
	"fmt"
	"sync/atomic"

	"simbench/internal/engine"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
	"simbench/internal/sched"
	"simbench/internal/versions"
)

// engineBuilds counts every engine instance constructed through the
// experiment layer's factories. Offline rendering promises to build
// none — measurements come from the store, so there is nothing for an
// engine to do — and the tests hold it to that promise through this
// counter.
var engineBuilds atomic.Uint64

// engineFactory resolves an engine name to a constructor WITHOUT
// building anything: name validation must be free, because the
// offline path resolves whole specs and never constructs an engine
// (constructing one per cell is exactly the cost the content-address
// fingerprint pays, and offline rendering exists to avoid it).
func engineFactory(name string) (func() engine.Engine, error) {
	switch name {
	case "dbt":
		return func() engine.Engine { return versions.Latest().Engine() }, nil
	case "interp":
		return func() engine.Engine { return interp.New() }, nil
	case "profile":
		return func() engine.Engine { return interp.NewProfiling() }, nil
	case "detailed":
		return func() engine.Engine { return detailed.New() }, nil
	case "virt":
		return func() engine.Engine { return direct.New(direct.ModeVirt) }, nil
	case "native":
		return func() engine.Engine { return direct.New(direct.ModeNative) }, nil
	}
	if r, err := versions.ByName(name); err == nil {
		return func() engine.Engine { return r.Engine() }, nil
	}
	return nil, fmt.Errorf("unknown engine %q (want dbt|interp|detailed|virt|native|profile|<release>)", name)
}

// schedEngine wraps a constructor as a scheduler engine factory,
// counting constructions.
func schedEngine(name string, f func() engine.Engine) sched.Engine {
	return sched.Engine{Name: name, New: func() engine.Engine {
		engineBuilds.Add(1)
		return f()
	}}
}

// EngineByName builds an engine: dbt, interp, detailed, virt, native,
// profile (the density experiment's profiling interpreter), or a QEMU
// release tag such as v2.2.0 (a dbt engine so configured).
func EngineByName(name string) (engine.Engine, error) {
	f, err := engineFactory(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Engines returns the five evaluation platforms in paper column order:
// QEMU-DBT, SimIt-ARM, Gem5, QEMU-KVM, native.
func Engines() []engine.Engine {
	var out []engine.Engine
	for _, name := range platformNames() {
		e, _ := EngineByName(name)
		out = append(out, e)
	}
	return out
}

// platformNames are the five evaluation platforms in paper order.
func platformNames() []string {
	return []string{"dbt", "interp", "detailed", "virt", "native"}
}

// SchedEngines returns the five evaluation platforms as scheduler
// engine factories, in paper column order.
func SchedEngines() []sched.Engine {
	specs := make([]sched.Engine, 0, 5)
	for _, name := range platformNames() {
		f, _ := engineFactory(name)
		specs = append(specs, schedEngine(name, f))
	}
	return specs
}

// expandEngines resolves one engine selector list in order: the
// selector "releases" (every modelled release, chronological), or a
// single engine/release name. Resolution builds nothing; the returned
// factories construct lazily, per cell.
func expandEngines(sels []string) ([]sched.Engine, error) {
	var out []sched.Engine
	for i, sel := range sels {
		if sel == "releases" {
			for _, rel := range versions.All() {
				rel := rel
				out = append(out, schedEngine(rel.Name, func() engine.Engine { return rel.Engine() }))
			}
			continue
		}
		f, err := engineFactory(sel)
		if err != nil {
			return nil, fmt.Errorf("engines[%d]: %w", i, err)
		}
		out = append(out, schedEngine(sel, f))
	}
	return out, nil
}
