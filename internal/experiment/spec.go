// Package experiment turns the paper's hand-coded figure drivers into
// a declarative experiment layer: a Spec names its axes (benchmarks,
// engines or a release sweep, guest architectures), its iteration
// policy and its renderer, and one generic Run executes any Spec on
// the concurrent scheduler with full result-store integration. The
// paper's own figures are registered built-in Specs (see builtin.go),
// user-defined Specs load from JSON files, and any Spec whose cells
// are all present in a store renders offline — straight from recorded
// measurements, with no engine constructed and no cell measured.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/spec"
)

// Renderer kinds. A matrix spec prints one absolute-runtime table per
// guest architecture (the paper's Fig. 7 shape); a series spec prints
// speedup-vs-baseline lines across the engine axis (Figs. 2, 6, 8); a
// density spec prints the operation-density table (Fig. 3), measured
// on the profiling interpreter.
const (
	RenderMatrix  = "matrix"
	RenderSeries  = "series"
	RenderDensity = "density"
)

// Spec is a declarative experiment description: everything the figure
// drivers used to hard-code, as data. The zero value of every optional
// field means "the sensible default", so small specs stay small.
type Spec struct {
	// Name identifies the spec in the registry and is the default
	// history label its runs are recorded under.
	Name string `json:"name"`

	// Renderer is one of matrix, series, density.
	Renderer string `json:"renderer"`

	// Arches selects guest architectures ("arm", "x86"); empty means
	// all of them.
	Arches []string `json:"arches,omitempty"`

	// Benches selects the benchmark axis: benchmark or workload names,
	// or the selectors "suite:simbench", "suite:spec", "suite:ext" and
	// "cat:<category>" (e.g. "cat:Memory System"), which expand in
	// suite order.
	Benches []string `json:"benches"`

	// Engines selects the engine axis: dbt, interp, detailed, virt,
	// native, profile, a modelled release tag such as "v2.2.0", or the
	// selector "releases" (every modelled release in order). Empty
	// defaults per renderer: the five evaluation platforms for matrix,
	// the profiling interpreter for density; a series spec must name
	// its axis explicitly (it is the x axis).
	Engines []string `json:"engines,omitempty"`

	// Cores selects guest core counts (matrix renderer only); empty
	// means single-core, which keeps every pre-SMP spec, cell key and
	// rendered table unchanged. Values must be >= 1 and strictly
	// increasing.
	Cores []int `json:"cores,omitempty"`

	// Baseline names the engine-axis entry whose time is the speedup
	// denominator of a series spec; empty means the first entry.
	Baseline string `json:"baseline,omitempty"`

	// Series describes how a series spec derives its lines.
	Series SeriesSpec `json:"series,omitempty"`

	// Title is the rendered table/panel title. The placeholders
	// {arch}, {category}, {scale} and {specscale} substitute the panel
	// architecture, the panel category (per-bench series mode), and
	// the effective iteration-scale divisors.
	Title string `json:"title,omitempty"`

	// EngineCols overrides the matrix column headers (paper display
	// names like "simit(interp)"); empty uses the engine names.
	EngineCols []string `json:"engine_cols,omitempty"`

	// BenchTitles labels matrix rows with each benchmark's display
	// title instead of its name.
	BenchTitles bool `json:"bench_titles,omitempty"`

	// Repeats pins the per-cell measurement count; 0 follows the
	// runtime Options.
	Repeats int `json:"repeats,omitempty"`

	// Scale, SpecScale and MinIters pin the iteration policy; 0 fields
	// follow the runtime Options. A spec that pins its policy measures
	// the same cells no matter which tool or flags ran it.
	Scale     int64 `json:"scale,omitempty"`
	SpecScale int64 `json:"spec_scale,omitempty"`
	MinIters  int64 `json:"min_iters,omitempty"`

	// HistoryLabel overrides the label runs are recorded under in the
	// store's history; empty means Name.
	HistoryLabel string `json:"history_label,omitempty"`

	// Noise annotates matrix cells with their historical noise band
	// once enough history exists (matrix renderer only; the other
	// renderers print ratios and densities, not absolute times).
	Noise bool `json:"noise,omitempty"`
}

// SeriesSpec selects how a series spec derives its lines from the
// benchmark axis. Exactly one mode applies: PerBench, or Groups.
type SeriesSpec struct {
	// PerBench renders one line per benchmark, panelled per category
	// (the Fig. 6 shape).
	PerBench bool `json:"per_bench,omitempty"`
	// Groups defines each line explicitly (the Figs. 2 and 8 shape).
	Groups []SeriesGroup `json:"groups,omitempty"`
}

// SeriesGroup is one explicit series line: a single benchmark's
// speedup, or the geometric mean over several.
type SeriesGroup struct {
	// Name labels the line.
	Name string `json:"name"`
	// Benches selects the group's benchmarks (names or selectors, as
	// on the spec's bench axis — and they must be on that axis, or the
	// cells would never run). A group expanding to one benchmark plots
	// that benchmark's speedup; more take the geometric mean.
	Benches []string `json:"benches"`
}

// specName restricts names to history-label-safe tokens.
var specName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Label returns the history label runs of this spec are recorded
// under: HistoryLabel if set, the spec name otherwise.
func (sp *Spec) Label() string {
	if sp.HistoryLabel != "" {
		return sp.HistoryLabel
	}
	return sp.Name
}

// Validate checks the spec without running anything, resolving every
// axis entry so an unknown name fails here — with the offending field
// and value — rather than minutes into a matrix.
func (sp *Spec) Validate() error {
	_, err := sp.resolve()
	return err
}

// errf prefixes a validation error with the spec's identity.
func (sp *Spec) errf(format string, args ...any) error {
	name := sp.Name
	if name == "" {
		name = "(unnamed)"
	}
	return fmt.Errorf("spec %s: %s", name, fmt.Sprintf(format, args...))
}

// expandBenches resolves one benchmark selector list in order:
// suite:simbench, suite:spec, suite:ext, cat:<category>, or a single
// benchmark/workload name.
func expandBenches(sels []string) ([]*core.Benchmark, error) {
	var out []*core.Benchmark
	for i, sel := range sels {
		switch {
		case sel == "suite:simbench":
			out = append(out, bench.Suite()...)
		case sel == "suite:spec":
			out = append(out, spec.Suite()...)
		case sel == "suite:ext":
			out = append(out, bench.ExtSuite()...)
		case sel == "suite:smp":
			out = append(out, bench.SMPSuite()...)
		case strings.HasPrefix(sel, "cat:"):
			// Case-insensitive: categories are display strings ("Memory
			// System", "SMP"), and cat:smp should not be a typo.
			cat := strings.TrimPrefix(sel, "cat:")
			n := len(out)
			for _, b := range allBenches() {
				if strings.EqualFold(string(b.Category), cat) {
					out = append(out, b)
				}
			}
			if len(out) == n {
				return nil, fmt.Errorf("benches[%d]: no benchmark in category %q (have %v)", i, cat, categoryNames())
			}
		case strings.Contains(sel, ":"):
			return nil, fmt.Errorf("benches[%d]: unknown selector %q (want suite:simbench, suite:spec, suite:ext, suite:smp or cat:<category>)", i, sel)
		default:
			b, err := bench.ByName(sel)
			if err != nil {
				if b, err = spec.ByName(sel); err != nil {
					return nil, fmt.Errorf("benches[%d]: unknown benchmark %q (simbench -list shows names)", i, sel)
				}
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// allBenches is every known benchmark: micro suite, extensions, and
// the application workloads.
// ExpandBenches resolves a benchmark selector list the way a spec's
// benches axis does — names, suite:simbench, suite:spec, suite:ext,
// suite:smp, cat:<category> — so the CLI -bench flag and the spec
// file share one selector grammar.
func ExpandBenches(sels []string) ([]*core.Benchmark, error) {
	return expandBenches(sels)
}

func allBenches() []*core.Benchmark {
	all := append(append([]*core.Benchmark{}, bench.Suite()...), bench.ExtSuite()...)
	all = append(all, bench.SMPSuite()...)
	return append(all, spec.Suite()...)
}

func categoryNames() []string {
	var names []string
	for _, c := range core.Categories() {
		names = append(names, string(c))
	}
	return append(names, string(spec.CatApplication))
}

// Parse decodes a spec from JSON, rejecting unknown fields (a typoed
// field name must not silently revert to a default), and validates it.
func Parse(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	// Anything after the spec object is a malformed file, not padding.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return Spec{}, fmt.Errorf("spec: trailing data after spec object")
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// LoadFile reads and validates a spec from a JSON file.
func LoadFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	sp, err := Parse(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}
