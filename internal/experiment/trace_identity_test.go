package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"simbench/internal/obs"
	"simbench/internal/store"
)

// TestTracedRunRendersIdenticalTables is the live half of the tracing
// contract (the golden half lives in internal/sched): attaching a
// tracer — context tracer and store tracer both, exactly as the CLIs'
// -trace flag wires them — must not move a single rendered byte. The
// untraced run measures fresh; the traced run replays the same cells
// from the same store, which the byte-identity contract already pins
// to identical output; so any divergence here is tracing leaking into
// the render path. The trace itself must come out as valid Chrome
// trace-event JSON with per-cell spans.
func TestTracedRunRendersIdenticalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sp, err := Parse(strings.NewReader(`{
		"name": "traceid",
		"renderer": "series",
		"arches": ["arm"],
		"benches": ["mem.hot"],
		"engines": ["v1.7.0", "v2.2.0"],
		"baseline": "v1.7.0",
		"series": {"per_bench": true},
		"title": "trace identity ({arch} guest)"
	}`))
	if err != nil {
		t.Fatal(err)
	}

	cacheDir := filepath.Join(t.TempDir(), "cache")
	st := openTestStore(t, cacheDir)
	var untraced strings.Builder
	if err := Run(sp, tinyOpts(&untraced, st)); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, cacheDir)
	tracer := obs.NewTracer()
	st2.SetTracer(tracer)
	var traced strings.Builder
	opts := tinyOpts(&traced, st2)
	opts.Context = obs.WithTracer(context.Background(), tracer)
	if err := Run(sp, opts); err != nil {
		t.Fatal(err)
	}

	if untraced.String() != traced.String() {
		t.Errorf("traced render diverges from untraced:\n--- untraced ---\n%s\n--- traced ---\n%s",
			untraced.String(), traced.String())
	}
	hits, misses := st2.Stats()
	if misses != 0 || hits == 0 {
		t.Fatalf("traced run was not a full replay: %d hits, %d misses", hits, misses)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v", err)
	}
	spans := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name]++
		}
	}
	// One cell span and one key span per matrix cell, plus a store.get
	// per hit.
	if spans["cell"] == 0 || spans["key"] == 0 || spans["store.get"] == 0 {
		t.Errorf("trace lacks per-cell spans: %v", spans)
	}
}

// TestUntracedStoreUnaffected: SetTracer with nil (the CLIs' default)
// leaves the store fully functional.
func TestUntracedStoreUnaffected(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	st.SetTracer(nil)
	if _, misses := st.Stats(); misses != 0 {
		t.Fatal("fresh store has lookups")
	}
}
