package experiment

import (
	"fmt"
	"sort"
	"sync"
)

// The registry holds every known spec — the built-in paper figures
// plus anything the embedding program registers — in registration
// order, which is the order "run everything" tools iterate in: a
// newly registered spec appears in simreport -all and simbench.RunAll
// automatically, after the specs registered before it.
var registry struct {
	sync.Mutex
	order []string
	specs map[string]Spec
}

// Register validates a spec and adds it to the registry. Registering
// a name twice is an error: a spec is an experiment's identity (its
// history label, its -all slot), and silently replacing one would
// silently change what recorded history means.
func Register(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if registry.specs == nil {
		registry.specs = make(map[string]Spec)
	}
	if _, dup := registry.specs[sp.Name]; dup {
		return fmt.Errorf("experiment: spec %q already registered", sp.Name)
	}
	registry.specs[sp.Name] = sp
	registry.order = append(registry.order, sp.Name)
	return nil
}

// MustRegister is Register, panicking on error — for init-time
// registration of specs that are correct by construction.
func MustRegister(sp Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Lookup returns a registered spec by name.
func Lookup(name string) (Spec, bool) {
	registry.Lock()
	defer registry.Unlock()
	sp, ok := registry.specs[name]
	return sp, ok
}

// All returns every registered spec in registration order.
func All() []Spec {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Spec, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.specs[name])
	}
	return out
}

// Names returns the registered spec names, sorted — for error
// messages and listings.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	out := append([]string(nil), registry.order...)
	sort.Strings(out)
	return out
}
