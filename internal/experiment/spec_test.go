package experiment

import (
	"strings"
	"testing"
)

// validSeries is a minimal well-formed series spec the error tests
// mutate one field at a time.
func validSeries() Spec {
	return Spec{
		Name:     "t",
		Renderer: RenderSeries,
		Arches:   []string{"arm"},
		Benches:  []string{"mem.hot", "ctrl.intrapage-direct"},
		Engines:  []string{"v1.7.0", "v2.2.0"},
		Series:   SeriesSpec{PerBench: true},
	}
}

func TestValidateAcceptsBuiltinsAndMinimalSpecs(t *testing.T) {
	for _, sp := range All() {
		if err := sp.Validate(); err != nil {
			t.Errorf("builtin %s: %v", sp.Name, err)
		}
	}
	sp := validSeries()
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
	m := Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"suite:simbench"}}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	d := Spec{Name: "d", Renderer: RenderDensity, Benches: []string{"suite:spec", "mem.hot"}}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

// TestValidateErrors mutates one field at a time and requires the
// error to name what is wrong — the "precise errors" contract a spec
// author debugging a JSON file depends on.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		label string
		mut   func(*Spec)
		want  string
	}{
		{"empty name", func(sp *Spec) { sp.Name = "" }, "name"},
		{"bad name", func(sp *Spec) { sp.Name = "no spaces" }, "name"},
		{"bad label", func(sp *Spec) { sp.HistoryLabel = "a/b" }, "history_label"},
		{"no renderer", func(sp *Spec) { sp.Renderer = "" }, "renderer is required"},
		{"bad renderer", func(sp *Spec) { sp.Renderer = "pie" }, `unknown renderer "pie"`},
		{"bad arch", func(sp *Spec) { sp.Arches = []string{"sparc"} }, `arches[0]: unknown architecture "sparc"`},
		{"dup arch", func(sp *Spec) { sp.Arches = []string{"arm", "arm"} }, `"arm" appears twice`},
		{"no benches", func(sp *Spec) { sp.Benches = nil }, "benches is required"},
		{"bad bench", func(sp *Spec) { sp.Benches[0] = "mem.hott" }, `benches[0]: unknown benchmark "mem.hott"`},
		{"bad selector", func(sp *Spec) { sp.Benches[0] = "suite:qemu" }, `benches[0]: unknown selector`},
		{"empty category", func(sp *Spec) { sp.Benches[0] = "cat:Nope" }, `no benchmark in category "Nope"`},
		{"dup bench", func(sp *Spec) { sp.Benches = []string{"mem.hot", "mem.hot"} }, `"mem.hot" appears twice`},
		{"bad engine", func(sp *Spec) { sp.Engines[0] = "qemu" }, `engines[0]: unknown engine "qemu"`},
		{"dup engine", func(sp *Spec) { sp.Engines = []string{"dbt", "dbt"} }, `"dbt" appears twice`},
		{"series without engines", func(sp *Spec) { sp.Engines = nil }, "needs an explicit engine axis"},
		{"one-point series", func(sp *Spec) { sp.Engines = sp.Engines[:1] }, "at least two engines"},
		{"bad baseline", func(sp *Spec) { sp.Baseline = "v2.5.0-rc2" }, `baseline "v2.5.0-rc2" is not on the engine axis`},
		{"no series mode", func(sp *Spec) { sp.Series = SeriesSpec{} }, "per_bench or at least one group"},
		{"both series modes", func(sp *Spec) {
			sp.Series.Groups = []SeriesGroup{{Name: "g", Benches: []string{"mem.hot"}}}
		}, "mutually exclusive"},
		{"unnamed group", func(sp *Spec) {
			sp.Series = SeriesSpec{Groups: []SeriesGroup{{Benches: []string{"mem.hot"}}}}
		}, "groups[0]: name is required"},
		{"group off axis", func(sp *Spec) {
			sp.Series = SeriesSpec{Groups: []SeriesGroup{{Name: "g", Benches: []string{"exc.syscall"}}}}
		}, `benchmark "exc.syscall" is not on the bench axis`},
		{"dup bench in group", func(sp *Spec) {
			sp.Series = SeriesSpec{Groups: []SeriesGroup{{Name: "g", Benches: []string{"mem.hot", "mem.hot"}}}}
		}, `benchmark "mem.hot" appears twice in the group`},
		{"negative repeats", func(sp *Spec) { sp.Repeats = -1 }, "non-negative"},
	}
	for _, tc := range cases {
		sp := validSeries()
		tc.mut(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: no error", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
	}

	// Matrix-only fields on other renderers.
	for _, tc := range []struct {
		label string
		mut   func(*Spec)
		want  string
	}{
		{"engine_cols", func(sp *Spec) { sp.EngineCols = []string{"a", "b"} }, "engine_cols only applies"},
		{"bench_titles", func(sp *Spec) { sp.BenchTitles = true }, "bench_titles only applies"},
		{"noise", func(sp *Spec) { sp.Noise = true }, "noise only applies"},
	} {
		sp := validSeries()
		tc.mut(&sp)
		if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %v", tc.label, err)
		}
	}

	// The cores axis: matrix-only, every count >= 1 and within the
	// platform limit, strictly increasing (so no duplicates), each
	// violation named with its index and value.
	for _, tc := range []struct {
		label string
		cores []int
		want  string
	}{
		{"zero", []int{1, 0}, "cores[1]: core count 0 must be >= 1"},
		{"negative", []int{-2}, "cores[0]: core count -2 must be >= 1"},
		{"too many", []int{1, 512}, "cores[1]: core count 512 exceeds the platform maximum"},
		{"duplicate", []int{2, 2}, "cores[1]: core count 2 must be strictly increasing (follows 2)"},
		{"decreasing", []int{4, 2}, "cores[1]: core count 2 must be strictly increasing (follows 4)"},
	} {
		m := Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"suite:smp"}, Cores: tc.cores}
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("cores %s: error %v does not mention %q", tc.label, err, tc.want)
		}
	}
	s := validSeries()
	s.Cores = []int{1, 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cores only applies") {
		t.Errorf("series cores: %v", err)
	}
	valid := Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"suite:smp"}, Cores: []int{1, 2, 4}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid cores axis: %v", err)
	}

	// Series-only fields on a matrix spec.
	m := Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"mem.hot"}, Baseline: "dbt"}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "baseline only applies") {
		t.Errorf("matrix baseline: %v", err)
	}
	m = Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"mem.hot"}, Series: SeriesSpec{PerBench: true}}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "series only applies") {
		t.Errorf("matrix series: %v", err)
	}

	// Mis-sized engine_cols on a matrix spec.
	m = Spec{Name: "m", Renderer: RenderMatrix, Benches: []string{"mem.hot"}, EngineCols: []string{"just-one"}}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "engine_cols has 1 labels for 5 engines") {
		t.Errorf("engine_cols arity: %v", err)
	}

	// A density spec measures on the profiling interpreter, full stop:
	// any other engine would run the whole matrix and render zeros.
	for _, engines := range [][]string{{"profile", "interp"}, {"dbt"}} {
		d := Spec{Name: "d", Renderer: RenderDensity, Benches: []string{"mem.hot"}, Engines: engines}
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), `engines must be ["profile"]`) {
			t.Errorf("density engines %v: %v", engines, err)
		}
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"name":"x","renderer":"matrix","benches":["mem.hot"],"bogus":1}`)); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field: %v", err)
	}
	if _, err := Parse(strings.NewReader(`{"name":"x","renderer":"matrix","benches":["mem.hot"]} {"again":true}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("trailing data: %v", err)
	}
	sp, err := Parse(strings.NewReader(`{
		"name": "hotpath",
		"renderer": "series",
		"arches": ["arm"],
		"benches": ["mem.hot", "mem.cold"],
		"engines": ["v1.7.0", "v2.0.0", "v2.2.0"],
		"baseline": "v1.7.0",
		"series": {"per_bench": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "hotpath" || sp.Label() != "hotpath" {
		t.Errorf("parsed %+v", sp)
	}
}

func TestRegistryOrderAndDuplicates(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("registry has %d specs", len(all))
	}
	want := []string{"fig3", "fig7", "fig2", "fig6", "fig8"}
	for i, name := range want {
		if all[i].Name != name {
			t.Fatalf("registry order %v..., want %v (the -all execution order)", all[i].Name, want)
		}
	}
	if err := Register(all[0]); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: %v", err)
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Error("fig7 not found")
	}
	if _, ok := Lookup("fig9"); ok {
		t.Error("fig9 found")
	}
}

// TestRegisteredSpecAppearsInAll: the satellite contract — a newly
// registered spec joins the registry iteration automatically, in
// registration order.
func TestRegisteredSpecAppearsInAll(t *testing.T) {
	sp := validSeries()
	sp.Name = "registered-by-test"
	if err := Register(sp); err != nil {
		t.Fatal(err)
	}
	all := All()
	if got := all[len(all)-1].Name; got != sp.Name {
		t.Errorf("last registered spec is %q, want %q", got, sp.Name)
	}
}
