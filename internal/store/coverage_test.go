package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simbench/internal/bench"
	"simbench/internal/report"
	"simbench/internal/sched"
)

// coverageFixture stores two measured cells (two benchmarks of one
// job shape) and records them in history, the way a scheduler run
// would.
func coverageFixture(t *testing.T, dir string) (*Store, []sched.Job) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := testJob(t)
	other := base
	b, err := bench.ByName("mem.hot")
	if err != nil {
		t.Fatal(err)
	}
	other.Bench = b
	jobs := []sched.Job{base, other}
	results := make([]sched.Result, len(jobs))
	for i, j := range jobs {
		r := fabricate(j, time.Duration(i+1)*time.Second)
		r.Key = s.Key(j)
		s.Put(r.Key, r)
		results[i] = r
	}
	if err := s.AppendHistory("cov", results); err != nil {
		t.Fatal(err)
	}
	return s, jobs
}

func TestCoverageServesRecordedCells(t *testing.T) {
	s, jobs := coverageFixture(t, t.TempDir())
	results, missing, err := s.Coverage(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("missing = %v", missing)
	}
	for i, r := range results {
		if r.Run == nil || !r.Cached {
			t.Fatalf("cell %d not served from store: %+v", i, r)
		}
		if r.Index != i {
			t.Errorf("cell %d collated at index %d", i, r.Index)
		}
		if want := time.Duration(i+1) * time.Second; r.Kernel != want {
			t.Errorf("cell %d kernel %v, want %v", i, r.Kernel, want)
		}
	}
}

func TestCoverageReportsNeverRunCell(t *testing.T) {
	s, jobs := coverageFixture(t, t.TempDir())
	stranger := jobs[0]
	stranger.Iters = jobs[0].Iters * 2 // a different cell entirely
	_, missing, err := s.Coverage(context.Background(), append(jobs, stranger))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 {
		t.Fatalf("missing = %v, want exactly the stranger", missing)
	}
	if !strings.Contains(missing[0].Reason, "no completed run") {
		t.Errorf("reason %q", missing[0].Reason)
	}
	if got, want := missing[0].Ref, RefOf(stranger); got != want {
		t.Errorf("ref %v, want %v", got, want)
	}
}

// TestCoverageDistinguishesCoreCounts is the cores-axis regression
// for offline rendering: the same benchmark measured at several guest
// core counts is several distinct cells, and coverage must serve each
// row its own measurement — not whichever count history recorded
// last.
func TestCoverageDistinguishesCoreCounts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testJob(t)
	var jobs []sched.Job
	var results []sched.Result
	for i, c := range []int{1, 2, 4} {
		j := base
		j.Cores = c
		r := fabricate(j, time.Duration(i+1)*time.Second)
		r.Key = s.Key(j)
		s.Put(r.Key, r)
		jobs = append(jobs, j)
		results = append(results, r)
	}
	if err := s.AppendHistory("smp", results); err != nil {
		t.Fatal(err)
	}
	got, missing, err := s.Coverage(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("missing = %v", missing)
	}
	for i, r := range got {
		if want := time.Duration(i+1) * time.Second; r.Kernel != want {
			t.Errorf("cores=%d served kernel %v, want %v", jobs[i].EffectiveCores(), r.Kernel, want)
		}
	}

	// An unset count and an explicit 1 are the same cell — matching
	// the content address and history records that omit the field.
	one := base
	one.Cores = 1
	if RefOf(base) != RefOf(one) {
		t.Errorf("unset cores ref %v != explicit 1-core ref %v", RefOf(base), RefOf(one))
	}
	if rec := report.NewRecord(fabricate(base, time.Second)); RefOfRecord(rec) != RefOf(one) {
		t.Errorf("record ref %v != job ref %v", RefOfRecord(rec), RefOf(one))
	}
	smp := RefOf(jobs[1])
	if !strings.Contains(smp.String(), "@2c") {
		t.Errorf("multi-core ref renders %q without its core count", smp.String())
	}
	if s := RefOf(one).String(); strings.Contains(s, "@1c") {
		t.Errorf("single-core ref %q must render like the pre-SMP form", s)
	}
}

func TestCoverageReportsGoneBlob(t *testing.T) {
	dir := t.TempDir()
	s, jobs := coverageFixture(t, dir)
	key := s.Key(jobs[0])
	path := filepath.Join(dir, "objects", key[:2], key+".json")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// A fresh store: the in-process tier of the recording store still
	// holds the blob, but offline rendering happens in a later
	// process, which sees only the disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, missing, err := s2.Coverage(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0].Key != key {
		t.Fatalf("missing = %v, want exactly the deleted blob %s", missing, key)
	}
	// The report must name the content address: it is the only handle
	// the operator has on which cache file disappeared.
	if !strings.Contains(missing[0].Reason, key) {
		t.Errorf("reason %q does not name the blob", missing[0].Reason)
	}
}

// TestCoverageNewestRecordWins hand-crafts history so the same cell
// appears twice with different content addresses: coverage must trust
// the newer record. (In real history that happens when an older
// record predates a blob rewrite; the newest measurement is the one a
// warm online run would have replayed.)
func TestCoverageNewestRecordWins(t *testing.T) {
	dir := t.TempDir()
	s, jobs := coverageFixture(t, dir)
	j := jobs[0]
	real := s.Key(j)

	r := fabricate(j, time.Second)
	r.Key = real
	stale := NewRun("older", []sched.Result{r})
	stale.Cells[0].Key = strings.Repeat("d", 64) // a blob that no longer exists
	line, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := LockedAppend(filepath.Join(dir, historyFileName), line); err != nil {
		t.Fatal(err)
	}

	// Stale entry appended after the fixture's run: newest-wins now
	// picks the bogus key and coverage must miss.
	s2, _ := Open(dir)
	_, missing, err := s2.Coverage(context.Background(), jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0].Key != stale.Cells[0].Key {
		t.Fatalf("missing = %v, want the stale key to win by recency", missing)
	}
}

// TestCoverageIndexSkipsUnparsableKeys: a record whose key is not a
// valid content address must be treated as keyless — handing it to a
// lookup would fall back to recomputing the key, which constructs an
// engine, the one cost the offline path promises never to pay.
func TestCoverageIndexSkipsUnparsableKeys(t *testing.T) {
	s, jobs := coverageFixture(t, t.TempDir())
	runs, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	good := CoverageIndex(runs)
	runs[0].Cells[0].Key = "not-a-key"
	idx := CoverageIndex(runs)
	if len(idx) != len(good)-1 {
		t.Fatalf("index has %d entries, want %d (garbage key skipped)", len(idx), len(good)-1)
	}
	if _, ok := idx[RefOf(jobs[0])]; ok {
		t.Error("garbage-keyed cell is still indexed")
	}
}

// TestCoverageSkipsFailedCells: an errored record is not coverage,
// even when it is the newest entry for its cell — the blob its run
// never produced cannot be rendered.
func TestCoverageSkipsFailedCells(t *testing.T) {
	dir := t.TempDir()
	_, jobs := coverageFixture(t, dir)
	j := jobs[0]
	failed := RunRecord{Time: time.Now().UTC(), Label: "broken", Schema: SchemaVersion,
		Cells: []report.Record{{
			Benchmark: j.Bench.Name, Engine: j.Engine.Name, Arch: j.Arch.Name(),
			Iters: j.Iters, Repeats: j.Repeats, Error: "guest aborted",
		}}}
	line, err := json.Marshal(failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := LockedAppend(filepath.Join(dir, historyFileName), line); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir)
	results, missing, err := s2.Coverage(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("missing = %v; the earlier successful record should still cover the cell", missing)
	}
	if results[0].Run == nil {
		t.Fatal("cell not served")
	}
}

// TestCoverageIgnoresForeignHostRuns: a fleet history holds other
// machines' absolute times; offline coverage must not serve them as
// this host's evaluation (an online run here would miss those cells —
// content keys encode the host — and re-measure).
func TestCoverageIgnoresForeignHostRuns(t *testing.T) {
	s, _ := coverageFixture(t, t.TempDir())
	runs, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(CoverageIndex(runs)) == 0 {
		t.Fatal("own-host run not indexed")
	}
	runs[0].Host = "plan9/mips"
	if got := len(CoverageIndex(runs)); got != 0 {
		t.Errorf("%d foreign-host cells indexed, want 0", got)
	}
}

// TestCoverageHonoursCancellation: a cancelled context abandons the
// fetch pool and surfaces the context error instead of a misleading
// missing-cell report.
func TestCoverageHonoursCancellation(t *testing.T) {
	s, jobs := coverageFixture(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Coverage(ctx, jobs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
