package store

// This file is the store's entire observability surface: every obs
// reference, wall-clock read, and metric lives here, behind note*
// helpers the rest of the package calls. Observability is strictly
// write-only for the store — values flow into counters and spans,
// nothing is ever read back into a key, a blob, or a rendered byte —
// which is why the imports below carry determinism waivers instead of
// the package leaving the byte-identity scope.

import (
	"time"

	//simlint:allow determinism -- write-only observability: metric and span values flow out of the store and never back into keys, blobs, or rendered bytes
	"simbench/internal/obs"
)

// Store-side metrics on the process-wide default registry, scraped (or
// dumped) by the CLIs that own a Store.
var (
	mHits = obs.Default.CounterVec("simbench_store_hits_total",
		"lookups served from the store, by the tier that originally supplied the measurement", "tier")
	mMisses = obs.Default.Counter("simbench_store_misses_total",
		"lookups that missed every tier (the cell had to run)")
	mPromotions = obs.Default.CounterVec("simbench_store_promotions_total",
		"blobs copied into a faster tier after a slower one answered", "tier")
	mCoalesced = obs.Default.Counter("simbench_store_coalesced_lookups_total",
		"lookups that waited on another worker's in-flight probe of the same key instead of reading themselves")
	mQueueDepth = obs.Default.Gauge("simbench_store_writeback_queue_depth",
		"remote uploads currently queued behind the write-back goroutine")
	mDropped = obs.Default.Counter("simbench_store_writeback_dropped_total",
		"remote uploads shed because the write-back queue was full; local tiers keep the result, fleet sharing is deferred")
	mRemoteLatency = obs.Default.HistogramVec("simbench_store_remote_seconds",
		"remote tier round-trip latency by operation", obs.DefBuckets, "op")
	mDegrades = obs.Default.Counter("simbench_store_degraded_total",
		"times the remote tier was marked down and the store fell back to local tiers")
)

// nowMono and sinceSec are the store's only wall-clock reads; both feed
// latency metrics and trace spans exclusively.

//simlint:allow determinism -- latency timing feeds metrics and spans only, never output
func nowMono() time.Time { return time.Now() }

//simlint:allow determinism -- latency timing feeds metrics and spans only, never output
func sinceSec(t0 time.Time) float64 { return time.Since(t0).Seconds() }

// tracerRef is embedded by Store and RemoteTier so the rest of the
// package can carry a tracer without touching obs types. The field is
// written by SetTracer before the store is handed to a scheduler and
// read afterwards from worker and uploader goroutines; the goroutine
// start (workers) and queue send (uploader) order those accesses.
type tracerRef struct{ tr *obs.Tracer }

// SetTracer attaches a tracer for store-side spans: remote GET round
// trips, write-back uploads, degrade and drop markers. Call it before
// handing the store to a Scheduler, alongside obs.WithTracer on the
// run context. A nil tracer (the default) records nothing.
func (s *Store) SetTracer(tr *obs.Tracer) {
	s.tr = tr
	if s.remote != nil {
		s.remote.tr = tr
		tr.NameThread(obs.TidStoreRemote, "store: remote reads")
		tr.NameThread(obs.TidWriteback, "store: write-back")
	}
}

// noteLookup attributes one resolved lookup.
func noteLookup(origin Provenance, hit bool) {
	if hit {
		mHits.With(string(origin)).Inc()
	} else {
		mMisses.Inc()
	}
}

func notePromotion(dest Provenance) { mPromotions.With(string(dest)).Inc() }

func noteCoalesced() { mCoalesced.Inc() }

func noteQueueDepth(delta float64) { mQueueDepth.Add(delta) }

// traceRemote opens a latency observation plus (when traced) a span
// for one remote round trip; the returned func closes both.
func (rt *RemoteTier) traceRemote(op string, k Key) func() {
	tid := obs.TidStoreRemote
	if op == "put" {
		tid = obs.TidWriteback
	}
	sp := rt.tr.Begin(tid, "remote."+op, "store").Arg("key", k.String())
	t0 := nowMono()
	return func() {
		mRemoteLatency.With(op).Observe(sinceSec(t0))
		sp.End()
	}
}

// noteDegraded marks the first transition to degraded operation.
func (rt *RemoteTier) noteDegraded() {
	mDegrades.Inc()
	rt.tr.Instant(obs.TidStoreRemote, "degrade", "store")
}

// noteDrop marks one shed upload.
func (rt *RemoteTier) noteDrop() {
	mDropped.Inc()
	rt.tr.Instant(obs.TidWriteback, "writeback.drop", "store")
}
