package store

import (
	"testing"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/engine"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/interp"
	"simbench/internal/sched"
	"simbench/internal/versions"
)

// fuzzEngine picks an engine configuration from a small pool — the
// interpreter, the detailed model, and every modelled QEMU release —
// under a caller-chosen display name. Distinct pool entries are
// distinct configurations; the display name is deliberately not key
// material.
func fuzzEngine(sel byte, name string) sched.Engine {
	rels := versions.All()
	switch n := int(sel) % (2 + len(rels)); n {
	case 0:
		return sched.Engine{Name: name, New: func() engine.Engine { return interp.New() }}
	case 1:
		return sched.Engine{Name: name, New: func() engine.Engine { return detailed.New() }}
	default:
		rel := rels[n-2]
		return sched.Engine{Name: name, New: func() engine.Engine { return rel.Engine() }}
	}
}

// FuzzKeyFor fuzzes the canonicalization contract of the store's
// content addresses: semantically equal jobs must hash equal (display
// names and unset-vs-explicit defaults are not key material), and any
// flip of a real field — benchmark, scale, repeats, architecture,
// engine configuration — must move the key.
func FuzzKeyFor(f *testing.F) {
	f.Add(int64(64), 2, byte(0), byte(0), false, "v2.5.0-rc2")
	f.Add(int64(0), 0, byte(3), byte(1), true, "dbt")
	f.Add(int64(-7), 1, byte(200), byte(9), false, "")
	f.Add(int64(1<<40), 1000, byte(17), byte(4), true, "interp")
	f.Fuzz(func(t *testing.T, iters int64, repeats int, benchSel, engSel byte, useX86 bool, alias string) {
		benches := bench.Suite()
		b := benches[int(benchSel)%len(benches)]
		var sup arch.Support = arch.ARM{}
		var otherSup arch.Support = arch.X86{}
		if useX86 {
			sup, otherSup = otherSup, sup
		}
		j := sched.Job{
			Bench:   b,
			Engine:  fuzzEngine(engSel, "column-a"),
			Arch:    sup,
			Iters:   iters,
			Repeats: repeats,
		}
		key := KeyFor(j)

		// Determinism: hashing is a pure function of the job.
		if again := KeyFor(j); again != key {
			t.Fatalf("KeyFor not deterministic: %s vs %s", key, again)
		}

		// The engine's display name is not key material: a sweep's
		// release tag and Fig. 7's "dbt" column share cells.
		renamed := j
		renamed.Engine = fuzzEngine(engSel, alias)
		if KeyFor(renamed) != key {
			t.Errorf("display name %q moved the key", alias)
		}

		// Unset scale fields normalize through Job.Effective: leaving
		// Iters/Repeats at or below zero is the same cell as naming the
		// paper count and a single measurement explicitly.
		effIters, effRepeats := j.Effective()
		explicit := j
		explicit.Iters = effIters
		explicit.Repeats = effRepeats
		if KeyFor(explicit) != key {
			t.Errorf("explicit effective scale (iters=%d repeats=%d) moved the key of (iters=%d repeats=%d)",
				effIters, effRepeats, iters, repeats)
		}

		// Every real field flip must move the key.
		flips := []struct {
			name string
			mut  func(sched.Job) sched.Job
		}{
			{"benchmark", func(j sched.Job) sched.Job {
				j.Bench = benches[(int(benchSel)+1)%len(benches)]
				return j
			}},
			{"iters", func(j sched.Job) sched.Job {
				j.Iters = effIters + 1
				return j
			}},
			{"repeats", func(j sched.Job) sched.Job {
				j.Repeats = effRepeats + 1
				return j
			}},
			{"arch", func(j sched.Job) sched.Job {
				j.Arch = otherSup
				return j
			}},
			{"engine", func(j sched.Job) sched.Job {
				// interp and the detailed model are guaranteed-distinct
				// configurations whatever engSel picked.
				if j.Engine.New().Name() == "interp" {
					j.Engine = sched.Engine{Name: "column-a", New: func() engine.Engine { return detailed.New() }}
				} else {
					j.Engine = sched.Engine{Name: "column-a", New: func() engine.Engine { return interp.New() }}
				}
				return j
			}},
		}
		for _, fl := range flips {
			if KeyFor(fl.mut(j)) == key {
				t.Errorf("flipping %s did not move the key (job %+v)", fl.name, j)
			}
		}
	})
}
