package store

import (
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"simbench/internal/sched"
)

// ageObjects backdates every blob under the store's objects dir past
// the in-flight grace period, standing in for a cache written longer
// ago than any plausible still-running sweep.
func ageObjects(t *testing.T, dir string) {
	t.Helper()
	old := time.Now().Add(-2 * blobGrace)
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.Chtimes(path, old, old)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGC: blobs referenced by the recent-history window or a baseline
// survive; everything else is pruned, from disk and from the
// in-process layer.
func TestGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Four measured cells in the blob store...
	results := make(map[int]bool)
	for i := 0; i < 4; i++ {
		put(s, fabricate(syntheticJob(i), time.Second))
		results[i] = true
	}
	// ...two runs of history: run 1 covers cells 0 and 1, run 2 covers
	// cells 1 and 2. Cell 3 is in no run at all.
	run1 := []int{0, 1}
	run2 := []int{1, 2}
	for _, cells := range [][]int{run1, run2} {
		var rs []int = cells
		res := fabricateRun(2, func(i int) time.Duration { return time.Second })
		for i, c := range rs {
			res[i] = fabricate(syntheticJob(c), time.Second)
		}
		if err := s.AppendHistory("simbench", res); err != nil {
			t.Fatal(err)
		}
	}

	// Freshly written unreferenced blobs are spared: they could belong
	// to a run still in flight whose history entry has not landed yet.
	st, err := s.GC(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 0 || st.Young != 2 {
		t.Fatalf("gc on fresh blobs = %+v, want 0 pruned / 2 young", st)
	}
	ageObjects(t, s.Dir())

	// Window of 1 run: only run 2 (cells 1, 2) pins blobs. Dry run
	// counts cells 0 and 3 as prunable but deletes nothing.
	st, err = s.GC(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 2 || st.Kept != 2 || !st.DryRun || st.PrunedBytes == 0 {
		t.Fatalf("dry-run gc = %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, ok := get(s, syntheticJob(i)); !ok {
			t.Fatalf("dry run deleted cell %d", i)
		}
	}

	// Save run 1 as a baseline: its cells (0, 1) are pinned again, so
	// only cell 3 is garbage.
	first, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBaseline("keep", first[0]); err != nil {
		t.Fatal(err)
	}

	st, err = s.GC(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 1 || st.Kept != 3 || st.DryRun {
		t.Fatalf("gc = %+v", st)
	}
	if got := st.String(); got == "" {
		t.Error("empty GCStats string")
	}
	for i := 0; i < 3; i++ {
		if _, ok := get(s, syntheticJob(i)); !ok {
			t.Errorf("referenced cell %d pruned", i)
		}
	}
	// The pruned blob is gone from disk and from the in-process layer.
	if _, ok := get(s, syntheticJob(3)); ok {
		t.Error("unreferenced cell 3 survived gc")
	}
	gone := KeyFor(syntheticJob(3)).String()
	if _, err := os.Stat(filepath.Join(s.Dir(), "objects", gone[:2], gone+".json")); !os.IsNotExist(err) {
		t.Errorf("blob file still on disk: %v", err)
	}

	// Idempotent: a second pass finds nothing to prune.
	st, err = s.GC(1, false)
	if err != nil || st.Pruned != 0 || st.Kept != 3 {
		t.Errorf("second gc = %+v, %v", st, err)
	}
}

// TestGCOrphanedTempFiles: temp files a killed writer left behind are
// reclaimed once stale; a fresh temp file (a write possibly still in
// flight) is left alone.
func TestGCOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "objects", "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, ".tmp-dead")
	fresh := filepath.Join(sub, ".tmp-live")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * orphanAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	st, err := s.GC(10, true)
	if err != nil || st.Orphans != 1 {
		t.Fatalf("dry-run gc = %+v, %v (want 1 orphan)", st, err)
	}
	if _, err := os.Stat(stale); err != nil {
		t.Fatal("dry run deleted the orphan")
	}

	st, err = s.GC(10, false)
	if err != nil || st.Orphans != 1 {
		t.Fatalf("gc = %+v, %v", st, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived gc")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was deleted — live writes are not debris")
	}
}

func TestGCInMemoryStoreRefuses(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(1, false); err == nil {
		t.Error("gc on an in-process store did not fail")
	}
}

// TestGCUsesLocalHistoryWithRemote: gc prunes local blobs, so it must
// judge them by local history even when a remote tier is attached —
// the fleet's shared history is dominated by other hosts' runs and
// would wrongly condemn this host's recently-referenced cache.
func TestGCUsesLocalHistoryWithRemote(t *testing.T) {
	fake := newFakeRemote()
	ts := httptest.NewServer(fake)
	defer ts.Close()

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Local history references the blob; the fleet history does not
	// (it only knows some other host's run).
	j := syntheticJob(0)
	put(s, fabricate(j, time.Second))
	if err := s.AppendHistory("local", []sched.Result{fabricate(j, time.Second)}); err != nil {
		t.Fatal(err)
	}
	fake.mu.Lock()
	fake.runs = append(fake.runs, `{"label":"other-host","cells":[]}`)
	fake.mu.Unlock()

	rt, err := NewRemoteTier(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRemote(rt)
	defer s.Close()
	// Sanity: the store's history view is now the fleet's.
	if runs, err := s.History(); err != nil || len(runs) != 1 || runs[0].Label != "other-host" {
		t.Fatalf("fleet history = %v, %v", runs, err)
	}

	ageObjects(t, dir)
	st, err := s.GC(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || st.Pruned != 0 {
		t.Fatalf("gc with remote attached = %+v; locally-referenced blob must survive", st)
	}
	if !has(s, j) {
		t.Error("locally-referenced blob pruned under fleet history")
	}
}

// TestGCEmptyStore: gc on a store with no history prunes everything
// not pinned by a baseline (here: everything).
func TestGCEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(s, fabricate(syntheticJob(0), time.Second))
	ageObjects(t, s.Dir())
	st, err := s.GC(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 1 || st.Kept != 0 {
		t.Errorf("gc = %+v", st)
	}
}
