package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"

	"simbench/internal/engine/dbt"
	"simbench/internal/sched"
)

// SchemaVersion is folded into every key and written into every blob;
// bumping it invalidates the whole store at once (use it when the
// meaning of a measurement changes, e.g. a timing-protocol fix).
const SchemaVersion = 1

// Key is the SHA-256 content address of one matrix cell.
type Key [sha256.Size]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String — the token the
// store issues through its sched.Store Key method and the object name
// the simstored protocol addresses blobs by.
func ParseKey(s string) (Key, bool) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return Key{}, false
	}
	var k Key
	copy(k[:], raw)
	return k, true
}

// KeyFor returns the content address of a job: the hash of its
// canonical fingerprint.
func KeyFor(j sched.Job) Key { return sha256.Sum256([]byte(Fingerprint(j))) }

// Fingerprint returns the canonical pre-hash encoding of everything
// that determines a cell's outcome: schema version, host, the
// binary's build identity, guest architecture, benchmark identity and
// scale, and the engine's full configuration. Two jobs share a cell exactly when their fingerprints
// are equal — so editing one release's config delta, or bumping a
// benchmark's iteration count, invalidates exactly the affected cells
// and nothing else.
//
// Note that the scheduler's display name for an engine is deliberately
// absent: a sweep's "v2.5.0-rc2" column and the Fig. 7 "dbt" column
// are the same configuration and therefore the same measurement, so
// they share a cell.
func Fingerprint(j sched.Job) string {
	iters, repeats := j.Effective()
	var b strings.Builder
	fmt.Fprintf(&b, "simbench/store schema=%d\n", SchemaVersion)
	fmt.Fprintf(&b, "host=%s/%s\n", runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(&b, "build=%s\n", buildID)
	fmt.Fprintf(&b, "arch=%s\n", j.Arch.Name())
	fmt.Fprintf(&b, "bench=%s iters=%d repeats=%d\n", j.Bench.Name, iters, repeats)
	fmt.Fprintf(&b, "engine=%s\n", engineFingerprint(j.Engine))
	// The core count is key material: the same cell at a different
	// count is a different measurement. Single-core jobs omit the line
	// entirely so every pre-SMP key — and every blob stored under one —
	// stays valid verbatim.
	if cores := j.EffectiveCores(); cores > 1 {
		fmt.Fprintf(&b, "cores=%d\n", cores)
	}
	return b.String()
}

// buildID is the running binary's identity, folded into every
// fingerprint: the engines' behaviour lives in this module's code, so
// a new revision must not serve measurements taken by an old one (or
// the simbase regression gate would compare a baseline to itself).
// With VCS info — stamped into `go build` binaries made inside the
// checkout — that is the commit hash plus the dirty flag; test and
// `go run` builds carry no VCS stamp and fall back to the module
// version. A dirty working tree keeps one identity across successive
// edits, so when hand-editing engine code between runs, clear the
// cache directory (or bump SchemaVersion).
var buildID, buildIDNote = buildIdentity(debug.ReadBuildInfo())

// buildIdentity derives the (buildID, warning-note) pair from build
// info; split from the package variable so each branch is testable
// without faking the process's own build stamp.
func buildIdentity(bi *debug.BuildInfo, ok bool) (string, string) {
	const advice = "cached results cannot tell engine-code edits apart — clear the cache dir after changing engine code"
	if !ok {
		return "unknown", "no build info; " + advice
	}
	rev, modified := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	switch {
	case rev == "":
		return "module " + bi.Main.Version,
			"this build has no VCS stamp (go run / go test); " + advice
	case modified != "false":
		// A dirty tree keeps one identity across successive edits, so
		// the stamp cannot distinguish them either.
		return rev + " dirty=" + modified,
			"this build is from a dirty working tree; " + advice
	}
	return rev + " dirty=false", ""
}

// IdentityNote returns a one-line warning, in the voice of a CLI
// tool, when the running binary's cache identity cannot distinguish
// engine-code edits: go run and go test builds carry no VCS stamp at
// all, and a build from a dirty working tree keeps one identity
// across successive edits. Returns "" for clean stamped builds, whose
// identity changes with every commit.
func IdentityNote(tool string) string {
	if buildIDNote == "" {
		return ""
	}
	return tool + ": note: " + buildIDNote
}

// engineFingerprint canonically encodes an engine's configuration by
// building one instance and inspecting it. For the DBT engine that is
// the full Config — every field switches a real code path, so every
// field is key material (%+v also picks up fields added later, which
// correctly invalidates old blobs). The other platforms carry no
// tunables beyond their identity, so their name plus the Fig. 4
// feature metadata is the whole configuration.
//
// The simlint keymaterial analyzer enforces at vet time that every
// engine type with a Config method has a case here; the reflection
// check is the runtime backstop for binaries built without vet (an
// engine registered through a path the analyzer cannot see would
// otherwise silently share one cache key across all configurations).
func engineFingerprint(e sched.Engine) string {
	inst := e.New()
	if d, ok := inst.(*dbt.Engine); ok {
		return dbtFingerprint(d.Config())
	}
	if m := reflect.ValueOf(inst).MethodByName("Config"); m.IsValid() {
		t := m.Type()
		if t.NumIn() == 0 && t.NumOut() == 1 && t.Out(0).Kind() == reflect.Struct && t.Out(0).NumField() > 0 {
			panic(fmt.Sprintf(
				"store: engine %q reports tunables via Config() but engineFingerprint has no case for %T; "+
					"its cells would share one cache key across configurations — add a case in internal/store/key.go",
				inst.Name(), inst))
		}
	}
	return fmt.Sprintf("%s %+v", inst.Name(), inst.Features())
}

// dbtLegacyConfig mirrors the dbt.Config fields that existed before
// superblock chaining, in their original order: %+v over it reproduces
// the pre-superblock fingerprint encoding byte-for-byte, so every key
// minted by earlier binaries — and every blob stored under one — stays
// valid verbatim. The same compatibility contract as the cores= line
// in Fingerprint: new key material is appended only when non-default.
type dbtLegacyConfig struct {
	Name              string
	OptLevel          int
	Chain             dbt.ChainPolicy
	LookupDepth       int
	LazyFlush         bool
	TLBBits           int
	VictimTLB         bool
	DataFaultFastPath bool
	ExcSyncWords      int
	HelperSaveWords   int
	WalkExtraChecks   int
	BlockCap          int
}

// dbtFingerprint canonically encodes a dbt configuration. Fields added
// to dbt.Config after the store's first release are appended textually
// and only when they change engine behaviour, so default configurations
// keep their historical keys while every effective superblock setting
// gets its own cell. Superblock <= 1 and Superblock > 1 with the same
// ChainLimit-resolved budget are still distinct keys on purpose:
// distinctness errs toward re-measuring, never toward sharing a cell
// across behaviours.
func dbtFingerprint(c dbt.Config) string {
	fp := fmt.Sprintf("dbt %+v", dbtLegacyConfig{
		Name:              c.Name,
		OptLevel:          c.OptLevel,
		Chain:             c.Chain,
		LookupDepth:       c.LookupDepth,
		LazyFlush:         c.LazyFlush,
		TLBBits:           c.TLBBits,
		VictimTLB:         c.VictimTLB,
		DataFaultFastPath: c.DataFaultFastPath,
		ExcSyncWords:      c.ExcSyncWords,
		HelperSaveWords:   c.HelperSaveWords,
		WalkExtraChecks:   c.WalkExtraChecks,
		BlockCap:          c.BlockCap,
	})
	if c.Superblock > 1 || c.ChainLimit != 0 {
		fp += fmt.Sprintf(" superblock=%d chainlimit=%d", c.Superblock, c.ChainLimit)
	}
	return fp
}
