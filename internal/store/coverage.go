package store

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"simbench/internal/report"
	"simbench/internal/sched"
)

// CellRef identifies one matrix cell by its display coordinates and
// scale — the same identity history records carry. Offline rendering
// matches wanted cells against recorded runs by CellRef: unlike the
// content address, building one costs nothing (no engine is
// constructed to canonicalize a configuration), which is the point of
// rendering offline in the first place.
type CellRef struct {
	Benchmark string
	Engine    string
	Arch      string
	Iters     int64
	Repeats   int
	// Cores is the guest core count, normalized to >=1 — a cores
	// sweep measures the same benchmark at several counts, and those
	// are distinct cells (history records omit the field at 1, so
	// normalization keeps old single-core records addressable).
	Cores int
}

// RefOf returns the cell reference of a job, with iteration, repeat,
// and core counts normalized the way records and cache keys are.
func RefOf(j sched.Job) CellRef {
	iters, repeats := j.Effective()
	return CellRef{
		Benchmark: j.Bench.Name,
		Engine:    j.Engine.Name,
		Arch:      j.Arch.Name(),
		Iters:     iters,
		Repeats:   repeats,
		Cores:     j.EffectiveCores(),
	}
}

// RefOfRecord is RefOf for a history record. Exported because the
// simstored server builds its per-cell history index with exactly this
// identity — index lookups must agree with CoverageIndex byte for
// byte.
func RefOfRecord(c report.Record) CellRef {
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	cores := c.Cores
	if cores <= 0 {
		cores = 1
	}
	return CellRef{Benchmark: c.Benchmark, Engine: c.Engine, Arch: c.Arch, Iters: c.Iters, Repeats: repeats, Cores: cores}
}

// String renders the reference the way diff output names cells.
func (c CellRef) String() string {
	s := fmt.Sprintf("%s/%s", c.Arch, c.Benchmark)
	if c.Cores > 1 {
		s += fmt.Sprintf(" @%dc", c.Cores)
	}
	s += fmt.Sprintf("/%s@%d", c.Engine, c.Iters)
	if c.Repeats > 1 {
		s += fmt.Sprintf("x%d", c.Repeats)
	}
	return s
}

// CellMiss explains one cell Coverage could not serve: a cell never
// recorded, or one whose recorded blob the store no longer holds
// (pruned by gc, or a deleted cache file).
type CellMiss struct {
	Ref CellRef
	// Key is the content address the newest matching record carried,
	// empty when history has no usable record for the cell.
	Key    string
	Reason string
}

func (m CellMiss) String() string { return m.Ref.String() + ": " + m.Reason }

// CoverageIndex maps every successful, content-addressed cell of the
// recorded runs to the key of its most recent measurement — the
// store-side index behind offline rendering.
//
// Runs recorded by a different host contribute nothing: a fleet's
// shared history holds other machines' absolute times, and an online
// run here would never serve them (content keys encode GOOS/GOARCH),
// so an offline render must not either — it would print another
// host's seconds as this host's evaluation. Failed cells contribute
// nothing, and neither do cells whose recorded key does not parse (a
// corrupted or foreign entry; handing such a key to Get would fall
// back to recomputing it, which constructs an engine — the one cost
// the offline path promises never to pay). Cached replays do count:
// their key still names the original measurement's blob. Later runs
// win.
func CoverageIndex(runs []RunRecord) map[CellRef]string {
	host := hostID()
	idx := make(map[CellRef]string)
	for _, rr := range runs {
		if rr.Host != "" && rr.Host != host {
			continue
		}
		for _, c := range rr.Cells {
			if c.Error != "" || c.Key == "" {
				continue
			}
			if _, ok := ParseKey(c.Key); !ok {
				continue
			}
			idx[RefOfRecord(c)] = c.Key
		}
	}
	return idx
}

// hostID is the host stamp NewRun writes into history records — the
// identity content keys encode, so coverage never serves another
// machine's absolute times as this one's.
func hostID() string { return runtime.GOOS + "/" + runtime.GOARCH }

// IndexCell is one entry of the simstored /index response: a cell's
// display coordinates plus the content address of its newest
// successful measurement for the requested host. The wire shape is
// shared by the server (which renders it from its history index) and
// the remote tier (which consumes it into a CoverageIndex-equivalent
// map).
type IndexCell struct {
	Benchmark string `json:"benchmark"`
	Engine    string `json:"engine"`
	Arch      string `json:"arch"`
	Iters     int64  `json:"iters"`
	Repeats   int    `json:"repeats"`
	// Cores is omitted for single-core cells, so servers predating the
	// cores axis keep serving the same bytes.
	Cores int    `json:"cores,omitempty"`
	Key   string `json:"key"`
}

// Ref returns the cell's map identity, normalizing the omitted
// single-core count the way RefOfRecord does.
func (c IndexCell) Ref() CellRef {
	cores := c.Cores
	if cores <= 0 {
		cores = 1
	}
	return CellRef{Benchmark: c.Benchmark, Engine: c.Engine, Arch: c.Arch, Iters: c.Iters, Repeats: c.Repeats, Cores: cores}
}

// CellIndex resolves the newest-successful-measurement map offline
// rendering covers from. With a live remote tier attached it asks the
// server's compacted /index endpoint — one round trip of O(cells), not
// a download and re-parse of the whole fleet history — falling back to
// History plus CoverageIndex when the server predates the endpoint
// (and for local and degraded stores, where the history is all there
// is).
func (s *Store) CellIndex() (map[CellRef]string, error) {
	if s.remote != nil && !s.remote.Down() {
		idx, ok, err := s.remote.CellIndex()
		if err != nil {
			return nil, fmt.Errorf("store: remote index: %w", err)
		}
		if ok {
			return idx, nil
		}
	}
	runs, err := s.History()
	if err != nil {
		return nil, err
	}
	return CoverageIndex(runs), nil
}

// Coverage is Has over a whole matrix: it resolves every job of an
// expanded experiment to a stored measurement — the blob named by the
// newest successful history record of the same cell — and reports the
// cells it cannot serve. Served cells come back as fully reconstructed
// results (Cached=true), index-aligned with jobs, rendering
// byte-identically to the run that measured them; a non-empty missing
// list means the matrix cannot be rendered offline and says, cell by
// cell, why. No engine is constructed and nothing executes: keys come
// from history, blobs from the tier chain.
func (s *Store) Coverage(ctx context.Context, jobs []sched.Job) (results []sched.Result, missing []CellMiss, err error) {
	idx, err := s.CellIndex()
	if err != nil {
		return nil, nil, err
	}
	return s.CoverageOf(ctx, idx, jobs)
}

// CoverageOf is Coverage over pre-parsed history. A caller rendering
// several specs against one store (simreport -all -offline) parses
// the history — megabytes of JSONL locally, a full fleet download
// with a remote tier — once, builds its index once with
// CoverageIndex, and covers every matrix from it.
//
// Blob fetches run on a worker pool: on a store with a remote tier
// each cold cell is a network round trip, and the headline render-
// the-whole-evaluation case touches every cell of every figure —
// serialized, a fresh host would pay minutes of latency for a render
// that measures nothing (the same shape the scheduler's warmup
// presence scan already pools for). Cancelling ctx abandons the
// remaining fetches and returns its error: a user interrupting an
// offline render against a slow server must not sit through hundreds
// of timeouts.
func (s *Store) CoverageOf(ctx context.Context, idx map[CellRef]string, jobs []sched.Job) (results []sched.Result, missing []CellMiss, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results = make([]sched.Result, len(jobs))
	misses := make([]*CellMiss, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				// Each cold fetch can cost a network round trip; a
				// cancelled render must not sit through the rest.
				if ctx.Err() != nil {
					continue
				}
				j := jobs[i]
				ref := RefOf(j)
				key, ok := idx[ref]
				if !ok {
					misses[i] = &CellMiss{Ref: ref, Reason: "no completed run in history"}
					continue
				}
				r, ok := s.Get(j, key)
				if !ok {
					misses[i] = &CellMiss{Ref: ref, Key: key,
						Reason: fmt.Sprintf("recorded blob %s is gone from the store", key)}
					continue
				}
				r.Index = i
				results[i] = r
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(feed)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Missing cells report in matrix order no matter which worker hit
	// them.
	for _, m := range misses {
		if m != nil {
			missing = append(missing, *m)
		}
	}
	return results, missing, nil
}
