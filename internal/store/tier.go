package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Provenance names the tier a cached result originally came from. A
// blob promoted into a faster tier keeps its provenance: a cell fetched
// from the remote store during the warmup scan and then served from
// memory still counts as a remote hit, because the remote store is
// what supplied the measurement.
type Provenance string

const (
	// ProvMem marks results measured (or reconstructed) in this
	// process and shared between figures of one invocation.
	ProvMem Provenance = "mem"
	// ProvDisk marks results read from the local -cache-dir.
	ProvDisk Provenance = "disk"
	// ProvRemote marks results fetched from a simstored server.
	ProvRemote Provenance = "remote"
)

// tier is one persistent layer of the store's lookup chain, consulted
// in order behind the in-process map: today disk then remote. Tiers
// must be safe for concurrent use.
type tier interface {
	name() Provenance
	// load fetches the blob stored under k, along with its serialized
	// form (both tiers read bytes off disk or the wire anyway, and
	// handing them back lets a promotion reuse them instead of
	// re-marshaling). (nil, nil, nil) is a miss. An error means the
	// tier failed to answer (not that the blob is absent); the store
	// records it and treats the lookup as a miss.
	load(k Key) (*blob, []byte, error)
	// store persists a blob under k; data is its serialized form when
	// the caller already has it (nil makes the tier marshal itself).
	// It may be asynchronous; failures — including deferred ones —
	// surface through fault rather than a return value, mirroring the
	// policy that cache writes never interrupt a run.
	store(k Key, b *blob, data []byte)
	// fault returns the tier's first recorded failure, if any.
	fault() error
}

// diskTier is the on-disk object layer: one JSON blob per cell under
// objects/<first two hex chars>/<key>.json, written via
// temp-file-plus-rename so concurrent writers (goroutines or whole
// processes) on one directory never expose a torn blob.
type diskTier struct {
	dir string

	mu  sync.Mutex
	err error // first write failure, surfaced via fault
}

func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &diskTier{dir: dir}, nil
}

func (d *diskTier) name() Provenance { return ProvDisk }

func (d *diskTier) blobPath(k Key) string {
	hex := k.String()
	return filepath.Join(d.dir, objectsDirName, hex[:2], hex+".json")
}

func (d *diskTier) load(k Key) (*blob, []byte, error) {
	data, err := os.ReadFile(d.blobPath(k))
	if err != nil {
		// Treat any read failure as a miss: a missing blob is the
		// common case, and a fresh measurement overwrites a broken one.
		return nil, nil, nil
	}
	b := new(blob)
	if err := json.Unmarshal(data, b); err != nil || b.Schema != SchemaVersion {
		// Corrupt or foreign-schema blob: a miss; a fresh measurement
		// will overwrite it.
		return nil, nil, nil
	}
	return b, data, nil
}

func (d *diskTier) store(k Key, b *blob, data []byte) {
	if data == nil {
		var err error
		if data, err = json.Marshal(b); err != nil {
			d.record(fmt.Errorf("store: encode %s: %w", k, err))
			return
		}
	}
	if err := AtomicWrite(d.blobPath(k), data); err != nil {
		d.record(fmt.Errorf("store: write %s: %w", k, err))
	}
}

func (d *diskTier) record(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

func (d *diskTier) fault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}
