package store

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastRetry keeps retry tests quick: millisecond backoff, same attempt
// budget as production.
var fastRetry = RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond}

// flakyRemote answers 503 for the first fails requests, then delegates
// to the wrapped fakeRemote — a server mid-restart or briefly
// overloaded, as seen from one client.
type flakyRemote struct {
	fake  *fakeRemote
	mu    sync.Mutex
	fails int
	seen  int // total requests, including the failed ones
}

func (f *flakyRemote) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen++
	failing := f.fails > 0
	if failing {
		f.fails--
	}
	f.mu.Unlock()
	if failing {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "busy", http.StatusServiceUnavailable)
		return
	}
	f.fake.ServeHTTP(w, r)
}

// TestRemoteRetryThenSuccess: a transient 503 is retried, the lookup
// hits, and the recovered attempt is indistinguishable from a clean
// one — exactly one remote hit in TierStats, no degradation warning,
// tier not down.
func TestRemoteRetryThenSuccess(t *testing.T) {
	fake := newFakeRemote()
	flaky := &flakyRemote{fake: fake}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	j := syntheticJob(0)
	seed := remoteStore(t, t.TempDir(), ts.URL)
	put(seed, fabricate(j, time.Millisecond))
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	flaky.mu.Lock()
	flaky.fails = 2 // two 503s, then healthy: inside the attempt budget
	flaky.mu.Unlock()

	s := remoteStore(t, t.TempDir(), ts.URL, WithRetry(fastRetry))
	defer s.Close()
	r, ok := get(s, j)
	if !ok || r.Kernel != time.Millisecond {
		t.Fatalf("retried lookup = %v %v, want hit", r, ok)
	}
	st := s.TierStats()
	if st.Remote != 1 || st.Misses != 0 {
		t.Errorf("retry-then-success stats = %+v, want exactly one remote hit", st)
	}
	if err := s.Err(); err != nil {
		t.Errorf("transient failure leaked into Err: %v", err)
	}
	if s.Remote().Down() {
		t.Error("tier down after a recovered transient")
	}
}

// TestRemoteRetryExhausted: a persistently failing server exhausts the
// attempt budget, the store degrades exactly as an unreachable server
// does, and the attempt count proves the retries happened.
func TestRemoteRetryExhausted(t *testing.T) {
	flaky := &flakyRemote{fake: newFakeRemote(), fails: 1 << 30}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	s := remoteStore(t, t.TempDir(), ts.URL, WithRetry(fastRetry))
	j := syntheticJob(0)
	if _, ok := get(s, j); ok {
		t.Fatal("hit from a server that only serves 503")
	}
	flaky.mu.Lock()
	seen := flaky.seen
	flaky.mu.Unlock()
	if seen != fastRetry.Attempts {
		t.Errorf("server saw %d attempts, want %d", seen, fastRetry.Attempts)
	}
	if !s.Remote().Down() {
		t.Error("tier not down after exhausting retries")
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("exhausted retries not surfaced as degradation: %v", err)
	}
}

// TestRemoteRefusedNoRetry: connection refused is not transient — the
// server process is gone, not busy — so degradation is immediate: one
// attempt, no backoff stalls on every subsequent cell.
func TestRemoteRefusedNoRetry(t *testing.T) {
	start := time.Now()
	s := remoteStore(t, t.TempDir(), "http://127.0.0.1:1",
		WithRetry(RetryPolicy{Attempts: 5, Base: 200 * time.Millisecond, Max: time.Second}))
	if _, ok := get(s, syntheticJob(0)); ok {
		t.Fatal("hit against a closed port")
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("refused connection took %v; a non-transient failure must not back off", d)
	}
	if !s.Remote().Down() {
		t.Error("tier not down after connection refused")
	}
	s.Close()
}
