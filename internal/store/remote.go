package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// maxRemoteBody bounds what the client will read from (or believe
// about) a single remote object or history stream — far above any real
// blob, small enough that a misbehaving server cannot exhaust memory.
const maxRemoteBody = 1 << 28 // 256 MiB

// remoteQueueDepth and remoteQueueBytes bound the asynchronous
// write-back queue — by entry count and by total pending payload
// (blobs can be megabytes of console output, so a count bound alone
// could pin gigabytes against a slow server). Uploads must never block
// a measurement, so past either bound the queue sheds load (and the
// drop is surfaced via fault) instead of exerting backpressure.
const (
	remoteQueueDepth = 256
	remoteQueueBytes = 256 << 20 // 256 MiB
)

// RetryPolicy bounds the remote tier's retry of transient failures:
// up to Attempts tries per request, exponential backoff starting at
// Base, each sleep (including a server-sent Retry-After) capped at
// Max. The zero value disables retry (one attempt).
type RetryPolicy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

// defaultRetryPolicy absorbs the transients a loaded fleet store
// actually emits — a reset connection under accept pressure, a 429
// from the quota gate, a 503 mid-restart — without stretching the
// degrade path of a genuinely dead server by more than a few seconds.
func defaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: 100 * time.Millisecond, Max: 2 * time.Second}
}

// RemoteOption configures a RemoteTier at construction.
type RemoteOption func(*RemoteTier)

// WithToken sets the bearer token sent with every request, for servers
// started with -token. An empty token sends no Authorization header.
func WithToken(token string) RemoteOption {
	return func(rt *RemoteTier) { rt.token = token }
}

// WithRetry overrides the tier's transient-failure retry policy.
func WithRetry(p RetryPolicy) RemoteOption {
	return func(rt *RemoteTier) {
		if p.Attempts < 1 {
			p.Attempts = 1
		}
		rt.retry = p
	}
}

// RemoteTier is the HTTP client side of a simstored server: the last
// tier of a store's lookup chain. Reads are synchronous GETs (read
// misses through to the server once per cold key, thanks to the
// store's single-flight); writes are asynchronous — enqueued here,
// uploaded by a background goroutine, flushed by Close.
//
// The tier degrades rather than fails, but not on the first hiccup:
// transient failures (a reset connection, a 5xx, a 429 quota push-back)
// are retried with jittered exponential backoff under RetryPolicy
// first. Only a failure that survives the retry budget marks the
// server down; after that every load and store short-circuits locally
// and the reason surfaces through the store's Err. A corrupt remote
// blob is recorded but does not mark the server down — the server
// answered; one object is bad.
type RemoteTier struct {
	tracerRef

	base   string // server URL, no trailing slash
	client *http.Client
	token  string
	retry  RetryPolicy

	// rng drives backoff jitter only; seeded from the waived wall-clock
	// read so no banned global-rand call appears in this package.
	rngMu sync.Mutex
	rng   *rand.Rand

	down atomic.Bool

	errMu sync.Mutex
	err   error // first degrade reason, surfaced via fault

	// runs is the incremental history cache: /runs is append-only, so
	// once a prefix has been fetched and parsed only the appended tail
	// is ever transferred again (Range), or nothing at all (ETag).
	runsMu sync.Mutex
	runs   runsCache

	qMu     sync.Mutex
	qClosed bool
	qBytes  int64 // serialized payload currently queued
	queue   chan remotePut
	drained chan struct{}
	dropped atomic.Uint64
}

// runsCache is the parsed prefix of the server's history stream plus
// the validators needed to extend it: the byte offset the next Range
// request resumes from (always a line boundary) and the ETag that
// guards that offset against a replaced file.
type runsCache struct {
	etag     string
	offset   int64
	runs     []RunRecord
	skipped  int
	firstBad error
}

type remotePut struct {
	k    Key
	data []byte
}

// NewRemoteTier builds a client for the simstored server at baseURL
// (e.g. "http://ci-cache:8347") and starts its upload goroutine.
func NewRemoteTier(baseURL string, opts ...RemoteOption) (*RemoteTier, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote %q: want an http(s) URL like http://host:8347", baseURL)
	}
	rt := &RemoteTier{
		base: strings.TrimRight(baseURL, "/"),
		// Timeouts bound connecting and waiting for the server to start
		// answering — the failure modes a dead or hung server actually
		// shows — not the body transfer: a flat whole-request deadline
		// would flag a healthy server as down the day the fleet history
		// (or a big blob) outgrows it.
		client: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 15 * time.Second,
		}},
		retry:   defaultRetryPolicy(),
		rng:     rand.New(rand.NewSource(nowMono().UnixNano())),
		queue:   make(chan remotePut, remoteQueueDepth),
		drained: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(rt)
	}
	go rt.uploader()
	return rt, nil
}

// URL returns the server base URL the tier talks to.
func (rt *RemoteTier) URL() string { return rt.base }

func (rt *RemoteTier) name() Provenance { return ProvRemote }

// degrade marks the server down and records why. Only the first
// reason is kept; once down, the tier answers everything locally.
func (rt *RemoteTier) degrade(err error) {
	if !rt.down.Swap(true) {
		rt.noteDegraded()
	}
	rt.record(err)
}

func (rt *RemoteTier) record(err error) {
	rt.errMu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.errMu.Unlock()
}

// fault reports the tier's degradation: the first recorded failure,
// joined with a live drop summary. The drop count is folded in here —
// rather than recorded once at first drop — so the reported number is
// the final tally and drops still surface when a transport failure
// claimed the single recorded-error slot first.
func (rt *RemoteTier) fault() error {
	rt.errMu.Lock()
	err := rt.err
	rt.errMu.Unlock()
	if n := rt.dropped.Load(); n > 0 {
		err = errors.Join(err, fmt.Errorf("store: remote %s: %d uploads dropped (write-back queue full)", rt.base, n))
	}
	return err
}

// Dropped returns how many uploads the write-back queue has shed.
func (rt *RemoteTier) Dropped() uint64 { return rt.dropped.Load() }

// Down reports whether the tier has degraded to local-only operation.
func (rt *RemoteTier) Down() bool { return rt.down.Load() }

// transientStatus reports whether a delivered status is worth another
// attempt: the server (or an intermediary) signalled overload or a
// transient internal failure, not a protocol disagreement.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// transientErr reports whether a transport failure may heal within one
// run: resets, timeouts, torn connections. A refused connection means
// nothing is listening at all — retrying it only delays the
// degrade-to-local every caller is waiting on.
func transientErr(err error) bool {
	return err != nil && !errors.Is(err, syscall.ECONNREFUSED)
}

// authHint decorates an auth rejection with the flag that fixes it.
func authHint(code int) string {
	if code == http.StatusUnauthorized || code == http.StatusForbidden {
		return " (set -remote-token / $SIMBENCH_REMOTE_TOKEN to this server's -token)"
	}
	return ""
}

// roundTrip performs one request against the server with the tier's
// bearer token and bounded transient-failure retry: transport errors
// (except a refused connection) and 429/5xx statuses are retried with
// jittered exponential backoff, honoring an integer Retry-After when
// the server sent one. It returns the final response — possibly still
// a non-2xx one — or the final transport error; callers decide what
// degrades. The body is rebuilt per attempt, so retries never resend
// a half-consumed reader.
func (rt *RemoteTier) roundTrip(method, path string, body []byte, hdr map[string]string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, rt.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("remote %s: %w", rt.base, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if rt.token != "" {
			req.Header.Set("Authorization", "Bearer "+rt.token)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if attempt+1 < rt.retry.Attempts && transientErr(err) {
				rt.backoff(attempt, "")
				continue
			}
			return nil, fmt.Errorf("remote %s unreachable: %w", rt.base, err)
		}
		if attempt+1 < rt.retry.Attempts && transientStatus(resp.StatusCode) {
			after := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			rt.backoff(attempt, after)
			continue
		}
		return resp, nil
	}
}

// backoff sleeps before retry attempt+1: exponential from Base with
// ±50% jitter (decorrelating a fleet whose quota window reopens at one
// instant), raised to the server's integer Retry-After when one was
// sent, capped at Max.
func (rt *RemoteTier) backoff(attempt int, retryAfter string) {
	d := rt.retry.Base << attempt
	if d <= 0 {
		d = time.Millisecond
	}
	rt.rngMu.Lock()
	jitter := time.Duration(rt.rng.Int63n(int64(d) + 1))
	rt.rngMu.Unlock()
	d = d/2 + jitter
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		if after := time.Duration(secs) * time.Second; after > d {
			d = after
		}
	}
	if rt.retry.Max > 0 && d > rt.retry.Max {
		d = rt.retry.Max
	}
	time.Sleep(d)
}

// load implements tier: a read-through GET. A transport failure that
// survives the retry budget degrades the tier (the run continues on
// local tiers alone); a blob that does not parse or carries a foreign
// schema is recorded and treated as a miss without degrading. Note
// that a key's blob content cannot be verified against the key itself
// — keys hash the job's fingerprint, not the measurement — so a store
// (local or remote) is trusted to return what was put under the key;
// the server rejects non-JSON uploads at the door.
func (rt *RemoteTier) load(k Key) (*blob, []byte, error) {
	if rt.down.Load() {
		return nil, nil, nil
	}
	defer rt.traceRemote("get", k)()
	resp, err := rt.roundTrip(http.MethodGet, "/objects/"+k.String(), nil, nil)
	if err != nil {
		err = fmt.Errorf("store: %w", err)
		rt.degrade(err)
		return nil, nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, nil, nil
	case resp.StatusCode != http.StatusOK:
		err = fmt.Errorf("store: remote %s: GET object: %s%s", rt.base, resp.Status, authHint(resp.StatusCode))
		rt.degrade(err)
		return nil, nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		err = fmt.Errorf("store: remote %s: read object: %w", rt.base, err)
		rt.degrade(err)
		return nil, nil, err
	}
	b := new(blob)
	if err := json.Unmarshal(data, b); err != nil || b.Schema != SchemaVersion {
		// The server answered; this one object is unusable. Record it
		// so the run's summary warns, measure the cell locally.
		rt.record(fmt.Errorf("store: remote %s: corrupt blob %s (schema %d)", rt.base, k, b.Schema))
		return nil, nil, nil
	}
	return b, data, nil
}

// store implements tier: an asynchronous write-back of the serialized
// blob (marshaled once by the caller; a nil data marshals here). A
// full queue drops the upload — the local tiers already hold the
// result, only fleet sharing is delayed to a future run — and the
// drop is recorded.
func (rt *RemoteTier) store(k Key, b *blob, data []byte) {
	if rt.down.Load() {
		return
	}
	if data == nil {
		var err error
		if data, err = json.Marshal(b); err != nil {
			rt.record(fmt.Errorf("store: encode %s: %w", k, err))
			return
		}
	}
	rt.qMu.Lock()
	defer rt.qMu.Unlock()
	if rt.qClosed {
		return
	}
	if rt.qBytes+int64(len(data)) > remoteQueueBytes {
		rt.drop()
		return
	}
	select {
	case rt.queue <- remotePut{k: k, data: data}:
		rt.qBytes += int64(len(data))
		noteQueueDepth(+1)
	default:
		rt.drop()
	}
}

// drop sheds one upload; the local tiers already hold the result, only
// fleet sharing is deferred to a future run. The count surfaces via
// fault (so Err warns with the tally), TierStats.Dropped, and the drop
// counter. Called with qMu held.
func (rt *RemoteTier) drop() {
	rt.dropped.Add(1)
	rt.noteDrop()
}

// uploader drains the write-back queue. After the first failure the
// tier is down and the remaining queue drains without network calls.
func (rt *RemoteTier) uploader() {
	defer close(rt.drained)
	for p := range rt.queue {
		rt.qMu.Lock()
		rt.qBytes -= int64(len(p.data))
		rt.qMu.Unlock()
		noteQueueDepth(-1)
		if rt.down.Load() {
			continue
		}
		done := rt.traceRemote("put", p.k)
		_, err := rt.send(http.MethodPut, "/objects/"+p.k.String(), p.data, "PUT object")
		done()
		if err != nil {
			rt.degrade(err)
		}
	}
}

// send performs one body-bearing request against the server, drains
// the response, and maps transport errors and non-2xx statuses to one
// error shape — the single place the write-side protocol plumbing
// lives (PUT object, POST run, PUT baseline). transport distinguishes
// "server unreachable" from a delivered non-2xx status, so callers can
// degrade on the former without marking a live server down over one
// rejected request.
func (rt *RemoteTier) send(method, path string, body []byte, what string) (transport bool, err error) {
	resp, err := rt.roundTrip(method, path, body, nil)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return false, fmt.Errorf("remote %s: %s: %s%s", rt.base, what, resp.Status, authHint(resp.StatusCode))
	}
	return false, nil
}

// Close stops accepting uploads and waits for the queue to drain. It
// is idempotent. Callers flush before reporting cache statistics, so
// the next host's run can share every cell this run measured.
func (rt *RemoteTier) Close() {
	rt.qMu.Lock()
	if !rt.qClosed {
		rt.qClosed = true
		close(rt.queue)
	}
	rt.qMu.Unlock()
	<-rt.drained
}

// Runs fetches the server's recorded history — the fleet-wide
// counterpart of the local history.jsonl, parsed with the same
// malformed-entry tolerance. The stream is fetched incrementally: the
// tier remembers how many bytes it has already parsed and asks the
// server for just the appended tail (Range, guarded by If-Range), or
// for nothing at all when the validator still matches (ETag /
// If-None-Match → 304), so repeated history reads against a large
// fleet store transfer O(new appends), not O(file).
func (rt *RemoteTier) Runs() ([]RunRecord, error) {
	if rt.down.Load() {
		return nil, fmt.Errorf("remote %s degraded: %w", rt.base, rt.fault())
	}
	rt.runsMu.Lock()
	defer rt.runsMu.Unlock()
	if err := rt.refreshRuns(true); err != nil {
		return nil, err
	}
	rc := &rt.runs
	if len(rc.runs) == 0 && rc.skipped > 0 {
		return nil, fmt.Errorf("remote %s: no history entry parses (%d malformed): %w", rt.base, rc.skipped, rc.firstBad)
	}
	// Callers sort, filter and re-slice histories; hand each its own
	// top-level slice so the cache's spine stays untouched.
	return append([]RunRecord(nil), rc.runs...), nil
}

// refreshRuns brings the cached history prefix up to date. cond=false
// forces an unconditional full fetch (the recovery path after the
// server reports our resume offset unsatisfiable — a truncated or
// replaced history file). Called with runsMu held.
func (rt *RemoteTier) refreshRuns(cond bool) error {
	rc := &rt.runs
	hdr := map[string]string{}
	if cond && rc.etag != "" {
		hdr["If-None-Match"] = rc.etag
		if rc.offset > 0 {
			hdr["Range"] = fmt.Sprintf("bytes=%d-", rc.offset)
			hdr["If-Range"] = rc.etag
		}
	}
	resp, err := rt.roundTrip(http.MethodGet, "/runs", nil, hdr)
	if err != nil {
		rt.degrade(err)
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil
	case http.StatusOK:
		// The full stream: either our first fetch, or the server chose
		// (or had — If-Range mismatch, an old server) to ignore the
		// Range. Start the cache over.
		*rc = runsCache{}
		return rt.consumeRuns(resp)
	case http.StatusPartialContent:
		return rt.consumeRuns(resp)
	case http.StatusRequestedRangeNotSatisfiable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		*rc = runsCache{}
		if !cond {
			return fmt.Errorf("remote %s: GET /runs: %s for an unconditional fetch", rt.base, resp.Status)
		}
		return rt.refreshRuns(false)
	default:
		return fmt.Errorf("remote %s: GET /runs: %s%s", rt.base, resp.Status, authHint(resp.StatusCode))
	}
}

// consumeRuns parses a (full or tail) history response into the cache.
// Only complete lines advance the resume offset: the final line may be
// torn — an append in flight on the server — and will be re-fetched
// whole next time. Called with runsMu held.
func (rt *RemoteTier) consumeRuns(resp *http.Response) error {
	rc := &rt.runs
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return fmt.Errorf("remote %s: read /runs: %w", rt.base, err)
	}
	n := bytes.LastIndexByte(data, '\n') + 1
	runs, skipped, firstBad, err := decodeHistory(bytes.NewReader(data[:n]))
	if err != nil {
		return fmt.Errorf("remote %s: read /runs: %w", rt.base, err)
	}
	rc.runs = append(rc.runs, runs...)
	rc.skipped += skipped
	if rc.firstBad == nil {
		rc.firstBad = firstBad
	}
	rc.offset += int64(n)
	rc.etag = resp.Header.Get("ETag")
	return nil
}

// CellIndex fetches the server's compacted newest-successful-record
// index for this host — the Coverage-style map offline rendering needs
// — without transferring or parsing the history stream. ok is false
// when the server predates the /index endpoint; callers fall back to
// Runs plus CoverageIndex.
func (rt *RemoteTier) CellIndex() (idx map[CellRef]string, ok bool, err error) {
	if rt.down.Load() {
		return nil, false, fmt.Errorf("remote %s degraded: %w", rt.base, rt.fault())
	}
	resp, err := rt.roundTrip(http.MethodGet, "/index?host="+url.QueryEscape(hostID()), nil, nil)
	if err != nil {
		rt.degrade(err)
		return nil, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, nil
	case resp.StatusCode != http.StatusOK:
		return nil, false, fmt.Errorf("remote %s: GET /index: %s%s", rt.base, resp.Status, authHint(resp.StatusCode))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return nil, false, fmt.Errorf("remote %s: read /index: %w", rt.base, err)
	}
	var cells []IndexCell
	if err := json.Unmarshal(data, &cells); err != nil {
		return nil, false, fmt.Errorf("remote %s: /index: %w", rt.base, err)
	}
	idx = make(map[CellRef]string, len(cells))
	for _, c := range cells {
		// The same guard CoverageIndex applies: a key that does not
		// parse would send Get down the recompute path, the one cost
		// the offline contract promises never to pay.
		if _, ok := ParseKey(c.Key); !ok {
			continue
		}
		idx[c.Ref()] = c.Key
	}
	return idx, true, nil
}

// AppendRun posts one history line to the server. A transport failure
// degrades the tier: the local history line has already landed, and
// the caller surfaces the loss as a warning.
func (rt *RemoteTier) AppendRun(line []byte) error {
	if rt.down.Load() {
		return fmt.Errorf("remote %s degraded: %w", rt.base, rt.fault())
	}
	if transport, err := rt.send(http.MethodPost, "/runs", line, "POST /runs"); err != nil {
		if transport {
			rt.degrade(err)
		}
		return err
	}
	return nil
}

// SaveBaseline uploads a serialized baseline under name. Unlike the
// measurement path it does not consult or flip the degraded flag: a
// baseline save is an explicit user action whose failure is reported
// directly, not folded into run-level degradation.
func (rt *RemoteTier) SaveBaseline(name string, data []byte) error {
	_, err := rt.send(http.MethodPut, "/baselines/"+url.PathEscape(name), data, "PUT baseline")
	return err
}

// LoadBaseline fetches a baseline; ok is false when the server has no
// baseline of that name.
func (rt *RemoteTier) LoadBaseline(name string) (rr RunRecord, ok bool, err error) {
	resp, err := rt.roundTrip(http.MethodGet, "/baselines/"+url.PathEscape(name), nil, nil)
	if err != nil {
		return RunRecord{}, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return RunRecord{}, false, nil
	case resp.StatusCode != http.StatusOK:
		return RunRecord{}, false, fmt.Errorf("remote %s: GET baseline: %s%s", rt.base, resp.Status, authHint(resp.StatusCode))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return RunRecord{}, false, fmt.Errorf("remote %s: read baseline: %w", rt.base, err)
	}
	if err := json.Unmarshal(data, &rr); err != nil {
		return RunRecord{}, false, fmt.Errorf("remote %s: baseline %q: %w", rt.base, name, err)
	}
	return rr, true, nil
}

// Baselines lists the server's baseline names.
func (rt *RemoteTier) Baselines() ([]string, error) {
	resp, err := rt.roundTrip(http.MethodGet, "/baselines", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote %s: GET /baselines: %s%s", rt.base, resp.Status, authHint(resp.StatusCode))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return nil, fmt.Errorf("remote %s: read /baselines: %w", rt.base, err)
	}
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("remote %s: /baselines: %w", rt.base, err)
	}
	return names, nil
}
